(** Wall-clock performance probes shared by the full bench harness and the
    standalone [throughput] runner: engine event throughput at P=64 and
    the multicore all-schemes comparison at jobs=1 vs jobs=N. *)

(* engine/events_per_sec: a large jacobi trace replayed on a 64-processor
   machine — the scaling regime the ready-heap targets (the old engine
   paid two O(P) scans per event). The Base scheme is the engine-path
   number (near-zero coherence-model cost, so scheduling overhead
   dominates); TPI is shown alongside for the end-to-end figure. *)
let engine_throughput () =
  let cfg = { Hscd_arch.Config.default with processors = 64 } in
  let prog = Hscd_workloads.Kernels.jacobi1d ~n:4096 ~iters:4 () in
  let c = Hscd_sim.Run.compile ~cfg prog in
  let events = c.Hscd_sim.Run.trace.total_events in
  let measure kind =
    (* warm up, then time a fixed number of replays *)
    ignore (Hscd_sim.Run.simulate ~cfg kind c.trace);
    let reps = 3 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Hscd_sim.Run.simulate ~cfg kind c.trace)
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
    (float_of_int events /. dt, dt)
  in
  let base_eps, base_dt = measure Hscd_sim.Run.Base in
  let tpi_eps, tpi_dt = measure Hscd_sim.Run.TPI in
  Printf.printf
    "  engine/events_per_sec                      %12.0f ev/s (P=64, %d events, %.3f s/run)\n%!"
    base_eps events base_dt;
  Printf.printf
    "  engine/events_per_sec (TPI end-to-end)     %12.0f ev/s (P=64, %d events, %.3f s/run)\n%!"
    tpi_eps events tpi_dt

(* compare_all_schemes: the paper's methodology (one trace, every scheme)
   at jobs=1 vs jobs=N — the multicore experiment-runner speedup. Results
   are bit-identical; only the wall clock moves. *)
let compare_wall_clock () =
  let cfg = { Hscd_arch.Config.default with processors = 16 } in
  let prog = Hscd_workloads.Kernels.jacobi1d ~n:1024 ~iters:4 () in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let _, results = Hscd_sim.Run.compare ~cfg ~jobs prog in
    (Unix.gettimeofday () -. t0, results)
  in
  let seq, r1 = time 1 in
  let jobs = max 2 (Hscd_util.Pool.default_jobs ()) in
  let par, rn = time jobs in
  let identical =
    List.for_all2
      (fun (a : Hscd_sim.Run.comparison) (b : Hscd_sim.Run.comparison) ->
        a.kind = b.kind && a.result = b.result)
      r1 rn
  in
  Printf.printf "  compare_all_schemes jobs=1                 %12.3f s\n" seq;
  Printf.printf
    "  compare_all_schemes jobs=%-2d                %12.3f s (speedup %.2fx, results %s)\n%!"
    jobs par (seq /. par)
    (if identical then "bit-identical" else "DIVERGED")
