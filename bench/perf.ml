(** Wall-clock performance probes shared by the full bench harness and the
    standalone [throughput] runner: packed-vs-boxed engine event
    throughput at P=64 (with allocation-per-event accounting) and the
    multicore all-schemes comparison at jobs=1 vs jobs=N. *)

module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Engine = Hscd_sim.Engine
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic

(* One replay with a fresh machine, timed and GC-accounted separately
   from scheme construction: the (seconds, minor-heap words) cost of the
   Engine call alone, plus its result for equivalence checks. *)
let replay_packed ~cfg kind (p : Trace.packed) =
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let sch = Run.pack kind cfg ~memory_words:(Trace.packed_memory_words p) ~network ~traffic in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = Engine.run cfg sch ~net:network ~traffic p in
  let dt = Unix.gettimeofday () -. t0 in
  (r, dt, Gc.minor_words () -. w0)

let replay_boxed ~cfg kind (t : Trace.t) =
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let sch = Run.pack kind cfg ~memory_words:(Trace.memory_words t) ~network ~traffic in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = Engine.run_boxed cfg sch ~net:network ~traffic t in
  let dt = Unix.gettimeofday () -. t0 in
  (r, dt, Gc.minor_words () -. w0)

type scheme_row = {
  scheme : string;
  packed_eps : float;  (** events/sec, packed-native replay *)
  boxed_eps : float;  (** events/sec, legacy boxed replay *)
  speedup : float;  (** packed over boxed *)
  minor_words_per_event : float;  (** minor-heap words/event, packed replay *)
  identical : bool;  (** packed result = boxed result, bit for bit *)
}

type report = {
  processors : int;
  events : int;  (** slots replayed per run (incl. compute) *)
  slab_words : int;  (** live heap words of the packed slabs *)
  rows : scheme_row list;
}

(* engine/events_per_sec: a large jacobi trace replayed on a 64-processor
   machine — the scaling regime the packed hot path targets. The Base
   scheme is the engine-path number (near-zero coherence-model cost, so
   event decode + scheduling overhead dominates); TPI is alongside for
   the end-to-end figure. Every scheme is also replayed through the
   legacy boxed loop and the results compared bit for bit. *)
let measure ?(processors = 64) ?(n = 4096) ?(iters = 4) ?(reps = 3)
    ?(schemes = [ Run.Base; Run.TPI ]) () =
  let cfg = Config.validate { Config.default with processors } in
  let prog = Hscd_workloads.Kernels.jacobi1d ~n ~iters () in
  let c = Run.compile ~cfg ~cache:false prog in
  let p = c.Run.packed_trace in
  let boxed = Run.boxed_trace c in
  let events = p.Trace.n_slots in
  let row kind =
    (* warm up, then average a fixed number of fresh replays *)
    ignore (replay_packed ~cfg kind p);
    let packed_dt = ref 0.0 and packed_words = ref 0.0 in
    let r_packed = ref None in
    for _ = 1 to reps do
      let r, dt, w = replay_packed ~cfg kind p in
      r_packed := Some r;
      packed_dt := !packed_dt +. dt;
      packed_words := !packed_words +. w
    done;
    ignore (replay_boxed ~cfg kind boxed);
    let boxed_dt = ref 0.0 in
    let r_boxed = ref None in
    for _ = 1 to reps do
      let r, dt, _ = replay_boxed ~cfg kind boxed in
      r_boxed := Some r;
      boxed_dt := !boxed_dt +. dt
    done;
    let fre = float_of_int reps and fev = float_of_int events in
    let packed_eps = fev /. (!packed_dt /. fre) in
    let boxed_eps = fev /. (!boxed_dt /. fre) in
    {
      scheme = Run.scheme_name kind;
      packed_eps;
      boxed_eps;
      speedup = packed_eps /. boxed_eps;
      minor_words_per_event = !packed_words /. fre /. fev;
      identical = !r_packed = !r_boxed;
    }
  in
  {
    processors;
    events;
    slab_words = Trace.packed_slab_words p;
    rows = List.map row schemes;
  }

let print_report (r : report) =
  List.iter
    (fun row ->
      Printf.printf
        "  engine/events_per_sec (%-4s packed)        %12.0f ev/s (P=%d, %d events)\n"
        row.scheme row.packed_eps r.processors r.events;
      Printf.printf
        "  engine/events_per_sec (%-4s boxed)         %12.0f ev/s (speedup %.2fx, %s)\n"
        row.scheme row.boxed_eps row.speedup
        (if row.identical then "bit-identical" else "DIVERGED");
      Printf.printf "  engine/gc_minor_words_per_event (%-4s)     %12.2f words\n%!" row.scheme
        row.minor_words_per_event)
    r.rows;
  Printf.printf "  trace/packed_slab_words                    %12d words (%d slots)\n%!"
    r.slab_words r.events

let report_to_json (r : report) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"processors\": %d,\n  \"events\": %d,\n  \"packed_slab_words\": %d,\n  \"schemes\": [\n"
       r.processors r.events r.slab_words);
  List.iteri
    (fun i row ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"scheme\": \"%s\", \"events_per_sec_packed\": %.0f, \"events_per_sec_boxed\": %.0f, \"speedup\": %.3f, \"gc_minor_words_per_event\": %.3f, \"bit_identical\": %b}%s\n"
           row.scheme row.packed_eps row.boxed_eps row.speedup row.minor_words_per_event
           row.identical
           (if i = List.length r.rows - 1 then "" else ",")))
    r.rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let engine_throughput () = print_report (measure ())

(* --- sharded replay: aggregate throughput and shard-scaling efficiency --- *)

type shard_row = {
  sh_scheme : string;
  sh_shards : int;
  sh_eps : float;  (** aggregate events/sec: total slots over wall-clock *)
  sh_speedup : float;  (** over the inline shards=1 run of the same scheme *)
  sh_utilization : float;  (** speedup / shards: per-domain efficiency *)
  sh_minor_words_per_event : float;  (** minor words/event on the timing domain *)
  sh_engine_eps : float;  (** sequential-engine ev/s for this scheme, same basis *)
  sh_identical : bool;  (** equals the shards=1 result, bit for bit *)
  sh_engine_identical : bool;  (** equals {!Engine.run} on this fixture *)
}

type shard_report = {
  shp_processors : int;
  shp_events : int;
  shp_domains : int;  (** [Domain.recommended_domain_count ()] on this host *)
  shp_rows : shard_row list;
}

(* engine/sharded_events_per_sec: the same jacobi trace replayed through
   the sharded engine at increasing shard counts, on the domain team.
   Aggregate ev/s is total slots over wall-clock (the number that must
   scale); utilization = speedup/shards shows how much of each added
   domain the run actually converts into throughput. The shards=1 inline
   run is the baseline and every row is compared against it bit for bit;
   jacobi is order-free for BASE and TPI, so each row is also pinned to
   the sequential {!Engine.run} result. Timings here include machine
   construction (caches, directory, network model) — a whole
   simulation, the unit the sweep pool schedules — so ev/s on a small
   fixture is construction-dominated and lower than the engine-only
   rows above; the engine reference column uses the same basis. *)
let measure_sharded ?(processors = 64) ?(n = 4096) ?(iters = 4) ?(reps = 3)
    ?(shard_counts = [ 1; 2; 4; 8 ]) ?(schemes = [ Run.Base; Run.TPI ]) () =
  let cfg = Config.validate { Config.default with processors } in
  let prog = Hscd_workloads.Kernels.jacobi1d ~n ~iters () in
  let c = Run.compile ~cfg ~cache:false prog in
  let p = c.Run.packed_trace in
  let events = p.Trace.n_slots in
  let fev = float_of_int events in
  let time_run f =
    (* best-of-reps: wall clock on a shared box is noise-dominated *)
    ignore (f ());
    let best = ref infinity and words = ref 0.0 and res = ref None in
    for _ = 1 to reps do
      let w0 = Gc.minor_words () in
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      words := Gc.minor_words () -. w0;
      res := Some r
    done;
    (Option.get !res, !best, !words)
  in
  let rows =
    List.concat_map
      (fun kind ->
        let engine_r, engine_dt, _ =
          time_run (fun () -> Run.simulate_packed ~cfg kind p)
        in
        let engine_eps = fev /. engine_dt in
        let reference, ref_dt, _ =
          time_run (fun () -> Run.simulate_packed_sharded ~cfg ~parallel:false ~shards:1 kind p)
        in
        let ref_eps = fev /. ref_dt in
        List.map
          (fun shards ->
            let r, dt, words =
              time_run (fun () ->
                  Run.simulate_packed_sharded ~cfg ~parallel:(shards > 1) ~shards kind p)
            in
            let eps = fev /. dt in
            {
              sh_scheme = Run.scheme_name kind;
              sh_shards = shards;
              sh_eps = eps;
              sh_speedup = eps /. ref_eps;
              sh_utilization = eps /. ref_eps /. float_of_int shards;
              sh_minor_words_per_event = words /. fev;
              sh_engine_eps = engine_eps;
              sh_identical = r = reference;
              sh_engine_identical = r = engine_r;
            })
          shard_counts)
      schemes
  in
  {
    shp_processors = processors;
    shp_events = events;
    shp_domains = Domain.recommended_domain_count ();
    shp_rows = rows;
  }

let print_shard_report (r : shard_report) =
  Printf.printf
    "  sharded replay (P=%d, %d events, %d domain(s) available; whole-simulation basis)\n"
    r.shp_processors r.shp_events r.shp_domains;
  List.iter
    (fun row ->
      Printf.printf
        "  engine/sharded_events_per_sec (%-4s x%d)    %12.0f ev/s (seq engine %.0f, \
         speedup %.2fx, util %.2f, %.2f w/ev, %s)\n"
        row.sh_scheme row.sh_shards row.sh_eps row.sh_engine_eps row.sh_speedup
        row.sh_utilization row.sh_minor_words_per_event
        (if row.sh_identical && row.sh_engine_identical then "bit-identical"
         else "DIVERGED"))
    r.shp_rows;
  flush stdout

let shard_report_to_json (r : shard_report) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"processors\": %d,\n  \"events\": %d,\n  \"domains_available\": %d,\n  \
        \"rows\": [\n"
       r.shp_processors r.shp_events r.shp_domains);
  List.iteri
    (fun i row ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"scheme\": \"%s\", \"shards\": %d, \"events_per_sec\": %.0f, \
            \"sequential_engine_events_per_sec\": %.0f, \"speedup\": %.3f, \
            \"utilization\": %.3f, \"gc_minor_words_per_event\": %.3f, \
            \"bit_identical\": %b}%s\n"
           row.sh_scheme row.sh_shards row.sh_eps row.sh_engine_eps row.sh_speedup
           row.sh_utilization row.sh_minor_words_per_event
           (row.sh_identical && row.sh_engine_identical)
           (if i = List.length r.shp_rows - 1 then "" else ",")))
    r.shp_rows;
  Buffer.add_string b "  ]\n}";
  Buffer.contents b

(* --- compile side: trace generation throughput --- *)

(* tracegen/events_per_sec: same marked jacobi program generated twice —
   streamed straight into the packed slabs (the production path) vs the
   legacy boxed generation followed by [Trace.pack]. The two packed
   results are compared structurally and by TPI replay, bit for bit. *)
type compile_row = {
  gen_events : int;  (** slots generated per run (incl. compute) *)
  gen_stream_eps : float;  (** events/sec, streaming builder *)
  gen_boxed_eps : float;  (** events/sec, boxed generation + pack *)
  gen_speedup : float;  (** streaming over boxed+pack *)
  gen_stream_words_per_event : float;  (** minor-heap words/slot, streaming *)
  gen_boxed_words_per_event : float;  (** minor-heap words/slot, boxed+pack *)
  gen_identical : bool;  (** equal_packed && identical TPI replay *)
}

let measure_compile ?(processors = 64) ?(n = 4096) ?(iters = 4) ?(reps = 3) () =
  let cfg = Config.validate { Config.default with processors } in
  let prog = Hscd_workloads.Kernels.jacobi1d ~n ~iters () in
  let checked = Hscd_lang.Sema.check_exn prog in
  let m =
    Hscd_compiler.Marking.mark_program
      ~static_sched:(Hscd_sim.Schedule.is_static cfg)
      ~intertask:true checked
  in
  let marked = m.Hscd_compiler.Marking.program in
  let timed f =
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    (r, dt, Gc.minor_words () -. w0)
  in
  let stream () = Trace.of_program_packed ~line_words:cfg.line_words marked in
  let boxed () = Trace.pack (Trace.of_program ~line_words:cfg.line_words marked) in
  (* Generation times are dominated by where the major-GC cycle happens to
     land, which depends on everything that ran earlier in the process (a
     4x swing either way is reproducible). So: interleave the two paths,
     compact before every timed run to restart the cycle from the same
     state, and score each path by its best rep — the one the collector
     disturbed least. Allocation counts are deterministic, times are not. *)
  ignore (stream ());
  ignore (boxed ());
  let sdt = ref infinity and swords = ref 0.0 and p_stream = ref None in
  let bdt = ref infinity and bwords = ref 0.0 and p_boxed = ref None in
  for _ = 1 to reps do
    Gc.compact ();
    let p, dt, w = timed stream in
    p_stream := Some p;
    if dt < !sdt then sdt := dt;
    swords := w;
    Gc.compact ();
    let p, dt, w = timed boxed in
    p_boxed := Some p;
    if dt < !bdt then bdt := dt;
    bwords := w
  done;
  let ps = Option.get !p_stream and pb = Option.get !p_boxed in
  let identical =
    Hscd_sim.Trace_io.equal_packed ps pb
    && Run.simulate_packed ~cfg Run.TPI ps = Run.simulate_packed ~cfg Run.TPI pb
  in
  let events = ps.Trace.n_slots in
  let fev = float_of_int events in
  let stream_eps = fev /. !sdt in
  let boxed_eps = fev /. !bdt in
  {
    gen_events = events;
    gen_stream_eps = stream_eps;
    gen_boxed_eps = boxed_eps;
    gen_speedup = stream_eps /. boxed_eps;
    gen_stream_words_per_event = !swords /. fev;
    gen_boxed_words_per_event = !bwords /. fev;
    gen_identical = identical;
  }

let print_compile_row (r : compile_row) =
  Printf.printf "  tracegen/events_per_sec (streaming)        %12.0f ev/s (%d events)\n"
    r.gen_stream_eps r.gen_events;
  Printf.printf "  tracegen/events_per_sec (boxed+pack)       %12.0f ev/s (speedup %.2fx, %s)\n"
    r.gen_boxed_eps r.gen_speedup
    (if r.gen_identical then "bit-identical" else "DIVERGED");
  Printf.printf "  tracegen/gc_minor_words_per_event (stream) %12.2f words\n"
    r.gen_stream_words_per_event;
  Printf.printf "  tracegen/gc_minor_words_per_event (boxed)  %12.2f words\n%!"
    r.gen_boxed_words_per_event

let compile_row_to_json (r : compile_row) =
  Printf.sprintf
    "{\"events\": %d, \"events_per_sec_streaming\": %.0f, \"events_per_sec_boxed_pack\": %.0f, \
     \"speedup\": %.3f, \"gc_minor_words_per_event_streaming\": %.3f, \
     \"gc_minor_words_per_event_boxed_pack\": %.3f, \"bit_identical\": %b}"
    r.gen_events r.gen_stream_eps r.gen_boxed_eps r.gen_speedup r.gen_stream_words_per_event
    r.gen_boxed_words_per_event r.gen_identical

(* --- compile cache: a sweep over a timing-side knob must generate each
   model's trace exactly once --- *)

type cache_row = {
  cache_generations : int;  (** traces generated across the two sweep points *)
  cache_hits : int;  (** in-memory hits across the second point *)
  cache_ok : bool;  (** second point generated zero new traces *)
}

let measure_cache () =
  let module Common = Hscd_experiments.Common in
  Run.reset_compile_cache ();
  let cfg1 = { Config.default with timetag_bits = 8 } in
  let cfg2 = { Config.default with timetag_bits = 4 } in
  ignore (Common.run_all ~cfg:cfg1 ~schemes:[ Run.TPI ] ~small:true ());
  let g1 = (Run.compile_cache_stats ()).Run.trace_generations in
  ignore (Common.run_all ~cfg:cfg2 ~schemes:[ Run.TPI ] ~small:true ());
  let s = Run.compile_cache_stats () in
  {
    cache_generations = s.Run.trace_generations;
    cache_hits = s.Run.memory_hits;
    cache_ok = s.Run.trace_generations = g1 && g1 > 0;
  }

let print_cache_row (r : cache_row) =
  Printf.printf
    "  tracegen/compile_cache                     %12s (%d generations, %d hits across a \
     2-point timetag sweep)\n%!"
    (if r.cache_ok then "shared" else "NOT SHARED")
    r.cache_generations r.cache_hits

let cache_row_to_json (r : cache_row) =
  Printf.sprintf "{\"trace_generations\": %d, \"memory_hits\": %d, \"shared\": %b}"
    r.cache_generations r.cache_hits r.cache_ok

(* compare_all_schemes: the paper's methodology (one trace, every scheme)
   at jobs=1 vs jobs=N — the multicore experiment-runner speedup. Results
   are bit-identical; only the wall clock moves. *)
let compare_wall_clock () =
  let cfg = { Config.default with processors = 16 } in
  let prog = Hscd_workloads.Kernels.jacobi1d ~n:1024 ~iters:4 () in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let _, results = Run.compare ~cfg ~jobs prog in
    (Unix.gettimeofday () -. t0, results)
  in
  let seq, r1 = time 1 in
  let jobs = max 2 (Hscd_util.Pool.default_jobs ()) in
  let par, rn = time jobs in
  let identical =
    List.for_all2
      (fun (a : Run.comparison) (b : Run.comparison) ->
        a.kind = b.kind && a.result = b.result)
      r1 rn
  in
  Printf.printf "  compare_all_schemes jobs=1                 %12.3f s\n" seq;
  Printf.printf
    "  compare_all_schemes jobs=%-2d                %12.3f s (speedup %.2fx, results %s)\n%!"
    jobs par (seq /. par)
    (if identical then "bit-identical" else "DIVERGED")
