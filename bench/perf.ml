(** Wall-clock performance probes shared by the full bench harness and the
    standalone [throughput] runner: packed-vs-boxed engine event
    throughput at P=64 (with allocation-per-event accounting) and the
    multicore all-schemes comparison at jobs=1 vs jobs=N. *)

module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Engine = Hscd_sim.Engine
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic

(* One replay with a fresh machine, timed and GC-accounted separately
   from scheme construction: the (seconds, minor-heap words) cost of the
   Engine call alone, plus its result for equivalence checks. *)
let replay_packed ~cfg kind (p : Trace.packed) =
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let sch = Run.pack kind cfg ~memory_words:(Trace.packed_memory_words p) ~network ~traffic in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = Engine.run cfg sch ~net:network ~traffic p in
  let dt = Unix.gettimeofday () -. t0 in
  (r, dt, Gc.minor_words () -. w0)

let replay_boxed ~cfg kind (t : Trace.t) =
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let sch = Run.pack kind cfg ~memory_words:(Trace.memory_words t) ~network ~traffic in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = Engine.run_boxed cfg sch ~net:network ~traffic t in
  let dt = Unix.gettimeofday () -. t0 in
  (r, dt, Gc.minor_words () -. w0)

type scheme_row = {
  scheme : string;
  packed_eps : float;  (** events/sec, packed-native replay *)
  boxed_eps : float;  (** events/sec, legacy boxed replay *)
  speedup : float;  (** packed over boxed *)
  minor_words_per_event : float;  (** minor-heap words/event, packed replay *)
  identical : bool;  (** packed result = boxed result, bit for bit *)
}

type report = {
  processors : int;
  events : int;  (** slots replayed per run (incl. compute) *)
  slab_words : int;  (** live heap words of the packed slabs *)
  rows : scheme_row list;
}

(* engine/events_per_sec: a large jacobi trace replayed on a 64-processor
   machine — the scaling regime the packed hot path targets. The Base
   scheme is the engine-path number (near-zero coherence-model cost, so
   event decode + scheduling overhead dominates); TPI is alongside for
   the end-to-end figure. Every scheme is also replayed through the
   legacy boxed loop and the results compared bit for bit. *)
let measure ?(processors = 64) ?(n = 4096) ?(iters = 4) ?(reps = 3)
    ?(schemes = [ Run.Base; Run.TPI ]) () =
  let cfg = Config.validate { Config.default with processors } in
  let prog = Hscd_workloads.Kernels.jacobi1d ~n ~iters () in
  let c = Run.compile ~cfg prog in
  let p = c.Run.packed_trace in
  let events = p.Trace.n_slots in
  let row kind =
    (* warm up, then average a fixed number of fresh replays *)
    ignore (replay_packed ~cfg kind p);
    let packed_dt = ref 0.0 and packed_words = ref 0.0 in
    let r_packed = ref None in
    for _ = 1 to reps do
      let r, dt, w = replay_packed ~cfg kind p in
      r_packed := Some r;
      packed_dt := !packed_dt +. dt;
      packed_words := !packed_words +. w
    done;
    ignore (replay_boxed ~cfg kind c.Run.trace);
    let boxed_dt = ref 0.0 in
    let r_boxed = ref None in
    for _ = 1 to reps do
      let r, dt, _ = replay_boxed ~cfg kind c.Run.trace in
      r_boxed := Some r;
      boxed_dt := !boxed_dt +. dt
    done;
    let fre = float_of_int reps and fev = float_of_int events in
    let packed_eps = fev /. (!packed_dt /. fre) in
    let boxed_eps = fev /. (!boxed_dt /. fre) in
    {
      scheme = Run.scheme_name kind;
      packed_eps;
      boxed_eps;
      speedup = packed_eps /. boxed_eps;
      minor_words_per_event = !packed_words /. fre /. fev;
      identical = !r_packed = !r_boxed;
    }
  in
  {
    processors;
    events;
    slab_words = Trace.packed_slab_words p;
    rows = List.map row schemes;
  }

let print_report (r : report) =
  List.iter
    (fun row ->
      Printf.printf
        "  engine/events_per_sec (%-4s packed)        %12.0f ev/s (P=%d, %d events)\n"
        row.scheme row.packed_eps r.processors r.events;
      Printf.printf
        "  engine/events_per_sec (%-4s boxed)         %12.0f ev/s (speedup %.2fx, %s)\n"
        row.scheme row.boxed_eps row.speedup
        (if row.identical then "bit-identical" else "DIVERGED");
      Printf.printf "  engine/gc_minor_words_per_event (%-4s)     %12.2f words\n%!" row.scheme
        row.minor_words_per_event)
    r.rows;
  Printf.printf "  trace/packed_slab_words                    %12d words (%d slots)\n%!"
    r.slab_words r.events

let report_to_json (r : report) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"processors\": %d,\n  \"events\": %d,\n  \"packed_slab_words\": %d,\n  \"schemes\": [\n"
       r.processors r.events r.slab_words);
  List.iteri
    (fun i row ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"scheme\": \"%s\", \"events_per_sec_packed\": %.0f, \"events_per_sec_boxed\": %.0f, \"speedup\": %.3f, \"gc_minor_words_per_event\": %.3f, \"bit_identical\": %b}%s\n"
           row.scheme row.packed_eps row.boxed_eps row.speedup row.minor_words_per_event
           row.identical
           (if i = List.length r.rows - 1 then "" else ",")))
    r.rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let engine_throughput () = print_report (measure ())

(* compare_all_schemes: the paper's methodology (one trace, every scheme)
   at jobs=1 vs jobs=N — the multicore experiment-runner speedup. Results
   are bit-identical; only the wall clock moves. *)
let compare_wall_clock () =
  let cfg = { Config.default with processors = 16 } in
  let prog = Hscd_workloads.Kernels.jacobi1d ~n:1024 ~iters:4 () in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let _, results = Run.compare ~cfg ~jobs prog in
    (Unix.gettimeofday () -. t0, results)
  in
  let seq, r1 = time 1 in
  let jobs = max 2 (Hscd_util.Pool.default_jobs ()) in
  let par, rn = time jobs in
  let identical =
    List.for_all2
      (fun (a : Run.comparison) (b : Run.comparison) ->
        a.kind = b.kind && a.result = b.result)
      r1 rn
  in
  Printf.printf "  compare_all_schemes jobs=1                 %12.3f s\n" seq;
  Printf.printf
    "  compare_all_schemes jobs=%-2d                %12.3f s (speedup %.2fx, results %s)\n%!"
    jobs par (seq /. par)
    (if identical then "bit-identical" else "DIVERGED")
