(** Benchmark harness.

    Part 1 regenerates every table/figure of the paper's evaluation (the
    experiment registry of [Hscd_experiments]) at full scale and prints
    them in paper shape.

    Part 2 runs Bechamel microbenchmarks — one per reproduced table (as
    the repository convention requires) measuring the hot simulator path
    behind that table, plus a few core-operation benches. *)

open Bechamel
open Toolkit

(* --- Part 2 plumbing --- *)

let make_cfg () = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()

let ols =
  Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]

let run_and_report tests =
  let instance = Instance.monotonic_clock in
  let grouped = Test.make_grouped ~name:"hscd" ~fmt:"%s %s" tests in
  let raw = Benchmark.all (make_cfg ()) [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with Some [ x ] -> x | Some (x :: _) -> x | _ -> nan
      in
      Printf.printf "  %-42s %12.1f ns/run\n" name est)
    (List.sort compare rows)

(* Small, fixed-size payloads for the microbenches. *)

let small_stencil = Hscd_workloads.Kernels.jacobi1d ~n:64 ~iters:2 ()

let compiled_stencil = lazy (Hscd_sim.Run.compile small_stencil)

let staged_simulate kind =
  Staged.stage (fun () ->
      let c = Lazy.force compiled_stencil in
      ignore (Hscd_sim.Run.simulate_packed kind c.Hscd_sim.Run.packed_trace))

let micro_tests =
  [
    (* fig5: closed-form storage overhead *)
    Test.make ~name:"fig5/storage_overhead_formulas"
      (Staged.stage (fun () ->
           ignore (Hscd_coherence.Overhead.describe Hscd_coherence.Overhead.paper_default)));
    (* fig8: config validation/description *)
    Test.make ~name:"fig8/config_describe"
      (Staged.stage (fun () -> ignore (Hscd_arch.Config.describe Hscd_arch.Config.default)));
    (* census: the compiler front end *)
    Test.make ~name:"census/mark_program_jacobi64"
      (Staged.stage (fun () ->
           ignore
             (Hscd_compiler.Marking.mark_program (Hscd_lang.Sema.check_exn small_stencil))));
    (* fig11: one full TPI simulation of a small stencil *)
    Test.make ~name:"fig11/simulate_tpi_jacobi64" (staged_simulate Hscd_sim.Run.TPI);
    (* fig12: classification path = HW simulation *)
    Test.make ~name:"fig12/simulate_hw_jacobi64" (staged_simulate Hscd_sim.Run.HW);
    (* latency table: network model evaluation *)
    Test.make ~name:"latency/kruskal_snir_excess"
      (Staged.stage (fun () ->
           let net = Hscd_network.Kruskal_snir.create Hscd_arch.Config.default in
           Hscd_network.Kruskal_snir.set_load net 0.4;
           ignore (Hscd_network.Kruskal_snir.round_trip_excess net)));
    (* traffic: SC simulation (write-through traffic heavy) *)
    Test.make ~name:"traffic/simulate_sc_jacobi64" (staged_simulate Hscd_sim.Run.SC);
    (* timetag: the two-phase reset sweep over a full cache *)
    Test.make ~name:"timetag/two_phase_reset_64kb"
      (let cfg = Hscd_arch.Config.default in
       let net = Hscd_network.Kruskal_snir.create cfg in
       let traffic = Hscd_network.Traffic.create cfg in
       let tpi = Hscd_coherence.Tpi.create cfg ~memory_words:4096 ~network:net ~traffic in
       for a = 0 to 4095 do
         ignore
           (Hscd_coherence.Tpi.write tpi ~proc:(a mod 16) ~addr:a ~array:0 ~value:a
              ~mark:Hscd_arch.Event.Normal_write)
       done;
       let stalls = Array.make cfg.Hscd_arch.Config.processors 0 in
       Staged.stage (fun () -> Hscd_coherence.Tpi.epoch_boundary tpi ~stalls));
    (* exectime: BASE simulation *)
    Test.make ~name:"exectime/simulate_base_jacobi64" (staged_simulate Hscd_sim.Run.Base);
    (* wcache: write-buffer coalescing *)
    Test.make ~name:"wcache/write_cache_1k_stores"
      (let cfg =
         { Hscd_arch.Config.default with write_buffer = Hscd_arch.Config.Write_cache 16 }
       in
       let wb = Hscd_cache.Write_buffer.create cfg in
       Staged.stage (fun () ->
           for i = 0 to 999 do
             ignore (Hscd_cache.Write_buffer.write wb (i mod 64))
           done;
           ignore (Hscd_cache.Write_buffer.drain wb)));
    (* alignment: section algebra *)
    Test.make ~name:"alignment/section_intersections"
      (let a = Hscd_compiler.Sections.whole [ 64; 64 ] in
       let b =
         [
           Hscd_compiler.Sections.Sint.make ~lo:0 ~hi:62 ~step:2;
           Hscd_compiler.Sections.Sint.make ~lo:1 ~hi:63 ~step:2;
         ]
       in
       Staged.stage (fun () ->
           for _ = 0 to 99 do
             ignore (Hscd_compiler.Sections.inter_nonempty a b)
           done));
    (* scheduling: trace generation (interpreter + streaming builder) *)
    Test.make ~name:"scheduling/trace_generation_jacobi64"
      (Staged.stage (fun () -> ignore (Hscd_sim.Trace.of_program_packed small_stencil)));
    (* fuzz: differential-oracle throughput — one fixed generated trace
       through all four schemes plus monitors (the fuzzing hot path) *)
    Test.make ~name:"fuzz/differential_oracle"
      (let prng = Hscd_util.Prng.of_int 42 in
       let params = Hscd_check.Fuzz.corpus_presets |> List.hd |> snd in
       let trace = Hscd_check.Gen.generate prng params in
       let cfg = Hscd_check.Gen.cfg_of params in
       Staged.stage (fun () -> ignore (Hscd_check.Oracle.run cfg trace)));
    (* fuzz: trace generation + golden resolution throughput *)
    Test.make ~name:"fuzz/trace_generation"
      (let params = Hscd_check.Fuzz.corpus_presets |> List.hd |> snd in
       let prng = Hscd_util.Prng.of_int 7 in
       Staged.stage (fun () -> ignore (Hscd_check.Gen.generate prng params)));
    (* cachesize: raw cache probe/allocate loop *)
    Test.make ~name:"cachesize/cache_probe_allocate"
      (let cache = Hscd_cache.Cache.create Hscd_arch.Config.default in
       Staged.stage (fun () ->
           for a = 0 to 999 do
             match Hscd_cache.Cache.find cache a with
             | Some _ -> ()
             | None -> ignore (Hscd_cache.Cache.allocate cache ~on_evict:(fun _ -> ()) a)
           done));
  ]

let () =
  print_endline "==================================================================";
  print_endline " HSCD coherence reproduction: paper tables and figures";
  print_endline " (Choi & Yew, ISCA 1996 — see EXPERIMENTS.md for the comparison)";
  print_endline "==================================================================";
  print_newline ();
  let jobs = Hscd_util.Pool.default_jobs () in
  List.iter
    (fun e -> Hscd_experiments.Experiments.run_and_print ~jobs e)
    Hscd_experiments.Experiments.all;
  print_endline "==================================================================";
  print_endline " Bechamel microbenchmarks (one per reproduced table)";
  print_endline "==================================================================";
  run_and_report micro_tests;
  print_newline ();
  print_endline "==================================================================";
  print_endline " Engine throughput and multicore fan-out";
  print_endline "==================================================================";
  Perf.engine_throughput ();
  Perf.compare_wall_clock ();
  print_newline ();
  print_endline "bench: done."
