(* Standalone engine-throughput probe: the two wall-clock benches of
   bench/main.ml's part 3 without the full table regeneration — a quick
   before/after check when touching the engine hot path. *)
let () =
  Perf.engine_throughput ();
  Perf.compare_wall_clock ()
