(* Standalone engine-throughput probe: the wall-clock benches of
   bench/main.ml's part 3 without the full table regeneration — a quick
   before/after check when touching the engine or trace-generation hot
   paths.

   Flags:
     --smoke       capped workload; exit 1 when the packed replay is not
                   bit-identical to the boxed one or allocates >= 8
                   minor-heap words per event, when the streaming trace
                   builder diverges from boxed-generation + pack or
                   allocates too much per generated event, or when a
                   timing-knob sweep fails to share compiled traces
                   (the @perf-smoke alias)
     --json PATH   also write the measurements as JSON *)

(* replay side: the engine decodes events without constructing variants *)
let replay_words_cap = 8.0

(* compile side: streaming generation appends into preallocated slabs, so
   per-slot allocation is interpreter overhead only (measured ~4.1 words
   at full scale, ~4.7 on the smoke workload; the boxed path is ~29) *)
let gen_words_cap = 6.0

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let json_path =
    let r = ref None in
    Array.iteri
      (fun i a -> if a = "--json" && i + 1 < Array.length Sys.argv then r := Some Sys.argv.(i + 1))
      Sys.argv;
    !r
  in
  let report =
    if smoke then Perf.measure ~processors:16 ~n:512 ~iters:2 ~reps:1 ()
    else Perf.measure ()
  in
  Perf.print_report report;
  let gen =
    if smoke then Perf.measure_compile ~processors:16 ~n:512 ~iters:2 ~reps:1 ()
    else Perf.measure_compile ()
  in
  Perf.print_compile_row gen;
  let cache = Perf.measure_cache () in
  Perf.print_cache_row cache;
  (match json_path with
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Printf.sprintf "{\n\"engine\": %s,\n\"tracegen\": %s,\n\"compile_cache\": %s\n}\n"
         (String.trim (Perf.report_to_json report))
         (Perf.compile_row_to_json gen)
         (Perf.cache_row_to_json cache));
    close_out oc;
    Printf.printf "  json written to %s\n%!" path
  | None -> ());
  if not smoke then Perf.compare_wall_clock ();
  let bad =
    List.filter
      (fun (r : Perf.scheme_row) ->
        (not r.identical) || r.minor_words_per_event >= replay_words_cap)
      report.Perf.rows
  in
  List.iter
    (fun (r : Perf.scheme_row) ->
      Printf.eprintf
        "throughput: FAIL %s (identical=%b, minor_words_per_event=%.2f >= %.1f?)\n" r.scheme
        r.identical r.minor_words_per_event replay_words_cap)
    bad;
  let gen_bad =
    (not gen.Perf.gen_identical) || gen.Perf.gen_stream_words_per_event >= gen_words_cap
  in
  if gen_bad then
    Printf.eprintf
      "throughput: FAIL tracegen (identical=%b, minor_words_per_event=%.2f >= %.1f?)\n"
      gen.Perf.gen_identical gen.Perf.gen_stream_words_per_event gen_words_cap;
  if not cache.Perf.cache_ok then
    Printf.eprintf
      "throughput: FAIL compile cache (second sweep point regenerated traces: %d generations, \
       %d hits)\n"
      cache.Perf.cache_generations cache.Perf.cache_hits;
  if bad <> [] || gen_bad || not cache.Perf.cache_ok then exit 1
