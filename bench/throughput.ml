(* Standalone engine-throughput probe: the wall-clock benches of
   bench/main.ml's part 3 without the full table regeneration — a quick
   before/after check when touching the engine or trace-generation hot
   paths.

   Flags:
     --smoke       capped workload over all seven schemes; exit 1 when a
                   packed replay is not bit-identical to the boxed one or
                   crosses its per-scheme minor-words/event ceiling, when
                   the streaming trace builder diverges from
                   boxed-generation + pack or allocates too much per
                   generated event, when a timing-knob sweep fails to
                   share compiled traces, or when the sharded engine
                   diverges from the shards=1 result, grossly regresses
                   the single-core loop, or allocates words/event that
                   scale with the shard count (the @perf-smoke alias)
     --json PATH   also write the measurements as JSON *)

(* replay side: the engine decodes events without constructing variants.
   Per-scheme minor-words/event ceilings at roughly 2x the measured smoke
   values (BASE 1.3; SC/INV/VC/TPI 5.6; the directory schemes 8.9 — their
   invalidation fan-out walks sharer sets): a scheme crossing its ceiling
   has grown a new per-event allocation, not noise *)
let replay_words_cap = function
  | "BASE" -> 4.0
  | "HW" | "LimitLESS" -> 16.0
  | _ -> 8.0 (* SC, INV, VC, TPI *)

(* sharded replay must not multiply allocation by shard count: each extra
   shard adds only its slice bookkeeping, so words/event at the highest
   shard count stays within a small factor (plus absolute slack for tiny
   baselines) of the shards=1 run. This is the regression gate for the
   per-shard machine-construction blowup, which scaled words/event
   linearly in the shard count before lazy cache materialization. *)
let sharded_scaling_factor = 1.5
let sharded_scaling_slack = 8.0

(* compile side: streaming generation appends into preallocated slabs, so
   per-slot allocation is interpreter overhead only (measured ~4.1 words
   at full scale, ~4.7 on the smoke workload; the boxed path is ~29) *)
let gen_words_cap = 6.0

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let json_path =
    let r = ref None in
    Array.iteri
      (fun i a -> if a = "--json" && i + 1 < Array.length Sys.argv then r := Some Sys.argv.(i + 1))
      Sys.argv;
    !r
  in
  let report =
    if smoke then
      Perf.measure ~processors:16 ~n:512 ~iters:2 ~reps:1
        ~schemes:Hscd_sim.Run.extended_schemes ()
    else Perf.measure ~schemes:Hscd_sim.Run.extended_schemes ()
  in
  Perf.print_report report;
  let gen =
    if smoke then Perf.measure_compile ~processors:16 ~n:512 ~iters:2 ~reps:1 ()
    else Perf.measure_compile ()
  in
  Perf.print_compile_row gen;
  let cache = Perf.measure_cache () in
  Perf.print_cache_row cache;
  (* sharded engine: aggregate ev/s, per-domain utilization and the
     bit-identity gate; the full run adds the P=1024 scaling point *)
  let sharded =
    if smoke then
      [ Perf.measure_sharded ~processors:16 ~n:512 ~iters:2 ~reps:1
          ~shard_counts:[ 1; 2; 4 ] () ]
    else
      [ Perf.measure_sharded ();
        Perf.measure_sharded ~processors:1024 ~n:8192 ~iters:2 ~reps:1 () ]
  in
  List.iter Perf.print_shard_report sharded;
  (match json_path with
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Printf.sprintf
         "{\n\"engine\": %s,\n\"tracegen\": %s,\n\"compile_cache\": %s,\n\"sharded_replay\": [\n%s\n]\n}\n"
         (String.trim (Perf.report_to_json report))
         (Perf.compile_row_to_json gen)
         (Perf.cache_row_to_json cache)
         (String.concat ",\n" (List.map Perf.shard_report_to_json sharded)));
    close_out oc;
    Printf.printf "  json written to %s\n%!" path
  | None -> ());
  if not smoke then Perf.compare_wall_clock ();
  let bad =
    List.filter
      (fun (r : Perf.scheme_row) ->
        (not r.identical) || r.minor_words_per_event >= replay_words_cap r.scheme)
      report.Perf.rows
  in
  List.iter
    (fun (r : Perf.scheme_row) ->
      Printf.eprintf
        "throughput: FAIL %s (identical=%b, minor_words_per_event=%.2f >= %.1f?)\n" r.scheme
        r.identical r.minor_words_per_event (replay_words_cap r.scheme))
    bad;
  let gen_bad =
    (not gen.Perf.gen_identical) || gen.Perf.gen_stream_words_per_event >= gen_words_cap
  in
  if gen_bad then
    Printf.eprintf
      "throughput: FAIL tracegen (identical=%b, minor_words_per_event=%.2f >= %.1f?)\n"
      gen.Perf.gen_identical gen.Perf.gen_stream_words_per_event gen_words_cap;
  if not cache.Perf.cache_ok then
    Printf.eprintf
      "throughput: FAIL compile cache (second sweep point regenerated traces: %d generations, \
       %d hits)\n"
      cache.Perf.cache_generations cache.Perf.cache_hits;
  (* hard gate: every sharded row bit-identical to shards=1 and to the
     sequential engine on this (order-free) fixture. Soft wall-clock gate:
     the sharded run at shards=1 must not be grossly slower than the
     sequential engine on the same whole-simulation basis — a generous 5x
     bound so shared-box noise cannot trip it, while a pathological
     per-event slowdown still fails. *)
  let shard_bad =
    List.concat_map
      (fun (rep : Perf.shard_report) ->
        List.filter_map
          (fun (row : Perf.shard_row) ->
            if not (row.Perf.sh_identical && row.Perf.sh_engine_identical) then
              Some (rep, row, "diverged")
            else if
              row.Perf.sh_shards = 1 && row.Perf.sh_eps *. 5.0 < row.Perf.sh_engine_eps
            then Some (rep, row, "single-core regression > 5x")
            else None)
          rep.Perf.shp_rows)
      sharded
  in
  (* allocation-scaling gate: compare each scheme's highest-shard-count
     row against its shards=1 row within the same report *)
  let shard_alloc_bad =
    List.concat_map
      (fun (rep : Perf.shard_report) ->
        let schemes =
          List.sort_uniq compare
            (List.map (fun (r : Perf.shard_row) -> r.Perf.sh_scheme) rep.Perf.shp_rows)
        in
        List.filter_map
          (fun scheme ->
            let rows =
              List.filter
                (fun (r : Perf.shard_row) -> r.Perf.sh_scheme = scheme)
                rep.Perf.shp_rows
            in
            let at shards =
              List.find_opt (fun (r : Perf.shard_row) -> r.Perf.sh_shards = shards) rows
            in
            let max_shards =
              List.fold_left (fun m (r : Perf.shard_row) -> max m r.Perf.sh_shards) 1 rows
            in
            match (at 1, at max_shards) with
            | Some one, Some top when max_shards > 1 ->
              let cap =
                (one.Perf.sh_minor_words_per_event *. sharded_scaling_factor)
                +. sharded_scaling_slack
              in
              if top.Perf.sh_minor_words_per_event > cap then Some (rep, one, top, cap)
              else None
            | _ -> None)
          schemes)
      sharded
  in
  List.iter
    (fun ((rep : Perf.shard_report), (one : Perf.shard_row), (top : Perf.shard_row), cap) ->
      Printf.eprintf
        "throughput: FAIL sharded %s at P=%d: words/event scales with shard count (%.2f at \
         x%d vs %.2f at x1, cap %.2f)\n"
        top.Perf.sh_scheme rep.Perf.shp_processors top.Perf.sh_minor_words_per_event
        top.Perf.sh_shards one.Perf.sh_minor_words_per_event cap)
    shard_alloc_bad;
  List.iter
    (fun ((rep : Perf.shard_report), (row : Perf.shard_row), why) ->
      Printf.eprintf "throughput: FAIL sharded %s x%d at P=%d (%s; %.0f ev/s vs %.0f engine)\n"
        row.Perf.sh_scheme row.Perf.sh_shards rep.Perf.shp_processors why row.Perf.sh_eps
        row.Perf.sh_engine_eps)
    shard_bad;
  if bad <> [] || gen_bad || (not cache.Perf.cache_ok) || shard_bad <> [] || shard_alloc_bad <> []
  then exit 1
