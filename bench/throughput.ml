(* Standalone engine-throughput probe: the wall-clock benches of
   bench/main.ml's part 3 without the full table regeneration — a quick
   before/after check when touching the engine hot path.

   Flags:
     --smoke       capped workload; exit 1 when the packed replay is not
                   bit-identical to the boxed one or allocates >= 8
                   minor-heap words per event (the @perf-smoke alias)
     --json PATH   also write the measurements as JSON *)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let json_path =
    let r = ref None in
    Array.iteri
      (fun i a -> if a = "--json" && i + 1 < Array.length Sys.argv then r := Some Sys.argv.(i + 1))
      Sys.argv;
    !r
  in
  let report =
    if smoke then Perf.measure ~processors:16 ~n:512 ~iters:2 ~reps:1 ()
    else Perf.measure ()
  in
  Perf.print_report report;
  (match json_path with
  | Some path ->
    let oc = open_out path in
    output_string oc (Perf.report_to_json report);
    close_out oc;
    Printf.printf "  json written to %s\n%!" path
  | None -> ());
  if not smoke then Perf.compare_wall_clock ();
  let bad =
    List.filter
      (fun (r : Perf.scheme_row) -> (not r.identical) || r.minor_words_per_event >= 8.0)
      report.Perf.rows
  in
  List.iter
    (fun (r : Perf.scheme_row) ->
      Printf.eprintf
        "throughput: FAIL %s (identical=%b, minor_words_per_event=%.2f >= 8.0?)\n" r.scheme
        r.identical r.minor_words_per_event)
    bad;
  if bad <> [] then exit 1
