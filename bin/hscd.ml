(** hscd — command-line driver for the HSCD coherence reproduction.

    Subcommands:
    - [mark <file|bench>]: run the coherence compiler, print the annotated
      listing and marking census;
    - [sim <file|bench>]: simulate one scheme and print its metrics;
    - [compare <file|bench>]: all four schemes side by side;
    - [experiment <id>|all]: regenerate a paper table/figure;
    - [fuzz]: differential fuzzing of the coherence schemes;
    - [check]: bounded exhaustive model checking with counterexample replay;
    - [list]: available benchmarks and experiments. *)

open Cmdliner
module Err = Hscd_util.Hscd_error

(* SIGTERM/SIGINT during a long-running command: exit with the
   conventional 128+signum straight from the handler. Raising an
   exception instead would be unsound under the supervised pool — the
   handler can run on a worker domain, where the pool would classify the
   exception as one task's transient failure and retry it, absorbing the
   signal. Durability needs no cooperation from the interrupted code:
   every completed checkpoint cell was already fsynced by
   [Journal.append], and a record torn by this exit is healed on the next
   open, exactly as for a kill -9. The printed number is the {e system}
   signal number (OCaml's [Sys.sigterm] etc. are internal codes). *)
let install_exit_signals () =
  let handle ocaml_n sys_n =
    try
      Sys.set_signal ocaml_n
        (Sys.Signal_handle
           (fun _ ->
             Printf.eprintf
               "hscd: interrupted by signal %d; completed cells are durable in the \
                checkpoint journal\n\
                %!"
               sys_n;
             Stdlib.exit (128 + sys_n)))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  handle Sys.sigterm 15;
  handle Sys.sigint 2

let known_programs () =
  String.concat ", "
    (List.map (fun (e : Hscd_workloads.Perfect.entry) -> e.name) Hscd_workloads.Perfect.all
    @ List.map fst Hscd_workloads.Kernels.all)

let read_program name =
  match Hscd_workloads.Perfect.find name with
  | Some e -> e.build ()
  | None -> (
    match List.assoc_opt name Hscd_workloads.Kernels.all with
    | Some b -> b ()
    | None ->
      if Sys.file_exists name then
        let ic = open_in name in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Hscd_lang.Parser.parse_exn s
      else
        Err.fail Err.Usage "%s: not a benchmark, kernel or file (known: %s)" name
          (known_programs ()))

let program_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"PROGRAM" ~doc:"PFL source file, Perfect Club benchmark or kernel name")

let scheme_conv =
  let parse s =
    match String.uppercase_ascii s with
    | "BASE" -> Ok Hscd_sim.Run.Base
    | "SC" -> Ok Hscd_sim.Run.SC
    | "TPI" -> Ok Hscd_sim.Run.TPI
    | "HW" -> Ok Hscd_sim.Run.HW
    | "LIMITLESS" -> Ok Hscd_sim.Run.LimitLESS
    | "VC" -> Ok Hscd_sim.Run.VC
    | "INV" -> Ok Hscd_sim.Run.INV
    | _ -> Error (`Msg "scheme must be BASE, SC, INV, VC, TPI, HW or LimitLESS")
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Hscd_sim.Run.scheme_name k))

let scheme_arg =
  Arg.(value & opt scheme_conv Hscd_sim.Run.TPI & info [ "s"; "scheme" ] ~doc:"Coherence scheme")

let procs_arg =
  Arg.(value & opt int 16 & info [ "p"; "processors" ] ~doc:"Number of processors")

let line_arg =
  Arg.(value & opt int 4 & info [ "line-words" ] ~doc:"Cache line size in words")

let tag_arg = Arg.(value & opt int 8 & info [ "timetag-bits" ] ~doc:"TPI timetag width")

(* --jobs N: domains for the scheme/experiment fan-out. Default: HSCD_JOBS
   if set, else Domain.recommended_domain_count (). Any value produces
   bit-identical results; it only changes wall-clock time. *)
let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ]
           ~doc:"Worker domains for parallel simulation (default: $(b,HSCD_JOBS) or the \
                 recommended domain count); results are identical for any value")

let resolve_jobs = function
  | Some n when n > 0 -> n
  | Some _ -> 1
  | None -> Hscd_util.Pool.default_jobs ()

(* --resume FILE: checkpoint journal for supervised sweeps. Completed
   cells are appended as they finish; rerunning with the same file skips
   them bit-identically (after a crash, ^C or timeout). *)
let resume_arg =
  Arg.(value & opt (some string) None
       & info [ "resume"; "checkpoint" ] ~docv:"FILE"
           ~doc:"Journal completed cells to $(docv) and resume from it: a rerun skips \
                 already-completed work bit-identically, even after a crash or kill")

let retries_arg =
  Arg.(value & opt int Hscd_util.Pool.default_policy.Hscd_util.Pool.retries
       & info [ "retries" ] ~doc:"Retry budget per simulation cell (transient failures)")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "task-timeout" ] ~docv:"SECS"
           ~doc:"Per-cell deadline in seconds; a cell past it is abandoned and retried \
                 on a fresh worker")

let policy_of retries deadline =
  { Hscd_util.Pool.default_policy with Hscd_util.Pool.retries; deadline }

let cfg_of processors line_words timetag_bits =
  { Hscd_arch.Config.default with processors; line_words; timetag_bits }

let print_metrics kind (r : Hscd_sim.Engine.result) =
  let m = r.metrics in
  let module Metrics = Hscd_sim.Metrics in
  Printf.printf "%-9s  cycles %10d  miss %6.2f%%  avg miss lat %7.1f  viol %d  mem %s\n"
    (Hscd_sim.Run.scheme_name kind) r.cycles
    (100.0 *. Metrics.miss_rate m)
    (Metrics.avg_read_miss_latency m)
    m.violations
    (if r.memory_ok then "ok" else "CORRUPT");
  Printf.printf
    "           reads %d writes %d | cold %d repl %d true %d false %d conservative %d reset %d uncached %d\n"
    (Metrics.reads m) (Metrics.writes m)
    (Metrics.class_count m Hscd_coherence.Scheme.Cold)
    (Metrics.class_count m Hscd_coherence.Scheme.Replacement)
    (Metrics.class_count m Hscd_coherence.Scheme.True_sharing)
    (Metrics.class_count m Hscd_coherence.Scheme.False_sharing)
    (Metrics.class_count m Hscd_coherence.Scheme.Conservative)
    (Metrics.class_count m Hscd_coherence.Scheme.Reset_inv)
    (Metrics.class_count m Hscd_coherence.Scheme.Uncached);
  Printf.printf "           traffic r/w/coh/ctl %d/%d/%d/%d words, net load %.3f\n"
    m.traffic.reads m.traffic.writes m.traffic.coherence m.traffic.control r.network_load

let mark_cmd =
  let run name =
    let prog = read_program name in
    let listing, census = Core.mark prog in
    print_endline listing;
    Hscd_compiler.Report.print_census census
  in
  Cmd.v (Cmd.info "mark" ~doc:"Run the coherence compiler and show the marked listing")
    Term.(const run $ program_arg)

let sim_cmd =
  let run name scheme procs line tag =
    let cfg = cfg_of procs line tag in
    let prog = read_program name in
    let _, r = Hscd_sim.Run.run_source ~cfg scheme prog in
    print_metrics scheme r
  in
  Cmd.v (Cmd.info "sim" ~doc:"Simulate one coherence scheme")
    Term.(const run $ program_arg $ scheme_arg $ procs_arg $ line_arg $ tag_arg)

let compare_cmd =
  let run name procs line tag jobs resume retries timeout =
    install_exit_signals ();
    let cfg = cfg_of procs line tag in
    let prog = read_program name in
    let c, results =
      Err.get_exn
        (Hscd_sim.Run.compare_result ~cfg ~schemes:Hscd_sim.Run.extended_schemes
           ~jobs:(resolve_jobs jobs) ~policy:(policy_of retries timeout) ?checkpoint:resume prog)
    in
    Printf.printf "epochs %d, events %d\n"
      (Hscd_sim.Trace.packed_n_epochs c.packed_trace)
      c.packed_trace.Hscd_sim.Trace.p_total_events;
    List.iter (fun (r : Hscd_sim.Run.comparison) -> print_metrics r.kind r.result) results
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare all schemes on the same trace")
    Term.(const run $ program_arg $ procs_arg $ line_arg $ tag_arg $ jobs_arg $ resume_arg
          $ retries_arg $ timeout_arg)

let experiment_cmd =
  let run id small jobs resume retries timeout =
    install_exit_signals ();
    let jobs = resolve_jobs jobs in
    (* --resume (or a non-default policy) switches every run_all onto the
       supervised pool; cell keys embed the config, so one journal file
       serves the whole 'all' sweep *)
    if resume <> None || timeout <> None
       || retries <> Hscd_util.Pool.default_policy.Hscd_util.Pool.retries
    then
      Hscd_experiments.Common.set_supervision ~policy:(policy_of retries timeout)
        ?checkpoint:resume ();
    match id with
    | "all" ->
      List.iter
        (Hscd_experiments.Experiments.run_and_print ~small ~jobs)
        Hscd_experiments.Experiments.all
    | _ -> (
      match Hscd_experiments.Experiments.find id with
      | Some e -> Hscd_experiments.Experiments.run_and_print ~small ~jobs e
      | None ->
        Err.fail Err.Usage "unknown experiment %s (known: all, %s)" id
          (String.concat ", "
             (List.map
                (fun (e : Hscd_experiments.Experiments.t) -> e.id)
                Hscd_experiments.Experiments.all)))
  in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let small_arg = Arg.(value & flag & info [ "small" ] ~doc:"Use test-scale benchmark sizes") in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a paper table/figure (or 'all')")
    Term.(const run $ id_arg $ small_arg $ jobs_arg $ resume_arg $ retries_arg $ timeout_arg)

let trace_cmd =
  let run name out binary =
    let prog = read_program name in
    let c = Hscd_sim.Run.compile prog in
    if binary then Hscd_sim.Trace_io.write_packed out c.Hscd_sim.Run.packed_trace
    else Hscd_sim.Trace_io.save out (Hscd_sim.Run.boxed_trace c);
    Printf.printf "wrote %s (%s): %d epochs, %d events\n" out
      (if binary then "binary" else "text")
      (Hscd_sim.Trace.packed_n_epochs c.packed_trace)
      c.packed_trace.Hscd_sim.Trace.p_total_events
  in
  let out_arg =
    Arg.(value & opt string "trace.txt" & info [ "o"; "output" ] ~doc:"Output file")
  in
  let binary_arg =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Write the binary packed format (direct slab dump, checksummed) instead of text")
  in
  Cmd.v (Cmd.info "trace" ~doc:"Compile a program and dump its event trace to a file")
    Term.(const run $ program_arg $ out_arg $ binary_arg)

let replay_cmd =
  let run path scheme procs line tag boxed binary jobs shards =
    let cfg = cfg_of procs line tag in
    (* --shards (or --jobs as a shorthand for shards = worker count) selects
       the sharded engine; the default path is the sequential engine,
       unchanged. Binary traces are sniffed by magic; --binary forces the
       attempt. The non-boxed binary path memory-maps the file and
       validates slab checksums lazily as replay enters each epoch. *)
    let is_bin = binary || Hscd_sim.Trace_io.is_binary path in
    let sharded = shards <> None || jobs <> None in
    let r =
      if sharded then begin
        if boxed then
          Err.fail Err.Usage "--boxed replays the legacy loop; it cannot be sharded";
        let shards =
          match shards with Some s -> s | None -> resolve_jobs jobs
        in
        let parallel = match jobs with Some j when j <= 1 -> false | _ -> true in
        if is_bin then
          Hscd_sim.Run.simulate_mapped_sharded ~cfg ~parallel ~shards scheme
            (Hscd_sim.Trace_io.map_packed path)
        else
          Hscd_sim.Run.simulate_packed_sharded ~cfg ~parallel ~shards scheme
            (Hscd_sim.Trace.pack (Hscd_sim.Trace_io.load path))
      end
      else if is_bin then begin
        if boxed then
          Hscd_sim.Run.simulate_boxed ~cfg scheme
            (Hscd_sim.Trace.unpack (Hscd_sim.Trace_io.read_packed path))
        else
          Hscd_sim.Run.simulate_mapped ~cfg scheme (Hscd_sim.Trace_io.map_packed path)
      end
      else
        let trace = Hscd_sim.Trace_io.load path in
        if boxed then Hscd_sim.Run.simulate_boxed ~cfg scheme trace
        else Hscd_sim.Run.simulate ~cfg scheme trace
    in
    print_metrics scheme r
  in
  let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE") in
  let boxed_arg =
    Arg.(
      value & flag
      & info [ "boxed" ]
          ~doc:"Replay through the legacy boxed event loop instead of the packed engine path")
  in
  let binary_arg =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Force reading the binary packed format (auto-detected by magic otherwise)")
  in
  let shards_arg =
    Arg.(
      value & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:"Replay through the sharded engine with $(docv) address-partitioned slices \
                (default when only $(b,--jobs) is given: the resolved job count). Results \
                are bit-identical for every shard count; requires static scheduling")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Simulate a previously dumped trace file (text or binary)"
       ~man:
         [
           `S Manpage.s_description;
           `P "Replays a trace written by $(b,hscd trace). Binary packed traces \
               ($(b,--binary) or auto-detected) are memory-mapped and their slab \
               checksums validated lazily, one epoch span at a time, so replaying the \
               first epoch touches O(header + epoch) bytes of the file.";
           `P "$(b,--shards)/$(b,--jobs) switch to the sharded engine: the trace is \
               partitioned by cache-set group into independent replay slices, merged at \
               every epoch barrier. The result is bit-identical at any shard count; with \
               $(b,--jobs) > 1 (or $(b,HSCD_JOBS)) the slices run on a persistent domain \
               team.";
         ])
    Term.(const run $ path_arg $ scheme_arg $ procs_arg $ line_arg $ tag_arg $ boxed_arg
          $ binary_arg $ jobs_arg $ shards_arg)

let fuzz_cmd =
  let module F = Hscd_check.Fuzz in
  let module Oracle = Hscd_check.Oracle in
  let run seed count no_shrink save corpus write_corpus jobs =
    install_exit_signals ();
    let jobs = resolve_jobs jobs in
    match (write_corpus, corpus) with
    | Some dir, _ ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let paths = F.write_corpus ~dir in
      List.iter (fun p -> Printf.printf "wrote %s\n" p) paths
    | None, Some dir ->
      if not (Sys.file_exists dir && Sys.is_directory dir) then
        Err.fail Err.Usage "%s: not a directory" dir;
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".trace")
        |> List.sort compare
        |> List.map (Filename.concat dir)
      in
      if files = [] then Err.fail Err.Usage "no .trace files in %s" dir;
      let bad = ref 0 in
      List.iter
        (fun (path, o) ->
          if Oracle.ok o then Printf.printf "%-40s ok\n" path
          else begin
            incr bad;
            Printf.printf "%-40s FAIL\n%s" path (Oracle.describe o)
          end)
        (F.replay_corpus ~jobs files);
      if !bad > 0 then Err.fail Err.Check "%d corpus trace(s) failed the oracle" !bad
    | None, None ->
      let r = F.fuzz ~shrink:(not no_shrink) ~jobs ~seed ~count () in
      Printf.printf "fuzz: %d iterations, %d events, %d failure(s)\n" r.F.iterations
        r.F.total_events
        (List.length r.F.failures);
      List.iter
        (fun (f : F.failure) ->
          Printf.printf "\nFAILURE at iteration %d\n  params: %s\n%s"
            f.F.index (Hscd_check.Gen.describe f.F.params)
            (Oracle.describe f.F.outcome);
          (match f.F.shrunk with
          | Some t ->
            Printf.printf "  shrunk from %d to %d events\n"
              (Hscd_check.Shrink.event_count f.F.trace)
              (Hscd_check.Shrink.event_count t)
          | None -> ());
          match save with
          | Some dir ->
            (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            let trace = Option.value f.F.shrunk ~default:f.F.trace in
            let path =
              Filename.concat dir (Printf.sprintf "repro-seed%d-iter%d.trace" seed f.F.index)
            in
            Hscd_sim.Trace_io.save path trace;
            Printf.printf "  repro written to %s\n" path
          | None -> ())
        r.F.failures;
      if r.F.failures <> [] then
        Err.fail Err.Check "fuzzing found %d failure(s)" (List.length r.F.failures)
  in
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Master PRNG seed") in
  let count_arg = Arg.(value & opt int 100 & info [ "count" ] ~doc:"Number of iterations") in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip delta-debugging of failures")
  in
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"DIR" ~doc:"Write failing repro traces to $(docv)")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR" ~doc:"Replay all .trace files in $(docv) instead of fuzzing")
  in
  let write_corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "write-corpus" ] ~docv:"DIR" ~doc:"Regenerate the seed corpus into $(docv) and exit")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random traces through all four schemes with invariant monitors")
    Term.(const run $ seed_arg $ count_arg $ no_shrink_arg $ save_arg $ corpus_arg $ write_corpus_arg
          $ jobs_arg)

let check_cmd =
  let module Mc = Hscd_check.Mc in
  let module Oracle = Hscd_check.Oracle in
  let module Fault = Hscd_check.Fault in
  let fault_conv =
    let parse s =
      let prefixed p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
      let tail p = String.sub s (String.length p) (String.length s - String.length p) in
      match s with
      | "ignore-time-read" -> Ok Fault.Ignore_time_read
      | "skip-epoch-boundary" -> Ok Fault.Skip_epoch_boundary
      | _ when prefixed "stale-time-read+" -> (
        match int_of_string_opt (tail "stale-time-read+") with
        | Some k when k > 0 -> Ok (Fault.Stale_time_read k)
        | _ -> Error (`Msg "stale-time-read+K needs a positive K"))
      | _ when prefixed "corrupt-read-" -> (
        match int_of_string_opt (tail "corrupt-read-") with
        | Some n when n > 0 -> Ok (Fault.Corrupt_read_value n)
        | _ -> Error (`Msg "corrupt-read-N needs a positive N"))
      | _ ->
        Error
          (`Msg
             "fault must be stale-time-read+K, ignore-time-read, skip-epoch-boundary or \
              corrupt-read-N")
    in
    Arg.conv (parse, fun fmt f -> Format.pp_print_string fmt (Fault.name f))
  in
  let run scheme procs words depth line tag migration max_states fault jobs =
    let scope =
      { Mc.procs; words; line_words = line; timetag_bits = tag; depth; migration; max_states }
    in
    let schemes =
      match scheme with Some k -> [ k ] | None -> Hscd_sim.Run.extended_schemes
    in
    Printf.printf "bounded check: %s%s\n%!" (Mc.describe_scope scope)
      (match fault with Some f -> ", fault " ^ Fault.name f | None -> "");
    let jobs = resolve_jobs jobs in
    let reports = Mc.check_all ?fault ~jobs ~schemes scope in
    List.iter (fun r -> print_endline (Mc.describe r)) reports;
    List.iter
      (fun (r : Mc.report) ->
        match r.Mc.counterexample with
        | None -> ()
        | Some cx ->
          let _trace, o = Mc.replay ?fault ~jobs scope cx in
          Printf.printf "engine replay of the %s counterexample: %s\n%s"
            (Hscd_sim.Run.scheme_name r.Mc.kind)
            (if Oracle.ok o then "oracle CLEAN (abstract violation not reproduced)"
             else "oracle flags it")
            (Oracle.describe o))
      reports;
    let bad = List.length (List.filter (fun r -> not (Mc.ok r)) reports) in
    if bad > 0 then Err.fail Err.Check "%d scheme(s) failed the bounded check" bad
  in
  let scheme_opt_arg =
    Arg.(value & opt (some scheme_conv) None
         & info [ "s"; "scheme" ] ~doc:"Scheme to check (default: all seven)")
  in
  let procs_arg =
    Arg.(value & opt int Mc.default_scope.Mc.procs
         & info [ "p"; "procs" ] ~doc:"Processors (= tasks per parallel epoch)")
  in
  let words_arg =
    Arg.(value & opt int Mc.default_scope.Mc.words & info [ "w"; "words" ] ~doc:"Shared data words")
  in
  let depth_arg =
    Arg.(value & opt int Mc.default_scope.Mc.depth
         & info [ "d"; "depth" ] ~doc:"Bound on actions per explored path")
  in
  let line_arg =
    Arg.(value & opt int Mc.default_scope.Mc.line_words
         & info [ "line-words" ] ~doc:"Cache line size in words")
  in
  let tag_arg =
    Arg.(value & opt int Mc.default_scope.Mc.timetag_bits
         & info [ "timetag-bits" ] ~doc:"TPI timetag width (2 = tightest wrap window)")
  in
  let migration_arg =
    Arg.(value & flag
         & info [ "migration" ]
             ~doc:"Explore under dynamic scheduling with mid-task migration guard rules")
  in
  let max_states_arg =
    Arg.(value & opt int Mc.default_scope.Mc.max_states
         & info [ "max-states" ] ~doc:"State cap; the search reports truncation beyond it")
  in
  let fault_arg =
    Arg.(value & opt (some fault_conv) None
         & info [ "fault" ] ~docv:"FAULT"
             ~doc:"Inject a coherence bug (stale-time-read+K, ignore-time-read, \
                   skip-epoch-boundary, corrupt-read-N) and expect a counterexample")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Bounded exhaustive model check of the coherence schemes with counterexample \
             replay through the timing engine")
    Term.(const run $ scheme_opt_arg $ procs_arg $ words_arg $ depth_arg $ line_arg $ tag_arg
          $ migration_arg $ max_states_arg $ fault_arg $ jobs_arg)

(* ---- service mode: the sweep daemon and its client ---- *)

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "hscd.sock"

let socket_arg =
  Arg.(value & opt string default_socket
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the daemon")

let tenant_name_arg =
  Arg.(value & opt string "default" & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant to submit as")

let serve_cmd =
  let module Server = Hscd_service.Server in
  let tenant_conv =
    (* NAME:WEIGHT:CAPACITY, e.g. ci:4:32 *)
    let parse s =
      match String.split_on_char ':' s with
      | [ name; w; c ] -> (
        match (int_of_string_opt w, int_of_string_opt c) with
        | Some weight, Some capacity when weight >= 1 && capacity >= 1 ->
          Ok (name, { Hscd_service.Scheduler.weight; capacity })
        | _ -> Error (`Msg "tenant WEIGHT and CAPACITY must be integers >= 1")
        )
      | _ -> Error (`Msg "tenant spec must be NAME:WEIGHT:CAPACITY")
    in
    let print fmt (n, (c : Hscd_service.Scheduler.config)) =
      Format.fprintf fmt "%s:%d:%d" n c.weight c.capacity
    in
    Arg.conv (parse, print)
  in
  let run socket state tenants strict max_pending =
    Server.install_signal_handlers ();
    let settings =
      {
        (Server.default_settings ~socket ~state_dir:state) with
        Server.tenants;
        strict;
        max_pending;
      }
    in
    Err.get_exn (Server.serve settings)
  in
  let state_arg =
    Arg.(value & opt string "hscd-state"
         & info [ "state" ] ~docv:"DIR"
             ~doc:"State directory: the admission journal and per-job cell journals that \
                   make a kill-and-restart resume bit-identically")
  in
  let tenants_arg =
    Arg.(value & opt_all tenant_conv []
         & info [ "tenant" ] ~docv:"NAME:WEIGHT:CAPACITY"
             ~doc:"Declare a tenant with its round-robin weight and bounded queue \
                   capacity (repeatable)")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Reject submissions from tenants not declared with $(b,--tenant) \
                   (otherwise unknown tenants are admitted with weight 1)")
  in
  let max_pending_arg =
    Arg.(value & opt int 256
         & info [ "max-pending" ] ~docv:"N"
             ~doc:"Global cap on queued jobs across all tenants; beyond it submissions \
                   get a Busy reply")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the multi-tenant sweep daemon"
       ~man:
         [
           `S Manpage.s_description;
           `P "Serves compile/compare/sweep jobs from many concurrent clients over a \
               Unix-domain socket, scheduling tenants by two-stage weighted round-robin \
               (weighted pick of tenant, FCFS within the tenant) with bounded queues. \
               Every accepted job is journaled before it is acknowledged, and every \
               completed simulation cell is journaled as it finishes, so killing the \
               daemon at any instant loses at most the in-flight cell: a restarted \
               daemon resumes unfinished jobs bit-identically.";
           `P "SIGTERM or SIGINT drains gracefully: admission stops (Busy replies), the \
               in-flight cell finishes and is checkpointed, and the daemon exits 0.";
         ])
    Term.(const run $ socket_arg $ state_arg $ tenants_arg $ strict_arg $ max_pending_arg)

let submit_cmd =
  let module P = Hscd_service.Protocol in
  let module Client = Hscd_service.Client in
  let schemes_conv =
    let parse s = Ok (String.split_on_char ',' s |> List.map String.trim) in
    Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (String.concat "," l))
  in
  let run kind target schemes procs line tag small socket tenant =
    let cfg = { P.processors = procs; line_words = line; timetag_bits = tag } in
    let need_target () =
      match target with
      | Some t -> t
      | None -> Err.fail Err.Usage "%s needs a TARGET (benchmark or kernel name)" kind
    in
    let spec =
      match kind with
      | "compile" -> P.Compile { target = need_target (); cfg; small }
      | "compare" -> P.Compare { target = need_target (); schemes; cfg; small }
      | "sweep" -> P.Sweep { schemes; cfg; small }
      | k -> Err.fail Err.Usage "unknown job kind %s (known: compile, compare, sweep)" k
    in
    let on_progress ~cell ~finished ~total =
      Printf.printf "cell %-16s (%d/%d)\n%!" cell finished total
    in
    match Err.get_exn (Client.run_job ~on_progress ~socket ~tenant spec) with
    | P.Compiled { target; epochs; events } ->
      Printf.printf "compiled %s: %d epochs, %d events\n" target epochs events
    | P.Cells cells ->
      List.iter
        (fun { P.cell; result } ->
          Printf.printf "%s\n" cell;
          match Hscd_sim.Run.scheme_of_name (List.hd (List.rev (String.split_on_char '/' cell))) with
          | Ok k -> print_metrics k result
          | Error _ -> ())
        cells
  in
  let kind_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"KIND" ~doc:"Job kind: compile, compare or sweep")
  in
  let target_arg =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"TARGET" ~doc:"Benchmark or kernel (compile/compare jobs)")
  in
  let schemes_arg =
    Arg.(value & opt schemes_conv [ "BASE"; "SC"; "TPI"; "HW" ]
         & info [ "schemes" ] ~docv:"LIST" ~doc:"Comma-separated coherence schemes")
  in
  let small_arg =
    Arg.(value & flag & info [ "small" ] ~doc:"Use test-scale benchmark sizes")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a job to a running sweep daemon and wait for the result"
       ~man:
         [
           `S Manpage.s_description;
           `P "Connects to $(b,hscd serve), submits one job, streams per-cell progress \
               and prints the results. The job's identity is the digest of its spec: \
               resubmitting after a daemon crash (or from a second client) attaches to \
               the same execution and journal rather than recomputing. Busy replies \
               (bounded tenant queue full, daemon draining) and daemon restarts are \
               retried with bounded exponential backoff; Rejected replies (unknown \
               tenant under --strict, invalid job) exit immediately with code 5.";
         ])
    Term.(const run $ kind_arg $ target_arg $ schemes_arg $ procs_arg $ line_arg $ tag_arg
          $ small_arg $ socket_arg $ tenant_name_arg)

let list_cmd =
  let run () =
    print_endline "Perfect Club benchmark models:";
    List.iter
      (fun (e : Hscd_workloads.Perfect.entry) -> Printf.printf "  %-8s %s\n" e.name e.description)
      Hscd_workloads.Perfect.all;
    print_endline "Microkernels:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Hscd_workloads.Kernels.all;
    print_endline "Experiments:";
    List.iter
      (fun (e : Hscd_experiments.Experiments.t) ->
        Printf.printf "  %-10s %s (%s)\n" e.id e.title e.paper_ref)
      Hscd_experiments.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks, kernels and experiments") Term.(const run $ const ())

(* Normalized exit codes: 0 success, 1 result failure (fuzz findings,
   corrupt input, failed sweep), 2 usage error, 3 internal error, 4 busy
   (service backpressure), 5 rejected (service admission policy), and
   128+signum after SIGINT/SIGTERM (130/143). *)
let () =
  let man =
    [
      `S Manpage.s_exit_status;
      `P "$(b,0) on success (including a daemon's graceful SIGTERM drain); $(b,1) on a \
          result failure (the fuzzer found bugs, an input was corrupt, a sweep could not \
          complete); $(b,2) on usage errors; $(b,3) on internal errors; $(b,4) when the \
          service answered Busy (bounded queue full or draining — retryable); $(b,5) when \
          the service rejected the job (unknown tenant under --strict, invalid job — not \
          retryable); $(b,130)/$(b,143) (128+signum) when a long-running command was \
          interrupted by SIGINT/SIGTERM after checkpointing completed cells.";
    ]
  in
  let info =
    Cmd.info "hscd" ~version:"1.0.0" ~man
      ~doc:"HSCD cache coherence reproduction (Choi & Yew, ISCA'96)"
  in
  let group =
    Cmd.group info
      [ mark_cmd; sim_cmd; compare_cmd; experiment_cmd; trace_cmd; replay_cmd; fuzz_cmd;
        check_cmd; serve_cmd; submit_cmd; list_cmd ]
  in
  let code =
    match Cmd.eval_value ~catch:false group with
    | Ok (`Ok ()) -> 0
    | Ok `Help | Ok `Version -> 0
    | Error (`Parse | `Term) -> 2 (* cmdliner already printed the usage message *)
    | Error `Exn -> 3 (* unreachable with ~catch:false, kept for totality *)
    | exception Err.Error e ->
      Printf.eprintf "hscd: %s\n" (Err.to_string e);
      Err.exit_code e
    | exception exn ->
      Printf.eprintf "hscd: internal error: %s\n" (Printexc.to_string exn);
      3
  in
  exit code
