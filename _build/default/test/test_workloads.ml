(** Tests for the workload suite: every kernel and benchmark model must be
    sema-clean, race-free, deterministic, and coherent under every scheme
    at test scale. *)

module Sema = Hscd_lang.Sema
module Eval = Hscd_lang.Eval
module Run = Hscd_sim.Run
module Metrics = Hscd_sim.Metrics
module Kernels = Hscd_workloads.Kernels
module Perfect = Hscd_workloads.Perfect

let test_kernels_sema_clean () =
  List.iter
    (fun (name, build) ->
      match Sema.check (build ()) with
      | _, issues ->
        Alcotest.(check (list string)) (name ^ " errors") []
          (List.map (fun (i : Sema.issue) -> i.message) (Sema.errors issues)))
    Kernels.all

let test_kernels_race_free_and_deterministic () =
  List.iter
    (fun (name, build) ->
      let p = Sema.check_exn (build ()) in
      let r1 = Eval.run p and r2 = Eval.run p in
      Alcotest.(check bool) (name ^ " deterministic") true
        (r1.Eval.final_memory = r2.Eval.final_memory))
    Kernels.all

let test_benchmarks_sema_clean () =
  List.iter
    (fun (e : Perfect.entry) ->
      ignore (Sema.check_exn (e.build_small ()));
      ignore (Sema.check_exn (e.build ())))
    Perfect.all

let test_benchmarks_coherent_small () =
  let cfg = { Hscd_arch.Config.default with processors = 8 } in
  List.iter
    (fun (e : Perfect.entry) ->
      let _, results = Run.compare ~cfg (e.build_small ()) in
      List.iter
        (fun (r : Run.comparison) ->
          Alcotest.(check int)
            (e.name ^ "/" ^ Run.scheme_name r.kind ^ " violations")
            0 r.result.metrics.violations;
          Alcotest.(check bool)
            (e.name ^ "/" ^ Run.scheme_name r.kind ^ " memory")
            true r.result.memory_ok)
        results)
    Perfect.all

let test_benchmark_characters () =
  (* each model must exhibit the sharing behaviour it was built for *)
  let cfg = Hscd_arch.Config.default in
  let miss name kind =
    let e = Option.get (Perfect.find name) in
    let _, r = Run.run_source ~cfg kind (e.build_small ()) in
    Alcotest.(check int) (name ^ " coherent") 0 r.metrics.violations;
    r.metrics
  in
  (* QCD2's blackbox subscripts leave TPI with elevated misses *)
  let qcd_tpi = miss "QCD2" Run.TPI in
  let flo_tpi = miss "FLO52" Run.TPI in
  Alcotest.(check bool) "QCD2 misses more than FLO52 under TPI" true
    (Metrics.miss_rate qcd_tpi > Metrics.miss_rate flo_tpi);
  (* ARC2D's column sweeps produce false sharing under HW *)
  let arc_hw = miss "ARC2D" Run.HW in
  Alcotest.(check bool) "ARC2D false sharing present" true
    (Metrics.class_count arc_hw Hscd_coherence.Scheme.False_sharing > 0);
  (* TRFD's accumulations produce redundant write traffic: a write cache
     removes a large share of it *)
  let e = Option.get (Perfect.find "TRFD") in
  let plain = (snd (Run.run_source ~cfg Run.TPI (e.build_small ()))).metrics.traffic in
  let wc_cfg = { cfg with write_buffer = Hscd_arch.Config.Write_cache 16 } in
  let wcache = (snd (Run.run_source ~cfg:wc_cfg Run.TPI (e.build_small ()))).metrics.traffic in
  Alcotest.(check bool) "write cache cuts TRFD write traffic" true
    (wcache.writes * 2 < plain.writes)

let test_registry () =
  Alcotest.(check int) "six benchmarks" 6 (List.length Perfect.all);
  Alcotest.(check bool) "find is case-insensitive" true (Perfect.find "ocean" <> None);
  Alcotest.(check bool) "unknown" true (Perfect.find "nope" = None);
  Alcotest.(check (list string)) "names"
    [ "TRFD"; "FLO52"; "OCEAN"; "QCD2"; "SPEC77"; "ARC2D" ] Perfect.names

let test_kernel_results () =
  (* golden outputs of a few kernels, as concrete value checks *)
  let r = Eval.run (Sema.check_exn (Kernels.matmul ~n:4 ())) in
  (* c = a*b with a(i,j)=i+j, b(i,j)=i-j: c(0,0) = sum_k k*k = 14 *)
  Alcotest.(check int) "matmul c00" 14 (Eval.peek r "mc" [ 0; 0 ]);
  let r = Eval.run (Sema.check_exn (Kernels.transpose ~n:8 ())) in
  Alcotest.(check int) "transpose" (Eval.peek r "m" [ 2; 5 ]) (Eval.peek r "mt" [ 5; 2 ])

let suite =
  [
    Alcotest.test_case "kernels sema-clean" `Quick test_kernels_sema_clean;
    Alcotest.test_case "kernels deterministic" `Quick test_kernels_race_free_and_deterministic;
    Alcotest.test_case "benchmarks sema-clean" `Quick test_benchmarks_sema_clean;
    Alcotest.test_case "benchmarks coherent (small)" `Quick test_benchmarks_coherent_small;
    Alcotest.test_case "benchmark characters" `Quick test_benchmark_characters;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "kernel golden values" `Quick test_kernel_results;
  ]
