(** Tests for the compiler middle layers: GSA symbolic analysis,
    segmentation, call graph and the epoch flow graph distances. *)

module Ast = Hscd_lang.Ast
module Sema = Hscd_lang.Sema
module B = Hscd_lang.Builder
module Affine = Hscd_compiler.Affine
module Gsa = Hscd_compiler.Gsa
module Segment = Hscd_compiler.Segment
module Callgraph = Hscd_compiler.Callgraph
module Epochgraph = Hscd_compiler.Epochgraph
module Analysis = Hscd_compiler.Analysis
module Sint = Hscd_compiler.Sections.Sint

(* --- GSA --- *)

let ctx_with_loop ?(parallel = false) index lo hi =
  Gsa.push_loop Gsa.empty_ctx
    { Gsa.index; lo = Affine.const lo; hi = Affine.const hi; parallel }

let test_expr_to_affine () =
  let ctx = Gsa.bind (ctx_with_loop "i" 0 9) "x" (Affine.var ~coef:2 "i") in
  let aff = Gsa.expr_to_affine ctx B.(var "x" %+ var "i" %+ int 3) in
  Alcotest.(check int) "coef i" 3 (Affine.coef_of "i" aff);
  Alcotest.(check bool) "eval" true (Affine.eval [ ("i", 2) ] aff = Some 9);
  (* division produces unknown *)
  Alcotest.(check bool) "div unknown" true
    (Gsa.expr_to_affine ctx B.(var "i" %/ int 2) = Affine.unknown);
  (* array reads are opaque *)
  Alcotest.(check bool) "aref unknown" true
    (Gsa.expr_to_affine ctx (B.a1 "a" (B.var "i")) = Affine.unknown)

let test_gamma () =
  let base = Gsa.bind Gsa.empty_ctx "x" (Affine.const 1) in
  let a = Gsa.bind base "x" (Affine.const 2) in
  let b = Gsa.bind base "x" (Affine.const 2) in
  let merged = Gsa.gamma base a b in
  Alcotest.(check bool) "equal kept" true (Affine.equal (Gsa.lookup merged "x") (Affine.const 2));
  let c = Gsa.bind base "x" (Affine.const 3) in
  let merged2 = Gsa.gamma base a c in
  Alcotest.(check bool) "diverging lost" true (Gsa.lookup merged2 "x" = Affine.unknown)

let test_widen_subscript () =
  let ctx = ctx_with_loop "i" 0 9 in
  (* 2*i over i in [0,9], dim 32: {0..18 step 2} *)
  (match Gsa.widen_subscript ctx ~dim:32 (Affine.var ~coef:2 "i") with
  | Some s ->
    Alcotest.(check bool) "stride kept" true (Sint.mem 18 s && not (Sint.mem 17 s));
    Alcotest.(check bool) "clipped" true (s.Sint.lo = 0 && s.Sint.hi = 18)
  | None -> Alcotest.fail "non-empty expected");
  (* unknown range keeps congruence class: 2*k+1 with unbounded k *)
  let ctx2 = Gsa.push_loop Gsa.empty_ctx
      { Gsa.index = "k"; lo = Affine.unknown; hi = Affine.unknown; parallel = false } in
  (match Gsa.widen_subscript ctx2 ~dim:8 (Affine.add (Affine.var ~coef:2 "k") (Affine.const 1)) with
  | Some s -> Alcotest.(check bool) "odd congruence" true (Sint.mem 7 s && not (Sint.mem 6 s))
  | None -> Alcotest.fail "non-empty expected");
  (* provably out of range *)
  Alcotest.(check bool) "empty when out of dim" true
    (Gsa.widen_subscript (ctx_with_loop "i" 10 12) ~dim:4 (Affine.var "i") = None)

let test_anchor () =
  let ctx = ctx_with_loop ~parallel:true "i" 0 15 in
  let ctx = Gsa.push_loop ctx { Gsa.index = "j"; lo = Affine.const 0; hi = Affine.const 7; parallel = false } in
  (match Gsa.anchor_of_reference ctx [ B.(var "i" %+ int 1); B.var "j" ] with
  | Some a ->
    Alcotest.(check int) "dim" 0 a.Gsa.anchor_dim;
    Alcotest.(check int) "coef" 1 a.Gsa.coef;
    Alcotest.(check bool) "off" true (Affine.equal a.Gsa.off (Affine.const 1))
  | None -> Alcotest.fail "anchor expected");
  (* subscript mixing the doall index with an inner loop index cannot anchor
     on that dim *)
  Alcotest.(check bool) "mixed subscript no anchor" true
    (Gsa.anchor_of_reference ctx [ B.(var "i" %+ var "j") ] = None);
  (* no anchor outside a doall *)
  Alcotest.(check bool) "serial no anchor" true
    (Gsa.anchor_of_reference (ctx_with_loop "i" 0 3) [ B.var "i" ] = None)

(* --- segmentation --- *)

let seg_of program =
  let program = Sema.check_exn program in
  let cg = Callgraph.build program in
  let calls_epochs = Callgraph.contains_epochs cg in
  let main = Option.get (Ast.find_proc program program.entry) in
  (Segment.of_stmts ~calls_epochs main.body, main.body)

let test_segment_shapes () =
  let p =
    B.simple [ B.array "a" [ 8 ] ]
      [
        B.assign "x" (B.int 0);
        B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.var "i") (B.int 1) ];
        B.assign "y" (B.int 1);
        B.do_ "t" (B.int 0) (B.int 3)
          [ B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.var "i") (B.var "t") ] ];
      ]
  in
  let ir, original = seg_of p in
  (match ir with
  | [ Segment.USerial [ Ast.Assign _ ]; Segment.UPar _; Segment.USerial [ Ast.Assign _ ];
      Segment.UDo (_, [ Segment.UPar _ ]) ] -> ()
  | _ -> Alcotest.fail "unexpected segmentation shape");
  (* reconstruction is the identity *)
  Alcotest.(check bool) "roundtrip" true (Segment.to_stmts ir = original)

let test_segment_epoch_free_do_stays_serial () =
  let p =
    B.simple [ B.array "a" [ 8 ] ]
      [ B.do_ "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.var "i") (B.int 1) ] ]
  in
  match fst (seg_of p) with
  | [ Segment.USerial [ Ast.Do _ ] ] -> ()
  | _ -> Alcotest.fail "epoch-free do should stay inside a serial unit"

let test_segment_if_with_epochs () =
  let p =
    B.simple [ B.array "a" [ 8 ] ]
      [
        B.assign "c" (B.int 1);
        B.if_ B.(var "c" %> int 0)
          [ B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.var "i") (B.int 1) ] ]
          [ B.assign "d" (B.int 2) ];
      ]
  in
  match fst (seg_of p) with
  | [ Segment.USerial _; Segment.UIf (_, [ Segment.UPar _ ], [ Segment.USerial _ ]) ] -> ()
  | _ -> Alcotest.fail "if containing epochs should become UIf"

(* --- call graph --- *)

let test_callgraph () =
  let p =
    B.program
      [ B.array "a" [ 4 ] ]
      [
        B.proc "leaf" [] [ B.s1 "a" (B.int 0) (B.int 1) ];
        B.proc "mid" [] [ B.call "leaf" [] ];
        B.proc "par" [] [ B.doall "i" (B.int 0) (B.int 3) [ B.s1 "a" (B.var "i") (B.int 2) ] ];
        B.proc "main" [] [ B.call "mid" []; B.call "par" [] ];
      ]
  in
  let p = Sema.check_exn p in
  let cg = Callgraph.build p in
  let pos name = Option.get (List.find_index (String.equal name) cg.bottom_up) in
  Alcotest.(check bool) "leaf before mid" true (pos "leaf" < pos "mid");
  Alcotest.(check bool) "mid before main" true (pos "mid" < pos "main");
  let has_epochs = Callgraph.contains_epochs cg in
  Alcotest.(check bool) "par has epochs" true (has_epochs "par");
  Alcotest.(check bool) "main inherits epochs" true (has_epochs "main");
  Alcotest.(check bool) "leaf has none" false (has_epochs "leaf");
  let sites = Callgraph.call_sites cg in
  Alcotest.(check (list (pair string bool))) "leaf sites" [ ("mid", false) ] (sites "leaf")

(* --- epoch graph distances --- *)

(* Build the analysis for a program and return the graph for main. *)
let graph_of program =
  let program = Sema.check_exn program in
  let t = Analysis.analyze program in
  (t, Option.get (Analysis.find_proc_analysis t "main"))

let test_min_boundaries () =
  (* two doalls in sequence: at least 4 boundaries entry->exit *)
  let p =
    B.simple [ B.array "a" [ 8 ] ]
      [
        B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.var "i") (B.int 1) ];
        B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.var "i") (B.int 2) ];
      ]
  in
  let _, pa = graph_of p in
  Alcotest.(check int) "min boundaries" 4 pa.Analysis.summary.Epochgraph.min_boundaries

let test_min_boundaries_branch () =
  (* a doall under an if may be skipped: minimum is 0 *)
  let p =
    B.simple [ B.array "a" [ 8 ] ]
      [
        B.assign "c" (B.int 0);
        B.if_ B.(var "c" %> int 0)
          [ B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.var "i") (B.int 1) ] ]
          [];
      ]
  in
  let _, pa = graph_of p in
  Alcotest.(check int) "skippable" 0 pa.Analysis.summary.Epochgraph.min_boundaries

let test_mod_summary () =
  let p =
    B.program
      [ B.array "a" [ 8 ]; B.array "b" [ 8 ] ]
      [
        B.proc "writer" [] [ B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.var "i") (B.int 1) ] ];
        B.proc "main" [] [ B.call "writer" []; B.s1 "b" (B.int 0) (B.int 2) ];
      ]
  in
  let t, _ = graph_of p in
  let writer = Option.get (Analysis.find_proc_analysis t "writer") in
  Alcotest.(check bool) "writer mods a" true
    (Hscd_compiler.Sections.Map.find writer.Analysis.summary.Epochgraph.mod_map "a" <> None);
  Alcotest.(check bool) "writer does not mod b" true
    (Hscd_compiler.Sections.Map.find writer.Analysis.summary.Epochgraph.mod_map "b" = None)

let suite =
  [
    Alcotest.test_case "expr_to_affine" `Quick test_expr_to_affine;
    Alcotest.test_case "gamma merge" `Quick test_gamma;
    Alcotest.test_case "widen subscript" `Quick test_widen_subscript;
    Alcotest.test_case "anchors" `Quick test_anchor;
    Alcotest.test_case "segment shapes" `Quick test_segment_shapes;
    Alcotest.test_case "epoch-free do" `Quick test_segment_epoch_free_do_stays_serial;
    Alcotest.test_case "if with epochs" `Quick test_segment_if_with_epochs;
    Alcotest.test_case "call graph" `Quick test_callgraph;
    Alcotest.test_case "min boundaries" `Quick test_min_boundaries;
    Alcotest.test_case "min boundaries branch" `Quick test_min_boundaries_branch;
    Alcotest.test_case "mod summaries" `Quick test_mod_summary;
  ]
