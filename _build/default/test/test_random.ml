(** The whole-stack soundness property: for *random* race-free parallel
    programs, the compiler's marks must never let any scheme return a
    stale value — every load is checked against the golden interpreter and
    the final memories must match.

    The generator builds programs from a vocabulary of epoch shapes
    (owner-partitioned DOALLs with stencil/affine/blackbox reads, serial
    sweeps, epoch-bearing loops, branches, procedure calls, critical
    sections). Race freedom is by construction — within a parallel epoch a
    task writes only its own elements and reads arrays written this epoch
    only at its own index — and the interpreter's race checker verifies
    the generator's claim on every case. *)

module Ast = Hscd_lang.Ast
module B = Hscd_lang.Builder
module Config = Hscd_arch.Config
module Run = Hscd_sim.Run

let n = 24 (* array extent *)
let arrays = [ "a"; "b"; "c" ]

(* A random read expression for a parallel-epoch body over index [i].
   [written] is the array written by this epoch and [own_idx] the element
   the task owns: reads of the written array stay at that element; other
   arrays may be read anywhere. *)
let gen_read ~ivar ~written ~own_idx =
  let open QCheck.Gen in
  let* arr = oneofl arrays in
  if arr = written then return (B.aref arr [ own_idx ])
  else
    oneof
      [
        return (B.a1 arr (B.var ivar));
        (let* o = int_range 1 3 in
         return (B.a1 arr B.(min_ (var ivar %+ int o) (int (n - 1)))));
        (let* o = int_range 1 3 in
         return (B.a1 arr B.(max_ (var ivar %- int o) (int 0))));
        (let* k = int_range 0 (n - 1) in
         return (B.a1 arr (B.int k)));
        return (B.a1 arr B.(blackbox "h" [ var ivar ] %% int n));
        (* strided read *)
        return (B.a1 arr B.((var ivar %* int 2) %% int n));
      ]

let gen_rhs ~ivar ~written ~own_idx =
  let open QCheck.Gen in
  let* reads = list_size (int_range 1 3) (gen_read ~ivar ~written ~own_idx) in
  let* c = int_range 0 9 in
  return (List.fold_left (fun acc r -> B.(acc %+ r)) (B.int c) reads)

(* One parallel epoch: every task writes element i of [target] (or 2i with
   a stride), possibly reading other arrays. *)
let gen_parallel_epoch =
  let open QCheck.Gen in
  let* target = oneofl arrays in
  let* strided = bool in
  let idx = if strided then B.(var "i" %* int 2 %% int n) else B.var "i" in
  let* rhs = gen_rhs ~ivar:"i" ~written:target ~own_idx:idx in
  (* strided targets write 2i mod n: collisions would race, so restrict the
     space to the first half *)
  let hi = if strided then (n / 2) - 1 else n - 1 in
  return (B.doall "i" (B.int 0) (B.int hi) [ B.store target [ idx ] rhs ])

(* A serial sweep epoch. *)
let gen_serial_sweep =
  let open QCheck.Gen in
  let* target = oneofl arrays in
  let* rhs = gen_rhs ~ivar:"k" ~written:"" ~own_idx:(B.var "k") in
  return (B.do_ "k" (B.int 0) (B.int (n - 1)) [ B.store target [ B.var "k" ] rhs ])

(* A critical-section reduction epoch over array c's cell 0. *)
let gen_reduction_epoch =
  let open QCheck.Gen in
  let* src = oneofl [ "a"; "b" ] in
  return
    (B.doall "i" (B.int 0) (B.int (n - 1))
       [ B.critical [ B.s1 "c" (B.int 0) B.(a1 "c" (int 0) %+ a1 src (var "i")) ] ])

let gen_top_stmt =
  let open QCheck.Gen in
  frequency
    [
      (5, gen_parallel_epoch);
      (2, gen_serial_sweep);
      (1, gen_reduction_epoch);
      (2,
       (* epoch-bearing serial loop *)
       let* inner = gen_parallel_epoch in
       let* trips = int_range 1 3 in
       return (B.do_ "t" (B.int 0) (B.int (trips - 1)) [ inner ]));
      (1,
       (* branch around an epoch; condition on a scalar *)
       let* inner = gen_parallel_epoch in
       let* other = gen_serial_sweep in
       return (B.if_ B.(var "flag" %> int 0) [ inner ] [ other ]));
    ]

let gen_program =
  let open QCheck.Gen in
  let* flag = int_range 0 1 in
  let* body = list_size (int_range 2 6) gen_top_stmt in
  let* use_proc = bool in
  let decls = List.map (fun a -> B.array a [ n ]) arrays in
  if use_proc then
    (* move the tail of the body into a procedure to exercise the
       interprocedural analysis *)
    let rec split k = function
      | [] -> ([], [])
      | x :: rest when k > 0 ->
        let h, t = split (k - 1) rest in
        (x :: h, t)
      | rest -> ([], rest)
    in
    let head, tail = split (List.length body / 2) body in
    return
      (B.program decls
         [
           B.proc "tail" [] (B.assign "flag" (B.int flag) :: tail);
           B.proc "main" [] ((B.assign "flag" (B.int flag) :: head) @ [ B.call "tail" [] ]);
         ])
  else return (B.program decls [ B.proc "main" [] (B.assign "flag" (B.int flag) :: body) ])

let arb_program =
  QCheck.make gen_program ~print:Hscd_lang.Printer.program_to_string

(* small machine so conflicts and evictions actually happen *)
let test_cfg = { Config.default with processors = 4; cache_bytes = 1024; timetag_bits = 4 }

let coherent_under cfg program =
  let _, results = Run.compare ~cfg program in
  List.for_all
    (fun (r : Run.comparison) -> r.result.metrics.violations = 0 && r.result.memory_ok)
    results

let qcheck_soundness =
  QCheck.Test.make ~name:"random programs: every scheme returns golden values" ~count:60
    arb_program
    (fun p -> coherent_under test_cfg p)

let qcheck_soundness_dynamic =
  QCheck.Test.make ~name:"random programs stay coherent under dynamic scheduling" ~count:25
    arb_program
    (fun p -> coherent_under { test_cfg with scheduling = Config.Dynamic } p)

let qcheck_soundness_tiny_tags =
  QCheck.Test.make ~name:"random programs stay coherent with 2-bit timetags" ~count:25
    arb_program
    (fun p -> coherent_under { test_cfg with timetag_bits = 2 } p)

let qcheck_soundness_migration =
  QCheck.Test.make ~name:"random programs stay coherent under task migration" ~count:25
    arb_program
    (fun p ->
      coherent_under
        { test_cfg with scheduling = Config.Dynamic; migration_rate = 0.4 } p)

let qcheck_soundness_big_lines =
  QCheck.Test.make ~name:"random programs stay coherent with 64-byte lines" ~count:25
    arb_program
    (fun p -> coherent_under { test_cfg with line_words = 16 } p)

let qcheck_generator_race_free =
  QCheck.Test.make ~name:"generated programs pass the interpreter race checker" ~count:60
    arb_program
    (fun p ->
      match Hscd_lang.Eval.run (Hscd_lang.Sema.check_exn p) with
      | _ -> true
      | exception Hscd_lang.Eval.Data_race _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_generator_race_free;
    QCheck_alcotest.to_alcotest qcheck_soundness;
    QCheck_alcotest.to_alcotest qcheck_soundness_dynamic;
    QCheck_alcotest.to_alcotest qcheck_soundness_tiny_tags;
    QCheck_alcotest.to_alcotest qcheck_soundness_big_lines;
    QCheck_alcotest.to_alcotest qcheck_soundness_migration;
  ]
