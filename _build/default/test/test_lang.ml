(** Tests for the PFL language layer: lexer, parser, printer round-trip,
    shapes and semantic checking. *)

module Ast = Hscd_lang.Ast
module Lexer = Hscd_lang.Lexer
module Parser = Hscd_lang.Parser
module Printer = Hscd_lang.Printer
module Sema = Hscd_lang.Sema
module Shape = Hscd_lang.Shape
module B = Hscd_lang.Builder

let program_eq = Alcotest.testable (Fmt.of_to_string Ast.show_program) Ast.equal_program

(* --- lexer --- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "do i = 0, n - 1  # comment\n a[i] = 3 <= x" in
  let kinds = List.map (fun (t : Lexer.located) -> Lexer.pp_token t.tok) toks in
  Alcotest.(check (list string)) "tokens"
    [ "do"; "i"; "="; "0"; ","; "n"; "-"; "1"; "a"; "["; "i"; "]"; "="; "3"; "<="; "x"; "<eof>" ]
    kinds

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nb\n\nc" in
  let lines = List.filter_map (fun (t : Lexer.located) ->
      match t.tok with Lexer.IDENT _ -> Some t.line | _ -> None) toks in
  Alcotest.(check (list int)) "lines" [ 1; 2; 4 ] lines

let test_lexer_error () =
  Alcotest.check_raises "bad char" (Lexer.Lex_error ("unexpected character '$'", 2))
    (fun () -> ignore (Lexer.tokenize "ok\n$"))

(* --- parser --- *)

let parse = Parser.parse_exn

let test_parse_minimal () =
  let p = parse "array a[4]\nproc main()\n a[0] = 1\nend" in
  Alcotest.(check int) "one array" 1 (List.length p.arrays);
  Alcotest.(check int) "one proc" 1 (List.length p.procs)

let test_parse_precedence () =
  let p = parse "proc main()\n x = 1 + 2 * 3 - 4 / 2\nend" in
  match (List.hd p.procs).body with
  | [ Ast.Assign ("x", e) ] ->
    Alcotest.check program_eq "dummy" (B.program [] []) (B.program [] []);
    Alcotest.(check bool) "shape" true
      (Ast.equal_expr e
         B.(int 1 %+ (int 2 %* int 3) %- (int 4 %/ int 2)))
  | _ -> Alcotest.fail "unexpected body"

let test_parse_statements () =
  let src = {|
array a[8, 8]
proc helper(k)
  work k
end
proc main()
  do i = 0, 7
    doall j = 0, 7
      a[i, j] = blackbox(f, i, j) mod 8
    end
  end
  if a[0, 0] == 0 and not (1 > 2) then
    call helper(3)
  else
    critical
      a[1, 1] = min(a[0, 0], 4)
    end
  end
end
|} in
  let p = parse src in
  Alcotest.(check int) "procs" 2 (List.length p.procs)

let test_parse_errors () =
  let expect_fail src =
    match parse src with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  expect_fail "proc main()"; (* missing end *)
  expect_fail "array a[]\nproc main()\nend"; (* empty dims *)
  expect_fail "proc main()\n x = \nend"; (* missing expr *)
  expect_fail "garbage"

(* --- printer round-trip --- *)

let roundtrip p =
  let printed = Printer.program_to_string p in
  let reparsed = parse printed in
  Alcotest.check program_eq "roundtrip" p reparsed

let test_roundtrip_handwritten () =
  roundtrip
    (B.program
       [ B.array "a" [ 8; 4 ]; B.array "b" [ 16 ] ]
       [
         B.proc "helper" [ "x"; "y" ] [ B.assign "z" B.(var "x" %% (var "y" %+ int 1)); B.work_e (B.var "z") ];
         B.proc "main" []
           [
             B.doall "i" (B.int 0) (B.int 15)
               [
                 B.s1 "b" (B.var "i") B.(neg (int 3) %* var "i");
                 B.if_ B.(a1 "b" (var "i") %> int 4)
                   [ B.s2 "a" B.(var "i" %% int 8) (B.int 0) (B.blackbox "f" [ B.var "i" ]) ]
                   [ B.critical [ B.s1 "b" (B.int 0) B.(min_ (int 1) (int 2)) ] ];
               ];
             B.do_ "t" (B.int 0) (B.int 3) [ B.call "helper" [ B.int 1; B.a1 "b" (B.int 2) ] ];
           ];
       ])

(* random AST generator for the round-trip property *)
let gen_program =
  let open QCheck.Gen in
  let ident = oneofl [ "x"; "y"; "z"; "i"; "j" ] in
  let arr = oneofl [ "a"; "b" ] in
  let rec gen_expr n =
    if n <= 0 then oneof [ map (fun i -> Ast.Int i) (int_bound 20); map (fun v -> Ast.Var v) ident ]
    else
      frequency
        [
          (2, map (fun i -> Ast.Int i) (int_bound 20));
          (2, map (fun v -> Ast.Var v) ident);
          (2, map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) (gen_expr (n - 1)) (gen_expr (n - 1)));
          (1, map2 (fun a b -> Ast.Binop (Ast.Mul, a, b)) (gen_expr (n - 1)) (gen_expr (n - 1)));
          (1, map2 (fun a b -> Ast.Binop (Ast.Mod, a, b)) (gen_expr (n - 1)) (gen_expr (n - 1)));
          (1, map2 (fun a b -> Ast.Binop (Ast.Min, a, b)) (gen_expr (n - 1)) (gen_expr (n - 1)));
          (1, map (fun e -> Ast.Neg e) (gen_expr (n - 1)));
          (1, map (fun e -> Ast.Aref ("a", [ e ], Ast.Unmarked)) (gen_expr (n - 1)));
          (1, map (fun e -> Ast.Blackbox ("f", [ e ])) (gen_expr (n - 1)));
        ]
  in
  let gen_cond n =
    map2 (fun a b -> Ast.Cmp (Ast.Le, a, b)) (gen_expr n) (gen_expr n)
  in
  let rec gen_stmt n =
    if n <= 0 then map2 (fun v e -> Ast.Assign (v, e)) ident (gen_expr 1)
    else
      frequency
        [
          (3, map2 (fun v e -> Ast.Assign (v, e)) ident (gen_expr 2));
          (2, map3 (fun a i e -> Ast.Store (a, [ i ], e, Ast.Normal_write)) arr (gen_expr 1) (gen_expr 2));
          (1,
           map3 (fun v b1 b2 -> Ast.Do { index = v; lo = Ast.Int 0; hi = Ast.Int 3; body = [ b1; b2 ] })
             ident (gen_stmt (n - 1)) (gen_stmt (n - 1)));
          (1,
           map3 (fun c t e -> Ast.If (c, [ t ], [ e ])) (gen_cond 1) (gen_stmt (n - 1)) (gen_stmt (n - 1)));
          (1, map (fun s -> Ast.Critical [ s ]) (gen_stmt (n - 1)));
          (1, map (fun e -> Ast.Work e) (gen_expr 1));
        ]
  in
  let gen_body = list_size (int_range 1 5) (gen_stmt 2) in
  map
    (fun body ->
      { Ast.arrays = [ { Ast.arr_name = "a"; dims = [ 8 ] }; { Ast.arr_name = "b"; dims = [ 4; 4 ] } ];
        procs = [ { Ast.proc_name = "main"; params = []; body } ];
        entry = "main" })
    gen_body

let qcheck_roundtrip =
  QCheck.Test.make ~name:"printer/parser round-trip on random ASTs" ~count:200
    (QCheck.make gen_program ~print:Printer.program_to_string)
    (fun p ->
      let printed = Printer.program_to_string p in
      Ast.equal_program p (Parser.parse_exn printed))

(* --- shape --- *)

let test_shape_layout () =
  let l = Shape.layout ~line_words:4 [ B.array "a" [ 3; 3 ]; B.array "b" [ 5 ] ] in
  let a = Shape.find l "a" and b = Shape.find l "b" in
  Alcotest.(check int) "a size" 9 a.size;
  Alcotest.(check int) "a base" 0 a.base;
  Alcotest.(check int) "b base aligned" 12 b.base;
  Alcotest.(check int) "address" (Shape.address l "a" [ 1; 2 ]) 5;
  (match Shape.owner l 13 with
  | Some (t, off) ->
    Alcotest.(check string) "owner" "b" t.name;
    Alcotest.(check int) "offset" 1 off
  | None -> Alcotest.fail "owner not found");
  Alcotest.(check bool) "padding unowned" true (Shape.owner l 10 = None)

let test_shape_errors () =
  let l = Shape.layout [ B.array "a" [ 4 ] ] in
  Alcotest.check_raises "oob" (Invalid_argument "Shape: index 4 out of bounds [0,4) for a")
    (fun () -> ignore (Shape.address l "a" [ 4 ]));
  Alcotest.check_raises "rank" (Invalid_argument "Shape: a expects 1 subscripts, got 2")
    (fun () -> ignore (Shape.address l "a" [ 0; 0 ]));
  Alcotest.check_raises "unknown" (Invalid_argument "Shape: unknown array z")
    (fun () -> ignore (Shape.address l "z" [ 0 ]))

(* --- sema --- *)

let errors_of p = Sema.errors (snd (Sema.check p))
let has_error p = errors_of p <> []

let test_sema_accepts_good () =
  let p = Hscd_workloads.Kernels.procedural () in
  Alcotest.(check bool) "no errors" false (has_error p)

let test_sema_undefined_scalar () =
  let p = B.simple [ B.array "a" [ 4 ] ] [ B.s1 "a" (B.int 0) (B.var "ghost") ] in
  Alcotest.(check bool) "error" true (has_error p)

let test_sema_rank_mismatch () =
  let p = B.simple [ B.array "a" [ 4; 4 ] ] [ B.s1 "a" (B.int 0) (B.int 1) ] in
  Alcotest.(check bool) "error" true (has_error p)

let test_sema_unknown_call () =
  let p = B.simple [] [ B.call "nope" [] ] in
  Alcotest.(check bool) "error" true (has_error p)

let test_sema_arity () =
  let p =
    B.program []
      [ B.proc "f" [ "x" ] [ B.assign "y" (B.var "x") ]; B.proc "main" [] [ B.call "f" [] ] ]
  in
  Alcotest.(check bool) "error" true (has_error p)

let test_sema_recursion () =
  let p =
    B.program []
      [ B.proc "f" [] [ B.call "g" [] ]; B.proc "g" [] [ B.call "f" [] ];
        B.proc "main" [] [ B.call "f" [] ] ]
  in
  Alcotest.(check bool) "error" true (has_error p)

let test_sema_missing_entry () =
  let p = B.program [] [ B.proc "other" [] [] ] in
  Alcotest.(check bool) "error" true (has_error p)

let test_sema_nested_doall_demoted () =
  let p =
    B.simple [ B.array "a" [ 4; 4 ] ]
      [
        B.doall "i" (B.int 0) (B.int 3)
          [ B.doall "j" (B.int 0) (B.int 3) [ B.s2 "a" (B.var "i") (B.var "j") (B.int 1) ] ];
      ]
  in
  let normalized, issues = Sema.check p in
  Alcotest.(check int) "no errors" 0 (List.length (Sema.errors issues));
  Alcotest.(check int) "one warning" 1 (List.length (Sema.warnings issues));
  match (List.hd normalized.procs).body with
  | [ Ast.Doall { body = [ Ast.Do _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "inner doall not demoted"

let test_sema_epoch_proc_in_doall () =
  let p =
    B.program
      [ B.array "a" [ 4 ] ]
      [
        B.proc "par" [] [ B.doall "i" (B.int 0) (B.int 3) [ B.s1 "a" (B.var "i") (B.int 0) ] ];
        B.proc "main" [] [ B.doall "i" (B.int 0) (B.int 3) [ B.call "par" [] ] ];
      ]
  in
  Alcotest.(check bool) "error" true (has_error p)

let test_sema_duplicates () =
  Alcotest.(check bool) "dup array" true
    (has_error (B.program [ B.array "a" [ 1 ]; B.array "a" [ 2 ] ] [ B.proc "main" [] [] ]));
  Alcotest.(check bool) "dup proc" true
    (has_error (B.program [] [ B.proc "main" [] []; B.proc "main" [] [] ]))

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer line numbers" `Quick test_lexer_line_numbers;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse statements" `Quick test_parse_statements;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "round-trip handwritten" `Quick test_roundtrip_handwritten;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "shape layout" `Quick test_shape_layout;
    Alcotest.test_case "shape errors" `Quick test_shape_errors;
    Alcotest.test_case "sema accepts good" `Quick test_sema_accepts_good;
    Alcotest.test_case "sema undefined scalar" `Quick test_sema_undefined_scalar;
    Alcotest.test_case "sema rank mismatch" `Quick test_sema_rank_mismatch;
    Alcotest.test_case "sema unknown call" `Quick test_sema_unknown_call;
    Alcotest.test_case "sema arity" `Quick test_sema_arity;
    Alcotest.test_case "sema recursion" `Quick test_sema_recursion;
    Alcotest.test_case "sema missing entry" `Quick test_sema_missing_entry;
    Alcotest.test_case "sema nested doall demoted" `Quick test_sema_nested_doall_demoted;
    Alcotest.test_case "sema epoch proc in doall" `Quick test_sema_epoch_proc_in_doall;
    Alcotest.test_case "sema duplicates" `Quick test_sema_duplicates;
  ]
