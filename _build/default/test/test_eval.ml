(** Tests for the reference interpreter: semantics, epochs, scalar
    privatization, critical sections, race detection, hooks. *)

module Ast = Hscd_lang.Ast
module Eval = Hscd_lang.Eval
module Sema = Hscd_lang.Sema
module B = Hscd_lang.Builder

let run p = Eval.run (Sema.check_exn p)
let peek = Eval.peek

let test_arithmetic () =
  let p =
    B.simple [ B.array "a" [ 8 ] ]
      [
        B.s1 "a" (B.int 0) B.(int 7 %+ (int 3 %* int 4));
        B.s1 "a" (B.int 1) B.(int 7 %- int 10);
        B.s1 "a" (B.int 2) B.(int 7 %/ int 2);
        B.s1 "a" (B.int 3) B.(neg (int 7) %% int 3);
        B.s1 "a" (B.int 4) B.(min_ (int 2) (int 9));
        B.s1 "a" (B.int 5) B.(max_ (int 2) (int 9));
      ]
  in
  let r = run p in
  Alcotest.(check int) "add/mul" 19 (peek r "a" [ 0 ]);
  Alcotest.(check int) "sub" (-3) (peek r "a" [ 1 ]);
  Alcotest.(check int) "div" 3 (peek r "a" [ 2 ]);
  Alcotest.(check int) "mod non-negative" 2 (peek r "a" [ 3 ]);
  Alcotest.(check int) "min" 2 (peek r "a" [ 4 ]);
  Alcotest.(check int) "max" 9 (peek r "a" [ 5 ])

let test_loops_and_if () =
  let p =
    B.simple [ B.array "a" [ 10 ] ]
      [
        B.do_ "i" (B.int 0) (B.int 9)
          [
            B.if_ B.(var "i" %% int 2 %= int 0)
              [ B.s1 "a" (B.var "i") (B.var "i") ]
              [ B.s1 "a" (B.var "i") (B.neg (B.var "i")) ];
          ];
      ]
  in
  let r = run p in
  Alcotest.(check int) "even" 4 (peek r "a" [ 4 ]);
  Alcotest.(check int) "odd" (-5) (peek r "a" [ 5 ])

let test_zero_trip_loop () =
  let p = B.simple [ B.array "a" [ 4 ] ] [ B.do_ "i" (B.int 3) (B.int 1) [ B.s1 "a" (B.int 0) (B.int 9) ] ] in
  Alcotest.(check int) "no iterations" 0 (peek (run p) "a" [ 0 ])

let test_doall_matches_serial () =
  (* a doall over independent iterations equals the serial loop *)
  let body i = [ B.s1 "a" (B.var i) B.(var i %* var i) ] in
  let par = B.simple [ B.array "a" [ 32 ] ] [ B.doall "i" (B.int 0) (B.int 31) (body "i") ] in
  let ser = B.simple [ B.array "a" [ 32 ] ] [ B.do_ "i" (B.int 0) (B.int 31) (body "i") ] in
  let rp = run par and rs = run ser in
  Alcotest.(check (array int)) "same memory" rs.final_memory rp.final_memory

let test_scalar_privatization () =
  (* scalar updates inside a doall task must not leak across iterations *)
  let p =
    B.simple [ B.array "a" [ 8 ] ]
      [
        B.assign "x" (B.int 100);
        B.doall "i" (B.int 0) (B.int 7)
          [ B.assign "x" B.(var "x" %+ var "i"); B.s1 "a" (B.var "i") (B.var "x") ];
        B.s1 "a" (B.int 0) (B.var "x");
      ]
  in
  let r = run p in
  Alcotest.(check int) "task 7 sees its own x" 107 (peek r "a" [ 7 ]);
  Alcotest.(check int) "outer x unchanged" 100 (peek r "a" [ 0 ])

let test_call_by_value () =
  let p =
    B.program
      [ B.array "a" [ 4 ] ]
      [
        B.proc "f" [ "x" ] [ B.assign "x" B.(var "x" %+ int 1); B.s1 "a" (B.int 0) (B.var "x") ];
        B.proc "main" [] [ B.assign "y" (B.int 5); B.call "f" [ B.var "y" ]; B.s1 "a" (B.int 1) (B.var "y") ];
      ]
  in
  let r = run p in
  Alcotest.(check int) "callee sees 6" 6 (peek r "a" [ 0 ]);
  Alcotest.(check int) "caller y unchanged" 5 (peek r "a" [ 1 ])

let test_blackbox_deterministic () =
  Alcotest.(check int) "same value" (Eval.blackbox_value "f" [ 1; 2 ]) (Eval.blackbox_value "f" [ 1; 2 ]);
  Alcotest.(check bool) "non-negative" true (Eval.blackbox_value "g" [ 42 ] >= 0);
  Alcotest.(check bool) "name matters" true
    (Eval.blackbox_value "f" [ 1 ] <> Eval.blackbox_value "g" [ 1 ])

let test_critical_reduction () =
  let p = Hscd_workloads.Kernels.reduction ~n:32 () in
  let r = run p in
  Alcotest.(check int) "sum of i mod 7" (List.fold_left (fun a i -> a + (i mod 7)) 0 (List.init 32 Fun.id))
    (peek r "total" [ 0 ])

let test_epoch_counting () =
  (* serial / P / serial / P / serial -> 5 epochs *)
  let p =
    B.simple [ B.array "a" [ 4 ] ]
      [
        B.doall "i" (B.int 0) (B.int 3) [ B.s1 "a" (B.var "i") (B.int 1) ];
        B.doall "i" (B.int 0) (B.int 3) [ B.s1 "a" (B.var "i") (B.int 2) ];
      ]
  in
  Alcotest.(check int) "epochs" 5 (run p).epochs

let test_epoch_hooks_alternate () =
  let kinds = ref [] in
  let hooks =
    { Eval.null_hooks with
      Eval.on_epoch_begin = (fun k -> kinds := (match k with Eval.Serial -> "S" | Eval.Parallel _ -> "P") :: !kinds) }
  in
  let p =
    B.simple [ B.array "a" [ 4 ] ]
      [ B.doall "i" (B.int 0) (B.int 3) [ B.s1 "a" (B.var "i") (B.int 1) ] ]
  in
  ignore (Eval.run ~hooks (Sema.check_exn p));
  Alcotest.(check (list string)) "alternation" [ "S"; "P"; "S" ] (List.rev !kinds)

(* --- race detection --- *)

let expect_race p =
  match run p with
  | exception Eval.Data_race _ -> ()
  | _ -> Alcotest.fail "race not detected"

let test_race_write_write () =
  expect_race
    (B.simple [ B.array "a" [ 8 ] ] [ B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.int 0) (B.var "i") ] ])

let test_race_read_write () =
  expect_race
    (B.simple [ B.array "a" [ 8 ] ]
       [ B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.var "i") (B.a1 "a" B.(var "i" %+ int 1 %% int 8)) ] ])

let test_race_critical_vs_plain () =
  (* a critical write still races with an unsynchronized read *)
  expect_race
    (B.simple [ B.array "a" [ 8 ]; B.array "b" [ 8 ] ]
       [
         B.doall "i" (B.int 0) (B.int 7)
           [
             B.if_ B.(var "i" %= int 0)
               [ B.critical [ B.s1 "a" (B.int 3) (B.int 1) ] ]
               [ B.s1 "b" (B.var "i") (B.a1 "a" (B.int 3)) ];
           ];
       ])

let test_no_race_disjoint () =
  let p =
    B.simple [ B.array "a" [ 8 ] ]
      [ B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.var "i") (B.var "i") ] ]
  in
  ignore (run p)

let test_no_race_critical () =
  ignore (run (Hscd_workloads.Kernels.reduction ~n:16 ()))

let test_races_can_be_disabled () =
  let p =
    B.simple [ B.array "a" [ 8 ] ]
      [ B.doall "i" (B.int 0) (B.int 7) [ B.s1 "a" (B.int 0) (B.var "i") ] ]
  in
  ignore (Eval.run ~check_races:false (Sema.check_exn p))

(* --- runtime errors --- *)

let expect_runtime p =
  match run p with
  | exception Eval.Runtime_error _ -> ()
  | _ -> Alcotest.fail "runtime error expected"

let test_division_by_zero () =
  expect_runtime (B.simple [ B.array "a" [ 2 ] ] [ B.s1 "a" (B.int 0) B.(int 1 %/ int 0) ])

let test_out_of_bounds () =
  expect_runtime (B.simple [ B.array "a" [ 2 ] ] [ B.s1 "a" (B.int 5) (B.int 0) ])

let test_negative_work () =
  expect_runtime (B.simple [] [ B.work_e (B.int (-1)) ])

let test_step_limit () =
  let p = B.simple [ B.array "a" [ 2 ] ] [ B.do_ "i" (B.int 0) (B.int 1000) [ B.s1 "a" (B.int 0) (B.int 1) ] ] in
  match Eval.run ~max_steps:100 (Sema.check_exn p) with
  | exception Eval.Runtime_error _ -> ()
  | _ -> Alcotest.fail "step limit not enforced"

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "loops and if" `Quick test_loops_and_if;
    Alcotest.test_case "zero-trip loop" `Quick test_zero_trip_loop;
    Alcotest.test_case "doall matches serial" `Quick test_doall_matches_serial;
    Alcotest.test_case "scalar privatization" `Quick test_scalar_privatization;
    Alcotest.test_case "call by value" `Quick test_call_by_value;
    Alcotest.test_case "blackbox deterministic" `Quick test_blackbox_deterministic;
    Alcotest.test_case "critical reduction" `Quick test_critical_reduction;
    Alcotest.test_case "epoch counting" `Quick test_epoch_counting;
    Alcotest.test_case "epoch hooks alternate" `Quick test_epoch_hooks_alternate;
    Alcotest.test_case "race write/write" `Quick test_race_write_write;
    Alcotest.test_case "race read/write" `Quick test_race_read_write;
    Alcotest.test_case "race critical vs plain" `Quick test_race_critical_vs_plain;
    Alcotest.test_case "no race disjoint" `Quick test_no_race_disjoint;
    Alcotest.test_case "no race critical" `Quick test_no_race_critical;
    Alcotest.test_case "race check disable" `Quick test_races_can_be_disabled;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
    Alcotest.test_case "negative work" `Quick test_negative_work;
    Alcotest.test_case "step limit" `Quick test_step_limit;
  ]
