(** Golden tests for the reference-marking pass: each known program shape
    must get exactly the mark the TPI scheme relies on. *)

module Ast = Hscd_lang.Ast
module Sema = Hscd_lang.Sema
module Parser = Hscd_lang.Parser
module Marking = Hscd_compiler.Marking
module B = Hscd_lang.Builder

(* All read marks of array [name] in a marked program, in preorder. *)
let marks_of (program : Ast.program) name =
  let acc = ref [] in
  let rec expr (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Var _ -> ()
    | Ast.Neg e -> expr e
    | Ast.Binop (_, a, b) -> expr a; expr b
    | Ast.Blackbox (_, args) -> List.iter expr args
    | Ast.Aref (a, idx, m) ->
      List.iter expr idx;
      if a = name then acc := m :: !acc
  in
  let rec cond (c : Ast.cond) =
    match c with
    | Ast.Cmp (_, a, b) -> expr a; expr b
    | Ast.And (a, b) | Ast.Or (a, b) -> cond a; cond b
    | Ast.Not c -> cond c
  in
  let rec stmt (s : Ast.stmt) =
    match s with
    | Ast.Assign (_, e) | Ast.Work e -> expr e
    | Ast.Store (_, idx, e, _) -> List.iter expr idx; expr e
    | Ast.Do l | Ast.Doall l -> expr l.lo; expr l.hi; List.iter stmt l.body
    | Ast.If (c, t, e) -> cond c; List.iter stmt t; List.iter stmt e
    | Ast.Call (_, args) -> List.iter expr args
    | Ast.Critical body -> List.iter stmt body
  in
  List.iter (fun (p : Ast.proc) -> List.iter stmt p.body) program.procs;
  List.rev !acc

let mark ?(intertask = true) ?(static_sched = true) p =
  (Marking.mark_program ~intertask ~static_sched (Sema.check_exn p)).Marking.program

let rmark = Alcotest.testable (Fmt.of_to_string Ast.show_rmark) Ast.equal_rmark

let parse = Parser.parse_exn

let test_owner_aligned_normal () =
  let m = mark (parse {|
array a[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 0, 63
    a[i] = a[i] + 1
  end
end|}) in
  Alcotest.(check (list rmark)) "aligned read is Normal" [ Ast.Normal_read ] (marks_of m "a")

let test_stencil_time1 () =
  let m = mark (parse {|
array a[64]
array b[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 1, 62
    b[i] = a[i - 1] + a[i + 1]
  end
end|}) in
  Alcotest.(check (list rmark)) "neighbours are Time-Read(1)"
    [ Ast.Time_read 1; Ast.Time_read 1 ] (marks_of m "a")

let test_farther_epoch_larger_d () =
  let m = mark (parse {|
array a[64]
array b[64]
array c[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 0, 63
    b[i] = i
  end
  doall i = 1, 62
    c[i] = a[i - 1]
  end
end|}) in
  (* a written two parallel epochs (4 boundaries) before the read *)
  Alcotest.(check (list rmark)) "distance grows" [ Ast.Time_read 3 ] (marks_of m "a")

let test_never_written_normal () =
  let m = mark (parse {|
array a[64]
array b[64]
proc main()
  doall i = 0, 63
    b[i] = a[i]
  end
end|}) in
  Alcotest.(check (list rmark)) "never-written data is Normal" [ Ast.Normal_read ] (marks_of m "a")

let test_serial_to_serial_aligned () =
  let m = mark (parse {|
array a[64]
array b[64]
proc main()
  do i = 0, 63
    a[i] = i
  end
  do i = 0, 63
    b[i] = a[i]
  end
end|}) in
  (* both epochs run on processor 0: all writers aligned -> Normal *)
  Alcotest.(check (list rmark)) "serial-serial" [ Ast.Normal_read ] (marks_of m "a")

let test_blackbox_conservative () =
  let m = mark (parse {|
array a[64]
array b[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 0, 63
    b[i] = a[blackbox(f, i) mod 64]
  end
end|}) in
  (* whole-array section, unaligned writer one epoch back -> Time-Read(1) *)
  Alcotest.(check (list rmark)) "conservative distance" [ Ast.Time_read 1 ] (marks_of m "a")

let test_same_epoch_unaligned_bypass () =
  (* reading the whole array while tasks write their own elements would be a
     race in general; with a blackbox subscript the compiler cannot prove
     otherwise and must bypass *)
  let m = mark (parse {|
array a[64]
array b[64]
proc main()
  doall i = 0, 63
    b[i] = a[blackbox(f, i) mod 64]
    a[i] = i
  end
end|}) in
  Alcotest.(check (list rmark)) "same-epoch cross-task" [ Ast.Bypass_read ] (marks_of m "a")

let test_critical_bypass () =
  let m = mark (Hscd_workloads.Kernels.reduction ~n:16 ()) in
  Alcotest.(check (list rmark)) "critical reads bypass" [ Ast.Bypass_read ] (marks_of m "total")

let test_loop_carried_distance () =
  let m = mark (parse {|
array a[64]
array b[64]
proc main()
  do t = 0, 9
    doall i = 1, 62
      b[i] = a[i - 1] + a[i + 1]
    end
    doall i = 1, 62
      a[i] = b[i]
    end
  end
end|}) in
  (* the stencil reads data written by the copy-back of the previous
     iteration: distance 1 around the back edge *)
  Alcotest.(check (list rmark)) "loop carried"
    [ Ast.Time_read 1; Ast.Time_read 1 ] (marks_of m "a")

let test_alignment_ablation () =
  let src = {|
array a[64]
array b[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 0, 63
    b[i] = a[i] + 1
  end
end|} in
  let on = mark (parse src) in
  let off = mark ~intertask:false (parse src) in
  Alcotest.(check (list rmark)) "on: Normal" [ Ast.Normal_read ] (marks_of on "a");
  Alcotest.(check (list rmark)) "off: Time-Read(1)" [ Ast.Time_read 1 ] (marks_of off "a")

let test_dynamic_sched_disables_alignment () =
  let src = {|
array a[64]
array b[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 0, 63
    b[i] = a[i] + 1
  end
end|} in
  let m = mark ~static_sched:false (parse src) in
  Alcotest.(check (list rmark)) "dynamic: conservative" [ Ast.Time_read 1 ] (marks_of m "a")

let test_same_epoch_own_write_without_alignment_bypasses () =
  (* with alignment knowledge the read of the task's own element is Normal;
     without it, a same-epoch writer could be any task: must bypass *)
  let src = {|
array a[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 0, 63
    a[i] = a[i] + 1
  end
end|} in
  let on = mark (parse src) in
  let off = mark ~intertask:false (parse src) in
  Alcotest.(check (list rmark)) "on: Normal" [ Ast.Normal_read ] (marks_of on "a");
  Alcotest.(check (list rmark)) "off: Bypass" [ Ast.Bypass_read ] (marks_of off "a")

let test_interprocedural_write_visible () =
  let m = mark (parse {|
array u[64]
array v[64]
proc init()
  doall i = 0, 63
    u[i] = i
  end
end
proc main()
  call init()
  doall i = 1, 62
    v[i] = u[i - 1]
  end
end|}) in
  (* init's doall is 2 boundaries before the reader epoch; unaligned *)
  Alcotest.(check (list rmark)) "across call" [ Ast.Time_read 1 ] (marks_of m "u")

let test_entry_context_conservative () =
  (* a callee reading data the caller wrote one epoch earlier must not get
     a Normal mark even though the callee itself never writes it *)
  let m = mark (parse {|
array a[64]
array b[64]
proc reader()
  doall i = 0, 63
    b[i] = a[i]
  end
end
proc main()
  doall i = 0, 63
    a[i] = i
  end
  call reader()
end|}) in
  match marks_of m "a" with
  | [ Ast.Time_read d ] -> Alcotest.(check bool) "bounded distance" true (d <= 2)
  | [ Ast.Normal_read ] -> Alcotest.fail "unsafe Normal mark across procedure entry"
  | other -> Alcotest.fail (Printf.sprintf "unexpected marks (%d)" (List.length other))

let test_census_counts () =
  let r = Marking.mark_program (Sema.check_exn (Hscd_workloads.Kernels.jacobi1d ~n:32 ~iters:2 ())) in
  let c = r.Marking.census in
  Alcotest.(check int) "reads accounted" (c.normal_reads + c.time_reads + c.bypass_reads) 3;
  Alcotest.(check bool) "writes counted" true (c.normal_writes >= 3)

let suite =
  [
    Alcotest.test_case "owner-aligned -> Normal" `Quick test_owner_aligned_normal;
    Alcotest.test_case "stencil -> Time-Read(1)" `Quick test_stencil_time1;
    Alcotest.test_case "distance grows with epochs" `Quick test_farther_epoch_larger_d;
    Alcotest.test_case "never written -> Normal" `Quick test_never_written_normal;
    Alcotest.test_case "serial-serial aligned" `Quick test_serial_to_serial_aligned;
    Alcotest.test_case "blackbox conservative" `Quick test_blackbox_conservative;
    Alcotest.test_case "same-epoch bypass" `Quick test_same_epoch_unaligned_bypass;
    Alcotest.test_case "critical bypass" `Quick test_critical_bypass;
    Alcotest.test_case "loop-carried distance" `Quick test_loop_carried_distance;
    Alcotest.test_case "alignment ablation" `Quick test_alignment_ablation;
    Alcotest.test_case "dynamic scheduling conservative" `Quick test_dynamic_sched_disables_alignment;
    Alcotest.test_case "same-epoch write w/o alignment" `Quick test_same_epoch_own_write_without_alignment_bypasses;
    Alcotest.test_case "interprocedural write" `Quick test_interprocedural_write_visible;
    Alcotest.test_case "entry context" `Quick test_entry_context_conservative;
    Alcotest.test_case "census counts" `Quick test_census_counts;
  ]
