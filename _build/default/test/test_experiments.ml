(** Smoke and shape tests for the experiment harness (at small benchmark
    scale so the whole suite stays fast). *)

module Experiments = Hscd_experiments.Experiments
module Common = Hscd_experiments.Common
module Table = Hscd_util.Table

let test_registry_complete () =
  let ids = List.map (fun (e : Experiments.t) -> e.id) Experiments.all in
  List.iter
    (fun required ->
      Alcotest.(check bool) ("has " ^ required) true (List.mem required ids))
    [ "fig5"; "fig8"; "census"; "workloads"; "fig11"; "fig12"; "latency"; "traffic";
      "timetag"; "exectime"; "wcache"; "alignment"; "scheduling"; "cachesize"; "family";
      "consistency"; "migration"; "assoc" ];
  Alcotest.(check bool) "find" true (Experiments.find "fig11" <> None);
  Alcotest.(check bool) "find unknown" true (Experiments.find "zzz" = None)

let test_every_experiment_produces_rows () =
  List.iter
    (fun (e : Experiments.t) ->
      let tables = e.run ~small:true () in
      Alcotest.(check bool) (e.id ^ " has tables") true (tables <> []);
      List.iter
        (fun t -> Alcotest.(check bool) (e.id ^ " table non-empty") true (Table.rows t <> []))
        tables)
    Experiments.all

let test_common_all_correct () =
  let results = Common.run_all ~small:true () in
  Alcotest.(check bool) "all schemes coherent on all benchmarks" true
    (Common.all_correct results);
  Alcotest.(check int) "six benchmarks" 6 (List.length results)

let test_common_memoizes () =
  let a = Common.run_all ~small:true () in
  let b = Common.run_all ~small:true () in
  Alcotest.(check bool) "same physical result" true (a == b)

let test_fig11_shape () =
  (* BASE column must be 100% everywhere; TPI must beat SC everywhere *)
  let results = Common.run_all ~small:true () in
  List.iter
    (fun (r : Common.bench_result) ->
      let miss k = Hscd_sim.Metrics.miss_rate (Common.result_of r k).metrics in
      Alcotest.(check (float 1e-9)) (r.bench ^ " BASE") 1.0 (miss Hscd_sim.Run.Base);
      Alcotest.(check bool) (r.bench ^ " TPI <= SC") true
        (miss Hscd_sim.Run.TPI <= miss Hscd_sim.Run.SC))
    results

let suite =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "experiments produce rows" `Slow test_every_experiment_produces_rows;
    Alcotest.test_case "common all correct" `Quick test_common_all_correct;
    Alcotest.test_case "common memoizes" `Quick test_common_memoizes;
    Alcotest.test_case "fig11 shape" `Quick test_fig11_shape;
  ]
