(** Property and unit tests for the strided-section algebra and affine
    forms — the soundness-critical kernels of the compiler. *)

module Sections = Hscd_compiler.Sections
module Sint = Hscd_compiler.Sections.Sint
module Affine = Hscd_compiler.Affine

(* Brute-force reference for strided intervals. *)
let elements (s : Sint.t) =
  if s.step = 0 then [ s.lo ]
  else
    let rec go v acc = if v > s.hi then List.rev acc else go (v + s.step) (v :: acc) in
    go s.lo []

let gen_sint =
  QCheck.Gen.(
    map3 (fun lo len step -> Sint.make ~lo ~hi:(lo + len) ~step) (int_range (-30) 30)
      (int_range 0 40) (int_range 0 7))

let arb_sint = QCheck.make gen_sint ~print:Sint.to_string

let qcheck_make_normalizes =
  QCheck.Test.make ~name:"Sint.make produces well-formed intervals" ~count:500 arb_sint
    (fun s ->
      s.lo <= s.hi
      && (s.step = 0) = (s.lo = s.hi)
      && (s.step = 0 || (s.hi - s.lo) mod s.step = 0))

let qcheck_mem_matches_elements =
  QCheck.Test.make ~name:"Sint.mem agrees with enumeration" ~count:500
    QCheck.(pair arb_sint (int_range (-40) 80))
    (fun (s, v) -> Sint.mem v s = List.mem v (elements s))

let qcheck_inter_exact =
  QCheck.Test.make ~name:"Sint.inter_nonempty is exact" ~count:1000
    QCheck.(pair arb_sint arb_sint)
    (fun (a, b) ->
      let brute = List.exists (fun v -> List.mem v (elements b)) (elements a) in
      Sint.inter_nonempty a b = brute)

let qcheck_union_superset =
  QCheck.Test.make ~name:"Sint.union over-approximates both arguments" ~count:500
    QCheck.(pair arb_sint arb_sint)
    (fun (a, b) ->
      let u = Sint.union a b in
      List.for_all (fun v -> Sint.mem v u) (elements a)
      && List.for_all (fun v -> Sint.mem v u) (elements b))

let qcheck_subset_sound =
  QCheck.Test.make ~name:"Sint.subset true implies real inclusion" ~count:500
    QCheck.(pair arb_sint arb_sint)
    (fun (a, b) ->
      (not (Sint.subset a b)) || List.for_all (fun v -> Sint.mem v b) (elements a))

let test_sint_specifics () =
  (* the FLO52 regression: odd unit interval vs even stride-2 interval *)
  let a = Sint.make ~lo:1 ~hi:6 ~step:1 and b = Sint.make ~lo:0 ~hi:6 ~step:2 in
  Alcotest.(check bool) "1:6 meets evens" true (Sint.inter_nonempty a b);
  let c = Sint.make ~lo:1 ~hi:7 ~step:2 in
  Alcotest.(check bool) "odds avoid evens" false (Sint.inter_nonempty c b);
  Alcotest.(check bool) "disjoint ranges" false
    (Sint.inter_nonempty (Sint.interval 0 3) (Sint.interval 5 9));
  Alcotest.(check bool) "singleton membership" true
    (Sint.inter_nonempty (Sint.singleton 4) (Sint.make ~lo:0 ~hi:8 ~step:4))

let test_multidim () =
  let whole = Sections.whole [ 8; 8 ] in
  let diag_box = Sections.of_points [ 3; 3 ] in
  Alcotest.(check bool) "point in whole" true (Sections.inter_nonempty whole diag_box);
  let evens = [ Sint.make ~lo:0 ~hi:6 ~step:2; Sint.make ~lo:0 ~hi:6 ~step:2 ] in
  let odds = [ Sint.make ~lo:1 ~hi:7 ~step:2; Sint.make ~lo:1 ~hi:7 ~step:2 ] in
  Alcotest.(check bool) "checkerboards disjoint" false (Sections.inter_nonempty evens odds);
  (* disjoint in one dimension is enough *)
  let row3 = [ Sint.singleton 3; Sint.interval 0 7 ] in
  let row5 = [ Sint.singleton 5; Sint.interval 0 7 ] in
  Alcotest.(check bool) "different rows disjoint" false (Sections.inter_nonempty row3 row5);
  Alcotest.(check bool) "subset" true (Sections.subset row3 whole)

let test_section_map () =
  let m = Sections.Map.empty in
  let m = Sections.Map.add m "a" [ Sint.interval 0 3 ] in
  let m = Sections.Map.add m "a" [ Sint.interval 6 9 ] in
  (match Sections.Map.find m "a" with
  | Some [ s ] ->
    Alcotest.(check bool) "union hull" true (Sint.mem 5 s) (* hull includes the gap *)
  | _ -> Alcotest.fail "missing entry");
  Alcotest.(check bool) "intersects" true (Sections.Map.intersects m "a" [ Sint.singleton 7 ]);
  Alcotest.(check bool) "unknown array" false (Sections.Map.intersects m "b" [ Sint.singleton 0 ])

(* --- affine forms --- *)

let bindings = [ ("i", 3); ("j", -2); ("n", 10) ]

let gen_affine =
  QCheck.Gen.(
    let var = oneofl [ "i"; "j"; "n" ] in
    map2
      (fun terms const ->
        List.fold_left
          (fun acc (v, c) -> Affine.add acc (Affine.var ~coef:c v))
          (Affine.const const) terms)
      (list_size (int_range 0 4) (pair var (int_range (-5) 5)))
      (int_range (-20) 20))

let arb_affine = QCheck.make gen_affine ~print:Affine.to_string

let eval_exn a =
  match Affine.eval bindings a with Some v -> v | None -> QCheck.assume_fail ()

let qcheck_affine_add =
  QCheck.Test.make ~name:"affine add is pointwise" ~count:500 QCheck.(pair arb_affine arb_affine)
    (fun (a, b) -> eval_exn (Affine.add a b) = eval_exn a + eval_exn b)

let qcheck_affine_sub_scale =
  QCheck.Test.make ~name:"affine sub/scale are pointwise" ~count:500
    QCheck.(triple arb_affine arb_affine (int_range (-4) 4))
    (fun (a, b, k) ->
      eval_exn (Affine.sub a b) = eval_exn a - eval_exn b
      && eval_exn (Affine.scale k a) = k * eval_exn a)

let qcheck_affine_subst =
  QCheck.Test.make ~name:"affine substitution is evaluation" ~count:500
    QCheck.(pair arb_affine arb_affine)
    (fun (a, by) ->
      let substituted = Affine.subst "i" by a in
      let by_value = eval_exn by in
      match Affine.eval (("i", by_value) :: List.remove_assoc "i" bindings) a with
      | Some expected -> eval_exn substituted = expected
      | None -> false)

let qcheck_affine_range_sound =
  QCheck.Test.make ~name:"affine range bounds every evaluation" ~count:500
    QCheck.(triple arb_affine (int_range 0 5) (int_range 0 5))
    (fun (a, i, j) ->
      match Affine.range [ ("i", (0, 5)); ("j", (0, 5)); ("n", (10, 10)) ] a with
      | None -> QCheck.assume_fail ()
      | Some (lo, hi) -> (
        match Affine.eval [ ("i", i); ("j", j); ("n", 10) ] a with
        | Some v -> lo <= v && v <= hi
        | None -> false))

let test_affine_specifics () =
  Alcotest.(check bool) "equal normal forms" true
    (Affine.equal
       (Affine.add (Affine.var "i") (Affine.var "j"))
       (Affine.add (Affine.var "j") (Affine.var "i")));
  Alcotest.(check bool) "unknown not equal to itself" false (Affine.equal Affine.unknown Affine.unknown);
  Alcotest.(check (option int)) "is_const" (Some 5) (Affine.is_const (Affine.const 5));
  Alcotest.(check int) "coef_of" 3 (Affine.coef_of "i" (Affine.var ~coef:3 "i"));
  Alcotest.(check bool) "mul by non-const is unknown" true
    (Affine.mul (Affine.var "i") (Affine.var "j") = Affine.unknown);
  Alcotest.(check bool) "cancellation drops term" true
    (Affine.is_const (Affine.sub (Affine.var "i") (Affine.var "i")) = Some 0)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_make_normalizes;
    QCheck_alcotest.to_alcotest qcheck_mem_matches_elements;
    QCheck_alcotest.to_alcotest qcheck_inter_exact;
    QCheck_alcotest.to_alcotest qcheck_union_superset;
    QCheck_alcotest.to_alcotest qcheck_subset_sound;
    Alcotest.test_case "sint specifics" `Quick test_sint_specifics;
    Alcotest.test_case "multidim sections" `Quick test_multidim;
    Alcotest.test_case "section maps" `Quick test_section_map;
    QCheck_alcotest.to_alcotest qcheck_affine_add;
    QCheck_alcotest.to_alcotest qcheck_affine_sub_scale;
    QCheck_alcotest.to_alcotest qcheck_affine_subst;
    QCheck_alcotest.to_alcotest qcheck_affine_range_sound;
    Alcotest.test_case "affine specifics" `Quick test_affine_specifics;
  ]
