(** Round-trip tests for the trace serializer, plus replay equivalence:
    simulating a reloaded trace must give identical results. *)

module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Trace_io = Hscd_sim.Trace_io
module Metrics = Hscd_sim.Metrics

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_roundtrip_stencil () =
  let c = Run.compile (Hscd_workloads.Kernels.jacobi1d ~n:32 ~iters:2 ()) in
  let path = tmp "hscd_trace_stencil.txt" in
  Trace_io.save path c.Run.trace;
  let loaded = Trace_io.load path in
  Sys.remove path;
  Alcotest.(check bool) "round-trip equal" true (Trace_io.equal c.Run.trace loaded);
  Alcotest.(check int) "events preserved" c.Run.trace.Trace.total_events loaded.Trace.total_events

let test_roundtrip_critical () =
  (* locks and bypass marks must survive serialization *)
  let c = Run.compile (Hscd_workloads.Kernels.reduction ~n:16 ()) in
  let path = tmp "hscd_trace_crit.txt" in
  Trace_io.save path c.Run.trace;
  let loaded = Trace_io.load path in
  Sys.remove path;
  Alcotest.(check bool) "round-trip equal" true (Trace_io.equal c.Run.trace loaded)

let test_replay_equivalence () =
  let c = Run.compile (Hscd_workloads.Kernels.matmul ~n:10 ()) in
  let path = tmp "hscd_trace_mm.txt" in
  Trace_io.save path c.Run.trace;
  let loaded = Trace_io.load path in
  Sys.remove path;
  let a = Run.simulate Run.TPI c.Run.trace in
  let b = Run.simulate Run.TPI loaded in
  Alcotest.(check int) "same cycles" a.cycles b.cycles;
  Alcotest.(check (float 1e-12)) "same miss rate"
    (Metrics.miss_rate a.metrics) (Metrics.miss_rate b.metrics);
  Alcotest.(check int) "coherent" 0 b.metrics.violations

let test_bad_input_rejected () =
  let path = tmp "hscd_trace_bad.txt" in
  let oc = open_out path in
  output_string oc "hscd-trace 1\nnonsense line here\n";
  close_out oc;
  (match Trace_io.load path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on malformed trace");
  Sys.remove path

let test_mark_strings () =
  let open Hscd_arch.Event in
  List.iter
    (fun m -> Alcotest.(check bool) "rmark round-trip" true
        (Trace_io.mark_of_str (Trace_io.mark_str m) = m))
    [ Unmarked; Normal_read; Bypass_read; Time_read 0; Time_read 12 ];
  List.iter
    (fun m -> Alcotest.(check bool) "wmark round-trip" true
        (Trace_io.wmark_of_str (Trace_io.wmark_str m) = m))
    [ Normal_write; Bypass_write ]

let suite =
  [
    Alcotest.test_case "round-trip stencil" `Quick test_roundtrip_stencil;
    Alcotest.test_case "round-trip critical" `Quick test_roundtrip_critical;
    Alcotest.test_case "replay equivalence" `Quick test_replay_equivalence;
    Alcotest.test_case "bad input rejected" `Quick test_bad_input_rejected;
    Alcotest.test_case "mark strings" `Quick test_mark_strings;
  ]
