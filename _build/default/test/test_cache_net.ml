(** Tests for the hardware substrates: cache structure, write buffers and
    the analytic network model. *)

module Config = Hscd_arch.Config
module Addr = Hscd_arch.Addr
module Cache = Hscd_cache.Cache
module Write_buffer = Hscd_cache.Write_buffer
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic

let tiny_cfg =
  (* 4 sets x 1 way x 4-word lines = a 16-word cache, easy to overflow *)
  { Config.default with cache_bytes = 64; processors = 4 }

(* --- config --- *)

let test_config_derived () =
  let c = Config.default in
  Alcotest.(check int) "cache words" 16384 (Config.cache_words c);
  Alcotest.(check int) "cache lines" 4096 (Config.cache_lines c);
  Alcotest.(check int) "sets" 4096 (Config.sets c);
  Alcotest.(check int) "phase epochs" 128 (Config.phase_epochs c);
  Alcotest.(check int) "network stages" 2 (Config.network_stages c)

let test_config_validate () =
  Alcotest.check_raises "bad line" (Invalid_argument "Config: line_words must be a power of two")
    (fun () -> ignore (Config.validate { Config.default with line_words = 3 }));
  Alcotest.check_raises "bad tags" (Invalid_argument "Config: timetag_bits out of [2,30]")
    (fun () -> ignore (Config.validate { Config.default with timetag_bits = 1 }))

let test_addr () =
  let a = Addr.of_config Config.default in
  Alcotest.(check int) "line" 3 (Addr.line a 13);
  Alcotest.(check int) "offset" 1 (Addr.offset_in_line a 13);
  Alcotest.(check int) "home" (3 mod 16) (Addr.home a 13);
  Alcotest.(check (list int)) "words" [ 12; 13; 14; 15 ] (Addr.words_of_line a 3);
  Alcotest.(check bool) "local" true (Addr.is_local a ~proc:3 13)

(* --- cache --- *)

let test_cache_hit_miss () =
  let c = Cache.create tiny_cfg in
  Alcotest.(check bool) "initial miss" true (Cache.find c 5 = None);
  let line = Cache.allocate c ~on_evict:(fun _ -> ()) 5 in
  line.Cache.state <- 1;
  line.Cache.values.(1) <- 42;
  line.Cache.word_valid.(1) <- true;
  (match Cache.find c 5 with
  | Some l -> Alcotest.(check int) "value" 42 l.Cache.values.(1)
  | None -> Alcotest.fail "expected hit");
  (* other word of the same line is resident but invalid *)
  (match Cache.find c 6 with
  | Some l -> Alcotest.(check bool) "word invalid" false l.Cache.word_valid.(2)
  | None -> Alcotest.fail "line should be resident")

let test_cache_conflict_eviction () =
  let c = Cache.create tiny_cfg in
  (* tiny cache has 4 sets; lines 0 and 4 conflict in set 0 *)
  let l0 = Cache.allocate c ~on_evict:(fun _ -> ()) 0 in
  l0.Cache.state <- 1;
  let evicted = ref [] in
  let l4 = Cache.allocate c ~on_evict:(fun v -> evicted := v.Cache.tag :: !evicted) (4 * 4) in
  l4.Cache.state <- 1;
  Alcotest.(check (list int)) "victim tag" [ 0 ] !evicted;
  Alcotest.(check bool) "old line gone" true (Cache.find c 0 = None);
  Alcotest.(check bool) "new line resident" true (Cache.find c 16 <> None)

let test_cache_lru () =
  let cfg = { tiny_cfg with assoc = 2 } in
  let c = Cache.create cfg in
  (* set 0 holds lines 0 and 2 (two ways); touching line 0 makes line 2 the
     LRU victim when line 4 arrives *)
  (Cache.allocate c ~on_evict:(fun _ -> ()) 0).Cache.state <- 1;
  (Cache.allocate c ~on_evict:(fun _ -> ()) 8).Cache.state <- 1;
  ignore (Cache.find c 0);
  let evicted = ref (-1) in
  (Cache.allocate c ~on_evict:(fun v -> evicted := v.Cache.tag) 16).Cache.state <- 1;
  Alcotest.(check int) "lru victim" 2 !evicted

let test_cache_resident_count () =
  let c = Cache.create tiny_cfg in
  (Cache.allocate c ~on_evict:(fun _ -> ()) 0).Cache.state <- 1;
  (Cache.allocate c ~on_evict:(fun _ -> ()) 20).Cache.state <- 1;
  Alcotest.(check int) "resident" 2 (Cache.resident_lines c)

(* --- write buffer --- *)

let test_plain_buffer () =
  let wb = Write_buffer.create Config.default in
  Alcotest.(check int) "every write costs a word" 1 (Write_buffer.write wb 5);
  Alcotest.(check int) "again" 1 (Write_buffer.write wb 5);
  Alcotest.(check int) "drain free" 0 (Write_buffer.drain wb)

let test_write_cache_coalesces () =
  let cfg = { Config.default with write_buffer = Config.Write_cache 2 } in
  let wb = Write_buffer.create cfg in
  Alcotest.(check int) "first write buffered" 0 (Write_buffer.write wb 1);
  Alcotest.(check int) "repeat coalesced" 0 (Write_buffer.write wb 1);
  Alcotest.(check int) "second addr buffered" 0 (Write_buffer.write wb 2);
  (* third distinct address evicts the LRU entry *)
  Alcotest.(check int) "overflow flushes one" 1 (Write_buffer.write wb 3);
  Alcotest.(check int) "coalesced count" 1 (Write_buffer.coalesced_writes wb);
  Alcotest.(check int) "drain flushes residents" 2 (Write_buffer.drain wb)

let qcheck_write_cache_conservation =
  (* every distinct address buffered is eventually flushed exactly once per
     residence: traffic(now) + drained = writes - coalesced *)
  QCheck.Test.make ~name:"write-cache conserves words" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (int_bound 10))
    (fun addrs ->
      let cfg = { Config.default with write_buffer = Config.Write_cache 4 } in
      let wb = Write_buffer.create cfg in
      let sent = List.fold_left (fun acc a -> acc + Write_buffer.write wb a) 0 addrs in
      let drained = Write_buffer.drain wb in
      sent + drained + Write_buffer.coalesced_writes wb = List.length addrs)

(* --- network --- *)

let test_network_unloaded () =
  let n = Kruskal_snir.create Config.default in
  Alcotest.(check int) "no excess at zero load" 0 (Kruskal_snir.round_trip_excess n)

let test_network_monotone () =
  let n = Kruskal_snir.create Config.default in
  let excess rho = Kruskal_snir.set_load n rho; Kruskal_snir.one_way_excess n in
  let e1 = excess 0.2 and e2 = excess 0.5 and e3 = excess 0.9 in
  Alcotest.(check bool) "monotone" true (e1 < e2 && e2 < e3);
  Alcotest.(check bool) "positive" true (e1 > 0.0)

let test_network_clamp () =
  let n = Kruskal_snir.create Config.default in
  Kruskal_snir.set_load n 5.0;
  Alcotest.(check bool) "clamped" true (Kruskal_snir.load n <= 0.95);
  Kruskal_snir.set_load n (-1.0);
  Alcotest.(check (float 1e-9)) "floor" 0.0 (Kruskal_snir.load n)

let test_traffic_window () =
  let t = Traffic.create Config.default in
  Traffic.add_read t 160;
  let rho = Traffic.window_load t ~now_cycle:10 in
  (* 160 words over 10 cycles and 16 processors = 1.0 *)
  Alcotest.(check (float 1e-9)) "load" 1.0 rho;
  Traffic.add_write t 32;
  let rho2 = Traffic.window_load t ~now_cycle:30 in
  Alcotest.(check (float 1e-9)) "windowed" 0.1 rho2;
  let s = Traffic.snapshot t in
  Alcotest.(check int) "reads" 160 s.Traffic.reads;
  Alcotest.(check int) "writes" 32 s.Traffic.writes

let suite =
  [
    Alcotest.test_case "config derived" `Quick test_config_derived;
    Alcotest.test_case "config validate" `Quick test_config_validate;
    Alcotest.test_case "addressing" `Quick test_addr;
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache eviction" `Quick test_cache_conflict_eviction;
    Alcotest.test_case "cache lru" `Quick test_cache_lru;
    Alcotest.test_case "cache residency" `Quick test_cache_resident_count;
    Alcotest.test_case "plain buffer" `Quick test_plain_buffer;
    Alcotest.test_case "write cache coalesces" `Quick test_write_cache_coalesces;
    QCheck_alcotest.to_alcotest qcheck_write_cache_conservation;
    Alcotest.test_case "network unloaded" `Quick test_network_unloaded;
    Alcotest.test_case "network monotone" `Quick test_network_monotone;
    Alcotest.test_case "network clamp" `Quick test_network_clamp;
    Alcotest.test_case "traffic window" `Quick test_traffic_window;
  ]
