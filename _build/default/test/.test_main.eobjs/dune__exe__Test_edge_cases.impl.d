test/test_edge_cases.ml: Alcotest Hscd_arch Hscd_coherence Hscd_lang Hscd_sim Hscd_workloads List Printf String
