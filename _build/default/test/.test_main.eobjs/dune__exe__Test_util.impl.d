test/test_util.ml: Alcotest Array Fun Hashtbl Hscd_util List QCheck QCheck_alcotest String
