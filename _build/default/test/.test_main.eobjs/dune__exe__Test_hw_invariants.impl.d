test/test_hw_invariants.ml: Array Hscd_arch Hscd_cache Hscd_coherence Hscd_network Hscd_util List Printf QCheck QCheck_alcotest String
