test/test_coherence.ml: Alcotest Array Fmt Hscd_arch Hscd_coherence Hscd_network List QCheck QCheck_alcotest
