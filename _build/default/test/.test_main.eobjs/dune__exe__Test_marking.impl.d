test/test_marking.ml: Alcotest Fmt Hscd_compiler Hscd_lang Hscd_workloads List Printf
