test/test_eval.ml: Alcotest Fun Hscd_lang Hscd_workloads List
