test/test_sections.ml: Alcotest Hscd_compiler List QCheck QCheck_alcotest
