test/test_engine.ml: Alcotest Hscd_arch Hscd_lang Hscd_sim Hscd_workloads List
