test/test_random.ml: Hscd_arch Hscd_lang Hscd_sim List QCheck QCheck_alcotest
