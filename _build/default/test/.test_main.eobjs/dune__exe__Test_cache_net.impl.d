test/test_cache_net.ml: Alcotest Array Hscd_arch Hscd_cache Hscd_network List QCheck QCheck_alcotest
