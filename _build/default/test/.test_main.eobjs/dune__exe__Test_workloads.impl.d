test/test_workloads.ml: Alcotest Hscd_arch Hscd_coherence Hscd_lang Hscd_sim Hscd_workloads List Option
