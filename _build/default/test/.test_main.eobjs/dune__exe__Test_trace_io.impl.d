test/test_trace_io.ml: Alcotest Filename Hscd_arch Hscd_sim Hscd_workloads List Sys
