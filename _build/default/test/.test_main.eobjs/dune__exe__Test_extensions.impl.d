test/test_extensions.ml: Alcotest Fmt Hscd_arch Hscd_coherence Hscd_network Hscd_sim Hscd_workloads List
