test/test_compiler.ml: Alcotest Hscd_compiler Hscd_lang List Option String
