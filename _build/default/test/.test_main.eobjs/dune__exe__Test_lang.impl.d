test/test_lang.ml: Alcotest Fmt Hscd_lang Hscd_workloads List QCheck QCheck_alcotest
