test/test_experiments.ml: Alcotest Hscd_experiments Hscd_sim Hscd_util List
