test/test_stats_report.ml: Alcotest Hscd_arch Hscd_compiler Hscd_lang Hscd_sim Hscd_workloads List String
