examples/protocol_compare.mli:
