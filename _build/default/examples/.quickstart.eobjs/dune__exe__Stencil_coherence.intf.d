examples/stencil_coherence.mli:
