examples/marking_tour.mli:
