examples/timetag_study.ml: Core Hscd_util List
