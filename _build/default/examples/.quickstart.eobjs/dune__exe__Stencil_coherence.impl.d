examples/stencil_coherence.ml: Core Hscd_util List Printf
