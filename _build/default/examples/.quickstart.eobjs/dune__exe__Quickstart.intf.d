examples/quickstart.mli:
