examples/timetag_study.mli:
