examples/protocol_compare.ml: Core Hscd_util List Printf
