examples/marking_tour.ml: Core Printf
