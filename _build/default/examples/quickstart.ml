(** Quickstart: parse a small PFL program, run the coherence compiler, and
    simulate it under the TPI scheme on the paper's default machine.

    Run with: [dune exec examples/quickstart.exe] *)

let source = {|
array a[128]
array b[128]

proc main()
  # producer epoch: every task initializes its own element
  doall i = 0, 127
    a[i] = i * i
  end
  # consumer epochs: a 3-point stencil, repeated
  do t = 0, 4
    doall i = 1, 126
      b[i] = (a[i - 1] + a[i + 1]) / 2
    end
    doall i = 1, 126
      a[i] = b[i]
    end
  end
end
|}

let () =
  let program = Core.parse source in

  (* 1. What did the compiler decide? *)
  let listing, census = Core.mark program in
  print_endline "=== compiler-marked program ===";
  print_endline listing;
  Core.Compiler.Report.print_census census;

  (* 2. Simulate under TPI. *)
  let _compiled, result = Core.simulate ~scheme:Core.Sim.Run.TPI program in
  let m = result.Core.Sim.Engine.metrics in
  Printf.printf "\n=== TPI simulation (16 processors, Fig-8 machine) ===\n";
  Printf.printf "execution time : %d cycles\n" result.cycles;
  Printf.printf "miss rate      : %.2f%%\n" (100.0 *. Core.Sim.Metrics.miss_rate m);
  Printf.printf "avg miss lat.  : %.1f cycles\n" (Core.Sim.Metrics.avg_read_miss_latency m);
  Printf.printf "coherent       : %s\n"
    (if result.memory_ok && m.violations = 0 then "yes (verified against golden interpreter)"
     else "NO — violations detected");

  (* 3. Peek at the final memory through the golden interpreter. *)
  let checked = Core.Lang.Sema.check_exn program in
  let r = Core.Lang.Eval.run checked in
  Printf.printf "a[63] after 5 smoothing steps = %d\n" (Core.Lang.Eval.peek r "a" [ 63 ])
