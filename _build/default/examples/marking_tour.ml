(** A tour of the compiler's marking decisions on hand-picked patterns:
    shows which program shapes produce Normal-Reads, Time-Reads of various
    distances, and Bypasses — and why.

    Run with: [dune exec examples/marking_tour.exe] *)

let show title source =
  Printf.printf "--- %s ---\n" title;
  let program = Core.parse source in
  let listing, _ = Core.mark program in
  print_endline listing

let () =
  show "owner-aligned reuse: the reader's task wrote the data -> Normal"
    {|
array a[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 0, 63
    a[i] = a[i] + 1
  end
end
|};

  show "neighbour reads: written one epoch ago by another task -> Time-Read(1)"
    {|
array a[64]
array b[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 1, 62
    b[i] = a[i - 1] + a[i + 1]
  end
end
|};

  show "unanalyzable subscript: whole-array section, conservative distance"
    {|
array a[64]
array b[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 0, 63
    b[i] = a[blackbox(f, i) mod 64]
  end
end
|};

  show "read-only data after initialization by the serial thread -> serial-aligned"
    {|
array c[64]
array d[64]
proc main()
  do i = 0, 63
    c[i] = 7 * i
  end
  doall i = 0, 63
    d[i] = c[i]
  end
end
|};

  show "critical sections bypass the cache entirely"
    {|
array total[1]
array data[64]
proc main()
  doall i = 0, 63
    data[i] = i
  end
  doall i = 0, 63
    critical
      total[0] = total[0] + data[i]
    end
  end
end
|};

  show "interprocedural: the callee's writes are visible across the call"
    {|
array u[64]
array v[64]
proc init()
  doall i = 0, 63
    u[i] = i
  end
end
proc main()
  call init()
  doall i = 1, 62
    v[i] = u[i - 1] + 1
  end
end
|}
