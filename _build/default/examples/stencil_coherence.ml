(** Line-size study: how cache line size and scheme interact on ARC2D's
    ADI pattern — aligned row sweeps followed by column sweeps that write
    one word per line of data other processors still cache. This is the
    access pattern that separates the schemes most: HW pays false-sharing
    invalidation misses that grow with the line, while TPI's word-granular
    timetags are immune to false sharing.

    Run with: [dune exec examples/stencil_coherence.exe] *)

module Run = Core.Sim.Run
module Metrics = Core.Sim.Metrics
module Config = Core.Arch.Config
module Table = Hscd_util.Table

let () =
  let arc2d = List.find (fun (e : Core.Workloads.Perfect.entry) -> e.name = "ARC2D") Core.Workloads.Perfect.all in
  let program = arc2d.build () in
  let t =
    Table.create ~title:"ARC2D: miss rate by scheme and line size"
      ~header:[ "line size"; "BASE"; "SC"; "TPI"; "HW"; "HW false-sharing"; "TPI conservative" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun line_words ->
      let cfg = { Config.default with line_words } in
      let _, results = Run.compare ~cfg program in
      let get k = (List.find (fun (r : Run.comparison) -> r.kind = k) results).result in
      let miss k = Table.fpct (Metrics.miss_rate (get k).metrics) in
      List.iter
        (fun (r : Run.comparison) ->
          assert (r.result.memory_ok && r.result.metrics.violations = 0))
        results;
      Table.add_row t
        [
          Printf.sprintf "%d bytes" (line_words * 4);
          miss Run.Base; miss Run.SC; miss Run.TPI; miss Run.HW;
          Table.fi (Metrics.class_count (get Run.HW).metrics Core.Coherence.Scheme.False_sharing);
          Table.fi (Metrics.class_count (get Run.TPI).metrics Core.Coherence.Scheme.Conservative);
        ])
    [ 1; 4; 16 ];
  Table.add_note t "larger lines amplify HW false sharing on the column sweeps;";
  Table.add_note t "TPI misses come from conservative marks instead and do not grow the same way.";
  Table.print t
