(** Timetag width study on a long-running iterative solver: demonstrates
    the two-phase reset in action. With narrow tags the reset fires often
    and forcibly invalidates still-useful data; the study shows where the
    paper's "4 bits is enough" claim comes from — and where it breaks
    (1-epoch distances survive even 2-bit tags; long-distance reuse does
    not).

    Run with: [dune exec examples/timetag_study.exe] *)

module Run = Core.Sim.Run
module Metrics = Core.Sim.Metrics
module Config = Core.Arch.Config
module Table = Hscd_util.Table

let () =
  (* many epochs: 40 solver iterations = 160+ boundaries *)
  let program = Core.Workloads.Kernels.jacobi1d ~n:512 ~iters:40 () in
  let t =
    Table.create ~title:"TPI vs timetag width on 40 Jacobi iterations (512 points)"
      ~header:[ "tag bits"; "phase (epochs)"; "resets"; "reset misses"; "miss rate"; "cycles" ]
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun bits ->
      let cfg = { Config.default with timetag_bits = bits } in
      let _, r = Run.run_source ~cfg Run.TPI program in
      assert (r.memory_ok && r.metrics.violations = 0);
      Table.add_row t
        [
          Table.fi bits;
          Table.fi (Config.phase_epochs cfg);
          Table.fi r.metrics.scheme_stats.two_phase_resets;
          Table.fi (Metrics.class_count r.metrics Core.Coherence.Scheme.Reset_inv);
          Table.fpct (Metrics.miss_rate r.metrics);
          Table.fi r.cycles;
        ])
    [ 2; 3; 4; 6; 8 ];
  Table.add_note t "every configuration is verified coherent against the golden interpreter;";
  Table.add_note t "narrow tags only cost misses when reuse distances exceed the phase window.";
  Table.print t
