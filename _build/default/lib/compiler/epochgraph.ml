(** The epoch flow graph and the array data-flow analysis over it.

    Nodes are epochs (serial segments, DOALLs, calls to epoch-containing
    procedures); edge weights count the epoch boundaries crossed between
    two nodes (1 when entering or leaving a parallel epoch, 0 between
    serial segments of the same dynamic epoch). The reference-marking rule
    is: for a read of section S, find the minimum over all backward paths
    of the distance to the first epoch that may write S; that distance
    (adjusted by one when the writer may run on a different processor)
    bounds the Time-Read window.

    The module also computes the interprocedural summaries (MOD sections,
    minimum internal boundary count, exit-side write allowances) used when
    a backward path crosses a procedure call, and the entry-side context
    propagated top-down to callees. *)

module Ast = Hscd_lang.Ast

let infinity_dist = max_int / 4

(* --- writers and readers --- *)

type writer_kind =
  | WSerial  (** written by the serial thread (processor 0) *)
  | WPar of Gsa.anchor option  (** written by a DOALL task, possibly anchored *)
  | WCall of string  (** written somewhere inside this callee *)

type write_rec = { w_array : string; w_section : Sections.t; w_kind : writer_kind }

type reader = RSerial | RPar of Gsa.anchor option

(* --- graph --- *)

type kind = KSerial | KPar | KCall of string

type node = {
  id : int;
  kind : kind;
  transit : int;  (** boundaries crossed when a path passes through (calls) *)
  mutable writes : write_rec list;
  mutable preds : (int * int) list;
  mutable succs : (int * int) list;
}

type graph = { nodes : node array; entry : int; exit_ : int; proc : string }

(** Annotation tree mirroring {!Segment.t}, giving each unit its node ids.
    [pre] nodes host the reads performed by loop bounds and branch
    conditions (those evaluate in the preceding serial epoch). *)
type aunit =
  | ANSerial of int
  | ANPar of { pre : int; par : int }
  | ANDo of { pre : int; post : int; body : aunit list }
  | ANIf of { pre : int; join : int; then_ : aunit list; else_ : aunit list }
  | ANCall of int

(* --- interprocedural summaries --- *)

type summary = {
  mod_map : Sections.Map.t;
  min_boundaries : int;
  exit_allow_serial : (string * int) list;
      (** per array: min allowance for a serial read right after a call *)
  exit_allow_par : (string * int) list;
}

(* --- graph construction --- *)

type builder = { mutable rev_nodes : node list; mutable count : int; min_bound : string -> int }

let new_node b kind =
  let transit = match kind with KCall callee -> b.min_bound callee | KSerial | KPar -> 0 in
  let n = { id = b.count; kind; transit; writes = []; preds = []; succs = [] } in
  b.rev_nodes <- n :: b.rev_nodes;
  b.count <- b.count + 1;
  n

let is_par_kind = function KPar -> true | KSerial | KCall _ -> false

let connect b u v =
  let nodes = b.rev_nodes in
  let get id = List.find (fun n -> n.id = id) nodes in
  let nu = get u and nv = get v in
  let w = (if is_par_kind nu.kind then 1 else 0) + (if is_par_kind nv.kind then 1 else 0) in
  if not (List.mem (v, w) nu.succs) then begin
    nu.succs <- (v, w) :: nu.succs;
    nv.preds <- (u, w) :: nv.preds
  end

(* Build the graph for one unit; returns (entry_id, exit_id, annotation). *)
let rec build_unit b (u : Segment.unit_) =
  match u with
  | Segment.USerial _ ->
    let n = new_node b KSerial in
    (n.id, n.id, ANSerial n.id)
  | Segment.UPar _ ->
    let pre = new_node b KSerial in
    let par = new_node b KPar in
    connect b pre.id par.id;
    (pre.id, par.id, ANPar { pre = pre.id; par = par.id })
  | Segment.UDo (_, body) ->
    let pre = new_node b KSerial in
    let post = new_node b KSerial in
    let entry_b, exit_b, anno = build_seq b body in
    (match (entry_b, exit_b) with
    | Some e, Some x ->
      connect b pre.id e;
      connect b x post.id;
      connect b x e (* back edge: next iteration *)
    | _ -> ());
    (* the loop may execute zero times *)
    connect b pre.id post.id;
    (pre.id, post.id, ANDo { pre = pre.id; post = post.id; body = anno })
  | Segment.UIf (_, t, e) ->
    let pre = new_node b KSerial in
    let join = new_node b KSerial in
    let branch units =
      match build_seq b units with
      | Some en, Some ex, anno ->
        connect b pre.id en;
        connect b ex join.id;
        anno
      | _ ->
        connect b pre.id join.id;
        []
    in
    let t_anno = branch t in
    let e_anno = branch e in
    (pre.id, join.id, ANIf { pre = pre.id; join = join.id; then_ = t_anno; else_ = e_anno })
  | Segment.UCallE (name, _) ->
    let n = new_node b (KCall name) in
    (n.id, n.id, ANCall n.id)

and build_seq b (units : Segment.t) =
  List.fold_left
    (fun (entry, prev_exit, annos) u ->
      let en, ex, anno = build_unit b u in
      (match prev_exit with Some p -> connect b p en | None -> ());
      let entry = match entry with None -> Some en | some -> some in
      (entry, Some ex, annos @ [ anno ]))
    (None, None, []) units

let build ~proc_name ~min_bound (ir : Segment.t) =
  let b = { rev_nodes = []; count = 0; min_bound } in
  let entry = new_node b KSerial in
  let exit_ = new_node b KSerial in
  let en, ex, anno = build_seq b ir in
  (match (en, ex) with
  | Some e, Some x ->
    connect b entry.id e;
    connect b x exit_.id
  | _ -> connect b entry.id exit_.id);
  let nodes = Array.make b.count entry in
  List.iter (fun n -> nodes.(n.id) <- n) b.rev_nodes;
  ({ nodes; entry = entry.id; exit_ = exit_.id; proc = proc_name }, anno)

(* --- distances --- *)

(** Backward distances (epoch boundaries) from a source node to every other
    node's exit boundary. [src_at_entry] starts the walk at the source's
    entry boundary instead (used for call-entry contexts). *)
let backward_distances g ?(src_at_entry = false) src =
  let n = Array.length g.nodes in
  let dist = Array.make n infinity_dist in
  dist.(src) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun u ->
        if dist.(u.id) < infinity_dist then begin
          let transit = if u.id = src && src_at_entry then 0 else u.transit in
          List.iter
            (fun (p, w) ->
              let cand = dist.(u.id) + transit + w in
              if cand < dist.(p) then begin
                dist.(p) <- cand;
                changed := true
              end)
            u.preds
        end)
      g.nodes
  done;
  dist

(** Forward shortest boundary count from [src]; used for [min_boundaries]. *)
let forward_distances g src =
  let n = Array.length g.nodes in
  let dist = Array.make n infinity_dist in
  dist.(src) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun u ->
        if dist.(u.id) < infinity_dist then
          List.iter
            (fun (v, w) ->
              let cand = dist.(u.id) + w + g.nodes.(v).transit in
              if cand < dist.(v) then begin
                dist.(v) <- cand;
                changed := true
              end)
            u.succs)
      g.nodes
  done;
  dist

(* --- allowance queries --- *)

(** May a writer run on the same processor as the reader, provably? *)
let aligned ~static_sched ~intertask (wk : writer_kind) (r : reader) =
  match (wk, r) with
  | WSerial, RSerial -> true
  | WPar (Some aw), RPar (Some ar) -> static_sched && intertask && Gsa.anchors_equal aw ar
  | _ -> false

type query_env = {
  summaries : string -> summary option;
  entry_allow : string -> (string * (int option * int option)) list;
      (** per proc: array -> (serial-reader, par-reader) entry allowances *)
  static_sched : bool;
  intertask : bool;
}

let exit_allow_of env callee ~reader_is_par array =
  match env.summaries callee with
  | None -> None
  | Some s ->
    List.assoc_opt array (if reader_is_par then s.exit_allow_par else s.exit_allow_serial)

type verdict = {
  min_allowance : int option;
      (** [None]: no possible prior writer, the read can never be stale.
          [Some d]: the compiler may emit Time-Read(d); negative forces a
          bypass. *)
  all_aligned : bool;
      (** every possible writer provably runs on the reader's processor; the
          reader's own cache then can never hold stale data and the read can
          be a Normal-Read regardless of distance *)
}

(** Minimum allowance for a read of [section] of [array] performed in the
    node whose backward [dist]ances are given, with reader kind [reader]. *)
let allowance env g ~dist ~array ~section ~reader =
  let reader_is_par = match reader with RPar _ -> true | RSerial -> false in
  let best = ref None in
  let all_aligned = ref true in
  let consider ~is_aligned v =
    if not is_aligned then all_aligned := false;
    match !best with Some b when b <= v -> () | _ -> best := Some v
  in
  Array.iter
    (fun node ->
      let d = dist.(node.id) in
      if d < infinity_dist then
        List.iter
          (fun w ->
            if w.w_array = array && Sections.inter_nonempty w.w_section section then
              match w.w_kind with
              | WCall callee -> (
                match exit_allow_of env callee ~reader_is_par array with
                | Some a -> consider ~is_aligned:false (d + a)
                | None -> ())
              | k ->
                let is_aligned =
                  aligned ~static_sched:env.static_sched ~intertask:env.intertask k reader
                in
                consider ~is_aligned (d + if is_aligned then 0 else -1))
          node.writes)
    g.nodes;
  (* context before this procedure's entry *)
  let d_entry = dist.(g.entry) in
  if d_entry < infinity_dist then
    List.iter
      (fun (a, (s_allow, p_allow)) ->
        if a = array then
          match (if reader_is_par then p_allow else s_allow) with
          | Some a -> consider ~is_aligned:false (d_entry + a)
          | None -> ())
      (env.entry_allow g.proc);
  { min_allowance = !best; all_aligned = !all_aligned }
