(** Procedure call graph: bottom-up ordering for side-effect summaries and
    the epoch-containment predicate. Assumes sema verified acyclicity. *)

type t = {
  program : Hscd_lang.Ast.program;
  callees : (string, string list) Hashtbl.t;
  bottom_up : string list;  (** callees before callers *)
}

(** Direct callees of a procedure, in first-occurrence order. *)
val direct_callees : Hscd_lang.Ast.proc -> string list

val build : Hscd_lang.Ast.program -> t

val callees_of : t -> string -> string list

(** Callers-before-callees ordering, for the top-down context pass. *)
val top_down : t -> string list

(** Memoized: does the procedure transitively execute any DOALL? *)
val contains_epochs : t -> string -> bool

(** Call sites of each procedure: [(caller, inside_parallel)] pairs. *)
val call_sites : t -> string -> (string * bool) list
