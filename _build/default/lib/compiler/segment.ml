(** Epoch-structured intermediate representation.

    A procedure body is re-expressed as a tree of units that makes epoch
    boundaries explicit: maximal runs of epoch-free statements become
    [USerial] units, each DOALL becomes a [UPar] unit, and the serial
    control structures that *contain* epochs survive as [UDo]/[UIf] so the
    epoch flow graph [21] can give them back edges and branch edges. Calls
    to procedures that (transitively) contain DOALLs become [UCallE]. *)

module Ast = Hscd_lang.Ast

type t = unit_ list

and unit_ =
  | USerial of Ast.stmt list  (** epoch-free statements *)
  | UPar of Ast.loop  (** one DOALL: a parallel epoch per dynamic instance *)
  | UDo of do_hdr * t  (** serial loop containing epochs *)
  | UIf of Ast.cond * t * t  (** branch containing epochs *)
  | UCallE of string * Ast.expr list  (** call to an epoch-containing procedure *)

and do_hdr = { index : string; lo : Ast.expr; hi : Ast.expr }

(** Does this statement execute any epoch boundary? [calls_epochs] answers
    it for procedure names. *)
let rec stmt_has_epochs ~calls_epochs (s : Ast.stmt) =
  match s with
  | Ast.Doall _ -> true
  | Ast.Do l -> List.exists (stmt_has_epochs ~calls_epochs) l.body
  | Ast.If (_, t, e) ->
    List.exists (stmt_has_epochs ~calls_epochs) t
    || List.exists (stmt_has_epochs ~calls_epochs) e
  | Ast.Call (name, _) -> calls_epochs name
  | Ast.Critical body -> List.exists (stmt_has_epochs ~calls_epochs) body
  | Ast.Assign _ | Ast.Store _ | Ast.Work _ -> false

let rec of_stmts ~calls_epochs (stmts : Ast.stmt list) : t =
  let flush acc units = if acc = [] then units else USerial (List.rev acc) :: units in
  let rec go acc units = function
    | [] -> List.rev (flush acc units)
    | s :: rest ->
      if not (stmt_has_epochs ~calls_epochs s) then go (s :: acc) units rest
      else
        let unit =
          match s with
          | Ast.Doall l -> UPar l
          | Ast.Do l ->
            UDo ({ index = l.index; lo = l.lo; hi = l.hi }, of_stmts ~calls_epochs l.body)
          | Ast.If (c, t, e) -> UIf (c, of_stmts ~calls_epochs t, of_stmts ~calls_epochs e)
          | Ast.Call (name, args) -> UCallE (name, args)
          | Ast.Critical _ ->
            (* sema rejects doalls inside critical via normalization order;
               be defensive anyway *)
            invalid_arg "Segment: critical section containing epochs"
          | Ast.Assign _ | Ast.Store _ | Ast.Work _ -> assert false
        in
        go [] (unit :: flush acc units) rest
  in
  go [] [] stmts

(** Inverse of [of_stmts]; used to rebuild the marked procedure body. *)
let rec to_stmts (ir : t) : Ast.stmt list =
  List.concat_map
    (function
      | USerial stmts -> stmts
      | UPar l -> [ Ast.Doall l ]
      | UDo (h, body) -> [ Ast.Do { index = h.index; lo = h.lo; hi = h.hi; body = to_stmts body } ]
      | UIf (c, t, e) -> [ Ast.If (c, to_stmts t, to_stmts e) ]
      | UCallE (name, args) -> [ Ast.Call (name, args) ])
    ir
