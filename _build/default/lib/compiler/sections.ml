(** Regular section descriptors with strides.

    Array data-flow analysis summarizes the set of elements a reference (or
    a whole epoch) may touch as one strided interval per dimension, the
    classic bounded-regular-section representation. All operations here are
    conservative in the *may* direction: [inter_nonempty] may report true
    for disjoint sets, [union] over-approximates, and that is exactly the
    soundness the coherence marking needs (a spurious intersection only
    yields a more conservative mark, never a stale read). *)

(** A non-empty set of integers [{lo, lo+step, ..., hi}] with
    [hi = lo + k*step]. [step = 0] encodes the singleton [lo]. *)
module Sint = struct
  type t = { lo : int; hi : int; step : int }

  let singleton v = { lo = v; hi = v; step = 0 }

  (** Normalize: ensure [lo <= hi], positive step ([0] means a dense
      request), [hi] snapped onto the lattice, singletons get step 0. *)
  let make ~lo ~hi ~step =
    let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
    let step = if step = 0 then 1 else abs step in
    let hi = lo + ((hi - lo) / step * step) in
    if lo = hi then { lo; hi = lo; step = 0 } else { lo; hi; step }

  let interval lo hi = make ~lo ~hi ~step:1

  let mem v { lo; hi; step } =
    v >= lo && v <= hi && (step = 0 || (v - lo) mod step = 0)

  let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

  (** Conservative hull of two strided intervals: range hull, step the gcd
      of both steps and of the offset between anchors. *)
  let union a b =
    let lo = min a.lo b.lo and hi = max a.hi b.hi in
    let step = gcd (gcd a.step b.step) (abs (a.lo - b.lo)) in
    make ~lo ~hi ~step

  (* Extended gcd: returns (g, x, y) with a*x + b*y = g. *)
  let rec egcd a b = if b = 0 then (a, 1, 0) else
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b) * y)

  (** Exact emptiness test of the intersection of two strided intervals:
      solutions of x ≡ a.lo (mod a.step), x ≡ b.lo (mod b.step) within the
      common range. *)
  let inter_nonempty a b =
    let rlo = max a.lo b.lo and rhi = min a.hi b.hi in
    if rlo > rhi then false
    else if a.step = 0 then mem a.lo b
    else if b.step = 0 then mem b.lo a
    else begin
      let g, x, _ = egcd a.step b.step in
      let diff = b.lo - a.lo in
      if diff mod g <> 0 then false
      else begin
        (* x0 = a.lo + a.step * x * (diff/g) is a solution of the pair of
           congruences; the solution lattice has period lcm(a.step, b.step). *)
        let lcm = a.step / g * b.step in
        let x0 = a.lo + (a.step * (x * (diff / g))) in
        (* smallest lattice point >= rlo: x0 + ceil((rlo - x0)/lcm)*lcm *)
        let delta = rlo - x0 in
        let k = if delta >= 0 then (delta + lcm - 1) / lcm else -((-delta) / lcm) in
        let first = x0 + (k * lcm) in
        first <= rhi
      end
    end

  (** [subset a b]: true only if every element of [a] is in [b]; may return
      false negatives (conservative for must-style reasoning). *)
  let subset a b =
    a.lo >= b.lo && a.hi <= b.hi && mem a.lo b && mem a.hi b
    && (b.step = 0 || (a.step mod max 1 b.step = 0) || a.lo = a.hi)

  let to_string { lo; hi; step } =
    if lo = hi then string_of_int lo
    else if step = 1 then Printf.sprintf "%d:%d" lo hi
    else Printf.sprintf "%d:%d:%d" lo hi step
end

(** A section of a specific array: one strided interval per dimension. The
    dimension list always matches the array's rank. *)
type t = Sint.t list

let whole dims : t = List.map (fun d -> Sint.interval 0 (d - 1)) dims

let of_points points : t = List.map Sint.singleton points

let union (a : t) (b : t) : t =
  if List.length a <> List.length b then invalid_arg "Sections.union: rank mismatch";
  List.map2 Sint.union a b

(** May the two sections share an element? Exact per dimension; a section
    is a cartesian product, so they intersect iff all dimensions do. *)
let inter_nonempty (a : t) (b : t) =
  if List.length a <> List.length b then invalid_arg "Sections.inter_nonempty: rank mismatch";
  List.for_all2 Sint.inter_nonempty a b

let subset (a : t) (b : t) =
  List.length a = List.length b && List.for_all2 Sint.subset a b

let to_string (s : t) = "[" ^ String.concat ", " (List.map Sint.to_string s) ^ "]"

(** Per-array section maps, the MOD/USE summaries of the data-flow pass. *)
module Map = struct
  type section = t

  type t = (string * section) list

  let empty : t = []

  let find (m : t) name = List.assoc_opt name m

  let add (m : t) name (s : section) : t =
    match find m name with
    | None -> (name, s) :: m
    | Some existing -> (name, union existing s) :: List.remove_assoc name m

  let merge (a : t) (b : t) : t = List.fold_left (fun acc (n, s) -> add acc n s) a b

  let intersects (m : t) name (s : section) =
    match find m name with None -> false | Some ms -> inter_nonempty ms s

  let arrays (m : t) = List.map fst m

  let bindings (m : t) = m

  let is_empty (m : t) = m = []

  let to_string (m : t) =
    String.concat "; " (List.map (fun (n, s) -> n ^ to_string s) m)
end
