(** Scalar symbolic analysis in the style of demand-driven GSA evaluation.

    Polaris analyzes subscripts on the gated-single-assignment form [4]; we
    obtain the same information by walking each procedure with a symbolic
    environment mapping scalars to {!Affine} forms:

    - assignments bind the scalar to the affine value of the right side;
    - [If] merges the branch environments with a gamma: equal forms are
      kept, differing forms become [Unknown];
    - serial loop bodies widen every scalar assigned in them (mu);
    - loop indices are opaque symbols carrying their bound ranges;
    - procedure parameters are opaque symbols (context-insensitive here;
      the interprocedural layer accounts for the imprecision).

    On top of the environment this module turns subscript vectors into
    {!Sections} (with stride information preserved even when ranges are
    unknown) and extracts the "anchor" of a reference — the dimension bound
    one-to-one to the surrounding DOALL index — which powers the intertask
    locality (owner-alignment) optimization of the marking pass. *)

module Ast = Hscd_lang.Ast

type loopinfo = {
  index : string;
  lo : Affine.t;
  hi : Affine.t;
  parallel : bool;
}

type ctx = {
  env : (string * Affine.t) list;
  loops : loopinfo list;  (** innermost first *)
}

let empty_ctx = { env = []; loops = [] }

let find_loop ctx v = List.find_opt (fun l -> l.index = v) ctx.loops

let lookup ctx v =
  if find_loop ctx v <> None then Affine.var v
  else match List.assoc_opt v ctx.env with
    | Some a -> a
    | None -> Affine.var v (* procedure parameter or not-yet-assigned: opaque symbol *)

let bind ctx v a = { ctx with env = (v, a) :: List.remove_assoc v ctx.env }

let push_loop ctx li = { ctx with loops = li :: ctx.loops }

(** Gamma merge after a branch: keep bindings provably equal on both sides. *)
let gamma before a b =
  let keys = List.sort_uniq compare (List.map fst a.env @ List.map fst b.env) in
  let env =
    List.filter_map
      (fun v ->
        let va = lookup a v and vb = lookup b v in
        if Affine.equal va vb then Some (v, va) else Some (v, Affine.unknown))
      keys
  in
  { before with env }

(** Scalars assigned anywhere in a statement list (for mu widening). *)
let assigned_scalars stmts =
  Ast.fold_stmts
    (fun acc s ->
      match s with
      | Ast.Assign (v, _) -> if List.mem v acc then acc else v :: acc
      | Ast.Do l | Ast.Doall l -> if List.mem l.index acc then acc else l.index :: acc
      | _ -> acc)
    [] stmts

(** Mu widening: invalidate every scalar the loop body may redefine. *)
let widen_for_loop ctx body =
  List.fold_left (fun c v -> bind c v Affine.unknown) ctx (assigned_scalars body)

let rec expr_to_affine ctx (e : Ast.expr) =
  match e with
  | Int n -> Affine.const n
  | Var v -> lookup ctx v
  | Neg e -> Affine.neg (expr_to_affine ctx e)
  | Binop (Add, a, b) -> Affine.add (expr_to_affine ctx a) (expr_to_affine ctx b)
  | Binop (Sub, a, b) -> Affine.sub (expr_to_affine ctx a) (expr_to_affine ctx b)
  | Binop (Mul, a, b) -> Affine.mul (expr_to_affine ctx a) (expr_to_affine ctx b)
  | Binop ((Div | Mod | Min | Max), _, _) -> Affine.unknown
  | Aref _ -> Affine.unknown
  | Blackbox _ -> Affine.unknown

(** Ranges of the in-scope loop indices whose bounds are compile-time
    constants, for widening affine forms to intervals. *)
let const_ranges ctx =
  List.filter_map
    (fun l ->
      match (Affine.is_const l.lo, Affine.is_const l.hi) with
      | Some lo, Some hi when lo <= hi -> Some (l.index, (lo, hi))
      | _ -> None)
    ctx.loops

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** Widen one affine subscript over a dimension of extent [dim]. Keeps the
    stride/congruence information even when some variables are unranged:
    with form [c + Σ ci·xi], every value is ≡ c (mod gcd ci). Returns None
    when the subscript range is provably outside the dimension. *)
let widen_subscript ctx ~dim aff =
  let whole = Sections.Sint.interval 0 (dim - 1) in
  match aff with
  | Affine.Unknown -> Some whole
  | Affine.Affine { terms; const } ->
    let g = List.fold_left (fun acc (_, c) -> gcd acc c) 0 terms in
    let clip lo hi =
      let lo = max lo 0 and hi = min hi (dim - 1) in
      if lo > hi then None
      else if g = 0 then Some (Sections.Sint.interval lo hi)
      else begin
        (* snap the bounds onto the congruence class const mod g *)
        let m = ((const mod g) + g) mod g in
        let lo' = lo + (((m - lo) mod g + g) mod g) in
        let hi' = hi - (((hi - m) mod g + g) mod g) in
        if lo' > hi' then None else Some (Sections.Sint.make ~lo:lo' ~hi:hi' ~step:g)
      end
    in
    (match Affine.range (const_ranges ctx) aff with
    | Some (lo, hi) -> clip lo hi
    | None -> clip min_int max_int |> Option.map (fun s -> s) |> fun o ->
      (match o with Some s -> Some s | None -> Some whole))

(** Section touched by a subscript vector; None when provably empty. *)
let section_of_subscripts ctx ~dims subscripts =
  let rec go dims subs acc =
    match (dims, subs) with
    | [], [] -> Some (List.rev acc)
    | d :: dims', e :: subs' -> (
      match widen_subscript ctx ~dim:d (expr_to_affine ctx e) with
      | None -> None
      | Some s -> go dims' subs' (s :: acc))
    | _ -> invalid_arg "section_of_subscripts: rank mismatch"
  in
  go dims subscripts []

(** The innermost enclosing parallel loop, if any. *)
let enclosing_doall ctx = List.find_opt (fun l -> l.parallel) ctx.loops

(** Anchor of a reference: dimension [dim] whose subscript is exactly
    [coef*i + off] for the enclosing DOALL index [i], with [off] free of
    other loop indices. Such a subscript binds array coordinates one-to-one
    to tasks, enabling same-processor reasoning across aligned DOALLs. *)
type anchor = {
  anchor_dim : int;
  coef : int;
  off : Affine.t;
  space_lo : Affine.t;
  space_hi : Affine.t;
}

let anchor_of_reference ctx subscripts =
  match enclosing_doall ctx with
  | None -> None
  | Some dl ->
    let loop_indices = List.map (fun l -> l.index) ctx.loops in
    let rec scan k = function
      | [] -> None
      | e :: rest ->
        let aff = expr_to_affine ctx e in
        let c = Affine.coef_of dl.index aff in
        if c <> 0 then begin
          let off = Affine.subst dl.index (Affine.const 0) aff in
          (* the offset must not vary with any other in-scope loop index *)
          if List.exists (fun v -> List.mem v loop_indices) (Affine.vars off) then scan (k + 1) rest
          else Some { anchor_dim = k; coef = c; off; space_lo = dl.lo; space_hi = dl.hi }
        end
        else scan (k + 1) rest
    in
    scan 0 subscripts

let anchors_equal a b =
  a.anchor_dim = b.anchor_dim && a.coef = b.coef && Affine.equal a.off b.off
  && Affine.equal a.space_lo b.space_lo && Affine.equal a.space_hi b.space_hi
