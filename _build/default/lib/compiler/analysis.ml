(** Whole-program coherence analysis.

    Orchestrates, per procedure: segmentation into the epoch IR, epoch flow
    graph construction, MOD (write) collection with symbolic sections, and
    interprocedural summaries in two passes — bottom-up for side effects
    and exit allowances, top-down for call-site entry contexts. The result
    feeds {!Marking}. *)

module Ast = Hscd_lang.Ast

type proc_analysis = {
  ir : Segment.t;
  graph : Epochgraph.graph;
  anno : Epochgraph.aunit list;
  summary : Epochgraph.summary;
}

type t = {
  program : Ast.program;
  cg : Callgraph.t;
  procs : (string, proc_analysis) Hashtbl.t;
  entry_allow : (string, (string * (int option * int option)) list) Hashtbl.t;
  static_sched : bool;
  intertask : bool;
}

let dims_of program name =
  match Ast.find_array program name with Some d -> d.Ast.dims | None -> [ 1 ]

(* --- write collection --- *)

(* Walk epoch-free statements, threading the symbolic context and recording
   every array write into [node]. [par] is true inside a DOALL body. *)
let rec collect_stmts t ctx ~(node : Epochgraph.node) ~par stmts =
  List.fold_left (fun ctx s -> collect_stmt t ctx ~node ~par s) ctx stmts

and collect_stmt t ctx ~node ~par (s : Ast.stmt) =
  match s with
  | Ast.Assign (v, e) -> Gsa.bind ctx v (Gsa.expr_to_affine ctx e)
  | Ast.Store (a, idx, _, _) ->
    let dims = dims_of t.program a in
    (match Gsa.section_of_subscripts ctx ~dims idx with
    | None -> () (* provably empty: the store cannot execute in bounds *)
    | Some section ->
      let kind =
        if par then Epochgraph.WPar (Gsa.anchor_of_reference ctx idx) else Epochgraph.WSerial
      in
      node.writes <- { Epochgraph.w_array = a; w_section = section; w_kind = kind } :: node.writes);
    ctx
  | Ast.Work _ -> ctx
  | Ast.Critical body -> collect_stmts t ctx ~node ~par body
  | Ast.If (_, th, el) ->
    let ct = collect_stmts t ctx ~node ~par th in
    let ce = collect_stmts t ctx ~node ~par el in
    Gsa.gamma ctx ct ce
  | Ast.Do l ->
    let inner =
      Gsa.push_loop (Gsa.widen_for_loop ctx l.body)
        {
          Gsa.index = l.index;
          lo = Gsa.expr_to_affine ctx l.lo;
          hi = Gsa.expr_to_affine ctx l.hi;
          parallel = false;
        }
    in
    ignore (collect_stmts t inner ~node ~par l.body);
    Gsa.widen_for_loop ctx l.body
  | Ast.Doall _ -> invalid_arg "Analysis: doall inside an epoch-free segment"
  | Ast.Call (name, _) ->
    (* non-epoch callee: its writes happen within the current epoch on the
       current processor's task; sections come from its summary *)
    (match Hashtbl.find_opt t.procs name with
    | None -> ()
    | Some pa ->
      List.iter
        (fun (a, section) ->
          let kind = if par then Epochgraph.WPar None else Epochgraph.WSerial in
          node.writes <-
            { Epochgraph.w_array = a; w_section = section; w_kind = kind } :: node.writes)
        (Sections.Map.bindings pa.summary.mod_map));
    ctx

(* Walk the epoch IR and its annotation in lockstep, filling node writes.
   Returns the context after the unit sequence. *)
let rec collect_units t ctx (graph : Epochgraph.graph) units annos =
  List.fold_left2 (fun ctx u a -> collect_unit t ctx graph u a) ctx units annos

and collect_unit t ctx (graph : Epochgraph.graph) (u : Segment.unit_) (a : Epochgraph.aunit) =
  match (u, a) with
  | Segment.USerial stmts, Epochgraph.ANSerial id ->
    collect_stmts t ctx ~node:graph.nodes.(id) ~par:false stmts
  | Segment.UPar l, Epochgraph.ANPar { par; _ } ->
    let inner =
      Gsa.push_loop (Gsa.widen_for_loop ctx l.body)
        {
          Gsa.index = l.index;
          lo = Gsa.expr_to_affine ctx l.lo;
          hi = Gsa.expr_to_affine ctx l.hi;
          parallel = true;
        }
    in
    ignore (collect_stmts t inner ~node:graph.nodes.(par) ~par:true l.body);
    Gsa.widen_for_loop ctx l.body
  | Segment.UDo (h, body), Epochgraph.ANDo { body = anno_body; _ } ->
    let body_stmts = Segment.to_stmts body in
    let inner =
      Gsa.push_loop
        (List.fold_left (fun c v -> Gsa.bind c v Affine.unknown) ctx (Gsa.assigned_scalars body_stmts))
        {
          Gsa.index = h.index;
          lo = Gsa.expr_to_affine ctx h.lo;
          hi = Gsa.expr_to_affine ctx h.hi;
          parallel = false;
        }
    in
    ignore (collect_units t inner graph body anno_body);
    List.fold_left (fun c v -> Gsa.bind c v Affine.unknown) ctx (Gsa.assigned_scalars body_stmts)
  | Segment.UIf (_, th, el), Epochgraph.ANIf { then_; else_; _ } ->
    let ct = collect_units t ctx graph th then_ in
    let ce = collect_units t ctx graph el else_ in
    Gsa.gamma ctx ct ce
  | Segment.UCallE (name, _), Epochgraph.ANCall id ->
    (match Hashtbl.find_opt t.procs name with
    | None -> ()
    | Some pa ->
      let node = graph.nodes.(id) in
      List.iter
        (fun (arr, section) ->
          node.writes <-
            { Epochgraph.w_array = arr; w_section = section; w_kind = Epochgraph.WCall name }
            :: node.writes)
        (Sections.Map.bindings pa.summary.mod_map));
    ctx
  | _ -> invalid_arg "Analysis: IR/annotation shape mismatch"

(* --- summaries --- *)

let mod_map_of_graph (graph : Epochgraph.graph) =
  Array.fold_left
    (fun acc (n : Epochgraph.node) ->
      List.fold_left
        (fun acc (w : Epochgraph.write_rec) -> Sections.Map.add acc w.w_array w.w_section)
        acc n.writes)
    Sections.Map.empty graph.nodes

let query_env t =
  {
    Epochgraph.summaries =
      (fun name ->
        Option.map (fun (pa : proc_analysis) -> pa.summary) (Hashtbl.find_opt t.procs name));
    entry_allow =
      (fun name -> match Hashtbl.find_opt t.entry_allow name with Some l -> l | None -> []);
    static_sched = t.static_sched;
    intertask = t.intertask;
  }

(* Exit allowances: for each modified array, the minimum allowance seen by
   a read immediately after the procedure returns. *)
let exit_allowances t (graph : Epochgraph.graph) mod_map =
  let dist = Epochgraph.backward_distances graph graph.exit_ in
  let env = query_env t in
  let compute reader =
    List.filter_map
      (fun (array, _) ->
        let section = Sections.whole (dims_of t.program array) in
        match (Epochgraph.allowance env graph ~dist ~array ~section ~reader).min_allowance with
        | Some a -> Some (array, a)
        | None -> None)
      (Sections.Map.bindings mod_map)
  in
  (compute Epochgraph.RSerial, compute (Epochgraph.RPar None))

let analyze_proc t (p : Ast.proc) =
  let calls_epochs = Callgraph.contains_epochs t.cg in
  let ir = Segment.of_stmts ~calls_epochs p.body in
  let min_bound name =
    match Hashtbl.find_opt t.procs name with
    | Some pa -> pa.summary.min_boundaries
    | None -> 0
  in
  let graph, anno = Epochgraph.build ~proc_name:p.proc_name ~min_bound ir in
  ignore (collect_units t Gsa.empty_ctx graph ir anno);
  let mod_map = mod_map_of_graph graph in
  let fwd = Epochgraph.forward_distances graph graph.entry in
  let min_boundaries = min fwd.(graph.exit_) Epochgraph.infinity_dist in
  let exit_allow_serial, exit_allow_par = exit_allowances t graph mod_map in
  let summary =
    { Epochgraph.mod_map; min_boundaries; exit_allow_serial; exit_allow_par }
  in
  Hashtbl.replace t.procs p.proc_name { ir; graph; anno; summary }

(* --- top-down entry contexts --- *)

(* For each call site of [callee] (a node in a caller's graph), the
   allowance of each array at the call's entry boundary, for serial and
   parallel readers inside the callee; meet (min) across sites. *)
let propagate_entry_contexts t =
  let env = query_env t in
  let all_arrays = List.map (fun (d : Ast.decl) -> d.arr_name) t.program.arrays in
  let meet current v =
    match (current, v) with
    | None, v -> v
    | v, None -> v
    | Some a, Some b -> Some (min a b)
  in
  (* site-level allowances for epoch-containing callees (dedicated KCall
     nodes) and for epoch-free callees (calls buried inside segment nodes:
     we approximate their site by the containing node, entry-side). *)
  let record callee (alist : (string * (int option * int option)) list) =
    let old = match Hashtbl.find_opt t.entry_allow callee with Some l -> l | None -> [] in
    let merged =
      List.map
        (fun array ->
          let find l = match List.assoc_opt array l with Some v -> v | None -> (None, None) in
          let os, op = find old and ns, np = find alist in
          (array, (meet os ns, meet op np)))
        all_arrays
    in
    Hashtbl.replace t.entry_allow callee merged
  in
  let site_allowances (caller : proc_analysis) node_id ~src_at_entry ~reader =
    let dist = Epochgraph.backward_distances caller.graph ~src_at_entry node_id in
    List.map
      (fun array ->
        let section = Sections.whole (dims_of t.program array) in
        (array,
         (Epochgraph.allowance env caller.graph ~dist ~array ~section ~reader).min_allowance))
      all_arrays
  in
  (* first-visit order: callers before callees so contexts accumulate *)
  List.iter
    (fun caller_name ->
      match Hashtbl.find_opt t.procs caller_name with
      | None -> ()
      | Some caller ->
        (* KCall nodes: epoch-containing callees, always called from serial *)
        Array.iter
          (fun (n : Epochgraph.node) ->
            match n.kind with
            | Epochgraph.KCall callee ->
              let s = site_allowances caller n.id ~src_at_entry:true ~reader:Epochgraph.RSerial in
              let p =
                site_allowances caller n.id ~src_at_entry:true ~reader:(Epochgraph.RPar None)
              in
              record callee
                (List.map2 (fun (a, sv) (_, pv) -> (a, (sv, pv))) s p)
            | Epochgraph.KSerial | Epochgraph.KPar -> ())
          caller.graph.nodes;
        (* epoch-free callees called from inside segment nodes *)
        let scan_node (n : Epochgraph.node) stmts ~par =
          let callees =
            Ast.fold_stmts
              (fun acc s -> match s with Ast.Call (c, _) -> c :: acc | _ -> acc)
              [] stmts
          in
          if callees <> [] then begin
            (* Reads inside an epoch-free callee execute in the site's epoch
               on the site's task, but look syntactically serial to the
               callee's own marking, which therefore queries the serial
               slot: record the site-kind allowance in both slots. *)
            let reader = if par then Epochgraph.RPar None else Epochgraph.RSerial in
            let s = site_allowances caller n.id ~src_at_entry:false ~reader in
            let pairs = List.map (fun (a, v) -> (a, (v, v))) s in
            List.iter (fun c -> record c pairs) callees
          end
        in
        let rec scan_units units annos =
          List.iter2
            (fun (u : Segment.unit_) (a : Epochgraph.aunit) ->
              match (u, a) with
              | Segment.USerial stmts, Epochgraph.ANSerial id ->
                scan_node caller.graph.nodes.(id) stmts ~par:false
              | Segment.UPar l, Epochgraph.ANPar { par; _ } ->
                scan_node caller.graph.nodes.(par) l.body ~par:true
              | Segment.UDo (_, body), Epochgraph.ANDo { body = ab; _ } -> scan_units body ab
              | Segment.UIf (_, th, el), Epochgraph.ANIf { then_; else_; _ } ->
                scan_units th then_;
                scan_units el else_
              | Segment.UCallE _, Epochgraph.ANCall _ -> ()
              | _ -> invalid_arg "Analysis: IR/annotation mismatch in context scan")
            units annos
        in
        scan_units caller.ir caller.anno)
    (Callgraph.top_down t.cg)

(** Run the whole-program analysis. [static_sched] tells the compiler the
    runtime maps DOALL iterations to processors deterministically (block or
    cyclic scheduling); [intertask] enables the owner-alignment locality
    optimization of [21]. *)
let analyze ?(static_sched = true) ?(intertask = true) (program : Ast.program) =
  let cg = Callgraph.build program in
  let t =
    {
      program;
      cg;
      procs = Hashtbl.create 16;
      entry_allow = Hashtbl.create 16;
      static_sched;
      intertask;
    }
  in
  List.iter
    (fun name ->
      match Ast.find_proc program name with
      | Some p -> analyze_proc t p
      | None -> ())
    cg.bottom_up;
  propagate_entry_contexts t;
  t

let find_proc_analysis t name = Hashtbl.find_opt t.procs name
