(** Regular section descriptors with strides.

    All operations are conservative in the *may* direction: a spurious
    intersection only produces a more conservative coherence mark, never a
    stale read. *)

module Sint : sig
  (** A non-empty set [{lo, lo+step, ..., hi}]; [step = 0] encodes the
      singleton [lo]. *)
  type t = { lo : int; hi : int; step : int }

  val singleton : int -> t

  (** Normalizing constructor: orders bounds, takes |step| (0 treated as
      dense), snaps [hi] onto the lattice. *)
  val make : lo:int -> hi:int -> step:int -> t

  (** Dense interval. *)
  val interval : int -> int -> t

  val mem : int -> t -> bool

  (** Conservative hull (over-approximates the union). *)
  val union : t -> t -> t

  (** Exact emptiness test of the intersection (CRT on the two lattices). *)
  val inter_nonempty : t -> t -> bool

  (** True only if inclusion holds; may return false negatives. *)
  val subset : t -> t -> bool

  val to_string : t -> string
end

(** A section of one array: a strided interval per dimension (a cartesian
    product). *)
type t = Sint.t list

(** Whole array of the given dimensions. *)
val whole : int list -> t

(** Singleton element. *)
val of_points : int list -> t

(** Dimension-wise conservative hull; raises on rank mismatch. *)
val union : t -> t -> t

(** May the sections share an element? Exact per dimension. *)
val inter_nonempty : t -> t -> bool

val subset : t -> t -> bool
val to_string : t -> string

(** Per-array section maps: the MOD/USE summaries of the data-flow pass. *)
module Map : sig
  type section = t
  type t

  val empty : t
  val find : t -> string -> section option

  (** Accumulate (union) a section for an array. *)
  val add : t -> string -> section -> t

  val merge : t -> t -> t
  val intersects : t -> string -> section -> bool
  val arrays : t -> string list

  (** The (array, section) pairs, one per array. *)
  val bindings : t -> (string * section) list
  val is_empty : t -> bool
  val to_string : t -> string
end
