(** Human-readable output of marking decisions: annotated source listing
    and the static census used by the marking-statistics experiment. *)

module Ast = Hscd_lang.Ast
module Printer = Hscd_lang.Printer

let mark_suffix = function
  | Ast.Unmarked -> ""
  | Ast.Normal_read -> "{N}"
  | Ast.Time_read d -> Printf.sprintf "{T%d}" d
  | Ast.Bypass_read -> "{B}"

let wmark_suffix = function Ast.Normal_write -> "" | Ast.Bypass_write -> "{B}"

(* Annotated expression printing: like Printer but with mark suffixes. *)
let rec expr_str (e : Ast.expr) =
  match e with
  | Ast.Int n -> string_of_int n
  | Ast.Var v -> v
  | Ast.Neg e -> "-" ^ expr_str e
  | Ast.Binop ((Min | Max) as op, a, b) ->
    Printf.sprintf "%s(%s, %s)" (Printer.binop_str op) (expr_str a) (expr_str b)
  | Ast.Binop (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_str a) (Printer.binop_str op) (expr_str b)
  | Ast.Blackbox (name, args) ->
    Printf.sprintf "blackbox(%s%s)" name (String.concat "" (List.map (fun a -> ", " ^ expr_str a) args))
  | Ast.Aref (a, idx, m) ->
    Printf.sprintf "%s[%s]%s" a (String.concat ", " (List.map expr_str idx)) (mark_suffix m)

let rec cond_str (c : Ast.cond) =
  match c with
  | Ast.Cmp (op, a, b) -> Printf.sprintf "%s %s %s" (expr_str a) (Printer.cmpop_str op) (expr_str b)
  | Ast.And (a, b) -> Printf.sprintf "(%s and %s)" (cond_str a) (cond_str b)
  | Ast.Or (a, b) -> Printf.sprintf "(%s or %s)" (cond_str a) (cond_str b)
  | Ast.Not c -> "not " ^ cond_str c

let rec stmt_lines indent (s : Ast.stmt) =
  let pad = String.make (indent * 2) ' ' in
  match s with
  | Ast.Assign (v, e) -> [ Printf.sprintf "%s%s = %s" pad v (expr_str e) ]
  | Ast.Store (a, idx, e, m) ->
    [ Printf.sprintf "%s%s[%s]%s = %s" pad a
        (String.concat ", " (List.map expr_str idx))
        (wmark_suffix m) (expr_str e) ]
  | Ast.Do l -> loop_lines indent "do" l
  | Ast.Doall l -> loop_lines indent "doall" l
  | Ast.If (c, t, e) ->
    let head = Printf.sprintf "%sif %s then" pad (cond_str c) in
    let t_lines = List.concat_map (stmt_lines (indent + 1)) t in
    let e_lines =
      if e = [] then [] else (pad ^ "else") :: List.concat_map (stmt_lines (indent + 1)) e
    in
    (head :: t_lines) @ e_lines @ [ pad ^ "end" ]
  | Ast.Call (n, args) ->
    [ Printf.sprintf "%scall %s(%s)" pad n (String.concat ", " (List.map expr_str args)) ]
  | Ast.Critical body ->
    ((pad ^ "critical") :: List.concat_map (stmt_lines (indent + 1)) body) @ [ pad ^ "end" ]
  | Ast.Work e -> [ Printf.sprintf "%swork %s" pad (expr_str e) ]

and loop_lines indent kw (l : Ast.loop) =
  let pad = String.make (indent * 2) ' ' in
  let head = Printf.sprintf "%s%s %s = %s, %s" pad kw l.index (expr_str l.lo) (expr_str l.hi) in
  (head :: List.concat_map (stmt_lines (indent + 1)) l.body) @ [ pad ^ "end" ]

(** Marked program as an annotated listing ([{N}] normal, [{Tk}] Time-Read
    with distance k, [{B}] bypass). Not reparseable; for humans. *)
let annotated_listing (program : Ast.program) =
  let decls = List.map Printer.decl_str program.arrays in
  let proc_lines (p : Ast.proc) =
    (Printf.sprintf "proc %s(%s)" p.proc_name (String.concat ", " p.params)
     :: List.concat_map (stmt_lines 1) p.body)
    @ [ "end"; "" ]
  in
  String.concat "\n" (decls @ ("" :: List.concat_map proc_lines program.procs))

(** Census summary: static reference marking statistics. *)
let census_lines (c : Marking.census) =
  let reads = c.normal_reads + c.time_reads + c.bypass_reads in
  let pct n = if reads = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int reads in
  [
    Printf.sprintf "static array reads        %6d" reads;
    Printf.sprintf "  normal-read             %6d (%.1f%%)" c.normal_reads (pct c.normal_reads);
    Printf.sprintf "  time-read               %6d (%.1f%%)" c.time_reads (pct c.time_reads);
    Printf.sprintf "  bypass-read             %6d (%.1f%%)" c.bypass_reads (pct c.bypass_reads);
    Printf.sprintf "static array writes       %6d (+%d bypass)" c.normal_writes c.bypass_writes;
    Printf.sprintf "time-read distances       %s"
      (String.concat ", "
         (List.map (fun (d, n) -> Printf.sprintf "d=%d:%d" d n) c.distance_hist));
  ]

let print_census c = List.iter print_endline (census_lines c)
