(** Epoch-structured intermediate representation: a procedure body with
    explicit epoch boundaries (see the module documentation in the
    implementation for the construction rules). *)

type t = unit_ list

and unit_ =
  | USerial of Hscd_lang.Ast.stmt list  (** epoch-free statements *)
  | UPar of Hscd_lang.Ast.loop  (** one DOALL *)
  | UDo of do_hdr * t  (** serial loop containing epochs *)
  | UIf of Hscd_lang.Ast.cond * t * t  (** branch containing epochs *)
  | UCallE of string * Hscd_lang.Ast.expr list  (** call to an epoch-containing procedure *)

and do_hdr = { index : string; lo : Hscd_lang.Ast.expr; hi : Hscd_lang.Ast.expr }

(** Does this statement execute any epoch boundary? [calls_epochs] answers
    it for procedure names. *)
val stmt_has_epochs : calls_epochs:(string -> bool) -> Hscd_lang.Ast.stmt -> bool

val of_stmts : calls_epochs:(string -> bool) -> Hscd_lang.Ast.stmt list -> t

(** Inverse of [of_stmts]; used to rebuild the marked procedure body. *)
val to_stmts : t -> Hscd_lang.Ast.stmt list
