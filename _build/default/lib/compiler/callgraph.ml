(** Procedure call graph: callees, bottom-up ordering (for side-effect
    summaries) and the epoch-containment predicate. Assumes sema has
    verified the graph is acyclic. *)

module Ast = Hscd_lang.Ast

type t = {
  program : Ast.program;
  callees : (string, string list) Hashtbl.t;
  bottom_up : string list;  (** callees before callers *)
}

let direct_callees (p : Ast.proc) =
  Ast.fold_stmts
    (fun acc s -> match s with Ast.Call (n, _) -> (if List.mem n acc then acc else n :: acc) | _ -> acc)
    [] p.body
  |> List.rev

let build (program : Ast.program) =
  let callees = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace callees p.Ast.proc_name (direct_callees p)) program.procs;
  (* post-order DFS from every proc gives callees-first ordering *)
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      List.iter visit (try Hashtbl.find callees name with Not_found -> []);
      if Ast.find_proc program name <> None then order := name :: !order
    end
  in
  List.iter (fun p -> visit p.Ast.proc_name) program.procs;
  { program; callees; bottom_up = List.rev !order }

let callees_of t name = try Hashtbl.find t.callees name with Not_found -> []

(** callers-before-callees ordering, for the top-down context pass *)
let top_down t = List.rev t.bottom_up

(** [contains_epochs t] memoizes whether a procedure transitively executes
    any DOALL. *)
let contains_epochs t =
  let memo = Hashtbl.create 16 in
  let rec go name =
    match Hashtbl.find_opt memo name with
    | Some v -> v
    | None ->
      Hashtbl.replace memo name false;
      let v =
        match Ast.find_proc t.program name with
        | None -> false
        | Some p ->
          Ast.fold_stmts
            (fun acc s ->
              acc || match s with Ast.Doall _ -> true | Ast.Call (n, _) -> go n | _ -> false)
            false p.body
      in
      Hashtbl.replace memo name v;
      v
  in
  go

(** Call sites of each procedure: [(caller, inside_parallel)] pairs, where
    [inside_parallel] is true when the call happens inside a DOALL body. *)
let call_sites t =
  let sites = Hashtbl.create 16 in
  let add callee caller in_par =
    let old = try Hashtbl.find sites callee with Not_found -> [] in
    Hashtbl.replace sites callee ((caller, in_par) :: old)
  in
  let rec scan caller in_par stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s with
        | Ast.Call (n, _) -> add n caller in_par
        | Ast.Do l -> scan caller in_par l.body
        | Ast.Doall l -> scan caller true l.body
        | Ast.If (_, a, b) -> scan caller in_par a; scan caller in_par b
        | Ast.Critical body -> scan caller in_par body
        | Ast.Assign _ | Ast.Store _ | Ast.Work _ -> ())
      stmts
  in
  List.iter (fun p -> scan p.Ast.proc_name false p.Ast.body) t.program.procs;
  fun name -> (try Hashtbl.find sites name with Not_found -> [])
