(** Reference marking: the compiler pass that turns an analyzed program
    into coherence-annotated code.

    Every array read becomes [Normal_read] (provably never stale — no
    reachable prior writer, or all writers provably on the reader's own
    processor), [Time_read d] (valid while the cached word's timetag is
    within [d] epochs), or [Bypass_read] (a possibly-conflicting writer in
    the same epoch, or a critical section). Writes stay [Normal_write]
    except in critical sections, which bypass the cache.

    This mirrors the paper's code generation: the marked AST is the
    "executable" the simulator runs, with Time-Read operations standing in
    for the cache-control instructions of [23, 7]. *)

module Ast = Hscd_lang.Ast

type census = {
  mutable normal_reads : int;
  mutable time_reads : int;
  mutable bypass_reads : int;
  mutable normal_writes : int;
  mutable bypass_writes : int;
  mutable distance_hist : (int * int) list;  (** (d, static count) sorted *)
}

let empty_census () =
  {
    normal_reads = 0;
    time_reads = 0;
    bypass_reads = 0;
    normal_writes = 0;
    bypass_writes = 0;
    distance_hist = [];
  }

let bump_hist census d =
  let n = try List.assoc d census.distance_hist with Not_found -> 0 in
  census.distance_hist <-
    List.sort compare ((d, n + 1) :: List.remove_assoc d census.distance_hist)

type result = { program : Ast.program; analysis : Analysis.t; census : census }

type state = {
  t : Analysis.t;
  census : census;
  mutable pa : Analysis.proc_analysis;  (** procedure being marked *)
  dist_cache : (int * bool, int array) Hashtbl.t;  (** (node, at_entry) -> distances *)
}

let distances st ~node ~at_entry =
  match Hashtbl.find_opt st.dist_cache (node, at_entry) with
  | Some d -> d
  | None ->
    let d = Epochgraph.backward_distances st.pa.graph ~src_at_entry:at_entry node in
    Hashtbl.replace st.dist_cache (node, at_entry) d;
    d

let mark_of_read st ctx ~node ~at_entry array idx =
  let dims = Analysis.dims_of st.t.program array in
  match Gsa.section_of_subscripts ctx ~dims idx with
  | None -> Ast.Bypass_read (* provably out of bounds: never executes legally *)
  | Some section ->
    let reader =
      match Gsa.enclosing_doall ctx with
      | Some _ -> Epochgraph.RPar (Gsa.anchor_of_reference ctx idx)
      | None -> Epochgraph.RSerial
    in
    let env = Analysis.query_env st.t in
    let dist = distances st ~node ~at_entry in
    let v = Epochgraph.allowance env st.pa.graph ~dist ~array ~section ~reader in
    (match v.min_allowance with
    | None -> Ast.Normal_read
    | Some _ when v.all_aligned -> Ast.Normal_read
    | Some d when d < 0 -> Ast.Bypass_read
    | Some d -> Ast.Time_read d)

let count_read st (m : Ast.rmark) =
  match m with
  | Ast.Normal_read -> st.census.normal_reads <- st.census.normal_reads + 1
  | Ast.Time_read d ->
    st.census.time_reads <- st.census.time_reads + 1;
    bump_hist st.census d
  | Ast.Bypass_read -> st.census.bypass_reads <- st.census.bypass_reads + 1
  | Ast.Unmarked -> ()

(* --- expression rewriting --- *)

let rec mark_expr st ctx ~node ~at_entry ~critical (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Var _ -> e
  | Ast.Neg e -> Ast.Neg (mark_expr st ctx ~node ~at_entry ~critical e)
  | Ast.Binop (op, a, b) ->
    Ast.Binop
      (op, mark_expr st ctx ~node ~at_entry ~critical a,
       mark_expr st ctx ~node ~at_entry ~critical b)
  | Ast.Blackbox (name, args) ->
    Ast.Blackbox (name, List.map (mark_expr st ctx ~node ~at_entry ~critical) args)
  | Ast.Aref (a, idx, _) ->
    let idx' = List.map (mark_expr st ctx ~node ~at_entry ~critical) idx in
    let mark =
      if critical then Ast.Bypass_read else mark_of_read st ctx ~node ~at_entry a idx
    in
    count_read st mark;
    Ast.Aref (a, idx', mark)

let rec mark_cond st ctx ~node ~at_entry ~critical (c : Ast.cond) =
  match c with
  | Ast.Cmp (op, a, b) ->
    Ast.Cmp
      (op, mark_expr st ctx ~node ~at_entry ~critical a,
       mark_expr st ctx ~node ~at_entry ~critical b)
  | Ast.And (a, b) ->
    Ast.And (mark_cond st ctx ~node ~at_entry ~critical a, mark_cond st ctx ~node ~at_entry ~critical b)
  | Ast.Or (a, b) ->
    Ast.Or (mark_cond st ctx ~node ~at_entry ~critical a, mark_cond st ctx ~node ~at_entry ~critical b)
  | Ast.Not c -> Ast.Not (mark_cond st ctx ~node ~at_entry ~critical c)

(* --- statement rewriting (epoch-free statement lists) --- *)

let rec mark_stmts st ctx ~node ~critical stmts =
  let ctx, rev =
    List.fold_left
      (fun (ctx, acc) s ->
        let ctx, s' = mark_stmt st ctx ~node ~critical s in
        (ctx, s' :: acc))
      (ctx, []) stmts
  in
  (ctx, List.rev rev)

and mark_stmt st ctx ~node ~critical (s : Ast.stmt) =
  let mexpr = mark_expr st ctx ~node ~at_entry:false ~critical in
  match s with
  | Ast.Assign (v, e) ->
    let e' = mexpr e in
    (Gsa.bind ctx v (Gsa.expr_to_affine ctx e), Ast.Assign (v, e'))
  | Ast.Store (a, idx, e, _) ->
    let idx' = List.map mexpr idx in
    let e' = mexpr e in
    let wmark = if critical then Ast.Bypass_write else Ast.Normal_write in
    (match wmark with
    | Ast.Bypass_write -> st.census.bypass_writes <- st.census.bypass_writes + 1
    | Ast.Normal_write -> st.census.normal_writes <- st.census.normal_writes + 1);
    (ctx, Ast.Store (a, idx', e', wmark))
  | Ast.Work e -> (ctx, Ast.Work (mexpr e))
  | Ast.Call (name, args) -> (ctx, Ast.Call (name, List.map mexpr args))
  | Ast.Critical body ->
    let _, body' = mark_stmts st ctx ~node ~critical:true body in
    (ctx, Ast.Critical body')
  | Ast.If (c, t, e) ->
    let c' = mark_cond st ctx ~node ~at_entry:false ~critical c in
    let ct, t' = mark_stmts st ctx ~node ~critical t in
    let ce, e' = mark_stmts st ctx ~node ~critical e in
    (Gsa.gamma ctx ct ce, Ast.If (c', t', e'))
  | Ast.Do l ->
    let lo' = mexpr l.lo and hi' = mexpr l.hi in
    let inner =
      Gsa.push_loop (Gsa.widen_for_loop ctx l.body)
        {
          Gsa.index = l.index;
          lo = Gsa.expr_to_affine ctx l.lo;
          hi = Gsa.expr_to_affine ctx l.hi;
          parallel = false;
        }
    in
    let _, body' = mark_stmts st inner ~node ~critical l.body in
    (Gsa.widen_for_loop ctx l.body, Ast.Do { l with lo = lo'; hi = hi'; body = body' })
  | Ast.Doall _ -> invalid_arg "Marking: doall inside an epoch-free segment"

(* --- unit rewriting --- *)

let rec mark_units st ctx units annos =
  let ctx, rev =
    List.fold_left2
      (fun (ctx, acc) u a ->
        let ctx, u' = mark_unit st ctx u a in
        (ctx, u' :: acc))
      (ctx, []) units annos
  in
  (ctx, List.rev rev)

and mark_unit st ctx (u : Segment.unit_) (a : Epochgraph.aunit) =
  match (u, a) with
  | Segment.USerial stmts, Epochgraph.ANSerial id ->
    let ctx, stmts' = mark_stmts st ctx ~node:id ~critical:false stmts in
    (ctx, Segment.USerial stmts')
  | Segment.UPar l, Epochgraph.ANPar { pre; par } ->
    (* bounds evaluate in the preceding serial epoch *)
    let lo' = mark_expr st ctx ~node:pre ~at_entry:false ~critical:false l.lo in
    let hi' = mark_expr st ctx ~node:pre ~at_entry:false ~critical:false l.hi in
    let inner =
      Gsa.push_loop (Gsa.widen_for_loop ctx l.body)
        {
          Gsa.index = l.index;
          lo = Gsa.expr_to_affine ctx l.lo;
          hi = Gsa.expr_to_affine ctx l.hi;
          parallel = true;
        }
    in
    let _, body' = mark_stmts st inner ~node:par ~critical:false l.body in
    (Gsa.widen_for_loop ctx l.body, Segment.UPar { l with lo = lo'; hi = hi'; body = body' })
  | Segment.UDo (h, body), Epochgraph.ANDo { pre; body = anno_body; _ } ->
    let lo' = mark_expr st ctx ~node:pre ~at_entry:false ~critical:false h.lo in
    let hi' = mark_expr st ctx ~node:pre ~at_entry:false ~critical:false h.hi in
    let body_stmts = Segment.to_stmts body in
    let inner =
      Gsa.push_loop
        (List.fold_left (fun c v -> Gsa.bind c v Affine.unknown) ctx
           (Gsa.assigned_scalars body_stmts))
        {
          Gsa.index = h.index;
          lo = Gsa.expr_to_affine ctx h.lo;
          hi = Gsa.expr_to_affine ctx h.hi;
          parallel = false;
        }
    in
    let _, body' = mark_units st inner body anno_body in
    let ctx' =
      List.fold_left (fun c v -> Gsa.bind c v Affine.unknown) ctx
        (Gsa.assigned_scalars body_stmts)
    in
    (ctx', Segment.UDo ({ h with lo = lo'; hi = hi' }, body'))
  | Segment.UIf (c, th, el), Epochgraph.ANIf { pre; then_; else_; _ } ->
    let c' = mark_cond st ctx ~node:pre ~at_entry:false ~critical:false c in
    let ct, th' = mark_units st ctx th then_ in
    let ce, el' = mark_units st ctx el else_ in
    (Gsa.gamma ctx ct ce, Segment.UIf (c', th', el'))
  | Segment.UCallE (name, args), Epochgraph.ANCall id ->
    let args' = List.map (mark_expr st ctx ~node:id ~at_entry:true ~critical:false) args in
    (ctx, Segment.UCallE (name, args'))
  | _ -> invalid_arg "Marking: IR/annotation shape mismatch"

(* --- entry point --- *)

(** Analyze and mark a whole (sema-checked) program. *)
let mark_program ?(static_sched = true) ?(intertask = true) (program : Ast.program) =
  let t = Analysis.analyze ~static_sched ~intertask program in
  let census = empty_census () in
  let procs =
    List.map
      (fun (p : Ast.proc) ->
        match Analysis.find_proc_analysis t p.proc_name with
        | None -> p
        | Some pa ->
          let st = { t; census; pa; dist_cache = Hashtbl.create 32 } in
          let _, ir' = mark_units st Gsa.empty_ctx pa.ir pa.anno in
          { p with body = Segment.to_stmts ir' })
      program.procs
  in
  { program = { program with procs }; analysis = t; census }
