(** Reference marking: rewrites an analyzed program with the coherence
    operations the generated code would use — [Normal_read],
    [Time_read d], [Bypass_read] on reads and [Bypass_write] in critical
    sections. See the implementation header for the marking rule. *)

type census = {
  mutable normal_reads : int;
  mutable time_reads : int;
  mutable bypass_reads : int;
  mutable normal_writes : int;
  mutable bypass_writes : int;
  mutable distance_hist : (int * int) list;  (** (d, static count), sorted *)
}

type result = {
  program : Hscd_lang.Ast.program;  (** the marked program *)
  analysis : Analysis.t;
  census : census;
}

(** Analyze and mark a whole (sema-checked) program. [static_sched] must
    reflect whether the runtime maps DOALL iterations to processors
    deterministically; [intertask] enables the owner-alignment locality
    optimization of [21]. *)
val mark_program : ?static_sched:bool -> ?intertask:bool -> Hscd_lang.Ast.program -> result
