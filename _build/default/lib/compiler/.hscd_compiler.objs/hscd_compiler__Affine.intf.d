lib/compiler/affine.pp.mli:
