lib/compiler/segment.pp.ml: Hscd_lang List
