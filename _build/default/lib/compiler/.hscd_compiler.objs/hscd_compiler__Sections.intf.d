lib/compiler/sections.pp.mli:
