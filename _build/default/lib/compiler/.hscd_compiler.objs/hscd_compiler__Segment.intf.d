lib/compiler/segment.pp.mli: Hscd_lang
