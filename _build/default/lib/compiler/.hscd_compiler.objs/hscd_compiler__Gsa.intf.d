lib/compiler/gsa.pp.mli: Affine Hscd_lang Sections
