lib/compiler/marking.pp.mli: Analysis Hscd_lang
