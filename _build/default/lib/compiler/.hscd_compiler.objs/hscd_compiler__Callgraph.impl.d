lib/compiler/callgraph.pp.ml: Hashtbl Hscd_lang List
