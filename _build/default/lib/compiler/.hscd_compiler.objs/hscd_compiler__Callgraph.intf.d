lib/compiler/callgraph.pp.mli: Hashtbl Hscd_lang
