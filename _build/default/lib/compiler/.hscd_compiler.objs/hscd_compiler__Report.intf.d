lib/compiler/report.pp.mli: Hscd_lang Marking
