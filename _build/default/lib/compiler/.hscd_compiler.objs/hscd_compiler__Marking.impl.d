lib/compiler/marking.pp.ml: Affine Analysis Epochgraph Gsa Hashtbl Hscd_lang List Segment
