lib/compiler/report.pp.ml: Hscd_lang List Marking Printf String
