lib/compiler/analysis.pp.ml: Affine Array Callgraph Epochgraph Gsa Hashtbl Hscd_lang List Option Sections Segment
