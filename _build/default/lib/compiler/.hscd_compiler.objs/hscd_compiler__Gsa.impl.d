lib/compiler/gsa.pp.ml: Affine Hscd_lang List Option Sections
