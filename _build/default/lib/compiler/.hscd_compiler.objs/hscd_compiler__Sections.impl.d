lib/compiler/sections.pp.ml: List Printf String
