lib/compiler/affine.pp.ml: List Printf String
