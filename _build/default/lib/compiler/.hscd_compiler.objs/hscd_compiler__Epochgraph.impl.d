lib/compiler/epochgraph.pp.ml: Array Gsa Hscd_lang List Sections Segment
