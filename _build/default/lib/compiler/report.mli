(** Human-readable output of marking decisions: annotated listings
    ([{N}] Normal, [{Tk}] Time-Read(k), [{B}] Bypass — display-only, not
    reparseable) and the static census summary. *)

val mark_suffix : Hscd_lang.Ast.rmark -> string
val wmark_suffix : Hscd_lang.Ast.wmark -> string

val expr_str : Hscd_lang.Ast.expr -> string
val cond_str : Hscd_lang.Ast.cond -> string
val stmt_lines : int -> Hscd_lang.Ast.stmt -> string list

(** Whole marked program as an annotated listing. *)
val annotated_listing : Hscd_lang.Ast.program -> string

(** Census summary as printable lines. *)
val census_lines : Marking.census -> string list

val print_census : Marking.census -> unit
