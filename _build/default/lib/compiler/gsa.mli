(** Scalar symbolic analysis in the style of demand-driven GSA evaluation:
    a symbolic environment over {!Affine} forms with gamma merges (if) and
    mu widening (loops), subscript-to-section widening, and reference
    anchors for the owner-alignment optimization. *)

type loopinfo = {
  index : string;
  lo : Affine.t;
  hi : Affine.t;
  parallel : bool;
}

type ctx = {
  env : (string * Affine.t) list;
  loops : loopinfo list;  (** innermost first *)
}

val empty_ctx : ctx

val find_loop : ctx -> string -> loopinfo option

(** Value of a scalar: loop indices and unbound names are opaque symbols. *)
val lookup : ctx -> string -> Affine.t

val bind : ctx -> string -> Affine.t -> ctx
val push_loop : ctx -> loopinfo -> ctx

(** Gamma merge after a branch: keep bindings provably equal on both sides. *)
val gamma : ctx -> ctx -> ctx -> ctx

(** Scalars assigned anywhere in a statement list (loop indices included). *)
val assigned_scalars : Hscd_lang.Ast.stmt list -> string list

(** Mu widening: invalidate every scalar the loop body may redefine. *)
val widen_for_loop : ctx -> Hscd_lang.Ast.stmt list -> ctx

val expr_to_affine : ctx -> Hscd_lang.Ast.expr -> Affine.t

(** Ranges of in-scope loop indices with constant bounds. *)
val const_ranges : ctx -> (string * (int * int)) list

(** Widen one affine subscript over a dimension, keeping stride/congruence
    information; [None] when provably out of the dimension. *)
val widen_subscript : ctx -> dim:int -> Affine.t -> Sections.Sint.t option

(** Section touched by a subscript vector; [None] when provably empty. *)
val section_of_subscripts :
  ctx -> dims:int list -> Hscd_lang.Ast.expr list -> Sections.t option

(** The innermost enclosing parallel loop, if any. *)
val enclosing_doall : ctx -> loopinfo option

(** Anchor of a reference: the dimension bound one-to-one to the enclosing
    DOALL index (subscript exactly [coef·i + off] with [off] free of other
    loop indices). *)
type anchor = {
  anchor_dim : int;
  coef : int;
  off : Affine.t;
  space_lo : Affine.t;
  space_hi : Affine.t;
}

val anchor_of_reference : ctx -> Hscd_lang.Ast.expr list -> anchor option

val anchors_equal : anchor -> anchor -> bool
