(** Affine symbolic forms over loop indices and procedure parameters.

    The demand-driven symbolic analysis (the paper uses GSA [4] for this)
    reduces scalar values and subscripts to [c0 + Σ ci·xi] where the [xi]
    are loop indices or opaque symbols. Anything it cannot represent is
    [Unknown], which downstream analyses widen to whole dimensions. *)

type t =
  | Affine of { terms : (string * int) list; const : int }
      (** [terms] sorted by variable, no zero coefficients *)
  | Unknown

let const c = Affine { terms = []; const = c }

let var ?(coef = 1) v = if coef = 0 then const 0 else Affine { terms = [ (v, coef) ]; const = 0 }

let unknown = Unknown

let normalize terms =
  terms
  |> List.filter (fun (_, c) -> c <> 0)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_terms f a b =
  let rec go a b =
    match (a, b) with
    | [], rest -> List.map (fun (v, c) -> (v, f 0 c)) rest
    | rest, [] -> List.map (fun (v, c) -> (v, f c 0)) rest
    | (va, ca) :: ta, (vb, cb) :: tb ->
      if va = vb then (va, f ca cb) :: go ta tb
      else if va < vb then (va, f ca 0) :: go ta ((vb, cb) :: tb)
      else (vb, f 0 cb) :: go ((va, ca) :: ta) tb
  in
  normalize (go a b)

let add x y =
  match (x, y) with
  | Affine a, Affine b -> Affine { terms = merge_terms ( + ) a.terms b.terms; const = a.const + b.const }
  | _ -> Unknown

let neg = function
  | Affine a -> Affine { terms = List.map (fun (v, c) -> (v, -c)) a.terms; const = -a.const }
  | Unknown -> Unknown

let sub x y = add x (neg y)

let scale k = function
  | Affine { terms; const = c } ->
    if k = 0 then const 0
    else Affine { terms = normalize (List.map (fun (v, cv) -> (v, cv * k)) terms); const = c * k }
  | Unknown -> if k = 0 then const 0 else Unknown

let mul x y =
  match (x, y) with
  | Affine { terms = []; const = k }, e | e, Affine { terms = []; const = k } -> scale k e
  | _ -> Unknown

let equal x y =
  match (x, y) with
  | Affine a, Affine b -> a.terms = b.terms && a.const = b.const
  | Unknown, Unknown -> false (* two unknowns are never provably equal *)
  | _ -> false

let is_const = function Affine { terms = []; const } -> Some const | _ -> None

(** Coefficient of variable [v] (0 when absent or unknown form). *)
let coef_of v = function
  | Affine { terms; _ } -> ( match List.assoc_opt v terms with Some c -> c | None -> 0)
  | Unknown -> 0

let vars = function Affine { terms; _ } -> List.map fst terms | Unknown -> []

(** Substitute variable [v] by affine [by]. *)
let subst v by = function
  | Unknown -> Unknown
  | Affine { terms; const } as e -> (
    match List.assoc_opt v terms with
    | None -> e
    | Some c ->
      let rest = Affine { terms = List.remove_assoc v terms; const } in
      add rest (scale c by))

(** Evaluate to a constant given bindings for every variable; None if any
    variable is unbound or the form is unknown. *)
let eval bindings = function
  | Unknown -> None
  | Affine { terms; const } ->
    List.fold_left
      (fun acc (v, c) ->
        match (acc, List.assoc_opt v bindings) with
        | Some s, Some value -> Some (s + (c * value))
        | _ -> None)
      (Some const) terms

(** Bound the value of the form given per-variable inclusive ranges; None
    if a variable has no known range. Returns (min, max). *)
let range (ranges : (string * (int * int)) list) = function
  | Unknown -> None
  | Affine { terms; const } ->
    List.fold_left
      (fun acc (v, c) ->
        match (acc, List.assoc_opt v ranges) with
        | Some (lo, hi), Some (vlo, vhi) ->
          if c >= 0 then Some (lo + (c * vlo), hi + (c * vhi))
          else Some (lo + (c * vhi), hi + (c * vlo))
        | _ -> None)
      (Some (const, const)) terms

let to_string = function
  | Unknown -> "?"
  | Affine { terms; const } ->
    let term_str (v, c) =
      if c = 1 then v else if c = -1 then "-" ^ v else Printf.sprintf "%d%s" c v
    in
    (match (terms, const) with
    | [], c -> string_of_int c
    | ts, 0 -> String.concat "+" (List.map term_str ts)
    | ts, c -> String.concat "+" (List.map term_str ts) ^ Printf.sprintf "%+d" c)
