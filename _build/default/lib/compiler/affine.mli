(** Affine symbolic forms [c0 + Σ ci·xi] over loop indices and opaque
    symbols, with [Unknown] as the top element. *)

type t =
  | Affine of { terms : (string * int) list; const : int }
      (** [terms] sorted by variable, no zero coefficients *)
  | Unknown

val const : int -> t
val var : ?coef:int -> string -> t
val unknown : t

val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t

(** Multiply by a constant. *)
val scale : int -> t -> t

(** General product; [Unknown] unless one side is constant. *)
val mul : t -> t -> t

(** Provable equality; two [Unknown]s are never equal. *)
val equal : t -> t -> bool

val is_const : t -> int option

(** Coefficient of a variable (0 when absent or unknown form). *)
val coef_of : string -> t -> int

val vars : t -> string list

(** Substitute a variable by an affine form. *)
val subst : string -> t -> t -> t

(** Evaluate under complete bindings; [None] if a variable is unbound or
    the form is unknown. *)
val eval : (string * int) list -> t -> int option

(** Bound the value given per-variable inclusive ranges. *)
val range : (string * (int * int)) list -> t -> (int * int) option

val to_string : t -> string
