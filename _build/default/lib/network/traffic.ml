(** Network traffic accounting, split the way the paper's evaluation splits
    it: read (line-fill) traffic, write(-through / write-back) traffic, and
    coherence-transaction traffic (invalidations, acknowledgements,
    directory control). Counted in words. Also drives the offered-load
    estimate of the analytic network model, updated at epoch boundaries. *)

type t = {
  mutable read_words : int;
  mutable write_words : int;
  mutable coherence_words : int;
  mutable control_words : int;  (** request headers etc. *)
  mutable epoch_start_words : int;
  mutable epoch_start_cycle : int;
  processors : int;
}

let create (c : Hscd_arch.Config.t) =
  {
    read_words = 0;
    write_words = 0;
    coherence_words = 0;
    control_words = 0;
    epoch_start_words = 0;
    epoch_start_cycle = 0;
    processors = c.processors;
  }

let total_words t = t.read_words + t.write_words + t.coherence_words + t.control_words

let add_read t words = t.read_words <- t.read_words + words
let add_write t words = t.write_words <- t.write_words + words
let add_coherence t words = t.coherence_words <- t.coherence_words + words
let add_control t words = t.control_words <- t.control_words + words

(** Per-link utilization estimate over the window since the last call:
    words injected per processor per cycle (uniform-traffic assumption of
    the Kruskal–Snir model). Call at epoch boundaries with the current
    global cycle; updates the window. *)
let window_load t ~now_cycle =
  let words = total_words t - t.epoch_start_words in
  let cycles = max 1 (now_cycle - t.epoch_start_cycle) in
  t.epoch_start_words <- total_words t;
  t.epoch_start_cycle <- now_cycle;
  float_of_int words /. float_of_int (cycles * t.processors)

type snapshot = { reads : int; writes : int; coherence : int; control : int }

let snapshot t =
  { reads = t.read_words; writes = t.write_words; coherence = t.coherence_words;
    control = t.control_words }
