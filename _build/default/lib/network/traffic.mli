(** Network traffic accounting in words, split as the paper splits it:
    read (line-fill), write(-through/back), coherence transactions and
    request headers. Also derives the offered-load estimate that drives the
    analytic network model. *)

type t

val create : Hscd_arch.Config.t -> t

val total_words : t -> int

val add_read : t -> int -> unit
val add_write : t -> int -> unit
val add_coherence : t -> int -> unit
val add_control : t -> int -> unit

(** Per-link utilization over the window since the last call (uniform
    traffic assumption); advances the window to [now_cycle]. *)
val window_load : t -> now_cycle:int -> float

type snapshot = { reads : int; writes : int; coherence : int; control : int }

val snapshot : t -> snapshot
