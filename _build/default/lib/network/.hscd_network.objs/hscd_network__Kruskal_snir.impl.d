lib/network/kruskal_snir.ml: Float Hscd_arch Printf
