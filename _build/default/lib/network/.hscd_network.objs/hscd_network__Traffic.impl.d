lib/network/traffic.ml: Hscd_arch
