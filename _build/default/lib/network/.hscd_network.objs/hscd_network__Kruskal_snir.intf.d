lib/network/kruskal_snir.mli: Hscd_arch
