lib/network/traffic.mli: Hscd_arch
