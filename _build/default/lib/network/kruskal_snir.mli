(** Analytic delay model for buffered multistage interconnection networks,
    after Kruskal & Snir [24]. Reports the queueing *excess* over the
    unloaded traversal (which is part of the base miss latency). *)

type t

val create : Hscd_arch.Config.t -> t

(** Update the estimated per-link utilization (clamped to [0, 0.95]). *)
val set_load : t -> float -> unit

val load : t -> float

(** Expected queueing delay added by one switch stage at the current load:
    [rho (1 - 1/k) / (2 (1 - rho))]. *)
val stage_excess : t -> float

(** One-way expected excess, in cycles. *)
val one_way_excess : t -> float

(** Integer round-trip queueing excess charged per remote transaction. *)
val round_trip_excess : t -> int

val describe : t -> string
