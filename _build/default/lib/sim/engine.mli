(** The multiprocessor timing engine: replays a trace against one
    coherence scheme in global clock order, with barriers, ticket-ordered
    critical sections, static/dynamic scheduling, mid-task migration, and
    per-load verification against the golden interpreter. *)

type violation = { epoch : int; proc : int; addr : int; expected : int; got : int }

type result = {
  cycles : int;
  metrics : Metrics.t;
  violations : violation list;  (** capped at {!max_violations} *)
  memory_ok : bool;  (** final scheme memory equals the golden memory *)
  network_load : float;  (** last estimated utilization *)
}

val max_violations : int

val run :
  Hscd_arch.Config.t ->
  Hscd_coherence.Scheme.packed ->
  net:Hscd_network.Kruskal_snir.t ->
  traffic:Hscd_network.Traffic.t ->
  Trace.t ->
  result
