(** Execution-driven trace generation.

    Runs the (marked) program under the instrumented interpreter and
    collects, per epoch and per task, the stream of memory events the
    timing engine will replay — the role of the instrumentation tools of
    [32] in the paper's methodology. The trace also keeps the golden final
    memory for end-of-run verification. *)

module Ast = Hscd_lang.Ast
module Eval = Hscd_lang.Eval
module Shape = Hscd_lang.Shape
module Event = Hscd_arch.Event

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type task = { iter : int; events : Event.t array }

type epoch = { kind : epoch_kind; tasks : task array }

type t = {
  epochs : epoch array;
  layout : Shape.layout;
  golden_memory : int array;
  total_events : int;
}

(* Work events are coalesced with an implicit 1-cycle cost per memory
   event's address computation; explicit [work] statements add more. *)

let of_program ?(check_races = true) ?(line_words = 4) (program : Ast.program) =
  let epochs = ref [] in
  let cur_tasks = ref [] in
  let cur_kind = ref Serial in
  let cur_events = ref [] in
  let cur_iter = ref 0 in
  let pending_work = ref 0 in
  let total = ref 0 in
  let flush_work () =
    if !pending_work > 0 then begin
      cur_events := Event.Compute !pending_work :: !cur_events;
      pending_work := 0
    end
  in
  let emit e =
    flush_work ();
    incr total;
    cur_events := e :: !cur_events
  in
  let hooks =
    {
      Eval.on_epoch_begin =
        (fun kind ->
          cur_kind :=
            (match kind with
            | Eval.Serial -> Serial
            | Eval.Parallel { lo; hi } -> Parallel { lo; hi });
          cur_tasks := []);
      on_epoch_end =
        (fun () ->
          let tasks = Array.of_list (List.rev !cur_tasks) in
          epochs := { kind = !cur_kind; tasks } :: !epochs);
      on_task_begin =
        (fun ~iter ->
          cur_iter := iter;
          cur_events := [];
          pending_work := 0);
      on_task_end =
        (fun () ->
          flush_work ();
          cur_tasks :=
            { iter = !cur_iter; events = Array.of_list (List.rev !cur_events) } :: !cur_tasks);
      on_read =
        (fun ~array ~addr ~value ~mark ->
          emit (Event.Read { addr; mark = Event.of_ast_rmark mark; value; array }));
      on_write =
        (fun ~array ~addr ~value ~mark ->
          emit (Event.Write { addr; mark = Event.of_ast_wmark mark; value; array }));
      on_work = (fun n -> pending_work := !pending_work + n);
      on_lock = (fun () -> emit Event.Lock);
      on_unlock = (fun () -> emit Event.Unlock);
    }
  in
  let result = Eval.run ~hooks ~check_races ~line_words program in
  {
    epochs = Array.of_list (List.rev !epochs);
    layout = result.Eval.layout;
    golden_memory = result.Eval.final_memory;
    total_events = !total;
  }

let n_epochs t = Array.length t.epochs

let n_parallel_epochs t =
  Array.fold_left
    (fun acc e -> match e.kind with Parallel _ -> acc + 1 | Serial -> acc)
    0 t.epochs

let memory_words t = max 1 t.layout.Shape.total_words

(** Count memory accesses (reads, writes) in the whole trace. *)
let access_counts t =
  let reads = ref 0 and writes = ref 0 in
  Array.iter
    (fun e ->
      Array.iter
        (fun task ->
          Array.iter
            (function
              | Event.Read _ -> incr reads
              | Event.Write _ -> incr writes
              | Event.Compute _ | Event.Lock | Event.Unlock -> ())
            task.events)
        e.tasks)
    t.epochs;
  (!reads, !writes)
