(** DOALL iteration scheduling: task-rank to processor mapping.

    Block and cyclic are static (the compiler may rely on them for
    owner-alignment); dynamic self-scheduling is resolved inside the
    engine. *)

(** Processor executing task [rank] of an epoch with [ntasks] tasks; raises
    [Invalid_argument] under dynamic scheduling. *)
val static_proc : Hscd_arch.Config.t -> ntasks:int -> int -> int

val is_static : Hscd_arch.Config.t -> bool

(** Task ranks assigned to a processor, in execution order (static). *)
val tasks_of_proc : Hscd_arch.Config.t -> ntasks:int -> int -> int list
