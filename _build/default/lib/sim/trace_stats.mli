(** Workload characterization: static/dynamic properties of a trace. *)

type t = {
  epochs : int;
  parallel_epochs : int;
  tasks : int;
  reads : int;
  writes : int;
  compute_cycles : int;
  lock_events : int;
  footprint_words : int;  (** distinct words touched *)
  shared_words : int;  (** words touched by more than one processor *)
  avg_parallelism : float;  (** mean tasks per parallel epoch *)
  marked_reads : int;  (** reads carrying a Time-Read/Bypass mark *)
}

val of_trace : Hscd_arch.Config.t -> Trace.t -> t

(** Fraction of reads the compiler could not prove safe. *)
val marked_read_fraction : t -> float

(** Fraction of the footprint actively shared between processors. *)
val sharing_fraction : t -> float
