lib/sim/metrics.mli: Hscd_coherence Hscd_network Hscd_util
