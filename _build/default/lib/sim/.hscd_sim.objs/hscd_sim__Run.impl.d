lib/sim/run.ml: Engine Hscd_arch Hscd_coherence Hscd_compiler Hscd_lang Hscd_network List Schedule Trace
