lib/sim/trace_stats.ml: Array Hashtbl Hscd_arch Hscd_util Schedule Trace
