lib/sim/engine.mli: Hscd_arch Hscd_coherence Hscd_network Metrics Trace
