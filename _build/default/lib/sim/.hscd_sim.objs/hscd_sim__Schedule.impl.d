lib/sim/schedule.ml: Hscd_arch Hscd_util List
