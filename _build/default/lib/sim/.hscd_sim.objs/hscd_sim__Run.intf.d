lib/sim/run.mli: Engine Hscd_arch Hscd_coherence Hscd_compiler Hscd_lang Hscd_network Trace
