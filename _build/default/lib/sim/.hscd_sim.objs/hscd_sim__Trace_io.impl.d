lib/sim/trace_io.ml: Array Hashtbl Hscd_arch Hscd_lang List Printf String Trace
