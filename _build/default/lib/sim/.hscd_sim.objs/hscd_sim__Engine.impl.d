lib/sim/engine.ml: Array Hscd_arch Hscd_coherence Hscd_network Hscd_util List Metrics Schedule Trace
