lib/sim/metrics.ml: Array Hscd_coherence Hscd_network Hscd_util
