lib/sim/trace_stats.mli: Hscd_arch Trace
