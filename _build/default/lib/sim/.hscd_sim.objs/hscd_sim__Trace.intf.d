lib/sim/trace.mli: Hscd_arch Hscd_lang
