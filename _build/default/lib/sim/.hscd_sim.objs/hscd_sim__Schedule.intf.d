lib/sim/schedule.mli: Hscd_arch
