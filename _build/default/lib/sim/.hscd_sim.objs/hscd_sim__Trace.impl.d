lib/sim/trace.ml: Array Hscd_arch Hscd_lang List
