(** The multiprocessor timing engine.

    Replays a {!Trace} against one coherence scheme: DOALL tasks are
    assigned to processors by the configured scheduling policy, events are
    processed in global clock order (a conservative discrete-event
    interleaving, so directory state transitions happen in simulated-time
    order), critical sections are granted in trace order via tickets, and
    every epoch ends with a barrier, the scheme's boundary work (two-phase
    resets, buffer drains) and a network-load update for the analytic
    delay model. Every load's value is checked against the golden
    interpreter — a failing scheme cannot hide. *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event
module Scheme = Hscd_coherence.Scheme
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic

type violation = { epoch : int; proc : int; addr : int; expected : int; got : int }

type result = {
  cycles : int;
  metrics : Metrics.t;
  violations : violation list;  (** capped at [max_violations] *)
  memory_ok : bool;  (** final scheme memory equals the golden memory *)
  network_load : float;  (** last estimated utilization *)
}

let max_violations = 10

type work_item = {
  rank : int;
  w_task : Trace.task;
  start : int;  (** first event index to execute (> 0 for migrated work) *)
  w_tickets : int list;
}

type proc_state = {
  mutable clock : int;
  mutable pending : work_item list;  (** static assignment *)
  mutable events : Event.t array;  (** current task's events *)
  mutable idx : int;
  mutable stop : int;  (** exclusive bound; < length when migrating away *)
  mutable cur : work_item option;
  mutable tickets : int list;  (** lock tickets of the current task *)
}

let assign_tickets (epoch : Trace.epoch) =
  (* tickets in (rank, event) order so the engine can grant critical
     sections in the golden interpreter's order *)
  let counter = ref 0 in
  Array.map
    (fun (task : Trace.task) ->
      Array.to_list task.events
      |> List.filter_map (function
           | Event.Lock ->
             let t = !counter in
             incr counter;
             Some t
           | _ -> None))
    epoch.tasks

let run (cfg : Config.t) (Scheme.Packed ((module S), sch)) ~(net : Kruskal_snir.t)
    ~(traffic : Traffic.t) (trace : Trace.t) =
  let metrics = Metrics.create () in
  let violations = ref [] in
  let global = ref 0 in
  let prng = Hscd_util.Prng.of_int 0x5ca1ab1e in
  Array.iteri
    (fun epoch_no (epoch : Trace.epoch) ->
      let ntasks = Array.length epoch.tasks in
      let tickets = assign_tickets epoch in
      let procs =
        Array.init cfg.processors (fun _ ->
            { clock = !global; pending = []; events = [||]; idx = 0; stop = 0; cur = None;
              tickets = [] })
      in
      let item rank task = { rank; w_task = task; start = 0; w_tickets = tickets.(rank) } in
      (* task distribution *)
      let dynamic_queue = ref [] in
      (match epoch.kind with
      | Trace.Serial ->
        Array.iteri
          (fun rank task -> procs.(0).pending <- procs.(0).pending @ [ item rank task ])
          epoch.tasks
      | Trace.Parallel _ ->
        if Schedule.is_static cfg then
          Array.iteri
            (fun rank task ->
              let p = Schedule.static_proc cfg ~ntasks rank in
              procs.(p).pending <- procs.(p).pending @ [ item rank task ])
            epoch.tasks
        else dynamic_queue := Array.to_list (Array.mapi (fun r t -> item r t) epoch.tasks));
      (* critical-section tickets *)
      let expected_ticket = ref 0 in
      let lock_release = ref 0 in
      let parallel = match epoch.kind with Trace.Parallel _ -> true | Trace.Serial -> false in
      let start_task p ~dynamic (w : work_item) =
        p.events <- w.w_task.events;
        p.idx <- w.start;
        p.cur <- Some w;
        p.tickets <- w.w_tickets;
        let len = Array.length p.events in
        p.stop <- len;
        if w.start > 0 then
          (* resuming migrated work: reload task state on the new node *)
          p.clock <- p.clock + (2 * cfg.lock_cycles);
        (* decide here whether this task will migrate away mid-execution;
           lock-holding tasks never migrate *)
        if
          dynamic && parallel && w.start = 0 && w.w_tickets = [] && len > 1
          && cfg.migration_rate > 0.0
          && Hscd_util.Prng.float prng < cfg.migration_rate
        then p.stop <- 1 + Hscd_util.Prng.int prng (len - 1)
      in
      (* advance to the next task with events left; empty tasks are skipped *)
      let rec try_refill p =
        if p.idx < p.stop then true
        else begin
          (* migrating away: the unexecuted tail goes back to the shared
             queue for another processor to pick up *)
          (match p.cur with
          | Some w when p.stop < Array.length p.events ->
            metrics.migrations <- metrics.migrations + 1;
            dynamic_queue := !dynamic_queue @ [ { w with start = p.stop } ]
          | _ -> ());
          p.cur <- None;
          match p.pending with
          | t :: rest ->
            p.pending <- rest;
            start_task p ~dynamic:false t;
            try_refill p
          | [] -> (
            match !dynamic_queue with
            | t :: rest ->
              dynamic_queue := rest;
              (* self-scheduling: fetching the shared iteration counter *)
              p.clock <- p.clock + cfg.lock_cycles;
              start_task p ~dynamic:true t;
              try_refill p
            | [] -> false)
        end
      in
      let blocked p =
        (* blocked when the next event is a Lock whose ticket is not yet due *)
        p.idx < p.stop
        &&
        match p.events.(p.idx) with
        | Event.Lock -> ( match p.tickets with t :: _ -> t <> !expected_ticket | [] -> false)
        | _ -> false
      in
      let runnable p = try_refill p && not (blocked p) in
      let rec loop () =
        (* pick the runnable processor with the smallest clock *)
        let best = ref None in
        Array.iter
          (fun p ->
            if runnable p then
              match !best with
              | Some b when b.clock <= p.clock -> ()
              | _ -> best := Some p)
          procs;
        match !best with
        | None -> ()
        | Some p ->
          let proc = ref 0 in
          Array.iteri (fun i q -> if q == p then proc := i) procs;
          let proc = !proc in
          (match p.events.(p.idx) with
          | Event.Compute n ->
            p.clock <- p.clock + n;
            metrics.compute_cycles <- metrics.compute_cycles + n
          | Event.Read { addr; mark; value; array } ->
            let r = S.read sch ~proc ~addr ~array ~mark in
            p.clock <- p.clock + r.latency;
            Metrics.record_read metrics r;
            if r.value <> value && List.length !violations < max_violations then
              violations :=
                { epoch = epoch_no; proc; addr; expected = value; got = r.value } :: !violations
          | Event.Write { addr; mark; value; array } ->
            let r = S.write sch ~proc ~addr ~array ~value ~mark in
            p.clock <- p.clock + r.latency;
            Metrics.record_write metrics r
          | Event.Lock ->
            (match p.tickets with
            | t :: rest ->
              assert (t = !expected_ticket);
              p.tickets <- rest
            | [] -> ());
            let ready = max p.clock !lock_release in
            metrics.lock_wait_cycles <- metrics.lock_wait_cycles + (ready - p.clock);
            metrics.lock_acquires <- metrics.lock_acquires + 1;
            p.clock <- ready + cfg.lock_cycles
          | Event.Unlock ->
            lock_release := p.clock;
            incr expected_ticket);
          p.idx <- p.idx + 1;
          loop ()
      in
      loop ();
      (* epoch boundary: scheme work, barrier, network-load update *)
      let stalls = S.epoch_boundary sch in
      let finish = ref !global in
      Array.iteri
        (fun i p ->
          let c = p.clock + stalls.(i) in
          if c > !finish then finish := c)
        procs;
      metrics.barriers <- metrics.barriers + 1;
      global := !finish + cfg.barrier_cycles;
      Kruskal_snir.set_load net (Traffic.window_load traffic ~now_cycle:!global))
    trace.epochs;
  metrics.cycles <- !global;
  metrics.traffic <- Traffic.snapshot traffic;
  metrics.scheme_stats <- S.stats sch;
  metrics.violations <- List.length !violations;
  let memory_ok =
    let img = S.memory_image sch in
    let golden = trace.golden_memory in
    Array.length img = Array.length golden
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if golden.(i) <> v then ok := false) img;
    !ok
  in
  {
    cycles = !global;
    metrics;
    violations = List.rev !violations;
    memory_ok;
    network_load = Kruskal_snir.load net;
  }
