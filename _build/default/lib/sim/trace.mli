(** Execution-driven trace generation: runs a (marked) program under the
    instrumented interpreter and collects per-epoch, per-task memory-event
    streams plus the golden final memory. *)

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type task = { iter : int; events : Hscd_arch.Event.t array }

type epoch = { kind : epoch_kind; tasks : task array }

type t = {
  epochs : epoch array;
  layout : Hscd_lang.Shape.layout;
  golden_memory : int array;
  total_events : int;
}

(** Generate the trace of a sema-checked (and normally compiler-marked)
    program. [line_words] must match the simulated machine's line size. *)
val of_program : ?check_races:bool -> ?line_words:int -> Hscd_lang.Ast.program -> t

val n_epochs : t -> int
val n_parallel_epochs : t -> int

(** At least 1, for allocating scheme memory images. *)
val memory_words : t -> int

(** (reads, writes) over the whole trace. *)
val access_counts : t -> int * int
