(** DOALL iteration scheduling: maps task ranks to processors.

    Block and cyclic scheduling are static — the compiler may rely on them
    for owner-alignment (the marking pass's [static_sched] flag must match
    the engine's policy). Dynamic self-scheduling is resolved inside the
    engine (next free processor takes the next task). *)

module Config = Hscd_arch.Config

(** Processor executing task [rank] of an epoch with [ntasks] tasks. Only
    valid for static policies. *)
let static_proc (c : Config.t) ~ntasks rank =
  match c.scheduling with
  | Config.Block ->
    let chunk = Hscd_util.Ints.ceil_div ntasks c.processors in
    min (c.processors - 1) (rank / chunk)
  | Config.Cyclic -> rank mod c.processors
  | Config.Dynamic -> invalid_arg "Schedule.static_proc: dynamic scheduling"

let is_static (c : Config.t) =
  match c.scheduling with Config.Block | Config.Cyclic -> true | Config.Dynamic -> false

(** Task ranks assigned to [proc], in execution order (static policies). *)
let tasks_of_proc (c : Config.t) ~ntasks proc =
  List.filter (fun r -> static_proc c ~ntasks r = proc) (Hscd_util.Ints.range 0 (ntasks - 1))
