(** Plain-text serialization of traces, so a marked program's event stream
    can be generated once and replayed by external tooling (or inspected
    by hand). The format is line-oriented:

    {v
    hscd-trace 1
    words <total_words>
    array <name> <base> <dim> [<dim> ...]
    golden <index> <value>            (only non-zero words)
    epoch serial | epoch parallel <lo> <hi>
    task <iter>
    C <cycles>
    R <addr> <mark> <value> <array>   (mark: N|U|B|T<d>)
    W <addr> <mark> <value> <array>   (mark: N|B)
    L / U                             (lock / unlock)
    v} *)

module Event = Hscd_arch.Event
module Shape = Hscd_lang.Shape

let mark_str = function
  | Event.Unmarked -> "U"
  | Event.Normal_read -> "N"
  | Event.Bypass_read -> "B"
  | Event.Time_read d -> "T" ^ string_of_int d

let mark_of_str s =
  match s with
  | "U" -> Event.Unmarked
  | "N" -> Event.Normal_read
  | "B" -> Event.Bypass_read
  | _ when String.length s > 1 && s.[0] = 'T' ->
    Event.Time_read (int_of_string (String.sub s 1 (String.length s - 1)))
  | _ -> failwith ("Trace_io: bad read mark " ^ s)

let wmark_str = function Event.Normal_write -> "N" | Event.Bypass_write -> "B"

let wmark_of_str = function
  | "N" -> Event.Normal_write
  | "B" -> Event.Bypass_write
  | s -> failwith ("Trace_io: bad write mark " ^ s)

let write_channel oc (t : Trace.t) =
  let pr fmt = Printf.fprintf oc fmt in
  pr "hscd-trace 1\n";
  pr "words %d\n" t.layout.Shape.total_words;
  List.iter
    (fun (a : Shape.t) ->
      pr "array %s %d %s\n" a.name a.base (String.concat " " (List.map string_of_int a.dims)))
    (Shape.arrays_in_order t.layout);
  Array.iteri (fun i v -> if v <> 0 then pr "golden %d %d\n" i v) t.golden_memory;
  Array.iter
    (fun (e : Trace.epoch) ->
      (match e.kind with
      | Trace.Serial -> pr "epoch serial\n"
      | Trace.Parallel { lo; hi } -> pr "epoch parallel %d %d\n" lo hi);
      Array.iter
        (fun (task : Trace.task) ->
          pr "task %d\n" task.iter;
          Array.iter
            (fun ev ->
              match ev with
              | Event.Compute n -> pr "C %d\n" n
              | Event.Read { addr; mark; value; array } ->
                pr "R %d %s %d %s\n" addr (mark_str mark) value array
              | Event.Write { addr; mark; value; array } ->
                pr "W %d %s %d %s\n" addr (wmark_str mark) value array
              | Event.Lock -> pr "L\n"
              | Event.Unlock -> pr "U\n")
            task.events)
        e.tasks)
    t.epochs

let save path t =
  let oc = open_out path in
  (try write_channel oc t with exn -> close_out oc; raise exn);
  close_out oc

(* --- loading --- *)

type builder = {
  mutable words : int;
  mutable arrays : (string * int * int list) list;  (* name, base, dims; reversed *)
  mutable golden : (int * int) list;
  mutable epochs : Trace.epoch list;  (* reversed *)
  mutable cur_kind : Trace.epoch_kind option;
  mutable cur_tasks : Trace.task list;  (* reversed *)
  mutable cur_iter : int;
  mutable cur_events : Event.t list;  (* reversed *)
  mutable in_task : bool;
  mutable total : int;
}

let flush_task b =
  if b.in_task then begin
    b.cur_tasks <-
      { Trace.iter = b.cur_iter; events = Array.of_list (List.rev b.cur_events) } :: b.cur_tasks;
    b.cur_events <- [];
    b.in_task <- false
  end

let flush_epoch b =
  flush_task b;
  match b.cur_kind with
  | None -> ()
  | Some kind ->
    b.epochs <- { Trace.kind; tasks = Array.of_list (List.rev b.cur_tasks) } :: b.epochs;
    b.cur_tasks <- [];
    b.cur_kind <- None

let parse_line b line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()
  | [ "hscd-trace"; "1" ] -> ()
  | [ "words"; n ] -> b.words <- int_of_string n
  | "array" :: name :: base :: dims ->
    b.arrays <- (name, int_of_string base, List.map int_of_string dims) :: b.arrays
  | [ "golden"; i; v ] -> b.golden <- (int_of_string i, int_of_string v) :: b.golden
  | [ "epoch"; "serial" ] ->
    flush_epoch b;
    b.cur_kind <- Some Trace.Serial
  | [ "epoch"; "parallel"; lo; hi ] ->
    flush_epoch b;
    b.cur_kind <- Some (Trace.Parallel { lo = int_of_string lo; hi = int_of_string hi })
  | [ "task"; iter ] ->
    flush_task b;
    b.cur_iter <- int_of_string iter;
    b.in_task <- true
  | [ "C"; n ] -> b.cur_events <- Event.Compute (int_of_string n) :: b.cur_events
  | [ "R"; addr; mark; value; array ] ->
    b.total <- b.total + 1;
    b.cur_events <-
      Event.Read
        { addr = int_of_string addr; mark = mark_of_str mark; value = int_of_string value; array }
      :: b.cur_events
  | [ "W"; addr; mark; value; array ] ->
    b.total <- b.total + 1;
    b.cur_events <-
      Event.Write
        { addr = int_of_string addr; mark = wmark_of_str mark; value = int_of_string value; array }
      :: b.cur_events
  | [ "L" ] -> b.cur_events <- Event.Lock :: b.cur_events
  | [ "U" ] -> b.cur_events <- Event.Unlock :: b.cur_events
  | _ -> failwith ("Trace_io: bad line: " ^ line)

let load path : Trace.t =
  let b =
    {
      words = 0;
      arrays = [];
      golden = [];
      epochs = [];
      cur_kind = None;
      cur_tasks = [];
      cur_iter = 0;
      cur_events = [];
      in_task = false;
      total = 0;
    }
  in
  let ic = open_in path in
  (try
     while true do
       parse_line b (input_line ic)
     done
   with
  | End_of_file -> close_in ic
  | exn ->
    close_in ic;
    raise exn);
  flush_epoch b;
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun (name, base, dims) ->
      Hashtbl.replace arrays name
        { Shape.name; dims; size = Shape.size_of_dims dims; base })
    b.arrays;
  let golden = Array.make (max 1 b.words) 0 in
  List.iter (fun (i, v) -> golden.(i) <- v) b.golden;
  {
    Trace.epochs = Array.of_list (List.rev b.epochs);
    layout = { Shape.arrays; total_words = b.words };
    golden_memory = golden;
    total_events = b.total;
  }

(** Structural equality of traces (for round-trip tests). *)
let equal (a : Trace.t) (b : Trace.t) =
  a.epochs = b.epochs && a.golden_memory = b.golden_memory
  && a.layout.Shape.total_words = b.layout.Shape.total_words
