(** Workload characterization: static/dynamic properties of a trace, the
    kind of table evaluation sections open with (program sizes, reference
    counts, sharing degrees). *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event

type t = {
  epochs : int;
  parallel_epochs : int;
  tasks : int;
  reads : int;
  writes : int;
  compute_cycles : int;
  lock_events : int;
  footprint_words : int;  (** distinct words touched *)
  shared_words : int;  (** words touched by more than one processor (block map) *)
  avg_parallelism : float;  (** mean tasks per parallel epoch *)
  marked_reads : int;  (** reads carrying a Time-Read/Bypass mark *)
}

let of_trace (cfg : Config.t) (trace : Trace.t) =
  let touched : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  (* bit set of processors per word, as an int mask (<= 62 procs) *)
  let reads = ref 0 and writes = ref 0 and compute = ref 0 and locks = ref 0 in
  let marked = ref 0 and tasks = ref 0 and par_epochs = ref 0 and par_tasks = ref 0 in
  Array.iter
    (fun (epoch : Trace.epoch) ->
      let ntasks = Array.length epoch.tasks in
      (match epoch.kind with
      | Trace.Parallel _ ->
        incr par_epochs;
        par_tasks := !par_tasks + ntasks
      | Trace.Serial -> ());
      Array.iteri
        (fun rank (task : Trace.task) ->
          incr tasks;
          let proc =
            match epoch.kind with
            | Trace.Serial -> 0
            | Trace.Parallel _ ->
              if Schedule.is_static cfg then Schedule.static_proc cfg ~ntasks rank
              else rank mod cfg.processors
          in
          let bit = 1 lsl min proc 61 in
          let touch addr =
            let old = try Hashtbl.find touched addr with Not_found -> 0 in
            Hashtbl.replace touched addr (old lor bit)
          in
          Array.iter
            (fun (e : Event.t) ->
              match e with
              | Event.Read { addr; mark; _ } ->
                incr reads;
                (match mark with
                | Event.Time_read _ | Event.Bypass_read -> incr marked
                | Event.Normal_read | Event.Unmarked -> ());
                touch addr
              | Event.Write { addr; _ } ->
                incr writes;
                touch addr
              | Event.Compute n -> compute := !compute + n
              | Event.Lock -> incr locks
              | Event.Unlock -> ())
            task.events)
        epoch.tasks)
    trace.epochs;
  let footprint = Hashtbl.length touched in
  let shared = Hashtbl.fold (fun _ mask acc -> if mask land (mask - 1) <> 0 then acc + 1 else acc) touched 0 in
  {
    epochs = Array.length trace.epochs;
    parallel_epochs = !par_epochs;
    tasks = !tasks;
    reads = !reads;
    writes = !writes;
    compute_cycles = !compute;
    lock_events = !locks;
    footprint_words = footprint;
    shared_words = shared;
    avg_parallelism =
      (if !par_epochs = 0 then 0.0 else float_of_int !par_tasks /. float_of_int !par_epochs);
    marked_reads = !marked;
  }

(** Fraction of reads the compiler could not prove safe. *)
let marked_read_fraction t = Hscd_util.Stats.ratio t.marked_reads t.reads

(** Fraction of the footprint actively shared between processors. *)
let sharing_fraction t = Hscd_util.Stats.ratio t.shared_words t.footprint_words
