(** FLO52 — transonic-flow Euler solver on a multigrid hierarchy (Perfect
    Club).

    The solver alternates Runge-Kutta smoothing sweeps over the fine grid
    with restriction to coarser grids and prolongation back. Memory-wise
    that is: row-partitioned 5-point stencil sweeps (well aligned between
    consecutive DOALLs, so TPI's intertask locality pays off) plus
    inter-grid transfers whose subscripts scale by two (strided sections).
    The synthetic kernel runs V-cycles over a three-level hierarchy. *)

open Hscd_lang.Builder

let default_n = 48
let default_cycles = 3

(* One Jacobi-like smoothing sweep over grid [g] of size [n], writing the
   scratch array [s] then copying back — two aligned DOALLs. *)
let smooth g s n =
  [
    doall "i" (int 1)
      (int (n - 2))
      [
        do_ "j" (int 1)
          (int (n - 2))
          [
            s2 s (var "i") (var "j")
              ((a2 g (var "i" %- int 1) (var "j")
               %+ a2 g (var "i" %+ int 1) (var "j")
               %+ a2 g (var "i") (var "j" %- int 1)
               %+ a2 g (var "i") (var "j" %+ int 1))
              %/ int 4);
            work 4;
          ];
      ];
    doall "i" (int 1) (int (n - 2)) [ do_ "j" (int 1) (int (n - 2)) [ s2 g (var "i") (var "j") (a2 s (var "i") (var "j")) ] ];
  ]

(* Restriction: coarse(i,j) = fine(2i, 2j) — stride-2 strided sections. *)
let restrict fine coarse cn =
  [
    doall "i" (int 0)
      (int (cn - 1))
      [ do_ "j" (int 0) (int (cn - 1)) [ s2 coarse (var "i") (var "j") (a2 fine (var "i" %* int 2) (var "j" %* int 2)) ] ];
  ]

(* Prolongation: fine(2i, 2j) += coarse(i, j). *)
let prolong coarse fine cn =
  [
    doall "i" (int 0)
      (int (cn - 1))
      [
        do_ "j" (int 0)
          (int (cn - 1))
          [
            s2 fine (var "i" %* int 2) (var "j" %* int 2)
              (a2 fine (var "i" %* int 2) (var "j" %* int 2) %+ (a2 coarse (var "i") (var "j") %/ int 2));
          ];
      ];
  ]

let build ?(n = default_n) ?(cycles = default_cycles) () =
  let n2 = n / 2 and n4 = n / 4 in
  program
    [
      array "w0" [ n; n ]; array "r0" [ n; n ];
      array "w1" [ n2; n2 ]; array "r1" [ n2; n2 ];
      array "w2" [ n4; n4 ]; array "r2" [ n4; n4 ];
    ]
    [
      proc "main" []
        ([
           doall "i" (int 0)
             (int (n - 1))
             [ do_ "j" (int 0) (int (n - 1)) [ s2 "w0" (var "i") (var "j") ((var "i" %* var "j") %% int 97) ] ];
         ]
        @ List.concat
            (List.init cycles (fun _ ->
                 smooth "w0" "r0" n
                 @ restrict "w0" "w1" n2
                 @ smooth "w1" "r1" n2
                 @ restrict "w1" "w2" n4
                 @ smooth "w2" "r2" n4
                 @ prolong "w2" "w1" n4
                 @ smooth "w1" "r1" n2
                 @ prolong "w1" "w0" n2
                 @ smooth "w0" "r0" n)))
    ]
