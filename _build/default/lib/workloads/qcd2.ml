(** QCD2 — lattice-gauge-theory simulation (Perfect Club).

    Each sweep updates every link of a lattice from "staples" built out of
    neighbouring links, found through neighbour *tables*: the subscripts
    are table lookups the compiler cannot analyze (our [blackbox]),
    forcing whole-array conservative sections — the paper singles QCD2 out
    as a program whose reads like [X(f(i))] defeat static analysis, and
    its HW miss latency rises from dirty recalls on the scattered link
    updates. The update is double-buffered (new links into [unew], then an
    aligned copy-back), which is how the real code stays race-free across
    a sweep. *)

open Hscd_lang.Builder

let default_sites = 192
let default_dirs = 4
let default_sweeps = 3

let build ?(sites = default_sites) ?(dirs = default_dirs) ?(sweeps = default_sweeps) () =
  program
    [ array "u" [ sites; dirs ]; array "unew" [ sites; dirs ] ]
    [
      proc "main" []
        [
          doall "s" (int 0)
            (int (sites - 1))
            [ do_ "mu" (int 0) (int (dirs - 1)) [ s2 "u" (var "s") (var "mu") ((var "s" %* int 7) %+ var "mu") ] ];
          do_ "t" (int 0)
            (int (sweeps - 1))
            [
              doall "s" (int 0)
                (int (sites - 1))
                [
                  do_ "mu" (int 0)
                    (int (dirs - 1))
                    [
                      (* staple: product of links at table-driven neighbour
                         sites — statically opaque subscripts *)
                      assign "acc" (int 1);
                      do_ "nu" (int 0)
                        (int (dirs - 1))
                        [
                          assign "acc"
                            (var "acc"
                            %+ a2 "u"
                                 (blackbox "nbr" [ var "s"; var "mu"; var "nu"; var "t" ] %% int sites)
                                 (var "nu"));
                          work 6;
                        ];
                      s2 "unew" (var "s") (var "mu")
                        ((a2 "u" (var "s") (var "mu") %+ var "acc") %% int 1000003);
                    ];
                ];
              (* aligned copy-back of the updated gauge field *)
              doall "s" (int 0)
                (int (sites - 1))
                [ do_ "mu" (int 0) (int (dirs - 1)) [ s2 "u" (var "s") (var "mu") (a2 "unew" (var "s") (var "mu")) ] ];
            ];
        ];
    ]
