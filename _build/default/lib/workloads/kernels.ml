(** Microkernel workloads used by tests, examples and ablations. All are
    built with {!Hscd_lang.Builder} and sized by parameters so tests can
    keep them tiny while benches scale them up. *)

open Hscd_lang.Builder

(** 1-D Jacobi relaxation: the canonical aligned-stencil workload (good
    intertask locality for TPI, moderate false sharing for HW). *)
let jacobi1d ?(n = 256) ?(iters = 10) () =
  program
    [ array "a" [ n ]; array "b" [ n ] ]
    [
      proc "main" []
        [
          doall "i" (int 0) (int (n - 1)) [ s1 "a" (var "i") (var "i") ];
          do_ "t" (int 0)
            (int (iters - 1))
            [
              doall "i" (int 1)
                (int (n - 2))
                [ s1 "b" (var "i") ((a1 "a" (var "i" %- int 1) %+ a1 "a" (var "i" %+ int 1)) %/ int 2) ];
              doall "i" (int 1) (int (n - 2)) [ s1 "a" (var "i") (a1 "b" (var "i")) ];
            ];
        ];
    ]

(** Dense matrix multiply with an outer parallel loop over rows; inner
    accumulation rewrites each destination word [k] times (redundant write
    traffic for write-through schemes). *)
let matmul ?(n = 24) () =
  program
    [ array "ma" [ n; n ]; array "mb" [ n; n ]; array "mc" [ n; n ] ]
    [
      proc "main" []
        [
          doall "i" (int 0)
            (int (n - 1))
            [
              do_ "j" (int 0)
                (int (n - 1))
                [
                  s2 "ma" (var "i") (var "j") (var "i" %+ var "j");
                  s2 "mb" (var "i") (var "j") (var "i" %- var "j");
                ];
            ];
          doall "i" (int 0)
            (int (n - 1))
            [
              do_ "j" (int 0)
                (int (n - 1))
                [
                  s2 "mc" (var "i") (var "j") (int 0);
                  do_ "k" (int 0)
                    (int (n - 1))
                    [
                      s2 "mc" (var "i") (var "j")
                        (a2 "mc" (var "i") (var "j")
                        %+ (a2 "ma" (var "i") (var "k") %* a2 "mb" (var "k") (var "j")));
                    ];
                ];
            ];
        ];
    ]

(** Global sum via critical sections: exercises locks, bypass accesses and
    the serialized-update path. *)
let reduction ?(n = 128) () =
  program
    [ array "data" [ n ]; array "total" [ 1 ] ]
    [
      proc "main" []
        [
          doall "i" (int 0) (int (n - 1)) [ s1 "data" (var "i") (var "i" %% int 7) ];
          s1 "total" (int 0) (int 0);
          doall "i" (int 0)
            (int (n - 1))
            [ critical [ s1 "total" (int 0) (a1 "total" (int 0) %+ a1 "data" (var "i")) ] ];
        ];
    ]

(** Transpose-style access: epoch 1 writes rows, epoch 2 reads columns —
    misaligned reuse (TPI pays Time-Read misses, HW pays false sharing). *)
let transpose ?(n = 32) () =
  program
    [ array "m" [ n; n ]; array "mt" [ n; n ] ]
    [
      proc "main" []
        [
          doall "i" (int 0)
            (int (n - 1))
            [ do_ "j" (int 0) (int (n - 1)) [ s2 "m" (var "i") (var "j") ((var "i" %* int n) %+ var "j") ] ];
          doall "j" (int 0)
            (int (n - 1))
            [ do_ "i" (int 0) (int (n - 1)) [ s2 "mt" (var "j") (var "i") (a2 "m" (var "i") (var "j")) ] ];
        ];
    ]

(** Indirect (gather) access through a runtime permutation the compiler
    cannot analyze: forces whole-array conservative sections. *)
let gather ?(n = 128) ?(iters = 4) () =
  program
    [ array "src" [ n ]; array "dst" [ n ] ]
    [
      proc "main" []
        [
          doall "i" (int 0) (int (n - 1)) [ s1 "src" (var "i") (var "i") ];
          do_ "t" (int 0)
            (int (iters - 1))
            [
              doall "i" (int 0)
                (int (n - 1))
                [ s1 "dst" (var "i") (a1 "src" (blackbox "perm" [ var "i"; var "t" ] %% int n)) ];
              doall "i" (int 0) (int (n - 1)) [ s1 "src" (var "i") (a1 "dst" (var "i") %+ int 1) ];
            ];
        ];
    ]

(** Procedure-heavy workload: the stencil body lives in callees, exercising
    the interprocedural analysis (summaries, entry/exit allowances). *)
let procedural ?(n = 128) ?(iters = 4) () =
  program
    [ array "u" [ n ]; array "v" [ n ] ]
    [
      proc "init" []
        [ doall "i" (int 0) (int (n - 1)) [ s1 "u" (var "i") (var "i"); s1 "v" (var "i") (int 0) ] ];
      proc "smooth" [ "lo"; "hi" ]
        [
          doall "i" (var "lo") (var "hi")
            [ s1 "v" (var "i") ((a1 "u" (var "i" %- int 1) %+ a1 "u" (var "i" %+ int 1)) %/ int 2) ];
          doall "i" (var "lo") (var "hi") [ s1 "u" (var "i") (a1 "v" (var "i")) ];
        ];
      proc "main" []
        [
          call "init" [];
          do_ "t" (int 0) (int (iters - 1)) [ call "smooth" [ int 1; int (n - 2) ] ];
        ];
    ]

(** Mostly-private computation with a small shared boundary exchange: the
    favourable case for every caching scheme. *)
let boundary_exchange ?(n = 256) ?(iters = 8) () =
  let chunk = 16 in
  program
    [ array "grid" [ n ]; array "halo" [ n / chunk ] ]
    [
      proc "main" []
        [
          doall "i" (int 0) (int (n - 1)) [ s1 "grid" (var "i") (var "i" %% int 9) ];
          do_ "t" (int 0)
            (int (iters - 1))
            [
              (* each task publishes its chunk boundary *)
              doall "c" (int 0)
                (int ((n / chunk) - 1))
                [ s1 "halo" (var "c") (a1 "grid" ((var "c" %* int chunk) %+ int (chunk - 1))) ];
              (* then updates its chunk reading the left neighbour's halo *)
              doall "c" (int 1)
                (int ((n / chunk) - 1))
                [
                  do_ "j" (int 0)
                    (int (chunk - 1))
                    [
                      s1 "grid"
                        ((var "c" %* int chunk) %+ var "j")
                        (a1 "grid" ((var "c" %* int chunk) %+ var "j")
                        %+ a1 "halo" (var "c" %- int 1));
                    ];
                ];
            ];
        ];
    ]

(** Red-black Gauss-Seidel: alternating strided (color) half-sweeps; the
    compiler's strided sections prove the colors disjoint, so each color's
    reads of the other color are exactly one epoch old. *)
let redblack ?(n = 256) ?(iters = 6) () =
  let half_sweep color =
    doall "i" (int 1) (int ((n - 2 - color + 1) / 2))
      [
        assign "j" ((var "i" %* int 2) %- int (1 - color));
        s1 "g" (var "j") ((a1 "g" (var "j" %- int 1) %+ a1 "g" (var "j" %+ int 1)) %/ int 2);
      ]
  in
  program
    [ array "g" [ n ] ]
    [
      proc "main" []
        [
          doall "i" (int 0) (int (n - 1)) [ s1 "g" (var "i") (var "i" %% int 17) ];
          do_ "t" (int 0) (int (iters - 1)) [ half_sweep 0; half_sweep 1 ];
        ];
    ]

(** Log-depth parallel prefix sum: epoch k adds the element 2^k to the
    left; the read distance to the previous epoch's writes is constant but
    the section offset doubles each epoch. *)
let prefix_scan ?(n = 128) () =
  let steps =
    let rec go s acc = if s >= n then List.rev acc else go (s * 2) (s :: acc) in
    go 1 []
  in
  program
    [ array "x" [ n ]; array "y" [ n ] ]
    [
      proc "main" []
        ([ doall "i" (int 0) (int (n - 1)) [ s1 "x" (var "i") (int 1) ] ]
        @ List.concat_map
            (fun s ->
              [
                doall "i" (int s)
                  (int (n - 1))
                  [ s1 "y" (var "i") (a1 "x" (var "i") %+ a1 "x" (var "i" %- int s)) ];
                doall "i" (int s) (int (n - 1)) [ s1 "x" (var "i") (a1 "y" (var "i")) ];
              ])
            steps)
    ]

let all : (string * (unit -> Hscd_lang.Ast.program)) list =
  [
    ("jacobi1d", fun () -> jacobi1d ());
    ("matmul", fun () -> matmul ());
    ("reduction", fun () -> reduction ());
    ("transpose", fun () -> transpose ());
    ("gather", fun () -> gather ());
    ("procedural", fun () -> procedural ());
    ("boundary_exchange", fun () -> boundary_exchange ());
    ("redblack", fun () -> redblack ());
    ("prefix_scan", fun () -> prefix_scan ());
  ]
