(** TRFD — two-electron integral transformation (Perfect Club).

    The real code is dominated by repeated matrix products over triangular
    index spaces in which each destination element is rewritten once per
    accumulation step. That re-writing is what makes TRFD the paper's
    write-traffic outlier for TPI (write-through sends every redundant
    store to memory unless the write buffer is organized as a write
    cache). The synthetic kernel keeps exactly that structure: two passes
    of a triangular product with inner-loop accumulation, plus an aligned
    copy-back. *)

open Hscd_lang.Builder

let default_n = 24
let default_passes = 2

let build ?(n = default_n) ?(passes = default_passes) () =
  program
    [ array "x" [ n; n ]; array "v" [ n; n ]; array "w" [ n; n ] ]
    [
      proc "main" []
        [
          doall "i" (int 0)
            (int (n - 1))
            [
              do_ "j" (int 0)
                (int (n - 1))
                [
                  s2 "x" (var "i") (var "j") ((var "i" %* int 3) %+ var "j");
                  s2 "v" (var "i") (var "j") (var "i" %+ (var "j" %* int 2));
                ];
            ];
          do_ "t" (int 0)
            (int (passes - 1))
            [
              (* triangular product with per-element accumulation: w(i,j) is
                 rewritten n times — the redundant-write pattern *)
              doall "i" (int 0)
                (int (n - 1))
                [
                  do_ "j" (int 0) (var "i")
                    [
                      s2 "w" (var "i") (var "j") (int 0);
                      do_ "k" (int 0)
                        (int (n - 1))
                        [
                          s2 "w" (var "i") (var "j")
                            (a2 "w" (var "i") (var "j")
                            %+ (a2 "x" (var "i") (var "k") %* a2 "v" (var "k") (var "j")));
                          work 2;
                        ];
                    ];
                ];
              (* aligned copy-back into the transformed basis *)
              doall "i" (int 0)
                (int (n - 1))
                [ do_ "j" (int 0) (var "i") [ s2 "x" (var "i") (var "j") (a2 "w" (var "i") (var "j") %% int 1000003) ] ];
            ];
        ];
    ]
