(** Registry of the six Perfect Club benchmark models used by the paper's
    evaluation (see DESIGN.md for the substitution rationale; the sixth
    program is not named in the captured text — we use ARC2D). *)

type entry = {
  name : string;
  description : string;
  build : unit -> Hscd_lang.Ast.program;  (** evaluation scale *)
  build_small : unit -> Hscd_lang.Ast.program;  (** test scale *)
}

let all : entry list =
  [
    {
      name = "TRFD";
      description = "integral transformation: triangular products, redundant writes";
      build = (fun () -> Trfd.build ());
      build_small = (fun () -> Trfd.build ~n:10 ~passes:1 ());
    };
    {
      name = "FLO52";
      description = "multigrid Euler solver: aligned stencils + strided transfers";
      build = (fun () -> Flo52.build ());
      build_small = (fun () -> Flo52.build ~n:16 ~cycles:1 ());
    };
    {
      name = "OCEAN";
      description = "ocean circulation: relaxation rows + column passes";
      build = (fun () -> Ocean.build ());
      build_small = (fun () -> Ocean.build ~n:16 ~steps:1 ());
    };
    {
      name = "QCD2";
      description = "lattice gauge theory: table-driven (unanalyzable) neighbours";
      build = (fun () -> Qcd2.build ());
      build_small = (fun () -> Qcd2.build ~sites:32 ~sweeps:1 ());
    };
    {
      name = "SPEC77";
      description = "spectral weather model: physics sweeps + butterfly transforms";
      build = (fun () -> Spec77.build ());
      build_small = (fun () -> Spec77.build ~n:64 ~steps:1 ());
    };
    {
      name = "ARC2D";
      description = "implicit aerodynamics: ADI row/column sweeps, false sharing";
      build = (fun () -> Arc2d.build ());
      build_small = (fun () -> Arc2d.build ~n:16 ~steps:1 ());
    };
  ]

let find name =
  List.find_opt (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name) all

let names = List.map (fun e -> e.name) all
