(** ARC2D — implicit finite-difference aerodynamics (Perfect Club).

    The heart of ARC2D is an ADI (alternating-direction implicit) solver:
    every step performs recurrences along rows (parallel over rows) and
    then along columns (parallel over columns). The column sweep reads and
    writes data laid out row-major, so each task touches one word per
    cache line of state the row sweep's other processors produced — the
    classic false-sharing/misalignment workload: HW pays false-sharing
    invalidation misses, TPI pays (correct) Time-Read misses, and neither
    direction can be owner-aligned with the other. *)

open Hscd_lang.Builder

let default_n = 40
let default_steps = 3

let build ?(n = default_n) ?(steps = default_steps) () =
  program
    [ array "q" [ n; n ]; array "rhs" [ n; n ] ]
    [
      proc "main" []
        [
          doall "i" (int 0)
            (int (n - 1))
            [ do_ "j" (int 0) (int (n - 1)) [ s2 "q" (var "i") (var "j") ((var "i" %* int 5) %+ var "j") ] ];
          do_ "t" (int 0)
            (int (steps - 1))
            [
              (* explicit RHS from the 5-point stencil (aligned rows) *)
              doall "i" (int 1)
                (int (n - 2))
                [
                  do_ "j" (int 1)
                    (int (n - 2))
                    [
                      s2 "rhs" (var "i") (var "j")
                        ((a2 "q" (var "i" %- int 1) (var "j") %+ a2 "q" (var "i" %+ int 1) (var "j")
                         %+ a2 "q" (var "i") (var "j" %- int 1)
                         %+ a2 "q" (var "i") (var "j" %+ int 1))
                        %/ int 4);
                      work 4;
                    ];
                ];
              (* x-direction implicit sweep: recurrence along each row *)
              doall "i" (int 1)
                (int (n - 2))
                [
                  do_ "j" (int 1)
                    (int (n - 2))
                    [
                      s2 "q" (var "i") (var "j")
                        ((a2 "q" (var "i") (var "j" %- int 1) %+ a2 "rhs" (var "i") (var "j")) %% int 65537);
                      work 2;
                    ];
                ];
              (* y-direction implicit sweep: tasks own columns, recurrence
                 down each column through row-major memory *)
              doall "j" (int 1)
                (int (n - 2))
                [
                  do_ "i" (int 1)
                    (int (n - 2))
                    [
                      s2 "q" (var "i") (var "j")
                        ((a2 "q" (var "i" %- int 1) (var "j") %+ a2 "rhs" (var "i") (var "j")) %% int 65537);
                      work 2;
                    ];
                ];
            ];
        ];
    ]
