lib/workloads/flo52.ml: Hscd_lang List
