lib/workloads/perfect.ml: Arc2d Flo52 Hscd_lang List Ocean Qcd2 Spec77 String Trfd
