lib/workloads/trfd.ml: Hscd_lang
