lib/workloads/qcd2.ml: Hscd_lang
