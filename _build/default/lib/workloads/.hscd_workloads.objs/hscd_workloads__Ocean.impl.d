lib/workloads/ocean.ml: Hscd_lang
