lib/workloads/kernels.ml: Hscd_lang List
