lib/workloads/spec77.ml: Hscd_lang
