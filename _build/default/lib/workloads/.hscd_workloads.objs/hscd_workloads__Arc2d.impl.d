lib/workloads/arc2d.ml: Hscd_lang
