(** SPEC77 — spectral atmospheric flow model (Perfect Club).

    The time step alternates grid-space physics (aligned sweeps) with
    spectral transforms. The transform's butterfly subscripts involve
    division and modulus by the stage stride, which our symbolic analysis
    (like any affine framework) cannot bound — so the transform reads get
    conservative whole-array sections, while the physics sweeps stay
    aligned. That mixture (mostly well-behaved, punctuated by conservative
    epochs) is what makes SPEC77 land between the stencil codes and QCD2. *)

open Hscd_lang.Builder

(* spectral length; must be a power of two *)
let default_n = 256
let default_steps = 2

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n / 2) (acc + 1) in
  go n 0

let build ?(n = default_n) ?(steps = default_steps) () =
  let stages = log2 n in
  program
    [ array "sig_re" [ n ]; array "buf" [ n ]; array "grid" [ n ] ]
    [
      proc "main" []
        [
          doall "i" (int 0) (int (n - 1)) [ s1 "sig_re" (var "i") (var "i" %% int 31); s1 "grid" (var "i") (int 0) ];
          do_ "t" (int 0)
            (int (steps - 1))
            [
              (* grid-space physics: aligned pointwise update *)
              doall "i" (int 0)
                (int (n - 1))
                [ s1 "grid" (var "i") ((a1 "grid" (var "i") %+ a1 "sig_re" (var "i")) %% int 65537); work 5 ];
              doall "i" (int 0) (int (n - 1)) [ s1 "sig_re" (var "i") (a1 "grid" (var "i")) ];
              (* spectral transform: butterfly stages with div/mod
                 subscripts (statically unbounded) *)
              do_ "s" (int 0)
                (int (stages - 1))
                [
                  doall "k" (int 0)
                    (int ((n / 2) - 1))
                    [
                      assign "half" (blackbox "stride" [ var "s" ] %% int (n / 2) %+ int 1);
                      assign "blk" (var "k" %/ var "half");
                      assign "pos" ((var "blk" %* (var "half" %* int 2)) %+ (var "k" %% var "half"));
                      s1 "buf" (var "k")
                        ((a1 "sig_re" (var "pos" %% int n) %+ a1 "sig_re" ((var "pos" %+ var "half") %% int n))
                        %% int 65537);
                      work 4;
                    ];
                  doall "k" (int 0)
                    (int ((n / 2) - 1))
                    [
                      s1 "sig_re" (var "k") (a1 "buf" (var "k"));
                      s1 "sig_re" (var "k" %+ int (n / 2)) (a1 "buf" (var "k") %% int 257);
                    ];
                ];
            ];
        ];
    ]
