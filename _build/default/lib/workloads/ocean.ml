(** OCEAN — 2-D ocean-basin circulation simulation (Perfect Club).

    The dominant phases are relaxation sweeps over the stream-function
    grid (row-partitioned, aligned between epochs) interleaved with
    vertical (column-order) passes for the boundary currents and the
    Fourier steps. The column passes read data the row sweeps produced on
    other processors — intertask communication that costs TPI Time-Read
    misses and gives the HW scheme line-grain false sharing. *)

open Hscd_lang.Builder

let default_n = 48
let default_steps = 4

let build ?(n = default_n) ?(steps = default_steps) () =
  program
    [ array "psi" [ n; n ]; array "tmp" [ n; n ]; array "cur" [ n ] ]
    [
      proc "main" []
        [
          doall "i" (int 0)
            (int (n - 1))
            [ do_ "j" (int 0) (int (n - 1)) [ s2 "psi" (var "i") (var "j") ((var "i" %+ var "j") %% int 13) ] ];
          do_ "t" (int 0)
            (int (steps - 1))
            [
              (* row-partitioned relaxation (aligned) *)
              doall "i" (int 1)
                (int (n - 2))
                [
                  do_ "j" (int 1)
                    (int (n - 2))
                    [
                      s2 "tmp" (var "i") (var "j")
                        ((a2 "psi" (var "i" %- int 1) (var "j")
                         %+ a2 "psi" (var "i" %+ int 1) (var "j")
                         %+ a2 "psi" (var "i") (var "j" %- int 1)
                         %+ a2 "psi" (var "i") (var "j" %+ int 1))
                        %/ int 4);
                      work 3;
                    ];
                ];
              doall "i" (int 1) (int (n - 2))
                [ do_ "j" (int 1) (int (n - 2)) [ s2 "psi" (var "i") (var "j") (a2 "tmp" (var "i") (var "j")) ] ];
              (* column-order boundary-current pass: tasks own columns and
                 read row-major data written by other processors *)
              doall "j" (int 0)
                (int (n - 1))
                [
                  s1 "cur" (var "j") (int 0);
                  do_ "i" (int 0)
                    (int (n - 1))
                    [ s1 "cur" (var "j") (a1 "cur" (var "j") %+ a2 "psi" (var "i") (var "j")); work 1 ];
                ];
              (* currents feed back into the western boundary rows *)
              doall "i" (int 1)
                (int (n - 2))
                [ s2 "psi" (var "i") (int 0) ((a1 "cur" (var "i") %+ a2 "psi" (var "i") (int 1)) %% int 100003) ];
            ];
        ];
    ]
