lib/arch/config.ml: Hscd_util Printf
