lib/arch/addr.mli: Config
