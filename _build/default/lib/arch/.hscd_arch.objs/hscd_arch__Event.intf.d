lib/arch/event.mli: Hscd_lang
