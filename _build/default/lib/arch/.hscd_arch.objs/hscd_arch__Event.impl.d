lib/arch/event.ml: Hscd_lang Printf
