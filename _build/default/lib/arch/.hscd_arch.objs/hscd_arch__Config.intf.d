lib/arch/config.mli:
