lib/arch/addr.ml: Config Hscd_util List
