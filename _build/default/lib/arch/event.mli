(** Memory events: the interface between the language/compiler front half
    and the cache/coherence back half. *)

type rmark = Unmarked | Normal_read | Time_read of int | Bypass_read
type wmark = Normal_write | Bypass_write

type t =
  | Compute of int  (** pure computation: that many CPU cycles *)
  | Read of { addr : int; mark : rmark; value : int; array : string }
      (** [value] is the golden (sequentially consistent) value the read
          must observe; the engine checks every scheme against it *)
  | Write of { addr : int; mark : wmark; value : int; array : string }
  | Lock  (** acquire the global critical-section lock *)
  | Unlock

val of_ast_rmark : Hscd_lang.Ast.rmark -> rmark
val of_ast_wmark : Hscd_lang.Ast.wmark -> wmark

val is_memory_access : t -> bool
val to_string : t -> string
