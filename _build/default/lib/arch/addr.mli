(** Word-address arithmetic over the shared address space: line extraction
    and block-interleaved home nodes. *)

type t

val of_config : Config.t -> t

(** Memory line number of a word address. *)
val line : t -> int -> int

val offset_in_line : t -> int -> int
val line_base : t -> int -> int

(** Home node (memory module) of a line: block-interleaved. *)
val home : t -> int -> int

(** The word addresses of a memory line, in order. *)
val words_of_line : t -> int -> int list

(** Is a memory access local to the issuing processor's node? *)
val is_local : t -> proc:int -> int -> bool
