(** Memory events produced by instrumented execution and consumed by the
    multiprocessor timing engine — the interface between the front half
    (language + compiler) and the back half (caches + coherence). *)

type rmark = Unmarked | Normal_read | Time_read of int | Bypass_read
type wmark = Normal_write | Bypass_write

type t =
  | Compute of int  (** pure computation: that many CPU cycles *)
  | Read of { addr : int; mark : rmark; value : int; array : string }
      (** [value] is the golden (sequentially consistent) value the read
          must observe; the engine checks every scheme against it *)
  | Write of { addr : int; mark : wmark; value : int; array : string }
  | Lock  (** acquire the global critical-section lock *)
  | Unlock

let of_ast_rmark : Hscd_lang.Ast.rmark -> rmark = function
  | Hscd_lang.Ast.Unmarked -> Unmarked
  | Hscd_lang.Ast.Normal_read -> Normal_read
  | Hscd_lang.Ast.Time_read d -> Time_read d
  | Hscd_lang.Ast.Bypass_read -> Bypass_read

let of_ast_wmark : Hscd_lang.Ast.wmark -> wmark = function
  | Hscd_lang.Ast.Normal_write -> Normal_write
  | Hscd_lang.Ast.Bypass_write -> Bypass_write

let is_memory_access = function Read _ | Write _ -> true | Compute _ | Lock | Unlock -> false

let to_string = function
  | Compute n -> Printf.sprintf "compute %d" n
  | Read { addr; mark; value; array } ->
    let m = match mark with
      | Unmarked -> "" | Normal_read -> "/N" | Time_read d -> Printf.sprintf "/T%d" d
      | Bypass_read -> "/B"
    in
    Printf.sprintf "read %s@%d%s=%d" array addr m value
  | Write { addr; mark; value; array } ->
    let m = match mark with Normal_write -> "" | Bypass_write -> "/B" in
    Printf.sprintf "write %s@%d%s=%d" array addr m value
  | Lock -> "lock"
  | Unlock -> "unlock"
