(** Word-address arithmetic over the shared address space.

    Memory is word-addressed; lines hold [line_words] words; memory lines
    are block-interleaved across processor nodes (the line's home). *)

type t = { line_words : int; line_shift : int; processors : int }

let of_config (c : Config.t) =
  { line_words = c.line_words; line_shift = Hscd_util.Ints.ilog2 c.line_words; processors = c.processors }

let line t addr = addr lsr t.line_shift

let offset_in_line t addr = addr land (t.line_words - 1)

let line_base t line = line lsl t.line_shift

(** Home node (memory module) of a line: block-interleaved. *)
let home t addr = line t addr mod t.processors

let words_of_line t line = List.init t.line_words (fun k -> line_base t line + k)

(** Is a memory access local to the issuing processor's node? *)
let is_local t ~proc addr = home t addr = proc
