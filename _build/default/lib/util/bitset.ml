(** Fixed-capacity bit sets, used for directory presence vectors.

    A full-map directory keeps one presence bit per processor per memory
    block, so this structure is on the simulator's hot path; it is backed by
    an int array with 62 usable bits per word. *)

type t = { words : int array; capacity : int }

let bits_per_word = 62

let create capacity =
  assert (capacity >= 0);
  { words = Array.make ((capacity + bits_per_word - 1) / bits_per_word + 1) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.capacity)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount_word w =
  let rec loop w acc = if w = 0 then acc else loop (w land (w - 1)) (acc + 1) in
  loop w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let equal a b = a.capacity = b.capacity && a.words = b.words
