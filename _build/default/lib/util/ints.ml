(** Integer helpers shared across the cache and address-mapping layers. *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

(** [ilog2 n] for [n] a positive power of two. *)
let ilog2 n =
  if not (is_pow2 n) then invalid_arg (Printf.sprintf "ilog2: %d not a power of two" n);
  let rec loop n acc = if n = 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let ceil_div a b =
  if b <= 0 then invalid_arg "ceil_div: non-positive divisor";
  (a + b - 1) / b

(** Round [a] up to the next multiple of [b]. *)
let round_up a b = ceil_div a b * b

let pow2 n =
  if n < 0 || n > 61 then invalid_arg "pow2: exponent out of range";
  1 lsl n

let clamp ~lo ~hi v = max lo (min hi v)

(** Inclusive integer range as a list; empty when [hi < lo]. *)
let range lo hi =
  let rec loop i acc = if i < lo then acc else loop (i - 1) (i :: acc) in
  loop hi []

let sum = List.fold_left ( + ) 0

let max_list = function [] -> invalid_arg "max_list: empty" | x :: xs -> List.fold_left max x xs

let min_list = function [] -> invalid_arg "min_list: empty" | x :: xs -> List.fold_left min x xs
