(** Aligned plain-text tables, the uniform rendering of every reproduced
    paper table/figure. *)

type align = Left | Right

type t

(** [aligns] defaults to all-[Right]; must match the header width. *)
val create : title:string -> header:string list -> ?aligns:align list -> unit -> t

(** Raises [Invalid_argument] when the row width differs from the header. *)
val add_row : t -> string list -> unit

(** Footnote printed under the table. *)
val add_note : t -> string -> unit

(** Rows in insertion order. *)
val rows : t -> string list list

val render : t -> string
val print : t -> unit

(* Cell formatting helpers shared by all experiments. *)
val fi : int -> string
val ff1 : float -> string
val ff2 : float -> string
val ff3 : float -> string

(** Fraction as a percentage ([0.123] -> ["12.30%"]). *)
val fpct : float -> string

(** Human-readable byte sizes. *)
val fbytes : int -> string
