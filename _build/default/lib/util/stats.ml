(** Small statistics toolkit used by the metrics and experiment layers. *)

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

(** [percentile p xs] with [p] in [0,100], nearest-rank on the sorted data. *)
let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    List.nth sorted idx

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let ratio_f num den = if den = 0.0 then 0.0 else num /. den

(** Running counter with mean/max tracking, for latency accounting. *)
module Accumulator = struct
  type t = {
    mutable count : int;
    mutable total : float;
    mutable max_v : float;
    mutable min_v : float;
  }

  let create () = { count = 0; total = 0.0; max_v = neg_infinity; min_v = infinity }

  let add t v =
    t.count <- t.count + 1;
    t.total <- t.total +. v;
    if v > t.max_v then t.max_v <- v;
    if v < t.min_v then t.min_v <- v

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count
  let max_value t = if t.count = 0 then 0.0 else t.max_v
  let min_value t = if t.count = 0 then 0.0 else t.min_v

  let merge a b =
    {
      count = a.count + b.count;
      total = a.total +. b.total;
      max_v = Float.max a.max_v b.max_v;
      min_v = Float.min a.min_v b.min_v;
    }
end

(** Fixed-bucket histogram over non-negative integers. *)
module Histogram = struct
  type t = { buckets : int array; width : int; mutable overflow : int; mutable n : int }

  let create ~buckets ~width = { buckets = Array.make buckets 0; width; overflow = 0; n = 0 }

  let add t v =
    t.n <- t.n + 1;
    let b = v / t.width in
    if b < Array.length t.buckets then t.buckets.(b) <- t.buckets.(b) + 1
    else t.overflow <- t.overflow + 1

  let count t = t.n
  let bucket t i = t.buckets.(i)
  let overflow t = t.overflow

  let to_list t =
    Array.to_list (Array.mapi (fun i c -> (i * t.width, (i + 1) * t.width, c)) t.buckets)
end
