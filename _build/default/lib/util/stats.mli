(** Small statistics toolkit used by the metrics and experiment layers. *)

val mean : float list -> float

(** Sample variance (n-1 denominator); 0 for fewer than two samples. *)
val variance : float list -> float

val stddev : float list -> float

(** Nearest-rank percentile, [p] in [0, 100]. *)
val percentile : float -> float list -> float

(** Integer ratio as a float; 0 when the denominator is 0. *)
val ratio : int -> int -> float

val ratio_f : float -> float -> float

(** Running counter with mean/min/max tracking. *)
module Accumulator : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  val max_value : t -> float
  val min_value : t -> float
  val merge : t -> t -> t
end

(** Fixed-bucket histogram over non-negative integers. *)
module Histogram : sig
  type t

  val create : buckets:int -> width:int -> t
  val add : t -> int -> unit
  val count : t -> int
  val bucket : t -> int -> int
  val overflow : t -> int

  (** [(lo, hi, count)] per bucket. *)
  val to_list : t -> (int * int * int) list
end
