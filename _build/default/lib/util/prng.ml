(** Deterministic pseudo-random number generation.

    The simulator and the synthetic workloads must be reproducible across
    runs and platforms, so we provide a self-contained splitmix64 generator
    instead of relying on [Stdlib.Random]'s unspecified algorithm. *)

type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () = { state = seed }

let of_int seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: a well-known 64-bit mixer with full period. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** [in_range t lo hi] is uniform in [lo, hi] inclusive. *)
let in_range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [float t] is uniform in [0, 1). *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

(** [choose t arr] picks a uniform element of a non-empty array. *)
let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Geometric-ish small integer, used by workload generators: returns [k]
    with probability proportional to [p^k], capped at [cap]. *)
let geometric t ~p ~cap =
  let rec loop k = if k >= cap then cap else if float t < p then loop (k + 1) else k in
  loop 0
