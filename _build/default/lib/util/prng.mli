(** Deterministic pseudo-random number generation (splitmix64).

    Simulation and workload generation must be reproducible across runs
    and platforms, so this generator is self-contained rather than
    delegating to [Stdlib.Random]. *)

type t

(** Fresh generator; the default seed is fixed (reproducible). *)
val create : ?seed:int64 -> unit -> t

(** Generator seeded from an integer. *)
val of_int : int -> t

(** Independent copy with the same state. *)
val copy : t -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [in_range t lo hi] is uniform in [lo, hi] inclusive. *)
val in_range : t -> int -> int -> int

val bool : t -> bool

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [geometric t ~p ~cap] is [k] with probability proportional to [p^k],
    capped at [cap]. *)
val geometric : t -> p:float -> cap:int -> int
