(** Integer helpers shared across the cache and address-mapping layers. *)

val is_pow2 : int -> bool

(** Base-2 logarithm of a positive power of two; raises [Invalid_argument]
    otherwise. *)
val ilog2 : int -> int

(** Ceiling division; raises [Invalid_argument] on a non-positive divisor. *)
val ceil_div : int -> int -> int

(** Round up to the next multiple. *)
val round_up : int -> int -> int

(** [pow2 n] is [2^n] for [0 <= n <= 61]. *)
val pow2 : int -> int

val clamp : lo:int -> hi:int -> int -> int

(** Inclusive integer range as a list; empty when [hi < lo]. *)
val range : int -> int -> int list

val sum : int list -> int

(** Raise [Invalid_argument] on the empty list. *)
val max_list : int list -> int

val min_list : int list -> int
