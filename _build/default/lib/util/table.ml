(** Plain-text table rendering for the experiment harness.

    The benchmark executable prints every reproduced paper table/figure as
    an aligned ASCII table; this module owns the layout so every experiment
    renders uniformly. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
  mutable notes : string list; (* reversed *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length header then invalid_arg "Table.create: aligns/header mismatch";
      a
    | None -> List.map (fun _ -> Right) header
  in
  { title; header; aligns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): expected %d cells, got %d" t.title
         (List.length t.header) (List.length row));
  t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes

let rows t = List.rev t.rows

(* Column widths: max of header and all cells. *)
let widths t =
  let ncols = List.length t.header in
  let w = Array.make ncols 0 in
  let scan row = List.iteri (fun i cell -> if String.length cell > w.(i) then w.(i) <- String.length cell) row in
  scan t.header;
  List.iter scan (rows t);
  w

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let w = widths t in
  let line_of row =
    String.concat "  "
      (List.mapi (fun i cell -> pad (List.nth t.aligns i) w.(i) cell) row)
  in
  let sep = String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w)) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line_of t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line_of row ^ "\n")) (rows t);
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

(* Cell formatting helpers shared by all experiments. *)
let fi = string_of_int
let ff1 v = Printf.sprintf "%.1f" v
let ff2 v = Printf.sprintf "%.2f" v
let ff3 v = Printf.sprintf "%.3f" v
let fpct v = Printf.sprintf "%.2f%%" (v *. 100.0)

(** Human-readable byte sizes, used by the Fig 5 storage table. *)
let fbytes b =
  let b = float_of_int b in
  let kib = 1024.0 and mib = 1024.0 *. 1024.0 and gib = 1024.0 *. 1024.0 *. 1024.0 in
  if b >= gib then Printf.sprintf "%.1fGB" (b /. gib)
  else if b >= mib then Printf.sprintf "%.1fMB" (b /. mib)
  else if b >= kib then Printf.sprintf "%.1fKB" (b /. kib)
  else Printf.sprintf "%.0fB" b
