(** Fixed-capacity bit sets, used for directory presence vectors. *)

type t

(** [create n] is an empty set over the universe [0 .. n-1]. *)
val create : int -> t

val capacity : t -> int

(** Membership / insertion / removal raise [Invalid_argument] outside the
    universe. *)
val mem : t -> int -> bool

val add : t -> int -> unit
val remove : t -> int -> unit

(** Remove every element. *)
val clear : t -> unit

val cardinal : t -> int
val is_empty : t -> bool

(** Iterate over members in increasing order. *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Members in increasing order. *)
val elements : t -> int list

val copy : t -> t
val equal : t -> t -> bool
