lib/util/stats.mli:
