lib/util/bitset.mli:
