lib/util/ints.ml: List Printf
