lib/util/prng.mli:
