lib/util/ints.mli:
