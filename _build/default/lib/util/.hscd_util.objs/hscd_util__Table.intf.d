lib/util/table.mli:
