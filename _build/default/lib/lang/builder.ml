(** Combinators for constructing PFL programs directly from OCaml.

    The synthetic Perfect Club kernels and most tests build their programs
    with these helpers rather than going through the textual parser. *)

open Ast

(* Expressions *)
let int n = Int n
let var v = Var v
let ( %+ ) a b = Binop (Add, a, b)
let ( %- ) a b = Binop (Sub, a, b)
let ( %* ) a b = Binop (Mul, a, b)
let ( %/ ) a b = Binop (Div, a, b)
let ( %% ) a b = Binop (Mod, a, b)
let min_ a b = Binop (Min, a, b)
let max_ a b = Binop (Max, a, b)
let neg e = Neg e
let blackbox name args = Blackbox (name, args)

(** [a.%[idx]] reads an array element. *)
let aref a idx = Aref (a, idx, Unmarked)
let a1 a i = Aref (a, [ i ], Unmarked)
let a2 a i j = Aref (a, [ i; j ], Unmarked)
let a3 a i j k = Aref (a, [ i; j; k ], Unmarked)

(* Conditions *)
let ( %= ) a b = Cmp (Eq, a, b)
let ( %<> ) a b = Cmp (Ne, a, b)
let ( %< ) a b = Cmp (Lt, a, b)
let ( %<= ) a b = Cmp (Le, a, b)
let ( %> ) a b = Cmp (Gt, a, b)
let ( %>= ) a b = Cmp (Ge, a, b)
let and_ a b = And (a, b)
let or_ a b = Or (a, b)
let not_ c = Not c

(* Statements *)
let assign v e = Assign (v, e)
let store a idx e = Store (a, idx, e, Normal_write)
let s1 a i e = Store (a, [ i ], e, Normal_write)
let s2 a i j e = Store (a, [ i; j ], e, Normal_write)
let s3 a i j k e = Store (a, [ i; j; k ], e, Normal_write)
let do_ index lo hi body = Do { index; lo; hi; body }
let doall index lo hi body = Doall { index; lo; hi; body }
let if_ c t e = If (c, t, e)
let call name args = Call (name, args)
let critical body = Critical body
let work n = Work (Int n)
let work_e e = Work e

(* Declarations *)
let array name dims = { arr_name = name; dims }
let proc name params body = { proc_name = name; params; body }

let program ?(entry = "main") arrays procs = { arrays; procs; entry }

(** Convenience: a whole program that is a single entry procedure. *)
let simple ?(entry = "main") arrays body = program ~entry arrays [ proc entry [] body ]
