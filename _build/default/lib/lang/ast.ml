(** Abstract syntax of PFL, the small parallel Fortran-like language that
    stands in for Polaris-parallelized Fortran (DESIGN.md substitution 1).

    A PFL program declares global arrays (the shared data, playing the role
    of Fortran COMMON blocks) and a set of procedures over scalar
    parameters. Parallelism is expressed with [Doall] loops whose iterations
    must be independent outside [Critical] sections, exactly the execution
    model the paper's compiler consumes. *)

type binop = Add | Sub | Mul | Div | Mod | Min | Max [@@deriving show { with_path = false }, eq]

type cmpop = Eq | Ne | Lt | Le | Gt | Ge [@@deriving show { with_path = false }, eq]

(** Read marks inserted by the coherence compiler (generated code uses
    Time-Read / cache-bypass memory operations, [23,7]). [Unmarked] is what
    the front end produces; executing unmarked code treats every read as
    [Normal_read]. *)
type rmark =
  | Unmarked
  | Normal_read  (** provably never stale: plain load *)
  | Time_read of int  (** valid only if the word's timetag is within [d] epochs *)
  | Bypass_read  (** always fetch from memory *)
[@@deriving show { with_path = false }, eq]

type wmark =
  | Normal_write  (** write-through (TPI/SC) or write-back (HW) store *)
  | Bypass_write  (** uncached store, used inside critical sections *)
[@@deriving show { with_path = false }, eq]

type expr =
  | Int of int
  | Var of string  (** scalar variable or loop index *)
  | Aref of string * expr list * rmark  (** array element read *)
  | Binop of binop * expr * expr
  | Neg of expr
  | Blackbox of string * expr list
      (** runtime-evaluable but statically opaque function; models the
          paper's unanalyzable subscripts such as [X(f(i))] *)
[@@deriving show { with_path = false }, eq]

type cond =
  | Cmp of cmpop * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
[@@deriving show { with_path = false }, eq]

type stmt =
  | Assign of string * expr  (** scalar assignment; scalars are task-private *)
  | Store of string * expr list * expr * wmark  (** array element write *)
  | Do of loop  (** sequential loop *)
  | Doall of loop  (** parallel loop: one epoch per dynamic instance *)
  | If of cond * stmt list * stmt list
  | Call of string * expr list
  | Critical of stmt list  (** lock-protected region; shared accesses bypass caches *)
  | Work of expr  (** pure computation costing that many cycles *)
[@@deriving show { with_path = false }, eq]

and loop = { index : string; lo : expr; hi : expr; body : stmt list }
[@@deriving show { with_path = false }, eq]

type decl = { arr_name : string; dims : int list } [@@deriving show { with_path = false }, eq]

type proc = { proc_name : string; params : string list; body : stmt list }
[@@deriving show { with_path = false }, eq]

type program = { arrays : decl list; procs : proc list; entry : string }
[@@deriving show { with_path = false }, eq]

let find_proc program name = List.find_opt (fun p -> p.proc_name = name) program.procs

let find_array program name = List.find_opt (fun d -> d.arr_name = name) program.arrays

(** Fold over every statement in a statement list, recursing into nested
    bodies; [f] sees each statement exactly once, parents before children. *)
let rec fold_stmts f acc stmts =
  List.fold_left
    (fun acc s ->
      let acc = f acc s in
      match s with
      | Do l | Doall l -> fold_stmts f acc l.body
      | If (_, t, e) -> fold_stmts f (fold_stmts f acc t) e
      | Critical body -> fold_stmts f acc body
      | Assign _ | Store _ | Call _ | Work _ -> acc)
    acc stmts

(** All array names read (resp. written) anywhere in an expression. *)
let rec arrays_read_expr acc = function
  | Int _ | Var _ -> acc
  | Aref (a, idx, _) -> List.fold_left arrays_read_expr (a :: acc) idx
  | Binop (_, l, r) -> arrays_read_expr (arrays_read_expr acc l) r
  | Neg e -> arrays_read_expr acc e
  | Blackbox (_, args) -> List.fold_left arrays_read_expr acc args

let rec arrays_read_cond acc = function
  | Cmp (_, l, r) -> arrays_read_expr (arrays_read_expr acc l) r
  | And (a, b) | Or (a, b) -> arrays_read_cond (arrays_read_cond acc a) b
  | Not c -> arrays_read_cond acc c

(** [contains_blackbox e] is true when [e] cannot be analyzed statically. *)
let rec contains_blackbox = function
  | Int _ | Var _ -> false
  | Blackbox _ -> true
  | Neg e -> contains_blackbox e
  | Binop (_, l, r) -> contains_blackbox l || contains_blackbox r
  | Aref (_, idx, _) -> List.exists contains_blackbox idx

(** Does a statement list contain any Doall (i.e., epoch boundaries)? *)
let has_doall stmts =
  fold_stmts (fun acc s -> acc || match s with Doall _ -> true | _ -> false) false stmts
