(** Recursive-descent parser for PFL source text (see README for the
    grammar). *)

(** Raised with a message and the line number of the offending token. *)
exception Parse_error of string * int

(** Parse a whole program. [entry] names the entry procedure (default
    ["main"]). Raises {!Parse_error} or {!Hscd_lang.Lexer.Lex_error}. *)
val parse_program : ?entry:string -> string -> Ast.program

(** Like {!parse_program} but converts parse/lex errors into [Failure]
    with a location-annotated message. *)
val parse_exn : ?entry:string -> string -> Ast.program
