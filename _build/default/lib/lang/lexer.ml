(** Hand-written lexer for the PFL surface syntax.

    Tokens carry their line number so parse errors point at the source. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** keywords: array proc do doall end if then else call critical work and or not mod min max blackbox *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CMP of Ast.cmpop
  | EOF

type located = { tok : token; line : int }

exception Lex_error of string * int

let keywords =
  [ "array"; "proc"; "do"; "doall"; "end"; "if"; "then"; "else"; "call"; "critical";
    "work"; "and"; "or"; "not"; "mod"; "min"; "max"; "blackbox" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let emit tok = toks := { tok; line = !line } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then emit (KW word) else emit (IDENT word)
    end
    else begin
      let two_char op = emit op; i := !i + 2 in
      match (c, peek 1) with
      | '=', Some '=' -> two_char (CMP Ast.Eq)
      | '!', Some '=' -> two_char (CMP Ast.Ne)
      | '<', Some '=' -> two_char (CMP Ast.Le)
      | '>', Some '=' -> two_char (CMP Ast.Ge)
      | '<', _ -> emit (CMP Ast.Lt); incr i
      | '>', _ -> emit (CMP Ast.Gt); incr i
      | '=', _ -> emit EQUALS; incr i
      | '(', _ -> emit LPAREN; incr i
      | ')', _ -> emit RPAREN; incr i
      | '[', _ -> emit LBRACKET; incr i
      | ']', _ -> emit RBRACKET; incr i
      | ',', _ -> emit COMMA; incr i
      | '+', _ -> emit PLUS; incr i
      | '-', _ -> emit MINUS; incr i
      | '*', _ -> emit STAR; incr i
      | '/', _ -> emit SLASH; incr i
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit EOF;
  List.rev !toks

let pp_token = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | EQUALS -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | CMP Ast.Eq -> "=="
  | CMP Ast.Ne -> "!="
  | CMP Ast.Lt -> "<"
  | CMP Ast.Le -> "<="
  | CMP Ast.Gt -> ">"
  | CMP Ast.Ge -> ">="
  | EOF -> "<eof>"
