(** Recursive-descent parser for PFL.

    Grammar (see README for the user-facing description):
    {v
    program  ::= { array-decl | proc }
    decl     ::= "array" IDENT "[" INT { "," INT } "]"
    proc     ::= "proc" IDENT "(" [params] ")" { stmt } "end"
    stmt     ::= IDENT "=" expr
               | IDENT "[" exprs "]" "=" expr
               | ("do"|"doall") IDENT "=" expr "," expr { stmt } "end"
               | "if" cond "then" { stmt } [ "else" { stmt } ] "end"
               | "call" IDENT "(" [exprs] ")"
               | "critical" { stmt } "end"
               | "work" expr
    expr     ::= additive; mul/div/mod bind tighter; atoms are INT,
                 IDENT, IDENT "[" exprs "]", min/max/blackbox "(" ... ")",
                 "(" expr ")", "-" atom
    cond     ::= disjunction of conjunctions of comparisons / "not" / parens
    v} *)

exception Parse_error of string * int

type state = { mutable toks : Lexer.located list }

let error st msg =
  let line = match st.toks with { line; _ } :: _ -> line | [] -> 0 in
  raise (Parse_error (msg, line))

let peek st = match st.toks with { tok; _ } :: _ -> tok | [] -> Lexer.EOF

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else error st (Printf.sprintf "expected %s, found %s" (Lexer.pp_token tok) (Lexer.pp_token (peek st)))

let expect_ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Lexer.pp_token t))

let expect_int st =
  match peek st with
  | Lexer.INT n -> advance st; n
  | t -> error st (Printf.sprintf "expected integer, found %s" (Lexer.pp_token t))

let expect_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw -> advance st
  | t -> error st (Printf.sprintf "expected %s, found %s" kw (Lexer.pp_token t))

(* --- expressions --- *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS -> advance st; loop (Ast.Binop (Ast.Add, lhs, parse_multiplicative st))
    | Lexer.MINUS -> advance st; loop (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop lhs

and parse_multiplicative st =
  let lhs = parse_atom st in
  let rec loop lhs =
    match peek st with
    | Lexer.STAR -> advance st; loop (Ast.Binop (Ast.Mul, lhs, parse_atom st))
    | Lexer.SLASH -> advance st; loop (Ast.Binop (Ast.Div, lhs, parse_atom st))
    | Lexer.KW "mod" -> advance st; loop (Ast.Binop (Ast.Mod, lhs, parse_atom st))
    | _ -> lhs
  in
  loop lhs

and parse_atom st =
  match peek st with
  | Lexer.INT n -> advance st; Ast.Int n
  | Lexer.MINUS -> advance st; Ast.Neg (parse_atom st)
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.KW ("min" | "max" as kw) ->
    advance st;
    expect st Lexer.LPAREN;
    let a = parse_expr st in
    expect st Lexer.COMMA;
    let b = parse_expr st in
    expect st Lexer.RPAREN;
    Ast.Binop ((if kw = "min" then Ast.Min else Ast.Max), a, b)
  | Lexer.KW "blackbox" ->
    advance st;
    expect st Lexer.LPAREN;
    let name = expect_ident st in
    let args = if peek st = Lexer.COMMA then (advance st; parse_expr_list st) else [] in
    expect st Lexer.RPAREN;
    Ast.Blackbox (name, args)
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LBRACKET then begin
      advance st;
      let idx = parse_expr_list st in
      expect st Lexer.RBRACKET;
      Ast.Aref (name, idx, Ast.Unmarked)
    end
    else Ast.Var name
  | t -> error st (Printf.sprintf "expected expression, found %s" (Lexer.pp_token t))

and parse_expr_list st =
  let e = parse_expr st in
  if peek st = Lexer.COMMA then (advance st; e :: parse_expr_list st) else [ e ]

(* --- conditions --- *)

let rec parse_cond st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Lexer.KW "or" -> advance st; Ast.Or (lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_cond_atom st in
  match peek st with
  | Lexer.KW "and" -> advance st; Ast.And (lhs, parse_and st)
  | _ -> lhs

and parse_cond_atom st =
  match peek st with
  | Lexer.KW "not" -> advance st; Ast.Not (parse_cond_atom st)
  | Lexer.LPAREN ->
    (* Could be a parenthesized condition or a comparison whose left side is
       a parenthesized arithmetic expression; we try condition first by
       scanning for a comparison operator at depth 0. *)
    let rec has_cmp_at_depth0 toks depth =
      match toks with
      | [] -> false
      | ({ tok; _ } : Lexer.located) :: rest -> (
        match tok with
        | Lexer.LPAREN | Lexer.LBRACKET -> has_cmp_at_depth0 rest (depth + 1)
        | Lexer.RPAREN | Lexer.RBRACKET -> depth > 0 && has_cmp_at_depth0 rest (depth - 1)
        | Lexer.CMP _ when depth = 0 -> true
        | _ -> has_cmp_at_depth0 rest depth)
    in
    (match st.toks with
    | _ :: rest when not (has_cmp_at_depth0 rest 1) ->
      advance st;
      let c = parse_cond st in
      expect st Lexer.RPAREN;
      c
    | _ -> parse_comparison st)
  | _ -> parse_comparison st

and parse_comparison st =
  let lhs = parse_expr st in
  match peek st with
  | Lexer.CMP op -> advance st; Ast.Cmp (op, lhs, parse_expr st)
  | t -> error st (Printf.sprintf "expected comparison operator, found %s" (Lexer.pp_token t))

(* --- statements --- *)

let rec parse_stmts st stop_kws =
  match peek st with
  | Lexer.KW kw when List.mem kw stop_kws -> []
  | Lexer.EOF -> error st "unexpected end of input inside a block"
  | _ ->
    let s = parse_stmt st in
    s :: parse_stmts st stop_kws

and parse_stmt st =
  match peek st with
  | Lexer.KW ("do" | "doall" as kw) ->
    advance st;
    let index = expect_ident st in
    expect st Lexer.EQUALS;
    let lo = parse_expr st in
    expect st Lexer.COMMA;
    let hi = parse_expr st in
    let body = parse_stmts st [ "end" ] in
    expect_kw st "end";
    let loop = { Ast.index; lo; hi; body } in
    if kw = "do" then Ast.Do loop else Ast.Doall loop
  | Lexer.KW "if" ->
    advance st;
    let c = parse_cond st in
    expect_kw st "then";
    let then_b = parse_stmts st [ "else"; "end" ] in
    let else_b =
      if peek st = Lexer.KW "else" then (advance st; parse_stmts st [ "end" ]) else []
    in
    expect_kw st "end";
    Ast.If (c, then_b, else_b)
  | Lexer.KW "call" ->
    advance st;
    let name = expect_ident st in
    expect st Lexer.LPAREN;
    let args = if peek st = Lexer.RPAREN then [] else parse_expr_list st in
    expect st Lexer.RPAREN;
    Ast.Call (name, args)
  | Lexer.KW "critical" ->
    advance st;
    let body = parse_stmts st [ "end" ] in
    expect_kw st "end";
    Ast.Critical body
  | Lexer.KW "work" ->
    advance st;
    Ast.Work (parse_expr st)
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LBRACKET then begin
      advance st;
      let idx = parse_expr_list st in
      expect st Lexer.RBRACKET;
      expect st Lexer.EQUALS;
      Ast.Store (name, idx, parse_expr st, Ast.Normal_write)
    end
    else begin
      expect st Lexer.EQUALS;
      Ast.Assign (name, parse_expr st)
    end
  | t -> error st (Printf.sprintf "expected statement, found %s" (Lexer.pp_token t))

(* --- top level --- *)

let parse_decl st =
  expect_kw st "array";
  let name = expect_ident st in
  expect st Lexer.LBRACKET;
  let rec dims () =
    let d = expect_int st in
    if peek st = Lexer.COMMA then (advance st; d :: dims ()) else [ d ]
  in
  let dims = dims () in
  expect st Lexer.RBRACKET;
  { Ast.arr_name = name; dims }

let parse_proc st =
  expect_kw st "proc";
  let name = expect_ident st in
  expect st Lexer.LPAREN;
  let rec params () =
    match peek st with
    | Lexer.IDENT p -> advance st; if peek st = Lexer.COMMA then (advance st; p :: params ()) else [ p ]
    | _ -> []
  in
  let params = params () in
  expect st Lexer.RPAREN;
  let body = parse_stmts st [ "end" ] in
  expect_kw st "end";
  { Ast.proc_name = name; params; body }

let parse_program ?(entry = "main") src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop arrays procs =
    match peek st with
    | Lexer.EOF -> { Ast.arrays = List.rev arrays; procs = List.rev procs; entry }
    | Lexer.KW "array" -> let d = parse_decl st in loop (d :: arrays) procs
    | Lexer.KW "proc" -> let p = parse_proc st in loop arrays (p :: procs)
    | t -> error st (Printf.sprintf "expected 'array' or 'proc', found %s" (Lexer.pp_token t))
  in
  loop [] []

(** Parse, raising [Failure] with a location-annotated message on error. *)
let parse_exn ?entry src =
  try parse_program ?entry src with
  | Parse_error (msg, line) -> failwith (Printf.sprintf "parse error at line %d: %s" line msg)
  | Lexer.Lex_error (msg, line) -> failwith (Printf.sprintf "lex error at line %d: %s" line msg)
