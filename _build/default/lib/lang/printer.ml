(** Pretty-printer producing parseable PFL source; [Parser.parse_exn]
    composed with [program_to_string] is the identity on ASTs (tested). *)

open Ast

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "mod"
  | Min -> "min" | Max -> "max"

let cmpop_str = function
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

(* Precedence levels: 0 additive, 1 multiplicative, 2 atom. *)
let rec expr_prec = function
  | Int _ | Var _ | Aref _ | Blackbox _ -> 2
  | Neg _ -> 2
  | Binop ((Add | Sub), _, _) -> 0
  | Binop ((Mul | Div | Mod), _, _) -> 1
  | Binop ((Min | Max), _, _) -> 2

and expr_str ?(prec = 0) e =
  let s =
    match e with
    | Int n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
    | Var v -> v
    | Aref (a, idx, _) -> Printf.sprintf "%s[%s]" a (String.concat ", " (List.map (expr_str ~prec:0) idx))
    | Neg e -> "-" ^ expr_str ~prec:2 e
    | Binop ((Min | Max) as op, a, b) ->
      Printf.sprintf "%s(%s, %s)" (binop_str op) (expr_str a) (expr_str b)
    | Binop (op, a, b) ->
      let p = expr_prec e in
      (* left-assoc: the right child of a same-level op needs one more level *)
      Printf.sprintf "%s %s %s" (expr_str ~prec:p a) (binop_str op) (expr_str ~prec:(p + 1) b)
    | Blackbox (name, args) ->
      Printf.sprintf "blackbox(%s%s)" name
        (String.concat "" (List.map (fun a -> ", " ^ expr_str a) args))
  in
  if expr_prec e < prec then "(" ^ s ^ ")" else s

let rec cond_str ?(prec = 0) c =
  (* precedence: or = 0, and = 1, atom = 2 *)
  let p, s =
    match c with
    | Or (a, b) -> (0, Printf.sprintf "%s or %s" (cond_str ~prec:0 a) (cond_str ~prec:1 b))
    | And (a, b) -> (1, Printf.sprintf "%s and %s" (cond_str ~prec:1 a) (cond_str ~prec:2 b))
    | Not c -> (2, "not " ^ cond_str ~prec:2 c)
    | Cmp (op, a, b) -> (2, Printf.sprintf "%s %s %s" (expr_str a) (cmpop_str op) (expr_str b))
  in
  if p < prec then "(" ^ s ^ ")" else s

let rec stmt_lines indent s =
  let pad = String.make (indent * 2) ' ' in
  match s with
  | Assign (v, e) -> [ Printf.sprintf "%s%s = %s" pad v (expr_str e) ]
  | Store (a, idx, e, _) ->
    [ Printf.sprintf "%s%s[%s] = %s" pad a (String.concat ", " (List.map expr_str idx)) (expr_str e) ]
  | Do l -> loop_lines indent "do" l
  | Doall l -> loop_lines indent "doall" l
  | If (c, t, e) ->
    let head = Printf.sprintf "%sif %s then" pad (cond_str c) in
    let then_lines = List.concat_map (stmt_lines (indent + 1)) t in
    let else_lines =
      if e = [] then [] else (pad ^ "else") :: List.concat_map (stmt_lines (indent + 1)) e
    in
    (head :: then_lines) @ else_lines @ [ pad ^ "end" ]
  | Call (name, args) ->
    [ Printf.sprintf "%scall %s(%s)" pad name (String.concat ", " (List.map expr_str args)) ]
  | Critical body ->
    ((pad ^ "critical") :: List.concat_map (stmt_lines (indent + 1)) body) @ [ pad ^ "end" ]
  | Work e -> [ Printf.sprintf "%swork %s" pad (expr_str e) ]

and loop_lines indent kw (l : loop) =
  let pad = String.make (indent * 2) ' ' in
  let head = Printf.sprintf "%s%s %s = %s, %s" pad kw l.index (expr_str l.lo) (expr_str l.hi) in
  (head :: List.concat_map (stmt_lines (indent + 1)) l.body) @ [ pad ^ "end" ]

let decl_str (d : decl) =
  Printf.sprintf "array %s[%s]" d.arr_name (String.concat ", " (List.map string_of_int d.dims))

let proc_lines (p : proc) =
  let head = Printf.sprintf "proc %s(%s)" p.proc_name (String.concat ", " p.params) in
  (head :: List.concat_map (stmt_lines 1) p.body) @ [ "end" ]

let program_to_string (prog : program) =
  let decls = List.map decl_str prog.arrays in
  let procs = List.concat_map (fun p -> proc_lines p @ [ "" ]) prog.procs in
  String.concat "\n" (decls @ ("" :: procs))
