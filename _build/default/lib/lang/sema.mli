(** Semantic analysis and normalization for PFL programs.

    Verifies name/arity/rank correctness, scalar definedness, call-graph
    acyclicity and single-level parallelism, and demotes DOALLs nested in
    parallel regions to serial loops (outer-loop parallelization). *)

type issue = { severity : [ `Error | `Warning ]; message : string }

(** Run all checks. Returns the normalized program and the issue list;
    errors (if any) mean the program must not be executed. *)
val check : Ast.program -> Ast.program * issue list

val errors : issue list -> issue list
val warnings : issue list -> issue list

(** Returns the normalized program or fails with the first error. *)
val check_exn : Ast.program -> Ast.program
