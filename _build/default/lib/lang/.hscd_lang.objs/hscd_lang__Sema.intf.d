lib/lang/sema.pp.mli: Ast
