lib/lang/lexer.pp.mli: Ast
