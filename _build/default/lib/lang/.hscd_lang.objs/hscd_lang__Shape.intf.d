lib/lang/shape.pp.mli: Ast Hashtbl
