lib/lang/shape.pp.ml: Ast Hashtbl Hscd_util List Printf
