lib/lang/lexer.pp.ml: Ast List Printf String
