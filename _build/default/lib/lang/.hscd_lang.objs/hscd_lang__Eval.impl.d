lib/lang/eval.pp.ml: Array Ast Char Hashtbl List Printf Shape String
