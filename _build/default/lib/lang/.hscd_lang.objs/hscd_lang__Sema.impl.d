lib/lang/sema.pp.ml: Ast Hashtbl List Printf
