lib/lang/builder.pp.mli: Ast
