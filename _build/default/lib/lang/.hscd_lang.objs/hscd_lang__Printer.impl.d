lib/lang/printer.pp.ml: Ast List Printf String
