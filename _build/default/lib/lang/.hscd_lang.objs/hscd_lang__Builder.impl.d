lib/lang/builder.pp.ml: Ast
