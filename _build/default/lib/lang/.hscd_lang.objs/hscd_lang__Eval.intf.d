lib/lang/eval.pp.mli: Ast Shape
