(** Combinators for constructing PFL programs directly from OCaml; the
    workloads and most tests are written with these. *)

(* Expressions *)
val int : int -> Ast.expr
val var : string -> Ast.expr
val ( %+ ) : Ast.expr -> Ast.expr -> Ast.expr
val ( %- ) : Ast.expr -> Ast.expr -> Ast.expr
val ( %* ) : Ast.expr -> Ast.expr -> Ast.expr
val ( %/ ) : Ast.expr -> Ast.expr -> Ast.expr

(** Mathematical (non-negative) remainder, like the language's [mod]. *)
val ( %% ) : Ast.expr -> Ast.expr -> Ast.expr

val min_ : Ast.expr -> Ast.expr -> Ast.expr
val max_ : Ast.expr -> Ast.expr -> Ast.expr
val neg : Ast.expr -> Ast.expr
val blackbox : string -> Ast.expr list -> Ast.expr

(** Array reads (unmarked); [a1]/[a2]/[a3] fix the rank. *)
val aref : string -> Ast.expr list -> Ast.expr

val a1 : string -> Ast.expr -> Ast.expr
val a2 : string -> Ast.expr -> Ast.expr -> Ast.expr
val a3 : string -> Ast.expr -> Ast.expr -> Ast.expr -> Ast.expr

(* Conditions *)
val ( %= ) : Ast.expr -> Ast.expr -> Ast.cond
val ( %<> ) : Ast.expr -> Ast.expr -> Ast.cond
val ( %< ) : Ast.expr -> Ast.expr -> Ast.cond
val ( %<= ) : Ast.expr -> Ast.expr -> Ast.cond
val ( %> ) : Ast.expr -> Ast.expr -> Ast.cond
val ( %>= ) : Ast.expr -> Ast.expr -> Ast.cond
val and_ : Ast.cond -> Ast.cond -> Ast.cond
val or_ : Ast.cond -> Ast.cond -> Ast.cond
val not_ : Ast.cond -> Ast.cond

(* Statements *)
val assign : string -> Ast.expr -> Ast.stmt

(** Array stores (normal write-mark); [s1]/[s2]/[s3] fix the rank. *)
val store : string -> Ast.expr list -> Ast.expr -> Ast.stmt

val s1 : string -> Ast.expr -> Ast.expr -> Ast.stmt
val s2 : string -> Ast.expr -> Ast.expr -> Ast.expr -> Ast.stmt
val s3 : string -> Ast.expr -> Ast.expr -> Ast.expr -> Ast.expr -> Ast.stmt
val do_ : string -> Ast.expr -> Ast.expr -> Ast.stmt list -> Ast.stmt
val doall : string -> Ast.expr -> Ast.expr -> Ast.stmt list -> Ast.stmt
val if_ : Ast.cond -> Ast.stmt list -> Ast.stmt list -> Ast.stmt
val call : string -> Ast.expr list -> Ast.stmt
val critical : Ast.stmt list -> Ast.stmt
val work : int -> Ast.stmt
val work_e : Ast.expr -> Ast.stmt

(* Declarations *)
val array : string -> int list -> Ast.decl
val proc : string -> string list -> Ast.stmt list -> Ast.proc
val program : ?entry:string -> Ast.decl list -> Ast.proc list -> Ast.program

(** A whole program that is a single entry procedure. *)
val simple : ?entry:string -> Ast.decl list -> Ast.stmt list -> Ast.program
