(** Semantic analysis and normalization for PFL programs.

    Checks performed:
    - the entry procedure exists and takes no parameters;
    - every called procedure exists with matching arity, and the call graph
      is acyclic (the interprocedural analysis is bottom-up);
    - every array reference names a declared array with the right rank;
    - every scalar read is dominated by a definition (parameter, loop index
      or earlier assignment) — conservatively per block;
    - procedures containing DOALLs are not (transitively) called from
      inside a DOALL body: PFL has single-level parallelism, as in the
      paper's DOALL execution model.

    Normalization: a [Doall] nested inside another [Doall] body in the same
    procedure is demoted to a serial [Do] (outer-loop parallelization, as
    Polaris does), with a note reported. *)

open Ast

type issue = { severity : [ `Error | `Warning ]; message : string }

let errorf fmt = Printf.ksprintf (fun message -> { severity = `Error; message }) fmt
let warnf fmt = Printf.ksprintf (fun message -> { severity = `Warning; message }) fmt

type ctx = {
  program : program;
  mutable issues : issue list;
}

let report ctx issue = ctx.issues <- issue :: ctx.issues

(* --- scalar definedness and reference checking --- *)

let rec check_expr ctx ~proc ~defined e =
  match e with
  | Int _ -> ()
  | Var v ->
    if not (List.mem v defined) then
      report ctx (errorf "%s: scalar %s read before any definition" proc v)
  | Aref (a, idx, _) ->
    (match find_array ctx.program a with
    | None -> report ctx (errorf "%s: reference to undeclared array %s" proc a)
    | Some d ->
      if List.length d.dims <> List.length idx then
        report ctx
          (errorf "%s: array %s has rank %d but is used with %d subscripts" proc a
             (List.length d.dims) (List.length idx)));
    List.iter (check_expr ctx ~proc ~defined) idx
  | Binop (_, l, r) -> check_expr ctx ~proc ~defined l; check_expr ctx ~proc ~defined r
  | Neg e -> check_expr ctx ~proc ~defined e
  | Blackbox (_, args) -> List.iter (check_expr ctx ~proc ~defined) args

let rec check_cond ctx ~proc ~defined = function
  | Cmp (_, l, r) -> check_expr ctx ~proc ~defined l; check_expr ctx ~proc ~defined r
  | And (a, b) | Or (a, b) -> check_cond ctx ~proc ~defined a; check_cond ctx ~proc ~defined b
  | Not c -> check_cond ctx ~proc ~defined c

(* Walk a block keeping the set of surely-defined scalars. Returns the set
   defined after the block (branches contribute their intersection). *)
let rec check_block ctx ~proc ~defined stmts =
  List.fold_left
    (fun defined s ->
      match s with
      | Assign (v, e) ->
        check_expr ctx ~proc ~defined e;
        if List.mem v defined then defined else v :: defined
      | Store (a, idx, e, _) ->
        check_expr ctx ~proc ~defined (Aref (a, idx, Unmarked));
        check_expr ctx ~proc ~defined e;
        defined
      | Do l | Doall l ->
        check_expr ctx ~proc ~defined l.lo;
        check_expr ctx ~proc ~defined l.hi;
        let inner = if List.mem l.index defined then defined else l.index :: defined in
        ignore (check_block ctx ~proc ~defined:inner l.body);
        (* loop may execute zero times: body definitions don't escape *)
        defined
      | If (c, t, e) ->
        check_cond ctx ~proc ~defined c;
        let dt = check_block ctx ~proc ~defined t in
        let de = check_block ctx ~proc ~defined e in
        List.filter (fun v -> List.mem v de) dt
      | Call (name, args) ->
        List.iter (check_expr ctx ~proc ~defined) args;
        (match find_proc ctx.program name with
        | None -> report ctx (errorf "%s: call to undefined procedure %s" proc name)
        | Some callee ->
          if List.length callee.params <> List.length args then
            report ctx
              (errorf "%s: %s expects %d arguments, got %d" proc name
                 (List.length callee.params) (List.length args)));
        defined
      | Critical body -> ignore (check_block ctx ~proc ~defined body); defined
      | Work e -> check_expr ctx ~proc ~defined e; defined)
    defined stmts

(* --- call graph acyclicity --- *)

let callees_of_stmts acc stmts =
  fold_stmts (fun acc s -> match s with Call (n, _) -> n :: acc | _ -> acc) acc stmts

let check_acyclic ctx =
  let visiting = Hashtbl.create 8 and done_ = Hashtbl.create 8 in
  let rec visit name =
    if Hashtbl.mem done_ name then ()
    else if Hashtbl.mem visiting name then
      report ctx (errorf "recursion detected through procedure %s (PFL forbids recursion)" name)
    else begin
      Hashtbl.replace visiting name ();
      (match find_proc ctx.program name with
      | None -> ()
      | Some p -> List.iter visit (callees_of_stmts [] p.body));
      Hashtbl.remove visiting name;
      Hashtbl.replace done_ name ()
    end
  in
  List.iter (fun p -> visit p.proc_name) ctx.program.procs

(* --- single-level parallelism --- *)

(* Does proc [name] transitively contain a Doall? Memoized; safe because the
   call graph is checked acyclic first. *)
let proc_has_epochs program =
  let memo = Hashtbl.create 8 in
  let rec go name =
    match Hashtbl.find_opt memo name with
    | Some v -> v
    | None ->
      Hashtbl.replace memo name false (* break cycles defensively *);
      let v =
        match find_proc program name with
        | None -> false
        | Some p ->
          fold_stmts
            (fun acc s ->
              acc || match s with Doall _ -> true | Call (n, _) -> go n | _ -> false)
            false p.body
      in
      Hashtbl.replace memo name v;
      v
  in
  go

(* Demote Doalls nested inside a Doall body to serial Dos, and flag calls to
   epoch-carrying procedures from parallel context. *)
let rec normalize_stmts ctx ~proc ~has_epochs ~in_parallel stmts =
  List.map
    (fun s ->
      match s with
      | Doall l when in_parallel ->
        report ctx (warnf "%s: doall over %s nested in a parallel region demoted to serial do" proc l.index);
        Do { l with body = normalize_stmts ctx ~proc ~has_epochs ~in_parallel l.body }
      | Doall l -> Doall { l with body = normalize_stmts ctx ~proc ~has_epochs ~in_parallel:true l.body }
      | Do l -> Do { l with body = normalize_stmts ctx ~proc ~has_epochs ~in_parallel l.body }
      | If (c, t, e) ->
        If (c, normalize_stmts ctx ~proc ~has_epochs ~in_parallel t,
            normalize_stmts ctx ~proc ~has_epochs ~in_parallel e)
      | Critical body -> Critical (normalize_stmts ctx ~proc ~has_epochs ~in_parallel body)
      | Call (name, _) ->
        if in_parallel && has_epochs name then
          report ctx
            (errorf "%s: call to %s (which contains doalls) from inside a doall body" proc name);
        s
      | Assign _ | Store _ | Work _ -> s)
    stmts

(* --- duplicate names --- *)

let check_duplicates ctx =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (d : decl) ->
      if Hashtbl.mem seen d.arr_name then report ctx (errorf "duplicate array %s" d.arr_name);
      Hashtbl.replace seen d.arr_name ())
    ctx.program.arrays;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (p : proc) ->
      if Hashtbl.mem seen p.proc_name then report ctx (errorf "duplicate procedure %s" p.proc_name);
      Hashtbl.replace seen p.proc_name ())
    ctx.program.procs

(** Run all checks. Returns the normalized program and the issue list;
    errors (if any) mean the program must not be executed. *)
let check (program : program) =
  let ctx = { program; issues = [] } in
  check_duplicates ctx;
  (match find_proc program program.entry with
  | None -> report ctx (errorf "entry procedure %s is not defined" program.entry)
  | Some p ->
    if p.params <> [] then
      report ctx (errorf "entry procedure %s must take no parameters" program.entry));
  check_acyclic ctx;
  let has_errors = List.exists (fun i -> i.severity = `Error) ctx.issues in
  let has_epochs = if has_errors then fun _ -> false else proc_has_epochs program in
  let procs =
    List.map
      (fun (p : proc) ->
        ignore (check_block ctx ~proc:p.proc_name ~defined:p.params p.body);
        { p with body = normalize_stmts ctx ~proc:p.proc_name ~has_epochs ~in_parallel:false p.body })
      program.procs
  in
  let normalized = { program with procs } in
  (normalized, List.rev ctx.issues)

let errors issues = List.filter (fun i -> i.severity = `Error) issues
let warnings issues = List.filter (fun i -> i.severity = `Warning) issues

(** [check_exn p] returns the normalized program or fails with the first
    error message. *)
let check_exn program =
  let normalized, issues = check program in
  match errors issues with
  | [] -> normalized
  | { message; _ } :: _ -> failwith ("sema: " ^ message)
