(** Hand-written lexer for the PFL surface syntax. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CMP of Ast.cmpop
  | EOF

type located = { tok : token; line : int }

exception Lex_error of string * int

(** Reserved words of the language. *)
val keywords : string list

(** Tokenize a whole source text; the last token is always [EOF]. Raises
    {!Lex_error} with the offending line. [#] starts a comment to end of
    line. *)
val tokenize : string -> located list

val pp_token : token -> string
