(** Reference interpreter for PFL.

    This is the single execution engine of the reproduction: run with null
    hooks it is the sequential golden memory model; run with instrumented
    hooks (see [Hscd_sim.Trace]) it generates the per-processor memory-event
    streams for execution-driven simulation, as in the paper's tooling [32].

    Execution model: the program runs as an alternating sequence of epochs —
    [Serial] (the code between parallel loops, executed as one task) and
    [Parallel] (one dynamic DOALL instance, one task per iteration). Every
    epoch is delimited by [on_epoch_begin]/[on_epoch_end]; tasks by
    [on_task_begin]/[on_task_end]. DOALL iterations must be independent:
    with [check_races] enabled the interpreter verifies that no two tasks of
    an epoch conflict on a memory word outside critical sections, which is
    the correctness contract the paper's compiler relies on. *)

exception Runtime_error of string

exception Data_race of string

let runtime_errorf fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type value = int

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type hooks = {
  on_epoch_begin : epoch_kind -> unit;
  on_epoch_end : unit -> unit;
  on_task_begin : iter:int -> unit;
      (** [iter] is the iteration's index value; [0] for a serial task *)
  on_task_end : unit -> unit;
  on_read : array:string -> addr:int -> value:value -> mark:Ast.rmark -> unit;
  on_write : array:string -> addr:int -> value:value -> mark:Ast.wmark -> unit;
  on_work : int -> unit;
  on_lock : unit -> unit;
  on_unlock : unit -> unit;
}

let null_hooks =
  {
    on_epoch_begin = (fun _ -> ());
    on_epoch_end = (fun () -> ());
    on_task_begin = (fun ~iter:_ -> ());
    on_task_end = (fun () -> ());
    on_read = (fun ~array:_ ~addr:_ ~value:_ ~mark:_ -> ());
    on_write = (fun ~array:_ ~addr:_ ~value:_ ~mark:_ -> ());
    on_work = (fun _ -> ());
    on_lock = (fun () -> ());
    on_unlock = (fun () -> ());
  }

(* --- deterministic blackbox functions --- *)

(* A fixed avalanche mixer: the same (name, args) always yields the same
   non-negative value, across runs and platforms. *)
let blackbox_value name args =
  let mix h v =
    let h = h lxor (v * 0x9E3779B1) in
    let h = (h lxor (h lsr 16)) * 0x85EBCA6B in
    (h lxor (h lsr 13)) land max_int
  in
  let h0 = String.fold_left (fun h c -> mix h (Char.code c)) 0x12345 name in
  List.fold_left mix h0 args

(* --- per-epoch data-race bookkeeping --- *)

module Races = struct
  (* For each word we remember up to two distinct non-critical readers, the
     last non-critical writer, and the same for critical accesses. Two
     distinct readers are enough: any subsequent writer conflicts with at
     least one of them. *)
  type entry = {
    mutable nc_readers : int list;
    mutable nc_writer : int option;
    mutable cr_readers : int list;
    mutable cr_writer : int option;
  }

  type t = { table : (int, entry) Hashtbl.t; mutable enabled : bool }

  let create enabled = { table = Hashtbl.create 1024; enabled }

  let reset t = Hashtbl.reset t.table

  let entry t addr =
    match Hashtbl.find_opt t.table addr with
    | Some e -> e
    | None ->
      let e = { nc_readers = []; nc_writer = None; cr_readers = []; cr_writer = None } in
      Hashtbl.replace t.table addr e;
      e

  let add_reader readers task =
    if List.mem task readers || List.length readers >= 2 then readers else task :: readers

  let race array addr kind a b =
    raise
      (Data_race
         (Printf.sprintf "data race on %s (word %d): %s by tasks %d and %d in the same epoch"
            array addr kind a b))

  let other_of task = function Some w when w <> task -> Some w | _ -> None

  let record t ~array ~addr ~task ~is_write ~in_critical =
    if t.enabled then begin
      let e = entry t addr in
      if in_critical then begin
        (* critical accesses are mutually synchronized, but still conflict
           with non-critical accesses from other tasks *)
        (match other_of task e.nc_writer with
        | Some w -> race array addr "critical access vs. unsynchronized write" task w
        | None -> ());
        if is_write then begin
          (match List.find_opt (fun r -> r <> task) e.nc_readers with
          | Some r -> race array addr "critical write vs. unsynchronized read" task r
          | None -> ());
          e.cr_writer <- Some task
        end
        else e.cr_readers <- add_reader e.cr_readers task
      end
      else begin
        (match other_of task e.cr_writer with
        | Some w -> race array addr "unsynchronized access vs. critical write" task w
        | None -> ());
        (match other_of task e.nc_writer with
        | Some w -> race array addr (if is_write then "write/write" else "read/write") task w
        | None -> ());
        if is_write then begin
          (match List.find_opt (fun r -> r <> task) e.nc_readers with
          | Some r -> race array addr "write/read" task r
          | None -> ());
          (match List.find_opt (fun r -> r <> task) e.cr_readers with
          | Some r -> race array addr "unsynchronized write vs. critical read" task r
          | None -> ());
          e.nc_writer <- Some task
        end
        else e.nc_readers <- add_reader e.nc_readers task
      end
    end
end

(* --- interpreter state --- *)


type state = {
  program : Ast.program;
  layout : Shape.layout;
  memory : value array;
  hooks : hooks;
  races : Races.t;
  mutable task : int;  (** current task id within the epoch (= iteration rank) *)
  mutable in_parallel : bool;
  mutable in_critical : bool;
  mutable steps : int;
  max_steps : int;
  mutable epochs_executed : int;
}

let bump_steps st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then
    runtime_errorf "execution exceeded %d steps (non-terminating program?)" st.max_steps

let lookup env v =
  match Hashtbl.find_opt env v with
  | Some x -> x
  | None -> runtime_errorf "scalar %s used before definition" v

(* --- expression evaluation --- *)

let apply_binop op a b =
  match (op : Ast.binop) with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then runtime_errorf "division by zero" else a / b
  | Mod ->
    if b = 0 then runtime_errorf "mod by zero"
    else
      (* mathematical (non-negative) remainder so subscripts stay valid *)
      let r = a mod b in
      if r < 0 then r + abs b else r
  | Min -> min a b
  | Max -> max a b

let rec eval_expr st env (e : Ast.expr) =
  match e with
  | Int n -> n
  | Var v -> lookup env v
  | Neg e -> -eval_expr st env e
  | Binop (op, l, r) ->
    let a = eval_expr st env l in
    let b = eval_expr st env r in
    apply_binop op a b
  | Blackbox (name, args) -> blackbox_value name (List.map (eval_expr st env) args)
  | Aref (a, idx, mark) ->
    let indices = List.map (eval_expr st env) idx in
    let addr =
      try Shape.address st.layout a indices
      with Invalid_argument m -> raise (Runtime_error m)
    in
    Races.record st.races ~array:a ~addr ~task:st.task ~is_write:false
      ~in_critical:st.in_critical;
    let value = st.memory.(addr) in
    let mark = if st.in_critical && mark = Ast.Unmarked then Ast.Bypass_read else mark in
    st.hooks.on_read ~array:a ~addr ~value ~mark;
    value

let rec eval_cond st env (c : Ast.cond) =
  match c with
  | Cmp (op, l, r) ->
    let a = eval_expr st env l in
    let b = eval_expr st env r in
    (match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b)
  | And (a, b) -> eval_cond st env a && eval_cond st env b
  | Or (a, b) -> eval_cond st env a || eval_cond st env b
  | Not c -> not (eval_cond st env c)

(* --- statement execution --- *)

let rec exec_stmts st env stmts = List.iter (exec_stmt st env) stmts

and exec_stmt st env (s : Ast.stmt) =
  bump_steps st;
  match s with
  | Assign (v, e) -> Hashtbl.replace env v (eval_expr st env e)
  | Store (a, idx, e, mark) ->
    let indices = List.map (eval_expr st env) idx in
    let value = eval_expr st env e in
    let addr =
      try Shape.address st.layout a indices
      with Invalid_argument m -> raise (Runtime_error m)
    in
    Races.record st.races ~array:a ~addr ~task:st.task ~is_write:true
      ~in_critical:st.in_critical;
    st.memory.(addr) <- value;
    let mark = if st.in_critical && mark = Ast.Normal_write then Ast.Bypass_write else mark in
    st.hooks.on_write ~array:a ~addr ~value ~mark
  | Work e ->
    let n = eval_expr st env e in
    if n < 0 then runtime_errorf "work with negative cycle count %d" n;
    st.hooks.on_work n
  | If (c, t, e) -> if eval_cond st env c then exec_stmts st env t else exec_stmts st env e
  | Critical body ->
    if st.in_critical then runtime_errorf "nested critical sections are not allowed";
    st.hooks.on_lock ();
    st.in_critical <- true;
    (try exec_stmts st env body
     with exn ->
       st.in_critical <- false;
       raise exn);
    st.in_critical <- false;
    st.hooks.on_unlock ()
  | Call (name, args) ->
    let callee =
      match Ast.find_proc st.program name with
      | Some p -> p
      | None -> runtime_errorf "call to undefined procedure %s" name
    in
    let values = List.map (eval_expr st env) args in
    let callee_env = Hashtbl.create 16 in
    (try List.iter2 (fun p v -> Hashtbl.replace callee_env p v) callee.params values
     with Invalid_argument _ ->
       runtime_errorf "%s expects %d arguments, got %d" name (List.length callee.params)
         (List.length values));
    exec_stmts st callee_env callee.body
  | Do { index; lo; hi; body } ->
    let lo = eval_expr st env lo and hi = eval_expr st env hi in
    let saved = Hashtbl.find_opt env index in
    for i = lo to hi do
      Hashtbl.replace env index i;
      exec_stmts st env body
    done;
    (match saved with Some v -> Hashtbl.replace env index v | None -> Hashtbl.remove env index)
  | Doall { index; lo; hi; body } ->
    if st.in_parallel then runtime_errorf "nested doall survived normalization";
    let lo = eval_expr st env lo and hi = eval_expr st env hi in
    (* close the current serial epoch, run the parallel one, reopen serial *)
    st.hooks.on_task_end ();
    st.hooks.on_epoch_end ();
    st.epochs_executed <- st.epochs_executed + 1;
    st.hooks.on_epoch_begin (Parallel { lo; hi });
    Races.reset st.races;
    st.in_parallel <- true;
    for i = lo to hi do
      st.task <- i - lo;
      st.hooks.on_task_begin ~iter:i;
      (* task-private scalars: each iteration works on a copy of the
         enclosing environment and its updates are discarded *)
      let task_env = Hashtbl.copy env in
      Hashtbl.replace task_env index i;
      exec_stmts st task_env body;
      st.hooks.on_task_end ()
    done;
    st.in_parallel <- false;
    st.task <- 0;
    st.hooks.on_epoch_end ();
    st.epochs_executed <- st.epochs_executed + 1;
    st.hooks.on_epoch_begin Serial;
    Races.reset st.races;
    st.hooks.on_task_begin ~iter:0

(* --- entry point --- *)

type result = {
  final_memory : value array;
  layout : Shape.layout;
  epochs : int;  (** number of epochs executed (counting the serial ones) *)
}

(** Execute [program] (assumed sema-checked). [line_words] controls array
    padding in the address map and must match the simulated machine. *)
let run ?(hooks = null_hooks) ?(check_races = true) ?(max_steps = 50_000_000)
    ?(line_words = 4) (program : Ast.program) =
  let layout = Shape.layout ~line_words program.arrays in
  let st =
    {
      program;
      layout;
      memory = Array.make (max 1 layout.total_words) 0;
      hooks;
      races = Races.create check_races;
      task = 0;
      in_parallel = false;
      in_critical = false;
      steps = 0;
      max_steps;
      epochs_executed = 0;
    }
  in
  let entry =
    match Ast.find_proc program program.entry with
    | Some p -> p
    | None -> runtime_errorf "entry procedure %s not found" program.entry
  in
  hooks.on_epoch_begin Serial;
  hooks.on_task_begin ~iter:0;
  exec_stmts st (Hashtbl.create 16) entry.body;
  hooks.on_task_end ();
  hooks.on_epoch_end ();
  st.epochs_executed <- st.epochs_executed + 1;
  { final_memory = st.memory; layout; epochs = st.epochs_executed }

(** Read an element of the final memory, for tests and examples. *)
let peek result name indices = result.final_memory.(Shape.address result.layout name indices)
