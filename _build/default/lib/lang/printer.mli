(** Pretty-printer producing parseable PFL source; composing with
    {!Parser.parse_exn} is the identity on ASTs. *)

val binop_str : Ast.binop -> string
val cmpop_str : Ast.cmpop -> string

(** Expression at a given ambient precedence (0 = loosest). *)
val expr_str : ?prec:int -> Ast.expr -> string

val cond_str : ?prec:int -> Ast.cond -> string

(** One statement as indented lines. *)
val stmt_lines : int -> Ast.stmt -> string list

val decl_str : Ast.decl -> string
val proc_lines : Ast.proc -> string list
val program_to_string : Ast.program -> string
