lib/experiments/common.ml: Hashtbl Hscd_arch Hscd_compiler Hscd_sim Hscd_workloads List Printf String
