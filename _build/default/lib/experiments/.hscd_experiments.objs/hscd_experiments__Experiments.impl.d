lib/experiments/experiments.ml: Common Hscd_arch Hscd_coherence Hscd_sim Hscd_util Hscd_workloads List Printf String
