(** hscd-coherence: reproduction of Choi & Yew's hardware-supported,
    compiler-directed (HSCD) cache coherence study (ISCA 1996).

    This facade re-exports the layered libraries and offers the one-call
    pipeline most users want: parse (or build) a PFL program, run the
    coherence compiler, and simulate it under any of the paper's four
    schemes on the Fig-8 machine. See README.md for a tour and DESIGN.md
    for the reproduction inventory.

    {1 Layers}

    - {!Lang}: the PFL parallel language (AST, parser, interpreter)
    - {!Compiler}: epoch flow graph, array sections, reference marking
    - {!Arch}: machine configuration and memory events
    - {!Cache}, {!Network}: hardware substrates
    - {!Coherence}: BASE / SC / TPI / HW / LimitLESS schemes
    - {!Sim}: trace generation and the timing engine
    - {!Workloads}: Perfect-Club-style benchmarks and microkernels
    - {!Experiments}: the paper's tables and figures *)

module Lang = struct
  module Ast = Hscd_lang.Ast
  module Builder = Hscd_lang.Builder
  module Lexer = Hscd_lang.Lexer
  module Parser = Hscd_lang.Parser
  module Printer = Hscd_lang.Printer
  module Sema = Hscd_lang.Sema
  module Eval = Hscd_lang.Eval
  module Shape = Hscd_lang.Shape
end

module Compiler = struct
  module Affine = Hscd_compiler.Affine
  module Sections = Hscd_compiler.Sections
  module Gsa = Hscd_compiler.Gsa
  module Segment = Hscd_compiler.Segment
  module Callgraph = Hscd_compiler.Callgraph
  module Epochgraph = Hscd_compiler.Epochgraph
  module Analysis = Hscd_compiler.Analysis
  module Marking = Hscd_compiler.Marking
  module Report = Hscd_compiler.Report
end

module Arch = struct
  module Config = Hscd_arch.Config
  module Addr = Hscd_arch.Addr
  module Event = Hscd_arch.Event
end

module Cache = struct
  module Cache = Hscd_cache.Cache
  module Write_buffer = Hscd_cache.Write_buffer
end

module Network = struct
  module Kruskal_snir = Hscd_network.Kruskal_snir
  module Traffic = Hscd_network.Traffic
end

module Coherence = struct
  module Scheme = Hscd_coherence.Scheme
  module Memstate = Hscd_coherence.Memstate
  module Base = Hscd_coherence.Base
  module Sc = Hscd_coherence.Sc
  module Tpi = Hscd_coherence.Tpi
  module Hwdir = Hscd_coherence.Hwdir
  module Limitless = Hscd_coherence.Limitless
  module Overhead = Hscd_coherence.Overhead
end

module Sim = struct
  module Trace = Hscd_sim.Trace
  module Schedule = Hscd_sim.Schedule
  module Metrics = Hscd_sim.Metrics
  module Engine = Hscd_sim.Engine
  module Run = Hscd_sim.Run
end

module Workloads = struct
  module Kernels = Hscd_workloads.Kernels
  module Perfect = Hscd_workloads.Perfect
end

module Experiments = struct
  module Common = Hscd_experiments.Common
  module Experiments = Hscd_experiments.Experiments
end

(** Parse PFL source text into a checked program. *)
let parse source = Hscd_lang.Sema.check_exn (Hscd_lang.Parser.parse_exn source)

(** Compile (mark) and simulate [program] under [scheme] on [cfg]
    (defaults to the paper's Figure-8 machine). *)
let simulate ?cfg ?(scheme = Hscd_sim.Run.TPI) program =
  Hscd_sim.Run.run_source ?cfg scheme program

(** Compile once and compare all four schemes on the same trace. *)
let compare_schemes ?cfg program = Hscd_sim.Run.compare ?cfg program

(** Compiler view only: marked listing plus census, without simulating. *)
let mark ?(intertask = true) program =
  let program = Hscd_lang.Sema.check_exn program in
  let m = Hscd_compiler.Marking.mark_program ~intertask program in
  (Hscd_compiler.Report.annotated_listing m.Hscd_compiler.Marking.program, m.Hscd_compiler.Marking.census)

(* kept for the original scaffold's smoke test *)
let placeholder () = ()
