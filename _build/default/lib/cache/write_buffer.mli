(** Write-buffer traffic models for the write-through schemes: an infinite
    plain buffer (every store reaches memory) or a small write cache that
    coalesces repeated stores to the same word within an epoch [9, 10, 15]. *)

type t

val create : Hscd_arch.Config.t -> t

(** Record a store to a word address; returns how many words of write
    traffic reach the memory system now (0 when buffered/coalesced). *)
val write : t -> int -> int

(** Epoch boundary: drain all pending entries; returns flushed words. *)
val drain : t -> int

(** Stores eliminated by coalescing so far. *)
val coalesced_writes : t -> int
