(** Write-buffer models for the write-through schemes.

    The paper uses an infinite write buffer by default: writes never stall
    the processor but each one puts a word on the network. Organizing the
    buffer as a small *write cache* (as in the DEC Alpha 21164 [15])
    coalesces repeated writes to the same word within an epoch, removing
    the redundant write traffic that hurts TPI on TRFD [9, 10]. This module
    models the *traffic* effect; correctness-visible memory updates are
    performed eagerly by the schemes (safe because DOALL epochs are
    race-free and barriers drain buffers). *)

type t =
  | Plain
  | Cache of {
      entries : int;
      mutable resident : (int * int) list;  (** (addr, lru); most-recent first *)
      mutable tick : int;
      mutable coalesced : int;
      mutable flushed : int;
    }

let create (c : Hscd_arch.Config.t) =
  match c.write_buffer with
  | Hscd_arch.Config.Plain_buffer -> Plain
  | Hscd_arch.Config.Write_cache entries ->
    Cache { entries; resident = []; tick = 0; coalesced = 0; flushed = 0 }

(** Record a write of [addr]; returns how many words of write traffic the
    memory system sees *now*. *)
let write t addr =
  match t with
  | Plain -> 1
  | Cache wc ->
    wc.tick <- wc.tick + 1;
    if List.mem_assoc addr wc.resident then begin
      (* coalesce: overwrite the pending entry, no new traffic *)
      wc.coalesced <- wc.coalesced + 1;
      wc.resident <- (addr, wc.tick) :: List.remove_assoc addr wc.resident;
      0
    end
    else if List.length wc.resident < wc.entries then begin
      wc.resident <- (addr, wc.tick) :: wc.resident;
      0
    end
    else begin
      (* evict the least recently written entry: one word reaches memory *)
      let rec drop_oldest acc = function
        | [] -> List.rev acc
        | [ _ ] -> List.rev acc
        | x :: rest -> drop_oldest (x :: acc) rest
      in
      let sorted = List.sort (fun (_, a) (_, b) -> compare b a) wc.resident in
      wc.resident <- (addr, wc.tick) :: drop_oldest [] sorted;
      wc.flushed <- wc.flushed + 1;
      1
    end

(** Epoch boundary: drain everything; returns words of write traffic. *)
let drain t =
  match t with
  | Plain -> 0
  | Cache wc ->
    let n = List.length wc.resident in
    wc.resident <- [];
    wc.flushed <- wc.flushed + n;
    n

let coalesced_writes t = match t with Plain -> 0 | Cache wc -> wc.coalesced
