lib/cache/cache.ml: Array Hscd_arch Hscd_util List
