lib/cache/write_buffer.mli: Hscd_arch
