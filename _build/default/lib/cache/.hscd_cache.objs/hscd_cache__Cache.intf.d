lib/cache/cache.mli: Hscd_arch
