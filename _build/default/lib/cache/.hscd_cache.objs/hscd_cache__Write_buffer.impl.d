lib/cache/write_buffer.ml: Hscd_arch List
