(** Storage overhead of the coherence schemes — the closed-form comparison
    of the paper's Figure 5.

    Parameters (the paper's notation): P processors, L words per memory
    block (cache line), C cache lines per node, M memory blocks per node,
    i limited-directory pointers, and the TPI timetag width in bits.

    Formulas as printed in the paper:
    - full-map directory [8]: cache SRAM 2·C·P bits (2 state bits per
      line per node); memory DRAM (P+2)·M·P bits (a presence bit per
      processor plus 2 state bits, per block, per node);
    - LimitLess DIR_NB(i) [2]: cache SRAM 2·C·P bits; memory DRAM
      (i+2)·M·P bits (i pointer-slots of ~log2 P represented as in the
      paper's i+2 per-block figure with i = i·log2(P)/... — we follow the
      paper's printed (i+2) formula with i counted in pointer bits);
    - TPI: cache SRAM tag·L·C·P bits (one timetag per cache word), no
      memory overhead at all. The paper prints 8·L·C·P for 8-bit tags. *)

type params = {
  processors : int;  (** P *)
  line_words : int;  (** L *)
  cache_lines : int;  (** C, per node *)
  memory_blocks : int;  (** M, per node *)
  limitless_i : int;  (** pointers of DIR_NB(i), in per-block bits as printed *)
  timetag_bits : int;
}

(** The paper's headline configuration, P = 1024 and i = 10. The C and M
    values are chosen so the printed totals come out as in Figure 5
    (4 MB SRAM for the directory schemes, 64 MB SRAM for TPI, ~64.5 GB of
    full-map DRAM): C = 16384 lines and M = 512 K blocks per node. *)
let paper_default =
  {
    processors = 1024;
    line_words = 4;
    cache_lines = 16384;
    memory_blocks = 512 * 1024;
    limitless_i = 10;
    timetag_bits = 8;
  }

let of_config ?(memory_bytes_per_node = 64 * 1024 * 1024) (c : Hscd_arch.Config.t) =
  {
    processors = c.processors;
    line_words = c.line_words;
    cache_lines = Hscd_arch.Config.cache_lines c;
    memory_blocks = memory_bytes_per_node / Hscd_arch.Config.line_bytes c;
    limitless_i = 10;
    timetag_bits = c.timetag_bits;
  }

type overhead = { cache_sram_bits : int; memory_dram_bits : int }

let bits_to_bytes b = (b + 7) / 8

let full_map p =
  {
    cache_sram_bits = 2 * p.cache_lines * p.processors;
    memory_dram_bits = (p.processors + 2) * p.memory_blocks * p.processors;
  }

(* i pointers of ceil(log2 P) bits plus 2 state bits per block; the paper
   prints this as "(i+2)" with i counted in pointer-bits. *)
let limitless p =
  let ptr_bits =
    let rec bits n acc = if n <= 1 then acc else bits ((n + 1) / 2) (acc + 1) in
    bits p.processors 0
  in
  {
    cache_sram_bits = 2 * p.cache_lines * p.processors;
    memory_dram_bits = ((p.limitless_i * ptr_bits) + 2) * p.memory_blocks * p.processors;
  }

let tpi p =
  {
    cache_sram_bits = p.timetag_bits * p.line_words * p.cache_lines * p.processors;
    memory_dram_bits = 0;
  }

let describe p =
  [
    ("Full-map directory", full_map p);
    (Printf.sprintf "LimitLESS DIR_NB(%d)" p.limitless_i, limitless p);
    (Printf.sprintf "Two-phase invalidation (%d-bit tags)" p.timetag_bits, tpi p);
  ]
