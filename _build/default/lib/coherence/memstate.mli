(** Global memory image plus per-word write-history tracking, shared by
    every scheme. Answers in O(1): "has any processor other than [p]
    written word [a] since sequence point [s]?" — the test separating
    unnecessary (conservative / false-sharing) misses from true sharing. *)

type t = {
  values : int array;
  last_writer : int array;  (** -1 when never written *)
  last_seq : int array;
  prev_other_seq : int array;  (** latest write by someone != last_writer *)
  mutable seq : int;
}

val create : words:int -> t

val read : t -> int -> int

val write : t -> proc:int -> int -> int -> unit

(** Latest sequence number of a write to the word by a processor other
    than [proc]; 0 if none ever. *)
val foreign_seq : t -> proc:int -> int -> int

val foreign_write_since : t -> proc:int -> since:int -> int -> bool
