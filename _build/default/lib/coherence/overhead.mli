(** Storage overhead of the coherence schemes — the closed-form comparison
    of the paper's Figure 5 (full-map directory, LimitLess DIR_NB(i), and
    TPI timetags). *)

type params = {
  processors : int;  (** P *)
  line_words : int;  (** L *)
  cache_lines : int;  (** C, per node *)
  memory_blocks : int;  (** M, per node *)
  limitless_i : int;  (** pointers of DIR_NB(i) *)
  timetag_bits : int;
}

(** The paper's headline configuration (P = 1024, i = 10), calibrated so
    the printed totals match Figure 5. *)
val paper_default : params

val of_config : ?memory_bytes_per_node:int -> Hscd_arch.Config.t -> params

type overhead = { cache_sram_bits : int; memory_dram_bits : int }

val bits_to_bytes : int -> int

(** 2 bits of state per cache line; (P+2) bits per memory block. *)
val full_map : params -> overhead

(** 2 bits per cache line; i pointers of ceil(log2 P) bits + 2 state bits
    per block. *)
val limitless : params -> overhead

(** One timetag per cache word; no memory overhead at all. *)
val tpi : params -> overhead

(** The three rows of Figure 5, labelled. *)
val describe : params -> (string * overhead) list
