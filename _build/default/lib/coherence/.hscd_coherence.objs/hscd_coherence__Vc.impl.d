lib/coherence/vc.ml: Array Hashtbl Hscd_arch Hscd_cache Hscd_network Memstate Scheme Wt_common
