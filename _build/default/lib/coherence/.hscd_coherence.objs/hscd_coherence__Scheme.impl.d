lib/coherence/scheme.ml: Hscd_arch Hscd_network
