lib/coherence/overhead.ml: Hscd_arch Printf
