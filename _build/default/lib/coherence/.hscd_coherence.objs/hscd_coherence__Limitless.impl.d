lib/coherence/limitless.ml: Array Hscd_arch Hscd_util Hwdir Scheme
