lib/coherence/memstate.mli:
