lib/coherence/memstate.ml: Array
