lib/coherence/overhead.mli: Hscd_arch
