lib/coherence/inv.ml: Array Hscd_arch Hscd_cache Hscd_network Memstate Scheme Wt_common
