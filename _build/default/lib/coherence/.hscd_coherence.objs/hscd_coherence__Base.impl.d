lib/coherence/base.ml: Array Hscd_arch Hscd_network Memstate Scheme
