lib/coherence/wt_common.ml: Array Bytes Hscd_arch Hscd_cache Hscd_network Hscd_util Memstate Scheme
