lib/coherence/sc.ml: Array Hscd_arch Hscd_cache Memstate Scheme Wt_common
