(** Global memory image plus per-word write-history tracking.

    The values are the sequentially-consistent memory contents (updated in
    trace order, which is race-free outside the serialized critical
    sections), letting every scheme return the exact value a load observes
    and the engine verify it against the golden interpreter.

    The history answers, in O(1) per write and query, the classification
    question "has any processor other than [p] written word [a] since
    sequence number [s]?" — which distinguishes the paper's *unnecessary*
    (compiler-conservative or false-sharing) misses from true sharing
    misses. We keep, per word, the last writer, its sequence number, and
    the latest sequence number written by anyone other than the last
    writer; that is sufficient for any querying processor. *)

type t = {
  values : int array;
  last_writer : int array;  (** -1 when never written *)
  last_seq : int array;
  prev_other_seq : int array;  (** latest write by someone != last_writer *)
  mutable seq : int;
}

let create ~words =
  {
    values = Array.make (max 1 words) 0;
    last_writer = Array.make (max 1 words) (-1);
    last_seq = Array.make (max 1 words) 0;
    prev_other_seq = Array.make (max 1 words) 0;
    seq = 0;
  }

let read t addr = t.values.(addr)

let write t ~proc addr value =
  t.seq <- t.seq + 1;
  t.values.(addr) <- value;
  if t.last_writer.(addr) <> proc then begin
    (* the previous last write (by a different processor, or never) becomes
       the latest other-writer event for the new last writer *)
    if t.last_writer.(addr) >= 0 then t.prev_other_seq.(addr) <- t.last_seq.(addr);
    t.last_writer.(addr) <- proc
  end;
  t.last_seq.(addr) <- t.seq

(** Latest write sequence number of a write to [addr] by a processor other
    than [proc]; 0 if none ever. *)
let foreign_seq t ~proc addr =
  if t.last_writer.(addr) < 0 then 0
  else if t.last_writer.(addr) <> proc then t.last_seq.(addr)
  else t.prev_other_seq.(addr)

(** Has any other processor written [addr] since sequence point [since]? *)
let foreign_write_since t ~proc ~since addr = foreign_seq t ~proc addr > since
