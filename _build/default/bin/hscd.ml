(** hscd — command-line driver for the HSCD coherence reproduction.

    Subcommands:
    - [mark <file|bench>]: run the coherence compiler, print the annotated
      listing and marking census;
    - [sim <file|bench>]: simulate one scheme and print its metrics;
    - [compare <file|bench>]: all four schemes side by side;
    - [experiment <id>|all]: regenerate a paper table/figure;
    - [list]: available benchmarks and experiments. *)

open Cmdliner

let read_program name =
  match Hscd_workloads.Perfect.find name with
  | Some e -> e.build ()
  | None -> (
    match List.assoc_opt name Hscd_workloads.Kernels.all with
    | Some b -> b ()
    | None ->
      if Sys.file_exists name then
        let ic = open_in name in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Hscd_lang.Parser.parse_exn s
      else failwith (Printf.sprintf "%s: not a benchmark, kernel or file" name))

let program_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"PROGRAM" ~doc:"PFL source file, Perfect Club benchmark or kernel name")

let scheme_conv =
  let parse s =
    match String.uppercase_ascii s with
    | "BASE" -> Ok Hscd_sim.Run.Base
    | "SC" -> Ok Hscd_sim.Run.SC
    | "TPI" -> Ok Hscd_sim.Run.TPI
    | "HW" -> Ok Hscd_sim.Run.HW
    | "LIMITLESS" -> Ok Hscd_sim.Run.LimitLESS
    | "VC" -> Ok Hscd_sim.Run.VC
    | "INV" -> Ok Hscd_sim.Run.INV
    | _ -> Error (`Msg "scheme must be BASE, SC, INV, VC, TPI, HW or LimitLESS")
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Hscd_sim.Run.scheme_name k))

let scheme_arg =
  Arg.(value & opt scheme_conv Hscd_sim.Run.TPI & info [ "s"; "scheme" ] ~doc:"Coherence scheme")

let procs_arg =
  Arg.(value & opt int 16 & info [ "p"; "processors" ] ~doc:"Number of processors")

let line_arg =
  Arg.(value & opt int 4 & info [ "line-words" ] ~doc:"Cache line size in words")

let tag_arg = Arg.(value & opt int 8 & info [ "timetag-bits" ] ~doc:"TPI timetag width")

let cfg_of processors line_words timetag_bits =
  { Hscd_arch.Config.default with processors; line_words; timetag_bits }

let print_metrics kind (r : Hscd_sim.Engine.result) =
  let m = r.metrics in
  let module Metrics = Hscd_sim.Metrics in
  Printf.printf "%-9s  cycles %10d  miss %6.2f%%  avg miss lat %7.1f  viol %d  mem %s\n"
    (Hscd_sim.Run.scheme_name kind) r.cycles
    (100.0 *. Metrics.miss_rate m)
    (Metrics.avg_read_miss_latency m)
    m.violations
    (if r.memory_ok then "ok" else "CORRUPT");
  Printf.printf
    "           reads %d writes %d | cold %d repl %d true %d false %d conservative %d reset %d uncached %d\n"
    (Metrics.reads m) (Metrics.writes m)
    (Metrics.class_count m Hscd_coherence.Scheme.Cold)
    (Metrics.class_count m Hscd_coherence.Scheme.Replacement)
    (Metrics.class_count m Hscd_coherence.Scheme.True_sharing)
    (Metrics.class_count m Hscd_coherence.Scheme.False_sharing)
    (Metrics.class_count m Hscd_coherence.Scheme.Conservative)
    (Metrics.class_count m Hscd_coherence.Scheme.Reset_inv)
    (Metrics.class_count m Hscd_coherence.Scheme.Uncached);
  Printf.printf "           traffic r/w/coh/ctl %d/%d/%d/%d words, net load %.3f\n"
    m.traffic.reads m.traffic.writes m.traffic.coherence m.traffic.control r.network_load

let mark_cmd =
  let run name =
    let prog = read_program name in
    let listing, census = Core.mark prog in
    print_endline listing;
    Hscd_compiler.Report.print_census census
  in
  Cmd.v (Cmd.info "mark" ~doc:"Run the coherence compiler and show the marked listing")
    Term.(const run $ program_arg)

let sim_cmd =
  let run name scheme procs line tag =
    let cfg = cfg_of procs line tag in
    let prog = read_program name in
    let _, r = Hscd_sim.Run.run_source ~cfg scheme prog in
    print_metrics scheme r
  in
  Cmd.v (Cmd.info "sim" ~doc:"Simulate one coherence scheme")
    Term.(const run $ program_arg $ scheme_arg $ procs_arg $ line_arg $ tag_arg)

let compare_cmd =
  let run name procs line tag =
    let cfg = cfg_of procs line tag in
    let prog = read_program name in
    let c, results = Hscd_sim.Run.compare ~cfg ~schemes:Hscd_sim.Run.extended_schemes prog in
    Printf.printf "epochs %d, events %d\n" (Hscd_sim.Trace.n_epochs c.trace) c.trace.total_events;
    List.iter (fun (r : Hscd_sim.Run.comparison) -> print_metrics r.kind r.result) results
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare all schemes on the same trace")
    Term.(const run $ program_arg $ procs_arg $ line_arg $ tag_arg)

let experiment_cmd =
  let run id small =
    match id with
    | "all" ->
      List.iter (Hscd_experiments.Experiments.run_and_print ~small) Hscd_experiments.Experiments.all
    | _ -> (
      match Hscd_experiments.Experiments.find id with
      | Some e -> Hscd_experiments.Experiments.run_and_print ~small e
      | None ->
        Printf.eprintf "unknown experiment %s; try 'hscd list'\n" id;
        exit 1)
  in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let small_arg = Arg.(value & flag & info [ "small" ] ~doc:"Use test-scale benchmark sizes") in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a paper table/figure (or 'all')")
    Term.(const run $ id_arg $ small_arg)

let trace_cmd =
  let run name out =
    let prog = read_program name in
    let c = Hscd_sim.Run.compile prog in
    Hscd_sim.Trace_io.save out c.Hscd_sim.Run.trace;
    Printf.printf "wrote %s: %d epochs, %d events\n" out
      (Hscd_sim.Trace.n_epochs c.trace) c.trace.total_events
  in
  let out_arg =
    Arg.(value & opt string "trace.txt" & info [ "o"; "output" ] ~doc:"Output file")
  in
  Cmd.v (Cmd.info "trace" ~doc:"Compile a program and dump its event trace to a file")
    Term.(const run $ program_arg $ out_arg)

let replay_cmd =
  let run path scheme procs line tag =
    let cfg = cfg_of procs line tag in
    let trace = Hscd_sim.Trace_io.load path in
    let r = Hscd_sim.Run.simulate ~cfg scheme trace in
    print_metrics scheme r
  in
  let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE") in
  Cmd.v (Cmd.info "replay" ~doc:"Simulate a previously dumped trace file")
    Term.(const run $ path_arg $ scheme_arg $ procs_arg $ line_arg $ tag_arg)

let list_cmd =
  let run () =
    print_endline "Perfect Club benchmark models:";
    List.iter
      (fun (e : Hscd_workloads.Perfect.entry) -> Printf.printf "  %-8s %s\n" e.name e.description)
      Hscd_workloads.Perfect.all;
    print_endline "Microkernels:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Hscd_workloads.Kernels.all;
    print_endline "Experiments:";
    List.iter
      (fun (e : Hscd_experiments.Experiments.t) ->
        Printf.printf "  %-10s %s (%s)\n" e.id e.title e.paper_ref)
      Hscd_experiments.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks, kernels and experiments") Term.(const run $ const ())

let () =
  let info = Cmd.info "hscd" ~version:"1.0.0" ~doc:"HSCD cache coherence reproduction (Choi & Yew, ISCA'96)" in
  exit (Cmd.eval (Cmd.group info [ mark_cmd; sim_cmd; compare_cmd; experiment_cmd; trace_cmd; replay_cmd; list_cmd ]))
