(** Tests of the domain pool and the multicore experiment runner's
    determinism guarantee: running the same work on 1 or N domains must
    produce bit-identical results — same [Metrics.t], same cycles, same
    violations — because each simulation owns its machine state and PRNG. *)

module Pool = Hscd_util.Pool
module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Engine = Hscd_sim.Engine
module Fuzz = Hscd_check.Fuzz
module Gen = Hscd_check.Gen
module Oracle = Hscd_check.Oracle
module Prng = Hscd_util.Prng

(* --- Pool --- *)

let test_pool_matches_list_map () =
  let xs = List.init 57 (fun i -> i - 7) in
  let f x = (x * x) - (3 * x) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.map f xs) (Pool.map_exn ~jobs f xs))
    [ 1; 2; 4; 9 ]

let test_pool_preserves_order_under_skew () =
  (* uneven work: later items finish first on a real multicore; order of
     the result list must still follow the input *)
  let xs = List.init 16 (fun i -> i) in
  let f i =
    let acc = ref 0 in
    for k = 0 to (16 - i) * 10_000 do
      acc := !acc + k
    done;
    ignore !acc;
    i * 2
  in
  Alcotest.(check (list int)) "ordered" (List.map f xs) (Pool.map_exn ~jobs:4 f xs)

let test_pool_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map_exn ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map_exn ~jobs:4 (fun x -> x * 3) [ 3 ])

exception Boom of int

let test_pool_propagates_exception () =
  Alcotest.check_raises "raises" (Boom 5) (fun () ->
      ignore
        (Pool.map_exn ~jobs:3 (fun x -> if x = 5 then raise (Boom 5) else x) (List.init 10 Fun.id)))

let test_pool_map_surfaces_all_outcomes () =
  (* unlike map_exn, a failing task no longer discards its siblings *)
  let outcomes =
    Pool.map ~jobs:3 (fun x -> if x mod 4 = 1 then raise (Boom x) else x * 10) (List.init 10 Fun.id)
  in
  List.iteri
    (fun x oc ->
      if x mod 4 = 1 then
        match oc with
        | Error (e : Hscd_util.Hscd_error.t) ->
          Alcotest.(check bool) "worker kind" true (e.kind = Hscd_util.Hscd_error.Worker)
        | Ok _ -> Alcotest.fail "expected a typed error"
      else Alcotest.(check int) "sibling survives" (x * 10) (match oc with Ok v -> v | Error _ -> -1))
    outcomes

let test_default_jobs_env () =
  let old = Sys.getenv_opt "HSCD_JOBS" in
  Unix.putenv "HSCD_JOBS" "3";
  Alcotest.(check int) "env override" 3 (Pool.default_jobs ());
  Unix.putenv "HSCD_JOBS" "not-a-number";
  Alcotest.(check bool) "garbage falls back to >= 1" true (Pool.default_jobs () >= 1);
  Unix.putenv "HSCD_JOBS" (match old with Some v -> v | None -> "")

(* --- determinism: Run.compare at jobs=1 vs jobs=4 --- *)

let check_comparisons_identical name (a : Run.comparison list) (b : Run.comparison list) =
  Alcotest.(check int) (name ^ ": same count") (List.length a) (List.length b);
  List.iter2
    (fun (x : Run.comparison) (y : Run.comparison) ->
      let n = name ^ "/" ^ Run.scheme_name x.kind in
      Alcotest.(check bool) (n ^ ": same scheme") true (x.kind = y.kind);
      Alcotest.(check int) (n ^ ": cycles") x.result.Engine.cycles y.result.Engine.cycles;
      Alcotest.(check int)
        (n ^ ": violations") x.result.Engine.metrics.violations y.result.Engine.metrics.violations;
      (* the full structural check: metrics arrays, latency accumulator,
         traffic, scheme stats, memory verdict, network load *)
      Alcotest.(check bool) (n ^ ": bit-identical result") true (x.result = y.result))
    a b

let test_compare_deterministic_across_jobs () =
  (* a Perfect Club workload at test scale, all four schemes *)
  let entry = List.hd Hscd_workloads.Perfect.all in
  let prog = entry.Hscd_workloads.Perfect.build_small () in
  let cfg = { Config.default with processors = 8 } in
  let _, seq = Run.compare ~cfg ~jobs:1 prog in
  let _, par = Run.compare ~cfg ~jobs:4 prog in
  check_comparisons_identical entry.Hscd_workloads.Perfect.name seq par

let test_compare_deterministic_extended_schemes () =
  let prog = Hscd_workloads.Kernels.jacobi1d ~n:64 ~iters:2 () in
  let cfg = { Config.default with processors = 4 } in
  let _, seq = Run.compare ~cfg ~schemes:Run.extended_schemes ~jobs:1 prog in
  let _, par = Run.compare ~cfg ~schemes:Run.extended_schemes ~jobs:3 prog in
  check_comparisons_identical "jacobi-extended" seq par

(* --- determinism: the fuzz oracle's cross-scheme check --- *)

let test_oracle_deterministic_across_jobs () =
  (* a corpus-preset trace through the oracle on 1 vs 4 domains *)
  List.iter
    (fun (name, params) ->
      let prng = Prng.of_int (Fuzz.corpus_seed + Hashtbl.hash name) in
      let trace = Gen.generate prng params in
      let o1 = Oracle.run ~jobs:1 Fuzz.corpus_cfg trace in
      let o4 = Oracle.run ~jobs:4 Fuzz.corpus_cfg trace in
      Alcotest.(check bool) (name ^ ": verdict") (Oracle.ok o1) (Oracle.ok o4);
      Alcotest.(check bool) (name ^ ": agree flag") o1.Oracle.memories_agree o4.Oracle.memories_agree;
      List.iter2
        (fun (a : Oracle.scheme_report) (b : Oracle.scheme_report) ->
          Alcotest.(check bool)
            (name ^ "/" ^ Run.scheme_name a.kind ^ ": bit-identical report")
            true
            (a.result = b.result && a.monitor = b.monitor && a.boundaries_ok = b.boundaries_ok))
        o1.Oracle.reports o4.Oracle.reports)
    (match Fuzz.corpus_presets with p1 :: p2 :: _ -> [ p1; p2 ] | l -> l)

let test_fuzz_deterministic_across_jobs () =
  let r1 = Fuzz.fuzz ~shrink:false ~jobs:1 ~seed:11 ~count:8 () in
  let r4 = Fuzz.fuzz ~shrink:false ~jobs:4 ~seed:11 ~count:8 () in
  Alcotest.(check int) "iterations" r1.Fuzz.iterations r4.Fuzz.iterations;
  Alcotest.(check int) "events" r1.Fuzz.total_events r4.Fuzz.total_events;
  Alcotest.(check int) "failures" (List.length r1.Fuzz.failures) (List.length r4.Fuzz.failures)

(* --- determinism: the experiment runner's simulation grid --- *)

let test_run_all_deterministic_across_jobs () =
  let module Common = Hscd_experiments.Common in
  let cfg1 = { Config.default with processors = 8; timetag_bits = 6 } in
  let seq = Common.run_all ~cfg:cfg1 ~schemes:[ Run.TPI; Run.HW ] ~small:true ~jobs:1 () in
  (* flush the memo cache so the jobs=4 run really re-simulates *)
  Hashtbl.reset Common.cache;
  let par = Common.run_all ~cfg:cfg1 ~schemes:[ Run.TPI; Run.HW ] ~small:true ~jobs:4 () in
  List.iter2
    (fun (a : Common.bench_result) (b : Common.bench_result) ->
      Alcotest.(check string) "bench" a.bench b.bench;
      List.iter2
        (fun (ka, (ra : Engine.result)) (kb, (rb : Engine.result)) ->
          Alcotest.(check bool) (a.bench ^ ": scheme") true (ka = kb);
          Alcotest.(check bool)
            (a.bench ^ "/" ^ Run.scheme_name ka ^ ": bit-identical")
            true (ra = rb))
        a.by_scheme b.by_scheme)
    seq par

let suite =
  [
    Alcotest.test_case "pool matches List.map" `Quick test_pool_matches_list_map;
    Alcotest.test_case "pool preserves order" `Quick test_pool_preserves_order_under_skew;
    Alcotest.test_case "pool empty/singleton" `Quick test_pool_empty_and_singleton;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_propagates_exception;
    Alcotest.test_case "pool map surfaces all outcomes" `Quick test_pool_map_surfaces_all_outcomes;
    Alcotest.test_case "HSCD_JOBS env override" `Quick test_default_jobs_env;
    Alcotest.test_case "compare jobs=1 = jobs=4" `Quick test_compare_deterministic_across_jobs;
    Alcotest.test_case "compare extended schemes" `Quick test_compare_deterministic_extended_schemes;
    Alcotest.test_case "oracle jobs=1 = jobs=4" `Quick test_oracle_deterministic_across_jobs;
    Alcotest.test_case "fuzz jobs=1 = jobs=4" `Quick test_fuzz_deterministic_across_jobs;
    Alcotest.test_case "run_all jobs=1 = jobs=4" `Quick test_run_all_deterministic_across_jobs;
  ]
