(** Sharded replay: the bit-identity gate. [Run.simulate_packed_sharded]
    must return the same result at every shard count — the partition can
    decide only *where* an access is replayed, never what the run
    computes. Against the sequential engine the contract is weaker,
    because the sharded engine replays each slice in trace (slot) order
    while the engine interleaves by clock: on fixtures where the
    difference is unobservable (no contended lines whose scheme latency
    or classification depends on the interleaving) the results are fully
    identical, and that is asserted per curated (fixture, scheme) pair
    below; on adversarial corpus traces only the order-free verdicts
    (final-memory agreement) are pinned. Also covers the parallel
    (domain-team) path against the inline path, the monomorphized
    BASE/TPI loops against the generic one, and the typed usage errors. *)

module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Trace_io = Hscd_sim.Trace_io
module Err = Hscd_util.Hscd_error
module Kernels = Hscd_workloads.Kernels

let shard_counts = [ 2; 3; 4; 8 ]

(* All comparisons run the inline (sequential) sharded path: it is
   state-for-state identical to the domain-team path by construction, and
   the CI box may have a single core. The team path gets its own test. *)
let check_invariance ?(cfg = Config.default) ?(schemes = Run.extended_schemes) name packed =
  List.iter
    (fun kind ->
      let reference = Run.simulate_packed_sharded ~cfg ~parallel:false ~shards:1 kind packed in
      List.iter
        (fun shards ->
          let r = Run.simulate_packed_sharded ~cfg ~parallel:false ~shards kind packed in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: shards=%d = shards=1" name (Run.scheme_name kind) shards)
            true (r = reference))
        shard_counts)
    schemes

let check_matches_engine ?(cfg = Config.default) ~schemes name packed =
  List.iter
    (fun kind ->
      let sharded = Run.simulate_packed_sharded ~cfg ~parallel:false ~shards:1 kind packed in
      let engine = Run.simulate_packed ~cfg kind packed in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s: sharded(1) = engine" name (Run.scheme_name kind))
        true (sharded = engine))
    schemes

(* Write-through schemes classify per epoch, not per interleaving, so the
   full result survives reordering on uncontended fixtures; HW/LimitLESS
   invalidation latency counts sharers at access time and is pinned only
   where sharing patterns make the order unobservable. *)
let order_free_schemes = [ Run.Base; Run.SC; Run.INV; Run.VC; Run.TPI ]

let kernel_fixtures () =
  [
    ("jacobi1d", Run.compile ~cache:false (Kernels.jacobi1d ~n:64 ~iters:3 ()));
    ("reduction", Run.compile ~cache:false (Kernels.reduction ~n:48 ()));
    ("matmul", Run.compile ~cache:false (Kernels.matmul ~n:10 ()));
  ]

let test_invariance_kernels () =
  List.iter
    (fun (name, c) -> check_invariance name c.Run.packed_trace)
    (kernel_fixtures ());
  let engine_pairs =
    [ ("jacobi1d", Kernels.jacobi1d ~n:64 ~iters:3 (), order_free_schemes);
      ("reduction", Kernels.reduction ~n:48 (), order_free_schemes);
      ("matmul", Kernels.matmul ~n:10 (), [ Run.Base; Run.VC ]) ]
  in
  List.iter
    (fun (name, prog, schemes) ->
      let c = Run.compile ~cache:false prog in
      check_matches_engine ~schemes name c.Run.packed_trace)
    engine_pairs

let test_invariance_many_processors () =
  let cfg = { Config.default with processors = 32 } in
  let c = Run.compile ~cfg ~cache:false (Kernels.boundary_exchange ~n:128 ~iters:2 ()) in
  check_invariance ~cfg "boundary@32" c.Run.packed_trace;
  (* symmetric sharing: every scheme, directory ones included, is fully
     pinned to the sequential engine here *)
  check_matches_engine ~cfg ~schemes:Run.extended_schemes "boundary@32" c.Run.packed_trace

let corpus_files () =
  (* cwd is test/ under `dune runtest`, the workspace root under `dune exec` *)
  let dir = if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (files <> []);
  List.map (fun f -> (f, Trace_io.load (Filename.concat dir f))) files

let test_invariance_corpus () =
  (* the full fuzz + model-checker corpus, every scheme: shard counts must
     be unobservable; against the engine only the order-free final-memory
     verdict is pinned (these traces are adversarial interleavings) *)
  List.iter
    (fun (f, trace) ->
      let packed = Trace.pack trace in
      check_invariance f packed;
      List.iter
        (fun kind ->
          let a = Run.simulate_packed_sharded ~parallel:false ~shards:1 kind packed in
          let b = Run.simulate_packed kind packed in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: memory verdict = engine" f (Run.scheme_name kind))
            b.memory_ok a.memory_ok)
        Run.extended_schemes)
    (corpus_files ())

let test_invariance_perfect () =
  (* acceptance bar: every Perfect Club model (test scale), all schemes
     shard-invariant; BASE (stateless per access) also pinned to the
     engine on each *)
  List.iter
    (fun (e : Hscd_workloads.Perfect.entry) ->
      let c = Run.compile ~cache:false (e.build_small ()) in
      check_invariance e.name c.Run.packed_trace;
      check_matches_engine ~schemes:[ Run.Base ] e.name c.Run.packed_trace)
    Hscd_workloads.Perfect.all

let test_parallel_team_matches_inline () =
  (* the domain-team path against the inline path: identical state
     evolution, so identical results — on any number of cores *)
  let c = Run.compile ~cache:false (Kernels.jacobi1d ~n:64 ~iters:2 ()) in
  let packed = c.Run.packed_trace in
  List.iter
    (fun kind ->
      let inline = Run.simulate_packed_sharded ~parallel:false ~shards:4 kind packed in
      let team = Run.simulate_packed_sharded ~parallel:true ~shards:4 kind packed in
      Alcotest.(check bool)
        (Run.scheme_name kind ^ ": team = inline")
        true (team = inline))
    Run.extended_schemes

let test_mapped_sharded () =
  (* sharded replay straight off a memory-mapped binary trace *)
  let c = Run.compile ~cache:false (Kernels.reduction ~n:32 ()) in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "hscd_sharded_map.hscdtrc" in
  Trace_io.write_packed path c.Run.packed_trace;
  let m = Trace_io.map_packed path in
  let expect = Run.simulate_packed_sharded ~parallel:false ~shards:4 Run.SC c.Run.packed_trace in
  let got = Run.simulate_mapped_sharded ~parallel:false ~shards:4 Run.SC m in
  Sys.remove path;
  Alcotest.(check bool) "mapped sharded = in-memory sharded" true (got = expect)

let expect_usage name f =
  match f () with
  | exception Err.Error { Err.kind = Err.Usage; _ } -> ()
  | exception e -> Alcotest.fail (name ^ ": expected a typed Usage error, got " ^ Printexc.to_string e)
  | _ -> Alcotest.fail (name ^ ": expected a typed Usage error")

let test_typed_usage_errors () =
  let c = Run.compile ~cache:false (Kernels.jacobi1d ~n:16 ~iters:1 ()) in
  let packed = c.Run.packed_trace in
  expect_usage "shards=0" (fun () ->
      Run.simulate_packed_sharded ~parallel:false ~shards:0 Run.SC packed);
  expect_usage "dynamic scheduling" (fun () ->
      let cfg = { Config.default with scheduling = Config.Dynamic } in
      Run.simulate_packed_sharded ~cfg ~parallel:false ~shards:2 Run.SC packed);
  (* migration requires dynamic scheduling (Config.validate enforces the
     combination), so the migration gate is reached with both set *)
  expect_usage "dynamic + migration" (fun () ->
      let cfg =
        { Config.default with scheduling = Config.Dynamic; migration_rate = 0.25 }
      in
      Run.simulate_packed_sharded ~cfg ~parallel:false ~shards:2 Run.SC packed)

(* The lazy two-phase reset is the default; the eager flash-invalidate
   scan survives behind [tpi_eager_reset] as a differential oracle. With
   3-bit tags (phase = 4 epochs) a jacobi run crosses several resets, so
   the whole Engine.result — metrics, classes, final-memory verdict —
   must be bit-identical between the two models, through the sequential
   engine and at every shard count. *)
let test_tpi_lazy_matches_eager_engine () =
  let cfg = Config.validate { Config.default with timetag_bits = 3 } in
  let eager_cfg = { cfg with Config.tpi_eager_reset = true } in
  let c = Run.compile ~cfg ~cache:false (Kernels.jacobi1d ~n:64 ~iters:6 ()) in
  let packed = c.Run.packed_trace in
  let lz = Run.simulate_packed ~cfg Run.TPI packed in
  let eg = Run.simulate_packed ~cfg:eager_cfg Run.TPI packed in
  Alcotest.(check bool) "resets fired" true
    (lz.Hscd_sim.Engine.metrics.Hscd_sim.Metrics.scheme_stats.Hscd_coherence.Scheme.two_phase_resets
    > 0);
  Alcotest.(check bool) "engine: lazy = eager" true (lz = eg);
  List.iter
    (fun shards ->
      let l = Run.simulate_packed_sharded ~cfg ~parallel:false ~shards Run.TPI packed in
      let e = Run.simulate_packed_sharded ~cfg:eager_cfg ~parallel:false ~shards Run.TPI packed in
      Alcotest.(check bool) (Printf.sprintf "shards=%d: lazy = eager" shards) true (l = e))
    [ 1; 2; 4 ]

let suite =
  [
    Alcotest.test_case "invariance: kernels, all schemes" `Quick test_invariance_kernels;
    Alcotest.test_case "invariance: 32 processors" `Quick test_invariance_many_processors;
    Alcotest.test_case "invariance: fuzz + mc corpus" `Quick test_invariance_corpus;
    Alcotest.test_case "invariance: Perfect Club models" `Slow test_invariance_perfect;
    Alcotest.test_case "domain team = inline" `Quick test_parallel_team_matches_inline;
    Alcotest.test_case "mapped trace, sharded" `Quick test_mapped_sharded;
    Alcotest.test_case "typed usage errors" `Quick test_typed_usage_errors;
    Alcotest.test_case "TPI lazy reset = eager oracle, engine + all shard counts" `Quick
      test_tpi_lazy_matches_eager_engine;
  ]
