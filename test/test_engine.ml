(** Tests of the timing engine and the end-to-end Run pipeline: barriers,
    lock ordering, scheduling policies, and — crucially — that the golden
    value checker actually catches unsafe compiler marks. *)

module Ast = Hscd_lang.Ast
module Sema = Hscd_lang.Sema
module B = Hscd_lang.Builder
module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Metrics = Hscd_sim.Metrics
module Engine = Hscd_sim.Engine

let cfg4 = { Config.default with processors = 4 }

let stencil = Hscd_workloads.Kernels.jacobi1d ~n:64 ~iters:3 ()

let test_all_schemes_coherent () =
  let _, results = Run.compare ~cfg:cfg4 stencil in
  List.iter
    (fun (r : Run.comparison) ->
      Alcotest.(check int)
        (Run.scheme_name r.kind ^ " violations") 0 r.result.metrics.violations;
      Alcotest.(check bool) (Run.scheme_name r.kind ^ " memory") true r.result.memory_ok)
    results

let test_base_miss_rate_is_total () =
  let _, r = Run.run_source ~cfg:cfg4 Run.Base stencil in
  Alcotest.(check (float 1e-9)) "all remote" 1.0 (Metrics.miss_rate r.metrics)

let test_trace_shape () =
  let c = Run.compile ~cfg:cfg4 stencil in
  Alcotest.(check int) "epochs" (2 * 3 * 2 + 3) (Trace.packed_n_epochs c.packed_trace);
  Alcotest.(check int) "parallel epochs" 7 (Trace.packed_n_parallel_epochs c.packed_trace);
  let reads, writes = Trace.packed_access_counts c.packed_trace in
  Alcotest.(check bool) "counts positive" true (reads > 0 && writes > 0)

let test_unsafe_mark_is_caught () =
  (* hand-mark a stale read with an over-generous distance: the stencil
     reads a[i] written two boundaries ago but we claim d=9 after caching
     it before the write; the checker must flag violations under TPI *)
  let p =
    B.program
      [ B.array "a" [ 32 ]; B.array "b" [ 32 ] ]
      [
        B.proc "main" []
          [
            (* epoch P1: cache a[i] everywhere (reads) *)
            B.doall "i" (B.int 0) (B.int 31)
              [ B.s1 "b" (B.var "i") (Ast.Aref ("a", [ B.var "i" ], Ast.Normal_read)) ];
            (* epoch P2: another processor rewrites a *)
            B.doall "i" (B.int 0) (B.int 31)
              [ Ast.Store ("a", [ B.(int 31 %- var "i") ], B.int 7, Ast.Normal_write) ];
            (* epoch P3: read with a deliberately unsafe Time-Read(9) *)
            B.doall "i" (B.int 0) (B.int 31)
              [ B.s1 "b" (B.var "i") (Ast.Aref ("a", [ B.var "i" ], Ast.Time_read 9)) ];
          ];
      ]
  in
  let p = Sema.check_exn p in
  let trace = Trace.of_program p in
  let r = Run.simulate ~cfg:cfg4 Run.TPI trace in
  Alcotest.(check bool) "violations detected" true (r.metrics.violations > 0)

let test_safe_manual_marks_pass () =
  (* same program with the correct d=1 mark: no violations *)
  let p =
    B.program
      [ B.array "a" [ 32 ]; B.array "b" [ 32 ] ]
      [
        B.proc "main" []
          [
            B.doall "i" (B.int 0) (B.int 31)
              [ B.s1 "b" (B.var "i") (Ast.Aref ("a", [ B.var "i" ], Ast.Normal_read)) ];
            B.doall "i" (B.int 0) (B.int 31)
              [ Ast.Store ("a", [ B.(int 31 %- var "i") ], B.int 7, Ast.Normal_write) ];
            B.doall "i" (B.int 0) (B.int 31)
              [ B.s1 "b" (B.var "i") (Ast.Aref ("a", [ B.var "i" ], Ast.Time_read 1)) ];
          ];
      ]
  in
  let p = Sema.check_exn p in
  let r = Run.simulate ~cfg:cfg4 Run.TPI (Trace.of_program p) in
  Alcotest.(check int) "no violations" 0 r.metrics.violations

let test_scheduling_policies_coherent () =
  List.iter
    (fun scheduling ->
      let cfg = { cfg4 with scheduling } in
      let c, results = Run.compare ~cfg stencil in
      ignore c;
      List.iter
        (fun (r : Run.comparison) ->
          Alcotest.(check int)
            (Config.scheduling_name scheduling ^ "/" ^ Run.scheme_name r.kind)
            0 r.result.metrics.violations)
        results)
    [ Config.Block; Config.Cyclic; Config.Dynamic ]

let test_dynamic_slower_or_equal_misses () =
  (* self-scheduling destroys owner alignment: TPI misses cannot decrease *)
  let block = Run.compare ~cfg:{ cfg4 with scheduling = Config.Block } stencil in
  let dyn = Run.compare ~cfg:{ cfg4 with scheduling = Config.Dynamic } stencil in
  let miss results kind =
    Metrics.miss_rate
      (List.find (fun (r : Run.comparison) -> r.kind = kind) (snd results)).result.metrics
  in
  Alcotest.(check bool) "dynamic >= block for TPI" true
    (miss dyn Run.TPI >= miss block Run.TPI)

let test_locks_serialize () =
  let p = Hscd_workloads.Kernels.reduction ~n:32 () in
  let c, results = Run.compare ~cfg:cfg4 p in
  ignore c;
  List.iter
    (fun (r : Run.comparison) ->
      Alcotest.(check int) (Run.scheme_name r.kind ^ " coherent") 0 r.result.metrics.violations;
      Alcotest.(check bool) (Run.scheme_name r.kind ^ " memory") true r.result.memory_ok;
      Alcotest.(check int) "32 lock acquisitions" 32 r.result.metrics.lock_acquires)
    results

let test_barrier_accounting () =
  let c = Run.compile ~cfg:cfg4 stencil in
  let r = Run.simulate_packed ~cfg:cfg4 Run.TPI c.packed_trace in
  let epochs = Trace.packed_n_epochs c.packed_trace in
  Alcotest.(check int) "one barrier per epoch" epochs r.metrics.barriers;
  Alcotest.(check bool) "cycles at least barrier cost" true
    (r.cycles >= epochs * cfg4.barrier_cycles)

let test_more_processors_not_slower () =
  let run p_count =
    let cfg = { Config.default with processors = p_count } in
    (snd (Run.run_source ~cfg Run.TPI (Hscd_workloads.Kernels.jacobi1d ~n:256 ~iters:4 ()))).cycles
  in
  let c1 = run 1 and c16 = run 16 in
  Alcotest.(check bool) "parallel speedup" true (c16 < c1)

let test_timetag_width_monotone () =
  (* smaller tags cannot reduce TPI misses *)
  let miss bits =
    let cfg = { Config.default with timetag_bits = bits } in
    let _, r = Run.run_source ~cfg Run.TPI (Hscd_workloads.Kernels.jacobi1d ~n:128 ~iters:20 ()) in
    Alcotest.(check int) "coherent" 0 r.metrics.violations;
    Metrics.read_misses r.metrics
  in
  let m2 = miss 2 and m8 = miss 8 in
  Alcotest.(check bool) "2-bit tags miss at least as much" true (m2 >= m8)

(* --- ready-queue behavior: hand-built traces straight into the engine --- *)

module Event = Hscd_arch.Event

(* a trace with the given parallel-epoch tasks over one 8-word array;
   [golden] lists (addr, value) pairs expected in final memory *)
let hand_trace ?(golden = []) tasks =
  let layout = Hscd_lang.Shape.layout ~line_words:4 [ B.array "a" [ 8 ] ] in
  let golden_memory = Array.make layout.Hscd_lang.Shape.total_words 0 in
  List.iter (fun (addr, v) -> golden_memory.(addr) <- v) golden;
  let tasks = Array.of_list (List.mapi (fun iter events -> { Trace.iter; events }) tasks) in
  let total_events = Array.fold_left (fun a (t : Trace.task) -> a + Array.length t.events) 0 tasks in
  {
    Trace.epochs = [| { Trace.kind = Trace.Parallel { lo = 0; hi = Array.length tasks - 1 }; tasks } |];
    layout;
    golden_memory;
    total_events;
  }

let test_ticket_block_unblock () =
  (* task 0 (proc 0) holds ticket 0 but only reaches its lock at t=100;
     task 1 (proc 1) reaches its lock (ticket 1) at t=0 and must park off
     the ready queue until proc 0's unlock re-enqueues it *)
  let trace =
    hand_trace
      [
        [| Event.Compute 100; Event.Lock; Event.Unlock |];
        [| Event.Lock; Event.Unlock; Event.Compute 5 |];
      ]
  in
  let r = Run.simulate ~cfg:cfg4 Run.TPI trace in
  Alcotest.(check int) "both locks granted" 2 r.metrics.lock_acquires;
  Alcotest.(check bool) "proc 1 waited" true (r.metrics.lock_wait_cycles >= 100);
  Alcotest.(check int) "no violations" 0 r.metrics.violations;
  Alcotest.(check bool) "memory ok" true r.memory_ok;
  (* serialization: compute(100) + two lock acquisitions + barrier *)
  Alcotest.(check bool) "cycles cover the serialized locks" true
    (r.cycles >= 100 + (2 * cfg4.lock_cycles) + cfg4.barrier_cycles)

let test_empty_task_skip () =
  (* empty tasks interleaved with real ones: the refill path must skip
     them without scheduling phantom events *)
  let trace =
    hand_trace
      ~golden:[ (0, 7); (4, 9) ]
      [
        [||];
        [| Event.Write { addr = 0; mark = Event.Normal_write; value = 7; array = "a" } |];
        [||];
        [| Event.Write { addr = 4; mark = Event.Normal_write; value = 9; array = "a" } |];
      ]
  in
  List.iter
    (fun kind ->
      let r = Run.simulate ~cfg:cfg4 kind trace in
      Alcotest.(check bool) (Run.scheme_name kind ^ " memory") true r.memory_ok;
      Alcotest.(check int) (Run.scheme_name kind ^ " violations") 0 r.metrics.violations;
      Alcotest.(check int) (Run.scheme_name kind ^ " writes") 2 (Metrics.writes r.metrics))
    Run.all_schemes

let test_empty_tasks_dynamic () =
  let trace = hand_trace ~golden:[ (0, 3) ]
      [ [||]; [||]; [||];
        [| Event.Write { addr = 0; mark = Event.Normal_write; value = 3; array = "a" } |] ]
  in
  let cfg = { cfg4 with scheduling = Config.Dynamic } in
  let r = Run.simulate ~cfg Run.HW trace in
  Alcotest.(check bool) "memory ok" true r.memory_ok;
  Alcotest.(check int) "one write" 1 (Metrics.writes r.metrics)

let test_migration_reenqueue () =
  (* migration_rate = 1: every eligible dynamic task truncates and its
     tail goes back to the shared queue for re-enqueue on another node *)
  let cfg = { cfg4 with scheduling = Config.Dynamic; migration_rate = 1.0 } in
  let _, r = Run.run_source ~cfg Run.TPI (Hscd_workloads.Kernels.jacobi1d ~n:64 ~iters:2 ()) in
  Alcotest.(check bool) "tasks migrated" true (r.metrics.migrations > 0);
  Alcotest.(check int) "still coherent" 0 r.metrics.violations;
  Alcotest.(check bool) "memory ok" true r.memory_ok

let suite =
  [
    Alcotest.test_case "all schemes coherent" `Quick test_all_schemes_coherent;
    Alcotest.test_case "BASE misses everything" `Quick test_base_miss_rate_is_total;
    Alcotest.test_case "trace shape" `Quick test_trace_shape;
    Alcotest.test_case "unsafe mark caught" `Quick test_unsafe_mark_is_caught;
    Alcotest.test_case "safe manual marks pass" `Quick test_safe_manual_marks_pass;
    Alcotest.test_case "scheduling policies coherent" `Quick test_scheduling_policies_coherent;
    Alcotest.test_case "dynamic loses alignment" `Quick test_dynamic_slower_or_equal_misses;
    Alcotest.test_case "locks serialize" `Quick test_locks_serialize;
    Alcotest.test_case "barrier accounting" `Quick test_barrier_accounting;
    Alcotest.test_case "parallel speedup" `Quick test_more_processors_not_slower;
    Alcotest.test_case "timetag width monotone" `Quick test_timetag_width_monotone;
    Alcotest.test_case "ready queue: ticket block/unblock" `Quick test_ticket_block_unblock;
    Alcotest.test_case "ready queue: empty tasks skipped" `Quick test_empty_task_skip;
    Alcotest.test_case "ready queue: empty tasks (dynamic)" `Quick test_empty_tasks_dynamic;
    Alcotest.test_case "ready queue: migration re-enqueue" `Quick test_migration_reenqueue;
  ]
