(** Unit tests of the robustness layer: the typed error module, the
    checksummed checkpoint journal, and the supervised pool (retry,
    timeout, cancellation, degradation). *)

module Err = Hscd_util.Hscd_error
module Pool = Hscd_util.Pool
module Journal = Hscd_util.Journal

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* --- Hscd_error --- *)

let test_error_classification () =
  Alcotest.(check bool) "Error passes through" true
    ((Err.of_exn (Err.Error (Err.make Err.Corrupt "x"))).kind = Err.Corrupt);
  Alcotest.(check bool) "Failure takes default" true
    ((Err.of_exn ~default:Err.Parse (Failure "boom")).kind = Err.Parse);
  Alcotest.(check bool) "Sys_error is Io" true
    ((Err.of_exn (Sys_error "disk on fire")).kind = Err.Io);
  Alcotest.(check bool) "Invalid_argument is Internal" true
    ((Err.of_exn (Invalid_argument "idx")).kind = Err.Internal)

let test_error_policy () =
  let k kind = Err.make kind "m" in
  List.iter
    (fun (kind, code, retry) ->
      Alcotest.(check int) (Err.kind_name kind ^ " exit code") code (Err.exit_code (k kind));
      Alcotest.(check bool) (Err.kind_name kind ^ " transient") retry (Err.transient (k kind)))
    [
      (Err.Usage, 2, false);
      (Err.Parse, 1, false);
      (Err.Io, 1, true);
      (Err.Corrupt, 1, false);
      (Err.Worker, 1, true);
      (Err.Timeout, 1, true);
      (Err.Check, 1, false);
      (Err.Internal, 3, false);
    ]

let test_error_context () =
  let e = Err.make Err.Corrupt "bad record" |> Err.add_context "cell TRFD/TPI" |> Err.add_context "sweep" in
  Alcotest.(check string) "rendered" "corrupt: bad record (in cell TRFD/TPI, in sweep)"
    (Err.to_string e);
  match Err.guard ~context:"outer" (fun () -> Err.fail Err.Check "inner %d" 7) with
  | Ok _ -> Alcotest.fail "guard let a failure through"
  | Error e ->
    Alcotest.(check string) "guard context" "check: inner 7 (in outer)" (Err.to_string e)

(* --- Journal --- *)

let test_journal_roundtrip () =
  let path = tmp "hscd_jnl_rt.jnl" in
  if Sys.file_exists path then Sys.remove path;
  Alcotest.(check bool) "missing file loads empty" true (Journal.load path = Ok []);
  (match Journal.open_append path with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok j ->
    Journal.append j ~key:"a" "alpha";
    Journal.append j ~key:"b" (String.make 1000 '\xab');
    Journal.append j ~key:"a" "alpha2";
    Journal.close j);
  (match Journal.load path with
  | Ok [ ("a", "alpha"); ("b", big); ("a", "alpha2") ] ->
    Alcotest.(check int) "payload preserved" 1000 (String.length big)
  | Ok l -> Alcotest.fail (Printf.sprintf "wrong records: %d" (List.length l))
  | Error e -> Alcotest.fail (Err.to_string e));
  Sys.remove path

let test_journal_torn_tail_recovery () =
  let path = tmp "hscd_jnl_torn.jnl" in
  if Sys.file_exists path then Sys.remove path;
  (match Journal.open_append path with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok j ->
    Journal.append j ~key:"k1" "v1";
    Journal.append j ~key:"k2" "v2";
    Journal.close j);
  (* a kill mid-append: half a record dangling after the valid prefix *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x02\x00\x00\x00\x00\x00\x00\x00k3";
  close_out oc;
  (match Journal.open_append path with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok j ->
    Alcotest.(check int) "torn tail dropped, prefix kept" 2 (List.length (Journal.entries j));
    (* the handle must be appendable after recovery *)
    Journal.append j ~key:"k3" "v3";
    Journal.close j);
  (match Journal.load path with
  | Ok [ ("k1", "v1"); ("k2", "v2"); ("k3", "v3") ] -> ()
  | Ok l -> Alcotest.fail (Printf.sprintf "wrong records after recovery: %d" (List.length l))
  | Error e -> Alcotest.fail (Err.to_string e));
  Sys.remove path

let test_journal_bit_flip_drops_suffix () =
  let path = tmp "hscd_jnl_flip.jnl" in
  if Sys.file_exists path then Sys.remove path;
  (match Journal.open_append path with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok j ->
    Journal.append j ~key:"k1" "v1";
    Journal.append j ~key:"k2" "v2";
    Journal.close j);
  (* flip a bit inside the second record's payload: its checksum dies,
     the first record survives *)
  let len = (Unix.stat path).Unix.st_size in
  Hscd_check.Fault.Chaos.corrupt_file path ~byte:(len - 10);
  (match Journal.load path with
  | Ok [ ("k1", "v1") ] -> ()
  | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 surviving record, got %d" (List.length l))
  | Error e -> Alcotest.fail (Err.to_string e));
  Sys.remove path

let test_journal_foreign_magic () =
  let path = tmp "hscd_jnl_foreign.jnl" in
  let oc = open_out_bin path in
  output_string oc "HSCDTRC2not a journal";
  close_out oc;
  (match Journal.load path with
  | Error e -> Alcotest.(check bool) "corrupt kind" true (e.kind = Err.Corrupt)
  | Ok _ -> Alcotest.fail "foreign file accepted as journal");
  Sys.remove path

(* --- supervised pool --- *)

exception Flaky of int

let test_supervise_all_ok () =
  List.iter
    (fun jobs ->
      let outcomes, stats = Pool.supervise ~jobs (fun x -> x * x) (List.init 20 Fun.id) in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.init 20 (fun i -> i * i))
        (List.map (function Pool.Done v -> v | _ -> -1) outcomes);
      Alcotest.(check int) "no retries" 0 stats.Pool.retried)
    [ 1; 4 ]

let test_supervise_retry_converges () =
  (* each task crashes on its first attempt, then succeeds — with the
     default 2 retries every outcome must still be Done *)
  List.iter
    (fun jobs ->
      let mu = Mutex.create () in
      let tried = Hashtbl.create 16 in
      let f x =
        let n =
          Mutex.protect mu (fun () ->
              let n = 1 + Option.value ~default:0 (Hashtbl.find_opt tried x) in
              Hashtbl.replace tried x n;
              n)
        in
        if n = 1 then raise (Flaky x);
        x + 100
      in
      let outcomes, stats = Pool.supervise ~jobs f (List.init 8 Fun.id) in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d converged" jobs)
        (List.init 8 (fun i -> i + 100))
        (List.map (function Pool.Done v -> v | _ -> -1) outcomes);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d retried" jobs)
        true
        (stats.Pool.retried >= 8))
    [ 1; 3 ]

let test_supervise_retries_exhausted () =
  let outcomes, _ =
    Pool.supervise ~jobs:2
      ~policy:{ Pool.default_policy with Pool.retries = 1; backoff = 0.001 }
      (fun x -> if x = 3 then raise (Flaky 3) else x)
      (List.init 6 Fun.id)
  in
  List.iteri
    (fun i oc ->
      match (i, oc) with
      | 3, Pool.Failed e ->
        Alcotest.(check bool) "worker kind" true (e.Err.kind = Err.Worker)
      | 3, _ -> Alcotest.fail "task 3 should have failed"
      | _, Pool.Done v -> Alcotest.(check int) "sibling" i v
      | _, _ -> Alcotest.fail "sibling lost")
    outcomes

let test_supervise_timeout () =
  (* one cooperative hang hits the deadline and, with no retries, is
     reported Timed_out; siblings are unaffected *)
  let release = Atomic.make false in
  let f x =
    if x = 1 then
      while not (Atomic.get release) do
        Unix.sleepf 0.005
      done;
    x
  in
  let outcomes, stats =
    Pool.supervise ~jobs:3
      ~policy:{ Pool.default_policy with Pool.deadline = Some 0.15; retries = 0 }
      f (List.init 5 Fun.id)
  in
  Atomic.set release true;
  Alcotest.(check bool) "timeout counted" true (stats.Pool.timeouts >= 1);
  List.iteri
    (fun i oc ->
      match (i, oc) with
      | 1, Pool.Timed_out s -> Alcotest.(check bool) "gave up past deadline" true (s >= 0.15)
      | 1, _ -> Alcotest.fail "hung task should have timed out"
      | _, Pool.Done v -> Alcotest.(check int) "sibling" i v
      | _, _ -> Alcotest.fail "sibling lost")
    outcomes

let test_supervise_hang_then_retry_converges () =
  (* a task that hangs once and then behaves: the timeout plus one retry
     must converge to Done — the chaos-harness contract in miniature *)
  let p = Hscd_check.Fault.Chaos.plan ~hang_first:[ ("slow", 30.0) ] () in
  let f x =
    if x = 2 then Hscd_check.Fault.Chaos.strike p "slow";
    x * 7
  in
  let outcomes, stats =
    Pool.supervise ~jobs:3
      ~policy:{ Pool.default_policy with Pool.deadline = Some 0.15; retries = 2; backoff = 0.01 }
      f (List.init 5 Fun.id)
  in
  Hscd_check.Fault.Chaos.release p;
  Alcotest.(check (list int)) "all done" (List.init 5 (fun i -> i * 7))
    (List.map (function Pool.Done v -> v | _ -> -1) outcomes);
  Alcotest.(check bool) "a timeout happened" true (stats.Pool.timeouts >= 1);
  Alcotest.(check bool) "a respawn happened" true (stats.Pool.respawns >= 1)

let test_supervise_fail_fast_cancels () =
  (* keep_going=false: after task 0's final failure, queued tasks are
     cancelled; with jobs=1 execution is in submission order, so
     everything after 0 must come back Failed("cancelled...") *)
  let outcomes, _ =
    Pool.supervise ~jobs:1
      ~policy:{ Pool.default_policy with Pool.retries = 0; keep_going = false }
      (fun x -> if x = 0 then raise (Flaky 0) else x)
      (List.init 4 Fun.id)
  in
  (match List.nth outcomes 0 with
  | Pool.Failed e -> Alcotest.(check bool) "task 0 worker error" true (e.Err.kind = Err.Worker)
  | _ -> Alcotest.fail "task 0 should fail");
  List.iteri
    (fun i oc ->
      if i > 0 then
        match oc with
        | Pool.Failed e ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d cancelled" i)
            true
            (String.length e.Err.message >= 9 && String.sub e.Err.message 0 9 = "cancelled")
        | _ -> Alcotest.fail (Printf.sprintf "task %d should be cancelled" i))
    outcomes

let test_supervise_degrades_without_domains () =
  (* every spawn fails: the supervisor must fall back to sequential
     in-caller execution and still return complete results *)
  Atomic.set Pool.For_testing.fail_next_spawns 100;
  let outcomes, stats = Pool.supervise ~jobs:4 (fun x -> x + 1) (List.init 6 Fun.id) in
  Atomic.set Pool.For_testing.fail_next_spawns 0;
  Alcotest.(check (list int)) "all done sequentially" (List.init 6 (fun i -> i + 1))
    (List.map (function Pool.Done v -> v | _ -> -1) outcomes);
  Alcotest.(check bool) "degraded flag" true stats.Pool.degraded

let test_supervise_on_done_completion_order () =
  (* on_done fires exactly once per task, in the supervising domain *)
  let seen = ref [] in
  let outcomes, _ =
    Pool.supervise ~jobs:3
      ~on_done:(fun i oc -> seen := (i, oc) :: !seen)
      (fun x -> x * 2)
      (List.init 10 Fun.id)
  in
  Alcotest.(check int) "one on_done per task" 10 (List.length !seen);
  Alcotest.(check (list int)) "indices covered" (List.init 10 Fun.id)
    (List.sort compare (List.map fst !seen));
  Alcotest.(check int) "outcomes complete" 10
    (List.length (List.filter (function Pool.Done _ -> true | _ -> false) outcomes))

let suite =
  [
    Alcotest.test_case "error classification" `Quick test_error_classification;
    Alcotest.test_case "error policy: exit codes + transience" `Quick test_error_policy;
    Alcotest.test_case "error context trail" `Quick test_error_context;
    Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal torn-tail recovery" `Quick test_journal_torn_tail_recovery;
    Alcotest.test_case "journal bit flip drops suffix" `Quick test_journal_bit_flip_drops_suffix;
    Alcotest.test_case "journal rejects foreign magic" `Quick test_journal_foreign_magic;
    Alcotest.test_case "supervise: all ok" `Quick test_supervise_all_ok;
    Alcotest.test_case "supervise: retry converges" `Quick test_supervise_retry_converges;
    Alcotest.test_case "supervise: retries exhausted" `Quick test_supervise_retries_exhausted;
    Alcotest.test_case "supervise: timeout" `Quick test_supervise_timeout;
    Alcotest.test_case "supervise: hang + retry converges" `Quick
      test_supervise_hang_then_retry_converges;
    Alcotest.test_case "supervise: fail-fast cancels" `Quick test_supervise_fail_fast_cancels;
    Alcotest.test_case "supervise: degrades without domains" `Quick
      test_supervise_degrades_without_domains;
    Alcotest.test_case "supervise: on_done fires per task" `Quick
      test_supervise_on_done_completion_order;
  ]
