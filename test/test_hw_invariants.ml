(** Property test of the full-map directory's internal invariants: after
    any sequence of reads/writes from random processors, the directory and
    the caches must agree —

    - a dirty line has exactly one cached copy, in state M, at a processor
      the presence vector names;
    - a clean line's sharers (states S) are all in the presence vector;
    - no two caches hold the same line with one of them in state M;
    - every cached value equals the memory image (values are kept eagerly
      current; the protocol governs timing, not values). *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event
module Cache = Hscd_cache.Cache
module Hwdir = Hscd_coherence.Hwdir
module Memstate = Hscd_coherence.Memstate
module Bitset = Hscd_util.Bitset
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic

let cfg = { Config.default with processors = 4; cache_bytes = 256 (* tiny: evictions *) }

let memory_words = 128

type op = R of int * int | W of int * int * int  (* proc, addr(, value) *)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 120)
      (let* proc = int_range 0 3 in
       let* addr = int_range 0 (memory_words - 1) in
       let* w = bool in
       if w then map (fun v -> W (proc, addr, v)) (int_range 0 99) else return (R (proc, addr))))

let print_ops ops =
  String.concat "; "
    (List.map
       (function
         | R (p, a) -> Printf.sprintf "R%d@%d" p a
         | W (p, a, v) -> Printf.sprintf "W%d@%d=%d" p a v)
       ops)

let run_ops ops =
  let net = Kruskal_snir.create cfg and traffic = Traffic.create cfg in
  let hw = Hwdir.create cfg ~memory_words ~network:net ~traffic in
  List.iter
    (function
      | R (proc, addr) -> ignore (Hwdir.read hw ~proc ~addr ~array:0 ~mark:Event.Unmarked)
      | W (proc, addr, v) ->
        ignore (Hwdir.write hw ~proc ~addr ~array:0 ~value:v ~mark:Event.Normal_write))
    ops;
  hw

(* Caches holding memory line [l], with their states. *)
let holders (hw : Hwdir.t) l =
  List.filter_map
    (fun p ->
      match Cache.probe hw.Hwdir.caches.(p) (l * cfg.line_words) with
      | Some line when line.Cache.state = 1 || line.Cache.state = 2 -> Some (p, line)
      | Some _ | None -> None)
    [ 0; 1; 2; 3 ]

let check_invariants (hw : Hwdir.t) =
  let lines = Array.length hw.Hwdir.directory in
  let ok = ref true in
  for l = 0 to lines - 1 do
    let dir = hw.Hwdir.directory.(l) in
    let hs = holders hw l in
    let modified = List.filter (fun (_, line) -> line.Cache.state = 2) hs in
    (* at most one M copy, and only when the directory says dirty *)
    if List.length modified > 1 then ok := false;
    if dir.Hwdir.dirty then begin
      match modified with
      | [ (p, _) ] -> if not (Bitset.mem dir.Hwdir.presence p) then ok := false
      | _ -> ok := false
    end
    else if modified <> [] then ok := false;
    (* every holder is known to the directory *)
    List.iter (fun (p, _) -> if not (Bitset.mem dir.Hwdir.presence p) then ok := false) hs;
    (* cached values match memory *)
    List.iter
      (fun (_, line) ->
        Array.iteri
          (fun k v ->
            if line.Cache.word_valid.(k)
               && v <> Memstate.read hw.Hwdir.mem ((l * cfg.line_words) + k)
            then ok := false)
          line.Cache.values)
      hs
  done;
  !ok

let qcheck_directory_invariants =
  QCheck.Test.make ~name:"full-map directory invariants hold under random traffic" ~count:300
    (QCheck.make gen_ops ~print:print_ops)
    (fun ops -> check_invariants (run_ops ops))

let qcheck_reads_return_last_write =
  QCheck.Test.make ~name:"directory reads always return the last written value" ~count:300
    (QCheck.make gen_ops ~print:print_ops)
    (fun ops ->
      let net = Kruskal_snir.create cfg and traffic = Traffic.create cfg in
      let hw = Hwdir.create cfg ~memory_words ~network:net ~traffic in
      let shadow = Array.make memory_words 0 in
      List.for_all
        (function
          | W (proc, addr, v) ->
            shadow.(addr) <- v;
            ignore (Hwdir.write hw ~proc ~addr ~array:0 ~value:v ~mark:Event.Normal_write);
            true
          | R (proc, addr) ->
            (Hwdir.read hw ~proc ~addr ~array:0 ~mark:Event.Unmarked).Hscd_coherence.Scheme.value
            = shadow.(addr))
        ops)

(* Directed TPI regression: a Time-Read whose window spans a 4-bit
   timetag wrap must be classified as a two-phase-reset miss, never a hit
   on the recycled tag. *)
let test_tpi_timetag_wrap_reset () =
  let module Tpi = Hscd_coherence.Tpi in
  let module Scheme = Hscd_coherence.Scheme in
  let cfg = Config.validate { cfg with timetag_bits = 4 (* phase = 8 epochs *) } in
  let net = Kruskal_snir.create cfg and traffic = Traffic.create cfg in
  let tpi = Tpi.create cfg ~memory_words ~network:net ~traffic in
  (* epoch 0: proc 0 caches addr 0 (fill stamps tag 0) *)
  let r0 = Tpi.read tpi ~proc:0 ~addr:0 ~array:0 ~mark:(Event.Time_read 0) in
  Alcotest.(check bool) "initial fill misses" true (r0.Scheme.cls <> Scheme.Hit);
  (* pre-wrap control: two epochs later the copy is still a Time-Read hit *)
  let stalls = Array.make cfg.Config.processors 0 in
  Tpi.epoch_boundary tpi ~stalls;
  Tpi.epoch_boundary tpi ~stalls;
  let pre = Tpi.read tpi ~proc:0 ~addr:0 ~array:0 ~mark:(Event.Time_read 2) in
  Alcotest.(check bool) "age-2 word hits inside a wide window" true
    (pre.Scheme.cls = Scheme.Hit);
  (* six more boundaries reach epoch 8 = one full phase: the reset wipes
     the (now age-8) word even though a naive 4-bit age comparison against
     a d >= 8 window would have called it a hit *)
  for _ = 1 to 6 do
    Tpi.epoch_boundary tpi ~stalls
  done;
  let post = Tpi.read tpi ~proc:0 ~addr:0 ~array:0 ~mark:(Event.Time_read 8) in
  Alcotest.(check bool) "wrapped word does not hit" true (post.Scheme.cls <> Scheme.Hit);
  Alcotest.(check bool)
    (Printf.sprintf "classified Reset_inv (got %s)" (Scheme.class_name post.Scheme.cls))
    true
    (post.Scheme.cls = Scheme.Reset_inv)

(* Differential oracle for the lazy two-phase reset: drive an eager
   (flash-invalidate scan) and a lazy (timetag-cutoff settle) TPI through
   the same deterministic script spanning two full phases — two reset
   firings and a complete timetag wrap — and require every access to
   return the same class, latency and value, every boundary to charge the
   same stalls, and the final stats to agree. Run for 3- and 4-bit tags
   so both the minimum phase and the wrap regression's shape are covered. *)
let test_tpi_lazy_matches_eager_reset () =
  let module Tpi = Hscd_coherence.Tpi in
  let module Scheme = Hscd_coherence.Scheme in
  let module Event = Hscd_arch.Event in
  List.iter
    (fun timetag_bits ->
      let base = Config.validate { cfg with timetag_bits } in
      let make eager =
        let c = { base with Config.tpi_eager_reset = eager } in
        let net = Kruskal_snir.create c and traffic = Traffic.create c in
        Tpi.create c ~memory_words ~network:net ~traffic
      in
      let lz = make false and eg = make true in
      let phase = 1 lsl (timetag_bits - 1) in
      let check what (a : Scheme.access_result) (b : Scheme.access_result) =
        if
          (a.Scheme.cls, a.Scheme.latency, a.Scheme.value)
          <> (b.Scheme.cls, b.Scheme.latency, b.Scheme.value)
        then
          Alcotest.failf "%s: lazy (%s,%d,%d) <> eager (%s,%d,%d)" what
            (Scheme.class_name a.Scheme.cls) a.Scheme.latency a.Scheme.value
            (Scheme.class_name b.Scheme.cls) b.Scheme.latency b.Scheme.value
      in
      let stalls_l = Array.make base.Config.processors 0
      and stalls_e = Array.make base.Config.processors 0 in
      (* 2*phase + 3 epochs: crosses two resets plus a full tag wrap *)
      for e = 0 to (2 * phase) + 2 do
        for p = 0 to base.Config.processors - 1 do
          let waddr = (e + (p * 16)) mod memory_words in
          ignore (Tpi.write lz ~proc:p ~addr:waddr ~array:0 ~value:e ~mark:Event.Normal_write);
          ignore (Tpi.write eg ~proc:p ~addr:waddr ~array:0 ~value:e ~mark:Event.Normal_write);
          let raddr = ((e * 3) + (p * 7)) mod memory_words in
          List.iter
            (fun mark ->
              check
                (Printf.sprintf "bits=%d epoch=%d proc=%d addr=%d" timetag_bits e p raddr)
                (Tpi.read lz ~proc:p ~addr:raddr ~array:0 ~mark)
                (Tpi.read eg ~proc:p ~addr:raddr ~array:0 ~mark))
            [ Event.Normal_read; Event.Time_read (e mod (phase + 1)); Event.Bypass_read ]
        done;
        Tpi.epoch_boundary lz ~stalls:stalls_l;
        Tpi.epoch_boundary eg ~stalls:stalls_e;
        Alcotest.(check (array int)) "boundary stalls agree" stalls_e stalls_l
      done;
      let sl = Tpi.stats lz and se = Tpi.stats eg in
      Alcotest.(check int)
        (Printf.sprintf "bits=%d reset count" timetag_bits)
        se.Scheme.two_phase_resets sl.Scheme.two_phase_resets;
      Alcotest.(check bool) "two resets actually fired" true (se.Scheme.two_phase_resets >= 2))
    [ 3; 4 ]

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_directory_invariants;
    QCheck_alcotest.to_alcotest qcheck_reads_return_last_write;
    Alcotest.test_case "TPI time-read across a 4-bit timetag wrap" `Quick
      test_tpi_timetag_wrap_reset;
    Alcotest.test_case "TPI lazy reset = eager reset (unit differential)" `Quick
      test_tpi_lazy_matches_eager_reset;
  ]
