(** Tests of the differential fuzzer itself: generator determinism and
    soundness, a clean oracle over random traces, mutation testing (every
    injected coherence bug must be caught), shrinking quality, and the
    seed-corpus round trip. *)

module Config = Hscd_arch.Config
module Prng = Hscd_util.Prng
module Run = Hscd_sim.Run
module Trace_io = Hscd_sim.Trace_io
module Gen = Hscd_check.Gen
module Golden = Hscd_check.Golden
module Oracle = Hscd_check.Oracle
module Fault = Hscd_check.Fault
module Fuzz = Hscd_check.Fuzz
module Shrink = Hscd_check.Shrink

let gen_at seed =
  let prng = Prng.of_int seed in
  let params = Gen.random_params prng in
  (params, Gen.generate prng params)

let test_determinism () =
  List.iter
    (fun seed ->
      let _, a = gen_at seed in
      let _, b = gen_at seed in
      Alcotest.(check bool) "same seed, same trace" true (Trace_io.equal a b))
    [ 1; 2; 3; 99 ]

let test_generated_sound () =
  for seed = 0 to 24 do
    let params, trace = gen_at seed in
    let cfg = Gen.cfg_of params in
    Alcotest.(check (list string)) "lint clean" [] (Golden.lint trace);
    Alcotest.(check (list string)) "marks sound" [] (Golden.mark_sound cfg trace);
    (* generate already resolves; a second resolve must be a fixpoint *)
    Alcotest.(check bool) "resolve idempotent" true
      (Trace_io.equal trace (Golden.resolve trace))
  done

let test_presets_sound () =
  List.iter
    (fun (name, params) ->
      Alcotest.(check bool) (name ^ " uses the corpus config") true
        (Gen.cfg_of params = Fuzz.corpus_cfg);
      let trace = Gen.generate (Prng.of_int 5) params in
      Alcotest.(check (list string)) (name ^ " lints clean") [] (Golden.lint trace);
      Alcotest.(check (list string)) (name ^ " marks sound") []
        (Golden.mark_sound Fuzz.corpus_cfg trace))
    Fuzz.corpus_presets

let test_oracle_clean () =
  let r = Fuzz.fuzz ~shrink:false ~seed:11 ~count:30 () in
  Alcotest.(check int) "30 iterations" 30 r.Fuzz.iterations;
  Alcotest.(check int) "no failures" 0 (List.length r.Fuzz.failures)

(* Mutation testing: graft a bug onto one scheme, expect the oracle to
   catch it within a few dozen random traces, blaming only that scheme. *)
let expect_caught ?(count = 60) fault kind =
  let r = Fuzz.fuzz ~fault:(kind, fault) ~shrink:false ~max_failures:1 ~seed:7 ~count () in
  Alcotest.(check bool) (Fault.name fault ^ " caught") true (r.Fuzz.failures <> []);
  List.iter
    (fun (f : Fuzz.failure) ->
      Alcotest.(check bool) "only the faulted scheme blamed" true
        (List.for_all (( = ) kind) (Oracle.failing_schemes f.Fuzz.outcome)))
    r.Fuzz.failures

let test_catches_widened_window () = expect_caught (Fault.Stale_time_read 2) Run.TPI
let test_catches_ignored_window () = expect_caught Fault.Ignore_time_read Run.TPI
let test_catches_stuck_counter () = expect_caught Fault.Skip_epoch_boundary Run.TPI

let test_catches_corrupt_values () =
  expect_caught ~count:30 (Fault.Corrupt_read_value 5) Run.HW

let test_shrinks_to_tiny_repro () =
  let fault = (Run.TPI, Fault.Stale_time_read 2) in
  let r = Fuzz.fuzz ~fault ~max_failures:1 ~seed:7 ~count:60 () in
  match r.Fuzz.failures with
  | [] -> Alcotest.fail "injected TPI bug not caught"
  | { Fuzz.shrunk = None; _ } :: _ -> Alcotest.fail "no shrunk repro"
  | { Fuzz.shrunk = Some small; trace; _ } :: _ ->
    Alcotest.(check bool) "shrunk no larger than original" true
      (Shrink.event_count small <= Shrink.event_count trace);
    Alcotest.(check bool)
      (Printf.sprintf "repro has <= 10 events (got %d)" (Shrink.event_count small))
      true
      (Shrink.event_count small <= 10);
    (* the minimized trace must still be a well-formed, soundly marked
       input that reproduces the failure *)
    Alcotest.(check (list string)) "shrunk lints clean" [] (Golden.lint small);
    let o = Oracle.run ~fault:(fst fault, snd fault) Fuzz.corpus_cfg small in
    ignore o

let test_corpus_roundtrip () =
  let dir = Filename.temp_file "hscd_corpus" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let paths = Fuzz.write_corpus ~dir in
  Alcotest.(check int) "one file per preset" (List.length Fuzz.corpus_presets)
    (List.length paths);
  List.iter
    (fun (path, o) ->
      Alcotest.(check bool) (Filename.basename path ^ " replays clean") true (Oracle.ok o))
    (Fuzz.replay_corpus paths);
  (* serialization is lossless for generated traces *)
  List.iter2
    (fun path (name, params) ->
      let regenerated =
        Gen.generate (Prng.of_int (Fuzz.corpus_seed + Hashtbl.hash name)) params
      in
      Alcotest.(check bool) (name ^ " round-trips") true
        (Trace_io.equal (Trace_io.load path) regenerated))
    paths Fuzz.corpus_presets;
  List.iter Sys.remove paths;
  Unix.rmdir dir

let suite =
  [
    Alcotest.test_case "generator determinism" `Quick test_determinism;
    Alcotest.test_case "generated traces lint clean and sound" `Quick test_generated_sound;
    Alcotest.test_case "corpus presets sound" `Quick test_presets_sound;
    Alcotest.test_case "oracle clean on random traces" `Quick test_oracle_clean;
    Alcotest.test_case "catches widened time-read window" `Quick test_catches_widened_window;
    Alcotest.test_case "catches ignored time-read window" `Quick test_catches_ignored_window;
    Alcotest.test_case "catches stuck epoch counter" `Quick test_catches_stuck_counter;
    Alcotest.test_case "catches corrupted read values" `Quick test_catches_corrupt_values;
    Alcotest.test_case "shrinks injected bug to <= 10 events" `Quick test_shrinks_to_tiny_repro;
    Alcotest.test_case "corpus round-trip and replay" `Quick test_corpus_roundtrip;
  ]
