(** Unit tests for the per-step invariant monitors of
    {!Hscd_check.Monitor} in isolation: hand-built step sequences drive
    the shadow model through the direct entry points and assert that
    each check fires exactly when it should — a violating sequence per
    monitor, and the nearest non-violating neighbour of each. *)

module Event = Hscd_arch.Event
module Monitor = Hscd_check.Monitor

let make ?(processors = 2) ?(words = 4) () = Monitor.create ~processors ~words

let kinds m = List.map (fun (v : Monitor.violation) -> v.Monitor.kind) (Monitor.report m)

let check_kinds what expected m = Alcotest.(check (list string)) what expected (kinds m)

let boundary ?(stalls = [| 0; 0 |]) m = Monitor.on_boundary m stalls

(* --- value provenance --- *)

let test_phantom_value () =
  let m = make () in
  (* initial zero is legal on any mark *)
  Monitor.on_read m ~proc:0 ~addr:1 ~mark:Event.Unmarked 0;
  check_kinds "zero before any write" [] m;
  (* a value that was never written anywhere is phantom *)
  Monitor.on_read m ~proc:1 ~addr:1 ~mark:Event.Normal_read 99;
  check_kinds "unwritten value" [ "phantom-value" ] m;
  (* once written, the same value is legitimate provenance *)
  let m = make () in
  Monitor.on_write m ~addr:1 42;
  Monitor.on_read m ~proc:0 ~addr:1 ~mark:Event.Unmarked 42;
  check_kinds "written value" [] m;
  (* provenance is per-address: 42 at another address is still phantom *)
  Monitor.on_read m ~proc:0 ~addr:2 ~mark:Event.Unmarked 42;
  check_kinds "other address" [ "phantom-value" ] m

let test_bounds () =
  let m = make ~words:4 () in
  Monitor.on_read m ~proc:0 ~addr:4 ~mark:Event.Unmarked 0;
  check_kinds "read past the image" [ "bounds" ] m;
  let m = make ~words:4 () in
  Monitor.on_read m ~proc:0 ~addr:(-1) ~mark:Event.Unmarked 0;
  check_kinds "negative address" [ "bounds" ] m;
  (* out-of-range writes are dropped silently (the engine flags them) *)
  let m = make ~words:4 () in
  Monitor.on_write m ~addr:7 5;
  Monitor.on_read m ~proc:0 ~addr:3 ~mark:Event.Unmarked 0;
  check_kinds "in-bounds read after dropped write" [] m

(* --- Time-Read windows --- *)

(* history: v1 written in epoch 0, v2 in epoch 2; reads happen in epoch 3 *)
let window_setup () =
  let m = make () in
  Monitor.on_write m ~addr:0 11;
  boundary m;
  boundary m;
  Monitor.on_write m ~addr:0 22;
  boundary m;
  m

let test_time_read_window () =
  let m = window_setup () in
  (* current value satisfies any window *)
  Monitor.on_read m ~proc:0 ~addr:0 ~mark:(Event.Time_read 0) 22;
  check_kinds "current value, d=0" [] m;
  (* v1 was last held in epoch 2 (until v2's write): d=1 reaches it *)
  Monitor.on_read m ~proc:0 ~addr:0 ~mark:(Event.Time_read 1) 11;
  check_kinds "old value inside window" [] m;
  (* d=0 only covers epoch 3, where only v2 was held *)
  Monitor.on_read m ~proc:0 ~addr:0 ~mark:(Event.Time_read 0) 11;
  check_kinds "old value outside window" [ "stale-time-read" ] m

let test_time_read_phantom_precedence () =
  (* a phantom value on a Time-Read is reported as provenance, not window *)
  let m = window_setup () in
  Monitor.on_read m ~proc:0 ~addr:0 ~mark:(Event.Time_read 3) 99;
  check_kinds "phantom beats window" [ "phantom-value" ] m

let test_unchecked_marks_tolerate_stale () =
  (* Normal/Unmarked reads have no architectural window: the monitor
     only demands provenance (the engine's golden check is the one that
     rejects stale values on those marks) *)
  let m = window_setup () in
  Monitor.on_read m ~proc:0 ~addr:0 ~mark:Event.Normal_read 11;
  Monitor.on_read m ~proc:1 ~addr:0 ~mark:Event.Unmarked 11;
  check_kinds "stale on unchecked marks" [] m

(* --- bypass freshness --- *)

let test_bypass_freshness () =
  let m = make () in
  Monitor.on_write m ~addr:2 7;
  Monitor.on_write m ~addr:2 8;
  Monitor.on_read m ~proc:0 ~addr:2 ~mark:Event.Bypass_read 8;
  check_kinds "bypass sees latest" [] m;
  Monitor.on_read m ~proc:0 ~addr:2 ~mark:Event.Bypass_read 7;
  check_kinds "bypass sees stale" [ "stale-bypass" ] m;
  (* before any write, memory holds zero *)
  let m = make () in
  Monitor.on_read m ~proc:0 ~addr:0 ~mark:Event.Bypass_read 0;
  check_kinds "bypass zero" [] m

(* --- epoch boundaries --- *)

let test_boundary_shape () =
  let m = make ~processors:2 () in
  boundary m ~stalls:[| 3; 0 |];
  check_kinds "correct shape" [] m;
  Alcotest.(check int) "one boundary" 1 (Monitor.boundaries m);
  boundary m ~stalls:[| 1 |];
  check_kinds "short stall array" [ "boundary-shape" ] m;
  Alcotest.(check int) "still counted" 2 (Monitor.boundaries m)

let test_negative_stall () =
  let m = make ~processors:2 () in
  boundary m ~stalls:[| 0; -1 |];
  check_kinds "negative stall" [ "negative-stall" ] m

let test_boundary_advances_window () =
  (* the same read flips from ok to violating once enough boundaries pass *)
  let m = make () in
  Monitor.on_write m ~addr:0 5;
  Monitor.on_write m ~addr:0 6;
  boundary m;
  Monitor.on_read m ~proc:0 ~addr:0 ~mark:(Event.Time_read 1) 5;
  check_kinds "still in window" [] m;
  boundary m;
  Monitor.on_read m ~proc:0 ~addr:0 ~mark:(Event.Time_read 1) 5;
  check_kinds "window moved past it" [ "stale-time-read" ] m

(* --- reporting --- *)

let test_violation_cap () =
  let m = make () in
  for _ = 1 to Monitor.max_violations + 10 do
    Monitor.on_read m ~proc:0 ~addr:0 ~mark:Event.Unmarked 99
  done;
  Alcotest.(check int) "report capped" Monitor.max_violations (List.length (Monitor.report m))

let test_violation_detail () =
  let m = make () in
  boundary m;
  Monitor.on_read m ~proc:1 ~addr:3 ~mark:Event.Unmarked 99;
  match Monitor.report m with
  | [ v ] ->
    Alcotest.(check int) "epoch" 1 v.Monitor.epoch;
    Alcotest.(check int) "proc" 1 v.Monitor.proc;
    Alcotest.(check int) "addr" 3 v.Monitor.addr
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let suite =
  [
    Alcotest.test_case "phantom value" `Quick test_phantom_value;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "time-read window" `Quick test_time_read_window;
    Alcotest.test_case "phantom precedence" `Quick test_time_read_phantom_precedence;
    Alcotest.test_case "unchecked marks" `Quick test_unchecked_marks_tolerate_stale;
    Alcotest.test_case "bypass freshness" `Quick test_bypass_freshness;
    Alcotest.test_case "boundary shape" `Quick test_boundary_shape;
    Alcotest.test_case "negative stall" `Quick test_negative_stall;
    Alcotest.test_case "boundary advances window" `Quick test_boundary_advances_window;
    Alcotest.test_case "violation cap" `Quick test_violation_cap;
    Alcotest.test_case "violation detail" `Quick test_violation_detail;
  ]
