(** The packed (structure-of-arrays) trace form is the engine's native
    input; the boxed event stream replays through a legacy loop kept
    precisely so these tests can assert the two are bit-identical — same
    cycles, metrics, violations, traffic and final memory — for every
    scheme, over both compiled programs and the checked-in fuzz corpus.
    Plus unit tests for the symbol interner backing the [array:int]
    scheme interface. *)

module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Trace_io = Hscd_sim.Trace_io
module Symtab = Hscd_util.Symtab
module Kernels = Hscd_workloads.Kernels

(* ---------- Symtab ---------- *)

let test_symtab_dense_ids () =
  let t = Symtab.create () in
  Alcotest.(check int) "first id" 0 (Symtab.intern t "a");
  Alcotest.(check int) "second id" 1 (Symtab.intern t "b");
  Alcotest.(check int) "re-intern is stable" 0 (Symtab.intern t "a");
  Alcotest.(check int) "third id" 2 (Symtab.intern t "c");
  Alcotest.(check int) "length" 3 (Symtab.length t)

let test_symtab_roundtrip () =
  let names = [ "x"; "y"; "velocity"; "p" ] in
  let t = Symtab.of_names names in
  List.iteri
    (fun i n ->
      Alcotest.(check int) ("id of " ^ n) i (Symtab.id t n);
      Alcotest.(check string) ("name of " ^ string_of_int i) n (Symtab.name t i))
    names;
  Alcotest.(check (array string)) "names in id order" (Array.of_list names) (Symtab.names t)

let test_symtab_duplicates_collapse () =
  let t = Symtab.of_names [ "a"; "b"; "a"; "c"; "b" ] in
  Alcotest.(check int) "length" 3 (Symtab.length t);
  Alcotest.(check int) "a" 0 (Symtab.id t "a");
  Alcotest.(check int) "c" 2 (Symtab.id t "c")

let test_symtab_unknown () =
  let t = Symtab.of_names [ "a" ] in
  Alcotest.(check (option int)) "find_opt unknown" None (Symtab.find_opt t "zz");
  Alcotest.(check bool) "mem known" true (Symtab.mem t "a");
  Alcotest.(check bool) "mem unknown" false (Symtab.mem t "zz");
  Alcotest.check_raises "id of unknown raises" (Invalid_argument "Symtab: unknown symbol zz")
    (fun () -> ignore (Symtab.id t "zz"));
  Alcotest.check_raises "name out of range raises" (Invalid_argument "Symtab: id 7 out of [0,1)")
    (fun () -> ignore (Symtab.name t 7))

(* ---------- packed form structure ---------- *)

let test_pack_structure () =
  let c = Run.compile (Kernels.jacobi1d ~n:64 ~iters:2 ()) in
  let p = c.Run.packed_trace in
  let boxed = Run.boxed_trace c in
  Alcotest.(check int) "event count preserved" boxed.Trace.total_events p.Trace.p_total_events;
  Alcotest.(check bool) "slots cover events" true (p.Trace.n_slots >= p.Trace.p_total_events);
  Alcotest.(check int) "parallel slabs same length" (Trace.Slab.length p.Trace.ops)
    (Trace.Slab.length p.Trace.addrs);
  Alcotest.(check int) "value slab same length" (Trace.Slab.length p.Trace.ops)
    (Trace.Slab.length p.Trace.values);
  Alcotest.(check int) "mark slab same length" (Trace.Slab.length p.Trace.ops)
    (Trace.Slab.length p.Trace.marks);
  Alcotest.(check int) "array-id slab same length" (Trace.Slab.length p.Trace.ops)
    (Trace.Slab.length p.Trace.arrs);
  Alcotest.(check int) "epoch count preserved"
    (Array.length boxed.Trace.epochs)
    (Array.length p.Trace.p_epochs);
  (* the interner is seeded with the layout's arrays in declaration order,
     so ids index layout-ordered per-array tables densely *)
  List.iteri
    (fun i (a : Hscd_lang.Shape.t) ->
      Alcotest.(check int) ("layout id of " ^ a.Hscd_lang.Shape.name) i
        (Symtab.id p.Trace.symtab a.Hscd_lang.Shape.name))
    (Hscd_lang.Shape.arrays_in_order p.Trace.p_layout)

(* ---------- packed ≡ boxed, bit for bit ---------- *)

let check_equivalence ?(cfg = Config.default) name trace packed =
  List.iter
    (fun kind ->
      let rp = Run.simulate_packed ~cfg kind packed in
      let rb = Run.simulate_boxed ~cfg kind trace in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s packed = boxed" name (Run.scheme_name kind))
        true (rp = rb))
    Run.extended_schemes

(* the boxed trace is regenerated independently through the legacy path,
   so this differentially covers the streaming builder end to end: the
   interpreter's hook stream packed live vs. boxed events packed after *)
let equiv_program ?(cfg = Config.default) name program =
  let c = Run.compile ~cfg ~cache:false program in
  let boxed =
    Trace.of_program ~line_words:cfg.Config.line_words c.Run.marked
  in
  Alcotest.(check bool)
    (name ^ ": streaming = boxed-then-pack, structurally")
    true
    (Trace_io.equal_packed (Trace.pack boxed) c.Run.packed_trace);
  Alcotest.(check bool)
    (name ^ ": unpack round-trips")
    true
    (Trace_io.equal (Trace.unpack c.Run.packed_trace) boxed);
  check_equivalence ~cfg name boxed c.Run.packed_trace

let test_equiv_stencil () = equiv_program "jacobi1d" (Kernels.jacobi1d ~n:64 ~iters:3 ())

let test_equiv_locks () = equiv_program "reduction" (Kernels.reduction ~n:48 ())

let test_equiv_matmul () = equiv_program "matmul" (Kernels.matmul ~n:10 ())

let test_equiv_dynamic_migration () =
  (* dynamic scheduling + migration exercises the PRNG draws in both
     replay loops; the draw sequences must line up exactly *)
  let cfg =
    { Config.default with processors = 8; scheduling = Config.Dynamic; migration_rate = 0.3 }
  in
  equiv_program ~cfg "gather+migration" (Kernels.gather ~n:96 ~iters:3 ())

let test_equiv_many_processors () =
  let cfg = { Config.default with processors = 32 } in
  equiv_program ~cfg "boundary@32" (Kernels.boundary_exchange ~n:128 ~iters:2 ())

let corpus_files () =
  (* cwd is test/ under `dune runtest`, the workspace root under `dune exec` *)
  let dir = if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (files <> []);
  List.map (fun f -> (f, Trace_io.load (Filename.concat dir f))) files

let test_equiv_corpus () =
  List.iter (fun (f, trace) -> check_equivalence f trace (Trace.pack trace)) (corpus_files ())

(* ---------- streaming builder ≡ pack, slot for slot ---------- *)

let test_streaming_pack_corpus () =
  (* corpus traces follow Trace_io.load's bookkeeping (locks excluded from
     total_events) — pack_streaming must preserve that too *)
  List.iter
    (fun (f, trace) ->
      let reference = Trace.pack trace in
      let streamed = Trace.pack_streaming trace in
      Alcotest.(check bool) (f ^ ": pack_streaming = pack") true
        (Trace_io.equal_packed reference streamed);
      Alcotest.(check int) (f ^ ": total_events preserved") reference.Trace.p_total_events
        streamed.Trace.p_total_events;
      Alcotest.(check bool) (f ^ ": unpack round-trips") true
        (Trace_io.equal (Trace.unpack streamed) trace))
    (corpus_files ())

let test_streaming_perfect_models () =
  (* the acceptance bar: every Perfect Club model (test scale), streamed
     generation vs. independent boxed generation, every scheme bit-identical *)
  List.iter
    (fun (e : Hscd_workloads.Perfect.entry) -> equiv_program e.name (e.build_small ()))
    Hscd_workloads.Perfect.all

let test_builder_requires_init () =
  let b = Trace.Builder.create () in
  (match Trace.Builder.finish b ~golden:[||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument from finish before init")

let suite =
  [
    Alcotest.test_case "symtab: dense first-intern ids" `Quick test_symtab_dense_ids;
    Alcotest.test_case "symtab: intern/lookup round-trip" `Quick test_symtab_roundtrip;
    Alcotest.test_case "symtab: duplicates collapse" `Quick test_symtab_duplicates_collapse;
    Alcotest.test_case "symtab: unknown lookups" `Quick test_symtab_unknown;
    Alcotest.test_case "pack: slab structure and interning" `Quick test_pack_structure;
    Alcotest.test_case "packed=boxed: stencil, all schemes" `Quick test_equiv_stencil;
    Alcotest.test_case "packed=boxed: locks/tickets" `Quick test_equiv_locks;
    Alcotest.test_case "packed=boxed: matmul" `Quick test_equiv_matmul;
    Alcotest.test_case "packed=boxed: dynamic + migration" `Quick test_equiv_dynamic_migration;
    Alcotest.test_case "packed=boxed: 32 processors" `Quick test_equiv_many_processors;
    Alcotest.test_case "packed=boxed: fuzz corpus" `Quick test_equiv_corpus;
    Alcotest.test_case "streaming=pack: fuzz corpus" `Quick test_streaming_pack_corpus;
    Alcotest.test_case "streaming=boxed: Perfect Club models" `Slow test_streaming_perfect_models;
    Alcotest.test_case "builder: finish before init rejected" `Quick test_builder_requires_init;
  ]
