(* Fuzz smoke test: 100 fixed-seed differential-fuzzing iterations plus a
   replay of the checked-in seed corpus. Runs under `dune runtest` and the
   @fuzz-smoke alias; exits non-zero on any oracle failure. *)

module Fuzz = Hscd_check.Fuzz
module Oracle = Hscd_check.Oracle

let () =
  let r = Fuzz.fuzz ~seed:42 ~count:100 () in
  Printf.printf "fuzz-smoke: %d iterations, %d events, %d failure(s)\n" r.Fuzz.iterations
    r.Fuzz.total_events
    (List.length r.Fuzz.failures);
  List.iter
    (fun (f : Fuzz.failure) ->
      Printf.printf "failure at iteration %d: %s\n%s" f.Fuzz.index
        (Hscd_check.Gen.describe f.Fuzz.params)
        (Oracle.describe f.Fuzz.outcome))
    r.Fuzz.failures;
  let bad = ref (r.Fuzz.failures <> []) in
  let corpus =
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
    |> List.map (Filename.concat "corpus")
  in
  if corpus = [] then begin
    print_endline "fuzz-smoke: no corpus files found";
    bad := true
  end;
  List.iter
    (fun (path, o) ->
      if Oracle.ok o then Printf.printf "corpus %s ok\n" (Filename.basename path)
      else begin
        bad := true;
        Printf.printf "corpus %s FAIL\n%s" (Filename.basename path) (Oracle.describe o)
      end)
    (Fuzz.replay_corpus corpus);
  if !bad then exit 1
