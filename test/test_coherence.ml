(** Unit tests driving the coherence schemes directly through their
    read/write APIs: TPI timetag semantics including the two-phase reset,
    SC forced fetches, HW MSI transitions with Tullsen–Eggers
    classification, the write-history tracker, and the Fig-5 formulas. *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event
module Scheme = Hscd_coherence.Scheme
module Memstate = Hscd_coherence.Memstate
module Tpi = Hscd_coherence.Tpi
module Sc = Hscd_coherence.Sc
module Hwdir = Hscd_coherence.Hwdir
module Base = Hscd_coherence.Base
module Limitless = Hscd_coherence.Limitless
module Overhead = Hscd_coherence.Overhead
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic

let cls = Alcotest.testable (Fmt.of_to_string Scheme.class_name) ( = )

let cfg = { Config.default with processors = 4; timetag_bits = 3 (* phase = 4 epochs *) }

(* throwaway stall scratch for boundary calls whose stalls don't matter *)
let scratch () = Array.make cfg.Config.processors 0

let make_tpi () =
  let net = Kruskal_snir.create cfg and traffic = Traffic.create cfg in
  (Tpi.create cfg ~memory_words:256 ~network:net ~traffic, traffic)

let make_sc () =
  let net = Kruskal_snir.create cfg and traffic = Traffic.create cfg in
  (Sc.create cfg ~memory_words:256 ~network:net ~traffic, traffic)

let make_hw () =
  let net = Kruskal_snir.create cfg and traffic = Traffic.create cfg in
  (Hwdir.create cfg ~memory_words:256 ~network:net ~traffic, traffic)

(* --- memstate --- *)

let test_memstate_foreign () =
  let m = Memstate.create ~words:8 in
  Alcotest.(check int) "never written" 0 (Memstate.foreign_seq m ~proc:0 3);
  Memstate.write m ~proc:0 3 10;
  Alcotest.(check int) "own write invisible" 0 (Memstate.foreign_seq m ~proc:0 3);
  Alcotest.(check bool) "foreign sees it" true (Memstate.foreign_seq m ~proc:1 3 > 0);
  let s1 = m.Memstate.seq in
  Memstate.write m ~proc:1 3 20;
  Alcotest.(check bool) "proc0 now sees foreign" true
    (Memstate.foreign_write_since m ~proc:0 ~since:s1 3);
  Memstate.write m ~proc:1 3 30;
  (* proc1 asking about others must see proc0's old write, not its own *)
  Alcotest.(check int) "prev other" 1 (Memstate.foreign_seq m ~proc:1 3);
  Alcotest.(check int) "value" 30 (Memstate.read m 3)

let qcheck_memstate_vs_reference =
  (* compare foreign_seq against a full-history reference *)
  QCheck.Test.make ~name:"memstate foreign_seq matches full history" ~count:300
    QCheck.(list (pair (int_bound 2) (int_bound 3)))
    (fun writes ->
      let m = Memstate.create ~words:4 in
      let history = ref [] in
      let ok = ref true in
      List.iteri
        (fun i (proc, addr) ->
          Memstate.write m ~proc addr i;
          history := (i + 1, proc, addr) :: !history;
          (* check all (proc, addr) queries *)
          for q = 0 to 2 do
            for a = 0 to 3 do
              let expected =
                List.fold_left
                  (fun acc (seq, p, ad) -> if ad = a && p <> q then max acc seq else acc)
                  0 !history
              in
              if Memstate.foreign_seq m ~proc:q a <> expected then ok := false
            done
          done)
        writes;
      !ok)

(* --- TPI --- *)

let test_tpi_basic_reuse () =
  let tpi, _ = make_tpi () in
  (* proc 0 writes a word in epoch 0 *)
  ignore (Tpi.write tpi ~proc:0 ~addr:5 ~array:0 ~value:7 ~mark:Event.Normal_write);
  (* same epoch, Time-Read(0) hits own write *)
  let r = Tpi.read tpi ~proc:0 ~addr:5 ~array:0 ~mark:(Event.Time_read 0) in
  Alcotest.check cls "own write hit" Scheme.Hit r.cls;
  Alcotest.(check int) "value" 7 r.value;
  (* next epoch, Time-Read(0) is too strict, Time-Read(1) hits *)
  Tpi.epoch_boundary tpi ~stalls:(scratch ());
  Alcotest.check cls "d=0 misses" Scheme.Conservative
    (Tpi.read tpi ~proc:0 ~addr:5 ~array:0 ~mark:(Event.Time_read 0)).cls;
  Alcotest.check cls "d=1 hits (refetched word is fresh)" Scheme.Hit
    (Tpi.read tpi ~proc:0 ~addr:5 ~array:0 ~mark:(Event.Time_read 1)).cls

let test_tpi_line_fill_tag_rule () =
  let tpi, _ = make_tpi () in
  (* miss on word 4 fetches the whole line; companion words get epoch-1 *)
  Tpi.epoch_boundary tpi ~stalls:(scratch ()) (* epoch = 1 so epoch-1 = 0 is valid *);
  ignore (Tpi.read tpi ~proc:0 ~addr:4 ~array:0 ~mark:Event.Normal_read);
  (* companion word: Time-Read(0) must MISS (tag = epoch-1) *)
  Alcotest.check cls "companion too old for d=0" Scheme.Conservative
    (Tpi.read tpi ~proc:0 ~addr:5 ~array:0 ~mark:(Event.Time_read 0)).cls;
  (* but Normal read hits it *)
  Alcotest.check cls "companion normal hit" Scheme.Hit
    (Tpi.read tpi ~proc:0 ~addr:6 ~array:0 ~mark:Event.Normal_read).cls

let test_tpi_staleness_detected () =
  let tpi, _ = make_tpi () in
  ignore (Tpi.read tpi ~proc:0 ~addr:8 ~array:0 ~mark:Event.Normal_read);
  Tpi.epoch_boundary tpi ~stalls:(scratch ());
  (* proc 1 writes the word in the next epoch *)
  ignore (Tpi.write tpi ~proc:1 ~addr:8 ~array:0 ~value:99 ~mark:Event.Normal_write);
  Tpi.epoch_boundary tpi ~stalls:(scratch ());
  (* proc 0's copy is stale; Time-Read(1) rejects it and fetches fresh *)
  let r = Tpi.read tpi ~proc:0 ~addr:8 ~array:0 ~mark:(Event.Time_read 1) in
  Alcotest.check cls "true sharing" Scheme.True_sharing r.cls;
  Alcotest.(check int) "fresh value" 99 r.value

let test_tpi_two_phase_reset () =
  let tpi, _ = make_tpi () in
  ignore (Tpi.write tpi ~proc:0 ~addr:12 ~array:0 ~value:1 ~mark:Event.Normal_write);
  (* phase = 4 epochs for 3-bit tags: after 4 boundaries a reset fires *)
  let stalled = ref 0 in
  let stalls = scratch () in
  for _ = 1 to 4 do
    Tpi.epoch_boundary tpi ~stalls;
    stalled := !stalled + stalls.(0)
  done;
  Alcotest.(check int) "reset stall charged" cfg.two_phase_reset_cycles !stalled;
  Alcotest.(check int) "one reset" 1 (Tpi.stats tpi).two_phase_resets;
  (* the word was invalidated by the reset: even Normal misses *)
  let r = Tpi.read tpi ~proc:0 ~addr:12 ~array:0 ~mark:Event.Normal_read in
  Alcotest.check cls "reset miss" Scheme.Reset_inv r.cls

let test_tpi_bypass_read_uncached () =
  let tpi, traffic = make_tpi () in
  let r = Tpi.read tpi ~proc:2 ~addr:30 ~array:0 ~mark:Event.Bypass_read in
  Alcotest.check cls "uncached" Scheme.Uncached r.cls;
  Alcotest.(check int) "one word of read traffic" 1 (Traffic.snapshot traffic).Traffic.reads;
  (* nothing was allocated *)
  let r2 = Tpi.read tpi ~proc:2 ~addr:30 ~array:0 ~mark:Event.Normal_read in
  Alcotest.check cls "still cold" Scheme.Cold r2.cls

let test_tpi_bypass_write_updates_copy () =
  let tpi, _ = make_tpi () in
  ignore (Tpi.read tpi ~proc:0 ~addr:16 ~array:0 ~mark:Event.Normal_read);
  ignore (Tpi.write tpi ~proc:0 ~addr:16 ~array:0 ~value:5 ~mark:Event.Bypass_write);
  let r = Tpi.read tpi ~proc:0 ~addr:16 ~array:0 ~mark:(Event.Time_read 0) in
  Alcotest.check cls "own copy updated" Scheme.Hit r.cls;
  Alcotest.(check int) "new value" 5 r.value

let test_tpi_replacement_class () =
  let small = { cfg with cache_bytes = 64 } (* 4 lines *) in
  let net = Kruskal_snir.create small and traffic = Traffic.create small in
  let tpi = Tpi.create small ~memory_words:256 ~network:net ~traffic in
  ignore (Tpi.read tpi ~proc:0 ~addr:0 ~array:0 ~mark:Event.Normal_read);
  (* conflicting line (same set, 4 sets) evicts line 0 *)
  ignore (Tpi.read tpi ~proc:0 ~addr:16 ~array:0 ~mark:Event.Normal_read);
  let r = Tpi.read tpi ~proc:0 ~addr:0 ~array:0 ~mark:Event.Normal_read in
  Alcotest.check cls "replacement" Scheme.Replacement r.cls

(* --- SC --- *)

let test_sc_time_read_always_fetches () =
  let sc, _ = make_sc () in
  ignore (Sc.read sc ~proc:0 ~addr:5 ~array:0 ~mark:(Event.Time_read 3));
  (* second time: still a miss (no timetags to check), and it is classed
     conservative because the data was never foreign-written *)
  let r = Sc.read sc ~proc:0 ~addr:5 ~array:0 ~mark:(Event.Time_read 3) in
  Alcotest.check cls "forced fetch" Scheme.Conservative r.cls;
  (* Normal reads enjoy the refreshed line *)
  Alcotest.check cls "normal hit" Scheme.Hit (Sc.read sc ~proc:0 ~addr:6 ~array:0 ~mark:Event.Normal_read).cls

let test_sc_epoch_boundary_noop () =
  let sc, _ = make_sc () in
  ignore (Sc.read sc ~proc:0 ~addr:5 ~array:0 ~mark:Event.Normal_read);
  Sc.epoch_boundary sc ~stalls:(scratch ());
  Alcotest.check cls "survives boundary" Scheme.Hit
    (Sc.read sc ~proc:0 ~addr:5 ~array:0 ~mark:Event.Normal_read).cls

(* --- HW --- *)

let test_hw_read_write_transitions () =
  let hw, _ = make_hw () in
  (* cold read -> S *)
  Alcotest.check cls "cold" Scheme.Cold (Hwdir.read hw ~proc:0 ~addr:5 ~array:0 ~mark:Event.Unmarked).cls;
  Alcotest.check cls "hit in S" Scheme.Hit (Hwdir.read hw ~proc:0 ~addr:5 ~array:0 ~mark:Event.Unmarked).cls;
  (* upgrade S -> M on write *)
  Alcotest.check cls "upgrade hit" Scheme.Hit
    (Hwdir.write hw ~proc:0 ~addr:5 ~array:0 ~value:1 ~mark:Event.Normal_write).cls;
  Alcotest.(check int) "one upgrade" 1 (Hwdir.stats hw).upgrades;
  Alcotest.check cls "hit in M" Scheme.Hit
    (Hwdir.write hw ~proc:0 ~addr:5 ~array:0 ~value:2 ~mark:Event.Normal_write).cls

let test_hw_invalidation_true_sharing () =
  let hw, _ = make_hw () in
  ignore (Hwdir.read hw ~proc:0 ~addr:5 ~array:0 ~mark:Event.Unmarked) (* proc 0 uses word 5 *);
  ignore (Hwdir.write hw ~proc:1 ~addr:5 ~array:0 ~value:9 ~mark:Event.Normal_write);
  Alcotest.(check int) "invalidation sent" 1 (Hwdir.stats hw).invalidations_sent;
  let r = Hwdir.read hw ~proc:0 ~addr:5 ~array:0 ~mark:Event.Unmarked in
  Alcotest.check cls "true sharing miss" Scheme.True_sharing r.cls;
  Alcotest.(check int) "sees new value" 9 r.value

let test_hw_false_sharing () =
  let hw, _ = make_hw () in
  ignore (Hwdir.read hw ~proc:0 ~addr:4 ~array:0 ~mark:Event.Unmarked) (* proc 0 uses word 4 only *);
  (* proc 1 writes a DIFFERENT word of the same line *)
  ignore (Hwdir.write hw ~proc:1 ~addr:5 ~array:0 ~value:9 ~mark:Event.Normal_write);
  let r = Hwdir.read hw ~proc:0 ~addr:4 ~array:0 ~mark:Event.Unmarked in
  Alcotest.check cls "false sharing miss" Scheme.False_sharing r.cls

let test_hw_dirty_recall () =
  let hw, traffic = make_hw () in
  ignore (Hwdir.write hw ~proc:0 ~addr:8 ~array:0 ~value:3 ~mark:Event.Normal_write) (* M at proc 0 *);
  let before = (Traffic.snapshot traffic).Traffic.writes in
  let r = Hwdir.read hw ~proc:1 ~addr:8 ~array:0 ~mark:Event.Unmarked in
  Alcotest.(check int) "recall happened" 1 (Hwdir.stats hw).dirty_recalls;
  Alcotest.(check bool) "owner wrote back" true ((Traffic.snapshot traffic).Traffic.writes > before);
  Alcotest.(check int) "forwarded value" 3 r.value;
  (* the line is now shared by both; proc 0 still hits *)
  Alcotest.check cls "owner downgraded to S" Scheme.Hit
    (Hwdir.read hw ~proc:0 ~addr:8 ~array:0 ~mark:Event.Unmarked).cls

let test_hw_writeback_on_eviction () =
  let small = { cfg with cache_bytes = 64 } in
  let net = Kruskal_snir.create small and traffic = Traffic.create small in
  let hw = Hwdir.create small ~memory_words:256 ~network:net ~traffic in
  ignore (Hwdir.write hw ~proc:0 ~addr:0 ~array:0 ~value:1 ~mark:Event.Normal_write);
  ignore (Hwdir.read hw ~proc:0 ~addr:16 ~array:0 ~mark:Event.Unmarked) (* conflicts, evicts dirty line *);
  Alcotest.(check int) "writeback counted" 1 (Hwdir.stats hw).writebacks

(* --- BASE and LimitLESS --- *)

let test_base_always_remote () =
  let net = Kruskal_snir.create cfg and traffic = Traffic.create cfg in
  let b = Base.create cfg ~memory_words:64 ~network:net ~traffic in
  ignore (Base.write b ~proc:0 ~addr:3 ~array:0 ~value:4 ~mark:Event.Normal_write);
  let r = Base.read b ~proc:1 ~addr:3 ~array:0 ~mark:Event.Unmarked in
  Alcotest.check cls "uncached" Scheme.Uncached r.cls;
  Alcotest.(check int) "value through memory" 4 r.value;
  Alcotest.(check bool) "latency is remote" true (r.latency >= cfg.miss_base_cycles)

let test_limitless_trap_latency () =
  let net = Kruskal_snir.create cfg and traffic = Traffic.create cfg in
  let l = Limitless.create cfg ~memory_words:64 ~network:net ~traffic in
  (* fewer sharers than pointers: same as HW *)
  let r = Limitless.read l ~proc:0 ~addr:4 ~array:0 ~mark:Event.Unmarked in
  Alcotest.check cls "cold" Scheme.Cold r.cls

(* --- overhead --- *)

let test_overhead_fig5_totals () =
  let p = Overhead.paper_default in
  let mb bits = Overhead.bits_to_bytes bits / (1024 * 1024) in
  Alcotest.(check int) "full-map SRAM 4MB" 4 (mb (Overhead.full_map p).cache_sram_bits);
  Alcotest.(check int) "TPI SRAM 64MB" 64 (mb (Overhead.tpi p).cache_sram_bits);
  Alcotest.(check int) "TPI no DRAM" 0 (Overhead.tpi p).memory_dram_bits;
  let gb bits = Overhead.bits_to_bytes bits / (1024 * 1024 * 1024) in
  Alcotest.(check int) "full-map DRAM ~64GB" 64 (gb (Overhead.full_map p).memory_dram_bits);
  Alcotest.(check bool) "LimitLESS DRAM far smaller" true
    ((Overhead.limitless p).memory_dram_bits * 8 < (Overhead.full_map p).memory_dram_bits)

let test_overhead_scaling () =
  let p = Overhead.paper_default in
  let bigger = { p with processors = 2048 } in
  (* full-map DRAM grows quadratically with P, TPI SRAM linearly *)
  let fm_ratio =
    float_of_int (Overhead.full_map bigger).memory_dram_bits
    /. float_of_int (Overhead.full_map p).memory_dram_bits
  in
  let tpi_ratio =
    float_of_int (Overhead.tpi bigger).cache_sram_bits
    /. float_of_int (Overhead.tpi p).cache_sram_bits
  in
  Alcotest.(check bool) "quadratic vs linear" true (fm_ratio > 3.9 && tpi_ratio < 2.1)

let suite =
  [
    Alcotest.test_case "memstate foreign tracking" `Quick test_memstate_foreign;
    QCheck_alcotest.to_alcotest qcheck_memstate_vs_reference;
    Alcotest.test_case "tpi reuse across epochs" `Quick test_tpi_basic_reuse;
    Alcotest.test_case "tpi line-fill tag rule" `Quick test_tpi_line_fill_tag_rule;
    Alcotest.test_case "tpi staleness detected" `Quick test_tpi_staleness_detected;
    Alcotest.test_case "tpi two-phase reset" `Quick test_tpi_two_phase_reset;
    Alcotest.test_case "tpi bypass read" `Quick test_tpi_bypass_read_uncached;
    Alcotest.test_case "tpi bypass write" `Quick test_tpi_bypass_write_updates_copy;
    Alcotest.test_case "tpi replacement class" `Quick test_tpi_replacement_class;
    Alcotest.test_case "sc forced fetch" `Quick test_sc_time_read_always_fetches;
    Alcotest.test_case "sc epoch boundary" `Quick test_sc_epoch_boundary_noop;
    Alcotest.test_case "hw transitions" `Quick test_hw_read_write_transitions;
    Alcotest.test_case "hw true sharing" `Quick test_hw_invalidation_true_sharing;
    Alcotest.test_case "hw false sharing" `Quick test_hw_false_sharing;
    Alcotest.test_case "hw dirty recall" `Quick test_hw_dirty_recall;
    Alcotest.test_case "hw writeback on eviction" `Quick test_hw_writeback_on_eviction;
    Alcotest.test_case "base remote" `Quick test_base_always_remote;
    Alcotest.test_case "limitless" `Quick test_limitless_trap_latency;
    Alcotest.test_case "fig5 totals" `Quick test_overhead_fig5_totals;
    Alcotest.test_case "overhead scaling" `Quick test_overhead_scaling;
  ]
