(** Tests for the bounded model checker ({!Hscd_check.Mc}) and the
    {!Scheme.S.snapshot} contract it rests on: replaying the same access
    prefix on a fresh instance reproduces the same snapshot for every
    scheme; exploration of correct schemes is violation-free; a
    fault-injected scheme yields a counterexample whose trace is
    well-formed, sound, and replays to the same failure through the
    timing engine. *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event
module Scheme = Hscd_coherence.Scheme
module Run = Hscd_sim.Run
module Mc = Hscd_check.Mc
module Fault = Hscd_check.Fault
module Oracle = Hscd_check.Oracle
module Golden = Hscd_check.Golden
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic

(* --- snapshot determinism across all seven schemes --- *)

(* a fixed prefix: writes and marked reads by two processors over two
   words in one line, with enough boundaries to cross a 2-bit-timetag
   two-phase reset *)
type step =
  | R of int * int * Event.rmark  (* proc, addr, mark *)
  | W of int * int * int  (* proc, addr, value *)
  | B  (* epoch boundary *)

let script =
  [
    W (0, 0, 11); R (1, 1, Event.Unmarked); B;
    R (1, 0, Event.Time_read 1); W (1, 1, 22); B;
    R (0, 0, Event.Normal_read); R (0, 1, Event.Bypass_read); B;
    B;
    R (1, 0, Event.Time_read 3); W (0, 0, 33); B;
    R (1, 0, Event.Time_read 0);
  ]

let cfg =
  Config.validate
    {
      Config.default with
      processors = 2;
      line_words = 2;
      timetag_bits = 2;
      cache_bytes = 64 * Config.default.word_bytes;
    }

let make kind =
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  Run.pack kind cfg ~memory_words:4 ~network ~traffic

(* apply the script, collecting the snapshot after every step *)
let snapshots packed =
  match packed with
  | Scheme.Packed ((module S), s) ->
    List.map
      (fun step ->
        (match step with
        | R (proc, addr, mark) -> ignore (S.read s ~proc ~addr ~array:0 ~mark)
        | W (proc, addr, value) ->
          ignore (S.write s ~proc ~addr ~array:0 ~value ~mark:Event.Normal_write)
        | B -> S.epoch_boundary s ~stalls:(Array.make cfg.Config.processors 0));
        S.snapshot s)
      script

let test_snapshot_determinism () =
  List.iter
    (fun kind ->
      let a = snapshots (make kind) and b = snapshots (make kind) in
      List.iteri
        (fun i (sa, sb) ->
          if sa <> sb then
            Alcotest.failf "%s: snapshots diverge at step %d" (Run.scheme_name kind) i)
        (List.combine a b);
      (* the snapshot is not inert: the script must change it at least once *)
      match a with
      | first :: rest ->
        if List.for_all (( = ) first) rest then
          Alcotest.failf "%s: snapshot never changed over the script" (Run.scheme_name kind)
      | [] -> ())
    Run.extended_schemes

let test_snapshot_distinguishes_values () =
  (* same shape, different written value => different snapshot *)
  List.iter
    (fun kind ->
      let drive v packed =
        match packed with
        | Scheme.Packed ((module S), s) ->
          ignore (S.write s ~proc:0 ~addr:0 ~array:0 ~value:v ~mark:Event.Normal_write);
          S.snapshot s
      in
      let a = drive 7 (make kind) and b = drive 8 (make kind) in
      if a = b then
        Alcotest.failf "%s: snapshot blind to the written value" (Run.scheme_name kind))
    Run.extended_schemes

(* --- exploration of correct schemes --- *)

let quick_scope = { Mc.default_scope with Mc.depth = 5 }

let test_explore_clean () =
  List.iter
    (fun kind ->
      let r = Mc.explore ~jobs:1 quick_scope kind in
      (match r.Mc.counterexample with
      | Some cx ->
        Alcotest.failf "%s: spurious counterexample: %s (%s)" (Run.scheme_name kind)
          cx.Mc.violation
          (Mc.actions_to_string cx.Mc.actions)
      | None -> ());
      if r.Mc.stats.Mc.truncated then Alcotest.failf "%s: truncated" (Run.scheme_name kind);
      if r.Mc.stats.Mc.states < 10 then
        Alcotest.failf "%s: only %d states explored" (Run.scheme_name kind) r.Mc.stats.Mc.states)
    Run.extended_schemes

let test_explore_deterministic () =
  (* same scope, any job count: identical state/transition counts *)
  let a = Mc.explore ~jobs:1 quick_scope Run.TPI and b = Mc.explore ~jobs:4 quick_scope Run.TPI in
  Alcotest.(check int) "states" a.Mc.stats.Mc.states b.Mc.stats.Mc.states;
  Alcotest.(check int) "transitions" a.Mc.stats.Mc.transitions b.Mc.stats.Mc.transitions

let test_migration_scope () =
  (* migration mode: tighter windows, Migrate actions; still clean *)
  let scope = { quick_scope with Mc.migration = true; Mc.depth = 4 } in
  List.iter
    (fun kind ->
      let r = Mc.explore ~jobs:1 scope kind in
      match r.Mc.counterexample with
      | Some cx ->
        Alcotest.failf "%s under migration: %s" (Run.scheme_name kind) cx.Mc.violation
      | None -> ())
    [ Run.Base; Run.TPI; Run.HW ]

(* --- fault injection: counterexample found and engine-replayable --- *)

let fault_scope = { Mc.default_scope with Mc.depth = 7 }

let test_fault_counterexample () =
  let fault = Fault.Stale_time_read 1 in
  let r = Mc.explore ~fault ~jobs:1 fault_scope Run.TPI in
  match r.Mc.counterexample with
  | None -> Alcotest.fail "stale-time-read+1 on TPI produced no counterexample"
  | Some cx ->
    (* the counterexample trace is well-formed and sound: the failure is
       the scheme's, not the input's *)
    let trace = Mc.trace_of_actions fault_scope cx.Mc.actions in
    Alcotest.(check (list string)) "lint" [] (Golden.lint trace);
    Alcotest.(check (list string)) "mark soundness" []
      (Golden.mark_sound (Mc.cfg_of fault_scope) trace);
    (* and it replays through the timing engine to the same violation *)
    let _trace, o = Mc.replay ~fault fault_scope cx in
    if Oracle.ok o then Alcotest.fail "engine replay did not reproduce the violation";
    Alcotest.(check bool) "TPI is the failing scheme" true
      (List.mem Run.TPI (Oracle.failing_schemes o))

let test_fault_clean_without_injection () =
  (* the same counterexample trace replayed WITHOUT the fault is clean:
     the trace is a directed regression, not a broken input *)
  let fault = Fault.Stale_time_read 1 in
  let r = Mc.explore ~fault ~jobs:1 fault_scope Run.TPI in
  match r.Mc.counterexample with
  | None -> Alcotest.fail "no counterexample"
  | Some cx ->
    let _trace, o = Mc.replay fault_scope cx in
    if not (Oracle.ok o) then
      Alcotest.failf "correct TPI fails the counterexample trace:\n%s" (Oracle.describe o)

let test_corrupt_read_fault () =
  let fault = Fault.Corrupt_read_value 3 in
  let r = Mc.explore ~fault ~jobs:1 { quick_scope with Mc.depth = 4 } Run.SC in
  match r.Mc.counterexample with
  | None -> Alcotest.fail "corrupt-read-3 on SC produced no counterexample"
  | Some cx ->
    let _trace, o = Mc.replay ~fault { quick_scope with Mc.depth = 4 } cx in
    if Oracle.ok o then Alcotest.fail "engine replay did not reproduce the corruption"

(* --- counterexample-shaped trace conversion --- *)

let test_trace_of_actions_shape () =
  let scope = Mc.default_scope in
  let actions =
    [
      Mc.Write { task = 0; word = 0 };
      Mc.Advance;
      Mc.Read { task = 1; word = 0; mark = Event.Time_read 1 };
      Mc.Advance;
    ]
  in
  let t = Mc.trace_of_actions scope actions in
  (* trailing Advance opens one empty epoch beyond the two action epochs *)
  Alcotest.(check int) "epochs" 3 (Array.length t.Hscd_sim.Trace.epochs);
  Array.iter
    (fun (e : Hscd_sim.Trace.epoch) ->
      Alcotest.(check int) "one task per processor" scope.Mc.procs (Array.length e.tasks))
    t.Hscd_sim.Trace.epochs;
  (* golden stamping: the read must observe the write's value *)
  let v = Mc.write_value ~word:0 ~n:1 in
  Alcotest.(check int) "golden memory" v t.Hscd_sim.Trace.golden_memory.(0);
  Alcotest.(check (list string)) "lint" [] (Golden.lint t);
  Alcotest.(check (list string)) "sound" [] (Golden.mark_sound (Mc.cfg_of scope) t)

let suite =
  [
    Alcotest.test_case "snapshot determinism" `Quick test_snapshot_determinism;
    Alcotest.test_case "snapshot sees values" `Quick test_snapshot_distinguishes_values;
    Alcotest.test_case "explore clean schemes" `Slow test_explore_clean;
    Alcotest.test_case "explore deterministic" `Quick test_explore_deterministic;
    Alcotest.test_case "migration scope" `Quick test_migration_scope;
    Alcotest.test_case "fault counterexample replays" `Quick test_fault_counterexample;
    Alcotest.test_case "counterexample clean unfaulted" `Quick test_fault_clean_without_injection;
    Alcotest.test_case "corrupt-read fault" `Quick test_corrupt_read_fault;
    Alcotest.test_case "trace conversion" `Quick test_trace_of_actions_shape;
  ]
