(** Runner chaos harness (`dune build @chaos-smoke`): one end-to-end
    supervised sweep at P=64 with every failure mode the robustness layer
    claims to survive, injected at once:

    - worker crashes (two cells crash on their first attempts),
    - a hang that must blow the per-task deadline and be retried on a
      fresh worker,
    - a corrupted and a truncated compile-cache entry (must be silently
      regenerated),
    - a checkpoint journal truncated mid-record (kill-mid-write; the torn
      tail must be dropped, the valid prefix resumed from).

    The supervised run must converge and its results must be
    bit-identical to a fault-free jobs=1 run; a subsequent --resume-style
    rerun must reproduce them again from the journal alone. *)

module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Engine = Hscd_sim.Engine
module Common = Hscd_experiments.Common
module Pool = Hscd_util.Pool
module Journal = Hscd_util.Journal
module Err = Hscd_util.Hscd_error
module Chaos = Hscd_check.Fault.Chaos

let failures = ref 0

let check name cond =
  if cond then Printf.printf "  ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "  FAIL %s\n%!" name
  end

let cfg = { Config.default with processors = 64 }
let schemes = [ Run.TPI; Run.HW ]

let bench_results_equal (a : Common.bench_result list) (b : Common.bench_result list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Common.bench_result) (y : Common.bench_result) ->
         x.bench = y.bench
         && List.for_all2
              (fun (ka, (ra : Engine.result)) (kb, rb) -> ka = kb && ra = rb)
              x.by_scheme y.by_scheme)
       a b

let get what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" what (Err.to_string e))

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "hscd_chaos_cache" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let journal_path = Filename.concat (Filename.get_temp_dir_name ()) "hscd_chaos.jnl" in
  if Sys.file_exists journal_path then Sys.remove journal_path;
  Run.set_compile_cache_dir (Some dir);
  Run.reset_compile_cache ();

  (* --- 1. fault-free reference, jobs=1 (also populates the disk cache) --- *)
  Printf.printf "chaos-smoke: P=%d, schemes TPI+HW, small benches\n%!" cfg.Config.processors;
  let reference = get "reference run" (Common.run_all_result ~cfg ~schemes ~small:true ~jobs:1 ()) in
  check "reference sweep completed" (List.length reference = 6);

  (* --- 2. seed the checkpoint with the TPI half, then tear its tail --- *)
  let _ =
    get "seed run"
      (Common.run_all_result ~cfg ~schemes:[ Run.TPI ] ~small:true ~jobs:1
         ~checkpoint:journal_path ())
  in
  Chaos.truncate_file journal_path ~drop:7;
  let seeded = get "torn journal load" (Journal.load journal_path) in
  check "torn tail dropped a record but kept the prefix" (List.length seeded = 5);

  (* --- 3. corrupt the compile cache: one bit flip, one truncation --- *)
  let entries = Sys.readdir dir |> Array.to_list |> List.sort compare in
  check "disk cache populated" (List.length entries = 6);
  (match entries with
  | e1 :: e2 :: _ ->
    Chaos.corrupt_file (Filename.concat dir e1) ~byte:200;
    Chaos.truncate_file (Filename.concat dir e2) ~drop:64
  | _ -> ());
  Run.reset_compile_cache ();

  (* --- 4. the chaos run: crashes + a hang, resumed from the torn journal --- *)
  let plan =
    Chaos.plan
      ~crash_first:[ ("TRFD/HW", 2); ("QCD2/HW", 1) ]
      ~hang_first:[ ("OCEAN/HW", 120.0) ]
      ()
  in
  let inject ~bench ~kind = Chaos.strike plan (bench ^ "/" ^ Run.scheme_name kind) in
  (* the deadline must sit well above a contended cell's honest runtime
     (seconds) and well below the injected hang (minutes) *)
  let policy =
    { Pool.default_policy with Pool.deadline = Some 15.0; retries = 3; backoff = 0.02 }
  in
  let chaotic =
    get "chaos run"
      (Common.run_all_result ~cfg ~schemes ~small:true ~jobs:4 ~policy
         ~checkpoint:journal_path ~inject ())
  in
  Chaos.release plan;
  check "crash plan struck TRFD/HW at least three times (2 crashes + success)"
    (Chaos.attempts plan "TRFD/HW" >= 3);
  check "hang plan struck OCEAN/HW at least twice (hang + retry)"
    (Chaos.attempts plan "OCEAN/HW" >= 2);
  check "chaos run bit-identical to fault-free jobs=1" (bench_results_equal reference chaotic);

  (* the corrupted + truncated cache entries were regenerated, the intact
     four served from disk *)
  let s = Run.compile_cache_stats () in
  check "corrupt cache entries regenerated"
    (s.Run.trace_generations = 2 && s.Run.disk_hits = 4);

  (* --- 5. resume: everything must now come from the journal alone --- *)
  let keys = List.map fst (get "final journal load" (Journal.load journal_path)) in
  let distinct = List.sort_uniq compare keys in
  check "journal holds every cell of the grid" (List.length distinct = 12);
  let chaos_injects = Chaos.attempts plan "TRFD/HW" in
  let resumed =
    get "resumed run"
      (Common.run_all_result ~cfg ~schemes ~small:true ~jobs:1 ~checkpoint:journal_path
         ~inject ())
  in
  check "resume re-simulated nothing" (Chaos.attempts plan "TRFD/HW" = chaos_injects);
  check "resume bit-identical to fault-free jobs=1" (bench_results_equal reference resumed);

  (* --- 6. a corrupt journal record is re-simulated, not trusted --- *)
  Chaos.corrupt_file journal_path ~byte:(-20);
  let healed =
    get "run after journal corruption"
      (Common.run_all_result ~cfg ~schemes ~small:true ~jobs:2 ~policy
         ~checkpoint:journal_path ())
  in
  check "corrupt journal tail healed, results identical" (bench_results_equal reference healed);

  Sys.remove journal_path;
  if !failures > 0 then begin
    Printf.printf "chaos-smoke: %d check(s) FAILED\n" !failures;
    exit 1
  end;
  print_endline "chaos-smoke: all checks passed"
