(* Service-layer units: the typed admission error kinds, the framed wire
   protocol (round-trip, reassembly, corruption), property tests of the
   two-stage weighted round-robin scheduler, and the fd-leak regression
   over repeatedly failing journal/trace opens. The end-to-end daemon
   chaos scenarios (kill/restart, wire corruption, hung clients) live in
   service_smoke.ml. *)

module E = Hscd_util.Hscd_error
module P = Hscd_service.Protocol
module Sched = Hscd_service.Scheduler

(* ------------------------------------------------------------------ *)
(* Busy / Rejected error kinds                                         *)
(* ------------------------------------------------------------------ *)

let test_error_kinds () =
  let busy = E.make E.Busy "queue full" in
  let rejected = E.make E.Rejected "unknown tenant" in
  Alcotest.(check bool) "Busy is transient (backpressure clears)" true (E.transient busy);
  Alcotest.(check bool) "Rejected is final (policy cannot clear)" false (E.transient rejected);
  Alcotest.(check int) "Busy exit code" 4 (E.exit_code busy);
  Alcotest.(check int) "Rejected exit code" 5 (E.exit_code rejected);
  Alcotest.(check string) "Busy kind name" "busy" (E.kind_name E.Busy);
  Alcotest.(check string) "Rejected kind name" "rejected" (E.kind_name E.Rejected);
  (* the pre-existing codes must be untouched *)
  Alcotest.(check int) "Usage still 2" 2 (E.exit_code (E.make E.Usage "x"));
  Alcotest.(check int) "Internal still 3" 3 (E.exit_code (E.make E.Internal "x"));
  Alcotest.(check int) "Io still 1" 1 (E.exit_code (E.make E.Io "x"))

(* ------------------------------------------------------------------ *)
(* Protocol framing                                                    *)
(* ------------------------------------------------------------------ *)

let sample_spec =
  P.Sweep { schemes = [ "TPI"; "HW" ]; cfg = P.default_cfg_spec; small = true }

let sample_requests =
  [
    P.Hello { version = P.version; tenant = "alice" };
    P.Submit { digest = P.job_digest sample_spec; spec = sample_spec };
    P.Ping;
  ]

let feed_all ?(chunk = max_int) dec s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let k = min chunk (n - !off) in
    P.feed dec b !off k;
    off := !off + k
  done

let test_roundtrip () =
  (* all frames concatenated, fed one byte at a time: reassembly across
     arbitrarily fragmented reads *)
  let wire = String.concat "" (List.map P.encode_request sample_requests) in
  let dec = P.decoder () in
  feed_all ~chunk:1 dec wire;
  List.iter
    (fun expected ->
      match P.next_frame dec with
      | Ok (Some payload) ->
        (match P.parse_request payload with
        | Ok got -> Alcotest.(check bool) "request round-trips" true (got = expected)
        | Error e -> Alcotest.failf "parse failed: %s" (E.to_string e))
      | Ok None -> Alcotest.fail "frame should be complete"
      | Error e -> Alcotest.failf "decode failed: %s" (E.to_string e))
    sample_requests;
  (match P.next_frame dec with
  | Ok None -> ()
  | _ -> Alcotest.fail "decoder should be drained");
  Alcotest.(check int) "no residual bytes" 0 (P.buffered dec)

let test_truncated () =
  let wire = P.encode_request P.Ping in
  (* every proper prefix must say "need more", never corrupt or a frame *)
  for n = 0 to String.length wire - 1 do
    let dec = P.decoder () in
    feed_all dec (String.sub wire 0 n);
    match P.next_frame dec with
    | Ok None -> ()
    | Ok (Some _) -> Alcotest.failf "prefix of %d bytes yielded a frame" n
    | Error e -> Alcotest.failf "prefix of %d bytes flagged corrupt: %s" n (E.to_string e)
  done

let test_bit_flips () =
  let wire = P.encode_request (P.Submit { digest = P.job_digest sample_spec; spec = sample_spec }) in
  (* flip one bit in every byte: the decoder must reject the frame (or,
     for a length-field flip that makes the frame look longer, keep
     waiting) — it must never hand over a payload *)
  for i = 0 to String.length wire - 1 do
    let b = Bytes.of_string wire in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (i mod 8))));
    let dec = P.decoder () in
    P.feed dec b 0 (Bytes.length b);
    match P.next_frame dec with
    | Error _ -> () (* typed Corrupt: magic, length or checksum caught it *)
    | Ok None -> () (* length flipped upward: stuck waiting, never delivered *)
    | Ok (Some payload) ->
      Alcotest.(check bool)
        (Printf.sprintf "flipped byte %d must not verify" i)
        true
        (payload <> Bytes.to_string b)
      (* unreachable in practice: record it loudly if the checksum ever
         passes a corrupted frame *)
  done

let test_oversized_length () =
  let wire = P.encode_request P.Ping in
  let b = Bytes.of_string wire in
  Bytes.set_int64_le b 8 (Int64.of_int (P.max_frame + 1));
  let dec = P.decoder () in
  P.feed dec b 0 (Bytes.length b);
  (match P.next_frame dec with
  | Error e -> Alcotest.(check bool) "oversized length is Corrupt" true (e.E.kind = E.Corrupt)
  | _ -> Alcotest.fail "oversized length must be rejected before allocation");
  let b = Bytes.of_string wire in
  Bytes.set_int64_le b 8 (-1L);
  let dec = P.decoder () in
  P.feed dec b 0 (Bytes.length b);
  match P.next_frame dec with
  | Error _ -> ()
  | _ -> Alcotest.fail "negative length must be rejected"

let test_digest_identity () =
  let d1 = P.job_digest sample_spec in
  let d2 = P.job_digest (P.Sweep { schemes = [ "TPI"; "HW" ]; cfg = P.default_cfg_spec; small = true }) in
  let d3 = P.job_digest (P.Sweep { schemes = [ "HW"; "TPI" ]; cfg = P.default_cfg_spec; small = true }) in
  Alcotest.(check string) "equal specs share a digest" d1 d2;
  Alcotest.(check bool) "different specs differ" true (d1 <> d3)

(* ------------------------------------------------------------------ *)
(* Scheduler properties                                                *)
(* ------------------------------------------------------------------ *)

(* submissions tagged (tenant, seq) so served order is checkable *)
let drain sched =
  let rec go acc =
    match Sched.next sched with None -> List.rev acc | Some (t, j) -> go ((t, j) :: acc)
  in
  go []

let qcheck_work_conserving =
  QCheck.Test.make ~name:"scheduler is work-conserving and loses nothing" ~count:200
    QCheck.(list (pair (int_bound 3) unit))
    (fun submissions ->
      let sched = Sched.create () in
      let admitted = ref 0 in
      List.iteri
        (fun i (t, ()) ->
          match Sched.submit sched ~tenant:(Printf.sprintf "t%d" t) i with
          | `Queued _ -> incr admitted
          | `Busy _ | `Rejected _ -> ())
        submissions;
      let served = drain sched in
      List.length served = !admitted && Sched.pending sched = 0 && Sched.next sched = None)

let qcheck_fcfs_within_tenant =
  QCheck.Test.make ~name:"scheduler serves FCFS within each tenant" ~count:200
    QCheck.(list_of_size Gen.(int_bound 60) (int_bound 3))
    (fun tenants ->
      let sched = Sched.create () in
      List.iteri
        (fun i t -> ignore (Sched.submit sched ~tenant:(Printf.sprintf "t%d" t) i))
        tenants;
      let served = drain sched in
      let last = Hashtbl.create 4 in
      List.for_all
        (fun (t, seq) ->
          let ok = match Hashtbl.find_opt last t with None -> true | Some p -> seq > p in
          Hashtbl.replace last t seq;
          ok)
        served)

(* Backlogged window: with every tenant over-provisioned with work, any
   service window of n slots gives tenant i within (error margin) of
   n * w_i / sum w. Stride scheduling bounds the error by 1 slot per
   competing tenant. *)
let qcheck_weighted_shares =
  QCheck.Test.make ~name:"scheduler shares a backlogged window by weight" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (w1, w2) ->
      let sched = Sched.create () in
      Sched.add_tenant sched ~name:"a" { Sched.weight = w1; capacity = 2048 };
      Sched.add_tenant sched ~name:"b" { Sched.weight = w2; capacity = 2048 };
      let window = 50 * (w1 + w2) in
      for i = 0 to window do
        ignore (Sched.submit sched ~tenant:"a" i);
        ignore (Sched.submit sched ~tenant:"b" i)
      done;
      let counts = Hashtbl.create 2 in
      for _ = 1 to window do
        match Sched.next sched with
        | Some (t, _) ->
          Hashtbl.replace counts t (1 + Option.value (Hashtbl.find_opt counts t) ~default:0)
        | None -> ()
      done;
      let got t = Option.value (Hashtbl.find_opt counts t) ~default:0 in
      let expect w = float_of_int window *. float_of_int w /. float_of_int (w1 + w2) in
      abs_float (float_of_int (got "a") -. expect w1) <= 1.0
      && abs_float (float_of_int (got "b") -. expect w2) <= 1.0)

(* Adversarial arrivals: tenants submit and the server drains in a random
   interleaving. From any point where tenant q has work queued, q must be
   served within sum_{i<>q} (ceil(w_i / w_q) + 1) service slots — the
   stride bound (with one extra slot of slack per competitor for pass
   re-clamping on empty->nonempty transitions). *)
let qcheck_no_starvation =
  QCheck.Test.make ~name:"scheduler never starves a nonempty tenant" ~count:150
    QCheck.(
      pair
        (array_of_size Gen.(return 3) (int_range 1 8))
        (list_of_size Gen.(int_bound 120) (pair (int_bound 3) bool)))
    (fun (weights, script) ->
      let sched = Sched.create () in
      Array.iteri
        (fun i w ->
          Sched.add_tenant sched ~name:(Printf.sprintf "t%d" i)
            { Sched.weight = w; capacity = 4096 })
        weights;
      let n = Array.length weights in
      let bound q =
        let s = ref 0 in
        for i = 0 to n - 1 do
          if i <> q then s := !s + ((weights.(i) + weights.(q) - 1) / weights.(q)) + 1
        done;
        2 * !s (* 2x margin: the property is the absence of starvation *)
      in
      (* waiting.(q): slots since q became continuously nonempty *)
      let waiting = Array.make n (-1) in
      let ok = ref true in
      let note_serve served =
        for q = 0 to n - 1 do
          if Sched.tenant_pending sched (Printf.sprintf "t%d" q) > 0 then begin
            if waiting.(q) < 0 then waiting.(q) <- 0
            else begin
              waiting.(q) <- waiting.(q) + 1;
              if waiting.(q) > bound q then ok := false
            end
          end
          else waiting.(q) <- -1
        done;
        match served with
        | Some (t, _) ->
          Scanf.sscanf t "t%d" (fun q -> waiting.(q) <- -1)
        | None -> ()
      in
      List.iter
        (fun (t, do_serve) ->
          ignore (Sched.submit sched ~tenant:(Printf.sprintf "t%d" (t mod n)) 0);
          if do_serve then begin
            let served = Sched.next sched in
            note_serve served
          end)
        script;
      (* drain the tail under the same bound *)
      let rec finish () =
        match Sched.next sched with
        | None -> ()
        | served ->
          note_serve served;
          finish ()
      in
      finish ();
      !ok)

let test_admission_bounds () =
  let sched = Sched.create ~strict:true () in
  Sched.add_tenant sched ~name:"a" { Sched.weight = 1; capacity = 2 };
  (match Sched.submit sched ~tenant:"a" 0 with
  | `Queued 0 -> ()
  | _ -> Alcotest.fail "first submit queues at position 0");
  (match Sched.submit sched ~tenant:"a" 1 with
  | `Queued 1 -> ()
  | _ -> Alcotest.fail "second submit queues at position 1");
  (match Sched.submit sched ~tenant:"a" 2 with
  | `Busy _ -> ()
  | _ -> Alcotest.fail "submit beyond capacity must be Busy");
  (match Sched.submit sched ~tenant:"mallory" 0 with
  | `Rejected _ -> ()
  | _ -> Alcotest.fail "unknown tenant under strict must be Rejected");
  (* force bypasses capacity (crash recovery of journaled admissions) *)
  Sched.force sched ~tenant:"a" 3;
  Alcotest.(check int) "force enqueues beyond capacity" 3 (Sched.tenant_pending sched "a");
  (* back under capacity (2) only after two of the three drain *)
  ignore (Sched.next sched);
  ignore (Sched.next sched);
  match Sched.submit sched ~tenant:"a" 4 with
  | `Queued _ -> ()
  | _ -> Alcotest.fail "capacity frees as the queue drains"

let test_idle_tenant_no_banked_credit () =
  (* tenant b sits idle while a is served many times; when b wakes it must
     not monopolize the scheduler to "catch up" *)
  let sched = Sched.create () in
  Sched.add_tenant sched ~name:"a" { Sched.weight = 1; capacity = 4096 };
  Sched.add_tenant sched ~name:"b" { Sched.weight = 1; capacity = 4096 };
  for i = 0 to 99 do
    ignore (Sched.submit sched ~tenant:"a" i)
  done;
  for _ = 1 to 50 do
    ignore (Sched.next sched)
  done;
  for i = 0 to 19 do
    ignore (Sched.submit sched ~tenant:"b" i)
  done;
  (* equal weights from here on: any window of 10 serves splits ~5/5 *)
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 10 do
    match Sched.next sched with
    | Some ("a", _) -> incr a
    | Some ("b", _) -> incr b
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "woken tenant interleaves, not monopolizes (a=%d b=%d)" !a !b)
    true
    (abs (!a - !b) <= 1)

(* ------------------------------------------------------------------ *)
(* fd-leak regression: failing opens must not consume descriptors       *)
(* ------------------------------------------------------------------ *)

let count_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None (* not on Linux: skip the count *)

let failing_opens dir iterations =
  let garbage = Filename.concat dir "garbage.bin" in
  let oc = open_out_bin garbage in
  output_string oc "NOTAMAGIC the rest of this file is not a journal or a trace\n";
  close_out oc;
  let truncated = Filename.concat dir "truncated.jnl" in
  let oc = open_out_bin truncated in
  output_string oc "HSCDJNL1";
  output_string oc "\x0c\x00\x00\x00\x00\x00\x00\x00torn"; (* key_len promises 12, 4 present *)
  close_out oc;
  for _ = 1 to iterations do
    (match Hscd_util.Journal.load garbage with Ok _ -> failwith "garbage loaded" | Error _ -> ());
    (match Hscd_util.Journal.open_append garbage with
    | Ok _ -> failwith "garbage opened as journal"
    | Error _ -> ());
    (* torn tail: open succeeds by healing — must still not leak the
       fds used for the read/rewrite cycle *)
    (match Hscd_util.Journal.open_append truncated with
    | Ok j -> Hscd_util.Journal.close j
    | Error _ -> ());
    (match E.guard (fun () -> Hscd_sim.Trace_io.load garbage) with
    | Ok _ -> failwith "garbage loaded as text trace"
    | Error _ -> ());
    (match E.guard (fun () -> Hscd_sim.Trace_io.read_packed garbage) with
    | Ok _ -> failwith "garbage loaded as packed trace"
    | Error _ -> ());
    (match E.guard (fun () -> Hscd_sim.Trace_io.map_packed garbage) with
    | Ok _ -> failwith "garbage mapped as packed trace"
    | Error _ -> ());
    ignore (Hscd_sim.Trace_io.is_binary garbage);
    ignore (Hscd_sim.Trace_io.is_binary (Filename.concat dir "does-not-exist"))
  done

let test_fd_leaks () =
  let dir = Filename.temp_file "hscd-fd" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* warm-up pass so lazily allocated fds (stdio, etc.) stabilize *)
      failing_opens dir 2;
      match count_fds () with
      | None -> () (* no /proc: the ulimit variant in service_smoke still runs *)
      | Some before ->
        failing_opens dir 512;
        let after = Option.get (count_fds ()) in
        Alcotest.(check int)
          (Printf.sprintf "fd count stable across 512 failing opens (%d -> %d)" before after)
          before after)

let suite =
  [
    Alcotest.test_case "Busy/Rejected error kinds" `Quick test_error_kinds;
    Alcotest.test_case "protocol round-trip, byte-at-a-time reassembly" `Quick test_roundtrip;
    Alcotest.test_case "protocol truncation means need-more, never corrupt" `Quick test_truncated;
    Alcotest.test_case "protocol rejects every single-bit flip" `Quick test_bit_flips;
    Alcotest.test_case "protocol bounds the length field" `Quick test_oversized_length;
    Alcotest.test_case "job digests are stable identities" `Quick test_digest_identity;
    QCheck_alcotest.to_alcotest qcheck_work_conserving;
    QCheck_alcotest.to_alcotest qcheck_fcfs_within_tenant;
    QCheck_alcotest.to_alcotest qcheck_weighted_shares;
    QCheck_alcotest.to_alcotest qcheck_no_starvation;
    Alcotest.test_case "admission: Busy at capacity, Rejected unknown, force bypass" `Quick
      test_admission_bounds;
    Alcotest.test_case "idle tenant wakes without banked credit" `Quick
      test_idle_tenant_no_banked_credit;
    Alcotest.test_case "failing opens leak no fds" `Quick test_fd_leaks;
  ]
