(** The compile cache: parameter sweeps must regenerate each reference
    stream exactly once (in memory), and the optional on-disk store must
    round-trip traces across "processes" (simulated here by clearing the
    in-memory table). *)

module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Trace_io = Hscd_sim.Trace_io
module Common = Hscd_experiments.Common
module Kernels = Hscd_workloads.Kernels

(* Every test resets the global cache so counters start from zero and
   entries from other suites (or earlier tests) can't leak in. *)
let with_fresh_cache f =
  Run.reset_compile_cache ();
  Run.set_compile_cache_dir None;
  Fun.protect ~finally:(fun () ->
      Run.reset_compile_cache ();
      Run.set_compile_cache_dir (Sys.getenv_opt "HSCD_COMPILE_CACHE"))
    f

let test_memory_hit () =
  with_fresh_cache @@ fun () ->
  let prog = Kernels.jacobi1d ~n:32 ~iters:2 () in
  let c1 = Run.compile prog in
  let c2 = Run.compile prog in
  let s = Run.compile_cache_stats () in
  Alcotest.(check int) "one generation" 1 s.Run.trace_generations;
  Alcotest.(check int) "one memory hit" 1 s.Run.memory_hits;
  Alcotest.(check bool) "hit shares the compiled artifact" true (c1 == c2)

let test_timing_knobs_share_entry () =
  with_fresh_cache @@ fun () ->
  let prog = Kernels.jacobi1d ~n:32 ~iters:2 () in
  (* processors, timetag bits, cache size: all timing-side — one entry *)
  let cfgs =
    [
      Config.default;
      { Config.default with processors = 64 };
      { Config.default with timetag_bits = 4 };
      { Config.default with cache_bytes = Config.default.cache_bytes / 2 };
    ]
  in
  List.iter (fun cfg -> ignore (Run.compile ~cfg prog)) cfgs;
  let s = Run.compile_cache_stats () in
  Alcotest.(check int) "one generation across the sweep" 1 s.Run.trace_generations;
  Alcotest.(check int) "rest are hits" (List.length cfgs - 1) s.Run.memory_hits

let test_trace_knobs_split_entry () =
  with_fresh_cache @@ fun () ->
  let prog = Kernels.jacobi1d ~n:32 ~iters:2 () in
  ignore (Run.compile prog);
  (* line size reaches the address map; scheduling staticness and the
     marking flags reach the marked program — all must miss *)
  ignore (Run.compile ~cfg:{ Config.default with line_words = 8 } prog);
  ignore (Run.compile ~cfg:{ Config.default with scheduling = Config.Dynamic } prog);
  ignore (Run.compile ~intertask:false prog);
  let s = Run.compile_cache_stats () in
  Alcotest.(check int) "four distinct entries" 4 s.Run.trace_generations;
  Alcotest.(check int) "no spurious hits" 0 s.Run.memory_hits

let test_cache_off () =
  with_fresh_cache @@ fun () ->
  let prog = Kernels.jacobi1d ~n:32 ~iters:2 () in
  ignore (Run.compile ~cache:false prog);
  ignore (Run.compile ~cache:false prog);
  let s = Run.compile_cache_stats () in
  Alcotest.(check int) "both generated" 2 s.Run.trace_generations;
  Alcotest.(check int) "no hits" 0 s.Run.memory_hits

let test_run_all_sweep_compiles_once () =
  with_fresh_cache @@ fun () ->
  (* the acceptance check: a two-point sweep over a timing knob evaluates
     each Perfect Club model exactly once *)
  ignore (Common.run_all ~cfg:{ Config.default with timetag_bits = 8 } ~schemes:[ Run.TPI ]
            ~small:true ());
  let g1 = (Run.compile_cache_stats ()).Run.trace_generations in
  Alcotest.(check int) "six models generated" 6 g1;
  ignore (Common.run_all ~cfg:{ Config.default with timetag_bits = 4 } ~schemes:[ Run.TPI ]
            ~small:true ());
  let s = Run.compile_cache_stats () in
  Alcotest.(check int) "second sweep point generated nothing" g1 s.Run.trace_generations;
  Alcotest.(check int) "six memory hits" 6 s.Run.memory_hits

let test_disk_cache_roundtrip () =
  with_fresh_cache @@ fun () ->
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hscd_cache_%d" (Unix.getpid ()))
  in
  Run.set_compile_cache_dir (Some dir);
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
  @@ fun () ->
  let prog = Kernels.reduction ~n:16 () in
  let c1 = Run.compile prog in
  (* fresh process simulated: drop the memory table, keep the disk dir *)
  Run.reset_compile_cache ();
  Run.set_compile_cache_dir (Some dir);
  let c2 = Run.compile prog in
  let s = Run.compile_cache_stats () in
  Alcotest.(check int) "no regeneration" 0 s.Run.trace_generations;
  Alcotest.(check int) "served from disk" 1 s.Run.disk_hits;
  Alcotest.(check bool) "disk trace exact" true
    (Trace_io.equal_packed c1.Run.packed_trace c2.Run.packed_trace);
  Alcotest.(check bool) "replays identically" true
    (Run.simulate_packed Run.TPI c1.Run.packed_trace
    = Run.simulate_packed Run.TPI c2.Run.packed_trace)

let test_disk_cache_survives_corruption () =
  with_fresh_cache @@ fun () ->
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hscd_cache_bad_%d" (Unix.getpid ()))
  in
  Run.set_compile_cache_dir (Some dir);
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
  @@ fun () ->
  let prog = Kernels.reduction ~n:16 () in
  let c1 = Run.compile prog in
  (* clobber every stored trace, then force a re-read from disk *)
  Array.iter
    (fun f ->
      let oc = open_out_bin (Filename.concat dir f) in
      output_string oc "HSCDTRC2garbage";
      close_out oc)
    (Sys.readdir dir);
  Run.reset_compile_cache ();
  Run.set_compile_cache_dir (Some dir);
  let c2 = Run.compile prog in
  let s = Run.compile_cache_stats () in
  Alcotest.(check int) "corrupt entry regenerated, not trusted" 1 s.Run.trace_generations;
  Alcotest.(check bool) "regenerated trace exact" true
    (Trace_io.equal_packed c1.Run.packed_trace c2.Run.packed_trace)

let test_disk_cache_bitflip_and_truncation () =
  with_fresh_cache @@ fun () ->
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hscd_cache_flip_%d" (Unix.getpid ()))
  in
  Run.set_compile_cache_dir (Some dir);
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
  @@ fun () ->
  let prog = Kernels.reduction ~n:16 () in
  let c1 = Run.compile prog in
  let entry = Filename.concat dir (Sys.readdir dir).(0) in
  (* a single flipped bit mid-file: the checksum must catch it and the
     trace must be silently regenerated (no exception, no stale data) *)
  Hscd_check.Fault.Chaos.corrupt_file entry ~byte:((Unix.stat entry).Unix.st_size / 2);
  Run.reset_compile_cache ();
  Run.set_compile_cache_dir (Some dir);
  let c2 = Run.compile prog in
  Alcotest.(check int) "bit flip regenerated" 1
    (Run.compile_cache_stats ()).Run.trace_generations;
  Alcotest.(check bool) "bit flip: regenerated exact" true
    (Trace_io.equal_packed c1.Run.packed_trace c2.Run.packed_trace);
  (* regeneration rewrote the entry: a fresh "process" hits disk again *)
  Run.reset_compile_cache ();
  Run.set_compile_cache_dir (Some dir);
  ignore (Run.compile prog);
  Alcotest.(check int) "rewritten entry serves from disk" 1
    (Run.compile_cache_stats ()).Run.disk_hits;
  (* kill-mid-write truncation on the rewritten entry *)
  Hscd_check.Fault.Chaos.truncate_file entry ~drop:32;
  Run.reset_compile_cache ();
  Run.set_compile_cache_dir (Some dir);
  let c3 = Run.compile prog in
  Alcotest.(check int) "truncation regenerated" 1
    (Run.compile_cache_stats ()).Run.trace_generations;
  Alcotest.(check bool) "truncation: regenerated exact" true
    (Trace_io.equal_packed c1.Run.packed_trace c3.Run.packed_trace)

let test_disk_cache_concurrent_writers () =
  with_fresh_cache @@ fun () ->
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hscd_cache_race_%d" (Unix.getpid ()))
  in
  Run.set_compile_cache_dir (Some dir);
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
  @@ fun () ->
  (* four domains compile the same key at once: all miss the (empty)
     memory table, all generate, and all race the disk store. The
     writer-unique tmp + atomic rename must leave exactly one complete
     entry, never an interleaving of two writers. *)
  let prog = Kernels.reduction ~n:16 () in
  let reference = Run.compile ~cache:false prog in
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> ignore (Run.compile prog)))
  in
  List.iter Domain.join domains;
  let entries = Sys.readdir dir in
  Alcotest.(check bool) "exactly one entry, no stray tmp files" true
    (Array.length entries = 1 && not (Filename.check_suffix entries.(0) ".tmp"));
  (* whatever interleaving happened, the surviving entry must be valid *)
  Run.reset_compile_cache ();
  Run.set_compile_cache_dir (Some dir);
  let c = Run.compile prog in
  let s = Run.compile_cache_stats () in
  Alcotest.(check int) "entry readable after the race" 1 s.Run.disk_hits;
  Alcotest.(check bool) "entry exact after the race" true
    (Trace_io.equal_packed reference.Run.packed_trace c.Run.packed_trace)

let suite =
  [
    Alcotest.test_case "memory hit shares artifact" `Quick test_memory_hit;
    Alcotest.test_case "timing knobs share one entry" `Quick test_timing_knobs_share_entry;
    Alcotest.test_case "trace-relevant knobs split entries" `Quick test_trace_knobs_split_entry;
    Alcotest.test_case "cache:false bypasses" `Quick test_cache_off;
    Alcotest.test_case "run_all sweep compiles each model once" `Slow
      test_run_all_sweep_compiles_once;
    Alcotest.test_case "disk cache round-trip" `Quick test_disk_cache_roundtrip;
    Alcotest.test_case "disk cache rejects corrupt entries" `Quick
      test_disk_cache_survives_corruption;
    Alcotest.test_case "disk cache: bit flip and truncation regenerated" `Quick
      test_disk_cache_bitflip_and_truncation;
    Alcotest.test_case "disk cache: concurrent same-key writers" `Quick
      test_disk_cache_concurrent_writers;
  ]
