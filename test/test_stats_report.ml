(** Tests for workload characterization and the annotated report output. *)

module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Trace_stats = Hscd_sim.Trace_stats
module Report = Hscd_compiler.Report
module Marking = Hscd_compiler.Marking
module Sema = Hscd_lang.Sema
module Parser = Hscd_lang.Parser

let test_trace_stats_jacobi () =
  let c = Run.compile (Hscd_workloads.Kernels.jacobi1d ~n:64 ~iters:2 ()) in
  let s = Trace_stats.of_trace Config.default (Run.boxed_trace c) in
  Alcotest.(check int) "epochs" 11 s.epochs;
  Alcotest.(check int) "parallel epochs" 5 s.parallel_epochs;
  (* init: 64 tasks; 4 stencil/copy epochs: 62 tasks each; + serial tasks *)
  Alcotest.(check bool) "tasks counted" true (s.tasks >= 64 + (4 * 62));
  (* a[0..63] plus b[1..62]: 126 distinct words *)
  Alcotest.(check int) "footprint" 126 s.footprint_words;
  Alcotest.(check bool) "some sharing" true (s.shared_words > 0);
  Alcotest.(check bool) "sharing is partial" true (s.shared_words < s.footprint_words);
  Alcotest.(check bool) "reads and writes" true (s.reads > 0 && s.writes > 0);
  Alcotest.(check int) "no locks" 0 s.lock_events

let test_trace_stats_reduction_locks () =
  let c = Run.compile (Hscd_workloads.Kernels.reduction ~n:32 ()) in
  let s = Trace_stats.of_trace Config.default (Run.boxed_trace c) in
  Alcotest.(check int) "one lock per task" 32 s.lock_events

let test_trace_stats_fractions () =
  let c = Run.compile (Hscd_workloads.Kernels.gather ~n:64 ~iters:2 ()) in
  let s = Trace_stats.of_trace Config.default (Run.boxed_trace c) in
  (* gather reads through blackbox permutations: most reads are marked *)
  Alcotest.(check bool) "marked fraction positive" true (Trace_stats.marked_read_fraction s > 0.3);
  Alcotest.(check bool) "fractions in range" true
    (Trace_stats.sharing_fraction s >= 0.0 && Trace_stats.sharing_fraction s <= 1.0)

(* --- annotated listings (golden) --- *)

let annotate src =
  let m = Marking.mark_program (Sema.check_exn (Parser.parse_exn src)) in
  Report.annotated_listing m.Marking.program

let test_listing_contains_marks () =
  let listing = annotate {|
array a[64]
array b[64]
proc main()
  doall i = 0, 63
    a[i] = i
  end
  doall i = 1, 62
    b[i] = a[i - 1]
  end
end|} in
  let has sub =
    let n = String.length listing and m = String.length sub in
    let rec go i = i + m <= n && (String.sub listing i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "Time-Read annotation shown" true (has "{T1}");
  Alcotest.(check bool) "declaration printed" true (has "array a[64]")

let test_census_lines_render () =
  let m = Marking.mark_program (Sema.check_exn (Hscd_workloads.Kernels.gather ~n:32 ~iters:1 ())) in
  let lines = Report.census_lines m.Marking.census in
  Alcotest.(check bool) "six summary lines" true (List.length lines = 6);
  Alcotest.(check bool) "mentions time-read" true
    (List.exists (fun l ->
         let has sub =
           let n = String.length l and m = String.length sub in
           let rec go i = i + m <= n && (String.sub l i m = sub || go (i + 1)) in
           go 0
         in
         has "time-read") lines)

let suite =
  [
    Alcotest.test_case "trace stats jacobi" `Quick test_trace_stats_jacobi;
    Alcotest.test_case "trace stats locks" `Quick test_trace_stats_reduction_locks;
    Alcotest.test_case "trace stats fractions" `Quick test_trace_stats_fractions;
    Alcotest.test_case "annotated listing" `Quick test_listing_contains_marks;
    Alcotest.test_case "census lines" `Quick test_census_lines_render;
  ]
