(** Unit and property tests for the utility library. *)

module Prng = Hscd_util.Prng
module Stats = Hscd_util.Stats
module Bitset = Hscd_util.Bitset
module Ints = Hscd_util.Ints
module Table = Hscd_util.Table

let check = Alcotest.check

(* --- prng --- *)

let test_prng_deterministic () =
  let a = Prng.of_int 42 and b = Prng.of_int 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_bounds () =
  let t = Prng.of_int 7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let r = Prng.in_range t (-5) 5 in
    Alcotest.(check bool) "in closed range" true (r >= -5 && r <= 5)
  done

let test_prng_shuffle_permutes () =
  let t = Prng.of_int 3 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_float_range () =
  let t = Prng.of_int 11 in
  for _ = 1 to 1000 do
    let f = Prng.float t in
    Alcotest.(check bool) "[0,1)" true (f >= 0.0 && f < 1.0)
  done

(* --- stats --- *)

let test_stats_mean_var () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check (Alcotest.float 1e-9) "variance" (5.0 /. 3.0) (Stats.variance [ 1.0; 2.0; 3.0; 4.0 ]);
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Stats.mean []);
  check (Alcotest.float 1e-9) "singleton var" 0.0 (Stats.variance [ 5.0 ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile 50.0 xs);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile 100.0 xs);
  check (Alcotest.float 1e-9) "p1" 1.0 (Stats.percentile 1.0 xs)

let test_stats_accumulator () =
  let a = Stats.Accumulator.create () in
  List.iter (fun v -> Stats.Accumulator.add a v) [ 2.0; 4.0; 6.0 ];
  check Alcotest.int "count" 3 (Stats.Accumulator.count a);
  check (Alcotest.float 1e-9) "mean" 4.0 (Stats.Accumulator.mean a);
  check (Alcotest.float 1e-9) "max" 6.0 (Stats.Accumulator.max_value a);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.Accumulator.min_value a)

let test_stats_histogram () =
  let h = Stats.Histogram.create ~buckets:4 ~width:10 in
  List.iter (fun v -> Stats.Histogram.add h v) [ 0; 5; 15; 39; 40; 100 ];
  check Alcotest.int "bucket0" 2 (Stats.Histogram.bucket h 0);
  check Alcotest.int "bucket1" 1 (Stats.Histogram.bucket h 1);
  check Alcotest.int "bucket3" 1 (Stats.Histogram.bucket h 3);
  check Alcotest.int "overflow" 2 (Stats.Histogram.overflow h);
  check Alcotest.int "count" 6 (Stats.Histogram.count h)

(* --- bitset --- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 99;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem 50" false (Bitset.mem b 50);
  check Alcotest.int "cardinal" 3 (Bitset.cardinal b);
  check Alcotest.(list int) "elements" [ 0; 63; 99 ] (Bitset.elements b);
  Bitset.remove b 63;
  check Alcotest.int "after remove" 2 (Bitset.cardinal b);
  Bitset.clear b;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index 10 out of [0,10)")
    (fun () -> Bitset.add b 10)

let qcheck_bitset_vs_reference =
  QCheck.Test.make ~name:"bitset agrees with a list-based reference" ~count:200
    QCheck.(list (pair bool (int_bound 61)))
    (fun ops ->
      let b = Bitset.create 62 in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then (Bitset.add b i; Hashtbl.replace reference i ())
          else (Bitset.remove b i; Hashtbl.remove reference i))
        ops;
      List.for_all (fun i -> Bitset.mem b i = Hashtbl.mem reference i)
        (List.init 62 Fun.id)
      && Bitset.cardinal b = Hashtbl.length reference)

(* --- ints --- *)

let test_ints () =
  check Alcotest.int "ilog2 64" 6 (Ints.ilog2 64);
  Alcotest.(check bool) "pow2 checks" true (Ints.is_pow2 1 && Ints.is_pow2 4096 && not (Ints.is_pow2 12));
  check Alcotest.int "ceil_div" 4 (Ints.ceil_div 10 3);
  check Alcotest.int "ceil_div exact" 3 (Ints.ceil_div 9 3);
  check Alcotest.int "round_up" 12 (Ints.round_up 10 4);
  check Alcotest.(list int) "range" [ 2; 3; 4 ] (Ints.range 2 4);
  check Alcotest.(list int) "empty range" [] (Ints.range 3 2);
  check Alcotest.int "clamp" 5 (Ints.clamp ~lo:0 ~hi:5 9)

let qcheck_round_up =
  QCheck.Test.make ~name:"round_up is a multiple and minimal" ~count:500
    QCheck.(pair (int_bound 10_000) (int_range 1 64))
    (fun (a, b) ->
      let r = Ints.round_up a b in
      r mod b = 0 && r >= a && r - a < b)

(* --- table --- *)

let test_table_render () =
  let t = Table.create ~title:"t" ~header:[ "a"; "bb" ] ~aligns:[ Table.Left; Table.Right ] () in
  Table.add_row t [ "xx"; "1" ];
  Table.add_row t [ "y"; "222" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains title" true
    (String.length s > 0 && String.sub s 0 6 = "== t =");
  (* right-aligned second column pads on the left *)
  Alcotest.(check bool) "alignment" true
    (List.exists (fun l -> l = "xx    1") (String.split_on_char '\n' s))

let test_table_row_mismatch () =
  let t = Table.create ~title:"t" ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "bad row"
    (Invalid_argument "Table.add_row (t): expected 2 cells, got 1")
    (fun () -> Table.add_row t [ "only" ])

let test_table_fbytes () =
  check Alcotest.string "bytes" "512B" (Table.fbytes 512);
  check Alcotest.string "kb" "2.0KB" (Table.fbytes 2048);
  check Alcotest.string "mb" "4.0MB" (Table.fbytes (4 * 1024 * 1024));
  check Alcotest.string "gb" "3.0GB" (Table.fbytes (3 * 1024 * 1024 * 1024))

(* --- deque --- *)

let test_deque_fifo () =
  let d = Hscd_util.Deque.create ~capacity:2 () in
  for i = 1 to 100 do
    Hscd_util.Deque.push_back d i
  done;
  check Alcotest.int "length" 100 (Hscd_util.Deque.length d);
  for i = 1 to 100 do
    check Alcotest.(option int) "fifo order" (Some i) (Hscd_util.Deque.pop_front d)
  done;
  check Alcotest.(option int) "empty" None (Hscd_util.Deque.pop_front d);
  Alcotest.(check bool) "is_empty" true (Hscd_util.Deque.is_empty d)

let test_deque_both_ends () =
  let d = Hscd_util.Deque.create () in
  Hscd_util.Deque.push_back d 2;
  Hscd_util.Deque.push_front d 1;
  Hscd_util.Deque.push_back d 3;
  check Alcotest.(list int) "order" [ 1; 2; 3 ] (Hscd_util.Deque.to_list d);
  check Alcotest.(option int) "peek" (Some 1) (Hscd_util.Deque.peek_front d);
  check Alcotest.(option int) "pop_back" (Some 3) (Hscd_util.Deque.pop_back d);
  check Alcotest.(option int) "pop_front" (Some 1) (Hscd_util.Deque.pop_front d);
  check Alcotest.int "one left" 1 (Hscd_util.Deque.length d)

let test_deque_wraparound () =
  (* interleaved push/pop forces head to wrap around the ring *)
  let d = Hscd_util.Deque.create ~capacity:4 () in
  let q = Queue.create () in
  let prng = Prng.of_int 99 in
  for i = 0 to 999 do
    if Prng.bool prng then begin
      Hscd_util.Deque.push_back d i;
      Queue.push i q
    end
    else
      check
        Alcotest.(option int)
        "matches Queue" (Queue.take_opt q) (Hscd_util.Deque.pop_front d)
  done;
  check Alcotest.(list int) "drain" (List.of_seq (Queue.to_seq q)) (Hscd_util.Deque.to_list d)

(* --- minheap --- *)

let test_minheap_sorted () =
  let h = Hscd_util.Minheap.create 4 in
  let prng = Prng.of_int 5 in
  let keys = List.init 200 (fun i -> (Prng.int prng 50, i)) in
  List.iter (fun (k, v) -> Hscd_util.Minheap.push h ~key:k v) keys;
  let rec drain acc = match Hscd_util.Minheap.pop h with None -> List.rev acc | Some kv -> drain (kv :: acc) in
  let out = drain [] in
  check Alcotest.int "all popped" 200 (List.length out);
  (* sorted by key, ties by value — the engine's lowest-clock,
     lowest-index processor order *)
  check
    Alcotest.(list (pair int int))
    "heap order = sorted order" (List.sort compare keys) out

let test_minheap_ties_by_value () =
  let h = Hscd_util.Minheap.create 4 in
  List.iter (fun v -> Hscd_util.Minheap.push h ~key:7 v) [ 3; 0; 2; 1 ];
  let vs = List.init 4 (fun _ -> match Hscd_util.Minheap.pop h with Some (_, v) -> v | None -> -1) in
  check Alcotest.(list int) "lowest index first" [ 0; 1; 2; 3 ] vs;
  Alcotest.(check bool) "empty" true (Hscd_util.Minheap.is_empty h)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "prng float" `Quick test_prng_float_range;
    Alcotest.test_case "stats mean/var" `Quick test_stats_mean_var;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats accumulator" `Quick test_stats_accumulator;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    QCheck_alcotest.to_alcotest qcheck_bitset_vs_reference;
    Alcotest.test_case "ints" `Quick test_ints;
    QCheck_alcotest.to_alcotest qcheck_round_up;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table mismatch" `Quick test_table_row_mismatch;
    Alcotest.test_case "table fbytes" `Quick test_table_fbytes;
    Alcotest.test_case "deque fifo" `Quick test_deque_fifo;
    Alcotest.test_case "deque both ends" `Quick test_deque_both_ends;
    Alcotest.test_case "deque wraparound" `Quick test_deque_wraparound;
    Alcotest.test_case "minheap sorted" `Quick test_minheap_sorted;
    Alcotest.test_case "minheap ties" `Quick test_minheap_ties_by_value;
  ]
