(* Service chaos harness: a real forked `hscd serve` daemon exercised the
   unfriendly way —
   - two tenants submitting overlapping jobs concurrently, results checked
     bit-identically against an in-process sequential reference;
   - duplicate submissions deduplicated by job digest;
   - admission control: a capacity-1 tenant gets Accepted/Busy/Busy for a
     back-to-back burst, an unknown tenant under --strict gets Rejected,
     an invalid job gets Rejected;
   - SIGKILL mid-sweep, restart, and an idempotent resubmit that resumes
     from the cell journal and still matches the reference bit-for-bit;
   - a hung client parking half a frame while others complete jobs;
   - a flipped bit on the wire dropping only the offending connection;
   - SIGTERM draining gracefully (exit 0, socket unlinked);
   - with `--fd-probe DIR` (run by the main body under `ulimit -n 32`):
     hundreds of failing journal/trace opens inside a 32-descriptor
     budget, the regression test for close-on-error paths.

   The references are computed inline (compile_result + simulate_packed —
   the exact calls a sequential `hscd experiment` cell makes) before the
   first fork, so the parent never spawns domains. *)

module E = Hscd_util.Hscd_error
module P = Hscd_service.Protocol
module Server = Hscd_service.Server
module Client = Hscd_service.Client
module Sched = Hscd_service.Scheduler
module Run = Hscd_sim.Run
module Perfect = Hscd_workloads.Perfect

let failures = ref 0

let check name cond =
  if cond then Printf.printf "ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n%!" name
  end

let get what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" what (E.to_string e))

(* ------------------------------------------------------------------ *)
(* --fd-probe: failing opens under a 32-descriptor ulimit              *)
(* ------------------------------------------------------------------ *)

let fd_probe dir =
  let garbage = Filename.concat dir "garbage.bin" in
  let oc = open_out_bin garbage in
  output_string oc "NOTAMAGIC this is neither a journal nor a trace\n";
  close_out oc;
  let truncated = Filename.concat dir "truncated.jnl" in
  let oc = open_out_bin truncated in
  output_string oc "HSCDJNL1";
  output_string oc "\x0c\x00\x00\x00\x00\x00\x00\x00torn";
  close_out oc;
  for _ = 1 to 256 do
    (match Hscd_util.Journal.load garbage with Ok _ -> exit 9 | Error _ -> ());
    (match Hscd_util.Journal.open_append garbage with Ok _ -> exit 9 | Error _ -> ());
    (match Hscd_util.Journal.open_append truncated with
    | Ok j -> Hscd_util.Journal.close j
    | Error _ -> ());
    (match E.guard (fun () -> Hscd_sim.Trace_io.load garbage) with
    | Ok _ -> exit 9
    | Error _ -> ());
    (match E.guard (fun () -> Hscd_sim.Trace_io.read_packed garbage) with
    | Ok _ -> exit 9
    | Error _ -> ());
    (match E.guard (fun () -> Hscd_sim.Trace_io.map_packed garbage) with
    | Ok _ -> exit 9
    | Error _ -> ());
    ignore (Hscd_sim.Trace_io.is_binary garbage)
  done;
  print_endline "fd-probe: 256 failing-open iterations within a 32-fd budget";
  exit 0

let () =
  match Sys.argv with
  | [| _; "--fd-probe"; dir |] -> fd_probe dir
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let tmpdir =
  let f = Filename.temp_file "hscd-service" "" in
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let socket = Filename.concat tmpdir "daemon.sock"
let state = Filename.concat tmpdir "state"
let schemes = [ "TPI"; "HW" ]
let cfg_spec = { P.processors = 16; line_words = 4; timetag_bits = 8 }

(* the chaos-kill sweep: a distinct grid (different timetags, one scheme)
   so it shares nothing with the first sweep's done-table entry *)
let chaos_schemes = [ "TPI" ]
let chaos_cfg_spec = { cfg_spec with P.timetag_bits = 4 }

(* Sequential reference, inline (domain-free — the parent forks later).
   These are the same compile_result/simulate_packed calls a sequential
   `hscd experiment` cell makes, so bit-identity against them is
   bit-identity against the CLI path. *)
let reference spec_cfg names =
  let cfg = P.config_of_spec spec_cfg in
  List.concat_map
    (fun (e : Perfect.entry) ->
      let c = get "reference compile" (Run.compile_result ~cfg ~intertask:true (e.build_small ())) in
      List.map
        (fun s ->
          let kind = get "reference scheme" (Run.scheme_of_name s) in
          (e.name ^ "/" ^ Run.scheme_name kind, Run.simulate_packed ~cfg kind c.Run.packed_trace))
        names)
    Perfect.all

let cells_match payload reference =
  match payload with
  | P.Cells cells ->
    List.length cells = List.length reference
    && List.for_all
         (fun { P.cell; result } ->
           match List.assoc_opt cell reference with
           | Some r -> r = result (* full structural equality: bit-identical metrics *)
           | None -> false)
         cells
  | P.Compiled _ -> false

(* ------------------------------------------------------------------ *)
(* Daemon control                                                      *)
(* ------------------------------------------------------------------ *)

let daemon_settings () =
  {
    (Server.default_settings ~socket ~state_dir:state) with
    Server.tenants =
      [
        ("alice", { Sched.weight = 2; capacity = 64 });
        ("bob", { Sched.weight = 1; capacity = 64 });
        ("cap1", { Sched.weight = 1; capacity = 1 });
      ];
    strict = true;
  }

let start_daemon ?(delay = 0.0) () =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try
       if delay > 0.0 then Unix.sleepf delay;
       Server.reset_drain_for_testing ();
       Server.install_signal_handlers ();
       match Server.serve (daemon_settings ()) with
       | Ok () -> exit 0
       | Error e ->
         prerr_endline ("daemon: " ^ E.to_string e);
         exit 1
     with exn ->
       prerr_endline ("daemon: " ^ Printexc.to_string exn);
       exit 2)
  | pid -> pid

let wait_ready () =
  let rec go n =
    if n = 0 then failwith "daemon did not come up";
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Unix.close fd
    | exception Unix.Unix_error (_, _, _) ->
      Unix.close fd;
      Unix.sleepf 0.1;
      go (n - 1)
  in
  go 100

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

let () =
  (* the low-ulimit fd regression runs first: it re-executes this binary
     in probe mode inside a 32-descriptor budget *)
  let probe_dir = Filename.concat tmpdir "fd-probe" in
  Unix.mkdir probe_dir 0o755;
  let cmd =
    Printf.sprintf "ulimit -n 32; exec %s --fd-probe %s"
      (Filename.quote Sys.executable_name) (Filename.quote probe_dir)
  in
  (match Unix.system ("/bin/sh -c " ^ Filename.quote cmd) with
  | Unix.WEXITED 0 -> check "fd probe: failing opens fit a 32-fd ulimit" true
  | status ->
    check
      (Printf.sprintf "fd probe: failing opens fit a 32-fd ulimit (got %s)"
         (match status with
         | Unix.WEXITED n -> Printf.sprintf "exit %d" n
         | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
         | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n))
      false);

  let sweep_ref = reference cfg_spec schemes in
  let chaos_ref = reference chaos_cfg_spec chaos_schemes in
  let sweep_spec = P.Sweep { schemes; cfg = cfg_spec; small = true } in
  let compare_spec = P.Compare { target = "TRFD"; schemes; cfg = cfg_spec; small = true } in
  let chaos_spec = P.Sweep { schemes = chaos_schemes; cfg = chaos_cfg_spec; small = true } in

  let pid = start_daemon () in
  wait_ready ();

  (* --- two tenants, overlapping jobs, one daemon --- *)
  let ta = get "connect alice" (Client.connect ~socket ~tenant:"alice" ()) in
  let tb = get "connect bob" (Client.connect ~socket ~tenant:"bob" ()) in
  let da, ticket_a = get "submit sweep" (Client.submit ta sweep_spec) in
  let db, ticket_b = get "submit compare" (Client.submit tb compare_spec) in
  check "both overlapping submissions accepted"
    (match (ticket_a, ticket_b) with Client.Queued _, Client.Queued _ -> true | _ -> false);
  let progress = ref 0 in
  let pa =
    get "await sweep"
      (Client.await ~on_progress:(fun ~cell:_ ~finished:_ ~total:_ -> incr progress) ta ~digest:da)
  in
  let pb = get "await compare" (Client.await tb ~digest:db) in
  check "sweep results bit-identical to the sequential reference" (cells_match pa sweep_ref);
  check "one progress frame per sweep cell" (!progress = List.length sweep_ref);
  check "overlapping compare job matches the same reference cells"
    (match pb with
    | P.Cells cells ->
      cells <> []
      && List.for_all
           (fun { P.cell; result } -> List.assoc_opt cell sweep_ref = Some result)
           cells
    | P.Compiled _ -> false);

  (* --- dedup by digest: same spec from another client is not re-run --- *)
  (match Client.submit tb sweep_spec with
  | Ok (d, Client.Finished payload) ->
    check "duplicate digest returns the finished payload" (d = da && payload = pa)
  | Ok (_, Client.Queued _) -> check "duplicate digest returns the finished payload" false
  | Error e -> failwith ("dedup submit: " ^ E.to_string e));
  Client.close ta;
  Client.close tb;

  (* --- admission: capacity-1 tenant, back-to-back burst --- *)
  let tc = get "connect cap1" (Client.connect ~socket ~tenant:"cap1" ()) in
  let burst =
    List.map
      (fun tag -> P.Compile { target = "jacobi1d"; cfg = { cfg_spec with P.timetag_bits = tag }; small = true })
      [ 5; 6; 7 ]
  in
  (* one write carrying all three Submit frames: the daemon admits from a
     single read, so the replies are deterministic *)
  get "burst write"
    (Client.send_frame tc
       (String.concat ""
          (List.map
             (fun spec -> P.encode_request (P.Submit { digest = P.job_digest spec; spec }))
             burst)));
  let r1 = get "burst reply 1" (Client.recv_response tc) in
  let r2 = get "burst reply 2" (Client.recv_response tc) in
  let r3 = get "burst reply 3" (Client.recv_response tc) in
  check "burst: first Accepted, rest Busy (bounded queue, no hang)"
    (match (r1, r2, r3) with
    | P.Accepted _, P.Busy_reply _, P.Busy_reply _ -> true
    | _ -> false);
  Client.close tc;

  (* --- strict admission: unknown tenant and invalid job are Rejected --- *)
  let tm = get "connect mallory" (Client.connect ~socket ~tenant:"mallory" ()) in
  (match Client.submit tm (P.Compile { target = "jacobi1d"; cfg = cfg_spec; small = true }) with
  | Error e ->
    check "unknown tenant under --strict is Rejected with exit code 5"
      (e.E.kind = E.Rejected && E.exit_code e = 5 && not (E.transient e))
  | Ok _ -> check "unknown tenant under --strict is Rejected with exit code 5" false);
  Client.close tm;
  let ta = get "reconnect alice" (Client.connect ~socket ~tenant:"alice" ()) in
  (match Client.submit ta (P.Compare { target = "NOPE"; schemes; cfg = cfg_spec; small = true }) with
  | Error e -> check "invalid target is Rejected, not deferred" (e.E.kind = E.Rejected)
  | Ok _ -> check "invalid target is Rejected, not deferred" false);

  (* --- hung client: half a frame parked forever blocks nobody --- *)
  let hung = get "connect hung" (Client.connect ~socket ~tenant:"bob" ()) in
  let half =
    let spec = P.Compile { target = "matmul"; cfg = cfg_spec; small = true } in
    let s = P.encode_request (P.Submit { digest = P.job_digest spec; spec }) in
    String.sub s 0 (String.length s / 2)
  in
  get "hung half-frame write" (Client.send_frame hung half);
  (match Client.submit ta (P.Compile { target = "jacobi1d"; cfg = cfg_spec; small = true }) with
  | Ok (d, Client.Queued _) -> (
    match Client.await ta ~digest:d with
    | Ok (P.Compiled { target; _ }) ->
      check "another client completes a job while one hangs" (target = "jacobi1d")
    | _ -> check "another client completes a job while one hangs" false)
  | Ok (_, Client.Finished (P.Compiled _)) ->
    check "another client completes a job while one hangs" true
  | _ -> check "another client completes a job while one hangs" false);
  Client.close ta;

  (* --- a flipped bit on the wire drops only that connection --- *)
  let tw = get "connect bitflip" (Client.connect ~socket ~tenant:"bob" ()) in
  let corrupted =
    let spec = P.Compile { target = "reduction"; cfg = cfg_spec; small = true } in
    let s = Bytes.of_string (P.encode_request (P.Submit { digest = P.job_digest spec; spec })) in
    let i = P.header_bytes + 5 in
    Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x10));
    Bytes.to_string s
  in
  get "corrupt frame write" (Client.send_frame tw corrupted);
  (match Client.recv_response tw with
  | Error e -> check "server drops the connection on a corrupt frame" (e.E.kind = E.Io)
  | Ok _ -> check "server drops the connection on a corrupt frame" false);
  Client.close tw;
  let tf = get "connect after bitflip" (Client.connect ~socket ~tenant:"alice" ()) in
  (match Client.request tf P.Ping with
  | Ok P.Pong -> check "daemon healthy after dropping the corrupt connection" true
  | _ -> check "daemon healthy after dropping the corrupt connection" false);
  Client.close tf;

  (* --- chaos: SIGKILL mid-sweep, restart, resubmit, bit-identical --- *)
  let tk = get "connect chaos" (Client.connect ~socket ~tenant:"alice" ()) in
  let dk, _ = get "submit chaos sweep" (Client.submit tk chaos_spec) in
  let seen = ref 0 in
  let rec watch () =
    if !seen < 3 then
      match Client.recv_response tk with
      | Ok (P.Progress { digest; _ }) when digest = dk ->
        incr seen;
        watch ()
      | Ok _ -> watch ()
      | Error e -> failwith ("chaos watch: " ^ E.to_string e)
  in
  watch ();
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Client.close tk;
  check "daemon killed mid-sweep after 3 checkpointed cells" (!seen = 3);
  (* the kill left durable, bit-identical cells behind: this is what the
     restarted daemon resumes from instead of re-simulating *)
  let journaled =
    match Hscd_util.Journal.load (Filename.concat state ("job-" ^ dk ^ ".jnl")) with
    | Ok entries ->
      List.filter
        (fun (key, payload) ->
          match (Marshal.from_string payload 0 : Hscd_sim.Engine.result) with
          | r -> List.assoc_opt key chaos_ref = Some r
          | exception _ -> false)
        entries
    | Error _ -> []
  in
  check
    (Printf.sprintf "cell journal survived the kill with %d reference-identical cells"
       (List.length journaled))
    (List.length journaled >= 3);
  (* restart comes up slowly: the client's bounded backoff has to carry
     the reconnect, and the resubmitted digest must resume, not restart *)
  let pid = start_daemon ~delay:0.4 () in
  let resumed = ref 0 in
  let payload =
    get "resubmit after kill"
      (Client.run_job
         ~on_progress:(fun ~cell:_ ~finished:_ ~total:_ -> incr resumed)
         ~socket ~tenant:"alice" chaos_spec)
  in
  check "post-crash results bit-identical to the reference" (cells_match payload chaos_ref);
  check
    (Printf.sprintf "resumed run replayed only missing cells (%d fresh of %d)" !resumed
       (List.length chaos_ref))
    (!resumed < List.length chaos_ref);

  (* --- graceful drain: SIGTERM exits 0 and unlinks the socket --- *)
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> check "SIGTERM drains gracefully with exit 0" true
  | _, status ->
    check
      (Printf.sprintf "SIGTERM drains gracefully with exit 0 (got %s)"
         (match status with
         | Unix.WEXITED n -> Printf.sprintf "exit %d" n
         | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
         | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n))
      false);
  check "drained daemon unlinked its socket" (not (Sys.file_exists socket));

  if !failures > 0 then begin
    Printf.printf "service_smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "service_smoke: all scenarios passed"
