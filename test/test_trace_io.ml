(** Round-trip tests for the trace serializer, plus replay equivalence:
    simulating a reloaded trace must give identical results. *)

module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Trace_io = Hscd_sim.Trace_io
module Metrics = Hscd_sim.Metrics

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_roundtrip_stencil () =
  let c = Run.compile (Hscd_workloads.Kernels.jacobi1d ~n:32 ~iters:2 ()) in
  let path = tmp "hscd_trace_stencil.txt" in
  Trace_io.save path c.Run.trace;
  let loaded = Trace_io.load path in
  Sys.remove path;
  Alcotest.(check bool) "round-trip equal" true (Trace_io.equal c.Run.trace loaded);
  Alcotest.(check int) "events preserved" c.Run.trace.Trace.total_events loaded.Trace.total_events

let test_roundtrip_critical () =
  (* locks and bypass marks must survive serialization *)
  let c = Run.compile (Hscd_workloads.Kernels.reduction ~n:16 ()) in
  let path = tmp "hscd_trace_crit.txt" in
  Trace_io.save path c.Run.trace;
  let loaded = Trace_io.load path in
  Sys.remove path;
  Alcotest.(check bool) "round-trip equal" true (Trace_io.equal c.Run.trace loaded)

let test_replay_equivalence () =
  let c = Run.compile (Hscd_workloads.Kernels.matmul ~n:10 ()) in
  let path = tmp "hscd_trace_mm.txt" in
  Trace_io.save path c.Run.trace;
  let loaded = Trace_io.load path in
  Sys.remove path;
  let a = Run.simulate Run.TPI c.Run.trace in
  let b = Run.simulate Run.TPI loaded in
  Alcotest.(check int) "same cycles" a.cycles b.cycles;
  Alcotest.(check (float 1e-12)) "same miss rate"
    (Metrics.miss_rate a.metrics) (Metrics.miss_rate b.metrics);
  Alcotest.(check int) "coherent" 0 b.metrics.violations

let test_bad_input_rejected () =
  let path = tmp "hscd_trace_bad.txt" in
  let oc = open_out path in
  output_string oc "hscd-trace 1\nnonsense line here\n";
  close_out oc;
  (match Trace_io.load path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on malformed trace");
  Sys.remove path

let test_mark_strings () =
  let open Hscd_arch.Event in
  List.iter
    (fun m -> Alcotest.(check bool) "rmark round-trip" true
        (Trace_io.mark_of_str (Trace_io.mark_str m) = m))
    [ Unmarked; Normal_read; Bypass_read; Time_read 0; Time_read 12 ];
  List.iter
    (fun m -> Alcotest.(check bool) "wmark round-trip" true
        (Trace_io.wmark_of_str (Trace_io.wmark_str m) = m))
    [ Normal_write; Bypass_write ]

let test_roundtrip_generated () =
  (* property: read (write t) = t for randomly generated fuzz traces,
     which cover every mark, lock sections and both epoch kinds *)
  for seed = 0 to 11 do
    let prng = Hscd_util.Prng.of_int seed in
    let params = Hscd_check.Gen.random_params prng in
    let trace = Hscd_check.Gen.generate prng params in
    let path = tmp (Printf.sprintf "hscd_trace_gen%d.txt" seed) in
    Trace_io.save path trace;
    let loaded = Trace_io.load path in
    Sys.remove path;
    Alcotest.(check bool)
      (Printf.sprintf "generated trace %d round-trips" seed)
      true
      (Trace_io.equal trace loaded)
  done

let degenerate_layout words : Hscd_lang.Shape.layout =
  let arrays = Hashtbl.create 1 in
  Hashtbl.replace arrays "A" { Hscd_lang.Shape.name = "A"; dims = [ words ]; size = words; base = 0 };
  { Hscd_lang.Shape.arrays; total_words = words }

let test_roundtrip_degenerate () =
  (* empty trace: no epochs at all *)
  let empty =
    {
      Trace.epochs = [||];
      layout = degenerate_layout 1;
      golden_memory = [| 0 |];
      total_events = 0;
    }
  in
  (* single-event trace: one serial epoch, one task, one read *)
  let single =
    {
      Trace.epochs =
        [|
          {
            Trace.kind = Trace.Serial;
            tasks =
              [|
                {
                  Trace.iter = 0;
                  events =
                    [|
                      Hscd_arch.Event.Read
                        { addr = 0; mark = Hscd_arch.Event.Unmarked; value = 0; array = "A" };
                    |];
                };
              |];
          };
        |];
      layout = degenerate_layout 1;
      golden_memory = [| 0 |];
      total_events = 1;
    }
  in
  List.iter
    (fun (name, trace) ->
      let path = tmp ("hscd_trace_" ^ name ^ ".txt") in
      Trace_io.save path trace;
      let loaded = Trace_io.load path in
      Sys.remove path;
      Alcotest.(check bool) (name ^ " round-trips") true (Trace_io.equal trace loaded))
    [ ("empty", empty); ("single", single) ]

let suite =
  [
    Alcotest.test_case "round-trip stencil" `Quick test_roundtrip_stencil;
    Alcotest.test_case "round-trip generated fuzz traces" `Quick test_roundtrip_generated;
    Alcotest.test_case "round-trip empty and single-event" `Quick test_roundtrip_degenerate;
    Alcotest.test_case "round-trip critical" `Quick test_roundtrip_critical;
    Alcotest.test_case "replay equivalence" `Quick test_replay_equivalence;
    Alcotest.test_case "bad input rejected" `Quick test_bad_input_rejected;
    Alcotest.test_case "mark strings" `Quick test_mark_strings;
  ]
