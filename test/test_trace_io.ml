(** Round-trip tests for the trace serializer, plus replay equivalence:
    simulating a reloaded trace must give identical results. *)

module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Trace_io = Hscd_sim.Trace_io
module Metrics = Hscd_sim.Metrics

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_roundtrip_stencil () =
  let c = Run.compile (Hscd_workloads.Kernels.jacobi1d ~n:32 ~iters:2 ()) in
  let boxed = Run.boxed_trace c in
  let path = tmp "hscd_trace_stencil.txt" in
  Trace_io.save path boxed;
  let loaded = Trace_io.load path in
  Sys.remove path;
  Alcotest.(check bool) "round-trip equal" true (Trace_io.equal boxed loaded);
  Alcotest.(check int) "events preserved" boxed.Trace.total_events loaded.Trace.total_events

let test_roundtrip_critical () =
  (* locks and bypass marks must survive serialization *)
  let c = Run.compile (Hscd_workloads.Kernels.reduction ~n:16 ()) in
  let boxed = Run.boxed_trace c in
  let path = tmp "hscd_trace_crit.txt" in
  Trace_io.save path boxed;
  let loaded = Trace_io.load path in
  Sys.remove path;
  Alcotest.(check bool) "round-trip equal" true (Trace_io.equal boxed loaded)

let test_replay_equivalence () =
  let c = Run.compile (Hscd_workloads.Kernels.matmul ~n:10 ()) in
  let boxed = Run.boxed_trace c in
  let path = tmp "hscd_trace_mm.txt" in
  Trace_io.save path boxed;
  let loaded = Trace_io.load path in
  Sys.remove path;
  let a = Run.simulate Run.TPI boxed in
  let b = Run.simulate Run.TPI loaded in
  Alcotest.(check int) "same cycles" a.cycles b.cycles;
  Alcotest.(check (float 1e-12)) "same miss rate"
    (Metrics.miss_rate a.metrics) (Metrics.miss_rate b.metrics);
  Alcotest.(check int) "coherent" 0 b.metrics.violations

let test_bad_input_rejected () =
  let path = tmp "hscd_trace_bad.txt" in
  let oc = open_out path in
  output_string oc "hscd-trace 1\nnonsense line here\n";
  close_out oc;
  (match Trace_io.load path with
  | exception Hscd_util.Hscd_error.Error { kind = Hscd_util.Hscd_error.Parse; _ } -> ()
  | exception e -> Alcotest.fail ("expected a typed Parse error, got " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected a typed Parse error on malformed trace");
  (* the result API never lets the exception escape *)
  (match Trace_io.load_result path with
  | Error e -> Alcotest.(check bool) "load_result: parse kind" true (e.kind = Hscd_util.Hscd_error.Parse)
  | Ok _ -> Alcotest.fail "load_result accepted a malformed trace");
  Sys.remove path

let test_mark_strings () =
  let open Hscd_arch.Event in
  List.iter
    (fun m -> Alcotest.(check bool) "rmark round-trip" true
        (Trace_io.mark_of_str (Trace_io.mark_str m) = m))
    [ Unmarked; Normal_read; Bypass_read; Time_read 0; Time_read 12 ];
  List.iter
    (fun m -> Alcotest.(check bool) "wmark round-trip" true
        (Trace_io.wmark_of_str (Trace_io.wmark_str m) = m))
    [ Normal_write; Bypass_write ]

let test_roundtrip_generated () =
  (* property: read (write t) = t for randomly generated fuzz traces,
     which cover every mark, lock sections and both epoch kinds *)
  for seed = 0 to 11 do
    let prng = Hscd_util.Prng.of_int seed in
    let params = Hscd_check.Gen.random_params prng in
    let trace = Hscd_check.Gen.generate prng params in
    let path = tmp (Printf.sprintf "hscd_trace_gen%d.txt" seed) in
    Trace_io.save path trace;
    let loaded = Trace_io.load path in
    Sys.remove path;
    Alcotest.(check bool)
      (Printf.sprintf "generated trace %d round-trips" seed)
      true
      (Trace_io.equal trace loaded)
  done

let degenerate_layout words : Hscd_lang.Shape.layout =
  let arrays = Hashtbl.create 1 in
  Hashtbl.replace arrays "A" { Hscd_lang.Shape.name = "A"; dims = [ words ]; size = words; base = 0 };
  { Hscd_lang.Shape.arrays; total_words = words }

let test_roundtrip_degenerate () =
  (* empty trace: no epochs at all *)
  let empty =
    {
      Trace.epochs = [||];
      layout = degenerate_layout 1;
      golden_memory = [| 0 |];
      total_events = 0;
    }
  in
  (* single-event trace: one serial epoch, one task, one read *)
  let single =
    {
      Trace.epochs =
        [|
          {
            Trace.kind = Trace.Serial;
            tasks =
              [|
                {
                  Trace.iter = 0;
                  events =
                    [|
                      Hscd_arch.Event.Read
                        { addr = 0; mark = Hscd_arch.Event.Unmarked; value = 0; array = "A" };
                    |];
                };
              |];
          };
        |];
      layout = degenerate_layout 1;
      golden_memory = [| 0 |];
      total_events = 1;
    }
  in
  List.iter
    (fun (name, trace) ->
      let path = tmp ("hscd_trace_" ^ name ^ ".txt") in
      Trace_io.save path trace;
      let loaded = Trace_io.load path in
      Sys.remove path;
      Alcotest.(check bool) (name ^ " round-trips") true (Trace_io.equal trace loaded))
    [ ("empty", empty); ("single", single) ]

(* ---------- binary format v2 ---------- *)

let binary_roundtrip name packed =
  let path = tmp ("hscd_bin_" ^ name ^ ".hscdtrc") in
  Trace_io.write_packed path packed;
  let loaded = Trace_io.read_packed path in
  Alcotest.(check bool) (name ^ " sniffed as binary") true (Trace_io.is_binary path);
  Sys.remove path;
  Alcotest.(check bool) (name ^ " binary round-trip exact") true
    (Trace_io.equal_packed packed loaded)

let test_binary_roundtrip_kernels () =
  List.iter
    (fun (name, prog) ->
      let c = Run.compile ~cache:false prog in
      binary_roundtrip name c.Run.packed_trace)
    [
      ("jacobi", Hscd_workloads.Kernels.jacobi1d ~n:32 ~iters:2 ());
      ("reduction", Hscd_workloads.Kernels.reduction ~n:16 ());
      ("matmul", Hscd_workloads.Kernels.matmul ~n:8 ());
    ]

let test_binary_roundtrip_perfect () =
  (* all six Perfect Club models at test scale *)
  List.iter
    (fun (e : Hscd_workloads.Perfect.entry) ->
      let c = Run.compile ~cache:false (e.build_small ()) in
      binary_roundtrip e.name c.Run.packed_trace)
    Hscd_workloads.Perfect.all

let test_binary_roundtrip_generated () =
  (* property: read_packed (write_packed p) = p over fuzz traces, which
     cover every mark, lock sections and both epoch kinds *)
  for seed = 0 to 11 do
    let prng = Hscd_util.Prng.of_int seed in
    let params = Hscd_check.Gen.random_params prng in
    let trace = Hscd_check.Gen.generate prng params in
    binary_roundtrip (Printf.sprintf "gen%d" seed) (Trace.pack trace)
  done

let test_binary_replay_equivalence () =
  (* a trace written to disk and read back replays bit-identically *)
  let c = Run.compile ~cache:false (Hscd_workloads.Kernels.matmul ~n:10 ()) in
  let path = tmp "hscd_bin_replay.hscdtrc" in
  Trace_io.write_packed path c.Run.packed_trace;
  let loaded = Trace_io.read_packed path in
  Sys.remove path;
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Run.scheme_name kind ^ " identical after reload")
        true
        (Run.simulate_packed kind loaded = Run.simulate_packed kind c.Run.packed_trace))
    [ Run.Base; Run.TPI; Run.HW ]

(* the typed-error contract: [read_packed_result] must come back [Error]
   with kind [Corrupt] — never let an exception escape, never [Ok] *)
let expect_corrupt name path =
  match Trace_io.read_packed_result path with
  | Error (e : Hscd_util.Hscd_error.t) ->
    Alcotest.(check bool) (name ^ ": corrupt kind") true (e.kind = Hscd_util.Hscd_error.Corrupt)
  | Ok _ -> Alcotest.fail ("corrupt trace accepted: " ^ name)
  | exception e ->
    Alcotest.fail (Printf.sprintf "%s: exception escaped read_packed_result: %s" name (Printexc.to_string e))

let test_binary_rejects_corruption () =
  let c = Run.compile ~cache:false (Hscd_workloads.Kernels.jacobi1d ~n:16 ~iters:1 ()) in
  let path = tmp "hscd_bin_corrupt.hscdtrc" in
  Trace_io.write_packed path c.Run.packed_trace;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  let write_variant s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  (* truncation: drop the checksum and a little more *)
  write_variant (String.sub content 0 (len - 12));
  expect_corrupt "truncated" path;
  (* mid-slab truncation: cut deep inside the slab section *)
  write_variant (String.sub content 0 (len * 2 / 3));
  expect_corrupt "mid-slab truncation" path;
  (* single byte flipped mid-file: checksum must catch it *)
  let flipped = Bytes.of_string content in
  let pos = len / 2 in
  Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x40));
  write_variant (Bytes.to_string flipped);
  expect_corrupt "bit flip" path;
  (* checksum itself flipped: body is intact but the trailer lies *)
  let sumflip = Bytes.of_string content in
  Bytes.set sumflip (len - 1) (Char.chr (Char.code (Bytes.get sumflip (len - 1)) lxor 0x01));
  write_variant (Bytes.to_string sumflip);
  expect_corrupt "checksum flip" path;
  (* wrong magic *)
  write_variant ("XXXXXXXX" ^ String.sub content 8 (len - 8));
  expect_corrupt "bad magic" path;
  Alcotest.(check bool) "bad magic not sniffed as binary" false (Trace_io.is_binary path);
  (* a foreign format that happens to share a prefix length *)
  write_variant "HSCDJNL1\x00\x00\x00\x00\x00\x00\x00\x00";
  expect_corrupt "foreign magic" path;
  (* short file / empty file *)
  write_variant "HS";
  expect_corrupt "short file" path;
  write_variant "";
  expect_corrupt "empty file" path;
  (* every header word forced out of range: counts go negative, value
     fields break the checksum — either way a typed Corrupt, no escape *)
  let n_header_words = min 24 ((len - 8) / 8) in
  for word = 0 to n_header_words - 1 do
    let b = Bytes.of_string content in
    Bytes.set_int64_le b (8 + (word * 8)) (-1L);
    write_variant (Bytes.to_string b);
    expect_corrupt (Printf.sprintf "header word %d out of range" word) path
  done;
  Sys.remove path;
  (* a missing file is an [Io] error, not [Corrupt] *)
  match Trace_io.read_packed_result path with
  | Error e -> Alcotest.(check bool) "missing file: io kind" true (e.kind = Hscd_util.Hscd_error.Io)
  | Ok _ -> Alcotest.fail "missing file accepted"

(* ---------- memory-mapped loading ---------- *)

let test_mmap_roundtrip () =
  let c = Run.compile ~cache:false (Hscd_workloads.Kernels.matmul ~n:10 ()) in
  let path = tmp "hscd_map_rt.hscdtrc" in
  Trace_io.write_packed path c.Run.packed_trace;
  let m = Trace_io.map_packed path in
  Trace_io.Mapped.validate_all m;
  Alcotest.(check bool) "mapped slabs = written slabs" true
    (Trace_io.equal_packed c.Run.packed_trace (Trace_io.Mapped.trace m));
  (* replay straight off the map, lazy validation in the epoch hook *)
  let m2 = Trace_io.map_packed path in
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Run.scheme_name kind ^ ": mapped replay identical")
        true
        (Run.simulate_mapped kind m2 = Run.simulate_packed kind c.Run.packed_trace))
    [ Run.Base; Run.TPI; Run.HW ];
  Sys.remove path

let test_mmap_lazy_validation () =
  (* a corrupt byte in the last epoch's slab span: the map opens, early
     epochs validate, and the damage surfaces — as a typed [Corrupt] —
     only when validation reaches the chunk that covers it *)
  let c = Run.compile ~cache:false (Hscd_workloads.Kernels.jacobi1d ~n:64 ~iters:3 ()) in
  let p = c.Run.packed_trace in
  let n_eps = Array.length p.Trace.p_epochs in
  Alcotest.(check bool) "fixture has several epochs" true (n_eps > 2);
  Alcotest.(check bool) "fixture spans several chunks" true (p.Trace.n_slots > 256);
  let path = tmp "hscd_map_lazy.hscdtrc" in
  (* a small chunk granule so the fixture covers many chunks per slab *)
  Trace_io.write_packed ~chunk_words:64 path p;
  (* the latest live slot and the epoch owning it (slab capacity may pad
     past the last task, and padding slots belong to no epoch) *)
  let target_epoch = ref 0 and target_slot = ref 0 in
  Array.iteri
    (fun e (pe : Trace.pepoch) ->
      Array.iter
        (fun (t : Trace.ptask) ->
          if t.Trace.off + t.Trace.len > !target_slot + 1 then begin
            target_slot := t.Trace.off + t.Trace.len - 1;
            target_epoch := e
          end)
        pe.Trace.p_tasks)
    p.Trace.p_epochs;
  Alcotest.(check bool) "damage lands outside epoch 0's chunks" true (!target_epoch > 0);
  (* flip a byte of the target slot's word in the last (arrs) slab; the
     file ends exactly at the slab region's end, so offsets resolve from
     the tail without knowing the header size *)
  let file_len = (Unix.stat path).Unix.st_size in
  let n = p.Trace.n_slots in
  Hscd_check.Fault.Chaos.corrupt_file path
    ~byte:(file_len - ((n - !target_slot) * 8) + 3);
  let m = Trace_io.map_packed path in
  Trace_io.Mapped.validate_epoch m 0;
  (match Trace_io.Mapped.validate_epoch m !target_epoch with
  | exception Hscd_util.Hscd_error.Error { kind = Hscd_util.Hscd_error.Corrupt; _ } -> ()
  | exception e ->
    Alcotest.fail ("expected Corrupt from the damaged epoch, got " ^ Printexc.to_string e)
  | () -> Alcotest.fail "damaged epoch validated");
  (* a fresh map still opens; validating everything finds the damage *)
  let m2 = Trace_io.map_packed path in
  (match Trace_io.Mapped.validate_all m2 with
  | exception Hscd_util.Hscd_error.Error { kind = Hscd_util.Hscd_error.Corrupt; _ } -> ()
  | exception e -> Alcotest.fail ("expected Corrupt from validate_all, got " ^ Printexc.to_string e)
  | () -> Alcotest.fail "validate_all accepted a damaged map");
  (* the eager reader agrees the file is bad *)
  (match Trace_io.read_packed_result path with
  | Error e ->
    Alcotest.(check bool) "eager read: corrupt kind" true (e.kind = Hscd_util.Hscd_error.Corrupt)
  | Ok _ -> Alcotest.fail "eager read accepted a damaged file");
  Sys.remove path

let test_mmap_header_corruption_rejected_eagerly () =
  (* damage in the header/descriptor section must fail at [map_packed]
     itself — only slab chunks are validated lazily *)
  let c = Run.compile ~cache:false (Hscd_workloads.Kernels.reduction ~n:16 ()) in
  let path = tmp "hscd_map_hdr.hscdtrc" in
  Trace_io.write_packed path c.Run.packed_trace;
  Hscd_check.Fault.Chaos.corrupt_file path ~byte:24;
  (match Trace_io.map_packed_result path with
  | Error e ->
    Alcotest.(check bool) "header damage: corrupt kind" true
      (e.kind = Hscd_util.Hscd_error.Corrupt)
  | Ok _ -> Alcotest.fail "map accepted a damaged header");
  (* truncation inside the slab region also fails at open: the region
     cannot be mapped at its declared size *)
  Trace_io.write_packed path c.Run.packed_trace;
  Hscd_check.Fault.Chaos.truncate_file path ~drop:16;
  (match Trace_io.map_packed_result path with
  | Error e ->
    Alcotest.(check bool) "truncated map: corrupt kind" true
      (e.kind = Hscd_util.Hscd_error.Corrupt)
  | Ok _ -> Alcotest.fail "map accepted a truncated file");
  Sys.remove path

let suite =
  [
    Alcotest.test_case "round-trip stencil" `Quick test_roundtrip_stencil;
    Alcotest.test_case "round-trip generated fuzz traces" `Quick test_roundtrip_generated;
    Alcotest.test_case "round-trip empty and single-event" `Quick test_roundtrip_degenerate;
    Alcotest.test_case "round-trip critical" `Quick test_roundtrip_critical;
    Alcotest.test_case "replay equivalence" `Quick test_replay_equivalence;
    Alcotest.test_case "bad input rejected" `Quick test_bad_input_rejected;
    Alcotest.test_case "mark strings" `Quick test_mark_strings;
    Alcotest.test_case "binary round-trip: kernels" `Quick test_binary_roundtrip_kernels;
    Alcotest.test_case "binary round-trip: Perfect Club models" `Slow test_binary_roundtrip_perfect;
    Alcotest.test_case "binary round-trip: generated fuzz traces" `Quick
      test_binary_roundtrip_generated;
    Alcotest.test_case "binary replay equivalence" `Quick test_binary_replay_equivalence;
    Alcotest.test_case "binary rejects corruption" `Quick test_binary_rejects_corruption;
    Alcotest.test_case "mmap: round-trip and replay" `Quick test_mmap_roundtrip;
    Alcotest.test_case "mmap: lazy chunk validation" `Quick test_mmap_lazy_validation;
    Alcotest.test_case "mmap: header damage fails at open" `Quick
      test_mmap_header_corruption_rejected_eagerly;
  ]
