(** Tests for the extension features: VC and INV schemes, sequential
    consistency, and mid-task migration. *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event
module Scheme = Hscd_coherence.Scheme
module Vc = Hscd_coherence.Vc
module Inv = Hscd_coherence.Inv
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic
module Run = Hscd_sim.Run
module Metrics = Hscd_sim.Metrics

let cls = Alcotest.testable (Fmt.of_to_string Scheme.class_name) ( = )

let cfg = { Config.default with processors = 4 }

(* throwaway stall scratch for boundary calls whose stalls don't matter *)
let scratch () = Array.make cfg.Config.processors 0

let make_vc () =
  let net = Kruskal_snir.create cfg and traffic = Traffic.create cfg in
  Vc.create cfg ~memory_words:256 ~network:net ~traffic

let make_inv () =
  let net = Kruskal_snir.create cfg and traffic = Traffic.create cfg in
  Inv.create cfg ~memory_words:256 ~network:net ~traffic

(* --- VC semantics --- *)

let test_vc_version_hit_and_miss () =
  let vc = make_vc () in
  (* fetch a word of array "x" at version 0 *)
  ignore (Vc.read vc ~proc:0 ~addr:4 ~array:0 ~mark:(Event.Time_read 5));
  (* still current: flagged read hits *)
  Alcotest.check cls "current version hits" Scheme.Hit
    (Vc.read vc ~proc:0 ~addr:4 ~array:0 ~mark:(Event.Time_read 5)).cls;
  (* another processor writes a DIFFERENT word of the same array *)
  ignore (Vc.write vc ~proc:1 ~addr:100 ~array:0 ~value:1 ~mark:Event.Normal_write);
  Vc.epoch_boundary vc ~stalls:(scratch ());
  (* array version bumped: the flagged read misses even though word 4 was
     never written — VC's variable-granularity conservatism *)
  Alcotest.check cls "stale version misses" Scheme.Conservative
    (Vc.read vc ~proc:0 ~addr:4 ~array:0 ~mark:(Event.Time_read 5)).cls

let test_vc_other_array_untouched () =
  let vc = make_vc () in
  ignore (Vc.read vc ~proc:0 ~addr:4 ~array:0 ~mark:(Event.Time_read 5));
  ignore (Vc.write vc ~proc:1 ~addr:100 ~array:1 ~value:1 ~mark:Event.Normal_write);
  Vc.epoch_boundary vc ~stalls:(scratch ());
  (* y's version bump does not disturb x *)
  Alcotest.check cls "per-array versions" Scheme.Hit
    (Vc.read vc ~proc:0 ~addr:4 ~array:0 ~mark:(Event.Time_read 5)).cls

let test_vc_own_write_is_current () =
  let vc = make_vc () in
  ignore (Vc.write vc ~proc:0 ~addr:8 ~array:0 ~value:9 ~mark:Event.Normal_write);
  Vc.epoch_boundary vc ~stalls:(scratch ());
  let r = Vc.read vc ~proc:0 ~addr:8 ~array:0 ~mark:(Event.Time_read 0) in
  Alcotest.check cls "writer keeps its copy" Scheme.Hit r.cls;
  Alcotest.(check int) "value" 9 r.value

let test_vc_normal_reads_unaffected () =
  let vc = make_vc () in
  ignore (Vc.read vc ~proc:0 ~addr:4 ~array:0 ~mark:Event.Normal_read);
  ignore (Vc.write vc ~proc:1 ~addr:100 ~array:0 ~value:1 ~mark:Event.Normal_write);
  Vc.epoch_boundary vc ~stalls:(scratch ());
  Alcotest.check cls "Normal survives version bump" Scheme.Hit
    (Vc.read vc ~proc:0 ~addr:4 ~array:0 ~mark:Event.Normal_read).cls

(* --- INV semantics --- *)

let test_inv_epoch_invalidation () =
  let inv = make_inv () in
  ignore (Inv.read inv ~proc:0 ~addr:4 ~array:0 ~mark:Event.Normal_read);
  Alcotest.check cls "within epoch" Scheme.Hit
    (Inv.read inv ~proc:0 ~addr:4 ~array:0 ~mark:Event.Normal_read).cls;
  Inv.epoch_boundary inv ~stalls:(scratch ());
  Alcotest.check cls "boundary wipes the cache" Scheme.Conservative
    (Inv.read inv ~proc:0 ~addr:4 ~array:0 ~mark:Event.Normal_read).cls

let test_inv_ignores_distance () =
  let inv = make_inv () in
  ignore (Inv.read inv ~proc:0 ~addr:4 ~array:0 ~mark:(Event.Time_read 3));
  (* within the same epoch even a flagged read hits: the region was fetched
     after the last boundary *)
  Alcotest.check cls "flagged read hits within epoch" Scheme.Hit
    (Inv.read inv ~proc:0 ~addr:4 ~array:0 ~mark:(Event.Time_read 3)).cls

(* --- end-to-end coherence of the new schemes --- *)

let test_new_schemes_coherent () =
  List.iter
    (fun (e : Hscd_workloads.Perfect.entry) ->
      let _, results =
        Run.compare ~cfg ~schemes:[ Run.VC; Run.INV; Run.LimitLESS ] (e.build_small ())
      in
      List.iter
        (fun (r : Run.comparison) ->
          Alcotest.(check int)
            (e.name ^ "/" ^ Run.scheme_name r.kind) 0 r.result.metrics.violations;
          Alcotest.(check bool)
            (e.name ^ "/" ^ Run.scheme_name r.kind ^ " mem") true r.result.memory_ok)
        results)
    Hscd_workloads.Perfect.all

let test_locality_ordering () =
  (* TPI must never miss more than SC (same marks, strictly more hardware
     support) nor more than INV (INV drops everything at each boundary).
     VC and TPI are incomparable: VC's runtime version check keeps a
     writer's own data live where TPI's static distance rejects it, while
     TPI's per-word tags survive writes to other parts of the array. *)
  let p = Hscd_workloads.Kernels.jacobi1d ~n:256 ~iters:8 () in
  let _, results = Run.compare ~cfg ~schemes:[ Run.SC; Run.INV; Run.VC; Run.TPI ] p in
  let miss k =
    Metrics.miss_rate
      (List.find (fun (r : Run.comparison) -> r.kind = k) results).result.metrics
  in
  Alcotest.(check bool) "TPI <= SC" true (miss Run.TPI <= miss Run.SC);
  Alcotest.(check bool) "TPI <= INV" true (miss Run.TPI <= miss Run.INV);
  Alcotest.(check bool) "every scheme beats BASE trivially" true (miss Run.SC < 1.0)

(* --- sequential consistency --- *)

let test_sequential_slower () =
  let p = Hscd_workloads.Kernels.jacobi1d ~n:128 ~iters:4 () in
  let run consistency kind =
    (snd (Run.run_source ~cfg:{ cfg with consistency } kind p)).cycles
  in
  List.iter
    (fun kind ->
      let weak = run Config.Weak kind and seq = run Config.Sequential kind in
      Alcotest.(check bool) (Run.scheme_name kind ^ " seq slower") true (seq > weak))
    [ Run.Base; Run.SC; Run.TPI; Run.HW ]

let test_sequential_coherent () =
  let p = Hscd_workloads.Kernels.matmul ~n:12 () in
  let _, results = Run.compare ~cfg:{ cfg with consistency = Config.Sequential } p in
  List.iter
    (fun (r : Run.comparison) ->
      Alcotest.(check int) (Run.scheme_name r.kind) 0 r.result.metrics.violations)
    results

(* --- migration --- *)

let mig_cfg rate = { cfg with scheduling = Config.Dynamic; migration_rate = rate }

let test_migration_happens () =
  let p = Hscd_workloads.Kernels.jacobi1d ~n:128 ~iters:4 () in
  let _, r = Run.run_source ~cfg:(mig_cfg 0.5) Run.TPI p in
  Alcotest.(check bool) "migrations occurred" true (r.metrics.migrations > 0);
  Alcotest.(check int) "still coherent" 0 r.metrics.violations;
  Alcotest.(check bool) "memory intact" true r.memory_ok

let test_migration_zero_rate () =
  let p = Hscd_workloads.Kernels.jacobi1d ~n:64 ~iters:2 () in
  let _, r = Run.run_source ~cfg:(mig_cfg 0.0) Run.TPI p in
  Alcotest.(check int) "no migrations at rate 0" 0 r.metrics.migrations

let test_migration_all_schemes () =
  List.iter
    (fun (e : Hscd_workloads.Perfect.entry) ->
      let _, results = Run.compare ~cfg:(mig_cfg 0.3) (e.build_small ()) in
      List.iter
        (fun (r : Run.comparison) ->
          Alcotest.(check int)
            (e.name ^ "/" ^ Run.scheme_name r.kind ^ " migrated coherent")
            0 r.result.metrics.violations)
        results)
    Hscd_workloads.Perfect.all

let test_migration_requires_dynamic () =
  Alcotest.check_raises "static + migration rejected"
    (Invalid_argument "Config: task migration requires dynamic scheduling")
    (fun () ->
      ignore (Config.validate { cfg with scheduling = Config.Block; migration_rate = 0.5 }))

let test_migration_never_splits_locks () =
  (* critical sections must not migrate: the reduction kernel still works *)
  let p = Hscd_workloads.Kernels.reduction ~n:64 () in
  let _, r = Run.run_source ~cfg:(mig_cfg 0.9) Run.TPI p in
  Alcotest.(check int) "coherent" 0 r.metrics.violations;
  Alcotest.(check int) "all locks acquired" 64 r.metrics.lock_acquires

let suite =
  [
    Alcotest.test_case "vc version hit/miss" `Quick test_vc_version_hit_and_miss;
    Alcotest.test_case "vc per-array" `Quick test_vc_other_array_untouched;
    Alcotest.test_case "vc own write current" `Quick test_vc_own_write_is_current;
    Alcotest.test_case "vc normal reads" `Quick test_vc_normal_reads_unaffected;
    Alcotest.test_case "inv epoch invalidation" `Quick test_inv_epoch_invalidation;
    Alcotest.test_case "inv within epoch" `Quick test_inv_ignores_distance;
    Alcotest.test_case "new schemes coherent" `Quick test_new_schemes_coherent;
    Alcotest.test_case "locality ordering" `Quick test_locality_ordering;
    Alcotest.test_case "sequential slower" `Quick test_sequential_slower;
    Alcotest.test_case "sequential coherent" `Quick test_sequential_coherent;
    Alcotest.test_case "migration happens" `Quick test_migration_happens;
    Alcotest.test_case "migration zero rate" `Quick test_migration_zero_rate;
    Alcotest.test_case "migration all schemes" `Quick test_migration_all_schemes;
    Alcotest.test_case "migration requires dynamic" `Quick test_migration_requires_dynamic;
    Alcotest.test_case "migration never splits locks" `Quick test_migration_never_splits_locks;
  ]
