(* Model-checker smoke test: exhaustively explore all seven schemes at
   the acceptance scope — 2 processors, 1 word, 2-bit timetags (the
   tightest wrap: depth 8 crosses a full 2-phase wrap cycle) — and
   demand zero counterexamples; then assert the checker's teeth by
   injecting a timetag off-by-one into TPI and requiring a
   counterexample that replays to the same violation through the timing
   engine. Runs under `dune runtest` and the @mc-smoke alias; exits
   non-zero on any failure. *)

module Mc = Hscd_check.Mc
module Fault = Hscd_check.Fault
module Oracle = Hscd_check.Oracle
module Run = Hscd_sim.Run

let () =
  let jobs = Hscd_util.Pool.default_jobs () in
  let bad = ref false in
  (* full wrap window: with 2-bit tags the two-phase reset fires every 2
     epochs and tags recycle every 4; depth 8 holds a write, a full wrap
     cycle of boundaries and the boundary-distance reads after it *)
  let scope = { Mc.default_scope with Mc.depth = 8 } in
  Printf.printf "mc-smoke: %s\n%!" (Mc.describe_scope scope);
  List.iter
    (fun kind ->
      let r = Mc.explore ~jobs scope kind in
      print_endline (Mc.describe r);
      if not (Mc.ok r) then bad := true)
    Run.extended_schemes;
  (* multi-word lines at a shallower depth: companion fills tagged one
     epoch back, false sharing between the two words of one line *)
  let scope2 =
    { Mc.default_scope with Mc.words = 2; Mc.line_words = 2; Mc.depth = 5 }
  in
  Printf.printf "mc-smoke: %s\n%!" (Mc.describe_scope scope2);
  List.iter
    (fun kind ->
      let r = Mc.explore ~jobs scope2 kind in
      print_endline (Mc.describe r);
      if not (Mc.ok r) then bad := true)
    Run.extended_schemes;
  (* the checker must have teeth: a seeded timetag off-by-one produces a
     counterexample, and the engine replay reproduces it *)
  let fault = Fault.Stale_time_read 1 in
  let r = Mc.explore ~fault ~jobs scope Run.TPI in
  print_endline (Mc.describe r);
  (match r.Mc.counterexample with
  | None ->
    print_endline "mc-smoke: seeded fault produced NO counterexample";
    bad := true
  | Some cx ->
    let _trace, o = Mc.replay ~fault ~jobs scope cx in
    if Oracle.ok o then begin
      print_endline "mc-smoke: engine replay did not reproduce the seeded fault";
      bad := true
    end
    else Printf.printf "mc-smoke: seeded fault found and engine-reproduced\n");
  if !bad then exit 1
