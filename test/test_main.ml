(* Aggregated alcotest runner for all suites. *)
let () =
  Alcotest.run "hscd"
    [
      ("util", Test_util.suite);
      ("lang", Test_lang.suite);
      ("eval", Test_eval.suite);
      ("sections", Test_sections.suite);
      ("compiler", Test_compiler.suite);
      ("marking", Test_marking.suite);
      ("cache-net", Test_cache_net.suite);
      ("coherence", Test_coherence.suite);
      ("engine", Test_engine.suite);
      ("parallel", Test_parallel.suite);
      ("supervised", Test_supervised.suite);
      ("random", Test_random.suite);
      ("extensions", Test_extensions.suite);
      ("stats-report", Test_stats_report.suite);
      ("hw-invariants", Test_hw_invariants.suite);
      ("trace-io", Test_trace_io.suite);
      ("packed", Test_packed.suite);
      ("sharded", Test_sharded.suite);
      ("fuzz", Test_fuzz.suite);
      ("monitor", Test_monitor.suite);
      ("mc", Test_mc.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("workloads", Test_workloads.suite);
      ("compile-cache", Test_compile_cache.suite);
      ("experiments", Test_experiments.suite);
      ("service", Test_service.suite);
      ("core", [ Alcotest.test_case "facade placeholder" `Quick (fun () -> Core.placeholder ()) ]);
    ]
