(** Edge cases across layers: degenerate programs, extreme configurations,
    empty structures. *)

module Ast = Hscd_lang.Ast
module B = Hscd_lang.Builder
module Sema = Hscd_lang.Sema
module Eval = Hscd_lang.Eval
module Parser = Hscd_lang.Parser
module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Metrics = Hscd_sim.Metrics

let test_empty_program () =
  (* no arrays, no statements: compiles and simulates to ~nothing *)
  let p = B.program [] [ B.proc "main" [] [] ] in
  let c, results = Run.compare p in
  Alcotest.(check int) "one serial epoch" 1 (Trace.packed_n_epochs c.packed_trace);
  List.iter
    (fun (r : Run.comparison) ->
      Alcotest.(check int) "no accesses" 0 (Metrics.accesses r.result.metrics);
      Alcotest.(check bool) "memory trivially ok" true r.result.memory_ok)
    results

let test_single_iteration_doall () =
  let p = B.simple [ B.array "a" [ 4 ] ] [ B.doall "i" (B.int 2) (B.int 2) [ B.s1 "a" (B.var "i") (B.int 9) ] ] in
  let r = Eval.run (Sema.check_exn p) in
  Alcotest.(check int) "wrote once" 9 (Eval.peek r "a" [ 2 ])

let test_empty_doall () =
  (* lo > hi: zero tasks, but still an epoch boundary *)
  let p = B.simple [ B.array "a" [ 4 ] ] [ B.doall "i" (B.int 3) (B.int 1) [ B.s1 "a" (B.var "i") (B.int 9) ] ] in
  let c = Run.compile p in
  Alcotest.(check int) "three epochs" 3 (Trace.packed_n_epochs c.packed_trace);
  let r = Run.simulate_packed Run.TPI c.packed_trace in
  Alcotest.(check bool) "simulates fine" true r.memory_ok

let test_one_processor () =
  let cfg = { Config.default with processors = 1 } in
  let _, results = Run.compare ~cfg (Hscd_workloads.Kernels.jacobi1d ~n:32 ~iters:2 ()) in
  List.iter
    (fun (r : Run.comparison) ->
      Alcotest.(check int) (Run.scheme_name r.kind) 0 r.result.metrics.violations;
      (* with one processor there is no remote writer: HW sees no sharing *)
      if r.kind = Run.HW then
        Alcotest.(check int) "no sharing misses" 0
          (Metrics.class_count r.result.metrics Hscd_coherence.Scheme.True_sharing
          + Metrics.class_count r.result.metrics Hscd_coherence.Scheme.False_sharing))
    results

let test_more_processors_than_tasks () =
  let cfg = { Config.default with processors = 16 } in
  let p = B.simple [ B.array "a" [ 4 ] ] [ B.doall "i" (B.int 0) (B.int 3) [ B.s1 "a" (B.var "i") (B.var "i") ] ] in
  let _, r = Run.run_source ~cfg Run.TPI p in
  Alcotest.(check int) "coherent" 0 r.metrics.violations

let test_single_word_lines () =
  (* 1-word lines: no spatial locality, no false sharing possible *)
  let cfg = { Config.default with line_words = 1 } in
  let _, results = Run.compare ~cfg (Hscd_workloads.Kernels.transpose ~n:16 ()) in
  List.iter
    (fun (r : Run.comparison) ->
      Alcotest.(check int) (Run.scheme_name r.kind) 0 r.result.metrics.violations;
      Alcotest.(check int)
        (Run.scheme_name r.kind ^ " no false sharing")
        0
        (Metrics.class_count r.result.metrics Hscd_coherence.Scheme.False_sharing))
    results

let test_deep_call_chain () =
  (* a -> b -> c -> d with the epochs at the bottom: interprocedural
     summaries must compose through several levels *)
  let p =
    B.program
      [ B.array "x" [ 16 ]; B.array "y" [ 16 ] ]
      [
        B.proc "d" [] [ B.doall "i" (B.int 0) (B.int 15) [ B.s1 "x" (B.var "i") (B.var "i") ] ];
        B.proc "c" [] [ B.call "d" [] ];
        B.proc "b" [] [ B.call "c" [] ];
        B.proc "main" []
          [
            B.call "b" [];
            B.doall "i" (B.int 1)
              (B.int 14)
              [ B.s1 "y" (B.var "i") B.(a1 "x" (var "i" %- int 1) %+ int 1) ];
          ];
      ]
  in
  let _, r = Run.run_source Run.TPI p in
  Alcotest.(check int) "coherent through the chain" 0 r.metrics.violations;
  Alcotest.(check bool) "memory" true r.memory_ok

let test_parse_deeply_nested () =
  let src =
    "array a[2]\nproc main()\n"
    ^ String.concat "" (List.init 18 (fun i -> Printf.sprintf "do v%d = 0, 1\n" i))
    ^ "a[0] = a[0] + 1\n"
    ^ String.concat "" (List.init 18 (fun _ -> "end\n"))
    ^ "end"
  in
  let p = Sema.check_exn (Parser.parse_exn src) in
  let r = Eval.run p in
  (* 18 nested two-trip loops: the innermost body runs 2^18 times *)
  Alcotest.(check int) "iteration product" (1 lsl 18) (Eval.peek r "a" [ 0 ])

let suite =
  [
    Alcotest.test_case "empty program" `Quick test_empty_program;
    Alcotest.test_case "single-iteration doall" `Quick test_single_iteration_doall;
    Alcotest.test_case "empty doall" `Quick test_empty_doall;
    Alcotest.test_case "one processor" `Quick test_one_processor;
    Alcotest.test_case "more processors than tasks" `Quick test_more_processors_than_tasks;
    Alcotest.test_case "single-word lines" `Quick test_single_word_lines;
    Alcotest.test_case "deep call chain" `Quick test_deep_call_chain;
    Alcotest.test_case "parse deeply nested" `Quick test_parse_deeply_nested;
  ]
