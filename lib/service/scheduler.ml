type config = { weight : int; capacity : int }

let default_config = { weight = 1; capacity = 64 }

(* Stride scale: lcm(1..16), so every weight up to 16 divides it exactly
   and common weight ratios produce exact interleavings; larger weights
   still work, with rounding error below one service slot. *)
let scale = 720720

type 'a tenant = {
  name : string;
  mutable weight : int;
  mutable capacity : int;
  mutable stride : int;
  queue : 'a Queue.t;  (* stage 2: FCFS *)
  mutable pass : int;  (* stage 1: stride virtual time *)
}

type 'a t = {
  strict : bool;
  default : config;
  table : (string, 'a tenant) Hashtbl.t;
  mutable order : 'a tenant list;  (* registration order: deterministic ties *)
  mutable vtime : int;  (* pass of the most recently served tenant *)
  mutable queued : int;
}

let create ?(strict = false) ?(default = default_config) () =
  if default.weight < 1 || default.capacity < 1 then
    invalid_arg "Scheduler.create: default weight/capacity must be >= 1";
  { strict; default; table = Hashtbl.create 16; order = []; vtime = 0; queued = 0 }

let register t name (cfg : config) =
  if cfg.weight < 1 || cfg.capacity < 1 then
    invalid_arg "Scheduler.add_tenant: weight/capacity must be >= 1";
  match Hashtbl.find_opt t.table name with
  | Some tn ->
    tn.weight <- cfg.weight;
    tn.capacity <- cfg.capacity;
    tn.stride <- scale / cfg.weight;
    tn
  | None ->
    let tn =
      {
        name;
        weight = cfg.weight;
        capacity = cfg.capacity;
        stride = scale / cfg.weight;
        queue = Queue.create ();
        (* joins at the current virtual time: no banked credit from the
           epoch before it existed *)
        pass = t.vtime;
      }
    in
    Hashtbl.replace t.table name tn;
    t.order <- t.order @ [ tn ];
    tn

let add_tenant t ~name cfg = ignore (register t name cfg)

type admission = [ `Queued of int | `Busy of string | `Rejected of string ]

let enqueue t tn job =
  (* becoming active again: re-enter at the current virtual time, else a
     long-idle tenant's stale (small) pass would let it monopolize the
     scheduler until its lag is burned off *)
  if Queue.is_empty tn.queue && tn.pass < t.vtime then tn.pass <- t.vtime;
  Queue.push job tn.queue;
  t.queued <- t.queued + 1

let submit t ~tenant job : admission =
  match Hashtbl.find_opt t.table tenant with
  | None when t.strict -> `Rejected (Printf.sprintf "unknown tenant %S" tenant)
  | (None | Some _) as existing ->
    let tn = match existing with Some tn -> tn | None -> register t tenant t.default in
    let depth = Queue.length tn.queue in
    if depth >= tn.capacity then
      `Busy
        (Printf.sprintf "tenant %S queue full (%d/%d queued)" tenant depth tn.capacity)
    else begin
      enqueue t tn job;
      `Queued depth
    end

let force t ~tenant job =
  let tn =
    match Hashtbl.find_opt t.table tenant with
    | Some tn -> tn
    | None -> register t tenant t.default
  in
  enqueue t tn job

let next t =
  if t.queued = 0 then None
  else begin
    (* stage 1: least pass among nonempty tenants, registration order
       breaking ties — deterministic for replayable tests *)
    let best =
      List.fold_left
        (fun best tn ->
          if Queue.is_empty tn.queue then best
          else
            match best with
            | Some b when b.pass <= tn.pass -> best
            | _ -> Some tn)
        None t.order
    in
    match best with
    | None -> None (* unreachable: queued > 0 *)
    | Some tn ->
      (* stage 2: FCFS within the tenant *)
      let job = Queue.pop tn.queue in
      t.queued <- t.queued - 1;
      t.vtime <- tn.pass;
      tn.pass <- tn.pass + tn.stride;
      Some (tn.name, job)
  end

let pending t = t.queued

let tenant_pending t name =
  match Hashtbl.find_opt t.table name with None -> 0 | Some tn -> Queue.length tn.queue

let tenants t = List.map (fun tn -> tn.name) t.order
