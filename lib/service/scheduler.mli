(** Two-stage fair scheduler with admission control: stage 1 picks a
    tenant by weighted round-robin, stage 2 picks within the tenant FCFS.

    Tenants contend for the simulation domains the way processors contend
    for a shared bus, and the service-discipline studies say the
    discipline decides tail latency: plain FCFS across tenants lets one
    heavy tenant starve everyone, so stage 1 is a {e smooth} weighted
    round-robin (stride scheduling — the credit/virtual-time form of the
    WRR that NIC virtualization uses to share one link across hundreds of
    queues). Each tenant carries a virtual-time [pass]; the nonempty
    tenant with the least pass is served and its pass advances by
    [scale / weight], so over any backlogged window tenants are served in
    weight proportion (±1 for a pair), and a tenant that goes idle and
    returns re-enters at the current virtual time — it can neither be
    starved nor monopolize with banked credit.

    Admission is bounded everywhere: each tenant queue has a capacity and
    a full queue answers [`Busy] (backpressure, retryable), while an
    unknown tenant under [strict] answers [`Rejected] (policy, final).
    The scheduler never buffers beyond the declared bounds. *)

type config = {
  weight : int;  (** service share; >= 1 *)
  capacity : int;  (** max queued jobs before [`Busy]; >= 1 *)
}

val default_config : config

type 'a t

(** [create ~strict ()] — under [strict] (default false), only tenants
    declared via {!add_tenant} may submit; otherwise an unknown tenant is
    auto-registered with [default] (default {!default_config}) on first
    submit. *)
val create : ?strict:bool -> ?default:config -> unit -> 'a t

(** Declare (or re-weight) a tenant. Raises [Invalid_argument] on a
    weight or capacity < 1. *)
val add_tenant : 'a t -> name:string -> config -> unit

type admission =
  [ `Queued of int  (** admitted; jobs ahead of it in the tenant queue *)
  | `Busy of string  (** bounded queue full — retry later *)
  | `Rejected of string  (** unknown tenant under [strict] *) ]

val submit : 'a t -> tenant:string -> 'a -> admission

(** Recovery path: enqueue bypassing capacity (a journaled job accepted
    before a crash must not be dropped by its own backlog). Auto-registers
    the tenant when unknown, even under [strict] — it was admitted once. *)
val force : 'a t -> tenant:string -> 'a -> unit

(** Stage 1 (weighted round-robin over nonempty tenants) then stage 2
    (FCFS within the winner). [None] iff nothing is queued — the
    scheduler is work-conserving. *)
val next : 'a t -> (string * 'a) option

val pending : 'a t -> int
val tenant_pending : 'a t -> string -> int
val tenants : 'a t -> string list
