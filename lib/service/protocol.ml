(** Wire protocol of the sweep service: length-prefixed, versioned,
    checksummed frames over a Unix-domain stream socket, carrying typed
    request/response messages.

    Framing (all integers 8-byte little-endian, the {!Trace_io}/
    {!Hscd_util.Journal} idiom):

    {v
    magic "HSCDFRM1"
    payload length n          (bounded by max_frame)
    checksum                  (avalanche fold over length + payload bytes)
    n payload bytes           (Marshal of request / response)
    v}

    A frame that fails any of magic, length-plausibility or checksum is a
    typed [Corrupt] error — a flipped bit on the wire is rejected before
    the payload is unmarshalled, and the connection is dropped rather than
    resynchronized (the client reconnects and idempotently resubmits by
    job digest). Protocol versioning rides in the [Hello] exchange, not in
    every frame: a server that cannot speak the client's version says so
    in a typed reply and closes. *)

module E = Hscd_util.Hscd_error

let magic = "HSCDFRM1"
let version = 1

(** Upper bound on one frame's payload (a [Done] carrying a full sweep's
    marshalled engine results is ~100 KiB; 64 MiB is headroom, not a
    target). A corrupted length field decodes as garbage — the bound
    rejects it before any allocation. *)
let max_frame = 64 * 1024 * 1024

let header_bytes = 24 (* magic + length + checksum *)

(* the same order-sensitive avalanche fold as the journal / trace store *)
let mix h v =
  let h = (h lxor v) * 0x9E3779B1 in
  (h lxor (h lsr 27)) * 0x85EBCA77

let sum_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

let frame_sum payload = sum_string (mix 0 (String.length payload)) payload

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

(** The timing-side knobs a job may vary; everything else is
    {!Hscd_arch.Config.default}. *)
type cfg_spec = { processors : int; line_words : int; timetag_bits : int }

let default_cfg_spec =
  {
    processors = Hscd_arch.Config.default.Hscd_arch.Config.processors;
    line_words = Hscd_arch.Config.default.Hscd_arch.Config.line_words;
    timetag_bits = Hscd_arch.Config.default.Hscd_arch.Config.timetag_bits;
  }

let config_of_spec (s : cfg_spec) =
  {
    Hscd_arch.Config.default with
    Hscd_arch.Config.processors = s.processors;
    line_words = s.line_words;
    timetag_bits = s.timetag_bits;
  }

type job_spec =
  | Compile of { target : string; cfg : cfg_spec; small : bool }
      (** compile [target] (benchmark/kernel name), return trace shape *)
  | Compare of { target : string; schemes : string list; cfg : cfg_spec; small : bool }
      (** one bench, each scheme on the identical reference stream *)
  | Sweep of { schemes : string list; cfg : cfg_spec; small : bool }
      (** all six Perfect Club models × [schemes] — the [hscd experiment]
          grid, served a cell at a time *)

(** Stable identity of a job: the digest of its marshalled spec. Two
    clients submitting the same spec share one execution and one journal
    entry; a reconnecting client resubmits the digest idempotently. *)
let job_digest (spec : job_spec) =
  Digest.to_hex (Digest.string (Marshal.to_string (spec : job_spec) []))

type cell = { cell : string; result : Hscd_sim.Engine.result }

type payload =
  | Cells of cell list  (** compare / sweep results, plan order *)
  | Compiled of { target : string; epochs : int; events : int }

type request =
  | Hello of { version : int; tenant : string }
  | Submit of { digest : string; spec : job_spec }
  | Ping

type response =
  | Hello_ok of { version : int }
  | Hello_reject of { server_version : int }
  | Accepted of { digest : string; position : int }
      (** admitted; [position] = jobs queued ahead within the tenant *)
  | Busy_reply of { digest : string; reason : string }
      (** backpressure: bounded queue full or draining — retryable *)
  | Rejected_reply of { digest : string; reason : string }
      (** policy refusal: unknown tenant, over quota, invalid job *)
  | Progress of { digest : string; cell : string; finished : int; total : int }
  | Done of { digest : string; payload : payload }
  | Failed of { digest : string; error : E.t }
  | Pong

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let n = String.length payload in
  if n > max_frame then E.fail E.Internal "Protocol: frame payload %d exceeds max_frame" n;
  let b = Bytes.create (header_bytes + n) in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int n);
  Bytes.set_int64_le b 16 (Int64.of_int (frame_sum payload));
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

let encode_request (r : request) = frame (Marshal.to_string r [])
let encode_response (r : response) = frame (Marshal.to_string r [])

(* Unmarshalling a checksummed payload can still raise on a foreign (but
   checksum-valid) byte stream — e.g. a stray client speaking another
   protocol version of the message type. Typed [Corrupt], never an
   escape. *)
let parse_request s : (request, E.t) result =
  match (Marshal.from_string s 0 : request) with
  | r -> Ok r
  | exception _ -> E.error E.Corrupt "Protocol: undecodable request payload"

let parse_response s : (response, E.t) result =
  match (Marshal.from_string s 0 : response) with
  | r -> Ok r
  | exception _ -> E.error E.Corrupt "Protocol: undecodable response payload"

(* ------------------------------------------------------------------ *)
(* Incremental decoder                                                 *)
(* ------------------------------------------------------------------ *)

(** Per-connection reassembly buffer: bytes are fed as they arrive (the
    server reads nonblocking, so a frame may span many reads — or a hung
    client may park half a frame here forever without blocking anyone);
    complete verified frames pop out. *)
type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder () = { buf = Bytes.create 4096; len = 0 }
let buffered d = d.len

let feed d src off n =
  if n > 0 then begin
    if d.len + n > Bytes.length d.buf then begin
      let cap = ref (Bytes.length d.buf) in
      while d.len + n > !cap do
        cap := !cap * 2
      done;
      let b = Bytes.create !cap in
      Bytes.blit d.buf 0 b 0 d.len;
      d.buf <- b
    end;
    Bytes.blit src off d.buf d.len n;
    d.len <- d.len + n
  end

(** [Ok None]: need more bytes. [Ok (Some payload)]: one verified frame,
    consumed. [Error]: corrupt framing (bad magic, implausible length,
    checksum mismatch) — the connection is beyond resync, drop it. *)
let next_frame d : (string option, E.t) result =
  if d.len < header_bytes then Ok None
  else if Bytes.sub_string d.buf 0 8 <> magic then
    E.error E.Corrupt "Protocol: bad frame magic"
  else
    let n = Int64.to_int (Bytes.get_int64_le d.buf 8) in
    if n < 0 || n > max_frame then E.error E.Corrupt "Protocol: implausible frame length %d" n
    else if d.len < header_bytes + n then Ok None
    else begin
      let sum = Int64.to_int (Bytes.get_int64_le d.buf 16) in
      let payload = Bytes.sub_string d.buf header_bytes n in
      if frame_sum payload <> sum then E.error E.Corrupt "Protocol: frame checksum mismatch"
      else begin
        let rest = d.len - (header_bytes + n) in
        Bytes.blit d.buf (header_bytes + n) d.buf 0 rest;
        d.len <- rest;
        Ok (Some payload)
      end
    end
