(** The sweep daemon: a long-lived single-process server accepting
    compile / compare / sweep jobs from many concurrent clients over a
    Unix-domain socket, scheduling tenants with the two-stage weighted
    round-robin of {!Scheduler}, executing one simulation cell at a time,
    and journaling both admission and completion so a kill at any instant
    loses at most the in-flight cell.

    Concurrency model: one event loop, no worker domains. Socket I/O is
    nonblocking with per-connection reassembly buffers (a hung client
    parks half a frame forever without blocking anyone; a slow reader
    that lets its output buffer hit the cap is dropped). Simulation cells
    run inline between pump passes — the cell is the unit of latency, and
    admission, progress streaming and backpressure stay responsive at
    cell granularity. This keeps the daemon fork-safe and deterministic:
    results are bit-identical to a sequential [hscd experiment] run by
    construction, because they are produced by the same calls in the same
    per-job order.

    Crash-safety:
    - [state_dir/jobs.jnl] ({!Hscd_util.Journal}, [HSCDJNL1]): one
      [accept|digest] record per admitted job (written {e before} the
      [Accepted] reply — durable once acknowledged), one [done|digest]
      record per finished job (written before the [Done] reply).
    - [state_dir/job-<digest>.jnl]: one record per completed cell of the
      running job (the marshalled engine result keyed by cell name).
    - On restart: accepted-but-not-done jobs re-enqueue in admission
      order (bypassing capacity — they were admitted once), and a resumed
      job replays only its missing cells, bit-identically.
    - On SIGTERM/SIGINT ({!request_drain}): stop admitting ([Busy]
      replies), finish the in-flight cell, checkpoint, exit cleanly. *)

module E = Hscd_util.Hscd_error
module Journal = Hscd_util.Journal
module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Engine = Hscd_sim.Engine
module Perfect = Hscd_workloads.Perfect
module P = Protocol

type settings = {
  socket : string;  (** Unix-domain socket path *)
  state_dir : string;  (** journals live here *)
  tenants : (string * Scheduler.config) list;  (** declared tenants *)
  strict : bool;  (** refuse undeclared tenants *)
  default_tenant : Scheduler.config;  (** auto-registration config *)
  max_pending : int;  (** global queued-job cap (admission [Busy]) *)
  out_cap : int;  (** per-connection output-buffer cap in bytes *)
}

let default_settings ~socket ~state_dir =
  {
    socket;
    state_dir;
    tenants = [];
    strict = false;
    default_tenant = Scheduler.default_config;
    max_pending = 256;
    out_cap = 16 * 1024 * 1024;
  }

(* ---- drain control (signal-safe: a single atomic flag) ---- *)

let drain_flag = Atomic.make false
let request_drain () = Atomic.set drain_flag true
let draining () = Atomic.get drain_flag
let reset_drain_for_testing () = Atomic.set drain_flag false

let install_signal_handlers () =
  let h = Sys.Signal_handle (fun _ -> request_drain ()) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

(* ---- state ---- *)

type job = { digest : string; tenant : string; spec : P.job_spec }

type plan =
  | Cells_plan of {
      keys : string array;
      run : int -> (Engine.result, E.t) result;
    }
  | Compile_plan of (unit -> (P.payload, E.t) result)

type running = {
  job : job;
  keys : string array;
  run_cell : int -> (Engine.result, E.t) result;
  results : Engine.result option array;
  mutable finished : int;
  cjournal : Journal.t;
  cpath : string;
}

type conn = {
  id : int;
  fd : Unix.file_descr;
  dec : P.decoder;
  out : Buffer.t;
  mutable out_off : int;
  mutable tenant : string option;  (* set by Hello *)
  mutable alive : bool;
}

type t = {
  settings : settings;
  listen_fd : Unix.file_descr;
  journal : Journal.t;
  sched : job Scheduler.t;
  mutable conns : conn list;
  by_id : (int, conn) Hashtbl.t;
  accepted : (string, job) Hashtbl.t;  (* queued or running *)
  done_tbl : (string, P.payload) Hashtbl.t;
  subs : (string, int list) Hashtbl.t;  (* digest -> subscriber conn ids *)
  mutable running : running option;
  mutable next_id : int;
}

(* ---- journal records ---- *)

let accept_key digest = "accept|" ^ digest
let done_key digest = "done|" ^ digest

let record_kind key =
  match String.index_opt key '|' with
  | Some i -> (String.sub key 0 i, String.sub key (i + 1) (String.length key - i - 1))
  | None -> ("", key)

let job_journal_path st digest = Filename.concat st.settings.state_dir ("job-" ^ digest ^ ".jnl")

(* ---- job validation and planning ---- *)

let find_target name =
  match Perfect.find name with
  | Some e -> Some (`Perfect e)
  | None -> (
    match List.assoc_opt (String.lowercase_ascii name) Hscd_workloads.Kernels.all with
    | Some b -> Some (`Kernel b)
    | None -> None)

let build_target target ~small =
  match find_target target with
  | Some (`Perfect e) -> if small then e.Perfect.build_small () else e.Perfect.build ()
  | Some (`Kernel b) -> b ()
  | None -> E.fail E.Usage "unknown target %s" target

let parse_schemes names =
  if names = [] then Error "no schemes requested"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match Run.scheme_of_name n with
        | Ok k -> go (k :: acc) rest
        | Error e -> Error (E.to_string e))
    in
    go [] names

let check_cfg (c : P.cfg_spec) =
  match Config.validate (P.config_of_spec c) with
  | _ -> Ok ()
  | exception Invalid_argument m -> Error m
  | exception _ -> Error "invalid configuration"

(** Admission-time validation: everything that makes a job unservable is
    detected here, so the refusal is an immediate typed [Rejected] rather
    than a deferred [Failed]. *)
let validate_spec (spec : P.job_spec) =
  let check_target t = if find_target t = None then Error ("unknown target " ^ t) else Ok () in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  match spec with
  | P.Compile { target; cfg; _ } -> check_target target >>= fun () -> check_cfg cfg
  | P.Compare { target; schemes; cfg; _ } ->
    check_target target >>= fun () ->
    (match parse_schemes schemes with Ok _ -> Ok () | Error m -> Error m) >>= fun () ->
    check_cfg cfg
  | P.Sweep { schemes; cfg; _ } ->
    (match parse_schemes schemes with Ok _ -> Ok () | Error m -> Error m) >>= fun () ->
    check_cfg cfg

(* Cells compile through {!Run.compile}'s shared cache (in-memory +
   optional on-disk), so overlapping jobs from different tenants
   regenerate each reference stream exactly once per daemon. A transient
   cell failure is retried inline a couple of times; the supervised-pool
   policy machinery stays with multi-domain sweeps. *)
let rec with_retries n f =
  match f () with
  | Ok _ as ok -> ok
  | Error e when n > 0 && E.transient e -> with_retries (n - 1) f
  | Error _ as err -> err

let cell_retries = 2

let plan_of_spec (spec : P.job_spec) : plan =
  match spec with
  | P.Compile { target; cfg; small } ->
    Compile_plan
      (fun () ->
        let cfg = P.config_of_spec cfg in
        match Run.compile_result ~cfg ~intertask:true (build_target target ~small) with
        | Error _ as e -> e
        | Ok c ->
          Ok
            (P.Compiled
               {
                 target;
                 epochs = Hscd_sim.Trace.packed_n_epochs c.Run.packed_trace;
                 events = c.Run.packed_trace.Hscd_sim.Trace.p_total_events;
               }))
  | P.Compare { target; schemes; cfg; small } ->
    let kinds = match parse_schemes schemes with Ok ks -> ks | Error m -> E.fail E.Rejected "%s" m in
    let cfg = P.config_of_spec cfg in
    let keys =
      Array.of_list (List.map (fun k -> target ^ "/" ^ Run.scheme_name k) kinds)
    in
    let kinds = Array.of_list kinds in
    let compiled =
      lazy (Run.compile_result ~cfg ~intertask:true (build_target target ~small))
    in
    Cells_plan
      {
        keys;
        run =
          (fun i ->
            match Lazy.force compiled with
            | Error _ as e -> e
            | Ok c ->
              with_retries cell_retries (fun () ->
                  Run.simulate_packed_result ~cfg kinds.(i) c.Run.packed_trace));
      }
  | P.Sweep { schemes; cfg; small } ->
    let kinds = match parse_schemes schemes with Ok ks -> ks | Error m -> E.fail E.Rejected "%s" m in
    let cfg = P.config_of_spec cfg in
    let benches = List.map (fun (e : Perfect.entry) -> e.Perfect.name) Perfect.all in
    let grid =
      List.concat_map (fun b -> List.map (fun k -> (b, k)) kinds) benches |> Array.of_list
    in
    let keys = Array.map (fun (b, k) -> b ^ "/" ^ Run.scheme_name k) grid in
    let compiled : (string, (Run.compiled, E.t) result) Hashtbl.t = Hashtbl.create 8 in
    let compile b =
      match Hashtbl.find_opt compiled b with
      | Some r -> r
      | None ->
        let r = Run.compile_result ~cfg ~intertask:true (build_target b ~small) in
        Hashtbl.replace compiled b r;
        r
    in
    Cells_plan
      {
        keys;
        run =
          (fun i ->
            let b, k = grid.(i) in
            match compile b with
            | Error _ as e -> e
            | Ok c ->
              with_retries cell_retries (fun () ->
                  Run.simulate_packed_result ~cfg k c.Run.packed_trace));
      }

(* ---- connection I/O ---- *)

let send st c (resp : P.response) =
  if c.alive then begin
    Buffer.add_string c.out (P.encode_response resp);
    if Buffer.length c.out - c.out_off > st.settings.out_cap then
      (* slow consumer: dropping it beats unbounded buffering; the client
         reconnects and resubmits by digest *)
      c.alive <- false
  end

let flush_conn c =
  if c.alive && Buffer.length c.out > c.out_off then begin
    let s = Buffer.contents c.out in
    match Unix.write_substring c.fd s c.out_off (String.length s - c.out_off) with
    | n ->
      c.out_off <- c.out_off + n;
      if c.out_off = String.length s then begin
        Buffer.clear c.out;
        c.out_off <- 0
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> c.alive <- false
  end

let subscribe st digest c =
  let cur = Option.value (Hashtbl.find_opt st.subs digest) ~default:[] in
  if not (List.mem c.id cur) then Hashtbl.replace st.subs digest (c.id :: cur)

let broadcast st digest resp =
  match Hashtbl.find_opt st.subs digest with
  | None -> ()
  | Some ids ->
    List.iter
      (fun id ->
        match Hashtbl.find_opt st.by_id id with
        | Some c when c.alive ->
          send st c resp;
          flush_conn c
        | _ -> ())
      ids

let clear_subs st digest = Hashtbl.remove st.subs digest

(* ---- request handling ---- *)

let queue_position st (job : job) =
  (* jobs ahead of it within its tenant: the freshly queued job sits last *)
  max 0 (Scheduler.tenant_pending st.sched job.tenant - 1)

let handle_submit st c ~digest ~(spec : P.job_spec) =
  (* the digest is the job's identity — recompute rather than trust *)
  let digest' = P.job_digest spec in
  if digest <> digest' then
    send st c (P.Rejected_reply { digest; reason = "digest does not match spec" })
  else if Hashtbl.mem st.done_tbl digest then
    send st c (P.Done { digest; payload = Hashtbl.find st.done_tbl digest })
  else if Hashtbl.mem st.accepted digest then begin
    (* duplicate (another client, or an idempotent resubmit after a
       reconnect): attach, don't re-execute *)
    subscribe st digest c;
    send st c (P.Accepted { digest; position = queue_position st (Hashtbl.find st.accepted digest) })
  end
  else if draining () then send st c (P.Busy_reply { digest; reason = "draining" })
  else
    match c.tenant with
    | None -> c.alive <- false (* Submit before Hello: protocol violation *)
    | Some tenant -> (
      match validate_spec spec with
      | Error reason -> send st c (P.Rejected_reply { digest; reason })
      | Ok () ->
        if Scheduler.pending st.sched >= st.settings.max_pending then
          send st c (P.Busy_reply { digest; reason = "service queue full" })
        else
          let job = { digest; tenant; spec } in
          (match Scheduler.submit st.sched ~tenant job with
          | `Rejected reason -> send st c (P.Rejected_reply { digest; reason })
          | `Busy reason -> send st c (P.Busy_reply { digest; reason })
          | `Queued position ->
            (* durable before acknowledged: a crash between the reply and
               the journal write must not lose an accepted job *)
            Journal.append st.journal ~key:(accept_key digest)
              (Marshal.to_string (tenant, spec) []);
            Hashtbl.replace st.accepted digest job;
            subscribe st digest c;
            send st c (P.Accepted { digest; position })))

let handle_request st c (req : P.request) =
  match req with
  | P.Hello { version; tenant } ->
    if version <> P.version then begin
      send st c (P.Hello_reject { server_version = P.version });
      flush_conn c;
      c.alive <- false
    end
    else begin
      c.tenant <- Some tenant;
      send st c (P.Hello_ok { version = P.version })
    end
  | P.Submit { digest; spec } -> handle_submit st c ~digest ~spec
  | P.Ping -> send st c P.Pong

let handle_read st c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> c.alive <- false
  | n ->
    P.feed c.dec buf 0 n;
    let rec drain_frames () =
      if c.alive then
        match P.next_frame c.dec with
        | Ok None -> ()
        | Ok (Some payload) -> (
          match P.parse_request payload with
          | Ok req ->
            handle_request st c req;
            drain_frames ()
          | Error _ -> c.alive <- false)
        | Error _ ->
          (* corrupt framing (e.g. a flipped bit): beyond resync — drop;
             the client treats the closed socket as transient Io *)
          c.alive <- false
    in
    drain_frames ();
    (* answer admission immediately — the next pump pass may be a whole
       simulation cell away *)
    flush_conn c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> c.alive <- false

let accept_new st =
  let rec go () =
    match Unix.accept st.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      let c =
        {
          id = st.next_id;
          fd;
          dec = P.decoder ();
          out = Buffer.create 1024;
          out_off = 0;
          tenant = None;
          alive = true;
        }
      in
      st.next_id <- st.next_id + 1;
      st.conns <- c :: st.conns;
      Hashtbl.replace st.by_id c.id c;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let reap st =
  let dead, live = List.partition (fun c -> not c.alive) st.conns in
  List.iter
    (fun c ->
      Hashtbl.remove st.by_id c.id;
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    dead;
  st.conns <- live

let pump st timeout =
  let reads = st.listen_fd :: List.map (fun c -> c.fd) st.conns in
  let writes =
    List.filter_map
      (fun c -> if Buffer.length c.out > c.out_off then Some c.fd else None)
      st.conns
  in
  (match Unix.select reads writes [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, writable, _ ->
    if List.mem st.listen_fd readable then accept_new st;
    List.iter (fun c -> if List.mem c.fd readable then handle_read st c) st.conns;
    List.iter (fun c -> if List.mem c.fd writable then flush_conn c) st.conns);
  reap st

(* ---- job execution ---- *)

let fail_job st (job : job) err =
  (* a permanent failure is replied, not journaled as done: a later
     resubmission of the same digest re-attempts it from its journal *)
  broadcast st job.digest (P.Failed { digest = job.digest; error = err });
  clear_subs st job.digest;
  Hashtbl.remove st.accepted job.digest

let finish_job st (r : running) =
  let cells =
    Array.to_list
      (Array.mapi
         (fun i res ->
           match res with
           | Some result -> { P.cell = r.keys.(i); result }
           | None -> E.fail E.Internal "finish_job: missing cell %s" r.keys.(i))
         r.results)
  in
  let payload = P.Cells cells in
  Journal.append st.journal ~key:(done_key r.job.digest) (Marshal.to_string (payload : P.payload) []);
  Hashtbl.replace st.done_tbl r.job.digest payload;
  Hashtbl.remove st.accepted r.job.digest;
  broadcast st r.job.digest (P.Done { digest = r.job.digest; payload });
  clear_subs st r.job.digest;
  Journal.close r.cjournal;
  (* the per-cell journal is subsumed by the durable done record *)
  (try Sys.remove r.cpath with Sys_error _ -> ());
  st.running <- None

let finish_compile st (job : job) payload =
  Journal.append st.journal ~key:(done_key job.digest) (Marshal.to_string (payload : P.payload) []);
  Hashtbl.replace st.done_tbl job.digest payload;
  Hashtbl.remove st.accepted job.digest;
  broadcast st job.digest (P.Done { digest = job.digest; payload });
  clear_subs st job.digest

let decode_cell payload =
  match (Marshal.from_string payload 0 : Engine.result) with
  | r -> Some r
  | exception _ -> None

let start_job st (job : job) =
  match plan_of_spec job.spec with
  | Compile_plan run -> (
    match run () with
    | Ok payload -> finish_compile st job payload
    | Error e -> fail_job st job e)
  | Cells_plan { keys; run } -> (
    let cpath = job_journal_path st job.digest in
    match Journal.open_append cpath with
    | Error e -> fail_job st job (E.add_context "cell journal" e)
    | Ok cjournal ->
      let results = Array.make (Array.length keys) None in
      let finished = ref 0 in
      (* resume: cells journaled before a kill replay from disk, not from
         the simulator — bit-identical because the payload is the
         marshalled engine result itself *)
      let index = Hashtbl.create 16 in
      Array.iteri (fun i k -> Hashtbl.replace index k i) keys;
      List.iter
        (fun (k, payload) ->
          match Hashtbl.find_opt index k with
          | Some i when results.(i) = None -> (
            match decode_cell payload with
            | Some r ->
              results.(i) <- Some r;
              incr finished
            | None -> ())
          | _ -> ())
        (Journal.entries cjournal);
      st.running <-
        Some { job; keys; run_cell = run; results; finished = !finished; cjournal; cpath })
  | exception E.Error e -> fail_job st job e
  | exception exn -> fail_job st job (E.of_exn exn)

let step_cell st (r : running) =
  let n = Array.length r.keys in
  let rec first_missing i = if i >= n then None else if r.results.(i) = None then Some i else first_missing (i + 1) in
  match first_missing 0 with
  | None -> finish_job st r
  | Some i -> (
    match r.run_cell i with
    | Ok res ->
      r.results.(i) <- Some res;
      r.finished <- r.finished + 1;
      Journal.append r.cjournal ~key:r.keys.(i) (Marshal.to_string (res : Engine.result) []);
      broadcast st r.job.digest
        (P.Progress { digest = r.job.digest; cell = r.keys.(i); finished = r.finished; total = n });
      if r.finished = n then finish_job st r
    | Error e ->
      Journal.close r.cjournal;
      st.running <- None;
      fail_job st r.job (E.add_context ("cell " ^ r.keys.(i)) e))

(* ---- recovery ---- *)

let recover st =
  let accepts = ref [] in
  List.iter
    (fun (key, payload) ->
      match record_kind key with
      | "accept", digest -> (
        match (Marshal.from_string payload 0 : string * P.job_spec) with
        | tenant, spec ->
          if not (List.mem_assoc digest !accepts) then
            accepts := (digest, { digest; tenant; spec }) :: !accepts
        | exception _ -> ())
      | "done", digest -> (
        match (Marshal.from_string payload 0 : P.payload) with
        | payload -> Hashtbl.replace st.done_tbl digest payload
        | exception _ -> ())
      | _ -> ())
    (Journal.entries st.journal);
  (* re-enqueue unfinished jobs in admission order, bypassing capacity:
     they were admitted once and must survive the restart *)
  List.iter
    (fun (digest, job) ->
      if not (Hashtbl.mem st.done_tbl digest) then begin
        Hashtbl.replace st.accepted digest job;
        Scheduler.force st.sched ~tenant:job.tenant job
      end)
    (List.rev !accepts)

(* ---- lifecycle ---- *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let shutdown st =
  (match st.running with
  | Some r -> Journal.close r.cjournal (* cells so far are checkpointed *)
  | None -> ());
  List.iter (fun c -> flush_conn c) st.conns;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) st.conns;
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  Journal.close st.journal;
  try Sys.remove st.settings.socket with Sys_error _ -> ()

(** Run the daemon until a drain is requested ({!request_drain}, usually
    from a SIGTERM/SIGINT handler). Returns [Ok ()] after a graceful
    drain: admission stopped, in-flight cell finished and checkpointed,
    connections closed, socket unlinked. *)
let serve ?(on_ready = fun () -> ()) settings =
  let attempt () =
    mkdir_p settings.state_dir;
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let journal = E.get_exn (Journal.open_append (Filename.concat settings.state_dir "jobs.jnl")) in
    let sched = Scheduler.create ~strict:settings.strict ~default:settings.default_tenant () in
    List.iter (fun (name, cfg) -> Scheduler.add_tenant sched ~name cfg) settings.tenants;
    if Sys.file_exists settings.socket then Sys.remove settings.socket;
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind listen_fd (Unix.ADDR_UNIX settings.socket);
       Unix.listen listen_fd 64;
       Unix.set_nonblock listen_fd
     with exn ->
       (try Unix.close listen_fd with Unix.Unix_error _ -> ());
       raise exn);
    let st =
      {
        settings;
        listen_fd;
        journal;
        sched;
        conns = [];
        by_id = Hashtbl.create 16;
        accepted = Hashtbl.create 16;
        done_tbl = Hashtbl.create 16;
        subs = Hashtbl.create 16;
        running = None;
        next_id = 0;
      }
    in
    recover st;
    on_ready ();
    let rec loop () =
      if draining () then ()
      else begin
        (match st.running with
        | Some r ->
          step_cell st r;
          pump st 0.0
        | None -> (
          match Scheduler.next st.sched with
          | Some (_tenant, job) -> start_job st job
          | None -> pump st 0.25));
        loop ()
      end
    in
    Fun.protect ~finally:(fun () -> shutdown st) loop
  in
  E.guard ~default:E.Io ~context:"serve" attempt
