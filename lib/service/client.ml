(** Client side of the sweep service: blocking socket, bounded
    exponential reconnect backoff, and idempotent resubmission by job
    digest — a killed-and-restarted daemon looks like one transient [Io]
    hiccup, after which the same digest resumes the same job from its
    journal. *)

module E = Hscd_util.Hscd_error
module P = Protocol

type t = {
  fd : Unix.file_descr;
  dec : P.decoder;
  tenant : string;
}

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ---- low-level framed I/O (blocking) ---- *)

let send_frame t s =
  match
    let n = String.length s in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write_substring t.fd s !off (n - !off)
    done
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    E.error E.Io "service write: %s" (Unix.error_message e)

let recv_response t : (P.response, E.t) result =
  let buf = Bytes.create 65536 in
  let rec go () =
    match P.next_frame t.dec with
    | Ok (Some payload) -> P.parse_response payload
    | Error _ as e -> e
    | Ok None -> (
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | 0 -> E.error E.Io "service connection closed"
      | n ->
        P.feed t.dec buf 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) ->
        E.error E.Io "service read: %s" (Unix.error_message e))
  in
  go ()

let request t req =
  match send_frame t (P.encode_request req) with
  | Error _ as e -> e
  | Ok () -> recv_response t

(* ---- connection with bounded exponential backoff ---- *)

let connect_once ~socket ~tenant =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX socket);
    let t = { fd; dec = P.decoder (); tenant } in
    match request t (P.Hello { version = P.version; tenant }) with
    | Ok (P.Hello_ok _) -> Ok t
    | Ok (P.Hello_reject { server_version }) ->
      close t;
      E.error E.Rejected "server speaks protocol v%d, client v%d" server_version P.version
    | Ok _ ->
      close t;
      E.error E.Corrupt "unexpected reply to Hello"
    | Error e ->
      close t;
      Error e
  with
  | r -> r
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    E.error E.Io "connect %s: %s" socket (Unix.error_message e)

(** [connect ~socket ~tenant ()] dials the daemon, retrying transient
    failures (daemon not up yet, daemon restarting) up to [attempts]
    times with exponential backoff starting at [backoff] seconds and
    capped at 2 s. [Rejected] (version mismatch) is immediate — retrying
    cannot help. *)
let connect ?(attempts = 8) ?(backoff = 0.05) ~socket ~tenant () =
  let rec go i =
    match connect_once ~socket ~tenant with
    | Ok _ as ok -> ok
    | Error e when i + 1 < attempts && E.transient e ->
      Unix.sleepf (Float.min 2.0 (backoff *. (2.0 ** float_of_int i)));
      go (i + 1)
    | Error _ as err -> err
  in
  go 0

(* ---- submit / await ---- *)

type ticket =
  | Queued of int  (** accepted; jobs ahead in the tenant queue *)
  | Finished of P.payload  (** the daemon already had the result *)

(** Submit a job spec; the digest is computed here and is the job's
    identity for dedup, resume and resubmission. [Busy_reply] and
    [Rejected_reply] come back as typed errors (kinds [Busy] /
    [Rejected]) so exit codes and retry policy fall out mechanically. *)
let submit t (spec : P.job_spec) : (string * ticket, E.t) result =
  let digest = P.job_digest spec in
  match request t (P.Submit { digest; spec }) with
  | Ok (P.Accepted { position; _ }) -> Ok (digest, Queued position)
  | Ok (P.Done { payload; _ }) -> Ok (digest, Finished payload)
  | Ok (P.Busy_reply { reason; _ }) -> E.error E.Busy "%s" reason
  | Ok (P.Rejected_reply { reason; _ }) -> E.error E.Rejected "%s" reason
  | Ok (P.Failed { error; _ }) -> Error error
  | Ok _ -> E.error E.Corrupt "unexpected reply to Submit"
  | Error _ as e -> e

(** Block until the job completes, streaming [Progress] frames to
    [on_progress]. An [Io] error here usually means the daemon died —
    callers that want crash transparency use {!run_job}. *)
let await ?(on_progress = fun ~cell:_ ~finished:_ ~total:_ -> ()) t ~digest =
  let rec go () =
    match recv_response t with
    | Ok (P.Progress { digest = d; cell; finished; total }) when d = digest ->
      on_progress ~cell ~finished ~total;
      go ()
    | Ok (P.Done { digest = d; payload }) when d = digest -> Ok payload
    | Ok (P.Failed { digest = d; error }) when d = digest -> Error error
    | Ok _ -> go () (* a frame about some other digest: not ours *)
    | Error _ as e -> e
  in
  go ()

(** Submit and wait, reconnecting and idempotently resubmitting by digest
    across daemon restarts ([attempts] reconnect cycles, exponential
    backoff as in {!connect}) and retrying [Busy] backpressure with the
    same bounded backoff. [Rejected] is returned immediately. *)
let run_job ?(attempts = 8) ?(backoff = 0.05) ?on_progress ~socket ~tenant spec =
  let rec cycle i =
    let retry e =
      if i + 1 < attempts then begin
        Unix.sleepf (Float.min 2.0 (backoff *. (2.0 ** float_of_int i)));
        cycle (i + 1)
      end
      else Error e
    in
    match connect ~attempts ~backoff ~socket ~tenant () with
    | Error e when E.transient e -> retry e
    | Error _ as err -> err
    | Ok t ->
      let r =
        match submit t spec with
        | Ok (_, Finished payload) -> Ok payload
        | Ok (digest, Queued _) -> await ?on_progress t ~digest
        | Error _ as e -> e
      in
      close t;
      (match r with
      | Error e when E.transient e -> retry e (* daemon died or Busy: back off, resubmit *)
      | r -> r)
  in
  cycle 0
