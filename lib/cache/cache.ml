(** Set-associative cache with per-word state.

    The HSCD schemes need word-granular metadata (timetags, per-word valid
    bits) while the directory scheme needs line-granular protocol state;
    this structure supports both: each line carries a scheme-defined
    [state] integer plus per-word valid bits, values (so the simulator can
    check every load against the golden memory image), word metadata
    (timetags) and per-word touch bits (for false-sharing classification). *)

type line = {
  mutable tag : int;  (** memory line number held, -1 when free *)
  mutable state : int;  (** scheme-defined; 0 = invalid *)
  mutable lru : int;
  mutable fetch_seq : int array;  (** per word: global write-seq at fetch time *)
  word_valid : bool array;
  values : int array;
  meta : int array;  (** scheme-defined per-word metadata (e.g. timetag epoch) *)
  touched : bool array;  (** word used by the local processor since fetch *)
  mutable reset_invalidated : bool;  (** invalidated by a two-phase reset *)
  mutable inv_false_sharing : bool;  (** last invalidation was a false-sharing one *)
  mutable inv_pending : bool;  (** line was invalidated by a remote write *)
}

(* Sets materialize on first allocation into them: [ [||] ] marks an
   untouched set. A P=1024 machine has 4M cache lines of which a typical
   trace touches a small fraction; building them all eagerly used to
   dominate whole-simulation time and minor-heap churn (and multiplied
   per shard slice). [used] lists the materialized set indices densely so
   whole-cache walks are O(resident), not O(capacity). *)
type t = {
  sets : line array array;
  assoc : int;
  line_words : int;
  line_shift : int;
  set_mask : int;
  mutable used : int array;  (** dense list of materialized set indices *)
  mutable n_used : int;
  mutable tick : int;
  mutable evictions : int;
}

let invalid_state = 0

let make_line line_words =
  {
    tag = -1;
    state = invalid_state;
    lru = 0;
    fetch_seq = Array.make line_words 0;
    word_valid = Array.make line_words false;
    values = Array.make line_words 0;
    meta = Array.make line_words 0;
    touched = Array.make line_words false;
    reset_invalidated = false;
    inv_false_sharing = false;
    inv_pending = false;
  }

let create (c : Hscd_arch.Config.t) =
  let sets = Hscd_arch.Config.sets c in
  {
    sets = Array.make sets [||];
    assoc = c.assoc;
    line_words = c.line_words;
    line_shift = Hscd_util.Ints.ilog2 c.line_words;
    set_mask = sets - 1;
    used = [||];
    n_used = 0;
    tick = 0;
    evictions = 0;
  }

let assoc t = t.assoc

(* Build the frames of set [si] on its first allocation and record it in
   the dense used list (amortized-doubling, so tiny caches stay tiny). *)
let materialize t si =
  let set = Array.init t.assoc (fun _ -> make_line t.line_words) in
  t.sets.(si) <- set;
  if t.n_used = Array.length t.used then begin
    let grown = Array.make (max 8 (2 * t.n_used)) 0 in
    Array.blit t.used 0 grown 0 t.n_used;
    t.used <- grown
  end;
  t.used.(t.n_used) <- si;
  t.n_used <- t.n_used + 1;
  set

let line_of_addr t addr = addr lsr t.line_shift
let offset_of_addr t addr = addr land (t.line_words - 1)
let set_of_line t line = line land t.set_mask

let touch_lru t line =
  t.tick <- t.tick + 1;
  line.lru <- t.tick

(* Top-level so the per-access scan allocates no closure: this runs on
   every cached reference of the replay hot path, and a local [let rec]
   capturing [set]/[mem_line] would cost a closure per call. *)
let rec scan_set set mem_line i =
  if i >= Array.length set then None
  else if set.(i).tag = mem_line && set.(i).state <> invalid_state then Some set.(i)
  else scan_set set mem_line (i + 1)

(** Find the cache line currently holding [addr], if any (does not bump
    LRU; callers decide). *)
let probe t addr =
  let mem_line = line_of_addr t addr in
  scan_set t.sets.(set_of_line t mem_line) mem_line 0

let find t addr =
  let mem_line = line_of_addr t addr in
  let res = scan_set t.sets.(set_of_line t mem_line) mem_line 0 in
  (match res with Some l -> touch_lru t l | None -> ());
  res

let clear_line l =
  l.tag <- -1;
  l.state <- invalid_state;
  Array.fill l.word_valid 0 (Array.length l.word_valid) false;
  Array.fill l.touched 0 (Array.length l.touched) false;
  l.reset_invalidated <- false;
  l.inv_false_sharing <- false;
  l.inv_pending <- false

(** Allocate a frame for [addr]'s line, calling [on_evict] on a valid
    victim first (for write-back). The returned line has [tag] set, state
    still invalid and all words invalid; the caller fills it. *)
let allocate t ~on_evict addr =
  let mem_line = line_of_addr t addr in
  let si = set_of_line t mem_line in
  let set = t.sets.(si) in
  let set = if Array.length set = 0 then materialize t si else set in
  (* reuse the matching frame if present (e.g. refetch of an invalidated
     line), else a free frame, else the LRU victim — one allocation-free
     index scan, a matching frame preferred over a free one *)
  let frame =
    let n = Array.length set in
    let matching = ref (-1) and free = ref (-1) in
    for i = n - 1 downto 0 do
      if set.(i).tag = mem_line then matching := i
      else if set.(i).state = invalid_state then free := i
    done;
    if !matching >= 0 then set.(!matching)
    else if !free >= 0 then set.(!free)
    else begin
      let victim = ref set.(0) in
      for i = 1 to n - 1 do
        if set.(i).lru < (!victim).lru then victim := set.(i)
      done;
      t.evictions <- t.evictions + 1;
      on_evict !victim;
      !victim
    end
  in
  clear_line frame;
  frame.tag <- mem_line;
  touch_lru t frame;
  frame

(** Iterate over every resident line: O(materialized sets), in
    materialization order (no caller depends on set order). *)
let iter_lines t f =
  for i = 0 to t.n_used - 1 do
    let set = t.sets.(t.used.(i)) in
    for j = 0 to Array.length set - 1 do
      let l = set.(j) in
      if l.state <> invalid_state then f l
    done
  done

(** Number of currently valid lines (for occupancy stats/tests). *)
let resident_lines t =
  let n = ref 0 in
  iter_lines t (fun _ -> incr n);
  !n

(** Frames in set/frame order, including invalid ones — snapshot encoders
    walk the full geometry so equal states serialize identically. A set
    never allocated into is the empty array; encoders treat it as [assoc]
    invalid frames so materialization state never leaks into snapshots. *)
let frame_sets t = t.sets
