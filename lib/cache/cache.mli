(** Set-associative cache with per-word state: word-granular valid bits,
    values (for end-to-end correctness checking), scheme-defined per-word
    metadata (timetags, versions) and line-level protocol state, plus the
    bookkeeping fields the miss classifiers use. *)

type line = {
  mutable tag : int;  (** memory line number held, -1 when free *)
  mutable state : int;  (** scheme-defined; 0 = invalid *)
  mutable lru : int;
  mutable fetch_seq : int array;  (** per word: global write-seq at fetch time *)
  word_valid : bool array;
  values : int array;
  meta : int array;  (** scheme-defined per-word metadata *)
  touched : bool array;  (** word used by the local processor since fetch *)
  mutable reset_invalidated : bool;  (** invalidated by a two-phase reset *)
  mutable inv_false_sharing : bool;  (** last invalidation was false sharing *)
  mutable inv_pending : bool;  (** line was invalidated by a remote write *)
}

type t

val invalid_state : int

(** Sets materialize lazily on first allocation: creation is O(sets)
    pointer words, not O(lines × line_words) — the difference between
    milliseconds and seconds when building a P=1024 machine (or one
    machine per shard slice). *)
val create : Hscd_arch.Config.t -> t

(** Frames per set (1 = direct-mapped); snapshot encoders need it to
    render unmaterialized sets. *)
val assoc : t -> int

val line_of_addr : t -> int -> int
val offset_of_addr : t -> int -> int
val set_of_line : t -> int -> int

(** Resident line holding the address, without an LRU update. *)
val probe : t -> int -> line option

(** Like {!probe} but bumps LRU on a hit. *)
val find : t -> int -> line option

(** Allocate a frame for the address's line, calling [on_evict] on a valid
    victim first. The returned line has [tag] set, everything else
    cleared; the caller fills it. *)
val allocate : t -> on_evict:(line -> unit) -> int -> line

(** Iterate over every resident line: O(materialized sets), in
    materialization order. All callers are order-insensitive (flash
    invalidations, occupancy counts). *)
val iter_lines : t -> (line -> unit) -> unit

val resident_lines : t -> int

(** Frames in set/frame order, including invalid ones (for abstract-state
    snapshot encoders that must walk the full cache geometry). A set
    never allocated into is the empty array, standing for [assoc]
    invalid frames. *)
val frame_sets : t -> line array array
