(** Fault injection wrappers grafting realistic coherence bugs onto a
    correct scheme, for validating the oracle and shrinker. *)

type t =
  | Stale_time_read of int  (** widen every Time-Read window by k epochs *)
  | Ignore_time_read  (** treat Time-Read as Normal (no age check) *)
  | Skip_epoch_boundary  (** lose all epoch-boundary work (stuck counter) *)
  | Corrupt_read_value of int  (** off-by-one value on every n-th read *)

val name : t -> string

val wrap :
  t -> processors:int -> Hscd_coherence.Scheme.packed -> Hscd_coherence.Scheme.packed
