(** Fault injection wrappers grafting realistic coherence bugs onto a
    correct scheme, for validating the oracle and shrinker. *)

type t =
  | Stale_time_read of int  (** widen every Time-Read window by k epochs *)
  | Ignore_time_read  (** treat Time-Read as Normal (no age check) *)
  | Skip_epoch_boundary  (** lose all epoch-boundary work (stuck counter) *)
  | Corrupt_read_value of int  (** off-by-one value on every n-th read *)

val name : t -> string

val wrap :
  t -> processors:int -> Hscd_coherence.Scheme.packed -> Hscd_coherence.Scheme.packed

(** Chaos against the runner itself — worker crashes, hangs and artifact
    corruption — for asserting that the supervised sweep converges
    bit-identically to a fault-free run. *)
module Chaos : sig
  (** Raised by {!strike} for a cell scheduled to crash. *)
  exception Injected of string

  (** A deterministic chaos schedule, keyed by cell name. Thread-safe:
      cells run on worker domains. *)
  type plan

  (** [crash_first]: cell → raise {!Injected} on its first [k] attempts
      (the [k+1]-th succeeds). [hang_first]: cell → busy-wait up to that
      many seconds on its first attempt, or until {!release}. *)
  val plan :
    ?crash_first:(string * int) list -> ?hang_first:(string * float) list -> unit -> plan

  (** Call at the start of every attempt of [cell]; counts the attempt
      and applies the schedule. *)
  val strike : plan -> string -> unit

  (** Attempts recorded so far for [cell]. *)
  val attempts : plan -> string -> int

  (** End all in-progress and future hangs (domains cannot be killed, so
      abandoned hung workers exit through this). *)
  val release : plan -> unit

  (** Flip one bit of the byte at [byte] (mod file length). *)
  val corrupt_file : string -> byte:int -> unit

  (** Drop the last [drop] bytes (a kill mid-write). *)
  val truncate_file : string -> drop:int -> unit
end
