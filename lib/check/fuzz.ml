(** The fuzzing driver: deterministic iteration over random parameter
    points and traces, the differential oracle on each, and shrinking of
    any failure to a small replayable repro.

    Per-iteration determinism: a master PRNG seeded with [seed] draws one
    sub-seed per iteration, so iteration [i] of [fuzz ~seed] generates the
    same trace regardless of [count] — a failure report's [index] plus the
    seed is a complete repro recipe.

    Shrinking guards against delta-debugging slippage by requiring the
    reduced trace to fail with (at least one of) the same failing schemes
    as the original, or to reproduce the original's cross-scheme memory
    disagreement. *)

module Config = Hscd_arch.Config
module Prng = Hscd_util.Prng
module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Trace_io = Hscd_sim.Trace_io

type failure = {
  index : int;
  params : Gen.params;
  trace : Trace.t;  (** the original failing trace *)
  shrunk : Trace.t option;
  outcome : Oracle.t;  (** oracle verdict on the original trace *)
}

type report = {
  iterations : int;  (** iterations actually executed *)
  total_events : int;  (** events pushed through the differential oracle *)
  failures : failure list;
}

let fuzz ?(schemes = Run.all_schemes) ?fault ?(shrink = true) ?(max_failures = 5) ?jobs
    ~seed ~count () =
  let master = Prng.of_int seed in
  let failures = ref [] in
  let total = ref 0 in
  let i = ref 0 in
  while !i < count && List.length !failures < max_failures do
    let prng = Prng.of_int (Prng.int master max_int) in
    let params = Gen.random_params prng in
    let cfg = Gen.cfg_of params in
    let trace = Gen.generate prng params in
    total := !total + Shrink.event_count trace;
    let outcome = Oracle.run ~schemes ?fault ?jobs cfg trace in
    if not (Oracle.ok outcome) then begin
      let orig_fail = Oracle.failing_schemes outcome in
      let orig_mem_disagree = not outcome.Oracle.memories_agree in
      let failing t =
        (* reject candidates that delta-debugging made ill-formed or
           unsoundly marked — their "failure" would be a generator artifact,
           not the scheme bug we are minimizing *)
        Golden.lint t = []
        && Golden.mark_sound cfg t = []
        &&
        let o = Oracle.run ~schemes ?fault ?jobs cfg t in
        (not (Oracle.ok o))
        && (List.exists (fun k -> List.mem k orig_fail) (Oracle.failing_schemes o)
           || (orig_mem_disagree && not o.Oracle.memories_agree)
           || (orig_fail = [] && Oracle.failing_schemes o = []))
      in
      let shrunk = if shrink then Some (Shrink.minimize ~failing trace) else None in
      failures := { index = !i; params; trace; shrunk; outcome } :: !failures
    end;
    incr i
  done;
  { iterations = !i; total_events = !total; failures = List.rev !failures }

(* --- seed corpus --- *)

(** The fixed configuration every corpus trace is generated under and
    replayed with: 4 processors, 4-word lines, 1 KB caches (eviction
    pressure), 4-bit timetags (two-phase reset every 8 epochs), block
    scheduling. *)
let corpus_cfg =
  Config.validate
    {
      Config.default with
      processors = 4;
      line_words = 4;
      cache_bytes = 1024;
      timetag_bits = 4;
      scheduling = Config.Block;
    }

let corpus_base : Gen.params =
  {
    procs = 4;
    epochs = 10;
    max_tasks = 6;
    data_lines = 8;
    line_words = 4;
    timetag_bits = 4;
    cache_bytes = 1024;
    scheduling = Config.Block;
    migration_rate = 0.0;
    serial_prob = 0.2;
    sharing = 0.5;
    write_prob = 0.35;
    lock_prob = 0.0;
    compute_prob = 0.15;
    max_events = 16;
    adversary = Gen.Plain;
  }

(** Named corpus presets; every preset's [cfg_of] equals {!corpus_cfg}. *)
let corpus_presets : (string * Gen.params) list =
  [
    ("basic", corpus_base);
    ("wrap", { corpus_base with epochs = 20; write_prob = 0.15; adversary = Gen.Timetag_wrap });
    ("locks", { corpus_base with lock_prob = 0.3; epochs = 6 });
    ("false-sharing", { corpus_base with adversary = Gen.False_sharing_layout; sharing = 0.3 });
    ("serial-mix", { corpus_base with serial_prob = 0.6; data_lines = 4 });
  ]

let corpus_seed = 0xC0FFEE

(** Write one deterministic trace per preset into [dir] as
    [<name>.trace]; returns the file paths. *)
let write_corpus ~dir =
  List.map
    (fun (name, params) ->
      let prng = Prng.of_int (corpus_seed + Hashtbl.hash name) in
      let trace = Gen.generate prng params in
      let path = Filename.concat dir (name ^ ".trace") in
      Trace_io.save path trace;
      path)
    corpus_presets

(** Replay trace files under {!corpus_cfg}; returns per-file verdicts. *)
let replay_corpus ?(schemes = Run.all_schemes) ?jobs files =
  List.map
    (fun path ->
      let trace = Trace_io.load path in
      (path, Oracle.run ~schemes ?jobs corpus_cfg trace))
    files
