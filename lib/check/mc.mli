(** Bounded exhaustive model checking of the coherence schemes.

    Drives each {!Hscd_coherence.Scheme.S} implementation directly as a
    guarded-action transition system over a small scope (2–3 processors,
    1–2 words, full timetag-wrap window) and explores every reachable
    state under a depth bound, hash-dedup'd on {!Scheme.S.snapshot} plus
    the checker's guard state. Actions are guarded by the same
    compiler-soundness rules as the fuzz generator, so every explored
    path is a race-free trace with sound marks on which every scheme
    must return golden values. Violations ({!Monitor} invariants,
    scheme/BASE disagreement, memory-image drift at epoch boundaries)
    come back as an action sequence that {!replay} converts into a
    packed trace and runs through the timing engine. *)

(** {1 Scope} *)

type scope = {
  procs : int;  (** processors = tasks per parallel epoch *)
  words : int;  (** shared data words (addresses [0 .. words-1]) *)
  line_words : int;  (** >1 puts several words in one line (companion fills) *)
  timetag_bits : int;  (** 2 gives the tightest wrap: reset every 2 epochs *)
  depth : int;  (** bound on actions per explored path *)
  migration : bool;  (** dynamic scheduling with mid-task migration rules *)
  max_states : int;  (** safety valve; exceeding it truncates the search *)
}

(** 2 procs × 1 word, 2-bit timetags, depth 10 — covers a full
    timetag-wrap cycle with accesses to spare. *)
val default_scope : scope

(** The machine configuration a scope explores under (also used by
    {!replay}). *)
val cfg_of : scope -> Hscd_arch.Config.t

(** {1 Actions} *)

type action =
  | Read of { task : int; word : int; mark : Hscd_arch.Event.rmark }
  | Write of { task : int; word : int }
  | Migrate of { task : int }  (** migration mode only *)
  | Advance  (** epoch boundary *)

val action_to_string : action -> string
val actions_to_string : action list -> string

(** Deterministic value of the [n]-th (1-based) write to [word]. *)
val write_value : word:int -> n:int -> int

(** {1 Search} *)

type stats = {
  states : int;  (** distinct reachable states (initial included) *)
  transitions : int;  (** explored edges *)
  depth_reached : int;  (** levels fully expanded *)
  truncated : bool;  (** hit [max_states] before the depth bound *)
  elapsed : float;  (** wall seconds *)
}

type counterexample = {
  cx_kind : Hscd_sim.Run.scheme_kind;
  actions : action list;
  violation : string;
}

type report = {
  kind : Hscd_sim.Run.scheme_kind;
  fault : Fault.t option;
  scope : scope;
  stats : stats;
  counterexample : counterexample option;
}

(** Exhaustive bounded BFS of one scheme (frontier expansion fans out
    over the supervised pool; results are bit-deterministic for any
    [jobs]). [fault] grafts a {!Fault} onto the subject scheme.
    [progress] is called after each level with (depth, states). Stops at
    the first (shortest) counterexample. *)
val explore :
  ?fault:Fault.t ->
  ?jobs:int ->
  ?progress:(int -> int -> unit) ->
  scope ->
  Hscd_sim.Run.scheme_kind ->
  report

(** Exhaustive, violation-free, not truncated. *)
val ok : report -> bool

(** {!explore} for every scheme in [schemes] (default: all seven). *)
val check_all :
  ?fault:Fault.t ->
  ?jobs:int ->
  ?schemes:Hscd_sim.Run.scheme_kind list ->
  scope ->
  report list

(** {1 Counterexample replay} *)

(** Action sequence → boxed trace (epochs split at [Advance], one task
    per processor, golden values stamped by {!Golden.resolve}). The
    trace is race-free with sound marks, so it is also a valid corpus
    regression. *)
val trace_of_actions : scope -> action list -> Hscd_sim.Trace.t

(** Replay a counterexample through the timing engine under the scope's
    configuration (same fault injected, if any), checked by the full
    differential oracle. *)
val replay :
  ?fault:Fault.t ->
  ?jobs:int ->
  scope ->
  counterexample ->
  Hscd_sim.Trace.t * Oracle.t

(** {1 Reporting} *)

val describe_scope : scope -> string

(** One line: scheme, state/transition counts, time, verdict. *)
val describe : report -> string
