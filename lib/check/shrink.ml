(** Greedy delta-debugging of failing traces.

    Repeatedly tries structure-preserving reductions — drop an epoch, empty
    a task, drop one event unit (a critical section Lock..Unlock block is
    one unit, so tickets stay balanced), strip Compute padding, then
    garbage-collect empty tasks/epochs — re-resolving golden values after
    every candidate mutation so the shrunk trace is still a well-formed
    input, and keeping any mutation under which the caller's [failing]
    predicate still holds. Tasks are emptied rather than removed while
    shrinking events so the epoch's task count (and hence the static
    task→processor map that read marks may rely on) is preserved; removal
    is attempted only as a final, predicate-checked cleanup. *)

module Event = Hscd_arch.Event
module Trace = Hscd_sim.Trace

let event_count (t : Trace.t) =
  Array.fold_left
    (fun acc (e : Trace.epoch) ->
      Array.fold_left (fun acc (task : Trace.task) -> acc + Array.length task.events) acc e.tasks)
    0 t.epochs

(* One event, or a whole Lock..Unlock section kept atomic. *)
let units_of_events (evs : Event.t array) : Event.t list list =
  let units = ref [] and cur = ref [] and depth = ref 0 in
  Array.iter
    (fun ev ->
      match ev with
      | Event.Lock ->
        incr depth;
        cur := [ ev ]
      | Event.Unlock ->
        decr depth;
        cur := ev :: !cur;
        if !depth <= 0 then begin
          units := List.rev !cur :: !units;
          cur := []
        end
      | _ ->
        if !depth > 0 then cur := ev :: !cur else units := [ ev ] :: !units)
    evs;
  if !cur <> [] then units := List.rev !cur :: !units;
  List.rev !units

let drop_index arr i =
  Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list arr))

let with_task_events (t : Trace.t) ~epoch ~task events =
  let epochs =
    Array.mapi
      (fun ei (e : Trace.epoch) ->
        if ei <> epoch then e
        else
          { e with
            tasks =
              Array.mapi
                (fun ti (tk : Trace.task) -> if ti = task then { tk with events } else tk)
                e.tasks })
      t.epochs
  in
  { t with epochs }

let minimize ?(max_rounds = 12) ~failing (trace : Trace.t) : Trace.t =
  let cur = ref (Golden.resolve trace) in
  let try_candidate cand =
    let cand = Golden.resolve cand in
    if failing cand then begin
      cur := cand;
      true
    end
    else false
  in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < max_rounds do
    progress := false;
    incr rounds;
    (* 1. whole epochs, from the end (later epochs depend on earlier writes) *)
    let ei = ref (Array.length !cur.Trace.epochs - 1) in
    while !ei >= 0 do
      if Array.length !cur.Trace.epochs > 1 then
        if try_candidate { !cur with Trace.epochs = drop_index !cur.Trace.epochs !ei } then
          progress := true;
      decr ei
    done;
    (* 2. whole tasks (emptied in place to keep the task→proc map stable) *)
    Array.iteri
      (fun ei (e : Trace.epoch) ->
        Array.iteri
          (fun ti (tk : Trace.task) ->
            if Array.length tk.events > 0 then
              if try_candidate (with_task_events !cur ~epoch:ei ~task:ti [||]) then
                progress := true)
          e.tasks)
      !cur.Trace.epochs;
    (* 3. single event units within each remaining task *)
    Array.iteri
      (fun ei (e : Trace.epoch) ->
        Array.iteri
          (fun ti (tk : Trace.task) ->
            let units = ref (units_of_events tk.events) in
            let ui = ref 0 in
            while !ui < List.length !units do
              let cand_units = List.filteri (fun j _ -> j <> !ui) !units in
              let events = Array.of_list (List.concat cand_units) in
              if try_candidate (with_task_events !cur ~epoch:ei ~task:ti events) then begin
                units := cand_units;
                progress := true
              end
              else incr ui
            done)
          e.tasks)
      !cur.Trace.epochs;
    (* 4. strip all Compute padding in one shot *)
    let no_compute =
      {
        !cur with
        Trace.epochs =
          Array.map
            (fun (e : Trace.epoch) ->
              { e with
                tasks =
                  Array.map
                    (fun (tk : Trace.task) ->
                      { tk with
                        events =
                          Array.of_list
                            (List.filter
                               (function Event.Compute _ -> false | _ -> true)
                               (Array.to_list tk.events)) })
                    e.tasks })
            !cur.Trace.epochs;
      }
    in
    if event_count no_compute < event_count !cur && try_candidate no_compute then
      progress := true;
    (* 5. cleanup: drop empty tasks and empty epochs (changes the task→proc
       map, so it must survive the predicate like any other mutation) *)
    let cleaned =
      {
        !cur with
        Trace.epochs =
          Array.of_list
            (List.filter_map
               (fun (e : Trace.epoch) ->
                 let tasks =
                   Array.of_list
                     (List.filter
                        (fun (tk : Trace.task) -> Array.length tk.events > 0)
                        (Array.to_list e.tasks))
                 in
                 if Array.length tasks = 0 then None else Some { e with tasks })
               (Array.to_list !cur.Trace.epochs));
      }
    in
    if cleaned.Trace.epochs <> !cur.Trace.epochs && try_candidate cleaned then progress := true
  done;
  !cur
