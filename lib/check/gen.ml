(** Randomized well-formed epoch/trace generation for differential
    fuzzing.

    The generator plays both the programmer's and the compiler's role: it
    builds race-free epoch programs (per parallel epoch, every address
    written outside a critical section is private to one task; critical
    sections touch a dedicated lock region with bypass marks only) and it
    stamps each read with a mark that is *sound* for every scheme under
    the target machine configuration:

    - [Normal_read]/[Unmarked] only when the reading processor's cached
      copy is provably current — it requires a static schedule (so the
      task→processor map is known) and that no foreign write happened
      since the processor last obtained a current copy;
    - [Time_read d] with [d <= current_epoch - last_write_epoch], the
      compiler's stale-reference window, which is sound because any TPI
      copy timetagged at or after the last write holds the current value
      in a race-free trace (companion line fills are tagged one epoch
      back, the paper's "R counter − 1" rule); under mid-task migration
      the window shrinks by one epoch, because the writing task may have
      filled the word on its pre-migration processor first, stranding a
      stale copy tagged with the write epoch itself;
    - [Bypass_read] anywhere (always fetches memory, which write-through
      keeps current).

    Adversarial modes target the corner cases the paper calls out:
    timetag recycling near the 2^(bits-1)-epoch two-phase reset, task
    migration under dynamic self-scheduling (which forbids owner-aligned
    Normal marks), and false-sharing layouts that split one cache line's
    words across different writer tasks. *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event
module Prng = Hscd_util.Prng
module Trace = Hscd_sim.Trace
module Shape = Hscd_lang.Shape
module Schedule = Hscd_sim.Schedule

type adversary = Plain | Timetag_wrap | Migration | False_sharing_layout

let adversary_name = function
  | Plain -> "plain"
  | Timetag_wrap -> "timetag-wrap"
  | Migration -> "migration"
  | False_sharing_layout -> "false-sharing"

type params = {
  procs : int;
  epochs : int;
  max_tasks : int;  (** per parallel epoch *)
  data_lines : int;  (** shared-data size in cache lines *)
  line_words : int;
  timetag_bits : int;
  cache_bytes : int;
  scheduling : Config.scheduling;
  migration_rate : float;
  serial_prob : float;
  sharing : float;  (** fraction of reads aimed at data not written this epoch *)
  write_prob : float;
  lock_prob : float;
  compute_prob : float;
  max_events : int;  (** per task *)
  adversary : adversary;
}

let describe p =
  Printf.sprintf
    "%s: p=%d epochs=%d tasks<=%d lines=%dx%dw tag=%db cache=%dB %s mig=%.2f lock=%.2f ev<=%d"
    (adversary_name p.adversary) p.procs p.epochs p.max_tasks p.data_lines p.line_words
    p.timetag_bits p.cache_bytes
    (Config.scheduling_name p.scheduling)
    p.migration_rate p.lock_prob p.max_events

let cfg_of p =
  Config.validate
    {
      Config.default with
      processors = p.procs;
      line_words = p.line_words;
      timetag_bits = p.timetag_bits;
      cache_bytes = p.cache_bytes;
      scheduling = p.scheduling;
      migration_rate = p.migration_rate;
    }

let random_params prng =
  let adversary =
    Prng.choose prng [| Plain; Plain; Plain; Timetag_wrap; Migration; False_sharing_layout |]
  in
  let procs = Prng.choose prng [| 2; 4; 8 |] in
  let line_words = Prng.choose prng [| 1; 2; 4; 8 |] in
  let scheduling =
    match adversary with
    | Migration -> Config.Dynamic
    | _ -> Prng.choose prng [| Config.Block; Config.Block; Config.Cyclic; Config.Dynamic |]
  in
  let migration_rate =
    if scheduling = Config.Dynamic && (adversary = Migration || Prng.bool prng) then 0.3 else 0.0
  in
  let timetag_bits =
    match adversary with
    | Timetag_wrap -> Prng.in_range prng 2 4
    | _ -> Prng.choose prng [| 4; 8 |]
  in
  let phase = 1 lsl (timetag_bits - 1) in
  let epochs =
    match adversary with
    | Timetag_wrap -> min 40 (Prng.in_range prng (2 * phase) (3 * phase))
    | _ -> Prng.in_range prng 3 16
  in
  {
    procs;
    epochs;
    max_tasks = Prng.in_range prng 1 (2 * procs);
    data_lines = Prng.in_range prng 2 16;
    line_words;
    timetag_bits;
    cache_bytes = Prng.choose prng [| 512; 1024; 65536 |];
    scheduling;
    migration_rate;
    serial_prob = 0.2;
    sharing = 0.2 +. (0.6 *. Prng.float prng);
    write_prob = (if adversary = Timetag_wrap then 0.15 else 0.35);
    lock_prob = Prng.choose prng [| 0.0; 0.05; 0.15 |];
    compute_prob = 0.15;
    max_events = Prng.in_range prng 4 24;
    adversary;
  }

let generate prng p =
  let cfg = cfg_of p in
  let static = Schedule.is_static cfg in
  let migration = cfg.Config.scheduling = Config.Dynamic && cfg.Config.migration_rate > 0.0 in
  let data_words = p.data_lines * p.line_words in
  let lock_words = p.line_words in
  let words = data_words + lock_words in
  let layout : Shape.layout =
    let arrays = Hashtbl.create 4 in
    Hashtbl.replace arrays "A" { Shape.name = "A"; dims = [ data_words ]; size = data_words; base = 0 };
    Hashtbl.replace arrays "L"
      { Shape.name = "L"; dims = [ lock_words ]; size = lock_words; base = data_words };
    { Shape.arrays; total_words = words }
  in
  let array_of addr = if addr < data_words then "A" else "L" in
  (* generator-side staleness model: last write epoch per word, and per
     processor whether its cached copy (if any) is guaranteed current *)
  let lwe = Array.make words (-1) in
  let current = Array.init p.procs (fun _ -> Bytes.make words '\000') in
  let next_val = ref 0 in
  let fresh () = incr next_val; !next_val in
  let note_write ~epoch ~proc addr =
    lwe.(addr) <- epoch;
    for q = 0 to p.procs - 1 do
      Bytes.set current.(q) addr '\000'
    done;
    match proc with Some pr -> Bytes.set current.(pr) addr '\001' | None -> ()
  in
  let read_mark ~epoch ~proc addr =
    if lwe.(addr) < 0 then
      if Prng.float prng < 0.25 then Event.Unmarked else Event.Normal_read
    else begin
      (* With mid-task migration a task may fill a word on one processor
         (timetag = write epoch, pre-write value) and write it after moving
         to another, stranding a stale copy whose tag equals the last write
         epoch — so the sound window shrinks by one. Same-epoch
         read-after-own-write stays sound: a task migrates at most once and
         never back, so the post-write processor's copy is current. *)
      let dmax = epoch - lwe.(addr) in
      let dmax = if migration && dmax > 0 then dmax - 1 else dmax in
      let can_normal =
        match proc with Some pr -> Bytes.get current.(pr) addr = '\001' | None -> false
      in
      let roll = Prng.float prng in
      if can_normal && roll < 0.5 then Event.Normal_read
      else if roll >= 0.85 then Event.Bypass_read
      else begin
        let d = if Prng.float prng < 0.8 || dmax = 0 then dmax else Prng.int prng dmax in
        (* both the hit path (tag >= epoch - d >= last write) and the miss
           path (line refetch) leave the reader with a current copy *)
        (match proc with Some pr -> Bytes.set current.(pr) addr '\001' | None -> ());
        Event.Time_read d
      end
    end
  in
  let epochs = ref [] in
  for e = 0 to p.epochs - 1 do
    let serial = Prng.float prng < p.serial_prob in
    let ntasks = if serial then 1 else 1 + Prng.int prng p.max_tasks in
    let proc_of_rank rank =
      if serial then Some 0
      else if static then Some (Schedule.static_proc cfg ~ntasks rank)
      else None
    in
    (* per-epoch exclusive ownership of written data words *)
    let owner = Array.make words (-1) in
    let own = Array.make ntasks [] in
    if serial then
      (* a serial task owns the whole data region *)
      for a = data_words - 1 downto 0 do
        owner.(a) <- 0;
        own.(0) <- a :: own.(0)
      done
    else begin
      (match p.adversary with
      | False_sharing_layout ->
        (* split each chosen line's words across distinct writer tasks *)
        let nlines = 1 + Prng.int prng (max 1 (p.data_lines / 2)) in
        for _ = 1 to nlines do
          let line = Prng.int prng p.data_lines in
          for k = 0 to p.line_words - 1 do
            let addr = (line * p.line_words) + k in
            if owner.(addr) < 0 then begin
              let rank = (line + k) mod ntasks in
              owner.(addr) <- rank;
              own.(rank) <- addr :: own.(rank)
            end
          done
        done
      | _ -> ());
      for rank = 0 to ntasks - 1 do
        let n_own = Prng.int prng 4 in
        for _ = 1 to n_own do
          let addr = Prng.int prng data_words in
          if owner.(addr) < 0 then begin
            owner.(addr) <- rank;
            own.(rank) <- addr :: own.(rank)
          end
        done
      done
    end;
    let pick_shared () =
      (* a data word not written this epoch, if one can be found quickly *)
      let rec try_pick n =
        if n = 0 then None
        else
          let addr = Prng.int prng data_words in
          if owner.(addr) < 0 then Some addr else try_pick (n - 1)
      in
      try_pick 8
    in
    let tasks =
      Array.init ntasks (fun rank ->
          let proc = proc_of_rank rank in
          let owned = Array.of_list own.(rank) in
          let events = ref [] in
          let emit ev = events := ev :: !events in
          let emit_read addr =
            let mark = read_mark ~epoch:e ~proc addr in
            emit (Event.Read { addr; mark; value = 0; array = array_of addr })
          in
          let emit_write addr =
            emit (Event.Write { addr; mark = Event.Normal_write; value = fresh (); array = array_of addr });
            note_write ~epoch:e ~proc addr
          in
          let n_ev = 1 + Prng.int prng p.max_events in
          for _ = 1 to n_ev do
            let roll = Prng.float prng in
            if roll < p.lock_prob then begin
              (* critical section over the lock region: serialized
                 read-modify-writes, uncached on every scheme *)
              emit Event.Lock;
              let n_acc = 1 + Prng.int prng 2 in
              for _ = 1 to n_acc do
                let addr = data_words + Prng.int prng lock_words in
                emit (Event.Read { addr; mark = Event.Bypass_read; value = 0; array = "L" });
                if Prng.float prng < 0.8 then begin
                  emit
                    (Event.Write
                       { addr; mark = Event.Bypass_write; value = fresh (); array = "L" });
                  note_write ~epoch:e ~proc addr
                end
              done;
              emit Event.Unlock
            end
            else if roll < p.lock_prob +. p.compute_prob then
              emit (Event.Compute (1 + Prng.int prng 16))
            else if
              roll < p.lock_prob +. p.compute_prob +. p.write_prob && Array.length owned > 0
            then emit_write (Prng.choose prng owned)
            else begin
              let shared = Array.length owned = 0 || Prng.float prng < p.sharing in
              match (if shared then pick_shared () else None) with
              | Some addr -> emit_read addr
              | None ->
                if Array.length owned > 0 then emit_read (Prng.choose prng owned)
                else emit (Event.Compute 1)
            end
          done;
          { Trace.iter = rank; events = Array.of_list (List.rev !events) })
    in
    let kind =
      if serial then Trace.Serial else Trace.Parallel { lo = 0; hi = ntasks - 1 }
    in
    epochs := { Trace.kind; tasks } :: !epochs
  done;
  Golden.resolve
    {
      Trace.epochs = Array.of_list (List.rev !epochs);
      layout;
      golden_memory = Array.make words 0;
      total_events = 0;
    }
