(** Sequential reference semantics for event traces: rank-major replay
    recomputing golden read values and final memory, plus a structural
    linter for race-freedom and critical-section discipline. *)

(** Replay the trace in rank-major order, stamping every read with the
    value the golden interpreter observes and rebuilding the golden final
    memory. Idempotent; correct for race-free traces (which [lint]
    checks). *)
val resolve : Hscd_sim.Trace.t -> Hscd_sim.Trace.t

(** Structural well-formedness problems, empty when the trace is clean:
    balanced non-nested critical sections, bypass-only accesses inside
    them, in-bounds addresses, and per-epoch exclusive ownership of every
    address written outside a critical section. *)
val lint : Hscd_sim.Trace.t -> string list

(** Mark-soundness problems under a machine configuration, empty when
    every read mark is conservative enough to be correct on all schemes:
    [Time_read d] within the distance to the last write (one epoch less
    under mid-task migration), [Normal_read]/[Unmarked] of written data
    only from a statically known processor holding a current copy.
    Together with {!lint} this accepts exactly the traces the generator
    promises; the shrinker uses it to reject candidates whose failure is
    an artifact of event deletion rather than a scheme bug. *)
val mark_sound : Hscd_arch.Config.t -> Hscd_sim.Trace.t -> string list
