(** Greedy delta-debugging of failing traces: drops epochs, tasks and
    event units (critical sections stay atomic), re-resolving golden
    values after every mutation, until the caller's failure predicate no
    longer holds for any smaller candidate. *)

(** Total events (including compute and lock events) across the trace. *)
val event_count : Hscd_sim.Trace.t -> int

(** Minimize a failing trace. [failing] receives a golden-resolved
    candidate and returns true when it still exhibits the failure; the
    input trace is assumed failing. *)
val minimize :
  ?max_rounds:int ->
  failing:(Hscd_sim.Trace.t -> bool) ->
  Hscd_sim.Trace.t ->
  Hscd_sim.Trace.t
