(** Sequential reference semantics for event traces.

    The timing engine grants critical sections in rank-major ticket order
    and race-free traces make every other interleaving value-equivalent,
    so replaying an epoch's tasks sequentially in rank order is a correct
    linearization. [resolve] uses that replay to (re)compute the golden
    value of every read and the golden final memory — it is how the
    fuzzer's generator stamps expected values onto a freshly built trace,
    and how the shrinker repairs a trace after deleting events.

    [lint] checks the structural well-formedness the replay (and the
    engine's ticket protocol) relies on: balanced, non-nested critical
    sections, in-bounds addresses, uncached (bypass) marks inside critical
    sections, and race-freedom of parallel epochs — an address written
    outside a critical section is private to the writing task for that
    epoch, and critical-section data is touched only inside sections. *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event
module Trace = Hscd_sim.Trace
module Shape = Hscd_lang.Shape
module Schedule = Hscd_sim.Schedule

let resolve (t : Trace.t) : Trace.t =
  let words = max 1 t.layout.Shape.total_words in
  let mem = Array.make words 0 in
  let total = ref 0 in
  let epochs =
    Array.map
      (fun (e : Trace.epoch) ->
        let tasks =
          Array.map
            (fun (task : Trace.task) ->
              let events =
                Array.map
                  (fun ev ->
                    match ev with
                    | Event.Read { addr; mark; value = _; array } ->
                      incr total;
                      Event.Read { addr; mark; value = mem.(addr); array }
                    | Event.Write { addr; value; _ } ->
                      incr total;
                      mem.(addr) <- value;
                      ev
                    | Event.Compute _ | Event.Lock | Event.Unlock -> ev)
                  task.events
              in
              { task with events })
            e.tasks
        in
        { e with tasks })
      t.epochs
  in
  { t with epochs; golden_memory = mem; total_events = !total }

(* --- structural linting of (generated or shrunk) traces --- *)

type access = { rank : int; write : bool; in_cs : bool }

let lint (t : Trace.t) : string list =
  let words = max 1 t.layout.Shape.total_words in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  Array.iteri
    (fun eno (epoch : Trace.epoch) ->
      let parallel = match epoch.kind with Trace.Parallel _ -> true | Trace.Serial -> false in
      let accesses : (int, access list) Hashtbl.t = Hashtbl.create 64 in
      let note rank ~write ~in_cs addr =
        if addr < 0 || addr >= words then
          err "epoch %d task %d: address %d out of [0,%d)" eno rank addr words
        else
          Hashtbl.replace accesses addr
            ({ rank; write; in_cs } :: Option.value ~default:[] (Hashtbl.find_opt accesses addr))
      in
      Array.iteri
        (fun rank (task : Trace.task) ->
          let depth = ref 0 in
          Array.iter
            (fun ev ->
              match ev with
              | Event.Lock ->
                incr depth;
                if !depth > 1 then err "epoch %d task %d: nested lock" eno rank
              | Event.Unlock ->
                decr depth;
                if !depth < 0 then err "epoch %d task %d: unlock without lock" eno rank
              | Event.Read { addr; mark; _ } ->
                let in_cs = !depth > 0 in
                if in_cs && mark <> Event.Bypass_read then
                  err "epoch %d task %d: non-bypass read in critical section" eno rank;
                note rank ~write:false ~in_cs addr
              | Event.Write { addr; mark; _ } ->
                let in_cs = !depth > 0 in
                if in_cs && mark <> Event.Bypass_write then
                  err "epoch %d task %d: non-bypass write in critical section" eno rank;
                note rank ~write:true ~in_cs addr
              | Event.Compute n -> if n < 0 then err "epoch %d task %d: negative compute" eno rank)
            task.events;
          if !depth <> 0 then err "epoch %d task %d: unbalanced critical section" eno rank)
        epoch.tasks;
      if parallel then
        Hashtbl.iter
          (fun addr accs ->
            let cs, plain = List.partition (fun a -> a.in_cs) accs in
            if cs <> [] && plain <> [] then
              err "epoch %d: address %d mixes critical-section and plain accesses" eno addr;
            let writers =
              List.sort_uniq compare (List.filter_map (fun a -> if a.write then Some a.rank else None) plain)
            in
            match writers with
            | [] | [ _ ] ->
              (match writers with
              | [ w ] ->
                List.iter
                  (fun a ->
                    if a.rank <> w then
                      err "epoch %d: address %d raced (written by task %d, used by task %d)" eno
                        addr w a.rank)
                  plain
              | _ -> ())
            | w0 :: w1 :: _ ->
              err "epoch %d: address %d written by tasks %d and %d" eno addr w0 w1)
          accesses)
    t.epochs;
  List.rev !errs

(* --- mark soundness under a machine configuration --- *)

(** Check that every read mark is conservative enough for the given
    machine: [Time_read d] must keep [d] within the distance to the
    address's last write (one less under mid-task migration, which can
    strand a stale copy timetagged with the write epoch itself on the
    writer's pre-migration processor), and [Normal_read]/[Unmarked] of a
    written address is allowed only when the reading processor is
    statically known and provably holds a current copy. The shrinker uses
    this (with {!lint}) to reject delta-debugging candidates that would
    only "fail" because event deletion made a mark unsound — slippage
    from a real scheme bug to a garbage input. Mirrors the generator's
    marking rules, so [lint] + [mark_sound] accept everything
    {!Gen.generate} emits. *)
let mark_sound (cfg : Config.t) (t : Trace.t) : string list =
  let cfg = Config.validate cfg in
  let words = max 1 t.layout.Shape.total_words in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let static = Schedule.is_static cfg in
  let migration = cfg.scheduling = Config.Dynamic && cfg.migration_rate > 0.0 in
  let lwe = Array.make words (-1) in
  (* per (proc, addr): any resident copy is guaranteed current *)
  let current = Array.init cfg.processors (fun _ -> Bytes.make words '\000') in
  Array.iteri
    (fun eno (epoch : Trace.epoch) ->
      let ntasks = Array.length epoch.tasks in
      let serial = match epoch.kind with Trace.Serial -> true | Trace.Parallel _ -> false in
      Array.iteri
        (fun rank (task : Trace.task) ->
          let proc =
            if serial then Some 0
            else if static then Some (Schedule.static_proc cfg ~ntasks rank)
            else None
          in
          let mark_current addr =
            match proc with Some p -> Bytes.set current.(p) addr '\001' | None -> ()
          in
          Array.iter
            (fun ev ->
              match ev with
              | Event.Read { addr; mark; _ } when addr >= 0 && addr < words -> (
                match mark with
                | Event.Bypass_read -> ()
                | Event.Time_read d ->
                  if lwe.(addr) >= 0 then begin
                    let dist = eno - lwe.(addr) in
                    let bound = if migration && dist > 0 then dist - 1 else dist in
                    if d > bound then
                      err "epoch %d task %d: Time_read %d of addr %d, sound window is %d" eno
                        rank d addr bound
                  end;
                  mark_current addr
                | Event.Normal_read | Event.Unmarked ->
                  if lwe.(addr) >= 0 then (
                    match proc with
                    | Some p when Bytes.get current.(p) addr = '\001' -> ()
                    | _ ->
                      err "epoch %d task %d: Normal/Unmarked read of written addr %d without a current copy"
                        eno rank addr))
              | Event.Write { addr; _ } when addr >= 0 && addr < words ->
                lwe.(addr) <- eno;
                for q = 0 to cfg.processors - 1 do
                  Bytes.set current.(q) addr '\000'
                done;
                mark_current addr
              | _ -> ())
            task.events)
        epoch.tasks)
    t.epochs;
  List.rev !errs
