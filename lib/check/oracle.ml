(** The differential oracle: run one trace through several coherence
    schemes and require every correctness signal to be clean —

    - the engine's per-load check against the golden interpreter (zero
      violations),
    - the end-of-run memory comparison against golden ([memory_ok]),
    - the per-step invariant monitors of {!Monitor},
    - exactly one epoch boundary per trace epoch, and
    - identical final memory images across all schemes (the differential
      signal proper: write-through and write-back machines must converge
      to the same memory).

    A fault can be injected into one scheme ({!Fault}) to validate that
    the oracle catches it. *)

module Config = Hscd_arch.Config
module Scheme = Hscd_coherence.Scheme
module Run = Hscd_sim.Run
module Engine = Hscd_sim.Engine
module Trace = Hscd_sim.Trace
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic

type scheme_report = {
  kind : Run.scheme_kind;
  result : Engine.result;
  monitor : Monitor.violation list;
  boundaries_ok : bool;
}

type t = {
  reports : scheme_report list;
  memories_agree : bool;  (** all schemes produced identical final memory *)
}

let report_ok r =
  r.result.Engine.violations = [] && r.result.Engine.memory_ok && r.monitor = []
  && r.boundaries_ok

let ok t = t.memories_agree && List.for_all report_ok t.reports

(** Scheme kinds whose report is dirty. *)
let failing_schemes t =
  List.filter_map (fun r -> if report_ok r then None else Some r.kind) t.reports

let run ?(schemes = Run.all_schemes) ?fault ?jobs (cfg : Config.t) (trace : Trace.t) =
  let cfg = Config.validate cfg in
  let words = Trace.memory_words trace in
  let n_epochs = Trace.n_epochs trace in
  (* pack once; the slabs are immutable and shared read-only by the domains *)
  let ptrace = Trace.pack trace in
  let runs =
    (* one domain per scheme: every run builds its own network, traffic,
       scheme state and monitor, so the fan-out is bit-deterministic *)
    Hscd_util.Pool.map_exn ?jobs
      (fun kind ->
        let network = Kruskal_snir.create cfg in
        let traffic = Traffic.create cfg in
        let inner = Run.pack kind cfg ~memory_words:words ~network ~traffic in
        let subject =
          match fault with
          | Some (fkind, f) when fkind = kind -> Fault.wrap f ~processors:cfg.processors inner
          | _ -> inner
        in
        let m = Monitor.create ~processors:cfg.processors ~words in
        let result = Engine.run cfg (Monitor.wrap m subject) ~net:network ~traffic ptrace in
        let final =
          match subject with Scheme.Packed ((module S), s) -> Array.copy (S.memory_image s)
        in
        ( {
            kind;
            result;
            monitor = Monitor.report m;
            boundaries_ok = Monitor.boundaries m = n_epochs;
          },
          final ))
      schemes
  in
  let memories_agree =
    match List.map snd runs with [] -> true | m0 :: rest -> List.for_all (( = ) m0) rest
  in
  { reports = List.map fst runs; memories_agree }

let describe t =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-5s %s: %d engine violations, memory %s, %d monitor hits%s\n"
           (Run.scheme_name r.kind)
           (if report_ok r then "ok " else "FAIL")
           (List.length r.result.Engine.violations)
           (if r.result.Engine.memory_ok then "ok" else "CORRUPT")
           (List.length r.monitor)
           (if r.boundaries_ok then "" else ", bad boundary count"));
      List.iter
        (fun (v : Engine.violation) ->
          Buffer.add_string b
            (Printf.sprintf "        load epoch %d proc %d addr %d: expected %d, got %d\n"
               v.Engine.epoch v.Engine.proc v.Engine.addr v.Engine.expected v.Engine.got))
        r.result.Engine.violations;
      List.iter
        (fun v -> Buffer.add_string b ("        " ^ Monitor.violation_to_string v ^ "\n"))
        r.monitor)
    t.reports;
  if not t.memories_agree then
    Buffer.add_string b "  cross-scheme final memory images DISAGREE\n";
  Buffer.contents b
