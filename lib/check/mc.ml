(** Bounded exhaustive model checking of the coherence schemes.

    Where the fuzzer ({!Fuzz}) samples the space of well-formed traces,
    the model checker enumerates it: every scheme is driven *directly*
    (no re-model) as a guarded-action transition system over a small
    scope — 2–3 processors, 1–2 words, a depth bound long enough to
    cover the full timetag-wrap window — and every reachable state is
    visited exactly once. "No counterexample found" then means "none
    exists at this scope", which is a much stronger statement than any
    number of fuzz iterations.

    {b States} are the scheme's abstract coherence state
    ({!Scheme.S.snapshot}: memory image, cached words, epoch/version
    counters, directory entries) joined with the checker's own guard
    state (golden memory, last-write epochs, per-epoch ownership, write
    history). {b Actions} are reads, writes, epoch advances and (in
    migration mode) task migrations, guarded by exactly the
    compiler-soundness rules the generator ({!Gen}) and the shrinker's
    {!Golden.mark_sound} encode — so every explored path is a race-free
    trace with sound marks, on which every scheme must return the
    current golden value for every read.

    Each explored path is checked with the same per-step {!Monitor}
    invariants the fuzz oracle uses, plus cross-scheme value agreement
    against a lockstep BASE reference instance and a memory-image
    comparison against golden at every epoch boundary. Schemes are
    mutable with no undo, so the search is stateless: a state is
    identified by its action prefix and expansion replays the prefix on
    fresh instances — cheap at this scope, and it makes frontier
    expansion embarrassingly parallel ({!Pool.supervise}).

    On a violation the action sequence converts to a packed trace
    ({!trace_of_actions}) that replays through {!Hscd_sim.Engine.run},
    closing the loop from abstract counterexample to concrete engine
    failure. Correct schemes explore violation-free (asserted by the
    [mc-smoke] test); a fault grafted on with {!Fault.wrap} must produce
    a counterexample that the engine replay also flags. *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event
module Scheme = Hscd_coherence.Scheme
module Run = Hscd_sim.Run
module Trace = Hscd_sim.Trace
module Shape = Hscd_lang.Shape
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic
module Pool = Hscd_util.Pool
module Err = Hscd_util.Hscd_error

(* ------------------------------------------------------------------ *)
(* Scope                                                               *)
(* ------------------------------------------------------------------ *)

type scope = {
  procs : int;  (** processors = tasks per parallel epoch *)
  words : int;  (** shared data words (addresses [0 .. words-1]) *)
  line_words : int;  (** >1 puts several words in one line (companion fills) *)
  timetag_bits : int;  (** 2 gives the tightest wrap: reset every 2 epochs *)
  depth : int;  (** bound on actions per explored path *)
  migration : bool;  (** dynamic scheduling with mid-task migration rules *)
  max_states : int;  (** safety valve; exceeding it truncates the search *)
}

(** 2 procs × 1 word × depth 10 under 2-bit timetags: depth 10 crosses
    more than one full 2·phase-epoch wrap cycle with accesses to spare,
    so timetag recycling and the two-phase reset are inside the scope. *)
let default_scope =
  {
    procs = 2;
    words = 1;
    line_words = 1;
    timetag_bits = 2;
    depth = 10;
    migration = false;
    max_states = 200_000;
  }

(** Machine configuration for a scope: a deliberately tiny cache (64
    words) so the scope's lines all fit, the scope's line size and
    timetag width, and static block scheduling (task rank = processor,
    the identity map the checker's guards assume) unless migration mode
    asks for dynamic self-scheduling. *)
let cfg_of scope =
  Config.validate
    {
      Config.default with
      processors = scope.procs;
      line_words = scope.line_words;
      timetag_bits = scope.timetag_bits;
      cache_bytes = 64 * Config.default.word_bytes;
      scheduling = (if scope.migration then Config.Dynamic else Config.Block);
      migration_rate = (if scope.migration then 0.25 else 0.0);
    }

(* ------------------------------------------------------------------ *)
(* Actions                                                             *)
(* ------------------------------------------------------------------ *)

type action =
  | Read of { task : int; word : int; mark : Event.rmark }
  | Write of { task : int; word : int }
  | Migrate of { task : int }  (** migration mode only: move the task one processor over *)
  | Advance  (** epoch boundary on every instance *)

let action_to_string = function
  | Read { task; word; mark } ->
    let m =
      match mark with
      | Event.Unmarked -> "unmarked"
      | Event.Normal_read -> "normal"
      | Event.Time_read d -> Printf.sprintf "time%d" d
      | Event.Bypass_read -> "bypass"
    in
    Printf.sprintf "read[%s task=%d word=%d]" m task word
  | Write { task; word } -> Printf.sprintf "write[task=%d word=%d]" task word
  | Migrate { task } -> Printf.sprintf "migrate[task=%d]" task
  | Advance -> "advance"

let actions_to_string actions = String.concat " " (List.map action_to_string actions)

(** Deterministic value of the [n]-th (1-based) write to [word]. Keyed
    to the word, not a global counter, so different interleavings that
    reach the same per-word history produce the same snapshot and the
    states merge. *)
let write_value ~word ~n = ((word + 1) * 1000) + n

(* ------------------------------------------------------------------ *)
(* One simulation: subject scheme + BASE reference + guard state        *)
(* ------------------------------------------------------------------ *)

type sim = {
  scope : scope;
  cfg : Config.t;
  fault : Fault.t option;
  subject : Scheme.packed;
  reference : Scheme.packed;  (** lockstep BASE instance *)
  monitor : Monitor.t;
  golden : int array;  (** current golden memory *)
  history : (int * int) list array;  (** per word: (epoch, value), newest first *)
  nwrites : int array;  (** per word write counter (drives {!write_value}) *)
  lwe : int array;  (** last write epoch per word, -1 = never *)
  current : Bytes.t array;  (** per proc, per word: copy provably current *)
  owner : int array;  (** this-epoch writer task per word, -1 = none *)
  accessed_by : int array;  (** this-epoch accessor: -1 none, task, -2 mixed readers *)
  proc_of : int array;  (** task -> processor; identity at each epoch start *)
  migrated : Bytes.t;  (** per task: already migrated this epoch *)
  mutable epoch : int;
  mutable reads : int;  (** total reads issued (fault-hidden-state mirror) *)
  mutable mviol : int;  (** monitor violations already converted to [violation] *)
  mutable violation : string option;
}

let fresh ?fault scope kind =
  let cfg = cfg_of scope in
  let make k =
    let network = Kruskal_snir.create cfg in
    let traffic = Traffic.create cfg in
    Run.pack k cfg ~memory_words:scope.words ~network ~traffic
  in
  let subject =
    let inner = make kind in
    match fault with
    | Some f -> Fault.wrap f ~processors:cfg.Config.processors inner
    | None -> inner
  in
  {
    scope;
    cfg;
    fault;
    subject;
    reference = make Run.Base;
    monitor = Monitor.create ~processors:cfg.Config.processors ~words:scope.words;
    golden = Array.make scope.words 0;
    history = Array.make scope.words [];
    nwrites = Array.make scope.words 0;
    lwe = Array.make scope.words (-1);
    current = Array.init cfg.Config.processors (fun _ -> Bytes.make scope.words '\000');
    owner = Array.make scope.words (-1);
    accessed_by = Array.make scope.words (-1);
    proc_of = Array.init scope.procs (fun i -> i);
    migrated = Bytes.make scope.procs '\000';
    epoch = 0;
    reads = 0;
    mviol = 0;
    violation = None;
  }

let p_read packed ~proc ~addr ~mark =
  match packed with
  | Scheme.Packed ((module S), s) -> (S.read s ~proc ~addr ~array:0 ~mark).Scheme.value

let p_write packed ~proc ~addr ~value =
  match packed with
  | Scheme.Packed ((module S), s) ->
    ignore (S.write s ~proc ~addr ~array:0 ~value ~mark:Event.Normal_write)

let p_boundary packed ~stalls =
  match packed with Scheme.Packed ((module S), s) -> S.epoch_boundary s ~stalls

let p_memory packed = match packed with Scheme.Packed ((module S), s) -> S.memory_image s
let p_snapshot packed = match packed with Scheme.Packed ((module S), s) -> S.snapshot s

let fail sim fmt =
  Printf.ksprintf (fun s -> if sim.violation = None then sim.violation <- Some s) fmt

let check_monitor sim =
  let report = Monitor.report sim.monitor in
  let n = List.length report in
  if n > sim.mviol then begin
    sim.mviol <- n;
    fail sim "monitor: %s" (Monitor.violation_to_string (List.nth report (n - 1)))
  end

(** In migration mode the task→processor map is not statically known to
    the "compiler", so the guards may not rely on it (no owner-aligned
    Normal marks, no current-copy tracking) even though the checker
    drives each scheme with a concrete processor. *)
let proc_known sim = not sim.scope.migration

let apply sim action =
  if sim.violation <> None then ()
  else
    match action with
    | Write { task; word } ->
      let proc = sim.proc_of.(task) in
      sim.nwrites.(word) <- sim.nwrites.(word) + 1;
      let value = write_value ~word ~n:sim.nwrites.(word) in
      Monitor.on_write sim.monitor ~addr:word value;
      sim.golden.(word) <- value;
      sim.history.(word) <- (sim.epoch, value) :: sim.history.(word);
      sim.lwe.(word) <- sim.epoch;
      Array.iter (fun c -> Bytes.set c word '\000') sim.current;
      if proc_known sim then Bytes.set sim.current.(proc) word '\001';
      sim.owner.(word) <- task;
      sim.accessed_by.(word) <-
        (if sim.accessed_by.(word) = -1 || sim.accessed_by.(word) = task then task else -2);
      p_write sim.subject ~proc ~addr:word ~value;
      p_write sim.reference ~proc ~addr:word ~value;
      check_monitor sim
    | Read { task; word; mark } ->
      let proc = sim.proc_of.(task) in
      sim.reads <- sim.reads + 1;
      let v = p_read sim.subject ~proc ~addr:word ~mark in
      Monitor.on_read sim.monitor ~proc ~addr:word ~mark v;
      let vref = p_read sim.reference ~proc ~addr:word ~mark in
      sim.accessed_by.(word) <-
        (if sim.accessed_by.(word) = -1 || sim.accessed_by.(word) = task then task else -2);
      (match mark with
      | Event.Time_read _ when proc_known sim ->
        (* both the hit and the refetch path leave a current copy *)
        Bytes.set sim.current.(proc) word '\001'
      | _ -> ());
      check_monitor sim;
      if sim.violation = None && v <> sim.golden.(word) then
        fail sim "epoch %d: %s returned %d, current golden value of word %d is %d"
          sim.epoch (action_to_string action) v word sim.golden.(word);
      if sim.violation = None && vref <> sim.golden.(word) then
        fail sim "epoch %d: BASE reference returned %d for word %d, golden is %d" sim.epoch
          vref word sim.golden.(word);
      if sim.violation = None && v <> vref then
        fail sim "epoch %d: scheme/BASE disagree on word %d: %d vs %d" sim.epoch word v vref
    | Migrate { task } ->
      Bytes.set sim.migrated task '\001';
      sim.proc_of.(task) <- (sim.proc_of.(task) + 1) mod sim.cfg.Config.processors
    | Advance ->
      let stalls = Array.make sim.cfg.Config.processors 0 in
      p_boundary sim.subject ~stalls;
      Monitor.on_boundary sim.monitor stalls;
      p_boundary sim.reference ~stalls;
      sim.epoch <- sim.epoch + 1;
      Array.fill sim.owner 0 (Array.length sim.owner) (-1);
      Array.fill sim.accessed_by 0 (Array.length sim.accessed_by) (-1);
      Array.iteri (fun i _ -> sim.proc_of.(i) <- i) sim.proc_of;
      Bytes.fill sim.migrated 0 (Bytes.length sim.migrated) '\000';
      check_monitor sim;
      if sim.violation = None then begin
        (* every scheme keeps its memory image eagerly current, so it
           must equal golden whenever the write buffers have drained *)
        let img = p_memory sim.subject in
        Array.iteri
          (fun w g ->
            if sim.violation = None && img.(w) <> g then
              fail sim "after boundary of epoch %d: memory word %d holds %d, golden is %d"
                (sim.epoch - 1) w img.(w) g)
          sim.golden
      end

(** Actions enabled by the compiler-soundness guards ({!Gen} /
    {!Golden.mark_sound}): race-freedom makes a word written this epoch
    private to the writing task; [Time_read d] needs
    [d <= epoch - last_write_epoch] (one less under migration); Normal
    reads of written words need a provably current copy on a statically
    known processor; bypass reads are always sound. Only the two
    boundary distances ([dmax] and 0) are enumerated — intermediate
    distances are strictly safer and add no new scheme behavior. Writes
    are capped at one per word per epoch to keep the space finite
    without losing any coherence interaction. *)
let enabled sim =
  let acts = ref [ Advance ] in
  let add a = acts := a :: !acts in
  for task = sim.scope.procs - 1 downto 0 do
    if sim.scope.migration && Bytes.get sim.migrated task = '\000' then add (Migrate { task });
    for word = sim.scope.words - 1 downto 0 do
      if sim.owner.(word) < 0 || sim.owner.(word) = task then begin
        if
          sim.owner.(word) < 0
          && (sim.accessed_by.(word) = -1 || sim.accessed_by.(word) = task)
        then add (Write { task; word });
        let proc = sim.proc_of.(task) in
        if sim.lwe.(word) < 0 then begin
          add (Read { task; word; mark = Event.Normal_read });
          add (Read { task; word; mark = Event.Unmarked });
          add (Read { task; word; mark = Event.Bypass_read })
        end
        else begin
          let dist = sim.epoch - sim.lwe.(word) in
          let dmax = if sim.scope.migration && dist > 0 then dist - 1 else dist in
          add (Read { task; word; mark = Event.Bypass_read });
          add (Read { task; word; mark = Event.Time_read dmax });
          if dmax > 0 then add (Read { task; word; mark = Event.Time_read 0 });
          if proc_known sim && Bytes.get sim.current.(proc) word = '\001' then
            add (Read { task; word; mark = Event.Normal_read })
        end
      end
    done
  done;
  List.rev !acts

(** Hash-dedup key: subject snapshot, reference snapshot, and the full
    guard state (the monitor's shadow history included — two prefixes
    with equal scheme state but different write histories could still
    diverge on a future stale-time-read verdict). Faults with hidden
    state outside the snapshot (the corrupt-read counter) fold the read
    count in, trading dedup for soundness. Digested to keep the visited
    table small. *)
let state_key sim =
  let b = Buffer.create 512 in
  Buffer.add_string b (p_snapshot sim.subject);
  Buffer.add_char b '#';
  Buffer.add_string b (p_snapshot sim.reference);
  Buffer.add_char b '#';
  Scheme.Snap.int b sim.epoch;
  Scheme.Snap.ints b sim.golden;
  Scheme.Snap.ints b sim.nwrites;
  Scheme.Snap.ints b sim.lwe;
  Scheme.Snap.ints b sim.owner;
  Scheme.Snap.ints b sim.accessed_by;
  Scheme.Snap.ints b sim.proc_of;
  Array.iter
    (fun c ->
      Buffer.add_bytes b c;
      Scheme.Snap.sep b)
    sim.current;
  Buffer.add_bytes b sim.migrated;
  Scheme.Snap.sep b;
  Array.iter
    (fun h ->
      List.iter
        (fun (e, v) ->
          Scheme.Snap.int b e;
          Scheme.Snap.int b v)
        h;
      Scheme.Snap.sep b)
    sim.history;
  (match sim.fault with
  | Some (Fault.Corrupt_read_value _) -> Scheme.Snap.int b sim.reads
  | _ -> ());
  Digest.string (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Bounded breadth-first search                                        *)
(* ------------------------------------------------------------------ *)

type stats = {
  states : int;  (** distinct reachable states (initial included) *)
  transitions : int;  (** explored edges *)
  depth_reached : int;  (** levels fully expanded *)
  truncated : bool;  (** hit [max_states] before the depth bound *)
  elapsed : float;  (** wall seconds *)
}

type counterexample = { cx_kind : Run.scheme_kind; actions : action list; violation : string }

type report = {
  kind : Run.scheme_kind;
  fault : Fault.t option;
  scope : scope;
  stats : stats;
  counterexample : counterexample option;
}

let replay_prefix sim prefix = Array.iter (apply sim) prefix

(* Expand one prefix: replay it once to read off the enabled actions,
   then replay-and-apply per action (schemes have no copy or undo, so
   the search is stateless — prefix replay *is* the state). *)
let expand ?fault scope kind prefix =
  let sim = fresh ?fault scope kind in
  replay_prefix sim prefix;
  match sim.violation with
  | Some v ->
    (* a frontier prefix was violation-free when enqueued; replay is
       deterministic, so this is unreachable — surface it if not *)
    [ (Advance, Error (Printf.sprintf "prefix replay diverged: %s" v)) ]
  | None ->
    List.map
      (fun a ->
        let s2 = fresh ?fault scope kind in
        replay_prefix s2 prefix;
        apply s2 a;
        match s2.violation with Some v -> (a, Error v) | None -> (a, Ok (state_key s2)))
      (enabled sim)

let chunk_list n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

(** Exhaustive bounded exploration of one scheme. Level-synchronous
    BFS: each level's prefixes are chunked and expanded in parallel on
    the supervised pool (expansion is pure, so retries are harmless and
    results are bit-deterministic); the visited table is updated only in
    the supervising domain. Stops at the first counterexample — BFS
    order makes it a shortest one. *)
let explore ?fault ?jobs ?(progress = fun (_ : int) (_ : int) -> ()) scope kind =
  let t0 = Unix.gettimeofday () in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  Hashtbl.replace visited (state_key (fresh ?fault scope kind)) ();
  let transitions = ref 0 in
  let truncated = ref false in
  let cx = ref None in
  let frontier = ref [ [||] ] in
  let depth = ref 0 in
  while !cx = None && !frontier <> [] && !depth < scope.depth && not !truncated do
    let chunks = chunk_list 64 !frontier in
    let outcomes, _ =
      Pool.supervise ?jobs
        (fun prefixes -> List.map (fun p -> (p, expand ?fault scope kind p)) prefixes)
        chunks
    in
    let next = ref [] in
    List.iter
      (fun outcome ->
        match outcome with
        | Pool.Done results ->
          List.iter
            (fun (prefix, expansions) ->
              List.iter
                (fun (a, res) ->
                  incr transitions;
                  match res with
                  | Error v ->
                    if !cx = None then
                      cx :=
                        Some
                          {
                            cx_kind = kind;
                            actions = Array.to_list prefix @ [ a ];
                            violation = v;
                          }
                  | Ok key ->
                    if not (Hashtbl.mem visited key) then
                      if Hashtbl.length visited >= scope.max_states then truncated := true
                      else begin
                        Hashtbl.replace visited key ();
                        next := Array.append prefix [| a |] :: !next
                      end)
                expansions)
            results
        | Pool.Failed e -> raise (Err.Error (Err.add_context "mc frontier expansion" e))
        | Pool.Timed_out s ->
          Err.fail Err.Timeout "mc frontier expansion chunk gave up after %.1fs" s)
      outcomes;
    incr depth;
    progress !depth (Hashtbl.length visited);
    frontier := List.rev !next
  done;
  {
    kind;
    fault;
    scope;
    stats =
      {
        states = Hashtbl.length visited;
        transitions = !transitions;
        depth_reached = !depth;
        truncated = !truncated;
        elapsed = Unix.gettimeofday () -. t0;
      };
    counterexample = !cx;
  }

let ok r = r.counterexample = None && not r.stats.truncated

(** Explore every scheme in [schemes] at the same scope. *)
let check_all ?fault ?jobs ?(schemes = Run.extended_schemes) scope =
  List.map (fun kind -> explore ?fault ?jobs scope kind) schemes

(* ------------------------------------------------------------------ *)
(* Counterexample replay through the timing engine                     *)
(* ------------------------------------------------------------------ *)

(** Convert an action sequence into a boxed trace: epochs split at
    [Advance], every epoch parallel with exactly [procs] tasks so the
    engine's block schedule maps task rank [r] onto processor [r] — the
    identity map the checker drove the scheme with. Write values are
    recomputed with {!write_value}, read values and the golden memory
    are stamped by {!Golden.resolve}. [Migrate] actions have no trace
    form (engine migration is scheduler-driven), so migration-mode
    replay is best-effort: the trace is still race-free with sound
    marks, but the engine may schedule it differently. *)
let trace_of_actions scope actions : Trace.t =
  (* Pad the image to a multiple of 8 words so line fetches stay in
     bounds when the trace is replayed under a config with wider lines
     than the scope's (e.g. the 4-word-line corpus replay config). *)
  let words =
    let used = max 1 scope.words in
    let line = max 8 scope.line_words in
    (used + line - 1) / line * line
  in
  let layout =
    let arrays = Hashtbl.create 1 in
    Hashtbl.replace arrays "A" { Shape.name = "A"; dims = [ words ]; size = words; base = 0 };
    { Shape.arrays; total_words = words }
  in
  let nwrites = Array.make words 0 in
  let epochs = ref [] in
  let tasks = Array.make scope.procs [] in
  let flush () =
    let ts =
      Array.mapi
        (fun r evs ->
          let evs = List.rev evs in
          let evs = if evs = [] then [ Event.Compute 1 ] else evs in
          { Trace.iter = r; events = Array.of_list evs })
        tasks
    in
    epochs :=
      { Trace.kind = Trace.Parallel { lo = 0; hi = scope.procs - 1 }; tasks = ts } :: !epochs;
    Array.fill tasks 0 (Array.length tasks) []
  in
  List.iter
    (fun a ->
      match a with
      | Read { task; word; mark } ->
        tasks.(task) <-
          Event.Read { addr = word; mark; value = 0; array = "A" } :: tasks.(task)
      | Write { task; word } ->
        nwrites.(word) <- nwrites.(word) + 1;
        tasks.(task) <-
          Event.Write
            {
              addr = word;
              mark = Event.Normal_write;
              value = write_value ~word ~n:nwrites.(word);
              array = "A";
            }
          :: tasks.(task)
      | Migrate _ -> ()
      | Advance -> flush ())
    actions;
  flush ();
  Golden.resolve
    {
      Trace.epochs = Array.of_list (List.rev !epochs);
      layout;
      golden_memory = Array.make words 0;
      total_events = 0;
    }

(** Replay a counterexample through {!Hscd_sim.Engine.run} under the
    scope's machine configuration (same fault injected, if any),
    checked by the full differential oracle. Returns the trace and the
    oracle outcome; a genuine counterexample makes [Oracle.ok] false on
    the same scheme. *)
let replay ?fault ?jobs scope (cx : counterexample) =
  let trace = trace_of_actions scope cx.actions in
  let fault = Option.map (fun f -> (cx.cx_kind, f)) fault in
  (trace, Oracle.run ~schemes:[ cx.cx_kind ] ?fault ?jobs (cfg_of scope) trace)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let describe_scope s =
  Printf.sprintf "%d procs x %d words (%d-word lines), %d-bit tags, depth %d%s" s.procs
    s.words s.line_words s.timetag_bits s.depth
    (if s.migration then ", migration" else "")

let describe r =
  let verdict =
    match r.counterexample with
    | Some cx ->
      Printf.sprintf "COUNTEREXAMPLE (%d actions)\n    %s\n    %s" (List.length cx.actions)
        (actions_to_string cx.actions) cx.violation
    | None -> if r.stats.truncated then "truncated (state cap hit)" else "ok"
  in
  Printf.sprintf "%-9s %8d states %9d transitions  depth %2d  %6.2fs  %s%s"
    (Run.scheme_name r.kind) r.stats.states r.stats.transitions r.stats.depth_reached
    r.stats.elapsed
    (match r.fault with Some f -> "[" ^ Fault.name f ^ "] " | None -> "")
    verdict
