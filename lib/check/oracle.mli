(** Differential oracle: one trace through several schemes, requiring zero
    engine violations, golden memory agreement, clean invariant monitors,
    correct boundary counts, and identical cross-scheme final memory. *)

type scheme_report = {
  kind : Hscd_sim.Run.scheme_kind;
  result : Hscd_sim.Engine.result;
  monitor : Monitor.violation list;
  boundaries_ok : bool;
}

type t = {
  reports : scheme_report list;
  memories_agree : bool;
}

val report_ok : scheme_report -> bool
val ok : t -> bool
val failing_schemes : t -> Hscd_sim.Run.scheme_kind list

(** Run the oracle. [fault] injects a bug into the named scheme (for
    validating the oracle itself). Default schemes: the paper's four.
    [jobs] (default 1) runs the schemes on that many domains; results are
    bit-identical to the sequential run. *)
val run :
  ?schemes:Hscd_sim.Run.scheme_kind list ->
  ?fault:Hscd_sim.Run.scheme_kind * Fault.t ->
  ?jobs:int ->
  Hscd_arch.Config.t ->
  Hscd_sim.Trace.t ->
  t

val describe : t -> string
