(** Randomized well-formed epoch/trace generation for differential
    fuzzing: race-free epoch programs with soundly marked references,
    parameterized by machine shape and sharing structure, plus adversarial
    modes for timetag recycling, task migration and false-sharing
    layouts. *)

type adversary = Plain | Timetag_wrap | Migration | False_sharing_layout

val adversary_name : adversary -> string

type params = {
  procs : int;
  epochs : int;
  max_tasks : int;  (** per parallel epoch *)
  data_lines : int;  (** shared-data size in cache lines *)
  line_words : int;
  timetag_bits : int;
  cache_bytes : int;
  scheduling : Hscd_arch.Config.scheduling;
  migration_rate : float;
  serial_prob : float;
  sharing : float;  (** fraction of reads aimed at data not written this epoch *)
  write_prob : float;
  lock_prob : float;
  compute_prob : float;
  max_events : int;  (** per task *)
  adversary : adversary;
}

val describe : params -> string

(** The (validated) machine configuration the params encode; traces from
    [generate] carry marks that are sound for exactly this
    configuration. *)
val cfg_of : params -> Hscd_arch.Config.t

val random_params : Hscd_util.Prng.t -> params

(** A fresh race-free trace with golden values already resolved. *)
val generate : Hscd_util.Prng.t -> params -> Hscd_sim.Trace.t
