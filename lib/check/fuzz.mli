(** Fuzzing driver: deterministic random trace generation, differential
    oracle checks, failure shrinking, and the checked-in seed corpus. *)

type failure = {
  index : int;  (** iteration index; with the seed, a complete repro recipe *)
  params : Gen.params;
  trace : Hscd_sim.Trace.t;
  shrunk : Hscd_sim.Trace.t option;
  outcome : Oracle.t;
}

type report = {
  iterations : int;
  total_events : int;
  failures : failure list;
}

(** [fuzz ~seed ~count ()] runs [count] generate/oracle iterations.
    Iteration [i] is a deterministic function of [seed] alone. [fault]
    injects a bug into one scheme (oracle self-validation); [shrink]
    (default true) delta-debugs each failure; stops early after
    [max_failures] (default 5) failures. [jobs] fans each iteration's
    cross-scheme oracle out over that many domains (bit-identical to
    sequential). *)
val fuzz :
  ?schemes:Hscd_sim.Run.scheme_kind list ->
  ?fault:Hscd_sim.Run.scheme_kind * Fault.t ->
  ?shrink:bool ->
  ?max_failures:int ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  report

(** Configuration all corpus traces are generated and replayed under. *)
val corpus_cfg : Hscd_arch.Config.t

(** Named generator presets backing the seed corpus. *)
val corpus_presets : (string * Gen.params) list

(** Base PRNG seed for corpus generation; preset [name] uses
    [corpus_seed + Hashtbl.hash name]. *)
val corpus_seed : int

(** Write one deterministic trace per preset into [dir]; returns paths. *)
val write_corpus : dir:string -> string list

(** Replay trace files under {!corpus_cfg}; one oracle verdict per file. *)
val replay_corpus :
  ?schemes:Hscd_sim.Run.scheme_kind list -> ?jobs:int -> string list -> (string * Oracle.t) list
