(** Per-step invariant monitors, layered over any coherence scheme.

    [wrap] decorates a packed scheme so that every read, write and epoch
    boundary flowing through the timing engine is also checked against a
    scheme-independent shadow model:

    - {b value provenance}: no load may return a value that was never
      written to its address (initial memory is zero);
    - {b Time-Read windows}: a [Time_read d] at epoch [e] may only return
      a value the address actually held at some point in epochs
      [e - d .. e] — the architectural contract of the timetag check;
    - {b bypass freshness}: a [Bypass_read] always fetches main memory,
      which write-through keeps current, so it must see the latest write;
    - {b boundary sanity}: epoch boundaries produce one non-negative
      stall per processor, and the monitor's epoch counter (incremented
      in lockstep with every scheme's) advances monotonically once per
      boundary.

    The monitor sees events in the engine's execution order for the
    monitored scheme, so its shadow history is a legal linearization. *)

module Event = Hscd_arch.Event
module Scheme = Hscd_coherence.Scheme

type violation = { epoch : int; proc : int; addr : int; kind : string; detail : string }

let violation_to_string v =
  Printf.sprintf "[%s] epoch %d proc %d addr %d: %s" v.kind v.epoch v.proc v.addr v.detail

type t = {
  processors : int;
  mutable epoch : int;
  mutable boundaries : int;
  history : (int * int) list array;  (** per word: (epoch, value), newest first *)
  mutable violations : violation list;  (** reversed; capped at [max_violations] *)
  mutable nviol : int;
}

let max_violations = 25

let create ~processors ~words =
  {
    processors;
    epoch = 0;
    boundaries = 0;
    history = Array.make (max 1 words) [];
    violations = [];
    nviol = 0;
  }

let report m = List.rev m.violations
let boundaries m = m.boundaries

let viol m ~proc ~addr kind fmt =
  Printf.ksprintf
    (fun detail ->
      if m.nviol < max_violations then
        m.violations <- { epoch = m.epoch; proc; addr; kind; detail } :: m.violations;
      m.nviol <- m.nviol + 1)
    fmt

(** Was [v] the content of [addr] at any time in epochs [>= since]?
    Entry [(e_i, v_i)] is live from [e_i] until the next newer write. *)
let held_since m addr ~since v =
  let rec go next = function
    | [] -> v = 0 && next >= since  (* the initial zero, live until the first write *)
    | (e, value) :: rest -> (value = v && next >= since) || go e rest
  in
  go max_int m.history.(addr)

let ever_written m addr v =
  v = 0 || List.exists (fun (_, value) -> value = v) m.history.(addr)

let on_read m ~proc ~addr ~(mark : Event.rmark) value =
  if addr < 0 || addr >= Array.length m.history then
    viol m ~proc ~addr "bounds" "read outside the memory image"
  else if not (ever_written m addr value) then
    viol m ~proc ~addr "phantom-value" "load returned %d, which was never written here" value
  else
    match mark with
    | Event.Time_read d ->
      if not (held_since m addr ~since:(m.epoch - d) value) then
        viol m ~proc ~addr "stale-time-read"
          "Time-Read(%d) at epoch %d returned %d, older than %d epochs" d m.epoch value d
    | Event.Bypass_read ->
      let current = match m.history.(addr) with [] -> 0 | (_, v) :: _ -> v in
      if value <> current then
        viol m ~proc ~addr "stale-bypass" "bypass read returned %d, memory holds %d" value current
    | Event.Normal_read | Event.Unmarked -> ()

let on_write m ~addr value =
  if addr >= 0 && addr < Array.length m.history then
    m.history.(addr) <- (m.epoch, value) :: m.history.(addr)

let on_boundary m stalls =
  if Array.length stalls <> m.processors then
    viol m ~proc:(-1) ~addr:(-1) "boundary-shape" "%d stall entries for %d processors"
      (Array.length stalls) m.processors;
  Array.iteri
    (fun p s -> if s < 0 then viol m ~proc:p ~addr:(-1) "negative-stall" "stall %d" s)
    stalls;
  m.epoch <- m.epoch + 1;
  m.boundaries <- m.boundaries + 1

(** Decorate a packed scheme instance with this monitor. The wrapped
    module's [create] is inert — the instance is already packed. *)
let wrap m (Scheme.Packed ((module S), s)) : Scheme.packed =
  let module M = struct
    type t = unit

    let name = S.name
    let create _ ~memory_words:_ ~network:_ ~traffic:_ = ()

    let read () ~proc ~addr ~array ~mark =
      let r = S.read s ~proc ~addr ~array ~mark in
      on_read m ~proc ~addr ~mark r.Scheme.value;
      r

    let write () ~proc ~addr ~array ~value ~mark =
      on_write m ~addr value;
      S.write s ~proc ~addr ~array ~value ~mark

    let epoch_boundary () ~stalls =
      S.epoch_boundary s ~stalls;
      on_boundary m stalls

    (* monitored instances are never sharded *)
    let boundary_exchange (_ : t array) = ()

    let stats () = S.stats s
    let memory_image () = S.memory_image s
    let snapshot () = S.snapshot s
  end in
  Scheme.Packed ((module M), ())
