(** Per-step invariant monitors layered over any coherence scheme: value
    provenance (no load returns a never-written value), Time-Read window
    enforcement, bypass freshness, and epoch-boundary sanity. *)

type violation = { epoch : int; proc : int; addr : int; kind : string; detail : string }

val violation_to_string : violation -> string

type t

val max_violations : int

val create : processors:int -> words:int -> t

(** Violations in detection order (capped at {!max_violations}). *)
val report : t -> violation list

(** Number of epoch boundaries observed — the oracle checks it equals the
    trace's epoch count (monotone lockstep epoch counters). *)
val boundaries : t -> int

(** Decorate a packed scheme instance so every access and boundary is
    checked against the monitor's shadow model. *)
val wrap : t -> Hscd_coherence.Scheme.packed -> Hscd_coherence.Scheme.packed
