(** Per-step invariant monitors layered over any coherence scheme: value
    provenance (no load returns a never-written value), Time-Read window
    enforcement, bypass freshness, and epoch-boundary sanity. *)

type violation = { epoch : int; proc : int; addr : int; kind : string; detail : string }

val violation_to_string : violation -> string

type t

val max_violations : int

val create : processors:int -> words:int -> t

(** Violations in detection order (capped at {!max_violations}). *)
val report : t -> violation list

(** Number of epoch boundaries observed — the oracle checks it equals the
    trace's epoch count (monotone lockstep epoch counters). *)
val boundaries : t -> int

(** {2 Direct per-step entry points}

    The engine path uses {!wrap}; the bounded model checker ({!Mc}) and
    the monitor's own unit tests drive the shadow model one step at a
    time instead. [on_read] must see the value the scheme returned,
    [on_write] must run before the shadow history is consulted again,
    and [on_boundary] must see the scheme's per-processor stall array. *)

val on_read :
  t -> proc:int -> addr:int -> mark:Hscd_arch.Event.rmark -> int -> unit

val on_write : t -> addr:int -> int -> unit
val on_boundary : t -> int array -> unit

(** Decorate a packed scheme instance so every access and boundary is
    checked against the monitor's shadow model. *)
val wrap : t -> Hscd_coherence.Scheme.packed -> Hscd_coherence.Scheme.packed
