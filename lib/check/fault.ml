(** Fault injection: wrappers that graft realistic coherence bugs onto a
    correct scheme, used to validate that the differential oracle and the
    shrinker actually catch and minimize them (mutation testing of the
    test oracle itself).

    - [Stale_time_read k] widens every Time-Read window by [k] epochs —
      the classic off-by-one in the timetag age comparison, which lets a
      processor consume values older than the compiler proved safe;
    - [Ignore_time_read] drops the age check entirely (a Time-Read
      behaves like a Normal read and may hit any stale resident copy);
    - [Skip_epoch_boundary] loses the scheme's epoch-boundary work
      (epoch-counter increments, two-phase resets, buffer drains) — the
      stuck-counter failure mode of timetag hardware;
    - [Corrupt_read_value n] returns an off-by-one value on every n-th
      read — a data-path fault the provenance monitor must flag. *)

module Event = Hscd_arch.Event
module Scheme = Hscd_coherence.Scheme

type t =
  | Stale_time_read of int
  | Ignore_time_read
  | Skip_epoch_boundary
  | Corrupt_read_value of int

let name = function
  | Stale_time_read k -> Printf.sprintf "stale-time-read+%d" k
  | Ignore_time_read -> "ignore-time-read"
  | Skip_epoch_boundary -> "skip-epoch-boundary"
  | Corrupt_read_value n -> Printf.sprintf "corrupt-read-%d" n

let wrap fault ~processors (Scheme.Packed ((module S), s)) : Scheme.packed =
  let reads = ref 0 in
  let module F = struct
    type t = unit

    let name = S.name ^ "!" ^ name fault
    let create _ ~memory_words:_ ~network:_ ~traffic:_ = ()

    let read () ~proc ~addr ~array ~mark =
      let mark =
        match (fault, mark) with
        | Stale_time_read k, Event.Time_read d -> Event.Time_read (d + k)
        | Ignore_time_read, Event.Time_read _ -> Event.Normal_read
        | _ -> mark
      in
      let r = S.read s ~proc ~addr ~array ~mark in
      match fault with
      | Corrupt_read_value n ->
        incr reads;
        if !reads mod n = 0 then r.Scheme.value <- r.Scheme.value + 1;
        r
      | _ -> r

    let write () ~proc ~addr ~array ~value ~mark = S.write s ~proc ~addr ~array ~value ~mark

    let epoch_boundary () =
      match fault with
      | Skip_epoch_boundary -> Array.make processors 0
      | _ -> S.epoch_boundary s

    let stats () = S.stats s
    let memory_image () = S.memory_image s
  end in
  Scheme.Packed ((module F), ())
