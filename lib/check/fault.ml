(** Fault injection: wrappers that graft realistic coherence bugs onto a
    correct scheme, used to validate that the differential oracle and the
    shrinker actually catch and minimize them (mutation testing of the
    test oracle itself).

    - [Stale_time_read k] widens every Time-Read window by [k] epochs —
      the classic off-by-one in the timetag age comparison, which lets a
      processor consume values older than the compiler proved safe;
    - [Ignore_time_read] drops the age check entirely (a Time-Read
      behaves like a Normal read and may hit any stale resident copy);
    - [Skip_epoch_boundary] loses the scheme's epoch-boundary work
      (epoch-counter increments, two-phase resets, buffer drains) — the
      stuck-counter failure mode of timetag hardware;
    - [Corrupt_read_value n] returns an off-by-one value on every n-th
      read — a data-path fault the provenance monitor must flag. *)

module Event = Hscd_arch.Event
module Scheme = Hscd_coherence.Scheme

type t =
  | Stale_time_read of int
  | Ignore_time_read
  | Skip_epoch_boundary
  | Corrupt_read_value of int

let name = function
  | Stale_time_read k -> Printf.sprintf "stale-time-read+%d" k
  | Ignore_time_read -> "ignore-time-read"
  | Skip_epoch_boundary -> "skip-epoch-boundary"
  | Corrupt_read_value n -> Printf.sprintf "corrupt-read-%d" n

let wrap fault ~processors:(_ : int) (Scheme.Packed ((module S), s)) : Scheme.packed =
  let reads = ref 0 in
  let module F = struct
    type t = unit

    let name = S.name ^ "!" ^ name fault
    let create _ ~memory_words:_ ~network:_ ~traffic:_ = ()

    let read () ~proc ~addr ~array ~mark =
      let mark =
        match (fault, mark) with
        | Stale_time_read k, Event.Time_read d -> Event.Time_read (d + k)
        | Ignore_time_read, Event.Time_read _ -> Event.Normal_read
        | _ -> mark
      in
      let r = S.read s ~proc ~addr ~array ~mark in
      match fault with
      | Corrupt_read_value n ->
        incr reads;
        if !reads mod n = 0 then r.Scheme.value <- r.Scheme.value + 1;
        r
      | _ -> r

    let write () ~proc ~addr ~array ~value ~mark = S.write s ~proc ~addr ~array ~value ~mark

    let epoch_boundary () ~stalls =
      match fault with
      | Skip_epoch_boundary -> Array.fill stalls 0 (Array.length stalls) 0
      | _ -> S.epoch_boundary s ~stalls

    (* fault-injected instances are never sharded *)
    let boundary_exchange (_ : t array) = ()

    let stats () = S.stats s
    let memory_image () = S.memory_image s
    let snapshot () = S.snapshot s
  end in
  Scheme.Packed ((module F), ())

(* ------------------------------------------------------------------ *)
(* Runner chaos: faults against the *harness* rather than the schemes. *)
(* ------------------------------------------------------------------ *)

module Chaos = struct
  exception Injected of string

  type plan = {
    mu : Mutex.t;
    attempts : (string, int) Hashtbl.t;
    crash_first : (string * int) list;
    hang_first : (string * float) list;
    released : bool Atomic.t;
  }

  let plan ?(crash_first = []) ?(hang_first = []) () =
    {
      mu = Mutex.create ();
      attempts = Hashtbl.create 16;
      crash_first;
      hang_first;
      released = Atomic.make false;
    }

  let attempts p cell =
    Mutex.protect p.mu (fun () -> Option.value ~default:0 (Hashtbl.find_opt p.attempts cell))

  let release p = Atomic.set p.released true

  (* Called at the start of every attempt of [cell] (tasks run on worker
     domains, hence the mutex around the attempt counter). Crashes are
     deterministic: the first [k] attempts raise, the next succeeds — the
     supervised pool's retry must converge. Hangs are cooperative: the
     worker spins until [release] (the pool cannot kill a domain, so the
     test ends the hang after asserting the timeout path fired). *)
  let strike p cell =
    let n =
      Mutex.protect p.mu (fun () ->
          let n = 1 + Option.value ~default:0 (Hashtbl.find_opt p.attempts cell) in
          Hashtbl.replace p.attempts cell n;
          n)
    in
    (match List.assoc_opt cell p.hang_first with
    | Some max_hang when n = 1 ->
      let t0 = Unix.gettimeofday () in
      while (not (Atomic.get p.released)) && Unix.gettimeofday () -. t0 < max_hang do
        Unix.sleepf 0.005
      done
    | _ -> ());
    match List.assoc_opt cell p.crash_first with
    | Some k when n <= k -> raise (Injected cell)
    | _ -> ()

  (* --- file-level chaos: what a crash or bad disk does to artifacts --- *)

  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s

  let write_file path s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc

  let corrupt_file path ~byte =
    let b = Bytes.of_string (read_file path) in
    let pos = ((byte mod Bytes.length b) + Bytes.length b) mod Bytes.length b in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
    write_file path (Bytes.to_string b)

  let truncate_file path ~drop =
    let s = read_file path in
    write_file path (String.sub s 0 (max 0 (String.length s - drop)))
end
