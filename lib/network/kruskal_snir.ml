(** Analytic delay model for buffered multistage interconnection networks,
    after Kruskal & Snir [24], as used by the paper's simulator.

    The network has [stages] = ceil(log_k P) stages of k×k switches. Under
    offered per-link utilization rho, the expected waiting time added per
    stage is [rho * (1 - 1/k) / (2 * (1 - rho))] cycles; the total queueing
    excess of a round trip is twice the one-way excess. The unloaded
    traversal is considered part of the machine's base miss latency, so
    this module only reports the *excess* due to contention. *)

type t = {
  stages : int;
  degree : int;
  mutable rho : float;  (** current estimated per-link utilization *)
  rho_max : float;
  mutable samples : int;
  mutable rt_excess : int;  (** round-trip excess at the current load *)
}

(** Expected queueing delay added by one stage at load [rho]. *)
let stage_excess_at ~degree rho =
  let k = float_of_int degree in
  rho *. (1.0 -. (1.0 /. k)) /. (2.0 *. (1.0 -. rho))

let round_trip_at ~stages ~degree rho =
  int_of_float (Float.round (2.0 *. float_of_int stages *. stage_excess_at ~degree rho))

let create (c : Hscd_arch.Config.t) =
  {
    stages = Hscd_arch.Config.network_stages c;
    degree = c.switch_degree;
    rho = 0.0;
    rho_max = 0.95;
    samples = 0;
    rt_excess = 0;
  }

(* The integer excess is recomputed here — loads change only at epoch
   boundaries — so [round_trip_excess] is a field read with no float
   boxing on the per-miss path. *)
let set_load t rho =
  t.rho <- Float.max 0.0 (Float.min t.rho_max rho);
  t.samples <- t.samples + 1;
  t.rt_excess <- round_trip_at ~stages:t.stages ~degree:t.degree t.rho

let load t = t.rho

(** Expected queueing delay added by one stage at the current load. *)
let stage_excess t = stage_excess_at ~degree:t.degree t.rho

(** One-way expected excess over the unloaded traversal, in cycles. *)
let one_way_excess t = float_of_int t.stages *. stage_excess t

(** Integer round-trip queueing excess charged per remote transaction. *)
let round_trip_excess t = t.rt_excess

let describe t =
  Printf.sprintf "%d-stage %dx%d multistage, rho=%.3f (+%d cycles RT)" t.stages t.degree
    t.degree t.rho (round_trip_excess t)
