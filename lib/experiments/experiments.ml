(** One entry per reproduced table/figure (see DESIGN.md's experiment
    index). Every experiment returns printable tables; the bench harness
    and the CLI render them. *)

module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Metrics = Hscd_sim.Metrics
module Scheme = Hscd_coherence.Scheme
module Overhead = Hscd_coherence.Overhead
module Table = Hscd_util.Table

type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : ?small:bool -> ?jobs:int -> unit -> Table.t list;
      (** [jobs] = domains for the simulation fan-out; results identical for any value *)
}

let pct = Table.fpct
let f1 = Table.ff1

(* --- E1: Figure 5, storage overhead --- *)

let fig5 ?small:_ ?jobs:_ () =
  let p = Overhead.paper_default in
  let t =
    Table.create ~title:"Fig 5: storage overhead of coherence support (P=1024, i=10)"
      ~header:[ "scheme"; "cache SRAM (bits)"; "memory DRAM (bits)"; "SRAM total"; "DRAM total" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun (name, (o : Overhead.overhead)) ->
      Table.add_row t
        [
          name;
          (match name.[0] with
          | 'F' | 'L' -> "2*C*P"
          | _ -> Printf.sprintf "%d*L*C*P" p.timetag_bits);
          (match name.[0] with
          | 'F' -> "(P+2)*M*P"
          | 'L' -> "(i+2)*M*P"
          | _ -> "none");
          Table.fbytes (Overhead.bits_to_bytes o.cache_sram_bits);
          (if o.memory_dram_bits = 0 then "none"
           else Table.fbytes (Overhead.bits_to_bytes o.memory_dram_bits));
        ])
    (Overhead.describe p);
  Table.add_note t "paper: 4MB SRAM + 64.5GB DRAM / 4MB + 3GB / 64MB SRAM only";
  [ t ]

(* --- E2: Figure 8, simulation parameters --- *)

let fig8 ?small:_ ?jobs:_ () =
  let t =
    Table.create ~title:"Fig 8: default machine parameters"
      ~header:[ "parameter"; "value" ] ~aligns:[ Table.Left; Table.Left ] ()
  in
  List.iter (fun (k, v) -> Table.add_row t [ k; v ]) (Config.describe Config.default);
  [ t ]

(* --- E3: compiler marking census --- *)

let census ?(small = false) ?jobs () =
  let results = Common.run_all ?jobs ~small () in
  let t =
    Table.create ~title:"Compiler reference marking census (static sites)"
      ~header:[ "bench"; "epochs"; "events"; "normal"; "time-read"; "bypass"; "max d" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun (r : Common.bench_result) ->
      let c = r.census in
      let maxd = List.fold_left (fun m (d, _) -> max m d) 0 c.distance_hist in
      Table.add_row t
        [
          r.bench;
          Table.fi r.trace_epochs;
          Table.fi r.trace_events;
          Table.fi c.normal_reads;
          Table.fi c.time_reads;
          Table.fi c.bypass_reads;
          Table.fi maxd;
        ])
    results;
  [ t ]

(* --- E4: Figure 11, miss rates --- *)

let fig11 ?(small = false) ?jobs () =
  let results = Common.run_all ?jobs ~small () in
  let t =
    Table.create ~title:"Fig 11: shared-data miss rates (64KB direct-mapped, 16B lines)"
      ~header:([ "bench" ] @ List.map Run.scheme_name Run.all_schemes)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) Run.all_schemes)
      ()
  in
  List.iter
    (fun (r : Common.bench_result) ->
      Table.add_row t
        (r.bench
        :: List.map
             (fun k -> pct (Metrics.miss_rate (Common.result_of r k).metrics))
             Run.all_schemes))
    results;
  Table.add_note t "BASE does not cache shared data: every reference is remote";
  [ t ]

(* --- E5: miss decomposition --- *)

let fig12 ?(small = false) ?jobs () =
  let results = Common.run_all ?jobs ~small () in
  let classes =
    [ Scheme.Cold; Scheme.Replacement; Scheme.True_sharing; Scheme.False_sharing;
      Scheme.Conservative; Scheme.Reset_inv ]
  in
  let table_for kind =
    let t =
      Table.create
        ~title:(Printf.sprintf "Fig 12 (%s): miss decomposition (%% of all accesses)" (Run.scheme_name kind))
        ~header:([ "bench" ] @ List.map Scheme.class_name classes @ [ "total miss" ])
        ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) classes @ [ Table.Right ])
        ()
    in
    List.iter
      (fun (r : Common.bench_result) ->
        let m = (Common.result_of r kind).metrics in
        let total = Metrics.accesses m in
        let cell cls = pct (Hscd_util.Stats.ratio (Metrics.class_count m cls) total) in
        Table.add_row t ((r.bench :: List.map cell classes) @ [ pct (Metrics.miss_rate m) ]))
      results;
    t
  in
  [ table_for Run.TPI; table_for Run.HW; table_for Run.SC ]

(* --- E6: average miss latency table, 16B vs 64B lines --- *)

let latency_table ?(small = false) ?jobs () =
  let run_with line_words =
    Common.run_all ?jobs ~cfg:{ Config.default with line_words } ~schemes:[ Run.TPI; Run.HW ] ~small ()
  in
  let r16 = run_with 4 and r64 = run_with 16 in
  let t =
    Table.create ~title:"Average read-miss latency (cycles): TPI vs HW, 16B vs 64B lines"
      ~header:[ "bench"; "TPI 16B"; "TPI 64B"; "HW 16B"; "HW 64B" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter2
    (fun (a : Common.bench_result) (b : Common.bench_result) ->
      let lat r k = f1 (Metrics.avg_read_miss_latency (Common.result_of r k).metrics) in
      Table.add_row t [ a.bench; lat a Run.TPI; lat b Run.TPI; lat a Run.HW; lat b Run.HW ])
    r16 r64;
  Table.add_note t "paper: TPI flat (~136 / ~355); HW inflated on QCD2, TRFD by coherence protocol";
  [ t ]

(* --- E7: network traffic breakdown --- *)

let traffic ?(small = false) ?jobs () =
  let results = Common.run_all ?jobs ~schemes:[ Run.SC; Run.TPI; Run.HW ] ~small () in
  let wc_results =
    Common.run_all ?jobs
      ~cfg:{ Config.default with write_buffer = Config.Write_cache 16 }
      ~schemes:[ Run.TPI ] ~small ()
  in
  let t =
    Table.create ~title:"Fig 13: network traffic (words): read / write / coherence"
      ~header:[ "bench"; "SC r/w"; "TPI r/w"; "TPI+wcache r/w"; "HW r/w/coh" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter2
    (fun (r : Common.bench_result) (wc : Common.bench_result) ->
      let tr k rr = (Common.result_of rr k).metrics.traffic in
      let sc = tr Run.SC r and tpi = tr Run.TPI r and hw = tr Run.HW r in
      let tpi_wc = tr Run.TPI wc in
      Table.add_row t
        [
          r.bench;
          Printf.sprintf "%d/%d" sc.reads sc.writes;
          Printf.sprintf "%d/%d" tpi.reads tpi.writes;
          Printf.sprintf "%d/%d" tpi_wc.reads tpi_wc.writes;
          Printf.sprintf "%d/%d/%d" hw.reads hw.writes hw.coherence;
        ])
    results wc_results;
  Table.add_note t "paper: TPI write traffic dominates on TRFD; a write cache removes the redundancy";
  [ t ]

(* --- E8: timetag size sensitivity --- *)

let timetag ?(small = false) ?jobs () =
  let bits = [ 2; 3; 4; 6; 8 ] in
  let t =
    Table.create ~title:"Timetag size sensitivity (TPI): miss rate / resets"
      ~header:([ "bench" ] @ List.map (fun b -> Printf.sprintf "%d-bit" b) bits)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) bits)
      ()
  in
  let per_bits =
    List.map
      (fun b ->
        Common.run_all ?jobs ~cfg:{ Config.default with timetag_bits = b } ~schemes:[ Run.TPI ] ~small ())
      bits
  in
  List.iteri
    (fun i (r0 : Common.bench_result) ->
      Table.add_row t
        (r0.bench
        :: List.map
             (fun results ->
               let r = List.nth results i in
               let m = (Common.result_of r Run.TPI).metrics in
               Printf.sprintf "%s (%d)" (pct (Metrics.miss_rate m))
                 m.scheme_stats.two_phase_resets)
             per_bits))
    (List.hd per_bits);
  Table.add_note t "paper: a 4-bit or 8-bit timetag is large enough";
  [ t ]

(* --- E9: normalized execution time --- *)

let exec_time ?(small = false) ?jobs () =
  let results = Common.run_all ?jobs ~small () in
  let t =
    Table.create ~title:"Normalized execution time (HW = 1.0)"
      ~header:([ "bench" ] @ List.map Run.scheme_name Run.all_schemes @ [ "HW cycles" ])
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) Run.all_schemes @ [ Table.Right ])
      ()
  in
  List.iter
    (fun (r : Common.bench_result) ->
      let hw = float_of_int (Common.result_of r Run.HW).cycles in
      Table.add_row t
        ((r.bench
         :: List.map
              (fun k -> Table.ff2 (float_of_int (Common.result_of r k).cycles /. hw))
              Run.all_schemes)
        @ [ Table.fi (Common.result_of r Run.HW).cycles ]))
    results;
  [ t ]

(* --- A1: write-cache ablation --- *)

let abl_write_cache ?(small = false) ?jobs () =
  let plain = Common.run_all ?jobs ~schemes:[ Run.TPI ] ~small () in
  let wc =
    Common.run_all ?jobs ~cfg:{ Config.default with write_buffer = Config.Write_cache 16 }
      ~schemes:[ Run.TPI ] ~small ()
  in
  let t =
    Table.create ~title:"Ablation: TPI write traffic with plain buffer vs 16-entry write cache"
      ~header:[ "bench"; "plain (words)"; "write cache (words)"; "reduction" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter2
    (fun (a : Common.bench_result) (b : Common.bench_result) ->
      let wa = (Common.result_of a Run.TPI).metrics.traffic.writes in
      let wb = (Common.result_of b Run.TPI).metrics.traffic.writes in
      Table.add_row t
        [ a.bench; Table.fi wa; Table.fi wb;
          pct (1.0 -. Hscd_util.Stats.ratio wb wa) ])
    plain wc;
  [ t ]

(* --- A2: owner-alignment (intertask locality) ablation --- *)

let abl_alignment ?(small = false) ?jobs () =
  let on = Common.run_all ?jobs ~schemes:[ Run.TPI ] ~small () in
  let off = Common.run_all ?jobs ~schemes:[ Run.TPI ] ~intertask:false ~small () in
  let t =
    Table.create ~title:"Ablation: TPI miss rate with/without owner-alignment analysis [21]"
      ~header:[ "bench"; "alignment on"; "alignment off" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      ()
  in
  List.iter2
    (fun (a : Common.bench_result) (b : Common.bench_result) ->
      Table.add_row t
        [
          a.bench;
          pct (Metrics.miss_rate (Common.result_of a Run.TPI).metrics);
          pct (Metrics.miss_rate (Common.result_of b Run.TPI).metrics);
        ])
    on off;
  [ t ]

(* --- A3: scheduling policy ablation --- *)

let abl_scheduling ?(small = false) ?jobs () =
  let policies = [ Config.Block; Config.Cyclic; Config.Dynamic ] in
  let per =
    List.map
      (fun s ->
        Common.run_all ?jobs ~cfg:{ Config.default with scheduling = s } ~schemes:[ Run.TPI ] ~small ())
      policies
  in
  let t =
    Table.create ~title:"Ablation: TPI vs DOALL scheduling (miss rate; alignment off for dynamic)"
      ~header:([ "bench" ] @ List.map Config.scheduling_name policies)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) policies)
      ()
  in
  List.iteri
    (fun i (r0 : Common.bench_result) ->
      Table.add_row t
        (r0.bench
        :: List.map
             (fun results ->
               let r = List.nth results i in
               let res = Common.result_of r Run.TPI in
               Printf.sprintf "%s%s" (pct (Metrics.miss_rate res.metrics))
                 (if res.metrics.violations > 0 then "!" else ""))
             per))
    (List.hd per);
  Table.add_note t "dynamic self-scheduling disables owner-alignment in the compiler (soundness)";
  [ t ]

(* --- A4: cache size sweep --- *)

let abl_cache_size ?(small = false) ?jobs () =
  let sizes = [ 2; 4; 8; 16; 64 ] in
  let per =
    List.map
      (fun kb ->
        Common.run_all ?jobs ~cfg:{ Config.default with cache_bytes = kb * 1024 }
          ~schemes:[ Run.TPI; Run.HW ] ~small ())
      sizes
  in
  let t =
    Table.create ~title:"Ablation: miss rate vs cache size (TPI / HW)"
      ~header:([ "bench" ] @ List.map (fun kb -> Printf.sprintf "%dKB" kb) sizes)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) sizes)
      ()
  in
  List.iteri
    (fun i (r0 : Common.bench_result) ->
      Table.add_row t
        (r0.bench
        :: List.map
             (fun results ->
               let r = List.nth results i in
               Printf.sprintf "%s / %s"
                 (pct (Metrics.miss_rate (Common.result_of r Run.TPI).metrics))
                 (pct (Metrics.miss_rate (Common.result_of r Run.HW).metrics)))
             per))
    (List.hd per);
  [ t ]

(* --- E0: workload characterization --- *)

let characterization ?(small = false) ?jobs:_ () =
  let t =
    Table.create ~title:"Benchmark characterization (evaluation-scale traces)"
      ~header:
        [ "bench"; "epochs"; "parallel"; "tasks"; "reads"; "writes"; "marked reads";
          "footprint"; "shared" ]
      ~aligns:
        (Table.Left :: List.init 8 (fun _ -> Table.Right))
      ()
  in
  List.iter
    (fun (e : Hscd_workloads.Perfect.entry) ->
      let prog = if small then e.build_small () else e.build () in
      let c = Run.compile prog in
      let s = Hscd_sim.Trace_stats.of_trace Config.default (Run.boxed_trace c) in
      Table.add_row t
        [
          e.name;
          Table.fi s.epochs;
          Table.fi s.parallel_epochs;
          Table.fi s.tasks;
          Table.fi s.reads;
          Table.fi s.writes;
          pct (Hscd_sim.Trace_stats.marked_read_fraction s);
          Table.fi s.footprint_words;
          pct (Hscd_sim.Trace_stats.sharing_fraction s);
        ])
    Hscd_workloads.Perfect.all;
  Table.add_note t "'marked reads' = Time-Read or Bypass; 'shared' = words touched by >1 processor";
  [ t ]

(* --- A5: associativity sweep --- *)

let abl_assoc ?(small = false) ?jobs () =
  let ways = [ 1; 2; 4 ] in
  let per =
    List.map
      (fun assoc ->
        Common.run_all ?jobs ~cfg:{ Config.default with assoc } ~schemes:[ Run.TPI; Run.HW ] ~small ())
      ways
  in
  let t =
    Table.create ~title:"Ablation: miss rate vs associativity (TPI / HW)"
      ~header:([ "bench" ] @ List.map (fun w -> Printf.sprintf "%d-way" w) ways)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) ways)
      ()
  in
  List.iteri
    (fun i (r0 : Common.bench_result) ->
      Table.add_row t
        (r0.bench
        :: List.map
             (fun results ->
               let r = List.nth results i in
               Printf.sprintf "%s / %s"
                 (pct (Metrics.miss_rate (Common.result_of r Run.TPI).metrics))
                 (pct (Metrics.miss_rate (Common.result_of r Run.HW).metrics)))
             per))
    (List.hd per);
  Table.add_note t "on these working sets conflict misses are rare at 64KB: associativity moves little";
  [ t ]

(* --- X1: the HSCD family tree (extension) --- *)

let family ?(small = false) ?jobs () =
  let schemes = Run.extended_schemes in
  let results = Common.run_all ?jobs ~schemes ~small () in
  let t =
    Table.create
      ~title:"Extension: the compiler-directed family — INV [35], VC [14] vs SC/TPI (miss rate)"
      ~header:([ "bench" ] @ List.map Run.scheme_name schemes)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) schemes)
      ()
  in
  List.iter
    (fun (r : Common.bench_result) ->
      Table.add_row t
        (r.bench
        :: List.map (fun k -> pct (Metrics.miss_rate (Common.result_of r k).metrics)) schemes))
    results;
  Table.add_note t "INV invalidates everything at each boundary; VC tracks per-array versions;";
  Table.add_note t "TPI adds per-word epoch distances: each step recovers more locality.";
  [ t ]

(* --- X2: consistency model (the paper's footnote 11) --- *)

let consistency ?(small = false) ?jobs () =
  let weak = Common.run_all ?jobs ~schemes:[ Run.TPI; Run.HW ] ~small () in
  let seq =
    Common.run_all ?jobs ~cfg:{ Config.default with consistency = Config.Sequential }
      ~schemes:[ Run.TPI; Run.HW ] ~small ()
  in
  let t =
    Table.create ~title:"Extension: weak vs sequential consistency (execution cycles)"
      ~header:[ "bench"; "TPI weak"; "TPI seq"; "TPI slowdown"; "HW weak"; "HW seq"; "HW slowdown" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter2
    (fun (a : Common.bench_result) (b : Common.bench_result) ->
      let cyc r k = (Common.result_of r k).Hscd_sim.Engine.cycles in
      let slow k = Table.ff2 (float_of_int (cyc b k) /. float_of_int (max 1 (cyc a k))) in
      Table.add_row t
        [
          a.bench;
          Table.fi (cyc a Run.TPI); Table.fi (cyc b Run.TPI); slow Run.TPI;
          Table.fi (cyc a Run.HW); Table.fi (cyc b Run.HW); slow Run.HW;
        ])
    weak seq;
  Table.add_note t "paper, fn. 11: under SC both reads and writes stall on coherence transactions;";
  Table.add_note t "write-through TPI is hit harder than the write-back directory.";
  [ t ]

(* --- X3: task migration (Section 5) --- *)

let migration ?(small = false) ?jobs () =
  let rates = [ 0.0; 0.2; 0.5 ] in
  let per =
    List.map
      (fun migration_rate ->
        Common.run_all ?jobs
          ~cfg:{ Config.default with scheduling = Config.Dynamic; migration_rate }
          ~schemes:[ Run.TPI ] ~small ())
      rates
  in
  let t =
    Table.create
      ~title:"Extension: TPI under dynamic scheduling with mid-task migration (miss rate / migrations)"
      ~header:([ "bench" ] @ List.map (fun r -> Printf.sprintf "rate %.1f" r) rates)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) rates)
      ()
  in
  List.iteri
    (fun i (r0 : Common.bench_result) ->
      Table.add_row t
        (r0.bench
        :: List.map
             (fun results ->
               let r = List.nth results i in
               let res = Common.result_of r Run.TPI in
               Printf.sprintf "%s (%d)%s"
                 (pct (Metrics.miss_rate res.metrics))
                 res.metrics.migrations
                 (if res.metrics.violations > 0 then "!" else ""))
             per))
    (List.hd per);
  Table.add_note t "marks are compiled without owner-alignment, so migration stays coherent ('!' would flag a violation)";
  [ t ]

(* --- registry --- *)

let all : t list =
  [
    { id = "fig5"; title = "Storage overhead"; paper_ref = "Figure 5"; run = fig5 };
    { id = "fig8"; title = "Machine parameters"; paper_ref = "Figure 8"; run = fig8 };
    { id = "census"; title = "Compiler marking census"; paper_ref = "Section 2 statistics"; run = census };
    { id = "workloads"; title = "Benchmark characterization"; paper_ref = "Section 4 methodology"; run = characterization };
    { id = "fig11"; title = "Miss rates"; paper_ref = "Figure 11"; run = fig11 };
    { id = "fig12"; title = "Miss decomposition"; paper_ref = "Figure 12 area"; run = fig12 };
    { id = "latency"; title = "Average miss latency"; paper_ref = "Miss-latency table"; run = latency_table };
    { id = "traffic"; title = "Network traffic"; paper_ref = "Figure 13 area"; run = traffic };
    { id = "timetag"; title = "Timetag size sensitivity"; paper_ref = "Section 4"; run = timetag };
    { id = "exectime"; title = "Normalized execution time"; paper_ref = "Section 4"; run = exec_time };
    { id = "wcache"; title = "Write-cache ablation"; paper_ref = "refs [9,10]"; run = abl_write_cache };
    { id = "alignment"; title = "Owner-alignment ablation"; paper_ref = "ref [21]"; run = abl_alignment };
    { id = "scheduling"; title = "Scheduling ablation"; paper_ref = "Section 5"; run = abl_scheduling };
    { id = "cachesize"; title = "Cache size sweep"; paper_ref = "ablation"; run = abl_cache_size };
    { id = "assoc"; title = "Associativity sweep"; paper_ref = "ablation"; run = abl_assoc };
    { id = "family"; title = "HSCD scheme family"; paper_ref = "refs [35,14,2]"; run = family };
    { id = "consistency"; title = "Weak vs sequential consistency"; paper_ref = "footnote 11"; run = consistency };
    { id = "migration"; title = "Task migration"; paper_ref = "Section 5"; run = migration };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_and_print ?small ?jobs (e : t) =
  Printf.printf "### [%s] %s (%s)\n\n" e.id e.title e.paper_ref;
  List.iter Table.print (e.run ?small ?jobs ())
