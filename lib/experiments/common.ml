(** Shared infrastructure for the experiment harness: runs every benchmark
    under every scheme for a given machine configuration, memoizing results
    so experiments that share a configuration do not re-simulate. *)

module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Metrics = Hscd_sim.Metrics
module Trace = Hscd_sim.Trace
module Perfect = Hscd_workloads.Perfect

type bench_result = {
  bench : string;
  census : Hscd_compiler.Marking.census;
  trace_epochs : int;
  trace_events : int;
  by_scheme : (Run.scheme_kind * Hscd_sim.Engine.result) list;
}

let cfg_key (c : Config.t) ~intertask ~small =
  Printf.sprintf "p%d-c%d-a%d-l%d-t%d-%s-%s-%s-m%.2f-%b-%b" c.processors c.cache_bytes c.assoc
    c.line_words c.timetag_bits
    (Config.scheduling_name c.scheduling)
    (match c.write_buffer with Config.Plain_buffer -> "plain" | Config.Write_cache n -> Printf.sprintf "wc%d" n)
    (Config.consistency_name c.consistency)
    c.migration_rate intertask small

let cache : (string, bench_result list) Hashtbl.t = Hashtbl.create 16

(* Tail-recursive split into chunks of [n] (the sim grid can be large). *)
let chunk n xs =
  if n <= 0 then invalid_arg "Common.chunk";
  let take n xs =
    let rec go n acc = function
      | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    go n [] xs
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
      let h, t = take n xs in
      go (h :: acc) t
  in
  go [] xs

(** Run all six Perfect Club models under [schemes] with [cfg]. [small]
    selects the test-scale versions. [jobs] (default 1) fans the
    bench × scheme simulation grid out over that many domains; every
    simulation owns its machine state, so results are bit-identical to the
    sequential run (the memo cache key therefore ignores [jobs]).

    Compilation goes through {!Run.compile}'s cache, so a sweep varying
    only timing-side knobs generates each model's trace exactly once. *)
let run_all ?(cfg = Config.default) ?(schemes = Run.all_schemes) ?(intertask = true)
    ?(small = false) ?jobs () =
  (* scheme names are joined with a separator — bare concatenation would
     let distinct scheme lists collide on one memo key *)
  let key =
    cfg_key cfg ~intertask ~small ^ "|" ^ String.concat "+" (List.map Run.scheme_name schemes)
  in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    (* compile sequentially (cached and cheap), then simulate the whole
       grid in parallel: 6 benches x |schemes| independent engine runs *)
    let compiled =
      List.map
        (fun (e : Perfect.entry) ->
          let prog = if small then e.build_small () else e.build () in
          (e.name, Run.compile ~cfg ~intertask prog))
        Perfect.all
    in
    let grid =
      List.concat_map (fun (_, c) -> List.map (fun k -> (c, k)) schemes) compiled
    in
    let sims =
      Hscd_util.Pool.map ?jobs
        (fun ((c : Run.compiled), kind) -> Run.simulate_packed ~cfg kind c.packed_trace)
        grid
    in
    let results =
      List.map2
        (fun (name, (c : Run.compiled)) by ->
          {
            bench = name;
            census = c.census;
            trace_epochs = Trace.packed_n_epochs c.packed_trace;
            trace_events = c.packed_trace.Trace.p_total_events;
            by_scheme = List.combine schemes by;
          })
        compiled
        (chunk (List.length schemes) sims)
    in
    Hashtbl.replace cache key results;
    results

let result_of r kind = List.assoc kind r.by_scheme

(** Assert-style check used by every experiment: schemes must be coherent. *)
let all_correct results =
  List.for_all
    (fun r ->
      List.for_all
        (fun (_, (e : Hscd_sim.Engine.result)) -> e.memory_ok && e.metrics.violations = 0)
        r.by_scheme)
    results
