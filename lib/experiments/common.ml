(** Shared infrastructure for the experiment harness: runs every benchmark
    under every scheme for a given machine configuration, memoizing results
    so experiments that share a configuration do not re-simulate. *)

module Config = Hscd_arch.Config
module Run = Hscd_sim.Run
module Metrics = Hscd_sim.Metrics
module Trace = Hscd_sim.Trace
module Perfect = Hscd_workloads.Perfect
module Err = Hscd_util.Hscd_error
module Pool = Hscd_util.Pool
module Journal = Hscd_util.Journal

type bench_result = {
  bench : string;
  census : Hscd_compiler.Marking.census;
  trace_epochs : int;
  trace_events : int;
  by_scheme : (Run.scheme_kind * Hscd_sim.Engine.result) list;
}

let cfg_key (c : Config.t) ~intertask ~small =
  Printf.sprintf "p%d-c%d-a%d-l%d-t%d-%s-%s-%s-m%.2f-%b-%b" c.processors c.cache_bytes c.assoc
    c.line_words c.timetag_bits
    (Config.scheduling_name c.scheduling)
    (match c.write_buffer with Config.Plain_buffer -> "plain" | Config.Write_cache n -> Printf.sprintf "wc%d" n)
    (Config.consistency_name c.consistency)
    c.migration_rate intertask small

let cache : (string, bench_result list) Hashtbl.t = Hashtbl.create 16

(* Tail-recursive split into chunks of [n] (the sim grid can be large). *)
let chunk n xs =
  if n <= 0 then invalid_arg "Common.chunk";
  let take n xs =
    let rec go n acc = function
      | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    go n [] xs
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
      let h, t = take n xs in
      go (h :: acc) t
  in
  go [] xs

(* ------------------------------------------------------------------ *)
(* Supervised sweep with checkpoint-resume: the crash-tolerant variant  *)
(* of [run_all]. Each (bench, scheme) cell of the simulation grid is    *)
(* one supervised-pool task; completed cells are journaled (marshalled  *)
(* [Engine.result]) as they finish, so an interrupted sweep rerun with  *)
(* the same [checkpoint] path re-simulates only the missing cells and   *)
(* reproduces the full result bit-identically.                          *)
(* ------------------------------------------------------------------ *)

let decode_cell payload =
  match (Marshal.from_string payload 0 : Hscd_sim.Engine.result) with
  | r -> Some r
  | exception _ -> None

(** Crash-tolerant [run_all]. [policy] governs per-cell retry/timeout
    (default: {!Hscd_util.Pool.default_policy}); [checkpoint] enables
    journaling + resume; [inject] is the chaos harness's hook, called at
    the start of every cell attempt (so injected crashes and hangs
    exercise the retry path). Results are not memoized — the journal is
    the cache. On [Error], the journal still holds every completed cell. *)
let run_all_result ?(cfg = Config.default) ?(schemes = Run.all_schemes) ?(intertask = true)
    ?(small = false) ?jobs ?(policy = Pool.default_policy) ?checkpoint
    ?(inject : (bench:string -> kind:Run.scheme_kind -> unit) option) () =
  let compiled =
    List.fold_left
      (fun acc (e : Perfect.entry) ->
        match acc with
        | Error _ as err -> err
        | Ok done_ -> (
          let prog = if small then e.build_small () else e.build () in
          match Run.compile_result ~cfg ~intertask prog with
          | Ok c -> Ok ((e.name, c) :: done_)
          | Error err -> Error (Err.add_context ("compile " ^ e.name) err)))
      (Ok []) Perfect.all
    |> Result.map List.rev
  in
  match compiled with
  | Error e -> Error e
  | Ok compiled ->
    let sweep_id = cfg_key cfg ~intertask ~small in
    let key bench (c : Run.compiled) kind =
      Printf.sprintf "sweep|%s|%s|%s|%s" sweep_id bench
        (Digest.to_hex (Digest.string (Hscd_lang.Printer.program_to_string c.marked)))
        (Run.scheme_name kind)
    in
    let with_journal k =
      match checkpoint with
      | None -> k None []
      | Some path -> (
        match Journal.open_append path with
        | Error e -> Error (Err.add_context "checkpoint" e)
        | Ok j ->
          Fun.protect ~finally:(fun () -> Journal.close j) (fun () ->
              k (Some j) (Journal.entries j)))
    in
    with_journal @@ fun journal entries ->
    let prior = Hashtbl.create 64 in
    List.iter (fun (k, payload) -> Hashtbl.replace prior k payload) entries;
    let prior_cell bench c kind =
      Option.bind (Hashtbl.find_opt prior (key bench c kind)) decode_cell
    in
    let grid =
      List.concat_map (fun (name, c) -> List.map (fun kind -> (name, c, kind)) schemes) compiled
    in
    let todo = List.filter (fun (name, c, kind) -> prior_cell name c kind = None) grid in
    let todo_arr = Array.of_list todo in
    let outcomes, _stats =
      Pool.supervise ?jobs ~policy
        ~on_done:(fun i oc ->
          match (journal, oc) with
          | Some j, Pool.Done (r : Hscd_sim.Engine.result) ->
            let name, c, kind = todo_arr.(i) in
            Journal.append j ~key:(key name c kind) (Marshal.to_string r [])
          | _ -> ())
        (fun (name, (c : Run.compiled), kind) ->
          (match inject with Some f -> f ~bench:name ~kind | None -> ());
          Run.simulate_packed ~cfg kind c.packed_trace)
        todo
    in
    let fresh = Hashtbl.create 64 in
    List.iteri
      (fun i oc ->
        let name, c, kind = todo_arr.(i) in
        Hashtbl.replace fresh (key name c kind) oc)
      outcomes;
    let cell name c kind =
      let ctx = Printf.sprintf "cell %s/%s" name (Run.scheme_name kind) in
      match Hashtbl.find_opt fresh (key name c kind) with
      | Some (Pool.Done r) -> Ok r
      | Some (Pool.Failed e) -> Error (Err.add_context ctx e)
      | Some (Pool.Timed_out s) ->
        Err.error ~context:[ ctx ] Err.Timeout "simulation gave up after %.1fs" s
      | None -> (
        match prior_cell name c kind with
        | Some r -> Ok r
        | None -> Err.error ~context:[ ctx ] Err.Internal "missing cell")
    in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | (name, (c : Run.compiled)) :: rest -> (
        let rec row acc_row = function
          | [] -> Ok (List.rev acc_row)
          | kind :: ks -> (
            match cell name c kind with
            | Ok r -> row ((kind, r) :: acc_row) ks
            | Error e -> Error e)
        in
        match row [] schemes with
        | Error e -> Error e
        | Ok by_scheme ->
          collect
            ({
               bench = name;
               census = c.census;
               trace_epochs = Trace.packed_n_epochs c.packed_trace;
               trace_events = c.packed_trace.Trace.p_total_events;
               by_scheme;
             }
             :: acc)
            rest)
    in
    collect [] compiled


(** Ambient supervision setting: when set (the CLI's [--resume]), every
    {!run_all} routes through {!run_all_result} with this retry policy
    and checkpoint journal, so all experiments become crash-tolerant and
    resumable without threading parameters through each table builder. *)
let supervision : (Pool.policy * string option) option ref = ref None

let set_supervision ?(policy = Pool.default_policy) ?checkpoint () =
  supervision := Some (policy, checkpoint)

let clear_supervision () = supervision := None

(** Run all six Perfect Club models under [schemes] with [cfg]. [small]
    selects the test-scale versions. [jobs] (default 1) fans the
    bench × scheme simulation grid out over that many domains; every
    simulation owns its machine state, so results are bit-identical to the
    sequential run (the memo cache key therefore ignores [jobs]).

    Compilation goes through {!Run.compile}'s cache, so a sweep varying
    only timing-side knobs generates each model's trace exactly once.

    With {!set_supervision} active the grid runs on the supervised pool
    (retry/timeout, checkpoint-resume); a terminal failure raises
    {!Hscd_util.Hscd_error.Error}. Results are bit-identical either way. *)
let run_all ?(cfg = Config.default) ?(schemes = Run.all_schemes) ?(intertask = true)
    ?(small = false) ?jobs () =
  (* scheme names are joined with a separator — bare concatenation would
     let distinct scheme lists collide on one memo key *)
  let key =
    cfg_key cfg ~intertask ~small ^ "|" ^ String.concat "+" (List.map Run.scheme_name schemes)
  in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let results =
      match !supervision with
      | Some (policy, checkpoint) ->
        Err.get_exn (run_all_result ~cfg ~schemes ~intertask ~small ?jobs ~policy ?checkpoint ())
      | None ->
        (* fast path: compile sequentially (cached and cheap), then
           simulate the whole grid in parallel on the lock-free pool:
           6 benches x |schemes| independent engine runs *)
        let compiled =
          List.map
            (fun (e : Perfect.entry) ->
              let prog = if small then e.build_small () else e.build () in
              (e.name, Run.compile ~cfg ~intertask prog))
            Perfect.all
        in
        let grid =
          List.concat_map (fun (_, c) -> List.map (fun k -> (c, k)) schemes) compiled
        in
        let sims =
          Pool.map_exn ?jobs
            (fun ((c : Run.compiled), kind) -> Run.simulate_packed ~cfg kind c.packed_trace)
            grid
        in
        List.map2
          (fun (name, (c : Run.compiled)) by ->
            {
              bench = name;
              census = c.census;
              trace_epochs = Trace.packed_n_epochs c.packed_trace;
              trace_events = c.packed_trace.Trace.p_total_events;
              by_scheme = List.combine schemes by;
            })
          compiled
          (chunk (List.length schemes) sims)
    in
    Hashtbl.replace cache key results;
    results

let result_of r kind = List.assoc kind r.by_scheme

(** Assert-style check used by every experiment: schemes must be coherent. *)
let all_correct results =
  List.for_all
    (fun r ->
      List.for_all
        (fun (_, (e : Hscd_sim.Engine.result)) -> e.memory_ok && e.metrics.violations = 0)
        r.by_scheme)
    results
