(** Reference interpreter for PFL: the sequential golden memory model and,
    through the hooks, the execution-driven trace generator.

    Execution alternates [Serial] and [Parallel] epochs; DOALL iterations
    must be independent outside critical sections ([check_races] verifies
    this). Scalars are task-private; arrays live in a flat word-addressed
    store. *)

exception Runtime_error of string

exception Data_race of string

type value = int

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type hooks = {
  on_init : Shape.layout -> unit;
      (** called once, before the first epoch, with the address map the run
          uses — trace builders seed their interners from it *)
  on_epoch_begin : epoch_kind -> unit;
  on_epoch_end : unit -> unit;
  on_task_begin : iter:int -> unit;
      (** [iter] is the iteration's index value; [0] for a serial task *)
  on_task_end : unit -> unit;
  on_read : array:string -> addr:int -> value:value -> mark:Ast.rmark -> unit;
  on_write : array:string -> addr:int -> value:value -> mark:Ast.wmark -> unit;
  on_work : int -> unit;
  on_lock : unit -> unit;
  on_unlock : unit -> unit;
}

val null_hooks : hooks

(** Deterministic value of a [blackbox] call (stable across runs and
    platforms). Non-negative. *)
val blackbox_value : string -> int list -> int

type result = {
  final_memory : value array;
  layout : Shape.layout;
  epochs : int;  (** number of epochs executed (counting the serial ones) *)
}

(** Execute a sema-checked program. [line_words] controls array padding in
    the address map and must match the simulated machine. [max_steps]
    bounds statement executions (raises {!Runtime_error} beyond it). *)
val run :
  ?hooks:hooks ->
  ?check_races:bool ->
  ?max_steps:int ->
  ?line_words:int ->
  Ast.program ->
  result

(** Read an element of the final memory, for tests and examples. *)
val peek : result -> string -> int list -> value
