(** Array shapes and the global flat (word-addressed) address map. *)

type t = {
  name : string;
  dims : int list;
  size : int;  (** total words *)
  base : int;  (** first word address *)
}

type layout = { arrays : (string, t) Hashtbl.t; total_words : int }

(** Total words of an array with the given dimensions; raises
    [Invalid_argument] on empty or non-positive dimensions. *)
val size_of_dims : int list -> int

(** Build the address map; arrays are padded to a line multiple so two
    arrays never share a cache line. *)
val layout : ?line_words:int -> Ast.decl list -> layout

(** Raises [Invalid_argument] for unknown arrays. *)
val find : layout -> string -> t

val mem : layout -> string -> bool

(** Row-major flattening with bounds checking. *)
val flatten : t -> int list -> int

(** Word address of an element. *)
val address : layout -> string -> int list -> int

(** [address1 l a i] = [address l a [i]] without allocating the index
    list; [address2] likewise for two subscripts. Same bounds checking. *)
val address1 : layout -> string -> int -> int

val address2 : layout -> string -> int -> int -> int

(** Which array (and flat offset) owns a word address; [None] on padding. *)
val owner : layout -> int -> (t * int) option

(** Arrays sorted by base address. *)
val arrays_in_order : layout -> t list
