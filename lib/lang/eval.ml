(** Reference interpreter for PFL.

    This is the single execution engine of the reproduction: run with null
    hooks it is the sequential golden memory model; run with instrumented
    hooks (see [Hscd_sim.Trace]) it generates the per-processor memory-event
    streams for execution-driven simulation, as in the paper's tooling [32].

    Execution model: the program runs as an alternating sequence of epochs —
    [Serial] (the code between parallel loops, executed as one task) and
    [Parallel] (one dynamic DOALL instance, one task per iteration). Every
    epoch is delimited by [on_epoch_begin]/[on_epoch_end]; tasks by
    [on_task_begin]/[on_task_end]. DOALL iterations must be independent:
    with [check_races] enabled the interpreter verifies that no two tasks of
    an epoch conflict on a memory word outside critical sections, which is
    the correctness contract the paper's compiler relies on. *)

exception Runtime_error of string

exception Data_race of string

let runtime_errorf fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type value = int

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type hooks = {
  on_init : Shape.layout -> unit;
      (** called once, before the first epoch, with the address map the run
          uses — trace builders seed their interners from it *)
  on_epoch_begin : epoch_kind -> unit;
  on_epoch_end : unit -> unit;
  on_task_begin : iter:int -> unit;
      (** [iter] is the iteration's index value; [0] for a serial task *)
  on_task_end : unit -> unit;
  on_read : array:string -> addr:int -> value:value -> mark:Ast.rmark -> unit;
  on_write : array:string -> addr:int -> value:value -> mark:Ast.wmark -> unit;
  on_work : int -> unit;
  on_lock : unit -> unit;
  on_unlock : unit -> unit;
}

let null_hooks =
  {
    on_init = (fun _ -> ());
    on_epoch_begin = (fun _ -> ());
    on_epoch_end = (fun () -> ());
    on_task_begin = (fun ~iter:_ -> ());
    on_task_end = (fun () -> ());
    on_read = (fun ~array:_ ~addr:_ ~value:_ ~mark:_ -> ());
    on_write = (fun ~array:_ ~addr:_ ~value:_ ~mark:_ -> ());
    on_work = (fun _ -> ());
    on_lock = (fun () -> ());
    on_unlock = (fun () -> ());
  }

(* --- deterministic blackbox functions --- *)

(* A fixed avalanche mixer: the same (name, args) always yields the same
   non-negative value, across runs and platforms. *)
let blackbox_value name args =
  let mix h v =
    let h = h lxor (v * 0x9E3779B1) in
    let h = (h lxor (h lsr 16)) * 0x85EBCA6B in
    (h lxor (h lsr 13)) land max_int
  in
  let h0 = String.fold_left (fun h c -> mix h (Char.code c)) 0x12345 name in
  List.fold_left mix h0 args

(* --- per-epoch data-race bookkeeping --- *)

module Races = struct
  (* For each word we remember up to two distinct non-critical readers, the
     last non-critical writer, and the same for critical accesses. Two
     distinct readers are enough: any subsequent writer conflicts with at
     least one of them.

     The table is direct-mapped over the flat address space (every access
     is already bounds-checked against the layout), with a per-word epoch
     stamp instead of per-epoch clearing: a stale stamp means "no accesses
     recorded yet this epoch". This runs on every memory access, so it
     must neither hash nor allocate; task ids are iteration ranks (>= 0),
     so -1 serves as "none". *)
  type t = {
    stamp : int array;  (** last epoch that touched this word; 0 = never *)
    nc_r1 : int array;
    nc_r2 : int array;
    nc_w : int array;
    cr_r1 : int array;
    cr_r2 : int array;
    cr_w : int array;
    mutable epoch : int;  (** current epoch stamp, monotonically increasing *)
    enabled : bool;
  }

  let create enabled ~words =
    let n = if enabled then max 1 words else 1 in
    {
      stamp = Array.make n 0;
      nc_r1 = Array.make n (-1);
      nc_r2 = Array.make n (-1);
      nc_w = Array.make n (-1);
      cr_r1 = Array.make n (-1);
      cr_r2 = Array.make n (-1);
      cr_w = Array.make n (-1);
      epoch = 1;
      enabled;
    }

  let reset t = t.epoch <- t.epoch + 1

  let race array addr kind a b =
    raise
      (Data_race
         (Printf.sprintf "data race on %s (word %d): %s by tasks %d and %d in the same epoch"
            array addr kind a b))

  (* first recorded reader that isn't [task]; at most two distinct ids
     are kept, so two checks cover every case *)
  let[@inline] other_reader task r1 r2 = if r1 >= 0 && r1 <> task then r1 else if r2 >= 0 && r2 <> task then r2 else -1

  let[@inline] add_reader r1 r2 addr task =
    if r1.(addr) <> task && r2.(addr) <> task then begin
      if r1.(addr) < 0 then r1.(addr) <- task
      else if r2.(addr) < 0 then r2.(addr) <- task
    end

  let record t ~array ~addr ~task ~is_write ~in_critical =
    if t.enabled then begin
      if t.stamp.(addr) <> t.epoch then begin
        t.stamp.(addr) <- t.epoch;
        t.nc_r1.(addr) <- -1;
        t.nc_r2.(addr) <- -1;
        t.nc_w.(addr) <- -1;
        t.cr_r1.(addr) <- -1;
        t.cr_r2.(addr) <- -1;
        t.cr_w.(addr) <- -1
      end;
      if in_critical then begin
        (* critical accesses are mutually synchronized, but still conflict
           with non-critical accesses from other tasks *)
        let w = t.nc_w.(addr) in
        if w >= 0 && w <> task then
          race array addr "critical access vs. unsynchronized write" task w;
        if is_write then begin
          let r = other_reader task t.nc_r1.(addr) t.nc_r2.(addr) in
          if r >= 0 then race array addr "critical write vs. unsynchronized read" task r;
          t.cr_w.(addr) <- task
        end
        else add_reader t.cr_r1 t.cr_r2 addr task
      end
      else begin
        let w = t.cr_w.(addr) in
        if w >= 0 && w <> task then
          race array addr "unsynchronized access vs. critical write" task w;
        let w = t.nc_w.(addr) in
        if w >= 0 && w <> task then
          race array addr (if is_write then "write/write" else "read/write") task w;
        if is_write then begin
          let r = other_reader task t.nc_r1.(addr) t.nc_r2.(addr) in
          if r >= 0 then race array addr "write/read" task r;
          let r = other_reader task t.cr_r1.(addr) t.cr_r2.(addr) in
          if r >= 0 then race array addr "unsynchronized write vs. critical read" task r;
          t.nc_w.(addr) <- task
        end
        else add_reader t.nc_r1 t.nc_r2 addr task
      end
    end
end

(* --- interpreter state --- *)


type state = {
  program : Ast.program;
  layout : Shape.layout;
  memory : value array;
  hooks : hooks;
  races : Races.t;
  mutable task : int;  (** current task id within the epoch (= iteration rank) *)
  mutable in_parallel : bool;
  mutable in_critical : bool;
  mutable steps : int;
  max_steps : int;
  mutable epochs_executed : int;
}

let bump_steps st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then
    runtime_errorf "execution exceeded %d steps (non-terminating program?)" st.max_steps

let lookup env v =
  match Hashtbl.find env v with
  | x -> x
  | exception Not_found -> runtime_errorf "scalar %s used before definition" v

(* --- expression evaluation --- *)

let apply_binop op a b =
  match (op : Ast.binop) with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then runtime_errorf "division by zero" else a / b
  | Mod ->
    if b = 0 then runtime_errorf "mod by zero"
    else
      (* mathematical (non-negative) remainder so subscripts stay valid *)
      let r = a mod b in
      if r < 0 then r + abs b else r
  | Min -> min a b
  | Max -> max a b

let rec eval_expr st env (e : Ast.expr) =
  match e with
  | Int n -> n
  | Var v -> lookup env v
  | Neg e -> -eval_expr st env e
  | Binop (op, l, r) ->
    let a = eval_expr st env l in
    let b = eval_expr st env r in
    apply_binop op a b
  | Blackbox (name, args) -> blackbox_value name (List.map (eval_expr st env) args)
  (* one and two subscripts are the common shapes; addressing them
     directly skips the per-access closure and index list of the general
     case (the dominant allocation when generating traces) *)
  | Aref (a, [ ie ], mark) ->
    let i = eval_expr st env ie in
    let addr =
      try Shape.address1 st.layout a i with Invalid_argument m -> raise (Runtime_error m)
    in
    finish_read st a addr mark
  | Aref (a, [ ie; je ], mark) ->
    let i = eval_expr st env ie in
    let j = eval_expr st env je in
    let addr =
      try Shape.address2 st.layout a i j with Invalid_argument m -> raise (Runtime_error m)
    in
    finish_read st a addr mark
  | Aref (a, idx, mark) ->
    let indices = List.map (eval_expr st env) idx in
    let addr =
      try Shape.address st.layout a indices
      with Invalid_argument m -> raise (Runtime_error m)
    in
    finish_read st a addr mark

and finish_read st a addr mark =
  (* a serial epoch runs as a single task, so no cross-task race is
     possible, and the table is reset on parallel-epoch entry — recording
     only inside parallel epochs is observationally identical *)
  if st.in_parallel then
    Races.record st.races ~array:a ~addr ~task:st.task ~is_write:false
      ~in_critical:st.in_critical;
  let value = st.memory.(addr) in
  let mark =
    match mark with Ast.Unmarked when st.in_critical -> Ast.Bypass_read | m -> m
  in
  st.hooks.on_read ~array:a ~addr ~value ~mark;
  value

let rec eval_cond st env (c : Ast.cond) =
  match c with
  | Cmp (op, l, r) ->
    let a = eval_expr st env l in
    let b = eval_expr st env r in
    (match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b)
  | And (a, b) -> eval_cond st env a && eval_cond st env b
  | Or (a, b) -> eval_cond st env a || eval_cond st env b
  | Not c -> not (eval_cond st env c)

(* --- statement execution --- *)

(* Can executing [s] mutate the enclosing scalar environment? A CALL runs
   in a fresh callee environment and a nested DO restores its own index,
   so only a reachable ASSIGN counts. Used to decide whether DOALL tasks
   need private environment copies. *)
let rec stmt_assigns_scalar (s : Ast.stmt) =
  match s with
  | Assign _ -> true
  | Store _ | Work _ | Call _ -> false
  | If (_, t, e) -> List.exists stmt_assigns_scalar t || List.exists stmt_assigns_scalar e
  | Critical body | Do { body; _ } -> List.exists stmt_assigns_scalar body
  | Doall _ -> true

(* subscripts evaluate before the stored value, and the address check
   happens after both — the same observable order (and hook stream) as
   the general [Store] case below *)
let finish_write st a addr value mark =
  if st.in_parallel then
    Races.record st.races ~array:a ~addr ~task:st.task ~is_write:true
      ~in_critical:st.in_critical;
  st.memory.(addr) <- value;
  let mark =
    match mark with Ast.Normal_write when st.in_critical -> Ast.Bypass_write | m -> m
  in
  st.hooks.on_write ~array:a ~addr ~value ~mark

let rec exec_stmts st env stmts =
  match stmts with
  | [] -> ()
  | s :: rest ->
    exec_stmt st env s;
    exec_stmts st env rest

and exec_stmt st env (s : Ast.stmt) =
  bump_steps st;
  match s with
  | Assign (v, e) -> Hashtbl.replace env v (eval_expr st env e)
  | Store (a, [ ie ], e, mark) ->
    let i = eval_expr st env ie in
    let value = eval_expr st env e in
    let addr =
      try Shape.address1 st.layout a i with Invalid_argument m -> raise (Runtime_error m)
    in
    finish_write st a addr value mark
  | Store (a, [ ie; je ], e, mark) ->
    let i = eval_expr st env ie in
    let j = eval_expr st env je in
    let value = eval_expr st env e in
    let addr =
      try Shape.address2 st.layout a i j with Invalid_argument m -> raise (Runtime_error m)
    in
    finish_write st a addr value mark
  | Store (a, idx, e, mark) ->
    let indices = List.map (eval_expr st env) idx in
    let value = eval_expr st env e in
    let addr =
      try Shape.address st.layout a indices
      with Invalid_argument m -> raise (Runtime_error m)
    in
    finish_write st a addr value mark
  | Work e ->
    let n = eval_expr st env e in
    if n < 0 then runtime_errorf "work with negative cycle count %d" n;
    st.hooks.on_work n
  | If (c, t, e) -> if eval_cond st env c then exec_stmts st env t else exec_stmts st env e
  | Critical body ->
    if st.in_critical then runtime_errorf "nested critical sections are not allowed";
    st.hooks.on_lock ();
    st.in_critical <- true;
    (try exec_stmts st env body
     with exn ->
       st.in_critical <- false;
       raise exn);
    st.in_critical <- false;
    st.hooks.on_unlock ()
  | Call (name, args) ->
    let callee =
      match Ast.find_proc st.program name with
      | Some p -> p
      | None -> runtime_errorf "call to undefined procedure %s" name
    in
    let values = List.map (eval_expr st env) args in
    let callee_env = Hashtbl.create 16 in
    (try List.iter2 (fun p v -> Hashtbl.replace callee_env p v) callee.params values
     with Invalid_argument _ ->
       runtime_errorf "%s expects %d arguments, got %d" name (List.length callee.params)
         (List.length values));
    exec_stmts st callee_env callee.body
  | Do { index; lo; hi; body } ->
    let lo = eval_expr st env lo and hi = eval_expr st env hi in
    let saved = Hashtbl.find_opt env index in
    for i = lo to hi do
      Hashtbl.replace env index i;
      exec_stmts st env body
    done;
    (match saved with Some v -> Hashtbl.replace env index v | None -> Hashtbl.remove env index)
  | Doall { index; lo; hi; body } ->
    if st.in_parallel then runtime_errorf "nested doall survived normalization";
    let lo = eval_expr st env lo and hi = eval_expr st env hi in
    (* close the current serial epoch, run the parallel one, reopen serial *)
    st.hooks.on_task_end ();
    st.hooks.on_epoch_end ();
    st.epochs_executed <- st.epochs_executed + 1;
    st.hooks.on_epoch_begin (Parallel { lo; hi });
    Races.reset st.races;
    st.in_parallel <- true;
    (* task-private scalars: each iteration works on a copy of the
       enclosing environment and its updates are discarded. When the body
       provably never assigns a scalar the copy is unobservable (a nested
       DO restores its own index), so every task can share the enclosing
       environment with only the loop index swapped in — one Hashtbl copy
       per iteration is the biggest allocation in trace generation. *)
    let shares_env = not (List.exists stmt_assigns_scalar body) in
    let saved_index = if shares_env then Hashtbl.find_opt env index else None in
    for i = lo to hi do
      st.task <- i - lo;
      st.hooks.on_task_begin ~iter:i;
      let task_env = if shares_env then env else Hashtbl.copy env in
      Hashtbl.replace task_env index i;
      exec_stmts st task_env body;
      st.hooks.on_task_end ()
    done;
    if shares_env then begin
      match saved_index with
      | Some v -> Hashtbl.replace env index v
      | None -> Hashtbl.remove env index
    end;
    st.in_parallel <- false;
    st.task <- 0;
    st.hooks.on_epoch_end ();
    st.epochs_executed <- st.epochs_executed + 1;
    st.hooks.on_epoch_begin Serial;
    Races.reset st.races;
    st.hooks.on_task_begin ~iter:0

(* --- entry point --- *)

type result = {
  final_memory : value array;
  layout : Shape.layout;
  epochs : int;  (** number of epochs executed (counting the serial ones) *)
}

(** Execute [program] (assumed sema-checked). [line_words] controls array
    padding in the address map and must match the simulated machine. *)
let run ?(hooks = null_hooks) ?(check_races = true) ?(max_steps = 50_000_000)
    ?(line_words = 4) (program : Ast.program) =
  let layout = Shape.layout ~line_words program.arrays in
  let st =
    {
      program;
      layout;
      memory = Array.make (max 1 layout.total_words) 0;
      hooks;
      races = Races.create check_races ~words:layout.total_words;
      task = 0;
      in_parallel = false;
      in_critical = false;
      steps = 0;
      max_steps;
      epochs_executed = 0;
    }
  in
  let entry =
    match Ast.find_proc program program.entry with
    | Some p -> p
    | None -> runtime_errorf "entry procedure %s not found" program.entry
  in
  hooks.on_init layout;
  hooks.on_epoch_begin Serial;
  hooks.on_task_begin ~iter:0;
  exec_stmts st (Hashtbl.create 16) entry.body;
  hooks.on_task_end ();
  hooks.on_epoch_end ();
  st.epochs_executed <- st.epochs_executed + 1;
  { final_memory = st.memory; layout; epochs = st.epochs_executed }

(** Read an element of the final memory, for tests and examples. *)
let peek result name indices = result.final_memory.(Shape.address result.layout name indices)
