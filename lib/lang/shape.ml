(** Array shapes and the global flat address map.

    Every array is laid out row-major in a single word-addressed shared
    address space; [layout] assigns each array a base word address. The
    simulator's caches and directories operate on these word addresses. *)

type t = {
  name : string;
  dims : int list;
  size : int;  (** total words *)
  base : int;  (** first word address *)
}

type layout = { arrays : (string, t) Hashtbl.t; total_words : int }

let size_of_dims dims =
  if dims = [] then invalid_arg "Shape: array with no dimensions";
  List.iter (fun d -> if d <= 0 then invalid_arg "Shape: non-positive dimension") dims;
  List.fold_left ( * ) 1 dims

(** Build the address map. Arrays are padded to a line-size multiple so two
    arrays never share a cache line; inter-array false sharing would be an
    artifact of our packing, not of the workload. *)
let layout ?(line_words = 4) (decls : Ast.decl list) =
  let arrays = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun (d : Ast.decl) ->
      if Hashtbl.mem arrays d.arr_name then
        invalid_arg (Printf.sprintf "Shape: duplicate array %s" d.arr_name);
      let size = size_of_dims d.dims in
      let t = { name = d.arr_name; dims = d.dims; size; base = !next } in
      Hashtbl.replace arrays d.arr_name t;
      next := Hscd_util.Ints.round_up (!next + size) line_words)
    decls;
  { arrays; total_words = !next }

let find l name =
  (* Hashtbl.find rather than find_opt: this sits on the interpreter's
     per-access path and the [Some] box is measurable *)
  match Hashtbl.find l.arrays name with
  | t -> t
  | exception Not_found -> invalid_arg (Printf.sprintf "Shape: unknown array %s" name)

let mem l name = Hashtbl.mem l.arrays name

(** Row-major flattening of a subscript vector, with bounds checking. *)
let flatten t indices =
  let rec loop dims idxs acc =
    match (dims, idxs) with
    | [], [] -> acc
    | d :: dims', i :: idxs' ->
      if i < 0 || i >= d then
        invalid_arg
          (Printf.sprintf "Shape: index %d out of bounds [0,%d) for %s" i d t.name);
      loop dims' idxs' ((acc * d) + i)
    | _ ->
      invalid_arg
        (Printf.sprintf "Shape: %s expects %d subscripts, got %d" t.name (List.length t.dims)
           (List.length indices))
  in
  loop t.dims indices 0

(** Word address of an element. *)
let address l name indices =
  let t = find l name in
  t.base + flatten t indices

(* Unrolled 1- and 2-subscript addressing for the interpreter's access
   path: same bounds checks and error text as [flatten], no index list. *)

let oob t i d =
  invalid_arg (Printf.sprintf "Shape: index %d out of bounds [0,%d) for %s" i d t.name)

let arity_mismatch t got =
  invalid_arg
    (Printf.sprintf "Shape: %s expects %d subscripts, got %d" t.name (List.length t.dims) got)

let address1 l name i =
  let t = find l name in
  match t.dims with
  | [ d ] ->
    if i < 0 || i >= d then oob t i d;
    t.base + i
  | _ -> arity_mismatch t 1

let address2 l name i j =
  let t = find l name in
  match t.dims with
  | [ d1; d2 ] ->
    if i < 0 || i >= d1 then oob t i d1;
    if j < 0 || j >= d2 then oob t j d2;
    t.base + (i * d2) + j
  | _ -> arity_mismatch t 2

(** Inverse of [address]: which array and flat offset owns a word address.
    Returns [None] for padding words. *)
let owner l addr =
  Hashtbl.fold
    (fun _ t acc ->
      match acc with
      | Some _ -> acc
      | None -> if addr >= t.base && addr < t.base + t.size then Some (t, addr - t.base) else None)
    l.arrays None

let arrays_in_order l =
  Hashtbl.fold (fun _ t acc -> t :: acc) l.arrays []
  |> List.sort (fun a b -> compare a.base b.base)
