(** TPI — the paper's Two-Phase Invalidation scheme.

    Hardware model: each processor keeps an epoch counter (incremented at
    every epoch boundary, all processors in lockstep thanks to barriers)
    and a timetag per cache *word*. A write stamps the word with the
    current epoch; an allocating line fill stamps the referenced word with
    the current epoch and its companions with epoch−1 (the paper's
    "R counter − 1" rule, which neutralizes same-epoch cross-task reuse of
    line companions). A [Time_read d] may hit only if the word's age is at
    most [d] epochs. Timetags are recycled by the two-phase reset: every
    [2^(bits-1)] epochs the cache flash-invalidates all words at least one
    phase old, stalling the processor for the reset cost; ages therefore
    never exceed the tag range, keeping the hardware comparison exact. *)

module Cache = Hscd_cache.Cache
module Traffic = Hscd_network.Traffic


module Config = Hscd_arch.Config
module Event = Hscd_arch.Event

type t = {
  w : Wt_common.t;
  mutable epoch : int;
  phase : int;  (** reset period: 2^(timetag_bits - 1) epochs *)
}

let name = "TPI"

let create cfg ~memory_words ~network ~traffic =
  {
    w = Wt_common.create cfg ~memory_words ~network ~traffic;
    epoch = 0;
    phase = Config.phase_epochs cfg;
  }

let age t tag = t.epoch - tag

(* A word whose age reached the previous phase would have been wiped by the
   two-phase reset; enforced eagerly in [epoch_boundary], so a valid word's
   tag is always hardware-representable. *)
let word_hit t (line : Cache.line) ~off ~(mark : Event.rmark) =
  line.word_valid.(off)
  &&
  match mark with
  | Event.Normal_read | Event.Unmarked -> true
  | Event.Time_read d -> age t line.meta.(off) <= d
  | Event.Bypass_read -> false

let read t ~proc ~addr ~array:(_ : int) ~mark =
  let w = t.w in
  let off = addr land (w.cfg.line_words - 1) in
  match mark with
  | Event.Bypass_read ->
    (* fetch the word uncached *)
    Traffic.add_read w.traffic 1;
    Traffic.add_control w.traffic Scheme.control_words;
    let cls =
      match Cache.probe w.caches.(proc) addr with
      | Some line when line.word_valid.(off) -> Wt_common.stale_copy_class w ~proc ~line addr
      | Some _ | None -> Scheme.Uncached
    in
    Scheme.set_result w.res ~latency:(Wt_common.word_fetch_latency w)
      ~value:(Memstate.read w.mem addr) ~cls
  | _ -> (
    match Cache.find w.caches.(proc) addr with
    | Some line when word_hit t line ~off ~mark ->
      line.touched.(off) <- true;
      Scheme.set_result w.res ~latency:w.cfg.hit_cycles ~value:line.values.(off) ~cls:Scheme.Hit
    | probed ->
      let cls =
        match probed with
        | Some line when line.word_valid.(off) ->
          (* resident but too old for the Time-Read window *)
          Wt_common.stale_copy_class w ~proc ~line addr
        | Some line when line.reset_invalidated -> ignore line; Scheme.Reset_inv
        | Some _ | None -> Wt_common.absent_class w ~proc addr
      in
      let line =
        Wt_common.fetch_line w ~proc ~addr ~ref_meta:t.epoch ~other_meta:(t.epoch - 1)
      in
      Scheme.set_result w.res ~latency:(Wt_common.line_fetch_latency w)
        ~value:line.values.(off) ~cls)

let write t ~proc ~addr ~array:(_ : int) ~value ~mark =
  match mark with
  | Event.Normal_write ->
    Wt_common.write_through t.w ~proc ~addr ~value ~meta:t.epoch ~other_meta:(t.epoch - 1)
  | Event.Bypass_write -> Wt_common.write_bypass t.w ~proc ~addr ~value ~meta:t.epoch

let epoch_boundary t =
  let w = t.w in
  Wt_common.drain_buffers w;
  t.epoch <- t.epoch + 1;
  let stalls = Array.make w.cfg.processors 0 in
  if t.epoch mod t.phase = 0 then begin
    w.st.two_phase_resets <- w.st.two_phase_resets + 1;
    Array.iteri
      (fun p cache ->
        stalls.(p) <- w.cfg.two_phase_reset_cycles;
        Cache.iter_lines cache (fun line ->
            let any_invalidated = ref false in
            Array.iteri
              (fun k valid ->
                if valid && age t line.meta.(k) >= t.phase then begin
                  line.word_valid.(k) <- false;
                  any_invalidated := true
                end)
              line.word_valid;
            if !any_invalidated then line.reset_invalidated <- true))
      w.caches
  end;
  stalls

(* the epoch counter advances in lockstep in every slice and word
   timetags are per cache line — nothing to exchange *)
let boundary_exchange (_ : t array) = ()

let stats t = t.w.st

let memory_image t = t.w.Wt_common.mem.Memstate.values

(* the epoch counter is state (word ages are [epoch - meta]); the phase
   is config, not state *)
let snapshot t =
  let b = Buffer.create 256 in
  Scheme.Snap.int b t.epoch;
  Scheme.Snap.sep b;
  Wt_common.snapshot_into b t.w;
  Buffer.contents b
