(** TPI — the paper's Two-Phase Invalidation scheme.

    Hardware model: each processor keeps an epoch counter (incremented at
    every epoch boundary, all processors in lockstep thanks to barriers)
    and a timetag per cache *word*. A write stamps the word with the
    current epoch; an allocating line fill stamps the referenced word with
    the current epoch and its companions with epoch−1 (the paper's
    "R counter − 1" rule, which neutralizes same-epoch cross-task reuse of
    line companions). A [Time_read d] may hit only if the word's age is at
    most [d] epochs. Timetags are recycled by the two-phase reset: every
    [2^(bits-1)] epochs the cache flash-invalidates all words at least one
    phase old, stalling the processor for the reset cost; ages therefore
    never exceed the tag range, keeping the hardware comparison exact.

    The reset is modelled two ways. The default is lazy, Tardis-style:
    the boundary only records the reset cutoff ([epoch − phase] at the
    reset instant) and every access first {e settles} the line it touches,
    wiping words whose timetag is at or below the cutoff — O(1) per
    access instead of an O(P × cache capacity) flash scan per reset
    epoch. The paper's eager scan is kept behind
    [Config.tpi_eager_reset] as a differential oracle; both modes charge
    the same stalls and produce bit-identical results (gated by the test
    suite). Equivalence: word timetags only move forward (writes and
    fills stamp the current epoch, always above every past cutoff), the
    cutoff is monotone, and settling runs before any validity check or
    miss classification on the line — so each word is observed exactly as
    the eager scan would have left it. *)

module Cache = Hscd_cache.Cache
module Traffic = Hscd_network.Traffic


module Config = Hscd_arch.Config
module Event = Hscd_arch.Event

type t = {
  w : Wt_common.t;
  mutable epoch : int;
  phase : int;  (** reset period: 2^(timetag_bits - 1) epochs *)
  eager : bool;  (** flash-invalidate at reset epochs (the differential oracle) *)
  mutable reset_cutoff : int;
      (** lazy mode: words tagged at or below this were wiped by the last
          reset; [min_int] until the first reset fires *)
}

let name = "TPI"

let create cfg ~memory_words ~network ~traffic =
  {
    w = Wt_common.create cfg ~memory_words ~network ~traffic;
    epoch = 0;
    phase = Config.phase_epochs cfg;
    eager = cfg.Config.tpi_eager_reset;
    reset_cutoff = min_int;
  }

let age t tag = t.epoch - tag

(* Lazy mode: materialize the last reset's effect on one line at
   observation time — wipe every valid word whose timetag predates the
   cutoff and latch the line-level reset flag, exactly as the eager scan
   would have. Whole-line, because [reset_invalidated] is line-granular
   (a surviving word's rejected reuse classifies as Reset_inv when a
   companion was wiped). *)
let settle t (line : Cache.line) =
  if (not t.eager) && t.reset_cutoff > min_int then begin
    let any = ref false in
    for k = 0 to Array.length line.word_valid - 1 do
      if line.word_valid.(k) && line.meta.(k) <= t.reset_cutoff then begin
        line.word_valid.(k) <- false;
        any := true
      end
    done;
    if !any then line.reset_invalidated <- true
  end

(* A word whose age reached the previous phase boundary has been wiped by
   the two-phase reset — eagerly at the boundary or by [settle] just
   before this check — so a valid word's tag is always
   hardware-representable. *)
let word_hit t (line : Cache.line) ~off ~(mark : Event.rmark) =
  line.word_valid.(off)
  &&
  match mark with
  | Event.Normal_read | Event.Unmarked -> true
  | Event.Time_read d -> age t line.meta.(off) <= d
  | Event.Bypass_read -> false

let read t ~proc ~addr ~array:(_ : int) ~mark =
  let w = t.w in
  let off = addr land (w.cfg.line_words - 1) in
  match mark with
  | Event.Bypass_read ->
    (* fetch the word uncached *)
    Traffic.add_read w.traffic 1;
    Traffic.add_control w.traffic Scheme.control_words;
    let cls =
      match Cache.probe w.caches.(proc) addr with
      | Some line ->
        settle t line;
        if line.word_valid.(off) then Wt_common.stale_copy_class w ~proc ~line addr
        else Scheme.Uncached
      | None -> Scheme.Uncached
    in
    Scheme.set_result w.res ~latency:(Wt_common.word_fetch_latency w)
      ~value:(Memstate.read w.mem addr) ~cls
  | _ -> (
    match Cache.find w.caches.(proc) addr with
    | Some line ->
      settle t line;
      if word_hit t line ~off ~mark then begin
        line.touched.(off) <- true;
        Scheme.set_result w.res ~latency:w.cfg.hit_cycles ~value:line.values.(off)
          ~cls:Scheme.Hit
      end
      else begin
        let cls =
          if line.word_valid.(off) then
            (* resident but too old for the Time-Read window *)
            Wt_common.stale_copy_class w ~proc ~line addr
          else if line.reset_invalidated then Scheme.Reset_inv
          else Wt_common.absent_class w ~proc addr
        in
        let line =
          Wt_common.fetch_line w ~proc ~addr ~ref_meta:t.epoch ~other_meta:(t.epoch - 1)
        in
        Scheme.set_result w.res ~latency:(Wt_common.line_fetch_latency w)
          ~value:line.values.(off) ~cls
      end
    | None ->
      let cls = Wt_common.absent_class w ~proc addr in
      let line =
        Wt_common.fetch_line w ~proc ~addr ~ref_meta:t.epoch ~other_meta:(t.epoch - 1)
      in
      Scheme.set_result w.res ~latency:(Wt_common.line_fetch_latency w)
        ~value:line.values.(off) ~cls)

let write t ~proc ~addr ~array:(_ : int) ~value ~mark =
  (* Settle before the store probe: a write revalidates its word with a
     fresh timetag, which would otherwise erase the evidence that the old
     copy predated the reset (the sticky [reset_invalidated] flag the
     eager scan sets). Free until the first reset fires. *)
  if (not t.eager) && t.reset_cutoff > min_int then begin
    match Cache.probe t.w.caches.(proc) addr with
    | Some line -> settle t line
    | None -> ()
  end;
  match mark with
  | Event.Normal_write ->
    Wt_common.write_through t.w ~proc ~addr ~value ~meta:t.epoch ~other_meta:(t.epoch - 1)
  | Event.Bypass_write -> Wt_common.write_bypass t.w ~proc ~addr ~value ~meta:t.epoch

let epoch_boundary t ~stalls =
  let w = t.w in
  Wt_common.drain_buffers w;
  t.epoch <- t.epoch + 1;
  if t.epoch mod t.phase = 0 then begin
    w.st.two_phase_resets <- w.st.two_phase_resets + 1;
    Array.fill stalls 0 (Array.length stalls) w.cfg.two_phase_reset_cycles;
    if t.eager then begin
      let caches = w.Wt_common.caches in
      for p = 0 to Array.length caches - 1 do
        Cache.iter_lines caches.(p) (fun line ->
            let any_invalidated = ref false in
            for k = 0 to Array.length line.word_valid - 1 do
              if line.word_valid.(k) && age t line.meta.(k) >= t.phase then begin
                line.word_valid.(k) <- false;
                any_invalidated := true
              end
            done;
            if !any_invalidated then line.reset_invalidated <- true)
      done
    end
    else t.reset_cutoff <- t.epoch - t.phase
  end
  else Array.fill stalls 0 (Array.length stalls) 0

(* the epoch counter (and with it the lazy reset cutoff) advances in
   lockstep in every slice and word timetags are per cache line — nothing
   to exchange *)
let boundary_exchange (_ : t array) = ()

let stats t = t.w.st

let memory_image t = t.w.Wt_common.mem.Memstate.values

(* the epoch counter is state (word ages are [epoch - meta]); the phase
   is config, not state, and the lazy reset cutoff is a function of the
   epoch, so neither needs encoding *)
let snapshot t =
  let b = Buffer.create 256 in
  Scheme.Snap.int b t.epoch;
  Scheme.Snap.sep b;
  Wt_common.snapshot_into b t.w;
  Buffer.contents b
