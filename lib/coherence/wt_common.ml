(** Shared machinery of the write-through compiler-directed schemes (SC and
    TPI): per-processor caches with write-allocate, write-buffer traffic,
    per-processor fetch history for cold/replacement classification, and
    the conservative-vs-true-sharing miss test. *)

module Cache = Hscd_cache.Cache
module Write_buffer = Hscd_cache.Write_buffer


module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic


module Config = Hscd_arch.Config

type t = {
  cfg : Config.t;
  mem : Memstate.t;
  caches : Cache.t array;
  wbufs : Write_buffer.t array;
  ever_fetched : Bytes.t array;  (** per proc, per memory line: fetched at least once *)
  net : Kruskal_snir.t;
  traffic : Traffic.t;
  st : Scheme.stats;
  memory_lines : int;
  res : Scheme.access_result;  (** per-instance scratch, reused every access *)
  active_writers : int array;  (** dense: procs with buffered writes this epoch *)
  mutable n_active_writers : int;
  writer_marked : Bytes.t;  (** per proc: already in [active_writers] *)
}

(* We reuse the Cache line state field as a single "resident" flag. *)
let state_resident = 1

let create cfg ~memory_words ~network ~traffic =
  let memory_lines = Hscd_util.Ints.ceil_div (max 1 memory_words) cfg.Config.line_words in
  {
    cfg;
    mem = Memstate.create ~words:memory_words;
    caches = Array.init cfg.processors (fun _ -> Cache.create cfg);
    wbufs = Array.init cfg.processors (fun _ -> Write_buffer.create cfg);
    ever_fetched = Array.init cfg.processors (fun _ -> Bytes.make memory_lines '\000');
    net = network;
    traffic;
    st = Scheme.fresh_stats ();
    memory_lines;
    res = Scheme.fresh_result ();
    active_writers = Array.make cfg.processors 0;
    n_active_writers = 0;
    writer_marked = Bytes.make cfg.processors '\000';
  }

(* Remember that [proc]'s write buffer has pending state, so the boundary
   drain visits only processors that actually wrote this epoch. *)
let note_writer t proc =
  if Bytes.get t.writer_marked proc = '\000' then begin
    Bytes.set t.writer_marked proc '\001';
    t.active_writers.(t.n_active_writers) <- proc;
    t.n_active_writers <- t.n_active_writers + 1
  end

let mark_fetched t ~proc line = Bytes.set t.ever_fetched.(proc) line '\001'
let was_fetched t ~proc line = Bytes.get t.ever_fetched.(proc) line = '\001'

(** Cold vs replacement attribution for a miss with no usable resident
    copy. *)
let absent_class t ~proc addr =
  let line = addr / t.cfg.line_words in
  if was_fetched t ~proc line then Scheme.Replacement else Scheme.Cold

(** Was the resident (but rejected) copy of [addr] actually still fresh?
    If no other processor wrote the word since this copy was fetched, the
    miss is unnecessary — a conservative-compiler (or reset) miss. *)
let stale_copy_class t ~proc ~(line : Cache.line) addr =
  let off = addr land (t.cfg.line_words - 1) in
  if Memstate.foreign_write_since t.mem ~proc ~since:line.fetch_seq.(off) addr then
    Scheme.True_sharing
  else if line.reset_invalidated then Scheme.Reset_inv
  else Scheme.Conservative

(** Fetch the whole line containing [addr] into [proc]'s cache from memory
    (write-through keeps memory current). [ref_meta]/[other_meta] become
    the per-word metadata (TPI timetags). Returns the line. *)
let fetch_line t ~proc ~addr ~ref_meta ~other_meta =
  let cache = t.caches.(proc) in
  let line = Cache.allocate cache ~on_evict:(fun _ -> ()) addr in
  let base = addr land lnot (t.cfg.line_words - 1) in
  let off = addr land (t.cfg.line_words - 1) in
  line.state <- state_resident;
  for k = 0 to t.cfg.line_words - 1 do
    line.values.(k) <- Memstate.read t.mem (base + k);
    line.word_valid.(k) <- true;
    line.meta.(k) <- (if k = off then ref_meta else other_meta);
    line.fetch_seq.(k) <- t.mem.seq;
    line.touched.(k) <- k = off
  done;
  mark_fetched t ~proc (addr / t.cfg.line_words);
  Traffic.add_read t.traffic t.cfg.line_words;
  Traffic.add_control t.traffic Scheme.control_words;
  line

let line_fetch_latency t = Scheme.transfer_latency t.cfg t.net ~words:t.cfg.line_words

let word_fetch_latency t = Scheme.transfer_latency t.cfg t.net ~words:1

(** Write-through write-allocate store. [meta] is the timetag for the
    written word, [other_meta] for line-fill companions on an allocating
    miss. Returns the access result (1-cycle buffered store; the class
    records whether the allocate missed). *)
let write_through t ~proc ~addr ~value ~meta ~other_meta =
  Memstate.write t.mem ~proc addr value;
  let off = addr land (t.cfg.line_words - 1) in
  let cls =
    match Cache.find t.caches.(proc) addr with
    | Some line when line.word_valid.(off) || line.state = state_resident ->
      line.values.(off) <- value;
      line.word_valid.(off) <- true;
      line.meta.(off) <- meta;
      line.touched.(off) <- true;
      line.fetch_seq.(off) <- t.mem.seq;
      Scheme.Hit
    | _ ->
      let cls = absent_class t ~proc addr in
      let line = fetch_line t ~proc ~addr ~ref_meta:meta ~other_meta in
      line.values.(off) <- value;
      line.meta.(off) <- meta;
      cls
  in
  (* the word itself goes to memory through the write buffer *)
  note_writer t proc;
  let words = Write_buffer.write t.wbufs.(proc) addr in
  if words > 0 then begin
    Traffic.add_write t.traffic words;
    Traffic.add_control t.traffic Scheme.control_words
  end;
  (* under weak consistency the store retires in one cycle behind the write
     buffer; sequential consistency stalls for the memory round trip (the
     paper's footnote on why a SC model hurts write-through schemes) *)
  let latency =
    match t.cfg.consistency with
    | Config.Weak -> 1
    | Config.Sequential ->
      word_fetch_latency t + (if cls = Scheme.Hit then 0 else line_fetch_latency t)
  in
  Scheme.set_result t.res ~latency ~value ~cls

(** Uncached store (critical sections): memory and any local copy updated. *)
let write_bypass t ~proc ~addr ~value ~meta =
  Memstate.write t.mem ~proc addr value;
  (match Cache.probe t.caches.(proc) addr with
  | Some line ->
    let off = addr land (t.cfg.line_words - 1) in
    line.values.(off) <- value;
    line.word_valid.(off) <- true;
    line.meta.(off) <- meta;
    line.fetch_seq.(off) <- t.mem.seq
  | None -> ());
  Traffic.add_write t.traffic 1;
  Traffic.add_control t.traffic Scheme.control_words;
  let latency = match t.cfg.consistency with
    | Config.Weak -> 1
    | Config.Sequential -> word_fetch_latency t
  in
  Scheme.set_result t.res ~latency ~value ~cls:Scheme.Uncached

(** Shared {!Scheme.S.snapshot} body of the write-through family: memory
    image plus every processor's cache. Write buffers are traffic-only
    (correctness-visible updates go to [mem] eagerly), so they are not
    part of the abstract state. *)
let snapshot_into b t =
  Scheme.Snap.ints b t.mem.Memstate.values;
  Scheme.Snap.caches b t.caches

(** Drain write buffers at an epoch boundary; traffic only. Visits only
    the processors that wrote since the last drain (traffic sums are
    commutative, so the dense-list order is observably identical to the
    old full scan). *)
let drain_buffers t =
  for i = 0 to t.n_active_writers - 1 do
    let p = t.active_writers.(i) in
    Bytes.set t.writer_marked p '\000';
    let words = Write_buffer.drain t.wbufs.(p) in
    if words > 0 then Traffic.add_write t.traffic words
  done;
  t.n_active_writers <- 0
