(** HW — full-map directory scheme [8, 3].

    A three-state (invalid / read-shared / write-exclusive) invalidation
    protocol with a full presence-bit directory at each line's home node
    and write-back caches, under weak consistency (writes retire through
    write buffers; reads stall).

    Classification uses the Tullsen–Eggers criterion [34]: when a remote
    write invalidates a cached line, the invalidation is *false sharing*
    if the local processor had not used the written word since fetching
    the line; the next miss on that line is then a false-sharing miss
    (else a true-sharing miss). Invalidated frames keep their tag and
    carry the flag until refetched or evicted. *)

module Cache = Hscd_cache.Cache


module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic


module Config = Hscd_arch.Config
module Event = Hscd_arch.Event

let s_invalid = Cache.invalid_state (* 0 *)
let s_shared = 1
let s_modified = 2
let s_inv_tagged = 3  (** invalid for access, but tagged for classification *)

type dir_entry = { presence : Hscd_util.Bitset.t; mutable dirty : bool }

type t = {
  cfg : Config.t;
  mem : Memstate.t;
  caches : Cache.t array;
  directory : dir_entry array;  (** per memory line *)
  ever_fetched : Bytes.t array;
  net : Kruskal_snir.t;
  traffic : Traffic.t;
  st : Scheme.stats;
  res : Scheme.access_result;
}

let name = "HW"

let create cfg ~memory_words ~network ~traffic =
  let memory_lines = Hscd_util.Ints.ceil_div (max 1 memory_words) cfg.Config.line_words in
  {
    cfg;
    mem = Memstate.create ~words:memory_words;
    caches = Array.init cfg.processors (fun _ -> Cache.create cfg);
    directory =
      Array.init memory_lines (fun _ ->
          { presence = Hscd_util.Bitset.create cfg.processors; dirty = false });
    ever_fetched = Array.init cfg.processors (fun _ -> Bytes.make memory_lines '\000');
    net = network;
    traffic;
    st = Scheme.fresh_stats ();
    res = Scheme.fresh_result ();
  }

let mem_line t addr = addr / t.cfg.line_words
let off_of t addr = addr land (t.cfg.line_words - 1)

let mark_fetched t ~proc line = Bytes.set t.ever_fetched.(proc) line '\001'
let was_fetched t ~proc line = Bytes.get t.ever_fetched.(proc) line = '\001'

(* Write back a dirty victim: directory learns, memory traffic counted.
   (Values are kept current in [mem] eagerly, so only bookkeeping here.) *)
let evict t ~proc (victim : Cache.line) =
  if victim.tag >= 0 && victim.tag < Array.length t.directory then begin
    let dir = t.directory.(victim.tag) in
    if victim.state = s_modified then begin
      t.st.writebacks <- t.st.writebacks + 1;
      Traffic.add_write t.traffic t.cfg.line_words;
      dir.dirty <- false
    end;
    if victim.state = s_modified || victim.state = s_shared then begin
      Hscd_util.Bitset.remove dir.presence proc;
      Traffic.add_control t.traffic 1 (* replacement hint *)
    end
  end

(* Invalidate every remote sharer of [line_no] because [writer] writes word
   [off]; sets Tullsen-Eggers flags on the victims. Returns sharer count. *)
let invalidate_sharers t ~writer ~line_no ~off =
  let dir = t.directory.(line_no) in
  let count = ref 0 in
  Hscd_util.Bitset.iter
    (fun p ->
      if p <> writer then begin
        incr count;
        match Cache.probe t.caches.(p) (line_no * t.cfg.line_words) with
        | Some line when line.state = s_shared || line.state = s_modified ->
          line.inv_false_sharing <- not line.touched.(off);
          line.inv_pending <- true;
          line.state <- s_inv_tagged
        | Some _ | None -> ()
      end)
    dir.presence;
  if !count > 0 then begin
    t.st.invalidations_sent <- t.st.invalidations_sent + !count;
    (* invalidation requests + acknowledgements *)
    Traffic.add_coherence t.traffic (2 * !count)
  end;
  Hscd_util.Bitset.clear dir.presence;
  Hscd_util.Bitset.add dir.presence writer;
  !count

(* Fetch a line into [proc]'s cache with the given final state. Handles
   dirty remote copies (recall + extra hops). Returns (line, latency). *)
let fetch_line t ~proc ~addr ~state =
  let line_no = mem_line t addr in
  let dir = t.directory.(line_no) in
  let base_latency = Scheme.transfer_latency t.cfg t.net ~words:t.cfg.line_words in
  let latency =
    if dir.dirty && not (Hscd_util.Bitset.mem dir.presence proc) then begin
      (* 3-hop transaction: home forwards to the owner, owner supplies the
         line and writes it back *)
      t.st.dirty_recalls <- t.st.dirty_recalls + 1;
      (* the owner downgrades (read) or invalidates (write) *)
      Hscd_util.Bitset.iter
        (fun owner ->
          if owner <> proc then
            match Cache.probe t.caches.(owner) (line_no * t.cfg.line_words) with
            | Some oline when oline.state = s_modified ->
              oline.state <- (if state = s_modified then s_inv_tagged else s_shared);
              if state = s_modified then begin
                oline.inv_false_sharing <- not oline.touched.(off_of t addr);
                oline.inv_pending <- true
              end
            | Some _ | None -> ())
        dir.presence;
      dir.dirty <- false;
      Traffic.add_write t.traffic t.cfg.line_words (* owner's writeback *);
      Traffic.add_coherence t.traffic 2 (* forward + ack *);
      base_latency + (t.cfg.miss_base_cycles / 2) + Kruskal_snir.round_trip_excess t.net
    end
    else base_latency
  in
  if state = s_modified then begin
    ignore (invalidate_sharers t ~writer:proc ~line_no ~off:(off_of t addr));
    dir.dirty <- true
  end
  else Hscd_util.Bitset.add dir.presence proc;
  let cache = t.caches.(proc) in
  let line = Cache.allocate cache ~on_evict:(evict t ~proc) addr in
  let base = line_no * t.cfg.line_words in
  line.state <- state;
  for k = 0 to t.cfg.line_words - 1 do
    line.values.(k) <- Memstate.read t.mem (base + k);
    line.word_valid.(k) <- true;
    line.fetch_seq.(k) <- t.mem.seq;
    line.touched.(k) <- false
  done;
  line.touched.(off_of t addr) <- true;
  mark_fetched t ~proc line_no;
  Traffic.add_read t.traffic t.cfg.line_words;
  Traffic.add_control t.traffic Scheme.control_words;
  (line, latency)

(* Miss classification before refetch. *)
let miss_class t ~proc ~addr =
  match Cache.probe t.caches.(proc) addr with
  | Some line when line.state = s_inv_tagged ->
    if line.inv_false_sharing then Scheme.False_sharing else Scheme.True_sharing
  | Some _ | None ->
    if was_fetched t ~proc (mem_line t addr) then Scheme.Replacement else Scheme.Cold

let read t ~proc ~addr ~array:(_ : int) ~mark:_ =
  match Cache.find t.caches.(proc) addr with
  | Some line when line.state = s_shared || line.state = s_modified ->
    line.touched.(off_of t addr) <- true;
    Scheme.set_result t.res ~latency:t.cfg.hit_cycles ~value:line.values.(off_of t addr)
      ~cls:Scheme.Hit
  | _ ->
    let cls = miss_class t ~proc ~addr in
    let line, latency = fetch_line t ~proc ~addr ~state:s_shared in
    Scheme.set_result t.res ~latency ~value:line.values.(off_of t addr) ~cls

let write t ~proc ~addr ~array:(_ : int) ~value ~mark:_ =
  Memstate.write t.mem ~proc addr value;
  let off = off_of t addr in
  (* weak consistency retires stores in one cycle behind the write buffer;
     sequential consistency stalls for the coherence transaction *)
  let retire transaction_latency =
    match t.cfg.consistency with Config.Weak -> 1 | Config.Sequential -> transaction_latency
  in
  match Cache.find t.caches.(proc) addr with
  | Some line when line.state = s_modified ->
    line.values.(off) <- value;
    line.touched.(off) <- true;
    Scheme.set_result t.res ~latency:t.cfg.hit_cycles ~value ~cls:Scheme.Hit
  | Some line when line.state = s_shared ->
    (* upgrade: invalidate other sharers *)
    t.st.upgrades <- t.st.upgrades + 1;
    ignore (invalidate_sharers t ~writer:proc ~line_no:(mem_line t addr) ~off);
    t.directory.(mem_line t addr).dirty <- true;
    line.state <- s_modified;
    line.values.(off) <- value;
    line.touched.(off) <- true;
    Scheme.set_result t.res
      ~latency:(retire (Scheme.transfer_latency t.cfg t.net ~words:1))
      ~value ~cls:Scheme.Hit
  | _ ->
    let cls = miss_class t ~proc ~addr in
    let line, fetch_latency = fetch_line t ~proc ~addr ~state:s_modified in
    line.values.(off) <- value;
    Scheme.set_result t.res ~latency:(retire fetch_latency) ~value ~cls

let epoch_boundary (_ : t) ~stalls = Array.fill stalls 0 (Array.length stalls) 0

(* directory entries, caches and memory are all per-line — no cross-shard
   state to reconcile *)
let boundary_exchange (_ : t array) = ()

let stats t = t.st

let memory_image t = t.mem.Memstate.values

(* memory + caches + the full-map directory (presence vectors and dirty
   bits drive future invalidations and recalls) *)
let snapshot t =
  let b = Buffer.create 256 in
  Scheme.Snap.ints b t.mem.Memstate.values;
  Array.iter
    (fun e ->
      Hscd_util.Bitset.iter (Scheme.Snap.int b) e.presence;
      Scheme.Snap.bool b e.dirty;
      Scheme.Snap.sep b)
    t.directory;
  Scheme.Snap.caches b t.caches;
  Buffer.contents b
