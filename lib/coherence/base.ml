(** BASE scheme: no caching of shared data at all.

    This is the software baseline of machines like the Cray T3D without
    coherence support: every reference to shared (array) data is a remote
    memory access; only private data (scalars, which live in registers or
    local stacks and never appear in the event stream) is cached. *)

module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic


module Config = Hscd_arch.Config
module Event = Hscd_arch.Event

type t = {
  cfg : Config.t;
  mem : Memstate.t;
  net : Kruskal_snir.t;
  traffic : Traffic.t;
  st : Scheme.stats;
  res : Scheme.access_result;
}

let name = "BASE"

let create cfg ~memory_words ~network ~traffic =
  { cfg; mem = Memstate.create ~words:memory_words; net = network; traffic;
    st = Scheme.fresh_stats (); res = Scheme.fresh_result () }

let read t ~proc:_ ~addr ~array:(_ : int) ~mark:_ =
  Traffic.add_control t.traffic Scheme.control_words;
  Traffic.add_read t.traffic 1;
  Scheme.set_result t.res
    ~latency:(Scheme.transfer_latency t.cfg t.net ~words:1)
    ~value:(Memstate.read t.mem addr)
    ~cls:Scheme.Uncached

let write t ~proc ~addr ~array:(_ : int) ~value ~mark:_ =
  Memstate.write t.mem ~proc addr value;
  Traffic.add_write t.traffic 1;
  Traffic.add_control t.traffic Scheme.control_words;
  let latency =
    match t.cfg.Config.consistency with
    | Config.Weak -> 1 (* retires through the infinite write buffer *)
    | Config.Sequential -> Scheme.transfer_latency t.cfg t.net ~words:1
  in
  Scheme.set_result t.res ~latency ~value ~cls:Scheme.Uncached

let epoch_boundary (_ : t) ~stalls = Array.fill stalls 0 (Array.length stalls) 0

(* all state is per memory line, which the sharded engine never splits *)
let boundary_exchange (_ : t array) = ()

let stats t = t.st

let memory_image t = t.mem.Memstate.values

(* no caches: the memory image is the whole abstract state *)
let snapshot t =
  let b = Buffer.create 64 in
  Scheme.Snap.ints b t.mem.Memstate.values;
  Buffer.contents b
