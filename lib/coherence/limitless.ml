(** LimitLess directory DIR_NB(i) [2]: a hardware directory with [i]
    pointers per memory line that traps to software when a line acquires
    more than [i] sharers.

    The paper uses LimitLess only in the storage-overhead comparison
    (Figure 5); we additionally give it a timing model — it behaves like
    the full-map protocol except that invalidations of overflowed lines
    pay a software-trap penalty — so it can be exercised in ablations. *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event

type t = {
  hw : Hwdir.t;
  pointers : int;
  trap_cycles : int;
  mutable traps : int;
}

let name = "LimitLESS"

let default_pointers = 10

let create cfg ~memory_words ~network ~traffic =
  {
    hw = Hwdir.create cfg ~memory_words ~network ~traffic;
    pointers = default_pointers;
    trap_cycles = 200;
    traps = 0;
  }

let sharers t addr =
  let line = addr / t.hw.Hwdir.cfg.line_words in
  Hscd_util.Bitset.cardinal t.hw.Hwdir.directory.(line).presence

let read t ~proc ~addr ~array ~mark =
  let overflowed = sharers t addr >= t.pointers in
  let r = Hwdir.read t.hw ~proc ~addr ~array ~mark in
  if overflowed && r.Scheme.cls <> Scheme.Hit then begin
    (* the directory must consult the software handler to extend the list *)
    t.traps <- t.traps + 1;
    r.Scheme.latency <- r.Scheme.latency + t.trap_cycles
  end;
  r

let write t ~proc ~addr ~array ~value ~mark =
  let overflowed = sharers t addr > t.pointers in
  let r = Hwdir.write t.hw ~proc ~addr ~array ~value ~mark in
  if overflowed then begin
    t.traps <- t.traps + 1;
    r.Scheme.latency <- r.Scheme.latency + t.trap_cycles
  end;
  r

let epoch_boundary t ~stalls = Hwdir.epoch_boundary t.hw ~stalls

(* per-line like the underlying directory; trap accounting is per access *)
let boundary_exchange (_ : t array) = ()

let stats t = Hwdir.stats t.hw

let traps t = t.traps

let memory_image t = Hwdir.memory_image t.hw

(* pointer count is configuration, trap count is a statistic: the
   abstract state is exactly the underlying directory protocol's *)
let snapshot t = Hwdir.snapshot t.hw
