(** INV — simple epoch invalidation, after Veidenbaum [35].

    The earliest practical compiler-directed scheme: caches may hold
    shared data freely *within* an epoch, and the entire cache is
    flash-invalidated at every epoch boundary. No per-reference compiler
    marks are needed (coherence is enforced on a program-region basis);
    only critical-section bypasses are honoured. All cross-epoch locality
    is lost — the historical baseline that motivated reference-level
    schemes like TPI. *)

module Cache = Hscd_cache.Cache
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic
module Config = Hscd_arch.Config
module Event = Hscd_arch.Event

type t = { w : Wt_common.t }

let name = "INV"

let create cfg ~memory_words ~network ~traffic =
  { w = Wt_common.create cfg ~memory_words ~network ~traffic }

let read t ~proc ~addr ~array:(_ : int) ~mark =
  let w = t.w in
  let off = addr land (w.cfg.line_words - 1) in
  match mark with
  | Event.Bypass_read ->
    Traffic.add_read w.traffic 1;
    Traffic.add_control w.traffic Scheme.control_words;
    Scheme.set_result w.res ~latency:(Wt_common.word_fetch_latency w)
      ~value:(Memstate.read w.Wt_common.mem addr) ~cls:Scheme.Uncached
  | Event.Normal_read | Event.Unmarked | Event.Time_read _ -> (
    match Cache.find w.caches.(proc) addr with
    | Some line when line.word_valid.(off) ->
      line.touched.(off) <- true;
      Scheme.set_result w.res ~latency:w.cfg.hit_cycles ~value:line.values.(off) ~cls:Scheme.Hit
    | probed ->
      let cls =
        match probed with
        (* a resident frame whose words were wiped by the boundary
           invalidation still carries its fetch history: classify against
           actual foreign writes (unnecessary misses are Conservative) *)
        | Some line -> Wt_common.stale_copy_class w ~proc ~line addr
        | None -> Wt_common.absent_class w ~proc addr
      in
      let line = Wt_common.fetch_line w ~proc ~addr ~ref_meta:0 ~other_meta:0 in
      Scheme.set_result w.res ~latency:(Wt_common.line_fetch_latency w)
        ~value:line.values.(off) ~cls)

let write t ~proc ~addr ~array:(_ : int) ~value ~mark =
  match mark with
  | Event.Normal_write -> Wt_common.write_through t.w ~proc ~addr ~value ~meta:0 ~other_meta:0
  | Event.Bypass_write -> Wt_common.write_bypass t.w ~proc ~addr ~value ~meta:0

let epoch_boundary t ~stalls =
  let w = t.w in
  Wt_common.drain_buffers w;
  (* full-cache invalidation at every boundary; O(resident lines) via the
     cache's materialized-set walk *)
  let caches = w.Wt_common.caches in
  for p = 0 to Array.length caches - 1 do
    Cache.iter_lines caches.(p) (fun line ->
        Array.fill line.Cache.word_valid 0 (Array.length line.Cache.word_valid) false;
        (* these invalidations are the scheme's conservatism, not resets *)
        line.Cache.reset_invalidated <- false)
  done;
  Array.fill stalls 0 (Array.length stalls) 0

(* caches and memory are per line; no cross-shard state *)
let boundary_exchange (_ : t array) = ()

let stats t = t.w.st

let memory_image t = t.w.Wt_common.mem.Memstate.values

let snapshot t =
  let b = Buffer.create 256 in
  Wt_common.snapshot_into b t.w;
  Buffer.contents b
