(** SC — software cache-bypass scheme.

    The hardware keeps no timetags, so the compiler's [Time_read] marks
    cannot be checked at run time: every potentially-stale reference
    (Time-Read or Bypass) is forced to fetch from main memory. The fetch
    refreshes the cache line, so provably-safe [Normal_read]s co-resident
    in the line still enjoy reuse within the task, but all intertask
    locality is lost — the limitation the paper tabulates for SC. *)

module Cache = Hscd_cache.Cache


module Config = Hscd_arch.Config
module Event = Hscd_arch.Event

type t = { w : Wt_common.t }

let name = "SC"

let create cfg ~memory_words ~network ~traffic =
  { w = Wt_common.create cfg ~memory_words ~network ~traffic }

let read t ~proc ~addr ~array:(_ : int) ~mark =
  let w = t.w in
  let off = addr land (w.cfg.line_words - 1) in
  match mark with
  | Event.Normal_read | Event.Unmarked -> (
    match Cache.find w.caches.(proc) addr with
    | Some line when line.word_valid.(off) ->
      line.touched.(off) <- true;
      Scheme.set_result w.res ~latency:w.cfg.hit_cycles ~value:line.values.(off) ~cls:Scheme.Hit
    | _ ->
      let cls = Wt_common.absent_class w ~proc addr in
      let line = Wt_common.fetch_line w ~proc ~addr ~ref_meta:0 ~other_meta:0 in
      Scheme.set_result w.res ~latency:(Wt_common.line_fetch_latency w)
        ~value:line.values.(off) ~cls)
  | Event.Time_read _ | Event.Bypass_read ->
    (* statically stale: always refetch the line from memory *)
    let cls =
      match Cache.probe w.caches.(proc) addr with
      | Some line when line.word_valid.(off) -> Wt_common.stale_copy_class w ~proc ~line addr
      | Some _ | None -> Wt_common.absent_class w ~proc addr
    in
    let line = Wt_common.fetch_line w ~proc ~addr ~ref_meta:0 ~other_meta:0 in
    Scheme.set_result w.res ~latency:(Wt_common.line_fetch_latency w) ~value:line.values.(off)
      ~cls

let write t ~proc ~addr ~array:(_ : int) ~value ~mark =
  match mark with
  | Event.Normal_write -> Wt_common.write_through t.w ~proc ~addr ~value ~meta:0 ~other_meta:0
  | Event.Bypass_write -> Wt_common.write_bypass t.w ~proc ~addr ~value ~meta:0

let epoch_boundary t ~stalls =
  Wt_common.drain_buffers t.w;
  Array.fill stalls 0 (Array.length stalls) 0

(* caches and memory are per line; no cross-shard state *)
let boundary_exchange (_ : t array) = ()

let stats t = t.w.st

let memory_image t = t.w.Wt_common.mem.Memstate.values

let snapshot t =
  let b = Buffer.create 256 in
  Wt_common.snapshot_into b t.w;
  Buffer.contents b
