(** VC — version-control coherence, after Cheong & Veidenbaum [14].

    Every shared variable (array) has a *current version number* (CVN),
    maintained in registers and incremented at the end of every epoch that
    wrote the variable. Every cache word records the version it belongs
    to: a write creates the next version (CVN+1); a line fill tags the
    referenced word with the CVN and, as in TPI, its companions with CVN−1
    (so same-epoch cross-task reuse of companions is rejected). A
    compiler-flagged reference ([Time_read]/[Bypass] marks — the distance
    is ignored, VC has no distance notion) may hit only if the cached
    word's version is current, i.e. [>= CVN].

    VC therefore invalidates at *variable* granularity where TPI reasons
    per section and epoch distance: writing any part of an array makes
    every older cached word of that array unusable for flagged reads.
    Comparing the two quantifies the value of TPI's epoch distances — a
    reproduction of the Lilja [26] comparison cited by the paper. *)

module Cache = Hscd_cache.Cache
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic
module Config = Hscd_arch.Config
module Event = Hscd_arch.Event

type t = {
  w : Wt_common.t;
  mutable versions : int array;  (** CVN per interned array id (dense) *)
  mutable written_this_epoch : Bytes.t;  (** dirty flag per interned array id *)
}

let name = "VC"

let create cfg ~memory_words ~network ~traffic =
  {
    w = Wt_common.create cfg ~memory_words ~network ~traffic;
    versions = Array.make 16 0;
    written_this_epoch = Bytes.make 16 '\000';
  }

(* Dense-id tables grow (rarely — only when a trace introduces a new
   array id) by doubling; steady-state accesses are plain array reads. *)
let ensure t id =
  let n = Array.length t.versions in
  if id >= n then begin
    let n' = max (id + 1) (2 * n) in
    let versions = Array.make n' 0 in
    Array.blit t.versions 0 versions 0 n;
    t.versions <- versions;
    let dirty = Bytes.make n' '\000' in
    Bytes.blit t.written_this_epoch 0 dirty 0 (Bytes.length t.written_this_epoch);
    t.written_this_epoch <- dirty
  end

let cvn t array = if array < Array.length t.versions then t.versions.(array) else 0

let read t ~proc ~addr ~array ~mark =
  let w = t.w in
  let off = addr land (w.cfg.line_words - 1) in
  let version_ok (line : Cache.line) =
    match mark with
    | Event.Normal_read | Event.Unmarked -> true
    | Event.Time_read _ -> line.meta.(off) >= cvn t array
    | Event.Bypass_read -> false
  in
  match Cache.find w.caches.(proc) addr with
  | Some line when line.word_valid.(off) && version_ok line ->
    line.touched.(off) <- true;
    Scheme.set_result w.res ~latency:w.cfg.hit_cycles ~value:line.values.(off) ~cls:Scheme.Hit
  | probed ->
    let cls =
      match probed with
      | Some line when line.word_valid.(off) -> Wt_common.stale_copy_class w ~proc ~line addr
      | Some _ | None -> Wt_common.absent_class w ~proc addr
    in
    let v = cvn t array in
    let line = Wt_common.fetch_line w ~proc ~addr ~ref_meta:v ~other_meta:(v - 1) in
    Scheme.set_result w.res ~latency:(Wt_common.line_fetch_latency w) ~value:line.values.(off)
      ~cls

let write t ~proc ~addr ~array ~value ~mark =
  ensure t array;
  Bytes.set t.written_this_epoch array '\001';
  let next = cvn t array + 1 in
  match mark with
  | Event.Normal_write ->
    Wt_common.write_through t.w ~proc ~addr ~value ~meta:next ~other_meta:(cvn t array - 1)
  | Event.Bypass_write -> Wt_common.write_bypass t.w ~proc ~addr ~value ~meta:next

(* Sharded replay: each shard slice only sees the writes whose lines it
   owns, but an array spans many lines, so its dirty flag may be set in
   several slices. Union the flags (growing every table to the common
   size first) so each slice's [epoch_boundary] bumps exactly the CVNs
   the unsharded scheme would — keeping the per-access [cvn] reads
   identical in every slice for the whole next epoch. *)
let boundary_exchange (slices : t array) =
  if Array.length slices > 1 then begin
    let width = Array.fold_left (fun m s -> max m (Array.length s.versions)) 0 slices in
    Array.iter (fun s -> if width > 0 then ensure s (width - 1)) slices;
    for id = 0 to width - 1 do
      if Array.exists (fun s -> Bytes.get s.written_this_epoch id = '\001') slices then
        Array.iter (fun s -> Bytes.set s.written_this_epoch id '\001') slices
    done
  end

let epoch_boundary t ~stalls =
  Wt_common.drain_buffers t.w;
  (* bump the CVN of every variable written during the epoch *)
  for id = 0 to Bytes.length t.written_this_epoch - 1 do
    if Bytes.get t.written_this_epoch id = '\001' then begin
      t.versions.(id) <- t.versions.(id) + 1;
      Bytes.set t.written_this_epoch id '\000'
    end
  done;
  Array.fill stalls 0 (Array.length stalls) 0

let stats t = t.w.st

let memory_image t = t.w.Wt_common.mem.Memstate.values

(* per-variable CVNs and intra-epoch dirty flags are state; the tables
   only grow on demand, so trailing never-written ids (version 0, clean)
   are trimmed to keep the encoding independent of table capacity *)
let snapshot t =
  let b = Buffer.create 256 in
  let live = ref 0 in
  Array.iteri
    (fun id v ->
      if v <> 0 || Bytes.get t.written_this_epoch id = '\001' then live := id + 1)
    t.versions;
  Scheme.Snap.ints b (Array.sub t.versions 0 !live);
  for id = 0 to !live - 1 do
    Scheme.Snap.bool b (Bytes.get t.written_this_epoch id = '\001')
  done;
  Scheme.Snap.sep b;
  Wt_common.snapshot_into b t.w;
  Buffer.contents b
