(** Common interface of the four coherence schemes compared by the paper
    (BASE, SC, TPI, HW) plus shared cost helpers. *)

module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic


module Config = Hscd_arch.Config
module Event = Hscd_arch.Event

(** Outcome classification of one memory access, following the paper's
    miss taxonomy: cold and replacement misses are capacity effects; true
    sharing misses are necessary for coherence; false sharing (hardware
    protocols) and conservative (compiler schemes) misses are the
    *unnecessary* misses the evaluation compares; reset misses come from
    timetag recycling; uncached accesses are BASE's remote references and
    bypasses. *)
type miss_class =
  | Hit
  | Cold
  | Replacement
  | True_sharing
  | False_sharing
  | Conservative
  | Reset_inv
  | Uncached

let class_name = function
  | Hit -> "hit"
  | Cold -> "cold"
  | Replacement -> "repl"
  | True_sharing -> "true-share"
  | False_sharing -> "false-share"
  | Conservative -> "conservative"
  | Reset_inv -> "reset"
  | Uncached -> "uncached"

(** Result of one access. The fields are mutable so a scheme can fill a
    single scratch record per instance instead of allocating one per
    access (the replay hot path is allocation-free in steady state): the
    record a scheme returns is owned by that scheme and only valid until
    its next [read]/[write] call — callers must copy out any field they
    keep. *)
type access_result = {
  mutable latency : int;  (** cycles the issuing processor stalls *)
  mutable value : int;  (** value delivered to the processor (reads) *)
  mutable cls : miss_class;
}

(** Fresh scratch record for a scheme instance. *)
let fresh_result () = { latency = 0; value = 0; cls = Hit }

(** Fill-and-return helper for scheme scratch records. *)
let set_result r ~latency ~value ~cls =
  r.latency <- latency;
  r.value <- value;
  r.cls <- cls;
  r

(** Aggregate counters every scheme exposes. *)
type stats = {
  mutable invalidations_sent : int;
  mutable dirty_recalls : int;
  mutable two_phase_resets : int;
  mutable upgrades : int;
  mutable writebacks : int;
}

let fresh_stats () =
  { invalidations_sent = 0; dirty_recalls = 0; two_phase_resets = 0; upgrades = 0; writebacks = 0 }

(** Buffer-based encoders for {!S.snapshot}: every scheme writes its
    abstract state through these, so equal states produce equal strings
    and the bounded model checker can hash-dedup on them. The encodings
    are length-prefixed/delimited, never ambiguous across field
    boundaries. *)
module Snap = struct
  module Cache = Hscd_cache.Cache

  let int b n =
    Buffer.add_string b (string_of_int n);
    Buffer.add_char b ' '

  let bool b v = Buffer.add_char b (if v then '1' else '0')

  (** Section delimiter, so concatenated variable-length parts of two
      different states can never collide. *)
  let sep b = Buffer.add_char b '|'

  let ints b a =
    int b (Array.length a);
    Array.iter (int b) a;
    sep b

  let bools b a =
    int b (Array.length a);
    Array.iter (bool b) a;
    sep b

  (** Value-relevant cache state: per frame (in set/frame order) the tag,
      protocol state, LRU rank within its set, and per-word validity,
      values and scheme metadata. Classification-only fields (touch bits,
      fetch history, invalidation provenance flags) and the absolute LRU
      tick are deliberately excluded — they never change which values a
      future access can observe, and the raw tick would make every
      snapshot unique. *)
  let cache b (c : Cache.t) =
    let assoc = Cache.assoc c in
    Array.iter
      (fun set ->
        if Array.length set = 0 then
          (* unmaterialized set: encode as [assoc] invalid frames, so the
             encoding never depends on whether a set was ever allocated *)
          for _ = 1 to assoc do
            Buffer.add_char b '.'
          done
        else begin
          (* ranks, not raw ticks: eviction order is what matters *)
          let order = Array.map (fun (l : Cache.line) -> l.Cache.lru) set in
          let rank l =
            let r = ref 0 in
            Array.iter (fun o -> if o < l then incr r) order;
            !r
          in
          Array.iter
            (fun (l : Cache.line) ->
              if l.Cache.state = Cache.invalid_state then Buffer.add_char b '.'
              else begin
                int b l.Cache.tag;
                int b l.Cache.state;
                int b (rank l.Cache.lru);
                bools b l.Cache.word_valid;
                ints b l.Cache.values;
                ints b l.Cache.meta
              end)
            set
        end;
        sep b)
      (Cache.frame_sets c)

  let caches b a = Array.iter (cache b) a
end

module type S = sig
  type t

  val name : string

  val create :
    Config.t -> memory_words:int -> network:Kruskal_snir.t -> traffic:Traffic.t -> t

  (** [array] is the interned dense id of the referenced array (the
      {!Hscd_util.Symtab} of the packed trace, ids in [Shape.layout] base
      order) — schemes that reason per variable (VC) index plain arrays
      with it; no strings reach the replay loop. *)
  val read : t -> proc:int -> addr:int -> array:int -> mark:Event.rmark -> access_result

  val write :
    t -> proc:int -> addr:int -> array:int -> value:int -> mark:Event.wmark -> access_result

  (** Called at every epoch boundary. Fills the caller-owned [stalls]
      scratch (one entry per processor, reused across epochs — never
      retained) with per-processor stall cycles (two-phase resets, buffer
      drains); every entry is overwritten. Replacing the old
      fresh-[int array]-per-epoch contract keeps the boundary path
      allocation-free. *)
  val epoch_boundary : t -> stalls:int array -> unit

  (** Sharded replay support: called once per epoch boundary with every
      shard's scheme slice (the whole team, index = shard id), after all
      shards finished the epoch's accesses and {e before} any slice runs
      {!epoch_boundary}. Schemes whose state is fully partitioned by
      memory line (every scheme here except VC) need no cross-shard
      exchange and leave this a no-op; VC merges its per-variable
      written-this-epoch flags so every slice bumps the same version
      numbers. Must be deterministic and independent of the team size:
      a single-slice team must behave exactly like the unsharded
      scheme (the sharded engine's bit-identity gate relies on it). *)
  val boundary_exchange : t array -> unit

  val stats : t -> stats

  (** Final memory image, for end-of-run comparison against the golden
      interpreter. *)
  val memory_image : t -> int array

  (** Canonical encoding of the scheme's abstract coherence state —
      everything that determines which values future accesses can
      observe: the memory image, per-processor cached words (validity,
      value, timetag/version metadata), epoch and version counters, and
      directory entries. Timing state (clocks, network load, write-buffer
      occupancy) and statistics counters are excluded. Replaying the same
      access sequence on a fresh instance must reproduce the same
      snapshot (asserted by the test suite); the bounded model checker
      ({!Hscd_check.Mc}) hashes and dedups explored states on it. *)
  val snapshot : t -> string
end

type packed = Packed : (module S with type t = 't) * 't -> packed

(** Latency of a remote transaction transferring [words] words at the
    current network load. *)
let transfer_latency (c : Config.t) (net : Kruskal_snir.t) ~words =
  c.miss_base_cycles
  + (max 0 (words - 1) * c.word_transfer_cycles)
  + Kruskal_snir.round_trip_excess net

(** Header/request words accompanying a transaction. *)
let control_words = 1
