(** Per-run performance counters aggregated by the engine. *)

module Scheme = Hscd_coherence.Scheme
module Traffic = Hscd_network.Traffic

let n_classes = 8

let class_index : Scheme.miss_class -> int = function
  | Scheme.Hit -> 0
  | Scheme.Cold -> 1
  | Scheme.Replacement -> 2
  | Scheme.True_sharing -> 3
  | Scheme.False_sharing -> 4
  | Scheme.Conservative -> 5
  | Scheme.Reset_inv -> 6
  | Scheme.Uncached -> 7

let class_of_index = function
  | 0 -> Scheme.Hit
  | 1 -> Scheme.Cold
  | 2 -> Scheme.Replacement
  | 3 -> Scheme.True_sharing
  | 4 -> Scheme.False_sharing
  | 5 -> Scheme.Conservative
  | 6 -> Scheme.Reset_inv
  | _ -> Scheme.Uncached

type t = {
  read_classes : int array;
  write_classes : int array;
  (* int counters, not a float accumulator: the engine bumps these per
     miss and boxed-float record fields would allocate on every update *)
  mutable read_miss_count : int;
  mutable read_miss_cycles : int;
  mutable compute_cycles : int;
  mutable barriers : int;
  mutable lock_acquires : int;
  mutable lock_wait_cycles : int;
  mutable migrations : int;
  mutable cycles : int;  (** total execution time *)
  mutable violations : int;  (** loads observing a non-golden value *)
  mutable traffic : Traffic.snapshot;
  mutable scheme_stats : Scheme.stats;
}

let create () =
  {
    read_classes = Array.make n_classes 0;
    write_classes = Array.make n_classes 0;
    read_miss_count = 0;
    read_miss_cycles = 0;
    compute_cycles = 0;
    barriers = 0;
    lock_acquires = 0;
    lock_wait_cycles = 0;
    migrations = 0;
    cycles = 0;
    violations = 0;
    traffic = { Traffic.reads = 0; writes = 0; coherence = 0; control = 0 };
    scheme_stats = Scheme.fresh_stats ();
  }

let record_read t (r : Scheme.access_result) =
  t.read_classes.(class_index r.cls) <- t.read_classes.(class_index r.cls) + 1;
  if r.cls <> Scheme.Hit then begin
    t.read_miss_count <- t.read_miss_count + 1;
    t.read_miss_cycles <- t.read_miss_cycles + r.latency
  end

let record_write t (r : Scheme.access_result) =
  t.write_classes.(class_index r.cls) <- t.write_classes.(class_index r.cls) + 1

let reads t = Array.fold_left ( + ) 0 t.read_classes
let writes t = Array.fold_left ( + ) 0 t.write_classes
let accesses t = reads t + writes t

let read_hits t = t.read_classes.(0)
let read_misses t = reads t - read_hits t

(** Misses over all shared-data references (reads + writes), uncached
    accesses counted as misses — the Figure 11 metric. *)
let miss_rate t =
  let total = accesses t in
  let hits = t.read_classes.(0) + t.write_classes.(0) in
  Hscd_util.Stats.ratio (total - hits) total

let read_miss_rate t = Hscd_util.Stats.ratio (read_misses t) (reads t)

(** Unnecessary misses: false sharing (hardware) + conservative-compiler +
    reset misses, over reads and writes. *)
let unnecessary_misses t =
  t.read_classes.(4) + t.read_classes.(5) + t.read_classes.(6)
  + t.write_classes.(4) + t.write_classes.(5) + t.write_classes.(6)

let class_count t cls = t.read_classes.(class_index cls) + t.write_classes.(class_index cls)

let avg_read_miss_latency t = Hscd_util.Stats.ratio t.read_miss_cycles t.read_miss_count
