(** Top-level pipeline: source program → sema → compiler marking → trace →
    per-scheme simulation. The API the experiments, examples and CLI use. *)

type scheme_kind = Base | SC | TPI | HW | LimitLESS | VC | INV

val scheme_name : scheme_kind -> string

(** The four schemes of the paper's evaluation. *)
val all_schemes : scheme_kind list

(** Plus the related-work schemes built as extensions. *)
val extended_schemes : scheme_kind list

(** Instantiate a scheme (used by the engine; exposed for tests). *)
val pack :
  scheme_kind ->
  Hscd_arch.Config.t ->
  memory_words:int ->
  network:Hscd_network.Kruskal_snir.t ->
  traffic:Hscd_network.Traffic.t ->
  Hscd_coherence.Scheme.packed

type compiled = {
  marked : Hscd_lang.Ast.program;
  census : Hscd_compiler.Marking.census;
  trace : Trace.t;
  packed_trace : Trace.packed;  (** engine-native form, compiled once *)
}

(** Front half: check, mark (soundly w.r.t. the config's scheduling
    policy), trace, pack. *)
val compile :
  ?cfg:Hscd_arch.Config.t ->
  ?intertask:bool ->
  ?check_races:bool ->
  Hscd_lang.Ast.program ->
  compiled

(** Back half: one scheme over a packed (engine-native) trace. *)
val simulate_packed :
  ?cfg:Hscd_arch.Config.t -> scheme_kind -> Trace.packed -> Engine.result

(** One scheme over a boxed trace via the legacy replay loop —
    bit-identical to {!simulate_packed} on the packed form. *)
val simulate_boxed : ?cfg:Hscd_arch.Config.t -> scheme_kind -> Trace.t -> Engine.result

(** One scheme over a boxed trace: packs, then replays natively. *)
val simulate : ?cfg:Hscd_arch.Config.t -> scheme_kind -> Trace.t -> Engine.result

type comparison = { kind : scheme_kind; result : Engine.result }

(** Compile once, then run each scheme on the same trace (the paper's
    methodology: identical reference streams). [jobs] (default 1) is the
    number of domains simulating schemes concurrently; any value produces
    bit-identical results. *)
val compare :
  ?cfg:Hscd_arch.Config.t ->
  ?schemes:scheme_kind list ->
  ?intertask:bool ->
  ?jobs:int ->
  Hscd_lang.Ast.program ->
  compiled * comparison list

(** One scheme from source. *)
val run_source :
  ?cfg:Hscd_arch.Config.t ->
  ?intertask:bool ->
  scheme_kind ->
  Hscd_lang.Ast.program ->
  compiled * Engine.result
