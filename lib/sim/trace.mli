(** Execution-driven trace generation: runs a (marked) program under the
    instrumented interpreter and collects per-epoch, per-task memory-event
    streams plus the golden final memory. *)

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type task = { iter : int; events : Hscd_arch.Event.t array }

type epoch = { kind : epoch_kind; tasks : task array }

type t = {
  epochs : epoch array;
  layout : Hscd_lang.Shape.layout;
  golden_memory : int array;
  total_events : int;
}

(** Generate the trace of a sema-checked (and normally compiler-marked)
    program. [line_words] must match the simulated machine's line size. *)
val of_program : ?check_races:bool -> ?line_words:int -> Hscd_lang.Ast.program -> t

(** Packed structure-of-arrays form — the engine's native input. Each
    task's event stream lives in parallel unboxed [int array] slabs
    (opcode, address, value, mark code, interned array id), built once at
    trace-compile time; the replay hot path decodes events by index
    without constructing a single variant. *)

type ptask = {
  p_iter : int;
  off : int;  (** first slot of this task's events in the slabs *)
  len : int;  (** number of slots *)
  ticket0 : int;  (** first critical-section ticket of the task *)
  n_locks : int;  (** tickets [ticket0 .. ticket0 + n_locks - 1] *)
}

type pepoch = { p_kind : epoch_kind; p_tasks : ptask array; p_n_tickets : int }

type packed = {
  ops : int array;  (** {!Hscd_arch.Event.Code} opcode per slot *)
  addrs : int array;  (** address (or cycle count for compute slots) *)
  values : int array;  (** golden value per read/write slot *)
  marks : int array;  (** rmark/wmark code, interpreted per opcode *)
  arrs : int array;  (** interned array id per read/write slot *)
  p_epochs : pepoch array;
  symtab : Hscd_util.Symtab.t;  (** array-name interning, layout base order *)
  rmark_table : Hscd_arch.Event.rmark array;  (** decode table by mark code *)
  p_layout : Hscd_lang.Shape.layout;
  p_golden : int array;
  p_total_events : int;  (** memory + sync events, as in {!t.total_events} *)
  n_slots : int;  (** total slots incl. compute *)
  p_max_tickets : int;  (** max tickets over all epochs *)
}

(** Symtab seeded with the layout's arrays in base order — the canonical
    id assignment shared by the packed and boxed replay paths. *)
val symtab_of_layout : Hscd_lang.Shape.layout -> Hscd_util.Symtab.t

(** Compile the boxed trace into the packed form. Kept as the independent
    reference implementation the streaming {!Builder} is tested against. *)
val pack : t -> packed

(** Streaming trace builder: growable unboxed slabs (same five-slab layout
    as {!packed}, amortized doubling) that {!Hscd_lang.Eval} hooks append
    into directly. The per-event path is free of minor-heap allocation:
    array ids are interned through a one-entry memo, marks convert from
    AST codes without an intermediate variant, and compute work coalesces
    into a pending counter exactly as {!of_program} does. *)
module Builder : sig
  type t

  val create : ?capacity:int -> unit -> t

  (** Seed the interner from the address map (canonical layout-order ids).
      Must run before the first emit; {!hooks} wires it to [on_init]. *)
  val init : t -> Hscd_lang.Shape.layout -> unit

  (** Eval hooks that stream events straight into the slabs. *)
  val hooks : t -> Hscd_lang.Eval.hooks

  (** Close the builder into a packed trace. Slabs keep their grown
      capacity (only [n_slots] entries are live). [total_events] overrides
      the builder's own count when re-packing a trace whose bookkeeping
      differs (e.g. corpus traces loaded by {!Trace_io.load}). *)
  val finish : ?total_events:int -> t -> golden:int array -> packed
end

(** Generate the packed trace directly — instrumented interpreter with
    {!Builder} hooks, no boxed [t] ever materialized. Replay results are
    bit-identical to [pack (of_program p)]. *)
val of_program_packed :
  ?check_races:bool -> ?line_words:int -> Hscd_lang.Ast.program -> packed

(** Stream an existing boxed trace through the builder; slot-for-slot
    identical to {!pack}. *)
val pack_streaming : t -> packed

(** Reconstruct the boxed form (exact inverse of {!pack}), for text
    serialization and differential tests. *)
val unpack : packed -> t

(** At least 1, for allocating scheme memory images. *)
val packed_memory_words : packed -> int

(** Approximate live heap words of the packed slabs (counts capacity,
    including builder growth headroom), for footprint reporting. *)
val packed_slab_words : packed -> int

val packed_n_epochs : packed -> int
val packed_n_parallel_epochs : packed -> int

(** (reads, writes) over the live slots, without unpacking. *)
val packed_access_counts : packed -> int * int

val n_epochs : t -> int
val n_parallel_epochs : t -> int

(** At least 1, for allocating scheme memory images. *)
val memory_words : t -> int

(** (reads, writes) over the whole trace. *)
val access_counts : t -> int * int
