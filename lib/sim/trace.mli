(** Execution-driven trace generation: runs a (marked) program under the
    instrumented interpreter and collects per-epoch, per-task memory-event
    streams plus the golden final memory. *)

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type task = { iter : int; events : Hscd_arch.Event.t array }

type epoch = { kind : epoch_kind; tasks : task array }

type t = {
  epochs : epoch array;
  layout : Hscd_lang.Shape.layout;
  golden_memory : int array;
  total_events : int;
}

(** Generate the trace of a sema-checked (and normally compiler-marked)
    program. [line_words] must match the simulated machine's line size. *)
val of_program : ?check_races:bool -> ?line_words:int -> Hscd_lang.Ast.program -> t

(** Packed structure-of-arrays form — the engine's native input. Each
    task's event stream lives in parallel unboxed slabs
    (opcode, address, value, mark code, interned array id), built once at
    trace-compile time; the replay hot path decodes events by index
    without constructing a single variant. *)

(** Unboxed int slabs backing the packed form: [Bigarray.Array1] of OCaml
    ints, so a slab is either heap-allocated or a zero-copy view into an
    [Unix.map_file]d binary trace ({!Trace_io.map_packed}) — the engine
    replays both through the same accessors. *)
module Slab : sig
  type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  (** Fresh zero-filled slab. *)
  val create : int -> t

  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit

  (** Zero-copy sub-view sharing the underlying storage. *)
  val sub : t -> int -> int -> t

  (** Copy the first [len] elements of an [int array] into a fresh slab. *)
  val of_int_array_sub : int array -> int -> t

  val of_int_array : int array -> t
  val to_int_array : t -> int array
end

type ptask = {
  p_iter : int;
  off : int;  (** first slot of this task's events in the slabs *)
  len : int;  (** number of slots *)
  ticket0 : int;  (** first critical-section ticket of the task *)
  n_locks : int;  (** tickets [ticket0 .. ticket0 + n_locks - 1] *)
}

type pepoch = { p_kind : epoch_kind; p_tasks : ptask array; p_n_tickets : int }

type packed = {
  ops : Slab.t;  (** {!Hscd_arch.Event.Code} opcode per slot *)
  addrs : Slab.t;  (** address (or cycle count for compute slots) *)
  values : Slab.t;  (** golden value per read/write slot *)
  marks : Slab.t;  (** rmark/wmark code, interpreted per opcode *)
  arrs : Slab.t;  (** interned array id per read/write slot *)
  p_epochs : pepoch array;
  symtab : Hscd_util.Symtab.t;  (** array-name interning, layout base order *)
  rmark_table : Hscd_arch.Event.rmark array;  (** decode table by mark code *)
  p_layout : Hscd_lang.Shape.layout;
  p_golden : int array;
  p_total_events : int;  (** memory + sync events, as in {!t.total_events} *)
  n_slots : int;  (** total slots incl. compute *)
  p_max_tickets : int;  (** max tickets over all epochs *)
}

(** Symtab seeded with the layout's arrays in base order — the canonical
    id assignment shared by the packed and boxed replay paths. *)
val symtab_of_layout : Hscd_lang.Shape.layout -> Hscd_util.Symtab.t

(** Compile the boxed trace into the packed form. Kept as the independent
    reference implementation the streaming {!Builder} is tested against. *)
val pack : t -> packed

(** Streaming trace builder: growable unboxed slabs (same five-slab layout
    as {!packed}, amortized doubling) that {!Hscd_lang.Eval} hooks append
    into directly. The per-event path is free of minor-heap allocation:
    array ids are interned through a one-entry memo, marks convert from
    AST codes without an intermediate variant, and compute work coalesces
    into a pending counter exactly as {!of_program} does. *)
module Builder : sig
  type t

  val create : ?capacity:int -> unit -> t

  (** Seed the interner from the address map (canonical layout-order ids).
      Must run before the first emit; {!hooks} wires it to [on_init]. *)
  val init : t -> Hscd_lang.Shape.layout -> unit

  (** Eval hooks that stream events straight into the slabs. *)
  val hooks : t -> Hscd_lang.Eval.hooks

  (** Close the builder into a packed trace. Slabs keep their grown
      capacity (only [n_slots] entries are live). [total_events] overrides
      the builder's own count when re-packing a trace whose bookkeeping
      differs (e.g. corpus traces loaded by {!Trace_io.load}). *)
  val finish : ?total_events:int -> t -> golden:int array -> packed
end

(** Generate the packed trace directly — instrumented interpreter with
    {!Builder} hooks, no boxed [t] ever materialized. Replay results are
    bit-identical to [pack (of_program p)]. *)
val of_program_packed :
  ?check_races:bool -> ?line_words:int -> Hscd_lang.Ast.program -> packed

(** Stream an existing boxed trace through the builder; slot-for-slot
    identical to {!pack}. *)
val pack_streaming : t -> packed

(** Reconstruct the boxed form (exact inverse of {!pack}), for text
    serialization and differential tests. *)
val unpack : packed -> t

(** At least 1, for allocating scheme memory images. *)
val packed_memory_words : packed -> int

(** Approximate live heap words of the packed slabs (counts capacity,
    including builder growth headroom), for footprint reporting. *)
val packed_slab_words : packed -> int

(** Address partition and timing-reconstruction plan for the sharded
    multi-domain replay ({!Engine.run_sharded}). Accesses are partitioned
    by cache-set group, so lines, cache sets, directory entries and
    per-line memory state never split across shards; per-epoch cost bins
    (processor event segments delimited by Lock/Unlock) let the epoch
    barrier reproduce the sequential engine's lock serialization from
    per-bin latency sums. Requires static scheduling. *)
module Shard : sig
  type epoch_plan = {
    sp_nbins : int;
    sp_bin_proc : int array;  (** bin -> executing processor *)
    sp_bin_static : int array;  (** bin -> compute cycles (work statements) *)
    sp_proc_bin0 : int array;  (** proc -> its first bin this epoch *)
    sp_ticket_proc : int array;  (** ticket -> processor holding it *)
    sp_compute_total : int;  (** sum of all compute cycles in the epoch *)
  }

  type plan = {
    sh_shards : int;
    sh_epochs : epoch_plan array;
    sh_slots : Slab.t array;  (** shard -> owned read/write slots, ascending *)
    sh_bins : Slab.t array;  (** shard -> epoch-local bin of each owned slot *)
    sh_off : int array array;  (** shard -> epoch -> first index in [sh_slots] *)
    sh_max_bins : int;  (** max [sp_nbins] over epochs (scratch sizing) *)
  }

  (** Owning shard of an address: the line's cache-set index modulo the
      shard count. Also the owner used when merging final memory images. *)
  val shard_of_addr : Hscd_arch.Config.t -> shards:int -> int -> int

  (** Build the partition. Raises [Invalid_argument] on [shards < 1] or
      dynamic scheduling (use {!Run.simulate_packed_sharded} for the typed
      error). *)
  val build : Hscd_arch.Config.t -> shards:int -> packed -> plan
end

val packed_n_epochs : packed -> int
val packed_n_parallel_epochs : packed -> int

(** (reads, writes) over the live slots, without unpacking. *)
val packed_access_counts : packed -> int * int

val n_epochs : t -> int
val n_parallel_epochs : t -> int

(** At least 1, for allocating scheme memory images. *)
val memory_words : t -> int

(** (reads, writes) over the whole trace. *)
val access_counts : t -> int * int
