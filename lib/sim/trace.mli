(** Execution-driven trace generation: runs a (marked) program under the
    instrumented interpreter and collects per-epoch, per-task memory-event
    streams plus the golden final memory. *)

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type task = { iter : int; events : Hscd_arch.Event.t array }

type epoch = { kind : epoch_kind; tasks : task array }

type t = {
  epochs : epoch array;
  layout : Hscd_lang.Shape.layout;
  golden_memory : int array;
  total_events : int;
}

(** Generate the trace of a sema-checked (and normally compiler-marked)
    program. [line_words] must match the simulated machine's line size. *)
val of_program : ?check_races:bool -> ?line_words:int -> Hscd_lang.Ast.program -> t

(** Packed structure-of-arrays form — the engine's native input. Each
    task's event stream lives in parallel unboxed [int array] slabs
    (opcode, address, value, mark code, interned array id), built once at
    trace-compile time; the replay hot path decodes events by index
    without constructing a single variant. *)

type ptask = {
  p_iter : int;
  off : int;  (** first slot of this task's events in the slabs *)
  len : int;  (** number of slots *)
  ticket0 : int;  (** first critical-section ticket of the task *)
  n_locks : int;  (** tickets [ticket0 .. ticket0 + n_locks - 1] *)
}

type pepoch = { p_kind : epoch_kind; p_tasks : ptask array; p_n_tickets : int }

type packed = {
  ops : int array;  (** {!Hscd_arch.Event.Code} opcode per slot *)
  addrs : int array;  (** address (or cycle count for compute slots) *)
  values : int array;  (** golden value per read/write slot *)
  marks : int array;  (** rmark/wmark code, interpreted per opcode *)
  arrs : int array;  (** interned array id per read/write slot *)
  p_epochs : pepoch array;
  symtab : Hscd_util.Symtab.t;  (** array-name interning, layout base order *)
  rmark_table : Hscd_arch.Event.rmark array;  (** decode table by mark code *)
  p_layout : Hscd_lang.Shape.layout;
  p_golden : int array;
  p_total_events : int;  (** memory + sync events, as in {!t.total_events} *)
  n_slots : int;  (** total slots incl. compute *)
  p_max_tickets : int;  (** max tickets over all epochs *)
}

(** Symtab seeded with the layout's arrays in base order — the canonical
    id assignment shared by the packed and boxed replay paths. *)
val symtab_of_layout : Hscd_lang.Shape.layout -> Hscd_util.Symtab.t

(** Compile the boxed trace into the packed form. *)
val pack : t -> packed

(** At least 1, for allocating scheme memory images. *)
val packed_memory_words : packed -> int

(** Approximate live heap words of the packed slabs, for footprint
    reporting. *)
val packed_slab_words : packed -> int

val n_epochs : t -> int
val n_parallel_epochs : t -> int

(** At least 1, for allocating scheme memory images. *)
val memory_words : t -> int

(** (reads, writes) over the whole trace. *)
val access_counts : t -> int * int
