(** Per-run performance counters aggregated by the engine. *)

module Scheme = Hscd_coherence.Scheme
module Traffic = Hscd_network.Traffic

val n_classes : int
val class_index : Scheme.miss_class -> int
val class_of_index : int -> Scheme.miss_class

type t = {
  read_classes : int array;  (** indexed by {!class_index} *)
  write_classes : int array;
  mutable read_miss_count : int;
  mutable read_miss_cycles : int;
  mutable compute_cycles : int;
  mutable barriers : int;
  mutable lock_acquires : int;
  mutable lock_wait_cycles : int;
  mutable migrations : int;
  mutable cycles : int;  (** total execution time *)
  mutable violations : int;  (** loads observing a non-golden value *)
  mutable traffic : Traffic.snapshot;
  mutable scheme_stats : Scheme.stats;
}

val create : unit -> t

val record_read : t -> Scheme.access_result -> unit
val record_write : t -> Scheme.access_result -> unit

val reads : t -> int
val writes : t -> int
val accesses : t -> int
val read_hits : t -> int
val read_misses : t -> int

(** Misses over all shared-data references, uncached accesses counted as
    misses — the Figure 11 metric. *)
val miss_rate : t -> float

val read_miss_rate : t -> float

(** False sharing + conservative + reset misses, reads and writes. *)
val unnecessary_misses : t -> int

val class_count : t -> Scheme.miss_class -> int
val avg_read_miss_latency : t -> float
