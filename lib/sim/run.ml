(** Top-level pipeline: source program → sema → compiler marking → trace →
    per-scheme simulation. This is the API the experiments, examples and
    CLI drive. *)

module Ast = Hscd_lang.Ast
module Sema = Hscd_lang.Sema
module Config = Hscd_arch.Config
module Marking = Hscd_compiler.Marking
module Scheme = Hscd_coherence.Scheme
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic
module Err = Hscd_util.Hscd_error
module Pool = Hscd_util.Pool
module Journal = Hscd_util.Journal

type scheme_kind = Base | SC | TPI | HW | LimitLESS | VC | INV

let scheme_name = function
  | Base -> "BASE"
  | SC -> "SC"
  | TPI -> "TPI"
  | HW -> "HW"
  | LimitLESS -> "LimitLESS"
  | VC -> "VC"
  | INV -> "INV"

(** The four schemes of the paper's evaluation. *)
let all_schemes = [ Base; SC; TPI; HW ]

(** Plus the related-work schemes built as extensions: INV [35], VC [14]
    and LimitLESS [2]. *)
let extended_schemes = [ Base; SC; INV; VC; TPI; HW; LimitLESS ]

let pack kind cfg ~memory_words ~network ~traffic =
  match kind with
  | Base ->
    Scheme.Packed
      ((module Hscd_coherence.Base), Hscd_coherence.Base.create cfg ~memory_words ~network ~traffic)
  | SC ->
    Scheme.Packed
      ((module Hscd_coherence.Sc), Hscd_coherence.Sc.create cfg ~memory_words ~network ~traffic)
  | TPI ->
    Scheme.Packed
      ((module Hscd_coherence.Tpi), Hscd_coherence.Tpi.create cfg ~memory_words ~network ~traffic)
  | HW ->
    Scheme.Packed
      ((module Hscd_coherence.Hwdir), Hscd_coherence.Hwdir.create cfg ~memory_words ~network ~traffic)
  | LimitLESS ->
    Scheme.Packed
      ( (module Hscd_coherence.Limitless),
        Hscd_coherence.Limitless.create cfg ~memory_words ~network ~traffic )
  | VC ->
    Scheme.Packed
      ((module Hscd_coherence.Vc), Hscd_coherence.Vc.create cfg ~memory_words ~network ~traffic)
  | INV ->
    Scheme.Packed
      ((module Hscd_coherence.Inv), Hscd_coherence.Inv.create cfg ~memory_words ~network ~traffic)

type compiled = {
  marked : Ast.program;
  census : Marking.census;
  packed_trace : Trace.packed;  (** engine-native form, compiled once *)
}

(** The boxed trace, reconstructed on demand — the compiled artifact only
    retains the engine-native packed form. *)
let boxed_trace (c : compiled) = Trace.unpack c.packed_trace

(* ------------------------------------------------------------------ *)
(* Compile cache: parameter sweeps hit [compile] once per point, but    *)
(* most points share the reference stream — only the trace-relevant     *)
(* knobs (line size, scheduling staticness, marking flags) change it.   *)
(* The in-memory table shares [compiled] across a process; the optional *)
(* on-disk store (binary v2 traces) shares them across processes.       *)
(* ------------------------------------------------------------------ *)

type cache_stats = { trace_generations : int; memory_hits : int; disk_hits : int }

let cache_table : (string, compiled) Hashtbl.t = Hashtbl.create 16

(* Guards the table and the counters: [compile] may be called from pool
   worker domains. Trace generation and disk I/O stay outside the lock —
   concurrent same-key compiles may both generate, but never corrupt. *)
let cache_mu = Mutex.create ()
let n_generations = ref 0
let n_memory_hits = ref 0
let n_disk_hits = ref 0
let cache_dir = ref (Sys.getenv_opt "HSCD_COMPILE_CACHE")

let set_compile_cache_dir d = cache_dir := d

let compile_cache_stats () =
  Mutex.protect cache_mu (fun () ->
      { trace_generations = !n_generations; memory_hits = !n_memory_hits; disk_hits = !n_disk_hits })

let reset_compile_cache () =
  Mutex.protect cache_mu (fun () ->
      Hashtbl.reset cache_table;
      n_generations := 0;
      n_memory_hits := 0;
      n_disk_hits := 0)

(* Key: digest of the printed (sema-checked, pre-marking) program plus the
   knobs that reach the reference stream. Timing-side parameters
   (processors, timetag bits, cache geometry beyond the line size) are
   deliberately absent, so every point of a sweep shares one entry. *)
let cache_key ~cfg ~intertask ~check_races program =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Hscd_lang.Printer.program_to_string program;
            string_of_int cfg.Config.line_words;
            string_of_bool (Schedule.is_static cfg);
            string_of_bool intertask;
            string_of_bool check_races;
          ]))

let disk_path dir key = Filename.concat dir (key ^ ".hscdtrc")

let disk_read key =
  match !cache_dir with
  | None -> None
  | Some dir ->
    let path = disk_path dir key in
    (* a corrupt, truncated or unreadable entry is silently regenerated *)
    if Sys.file_exists path then (try Some (Trace_io.read_packed path) with Err.Error _ -> None)
    else None

(* best-effort: a full disk or read-only dir must never fail a compile.
   The tmp name is writer-unique (temp_file) so concurrent writers of the
   same key never interleave into one file; the atomic rename means the
   last complete write wins and readers only ever see whole entries. *)
let disk_write key packed =
  match !cache_dir with
  | None -> ()
  | Some dir -> (
    try
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = disk_path dir key in
      let tmp = Filename.temp_file ~temp_dir:dir (key ^ ".") ".tmp" in
      Trace_io.write_packed tmp packed;
      Sys.rename tmp path
    with _ -> ())

(** Front half: check, mark, trace (streamed straight into the packed
    form). The marking is told whether the engine's scheduling policy is
    static, so owner-alignment stays sound. [cache] (default on) consults
    the compile cache keyed on the program text and trace-relevant knobs. *)
let compile ?(cfg = Config.default) ?(intertask = true) ?(check_races = true) ?(cache = true)
    (program : Ast.program) =
  let program = Sema.check_exn program in
  let key = if cache then Some (cache_key ~cfg ~intertask ~check_races program) else None in
  let hit =
    match key with
    | None -> None
    | Some k ->
      Mutex.protect cache_mu (fun () ->
          let c = Hashtbl.find_opt cache_table k in
          if Option.is_some c then incr n_memory_hits;
          c)
  in
  match hit with
  | Some c -> c
  | None ->
    let m = Marking.mark_program ~static_sched:(Schedule.is_static cfg) ~intertask program in
    let packed_trace =
      match (match key with Some k -> disk_read k | None -> None) with
      | Some p ->
        Mutex.protect cache_mu (fun () -> incr n_disk_hits);
        p
      | None ->
        Mutex.protect cache_mu (fun () -> incr n_generations);
        let p =
          Trace.of_program_packed ~check_races ~line_words:cfg.line_words m.Marking.program
        in
        (match key with Some k -> disk_write k p | None -> ());
        p
    in
    let c = { marked = m.Marking.program; census = m.Marking.census; packed_trace } in
    (match key with Some k -> Mutex.protect cache_mu (fun () -> Hashtbl.replace cache_table k c) | None -> ());
    c

(** Back half: one scheme over a packed trace (the engine-native form —
    packed traces are immutable, so one can be shared across domains). *)
let simulate_packed ?(cfg = Config.default) kind (trace : Trace.packed) =
  let cfg = Config.validate cfg in
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let packed = pack kind cfg ~memory_words:(Trace.packed_memory_words trace) ~network ~traffic in
  Engine.run cfg packed ~net:network ~traffic trace

let scheme_module : scheme_kind -> (module Scheme.S) = function
  | Base -> (module Hscd_coherence.Base)
  | SC -> (module Hscd_coherence.Sc)
  | TPI -> (module Hscd_coherence.Tpi)
  | HW -> (module Hscd_coherence.Hwdir)
  | LimitLESS -> (module Hscd_coherence.Limitless)
  | VC -> (module Hscd_coherence.Vc)
  | INV -> (module Hscd_coherence.Inv)

(** One scheme over a packed trace, sharded across [shards] replay slices
    (on a domain team when [parallel], the default). Bit-identical at
    every shard count; requires static scheduling and no migration. BASE
    and TPI dispatch to the engine's monomorphized replay loops. *)
let simulate_packed_sharded ?(cfg = Config.default) ?parallel ~shards kind
    (trace : Trace.packed) =
  let cfg = Config.validate cfg in
  if shards < 1 then Err.fail Err.Usage "shards must be >= 1 (got %d)" shards;
  if not (Schedule.is_static cfg) then
    Err.fail Err.Usage
      "sharded replay requires a static scheduling policy (block or cyclic), not dynamic";
  if cfg.Config.migration_rate > 0.0 then
    Err.fail Err.Usage "sharded replay requires migration_rate = 0 (got %g)"
      cfg.Config.migration_rate;
  match kind with
  | Base -> Engine.run_sharded_base ?parallel cfg ~shards trace
  | TPI -> Engine.run_sharded_tpi ?parallel cfg ~shards trace
  | kind -> Engine.run_sharded ?parallel cfg (scheme_module kind) ~shards trace

(** One scheme over a memory-mapped binary trace: slab chunks are
    checksum-validated lazily, as replay first enters each epoch — a
    corrupt byte in epoch [e]'s span surfaces as a typed [Corrupt] error
    no later than the start of [e], and chunks no epoch touches are
    validated only if something reads them. *)
let simulate_mapped ?(cfg = Config.default) kind (m : Trace_io.Mapped.t) =
  let cfg = Config.validate cfg in
  let trace = Trace_io.Mapped.trace m in
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let packed = pack kind cfg ~memory_words:(Trace.packed_memory_words trace) ~network ~traffic in
  Engine.run ~on_epoch:(Trace_io.Mapped.validate_epoch m) cfg packed ~net:network ~traffic trace

(** Sharded replay of a memory-mapped trace. The shard planner reads the
    whole trace up front, so the map is validated in full first (still
    O(1) resident until then). *)
let simulate_mapped_sharded ?cfg ?parallel ~shards kind (m : Trace_io.Mapped.t) =
  Trace_io.Mapped.validate_all m;
  simulate_packed_sharded ?cfg ?parallel ~shards kind (Trace_io.Mapped.trace m)

(** One scheme over a boxed trace via the legacy replay loop —
    bit-identical to {!simulate_packed} on [Trace.pack trace]. *)
let simulate_boxed ?(cfg = Config.default) kind (trace : Trace.t) =
  let cfg = Config.validate cfg in
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let packed = pack kind cfg ~memory_words:(Trace.memory_words trace) ~network ~traffic in
  Engine.run_boxed cfg packed ~net:network ~traffic trace

(** One scheme over a boxed trace: packs, then replays natively. *)
let simulate ?(cfg = Config.default) kind (trace : Trace.t) =
  simulate_packed ~cfg kind (Trace.pack trace)

type comparison = { kind : scheme_kind; result : Engine.result }

(** Everything at once: compile once, then run each scheme on the same
    trace (the paper's methodology: identical reference streams). The
    trace is packed once and shared read-only. With [jobs > 1] the
    schemes run on separate domains — each simulation owns its network,
    traffic and scheme state and the engine's PRNG is per-run, so the
    results are bit-identical to the sequential run. *)
let compare ?(cfg = Config.default) ?(schemes = all_schemes) ?(intertask = true) ?cache ?jobs
    program =
  let c = compile ~cfg ~intertask ?cache program in
  ( c,
    Pool.map_exn ?jobs
      (fun kind -> { kind; result = simulate_packed ~cfg kind c.packed_trace })
      schemes )

(** {!compile} as a [result]: sema/parse failures come back typed (kind
    [Parse]) instead of as exceptions. *)
let compile_result ?cfg ?intertask ?check_races ?cache program =
  Err.guard ~default:Err.Parse ~context:"compile" (fun () ->
      compile ?cfg ?intertask ?check_races ?cache program)

(* ------------------------------------------------------------------ *)
(* Job-granular entry points: the units the service daemon schedules.  *)
(* A "cell" (one scheme over one compiled trace) is the atom of         *)
(* checkpointing, retry and progress reporting — every coarser job      *)
(* (compare, sweep) is a list of cells plus a compile.                  *)
(* ------------------------------------------------------------------ *)

let scheme_of_name s =
  match String.uppercase_ascii s with
  | "BASE" -> Ok Base
  | "SC" -> Ok SC
  | "TPI" -> Ok TPI
  | "HW" -> Ok HW
  | "LIMITLESS" -> Ok LimitLESS
  | "VC" -> Ok VC
  | "INV" -> Ok INV
  | _ -> Err.error Err.Usage "unknown scheme %s (known: BASE, SC, INV, VC, TPI, HW, LimitLESS)" s

let config_digest (cfg : Config.t) =
  Digest.to_hex (Digest.string (Marshal.to_string (cfg : Config.t) []))

let compiled_digest (c : compiled) =
  Digest.to_hex (Digest.string (Hscd_lang.Printer.program_to_string c.marked))

(** One simulation cell as a guarded [result] (never raises): the unit of
    work the sweep daemon journals and retries. *)
let simulate_packed_result ?cfg kind trace =
  Err.guard ~context:("simulate " ^ scheme_name kind) (fun () ->
      simulate_packed ?cfg kind trace)

(* ------------------------------------------------------------------ *)
(* Supervised comparison with checkpoint-resume. One journal record per *)
(* (program, config, scheme) cell, appended the moment the cell's       *)
(* simulation finishes — a crash or kill loses at most the in-flight    *)
(* cells, and a rerun with the same [checkpoint] path resumes, reusing  *)
(* completed cells bit-identically (the payload is the marshalled       *)
(* [Engine.result]).                                                    *)
(* ------------------------------------------------------------------ *)

let cell_key ~prefix ~prog_id ~cfg kind =
  Printf.sprintf "%s|%s|%s|%s" prefix prog_id (config_digest cfg) (scheme_name kind)

let decode_result payload =
  match (Marshal.from_string payload 0 : Engine.result) with
  | r -> Some r
  | exception _ -> None

(** Supervised {!compare}: each scheme is one supervised-pool task
    (retried on transient failure per [policy]); with [checkpoint],
    completed cells are journaled and a rerun resumes from them. On
    [Error], every cell completed so far is already in the journal. *)
let compare_result ?(cfg = Config.default) ?(schemes = all_schemes) ?(intertask = true) ?cache
    ?jobs ?(policy = Pool.default_policy) ?checkpoint program =
  match compile_result ~cfg ~intertask ?cache program with
  | Error e -> Error e
  | Ok c ->
    let prog_id = Digest.to_hex (Digest.string (Hscd_lang.Printer.program_to_string c.marked)) in
    let key kind = cell_key ~prefix:"compare" ~prog_id ~cfg kind in
    let with_journal k =
      match checkpoint with
      | None -> k None []
      | Some path -> (
        match Journal.open_append path with
        | Error e -> Error (Err.add_context "checkpoint" e)
        | Ok j -> Fun.protect ~finally:(fun () -> Journal.close j) (fun () -> k (Some j) (Journal.entries j)))
    in
    with_journal @@ fun journal entries ->
    let prior = Hashtbl.create 16 in
    List.iter (fun (k, payload) -> Hashtbl.replace prior k payload) entries;
    let prior_result kind = Option.bind (Hashtbl.find_opt prior (key kind)) decode_result in
    let todo = List.filter (fun kind -> prior_result kind = None) schemes in
    let todo_arr = Array.of_list todo in
    let outcomes, _stats =
      Pool.supervise ?jobs ~policy
        ~on_done:(fun i oc ->
          match (journal, oc) with
          | Some j, Pool.Done (r : Engine.result) ->
            Journal.append j ~key:(key todo_arr.(i)) (Marshal.to_string r [])
          | _ -> ())
        (fun kind -> simulate_packed ~cfg kind c.packed_trace)
        todo
    in
    let fresh = Hashtbl.create 16 in
    List.iteri (fun i oc -> Hashtbl.replace fresh (key todo_arr.(i)) oc) outcomes;
    let rec collect acc = function
      | [] -> Ok (c, List.rev acc)
      | kind :: rest -> (
        match Hashtbl.find_opt fresh (key kind) with
        | Some (Pool.Done r) -> collect ({ kind; result = r } :: acc) rest
        | Some (Pool.Failed e) -> Error (Err.add_context (scheme_name kind) e)
        | Some (Pool.Timed_out s) ->
          Err.error ~context:[ scheme_name kind ] Err.Timeout
            "simulation gave up after %.1fs" s
        | None -> (
          match prior_result kind with
          | Some r -> collect ({ kind; result = r } :: acc) rest
          | None -> Err.error Err.Internal "missing cell %s" (scheme_name kind)))
    in
    collect [] schemes

(** Convenience wrapper running one scheme from source. *)
let run_source ?(cfg = Config.default) ?(intertask = true) kind program =
  let c = compile ~cfg ~intertask program in
  (c, simulate_packed ~cfg kind c.packed_trace)
