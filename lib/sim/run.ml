(** Top-level pipeline: source program → sema → compiler marking → trace →
    per-scheme simulation. This is the API the experiments, examples and
    CLI drive. *)

module Ast = Hscd_lang.Ast
module Sema = Hscd_lang.Sema
module Config = Hscd_arch.Config
module Marking = Hscd_compiler.Marking
module Scheme = Hscd_coherence.Scheme
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic

type scheme_kind = Base | SC | TPI | HW | LimitLESS | VC | INV

let scheme_name = function
  | Base -> "BASE"
  | SC -> "SC"
  | TPI -> "TPI"
  | HW -> "HW"
  | LimitLESS -> "LimitLESS"
  | VC -> "VC"
  | INV -> "INV"

(** The four schemes of the paper's evaluation. *)
let all_schemes = [ Base; SC; TPI; HW ]

(** Plus the related-work schemes built as extensions: INV [35], VC [14]
    and LimitLESS [2]. *)
let extended_schemes = [ Base; SC; INV; VC; TPI; HW; LimitLESS ]

let pack kind cfg ~memory_words ~network ~traffic =
  match kind with
  | Base ->
    Scheme.Packed
      ((module Hscd_coherence.Base), Hscd_coherence.Base.create cfg ~memory_words ~network ~traffic)
  | SC ->
    Scheme.Packed
      ((module Hscd_coherence.Sc), Hscd_coherence.Sc.create cfg ~memory_words ~network ~traffic)
  | TPI ->
    Scheme.Packed
      ((module Hscd_coherence.Tpi), Hscd_coherence.Tpi.create cfg ~memory_words ~network ~traffic)
  | HW ->
    Scheme.Packed
      ((module Hscd_coherence.Hwdir), Hscd_coherence.Hwdir.create cfg ~memory_words ~network ~traffic)
  | LimitLESS ->
    Scheme.Packed
      ( (module Hscd_coherence.Limitless),
        Hscd_coherence.Limitless.create cfg ~memory_words ~network ~traffic )
  | VC ->
    Scheme.Packed
      ((module Hscd_coherence.Vc), Hscd_coherence.Vc.create cfg ~memory_words ~network ~traffic)
  | INV ->
    Scheme.Packed
      ((module Hscd_coherence.Inv), Hscd_coherence.Inv.create cfg ~memory_words ~network ~traffic)

type compiled = {
  marked : Ast.program;
  census : Marking.census;
  trace : Trace.t;
  packed_trace : Trace.packed;  (** engine-native form, compiled once *)
}

(** Front half: check, mark, trace, pack. The marking is told whether the
    engine's scheduling policy is static, so owner-alignment stays sound. *)
let compile ?(cfg = Config.default) ?(intertask = true) ?(check_races = true)
    (program : Ast.program) =
  let program = Sema.check_exn program in
  let m = Marking.mark_program ~static_sched:(Schedule.is_static cfg) ~intertask program in
  let trace = Trace.of_program ~check_races ~line_words:cfg.line_words m.Marking.program in
  { marked = m.Marking.program; census = m.Marking.census; trace;
    packed_trace = Trace.pack trace }

(** Back half: one scheme over a packed trace (the engine-native form —
    packed traces are immutable, so one can be shared across domains). *)
let simulate_packed ?(cfg = Config.default) kind (trace : Trace.packed) =
  let cfg = Config.validate cfg in
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let packed = pack kind cfg ~memory_words:(Trace.packed_memory_words trace) ~network ~traffic in
  Engine.run cfg packed ~net:network ~traffic trace

(** One scheme over a boxed trace via the legacy replay loop —
    bit-identical to {!simulate_packed} on [Trace.pack trace]. *)
let simulate_boxed ?(cfg = Config.default) kind (trace : Trace.t) =
  let cfg = Config.validate cfg in
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let packed = pack kind cfg ~memory_words:(Trace.memory_words trace) ~network ~traffic in
  Engine.run_boxed cfg packed ~net:network ~traffic trace

(** One scheme over a boxed trace: packs, then replays natively. *)
let simulate ?(cfg = Config.default) kind (trace : Trace.t) =
  simulate_packed ~cfg kind (Trace.pack trace)

type comparison = { kind : scheme_kind; result : Engine.result }

(** Everything at once: compile once, then run each scheme on the same
    trace (the paper's methodology: identical reference streams). The
    trace is packed once and shared read-only. With [jobs > 1] the
    schemes run on separate domains — each simulation owns its network,
    traffic and scheme state and the engine's PRNG is per-run, so the
    results are bit-identical to the sequential run. *)
let compare ?(cfg = Config.default) ?(schemes = all_schemes) ?(intertask = true) ?jobs program =
  let c = compile ~cfg ~intertask program in
  ( c,
    Hscd_util.Pool.map ?jobs
      (fun kind -> { kind; result = simulate_packed ~cfg kind c.packed_trace })
      schemes )

(** Convenience wrapper running one scheme from source. *)
let run_source ?(cfg = Config.default) ?(intertask = true) kind program =
  let c = compile ~cfg ~intertask program in
  (c, simulate_packed ~cfg kind c.packed_trace)
