(** Top-level pipeline: source program → sema → compiler marking → trace →
    per-scheme simulation. This is the API the experiments, examples and
    CLI drive. *)

module Ast = Hscd_lang.Ast
module Sema = Hscd_lang.Sema
module Config = Hscd_arch.Config
module Marking = Hscd_compiler.Marking
module Scheme = Hscd_coherence.Scheme
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic

type scheme_kind = Base | SC | TPI | HW | LimitLESS | VC | INV

let scheme_name = function
  | Base -> "BASE"
  | SC -> "SC"
  | TPI -> "TPI"
  | HW -> "HW"
  | LimitLESS -> "LimitLESS"
  | VC -> "VC"
  | INV -> "INV"

(** The four schemes of the paper's evaluation. *)
let all_schemes = [ Base; SC; TPI; HW ]

(** Plus the related-work schemes built as extensions: INV [35], VC [14]
    and LimitLESS [2]. *)
let extended_schemes = [ Base; SC; INV; VC; TPI; HW; LimitLESS ]

let pack kind cfg ~memory_words ~network ~traffic =
  match kind with
  | Base ->
    Scheme.Packed
      ((module Hscd_coherence.Base), Hscd_coherence.Base.create cfg ~memory_words ~network ~traffic)
  | SC ->
    Scheme.Packed
      ((module Hscd_coherence.Sc), Hscd_coherence.Sc.create cfg ~memory_words ~network ~traffic)
  | TPI ->
    Scheme.Packed
      ((module Hscd_coherence.Tpi), Hscd_coherence.Tpi.create cfg ~memory_words ~network ~traffic)
  | HW ->
    Scheme.Packed
      ((module Hscd_coherence.Hwdir), Hscd_coherence.Hwdir.create cfg ~memory_words ~network ~traffic)
  | LimitLESS ->
    Scheme.Packed
      ( (module Hscd_coherence.Limitless),
        Hscd_coherence.Limitless.create cfg ~memory_words ~network ~traffic )
  | VC ->
    Scheme.Packed
      ((module Hscd_coherence.Vc), Hscd_coherence.Vc.create cfg ~memory_words ~network ~traffic)
  | INV ->
    Scheme.Packed
      ((module Hscd_coherence.Inv), Hscd_coherence.Inv.create cfg ~memory_words ~network ~traffic)

type compiled = {
  marked : Ast.program;
  census : Marking.census;
  packed_trace : Trace.packed;  (** engine-native form, compiled once *)
}

(** The boxed trace, reconstructed on demand — the compiled artifact only
    retains the engine-native packed form. *)
let boxed_trace (c : compiled) = Trace.unpack c.packed_trace

(* ------------------------------------------------------------------ *)
(* Compile cache: parameter sweeps hit [compile] once per point, but    *)
(* most points share the reference stream — only the trace-relevant     *)
(* knobs (line size, scheduling staticness, marking flags) change it.   *)
(* The in-memory table shares [compiled] across a process; the optional *)
(* on-disk store (binary v2 traces) shares them across processes.       *)
(* ------------------------------------------------------------------ *)

type cache_stats = { trace_generations : int; memory_hits : int; disk_hits : int }

let cache_table : (string, compiled) Hashtbl.t = Hashtbl.create 16
let n_generations = ref 0
let n_memory_hits = ref 0
let n_disk_hits = ref 0
let cache_dir = ref (Sys.getenv_opt "HSCD_COMPILE_CACHE")

let set_compile_cache_dir d = cache_dir := d

let compile_cache_stats () =
  { trace_generations = !n_generations; memory_hits = !n_memory_hits; disk_hits = !n_disk_hits }

let reset_compile_cache () =
  Hashtbl.reset cache_table;
  n_generations := 0;
  n_memory_hits := 0;
  n_disk_hits := 0

(* Key: digest of the printed (sema-checked, pre-marking) program plus the
   knobs that reach the reference stream. Timing-side parameters
   (processors, timetag bits, cache geometry beyond the line size) are
   deliberately absent, so every point of a sweep shares one entry. *)
let cache_key ~cfg ~intertask ~check_races program =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Hscd_lang.Printer.program_to_string program;
            string_of_int cfg.Config.line_words;
            string_of_bool (Schedule.is_static cfg);
            string_of_bool intertask;
            string_of_bool check_races;
          ]))

let disk_path dir key = Filename.concat dir (key ^ ".hscdtrc")

let disk_read key =
  match !cache_dir with
  | None -> None
  | Some dir ->
    let path = disk_path dir key in
    if Sys.file_exists path then (try Some (Trace_io.read_packed path) with _ -> None) else None

(* best-effort: a full disk or read-only dir must never fail a compile *)
let disk_write key packed =
  match !cache_dir with
  | None -> ()
  | Some dir -> (
    try
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = disk_path dir key in
      let tmp = path ^ ".tmp" in
      Trace_io.write_packed tmp packed;
      Sys.rename tmp path
    with _ -> ())

(** Front half: check, mark, trace (streamed straight into the packed
    form). The marking is told whether the engine's scheduling policy is
    static, so owner-alignment stays sound. [cache] (default on) consults
    the compile cache keyed on the program text and trace-relevant knobs. *)
let compile ?(cfg = Config.default) ?(intertask = true) ?(check_races = true) ?(cache = true)
    (program : Ast.program) =
  let program = Sema.check_exn program in
  let key = if cache then Some (cache_key ~cfg ~intertask ~check_races program) else None in
  match key with
  | Some k when Hashtbl.mem cache_table k ->
    incr n_memory_hits;
    Hashtbl.find cache_table k
  | _ ->
    let m = Marking.mark_program ~static_sched:(Schedule.is_static cfg) ~intertask program in
    let packed_trace =
      match (match key with Some k -> disk_read k | None -> None) with
      | Some p ->
        incr n_disk_hits;
        p
      | None ->
        incr n_generations;
        let p =
          Trace.of_program_packed ~check_races ~line_words:cfg.line_words m.Marking.program
        in
        (match key with Some k -> disk_write k p | None -> ());
        p
    in
    let c = { marked = m.Marking.program; census = m.Marking.census; packed_trace } in
    (match key with Some k -> Hashtbl.replace cache_table k c | None -> ());
    c

(** Back half: one scheme over a packed trace (the engine-native form —
    packed traces are immutable, so one can be shared across domains). *)
let simulate_packed ?(cfg = Config.default) kind (trace : Trace.packed) =
  let cfg = Config.validate cfg in
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let packed = pack kind cfg ~memory_words:(Trace.packed_memory_words trace) ~network ~traffic in
  Engine.run cfg packed ~net:network ~traffic trace

(** One scheme over a boxed trace via the legacy replay loop —
    bit-identical to {!simulate_packed} on [Trace.pack trace]. *)
let simulate_boxed ?(cfg = Config.default) kind (trace : Trace.t) =
  let cfg = Config.validate cfg in
  let network = Kruskal_snir.create cfg in
  let traffic = Traffic.create cfg in
  let packed = pack kind cfg ~memory_words:(Trace.memory_words trace) ~network ~traffic in
  Engine.run_boxed cfg packed ~net:network ~traffic trace

(** One scheme over a boxed trace: packs, then replays natively. *)
let simulate ?(cfg = Config.default) kind (trace : Trace.t) =
  simulate_packed ~cfg kind (Trace.pack trace)

type comparison = { kind : scheme_kind; result : Engine.result }

(** Everything at once: compile once, then run each scheme on the same
    trace (the paper's methodology: identical reference streams). The
    trace is packed once and shared read-only. With [jobs > 1] the
    schemes run on separate domains — each simulation owns its network,
    traffic and scheme state and the engine's PRNG is per-run, so the
    results are bit-identical to the sequential run. *)
let compare ?(cfg = Config.default) ?(schemes = all_schemes) ?(intertask = true) ?cache ?jobs
    program =
  let c = compile ~cfg ~intertask ?cache program in
  ( c,
    Hscd_util.Pool.map ?jobs
      (fun kind -> { kind; result = simulate_packed ~cfg kind c.packed_trace })
      schemes )

(** Convenience wrapper running one scheme from source. *)
let run_source ?(cfg = Config.default) ?(intertask = true) kind program =
  let c = compile ~cfg ~intertask program in
  (c, simulate_packed ~cfg kind c.packed_trace)
