(** Execution-driven trace generation.

    Runs the (marked) program under the instrumented interpreter and
    collects, per epoch and per task, the stream of memory events the
    timing engine will replay — the role of the instrumentation tools of
    [32] in the paper's methodology. The trace also keeps the golden final
    memory for end-of-run verification. *)

module Ast = Hscd_lang.Ast
module Eval = Hscd_lang.Eval
module Shape = Hscd_lang.Shape
module Event = Hscd_arch.Event

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type task = { iter : int; events : Event.t array }

type epoch = { kind : epoch_kind; tasks : task array }

type t = {
  epochs : epoch array;
  layout : Shape.layout;
  golden_memory : int array;
  total_events : int;
}

(* Work events are coalesced with an implicit 1-cycle cost per memory
   event's address computation; explicit [work] statements add more. *)

let of_program ?(check_races = true) ?(line_words = 4) (program : Ast.program) =
  let epochs = ref [] in
  let cur_tasks = ref [] in
  let cur_kind = ref Serial in
  let cur_events = ref [] in
  let cur_iter = ref 0 in
  let pending_work = ref 0 in
  let total = ref 0 in
  let flush_work () =
    if !pending_work > 0 then begin
      cur_events := Event.Compute !pending_work :: !cur_events;
      pending_work := 0
    end
  in
  let emit e =
    flush_work ();
    incr total;
    cur_events := e :: !cur_events
  in
  let hooks =
    {
      Eval.on_init = (fun _ -> ());
      on_epoch_begin =
        (fun kind ->
          cur_kind :=
            (match kind with
            | Eval.Serial -> Serial
            | Eval.Parallel { lo; hi } -> Parallel { lo; hi });
          cur_tasks := []);
      on_epoch_end =
        (fun () ->
          let tasks = Array.of_list (List.rev !cur_tasks) in
          epochs := { kind = !cur_kind; tasks } :: !epochs);
      on_task_begin =
        (fun ~iter ->
          cur_iter := iter;
          cur_events := [];
          pending_work := 0);
      on_task_end =
        (fun () ->
          flush_work ();
          cur_tasks :=
            { iter = !cur_iter; events = Array.of_list (List.rev !cur_events) } :: !cur_tasks);
      on_read =
        (fun ~array ~addr ~value ~mark ->
          emit (Event.Read { addr; mark = Event.of_ast_rmark mark; value; array }));
      on_write =
        (fun ~array ~addr ~value ~mark ->
          emit (Event.Write { addr; mark = Event.of_ast_wmark mark; value; array }));
      on_work = (fun n -> pending_work := !pending_work + n);
      on_lock = (fun () -> emit Event.Lock);
      on_unlock = (fun () -> emit Event.Unlock);
    }
  in
  let result = Eval.run ~hooks ~check_races ~line_words program in
  {
    epochs = Array.of_list (List.rev !epochs);
    layout = result.Eval.layout;
    golden_memory = result.Eval.final_memory;
    total_events = !total;
  }

(* ------------------------------------------------------------------ *)
(* Packed structure-of-arrays form                                     *)
(* ------------------------------------------------------------------ *)

type ptask = {
  p_iter : int;
  off : int;  (** first slot of this task's events in the slabs *)
  len : int;  (** number of slots *)
  ticket0 : int;  (** first critical-section ticket of the task *)
  n_locks : int;  (** tickets [ticket0 .. ticket0 + n_locks - 1] *)
}

type pepoch = { p_kind : epoch_kind; p_tasks : ptask array; p_n_tickets : int }

type packed = {
  ops : int array;  (** {!Hscd_arch.Event.Code} opcode per slot *)
  addrs : int array;  (** address (or cycle count for compute slots) *)
  values : int array;  (** golden value per read/write slot *)
  marks : int array;  (** rmark/wmark code, interpreted per opcode *)
  arrs : int array;  (** interned array id per read/write slot *)
  p_epochs : pepoch array;
  symtab : Hscd_util.Symtab.t;  (** array-name interning, {!Shape.layout} base order *)
  rmark_table : Event.rmark array;  (** decode table indexed by mark code *)
  p_layout : Shape.layout;
  p_golden : int array;
  p_total_events : int;  (** memory + sync events, as in {!t.total_events} *)
  n_slots : int;  (** total slots incl. compute *)
  p_max_tickets : int;  (** max tickets over all epochs (waiter-slot bound) *)
}

(** Seed a symtab with the trace's arrays in [Shape.layout] base order —
    the canonical id assignment both replay paths share. *)
let symtab_of_layout (layout : Shape.layout) =
  Hscd_util.Symtab.of_names (List.map (fun (a : Shape.t) -> a.Shape.name) (Shape.arrays_in_order layout))

(** Compile the boxed trace into the packed form: one pass to size the
    slabs, one to fill them. Tickets are assigned in (rank, event) order
    within each epoch — the order the engine grants critical sections. *)
let pack (t : t) =
  let symtab = symtab_of_layout t.layout in
  let n_slots =
    Array.fold_left
      (fun acc e ->
        Array.fold_left (fun acc (task : task) -> acc + Array.length task.events) acc e.tasks)
      0 t.epochs
  in
  let cap = max 1 n_slots in
  let ops = Array.make cap 0 in
  let addrs = Array.make cap 0 in
  let values = Array.make cap 0 in
  let marks = Array.make cap 0 in
  let arrs = Array.make cap 0 in
  let pos = ref 0 in
  let max_rcode = ref 0 in
  let max_tickets = ref 0 in
  let p_epochs =
    Array.map
      (fun (e : epoch) ->
        let ticket = ref 0 in
        let p_tasks =
          Array.map
            (fun (task : task) ->
              let off = !pos in
              let ticket0 = !ticket in
              Array.iter
                (fun ev ->
                  let i = !pos in
                  incr pos;
                  match ev with
                  | Event.Compute n ->
                    ops.(i) <- Event.Code.compute;
                    addrs.(i) <- n
                  | Event.Read { addr; mark; value; array } ->
                    ops.(i) <- Event.Code.read;
                    addrs.(i) <- addr;
                    values.(i) <- value;
                    let c = Event.Code.of_rmark mark in
                    if c > !max_rcode then max_rcode := c;
                    marks.(i) <- c;
                    arrs.(i) <- Hscd_util.Symtab.intern symtab array
                  | Event.Write { addr; mark; value; array } ->
                    ops.(i) <- Event.Code.write;
                    addrs.(i) <- addr;
                    values.(i) <- value;
                    marks.(i) <- Event.Code.of_wmark mark;
                    arrs.(i) <- Hscd_util.Symtab.intern symtab array
                  | Event.Lock ->
                    ops.(i) <- Event.Code.lock;
                    incr ticket
                  | Event.Unlock -> ops.(i) <- Event.Code.unlock)
                task.events;
              { p_iter = task.iter; off; len = Array.length task.events; ticket0;
                n_locks = !ticket - ticket0 })
            e.tasks
        in
        if !ticket > !max_tickets then max_tickets := !ticket;
        { p_kind = e.kind; p_tasks; p_n_tickets = !ticket })
      t.epochs
  in
  {
    ops;
    addrs;
    values;
    marks;
    arrs;
    p_epochs;
    symtab;
    rmark_table = Event.Code.rmark_table ~max_code:!max_rcode;
    p_layout = t.layout;
    p_golden = t.golden_memory;
    p_total_events = t.total_events;
    n_slots;
    p_max_tickets = !max_tickets;
  }

(* ------------------------------------------------------------------ *)
(* Streaming builder: packed traces as the native output of generation  *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  (* Growable unboxed slabs with the same five-slab layout as [packed];
     the emit path is free of minor-heap allocation (fresh slabs land in
     the major heap directly), so trace generation streams events into
     their final form without ever materializing the boxed [t].
     [pack] above stays as the independent reference implementation the
     test suite checks this builder against, slot for slot. *)
  type t = {
    mutable ops : int array;
    mutable addrs : int array;
    mutable values : int array;
    mutable marks : int array;
    mutable arrs : int array;
    mutable pos : int;  (** next free slot *)
    mutable total : int;  (** memory + sync events, as in {!t.total_events} *)
    mutable pending_work : int;
    mutable symtab : Hscd_util.Symtab.t;
    mutable layout : Shape.layout option;
    mutable last_name : string;  (** one-entry intern memo: the hot path *)
    mutable last_id : int;  (** re-reads the same array site repeatedly *)
    mutable max_rcode : int;
    (* epoch/task assembly: descriptors accumulate in int slabs as well,
       so task and epoch boundaries allocate nothing either — the [ptask]
       and [pepoch] records are materialized once, in [finish] *)
    mutable t_iter : int array;
    mutable t_off : int array;
    mutable t_len : int array;
    mutable t_ticket0 : int array;
    mutable t_nlocks : int array;
    mutable n_tasks : int;
    mutable e_kind : int array;  (** 0 = serial, 1 = parallel *)
    mutable e_lo : int array;
    mutable e_hi : int array;
    mutable e_task0 : int array;
    mutable e_ntickets : int array;
    mutable n_epochs : int;
    mutable cur_kind : epoch_kind;
    mutable epoch_task0 : int;
    mutable task_iter : int;
    mutable task_off : int;
    mutable task_ticket0 : int;
    mutable ticket : int;
    mutable max_tickets : int;
  }

  let create ?(capacity = 1024) () =
    let cap = max 1 capacity in
    {
      ops = Array.make cap 0;
      addrs = Array.make cap 0;
      values = Array.make cap 0;
      marks = Array.make cap 0;
      arrs = Array.make cap 0;
      pos = 0;
      total = 0;
      pending_work = 0;
      symtab = Hscd_util.Symtab.create ();
      layout = None;
      last_name = "";
      last_id = -1;
      max_rcode = 0;
      t_iter = Array.make 64 0;
      t_off = Array.make 64 0;
      t_len = Array.make 64 0;
      t_ticket0 = Array.make 64 0;
      t_nlocks = Array.make 64 0;
      n_tasks = 0;
      e_kind = Array.make 16 0;
      e_lo = Array.make 16 0;
      e_hi = Array.make 16 0;
      e_task0 = Array.make 16 0;
      e_ntickets = Array.make 16 0;
      n_epochs = 0;
      cur_kind = Serial;
      epoch_task0 = 0;
      task_iter = 0;
      task_off = 0;
      task_ticket0 = 0;
      ticket = 0;
      max_tickets = 0;
    }

  (** Seed the interner from the address map (canonical layout-order ids,
      identical to {!pack}'s assignment). Must run before the first emit. *)
  let init b (layout : Shape.layout) =
    b.symtab <- symtab_of_layout layout;
    b.layout <- Some layout

  let grow b =
    let cap = 2 * Array.length b.ops in
    let extend a =
      let fresh = Array.make cap 0 in
      Array.blit a 0 fresh 0 b.pos;
      fresh
    in
    b.ops <- extend b.ops;
    b.addrs <- extend b.addrs;
    b.values <- extend b.values;
    b.marks <- extend b.marks;
    b.arrs <- extend b.arrs

  let[@inline] slot b =
    if b.pos >= Array.length b.ops then grow b;
    let i = b.pos in
    b.pos <- i + 1;
    i

  (* Slots are written at most once and fresh slabs are zeroed, so fields
     [pack] leaves at 0 (e.g. a compute slot's mark) need no stores here. *)

  let emit_compute b n =
    let i = slot b in
    b.ops.(i) <- Event.Code.compute;
    b.addrs.(i) <- n

  let[@inline] flush_work b =
    if b.pending_work > 0 then begin
      emit_compute b b.pending_work;
      b.pending_work <- 0
    end

  let emit_work b n = b.pending_work <- b.pending_work + n

  let[@inline] intern b name =
    if name == b.last_name then b.last_id
    else begin
      let id = Hscd_util.Symtab.intern b.symtab name in
      b.last_name <- name;
      b.last_id <- id;
      id
    end

  let emit_read b ~array ~addr ~value ~rcode =
    flush_work b;
    let i = slot b in
    b.ops.(i) <- Event.Code.read;
    b.addrs.(i) <- addr;
    b.values.(i) <- value;
    if rcode > b.max_rcode then b.max_rcode <- rcode;
    b.marks.(i) <- rcode;
    b.arrs.(i) <- intern b array;
    b.total <- b.total + 1

  let emit_write b ~array ~addr ~value ~wcode =
    flush_work b;
    let i = slot b in
    b.ops.(i) <- Event.Code.write;
    b.addrs.(i) <- addr;
    b.values.(i) <- value;
    b.marks.(i) <- wcode;
    b.arrs.(i) <- intern b array;
    b.total <- b.total + 1

  let emit_lock b =
    flush_work b;
    let i = slot b in
    b.ops.(i) <- Event.Code.lock;
    b.ticket <- b.ticket + 1;
    b.total <- b.total + 1

  let emit_unlock b =
    flush_work b;
    let i = slot b in
    b.ops.(i) <- Event.Code.unlock;
    b.total <- b.total + 1

  let extend a n =
    let fresh = Array.make (2 * Array.length a) 0 in
    Array.blit a 0 fresh 0 n;
    fresh

  let epoch_begin b kind =
    b.cur_kind <- kind;
    b.epoch_task0 <- b.n_tasks;
    b.ticket <- 0

  let task_begin b ~iter =
    b.task_iter <- iter;
    b.task_off <- b.pos;
    b.task_ticket0 <- b.ticket;
    b.pending_work <- 0

  let task_end b =
    flush_work b;
    let i = b.n_tasks in
    if i >= Array.length b.t_iter then begin
      b.t_iter <- extend b.t_iter i;
      b.t_off <- extend b.t_off i;
      b.t_len <- extend b.t_len i;
      b.t_ticket0 <- extend b.t_ticket0 i;
      b.t_nlocks <- extend b.t_nlocks i
    end;
    b.t_iter.(i) <- b.task_iter;
    b.t_off.(i) <- b.task_off;
    b.t_len.(i) <- b.pos - b.task_off;
    b.t_ticket0.(i) <- b.task_ticket0;
    b.t_nlocks.(i) <- b.ticket - b.task_ticket0;
    b.n_tasks <- i + 1

  let epoch_end b =
    if b.ticket > b.max_tickets then b.max_tickets <- b.ticket;
    let i = b.n_epochs in
    if i >= Array.length b.e_kind then begin
      b.e_kind <- extend b.e_kind i;
      b.e_lo <- extend b.e_lo i;
      b.e_hi <- extend b.e_hi i;
      b.e_task0 <- extend b.e_task0 i;
      b.e_ntickets <- extend b.e_ntickets i
    end;
    (match b.cur_kind with
    | Serial -> b.e_kind.(i) <- 0
    | Parallel { lo; hi } ->
      b.e_kind.(i) <- 1;
      b.e_lo.(i) <- lo;
      b.e_hi.(i) <- hi);
    b.e_task0.(i) <- b.epoch_task0;
    b.e_ntickets.(i) <- b.ticket;
    b.n_epochs <- i + 1

  (** Close the builder. [total_events] overrides the builder's own count
      (used when re-packing a boxed trace whose count follows different
      bookkeeping, e.g. loaded corpus traces that exclude lock events). *)
  let finish ?total_events b ~golden =
    let layout =
      match b.layout with
      | Some l -> l
      | None -> invalid_arg "Trace.Builder: finish before init"
    in
    let epoch i =
      let task0 = b.e_task0.(i) in
      let task_hi = if i + 1 < b.n_epochs then b.e_task0.(i + 1) else b.n_tasks in
      {
        p_kind =
          (if b.e_kind.(i) = 0 then Serial
           else Parallel { lo = b.e_lo.(i); hi = b.e_hi.(i) });
        p_tasks =
          Array.init (task_hi - task0) (fun j ->
              let t = task0 + j in
              {
                p_iter = b.t_iter.(t);
                off = b.t_off.(t);
                len = b.t_len.(t);
                ticket0 = b.t_ticket0.(t);
                n_locks = b.t_nlocks.(t);
              });
        p_n_tickets = b.e_ntickets.(i);
      }
    in
    (* trim to the live prefix: the packed form should not retain the
       doubling slack, and [pack] produces exact-size slabs *)
    let exact a = if Array.length a = b.pos then a else Array.sub a 0 b.pos in
    {
      ops = exact b.ops;
      addrs = exact b.addrs;
      values = exact b.values;
      marks = exact b.marks;
      arrs = exact b.arrs;
      p_epochs = Array.init b.n_epochs epoch;
      symtab = b.symtab;
      rmark_table = Event.Code.rmark_table ~max_code:b.max_rcode;
      p_layout = layout;
      p_golden = golden;
      p_total_events = (match total_events with Some n -> n | None -> b.total);
      n_slots = b.pos;
      p_max_tickets = b.max_tickets;
    }

  (** Eval hooks appending straight into the slabs — the streaming trace
      generator. The mark conversions go AST-code directly, so the per-event
      path constructs no variant cells. *)
  let hooks b : Eval.hooks =
    {
      Eval.on_init = (fun layout -> init b layout);
      on_epoch_begin =
        (fun kind ->
          epoch_begin b
            (match kind with
            | Eval.Serial -> Serial
            | Eval.Parallel { lo; hi } -> Parallel { lo; hi }));
      on_epoch_end = (fun () -> epoch_end b);
      on_task_begin = (fun ~iter -> task_begin b ~iter);
      on_task_end = (fun () -> task_end b);
      on_read =
        (fun ~array ~addr ~value ~mark ->
          emit_read b ~array ~addr ~value ~rcode:(Event.Code.of_ast_rmark mark));
      on_write =
        (fun ~array ~addr ~value ~mark ->
          emit_write b ~array ~addr ~value ~wcode:(Event.Code.of_ast_wmark mark));
      on_work = (fun n -> emit_work b n);
      on_lock = (fun () -> emit_lock b);
      on_unlock = (fun () -> emit_unlock b);
    }
end

(** Generate the packed trace directly: run the instrumented interpreter
    with builder hooks, never materializing the boxed [t]. Replay results
    are bit-identical to [pack (of_program p)] (asserted by the tests). *)
let of_program_packed ?(check_races = true) ?(line_words = 4) (program : Ast.program) =
  (* a few thousand slots up front keeps the doubling copies (each one a
     major-heap copy of every slab) off small and medium traces without
     making tiny programs pay for megabytes of zeroed slab *)
  let b = Builder.create ~capacity:4096 () in
  let result = Eval.run ~hooks:(Builder.hooks b) ~check_races ~line_words program in
  Builder.finish b ~golden:result.Eval.final_memory

(** Stream an existing boxed trace through the builder — the packed result
    is slot-for-slot identical to {!pack} (compute slots are emitted raw,
    not re-coalesced), with exact initial capacity. *)
let pack_streaming (t : t) =
  let n_slots =
    Array.fold_left
      (fun acc e ->
        Array.fold_left (fun acc (task : task) -> acc + Array.length task.events) acc e.tasks)
      0 t.epochs
  in
  let b = Builder.create ~capacity:(max 1 n_slots) () in
  Builder.init b t.layout;
  Array.iter
    (fun (e : epoch) ->
      Builder.epoch_begin b e.kind;
      Array.iter
        (fun (task : task) ->
          Builder.task_begin b ~iter:task.iter;
          Array.iter
            (fun ev ->
              match ev with
              | Event.Compute n -> Builder.emit_compute b n
              | Event.Read { addr; mark; value; array } ->
                Builder.emit_read b ~array ~addr ~value ~rcode:(Event.Code.of_rmark mark)
              | Event.Write { addr; mark; value; array } ->
                Builder.emit_write b ~array ~addr ~value ~wcode:(Event.Code.of_wmark mark)
              | Event.Lock -> Builder.emit_lock b
              | Event.Unlock -> Builder.emit_unlock b)
            task.events;
          Builder.task_end b)
        e.tasks;
      Builder.epoch_end b)
    t.epochs;
  Builder.finish b ~total_events:t.total_events ~golden:t.golden_memory

(** Reconstruct the boxed form from a packed trace — exact inverse of
    {!pack}/{!pack_streaming}, for text serialization and differential
    tests against the legacy replay loop. *)
let unpack (p : packed) : t =
  let epochs =
    Array.map
      (fun (pe : pepoch) ->
        {
          kind = pe.p_kind;
          tasks =
            Array.map
              (fun (pt : ptask) ->
                let events =
                  Array.init pt.len (fun j ->
                      let i = pt.off + j in
                      let op = p.ops.(i) in
                      if op = Event.Code.compute then Event.Compute p.addrs.(i)
                      else if op = Event.Code.read then
                        Event.Read
                          {
                            addr = p.addrs.(i);
                            mark = Event.Code.rmark_of p.marks.(i);
                            value = p.values.(i);
                            array = Hscd_util.Symtab.name p.symtab p.arrs.(i);
                          }
                      else if op = Event.Code.write then
                        Event.Write
                          {
                            addr = p.addrs.(i);
                            mark = Event.Code.wmark_of p.marks.(i);
                            value = p.values.(i);
                            array = Hscd_util.Symtab.name p.symtab p.arrs.(i);
                          }
                      else if op = Event.Code.lock then Event.Lock
                      else Event.Unlock)
                in
                { iter = pt.p_iter; events })
              pe.p_tasks;
        })
      p.p_epochs
  in
  {
    epochs;
    layout = p.p_layout;
    golden_memory = p.p_golden;
    total_events = p.p_total_events;
  }

let packed_memory_words (p : packed) = max 1 p.p_layout.Shape.total_words

(** Live heap words of the packed slabs (five ints per slot plus task and
    epoch descriptors) — the footprint EXPERIMENTS.md reports against the
    boxed form's per-event blocks. Counts slab *capacity*, not just live
    slots: builder-grown slabs may hold up to 2x headroom and that memory
    is just as resident. *)
let packed_slab_words (p : packed) =
  let task_words = 8 (* 5 fields + header + ~2 amortized epoch overhead *) in
  (5 * max 1 (Array.length p.ops))
  + Array.fold_left (fun acc e -> acc + (task_words * Array.length e.p_tasks)) 0 p.p_epochs

(* --- packed-native trace statistics (no boxed form required) --- *)

let packed_n_epochs (p : packed) = Array.length p.p_epochs

let packed_n_parallel_epochs (p : packed) =
  Array.fold_left
    (fun acc e -> match e.p_kind with Parallel _ -> acc + 1 | Serial -> acc)
    0 p.p_epochs

(** (reads, writes) over the live slots of a packed trace. *)
let packed_access_counts (p : packed) =
  let reads = ref 0 and writes = ref 0 in
  for i = 0 to p.n_slots - 1 do
    let op = p.ops.(i) in
    if op = Event.Code.read then incr reads
    else if op = Event.Code.write then incr writes
  done;
  (!reads, !writes)

let n_epochs t = Array.length t.epochs

let n_parallel_epochs t =
  Array.fold_left
    (fun acc e -> match e.kind with Parallel _ -> acc + 1 | Serial -> acc)
    0 t.epochs

let memory_words t = max 1 t.layout.Shape.total_words

(** Count memory accesses (reads, writes) in the whole trace. *)
let access_counts t =
  let reads = ref 0 and writes = ref 0 in
  Array.iter
    (fun e ->
      Array.iter
        (fun task ->
          Array.iter
            (function
              | Event.Read _ -> incr reads
              | Event.Write _ -> incr writes
              | Event.Compute _ | Event.Lock | Event.Unlock -> ())
            task.events)
        e.tasks)
    t.epochs;
  (!reads, !writes)
