(** Execution-driven trace generation.

    Runs the (marked) program under the instrumented interpreter and
    collects, per epoch and per task, the stream of memory events the
    timing engine will replay — the role of the instrumentation tools of
    [32] in the paper's methodology. The trace also keeps the golden final
    memory for end-of-run verification. *)

module Ast = Hscd_lang.Ast
module Eval = Hscd_lang.Eval
module Shape = Hscd_lang.Shape
module Event = Hscd_arch.Event

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type task = { iter : int; events : Event.t array }

type epoch = { kind : epoch_kind; tasks : task array }

type t = {
  epochs : epoch array;
  layout : Shape.layout;
  golden_memory : int array;
  total_events : int;
}

(* Work events are coalesced with an implicit 1-cycle cost per memory
   event's address computation; explicit [work] statements add more. *)

let of_program ?(check_races = true) ?(line_words = 4) (program : Ast.program) =
  let epochs = ref [] in
  let cur_tasks = ref [] in
  let cur_kind = ref Serial in
  let cur_events = ref [] in
  let cur_iter = ref 0 in
  let pending_work = ref 0 in
  let total = ref 0 in
  let flush_work () =
    if !pending_work > 0 then begin
      cur_events := Event.Compute !pending_work :: !cur_events;
      pending_work := 0
    end
  in
  let emit e =
    flush_work ();
    incr total;
    cur_events := e :: !cur_events
  in
  let hooks =
    {
      Eval.on_epoch_begin =
        (fun kind ->
          cur_kind :=
            (match kind with
            | Eval.Serial -> Serial
            | Eval.Parallel { lo; hi } -> Parallel { lo; hi });
          cur_tasks := []);
      on_epoch_end =
        (fun () ->
          let tasks = Array.of_list (List.rev !cur_tasks) in
          epochs := { kind = !cur_kind; tasks } :: !epochs);
      on_task_begin =
        (fun ~iter ->
          cur_iter := iter;
          cur_events := [];
          pending_work := 0);
      on_task_end =
        (fun () ->
          flush_work ();
          cur_tasks :=
            { iter = !cur_iter; events = Array.of_list (List.rev !cur_events) } :: !cur_tasks);
      on_read =
        (fun ~array ~addr ~value ~mark ->
          emit (Event.Read { addr; mark = Event.of_ast_rmark mark; value; array }));
      on_write =
        (fun ~array ~addr ~value ~mark ->
          emit (Event.Write { addr; mark = Event.of_ast_wmark mark; value; array }));
      on_work = (fun n -> pending_work := !pending_work + n);
      on_lock = (fun () -> emit Event.Lock);
      on_unlock = (fun () -> emit Event.Unlock);
    }
  in
  let result = Eval.run ~hooks ~check_races ~line_words program in
  {
    epochs = Array.of_list (List.rev !epochs);
    layout = result.Eval.layout;
    golden_memory = result.Eval.final_memory;
    total_events = !total;
  }

(* ------------------------------------------------------------------ *)
(* Packed structure-of-arrays form                                     *)
(* ------------------------------------------------------------------ *)

type ptask = {
  p_iter : int;
  off : int;  (** first slot of this task's events in the slabs *)
  len : int;  (** number of slots *)
  ticket0 : int;  (** first critical-section ticket of the task *)
  n_locks : int;  (** tickets [ticket0 .. ticket0 + n_locks - 1] *)
}

type pepoch = { p_kind : epoch_kind; p_tasks : ptask array; p_n_tickets : int }

type packed = {
  ops : int array;  (** {!Hscd_arch.Event.Code} opcode per slot *)
  addrs : int array;  (** address (or cycle count for compute slots) *)
  values : int array;  (** golden value per read/write slot *)
  marks : int array;  (** rmark/wmark code, interpreted per opcode *)
  arrs : int array;  (** interned array id per read/write slot *)
  p_epochs : pepoch array;
  symtab : Hscd_util.Symtab.t;  (** array-name interning, {!Shape.layout} base order *)
  rmark_table : Event.rmark array;  (** decode table indexed by mark code *)
  p_layout : Shape.layout;
  p_golden : int array;
  p_total_events : int;  (** memory + sync events, as in {!t.total_events} *)
  n_slots : int;  (** total slots incl. compute *)
  p_max_tickets : int;  (** max tickets over all epochs (waiter-slot bound) *)
}

(** Seed a symtab with the trace's arrays in [Shape.layout] base order —
    the canonical id assignment both replay paths share. *)
let symtab_of_layout (layout : Shape.layout) =
  Hscd_util.Symtab.of_names (List.map (fun (a : Shape.t) -> a.Shape.name) (Shape.arrays_in_order layout))

(** Compile the boxed trace into the packed form: one pass to size the
    slabs, one to fill them. Tickets are assigned in (rank, event) order
    within each epoch — the order the engine grants critical sections. *)
let pack (t : t) =
  let symtab = symtab_of_layout t.layout in
  let n_slots =
    Array.fold_left
      (fun acc e ->
        Array.fold_left (fun acc (task : task) -> acc + Array.length task.events) acc e.tasks)
      0 t.epochs
  in
  let cap = max 1 n_slots in
  let ops = Array.make cap 0 in
  let addrs = Array.make cap 0 in
  let values = Array.make cap 0 in
  let marks = Array.make cap 0 in
  let arrs = Array.make cap 0 in
  let pos = ref 0 in
  let max_rcode = ref 0 in
  let max_tickets = ref 0 in
  let p_epochs =
    Array.map
      (fun (e : epoch) ->
        let ticket = ref 0 in
        let p_tasks =
          Array.map
            (fun (task : task) ->
              let off = !pos in
              let ticket0 = !ticket in
              Array.iter
                (fun ev ->
                  let i = !pos in
                  incr pos;
                  match ev with
                  | Event.Compute n ->
                    ops.(i) <- Event.Code.compute;
                    addrs.(i) <- n
                  | Event.Read { addr; mark; value; array } ->
                    ops.(i) <- Event.Code.read;
                    addrs.(i) <- addr;
                    values.(i) <- value;
                    let c = Event.Code.of_rmark mark in
                    if c > !max_rcode then max_rcode := c;
                    marks.(i) <- c;
                    arrs.(i) <- Hscd_util.Symtab.intern symtab array
                  | Event.Write { addr; mark; value; array } ->
                    ops.(i) <- Event.Code.write;
                    addrs.(i) <- addr;
                    values.(i) <- value;
                    marks.(i) <- Event.Code.of_wmark mark;
                    arrs.(i) <- Hscd_util.Symtab.intern symtab array
                  | Event.Lock ->
                    ops.(i) <- Event.Code.lock;
                    incr ticket
                  | Event.Unlock -> ops.(i) <- Event.Code.unlock)
                task.events;
              { p_iter = task.iter; off; len = Array.length task.events; ticket0;
                n_locks = !ticket - ticket0 })
            e.tasks
        in
        if !ticket > !max_tickets then max_tickets := !ticket;
        { p_kind = e.kind; p_tasks; p_n_tickets = !ticket })
      t.epochs
  in
  {
    ops;
    addrs;
    values;
    marks;
    arrs;
    p_epochs;
    symtab;
    rmark_table = Event.Code.rmark_table ~max_code:!max_rcode;
    p_layout = t.layout;
    p_golden = t.golden_memory;
    p_total_events = t.total_events;
    n_slots;
    p_max_tickets = !max_tickets;
  }

let packed_memory_words (p : packed) = max 1 p.p_layout.Shape.total_words

(** Live heap words of the packed slabs (five ints per slot plus task and
    epoch descriptors) — the footprint EXPERIMENTS.md reports against the
    boxed form's per-event blocks. *)
let packed_slab_words (p : packed) =
  let task_words = 8 (* 5 fields + header + ~2 amortized epoch overhead *) in
  (5 * (p.n_slots + 1))
  + Array.fold_left (fun acc e -> acc + (task_words * Array.length e.p_tasks)) 0 p.p_epochs

let n_epochs t = Array.length t.epochs

let n_parallel_epochs t =
  Array.fold_left
    (fun acc e -> match e.kind with Parallel _ -> acc + 1 | Serial -> acc)
    0 t.epochs

let memory_words t = max 1 t.layout.Shape.total_words

(** Count memory accesses (reads, writes) in the whole trace. *)
let access_counts t =
  let reads = ref 0 and writes = ref 0 in
  Array.iter
    (fun e ->
      Array.iter
        (fun task ->
          Array.iter
            (function
              | Event.Read _ -> incr reads
              | Event.Write _ -> incr writes
              | Event.Compute _ | Event.Lock | Event.Unlock -> ())
            task.events)
        e.tasks)
    t.epochs;
  (!reads, !writes)
