(** Execution-driven trace generation.

    Runs the (marked) program under the instrumented interpreter and
    collects, per epoch and per task, the stream of memory events the
    timing engine will replay — the role of the instrumentation tools of
    [32] in the paper's methodology. The trace also keeps the golden final
    memory for end-of-run verification. *)

module Ast = Hscd_lang.Ast
module Eval = Hscd_lang.Eval
module Shape = Hscd_lang.Shape
module Event = Hscd_arch.Event

type epoch_kind = Serial | Parallel of { lo : int; hi : int }

type task = { iter : int; events : Event.t array }

type epoch = { kind : epoch_kind; tasks : task array }

type t = {
  epochs : epoch array;
  layout : Shape.layout;
  golden_memory : int array;
  total_events : int;
}

(* Work events are coalesced with an implicit 1-cycle cost per memory
   event's address computation; explicit [work] statements add more. *)

let of_program ?(check_races = true) ?(line_words = 4) (program : Ast.program) =
  let epochs = ref [] in
  let cur_tasks = ref [] in
  let cur_kind = ref Serial in
  let cur_events = ref [] in
  let cur_iter = ref 0 in
  let pending_work = ref 0 in
  let total = ref 0 in
  let flush_work () =
    if !pending_work > 0 then begin
      cur_events := Event.Compute !pending_work :: !cur_events;
      pending_work := 0
    end
  in
  let emit e =
    flush_work ();
    incr total;
    cur_events := e :: !cur_events
  in
  let hooks =
    {
      Eval.on_init = (fun _ -> ());
      on_epoch_begin =
        (fun kind ->
          cur_kind :=
            (match kind with
            | Eval.Serial -> Serial
            | Eval.Parallel { lo; hi } -> Parallel { lo; hi });
          cur_tasks := []);
      on_epoch_end =
        (fun () ->
          let tasks = Array.of_list (List.rev !cur_tasks) in
          epochs := { kind = !cur_kind; tasks } :: !epochs);
      on_task_begin =
        (fun ~iter ->
          cur_iter := iter;
          cur_events := [];
          pending_work := 0);
      on_task_end =
        (fun () ->
          flush_work ();
          cur_tasks :=
            { iter = !cur_iter; events = Array.of_list (List.rev !cur_events) } :: !cur_tasks);
      on_read =
        (fun ~array ~addr ~value ~mark ->
          emit (Event.Read { addr; mark = Event.of_ast_rmark mark; value; array }));
      on_write =
        (fun ~array ~addr ~value ~mark ->
          emit (Event.Write { addr; mark = Event.of_ast_wmark mark; value; array }));
      on_work = (fun n -> pending_work := !pending_work + n);
      on_lock = (fun () -> emit Event.Lock);
      on_unlock = (fun () -> emit Event.Unlock);
    }
  in
  let result = Eval.run ~hooks ~check_races ~line_words program in
  {
    epochs = Array.of_list (List.rev !epochs);
    layout = result.Eval.layout;
    golden_memory = result.Eval.final_memory;
    total_events = !total;
  }

(* ------------------------------------------------------------------ *)
(* Packed structure-of-arrays form                                     *)
(* ------------------------------------------------------------------ *)

(** Unboxed int slabs backing the packed form. [Bigarray] rather than
    [int array] so a slab can either live on the OCaml heap or be a
    zero-copy view into an [Unix.map_file]d trace file — the engine
    replays both through the same accessors. Elements are OCaml ints
    (63-bit); on disk they are the same 8-byte little-endian words the
    binary trace format writes, so mapping is a reinterpretation, not a
    decode. *)
module Slab = struct
  type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  let create n : t =
    let s = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
    Bigarray.Array1.fill s 0;
    s

  let length : t -> int = Bigarray.Array1.dim
  let get : t -> int -> int = Bigarray.Array1.get
  let set : t -> int -> int -> unit = Bigarray.Array1.set

  (** Zero-copy sub-view sharing the underlying storage. *)
  let sub : t -> int -> int -> t = Bigarray.Array1.sub

  (** Copy the first [len] elements of [a] into a fresh slab. *)
  let of_int_array_sub (a : int array) len =
    let s = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
    for i = 0 to len - 1 do
      Bigarray.Array1.unsafe_set s i (Array.unsafe_get a i)
    done;
    s

  let of_int_array a = of_int_array_sub a (Array.length a)
  let to_int_array (s : t) = Array.init (length s) (Bigarray.Array1.get s)
end

type ptask = {
  p_iter : int;
  off : int;  (** first slot of this task's events in the slabs *)
  len : int;  (** number of slots *)
  ticket0 : int;  (** first critical-section ticket of the task *)
  n_locks : int;  (** tickets [ticket0 .. ticket0 + n_locks - 1] *)
}

type pepoch = { p_kind : epoch_kind; p_tasks : ptask array; p_n_tickets : int }

type packed = {
  ops : Slab.t;  (** {!Hscd_arch.Event.Code} opcode per slot *)
  addrs : Slab.t;  (** address (or cycle count for compute slots) *)
  values : Slab.t;  (** golden value per read/write slot *)
  marks : Slab.t;  (** rmark/wmark code, interpreted per opcode *)
  arrs : Slab.t;  (** interned array id per read/write slot *)
  p_epochs : pepoch array;
  symtab : Hscd_util.Symtab.t;  (** array-name interning, {!Shape.layout} base order *)
  rmark_table : Event.rmark array;  (** decode table indexed by mark code *)
  p_layout : Shape.layout;
  p_golden : int array;
  p_total_events : int;  (** memory + sync events, as in {!t.total_events} *)
  n_slots : int;  (** total slots incl. compute *)
  p_max_tickets : int;  (** max tickets over all epochs (waiter-slot bound) *)
}

(** Seed a symtab with the trace's arrays in [Shape.layout] base order —
    the canonical id assignment both replay paths share. *)
let symtab_of_layout (layout : Shape.layout) =
  Hscd_util.Symtab.of_names (List.map (fun (a : Shape.t) -> a.Shape.name) (Shape.arrays_in_order layout))

(** Compile the boxed trace into the packed form: one pass to size the
    slabs, one to fill them. Tickets are assigned in (rank, event) order
    within each epoch — the order the engine grants critical sections. *)
let pack (t : t) =
  let symtab = symtab_of_layout t.layout in
  let n_slots =
    Array.fold_left
      (fun acc e ->
        Array.fold_left (fun acc (task : task) -> acc + Array.length task.events) acc e.tasks)
      0 t.epochs
  in
  let cap = max 1 n_slots in
  let ops = Array.make cap 0 in
  let addrs = Array.make cap 0 in
  let values = Array.make cap 0 in
  let marks = Array.make cap 0 in
  let arrs = Array.make cap 0 in
  let pos = ref 0 in
  let max_rcode = ref 0 in
  let max_tickets = ref 0 in
  let p_epochs =
    Array.map
      (fun (e : epoch) ->
        let ticket = ref 0 in
        let p_tasks =
          Array.map
            (fun (task : task) ->
              let off = !pos in
              let ticket0 = !ticket in
              Array.iter
                (fun ev ->
                  let i = !pos in
                  incr pos;
                  match ev with
                  | Event.Compute n ->
                    ops.(i) <- Event.Code.compute;
                    addrs.(i) <- n
                  | Event.Read { addr; mark; value; array } ->
                    ops.(i) <- Event.Code.read;
                    addrs.(i) <- addr;
                    values.(i) <- value;
                    let c = Event.Code.of_rmark mark in
                    if c > !max_rcode then max_rcode := c;
                    marks.(i) <- c;
                    arrs.(i) <- Hscd_util.Symtab.intern symtab array
                  | Event.Write { addr; mark; value; array } ->
                    ops.(i) <- Event.Code.write;
                    addrs.(i) <- addr;
                    values.(i) <- value;
                    marks.(i) <- Event.Code.of_wmark mark;
                    arrs.(i) <- Hscd_util.Symtab.intern symtab array
                  | Event.Lock ->
                    ops.(i) <- Event.Code.lock;
                    incr ticket
                  | Event.Unlock -> ops.(i) <- Event.Code.unlock)
                task.events;
              { p_iter = task.iter; off; len = Array.length task.events; ticket0;
                n_locks = !ticket - ticket0 })
            e.tasks
        in
        if !ticket > !max_tickets then max_tickets := !ticket;
        { p_kind = e.kind; p_tasks; p_n_tickets = !ticket })
      t.epochs
  in
  {
    ops = Slab.of_int_array ops;
    addrs = Slab.of_int_array addrs;
    values = Slab.of_int_array values;
    marks = Slab.of_int_array marks;
    arrs = Slab.of_int_array arrs;
    p_epochs;
    symtab;
    rmark_table = Event.Code.rmark_table ~max_code:!max_rcode;
    p_layout = t.layout;
    p_golden = t.golden_memory;
    p_total_events = t.total_events;
    n_slots;
    p_max_tickets = !max_tickets;
  }

(* ------------------------------------------------------------------ *)
(* Streaming builder: packed traces as the native output of generation  *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  (* Growable unboxed slabs with the same five-slab layout as [packed];
     the emit path is free of minor-heap allocation (fresh slabs land in
     the major heap directly), so trace generation streams events into
     their final form without ever materializing the boxed [t].
     [pack] above stays as the independent reference implementation the
     test suite checks this builder against, slot for slot. *)
  type t = {
    mutable ops : int array;
    mutable addrs : int array;
    mutable values : int array;
    mutable marks : int array;
    mutable arrs : int array;
    mutable pos : int;  (** next free slot *)
    mutable total : int;  (** memory + sync events, as in {!t.total_events} *)
    mutable pending_work : int;
    mutable symtab : Hscd_util.Symtab.t;
    mutable layout : Shape.layout option;
    mutable last_name : string;  (** one-entry intern memo: the hot path *)
    mutable last_id : int;  (** re-reads the same array site repeatedly *)
    mutable max_rcode : int;
    (* epoch/task assembly: descriptors accumulate in int slabs as well,
       so task and epoch boundaries allocate nothing either — the [ptask]
       and [pepoch] records are materialized once, in [finish] *)
    mutable t_iter : int array;
    mutable t_off : int array;
    mutable t_len : int array;
    mutable t_ticket0 : int array;
    mutable t_nlocks : int array;
    mutable n_tasks : int;
    mutable e_kind : int array;  (** 0 = serial, 1 = parallel *)
    mutable e_lo : int array;
    mutable e_hi : int array;
    mutable e_task0 : int array;
    mutable e_ntickets : int array;
    mutable n_epochs : int;
    mutable cur_kind : epoch_kind;
    mutable epoch_task0 : int;
    mutable task_iter : int;
    mutable task_off : int;
    mutable task_ticket0 : int;
    mutable ticket : int;
    mutable max_tickets : int;
  }

  let create ?(capacity = 1024) () =
    let cap = max 1 capacity in
    {
      ops = Array.make cap 0;
      addrs = Array.make cap 0;
      values = Array.make cap 0;
      marks = Array.make cap 0;
      arrs = Array.make cap 0;
      pos = 0;
      total = 0;
      pending_work = 0;
      symtab = Hscd_util.Symtab.create ();
      layout = None;
      last_name = "";
      last_id = -1;
      max_rcode = 0;
      t_iter = Array.make 64 0;
      t_off = Array.make 64 0;
      t_len = Array.make 64 0;
      t_ticket0 = Array.make 64 0;
      t_nlocks = Array.make 64 0;
      n_tasks = 0;
      e_kind = Array.make 16 0;
      e_lo = Array.make 16 0;
      e_hi = Array.make 16 0;
      e_task0 = Array.make 16 0;
      e_ntickets = Array.make 16 0;
      n_epochs = 0;
      cur_kind = Serial;
      epoch_task0 = 0;
      task_iter = 0;
      task_off = 0;
      task_ticket0 = 0;
      ticket = 0;
      max_tickets = 0;
    }

  (** Seed the interner from the address map (canonical layout-order ids,
      identical to {!pack}'s assignment). Must run before the first emit. *)
  let init b (layout : Shape.layout) =
    b.symtab <- symtab_of_layout layout;
    b.layout <- Some layout

  let grow b =
    let cap = 2 * Array.length b.ops in
    let extend a =
      let fresh = Array.make cap 0 in
      Array.blit a 0 fresh 0 b.pos;
      fresh
    in
    b.ops <- extend b.ops;
    b.addrs <- extend b.addrs;
    b.values <- extend b.values;
    b.marks <- extend b.marks;
    b.arrs <- extend b.arrs

  let[@inline] slot b =
    if b.pos >= Array.length b.ops then grow b;
    let i = b.pos in
    b.pos <- i + 1;
    i

  (* Slots are written at most once and fresh slabs are zeroed, so fields
     [pack] leaves at 0 (e.g. a compute slot's mark) need no stores here. *)

  let emit_compute b n =
    let i = slot b in
    b.ops.(i) <- Event.Code.compute;
    b.addrs.(i) <- n

  let[@inline] flush_work b =
    if b.pending_work > 0 then begin
      emit_compute b b.pending_work;
      b.pending_work <- 0
    end

  let emit_work b n = b.pending_work <- b.pending_work + n

  let[@inline] intern b name =
    if name == b.last_name then b.last_id
    else begin
      let id = Hscd_util.Symtab.intern b.symtab name in
      b.last_name <- name;
      b.last_id <- id;
      id
    end

  let emit_read b ~array ~addr ~value ~rcode =
    flush_work b;
    let i = slot b in
    b.ops.(i) <- Event.Code.read;
    b.addrs.(i) <- addr;
    b.values.(i) <- value;
    if rcode > b.max_rcode then b.max_rcode <- rcode;
    b.marks.(i) <- rcode;
    b.arrs.(i) <- intern b array;
    b.total <- b.total + 1

  let emit_write b ~array ~addr ~value ~wcode =
    flush_work b;
    let i = slot b in
    b.ops.(i) <- Event.Code.write;
    b.addrs.(i) <- addr;
    b.values.(i) <- value;
    b.marks.(i) <- wcode;
    b.arrs.(i) <- intern b array;
    b.total <- b.total + 1

  let emit_lock b =
    flush_work b;
    let i = slot b in
    b.ops.(i) <- Event.Code.lock;
    b.ticket <- b.ticket + 1;
    b.total <- b.total + 1

  let emit_unlock b =
    flush_work b;
    let i = slot b in
    b.ops.(i) <- Event.Code.unlock;
    b.total <- b.total + 1

  let extend a n =
    let fresh = Array.make (2 * Array.length a) 0 in
    Array.blit a 0 fresh 0 n;
    fresh

  let epoch_begin b kind =
    b.cur_kind <- kind;
    b.epoch_task0 <- b.n_tasks;
    b.ticket <- 0

  let task_begin b ~iter =
    b.task_iter <- iter;
    b.task_off <- b.pos;
    b.task_ticket0 <- b.ticket;
    b.pending_work <- 0

  let task_end b =
    flush_work b;
    let i = b.n_tasks in
    if i >= Array.length b.t_iter then begin
      b.t_iter <- extend b.t_iter i;
      b.t_off <- extend b.t_off i;
      b.t_len <- extend b.t_len i;
      b.t_ticket0 <- extend b.t_ticket0 i;
      b.t_nlocks <- extend b.t_nlocks i
    end;
    b.t_iter.(i) <- b.task_iter;
    b.t_off.(i) <- b.task_off;
    b.t_len.(i) <- b.pos - b.task_off;
    b.t_ticket0.(i) <- b.task_ticket0;
    b.t_nlocks.(i) <- b.ticket - b.task_ticket0;
    b.n_tasks <- i + 1

  let epoch_end b =
    if b.ticket > b.max_tickets then b.max_tickets <- b.ticket;
    let i = b.n_epochs in
    if i >= Array.length b.e_kind then begin
      b.e_kind <- extend b.e_kind i;
      b.e_lo <- extend b.e_lo i;
      b.e_hi <- extend b.e_hi i;
      b.e_task0 <- extend b.e_task0 i;
      b.e_ntickets <- extend b.e_ntickets i
    end;
    (match b.cur_kind with
    | Serial -> b.e_kind.(i) <- 0
    | Parallel { lo; hi } ->
      b.e_kind.(i) <- 1;
      b.e_lo.(i) <- lo;
      b.e_hi.(i) <- hi);
    b.e_task0.(i) <- b.epoch_task0;
    b.e_ntickets.(i) <- b.ticket;
    b.n_epochs <- i + 1

  (** Close the builder. [total_events] overrides the builder's own count
      (used when re-packing a boxed trace whose count follows different
      bookkeeping, e.g. loaded corpus traces that exclude lock events). *)
  let finish ?total_events b ~golden =
    let layout =
      match b.layout with
      | Some l -> l
      | None -> invalid_arg "Trace.Builder: finish before init"
    in
    let epoch i =
      let task0 = b.e_task0.(i) in
      let task_hi = if i + 1 < b.n_epochs then b.e_task0.(i + 1) else b.n_tasks in
      {
        p_kind =
          (if b.e_kind.(i) = 0 then Serial
           else Parallel { lo = b.e_lo.(i); hi = b.e_hi.(i) });
        p_tasks =
          Array.init (task_hi - task0) (fun j ->
              let t = task0 + j in
              {
                p_iter = b.t_iter.(t);
                off = b.t_off.(t);
                len = b.t_len.(t);
                ticket0 = b.t_ticket0.(t);
                n_locks = b.t_nlocks.(t);
              });
        p_n_tickets = b.e_ntickets.(i);
      }
    in
    (* trim to the live prefix: the packed form should not retain the
       doubling slack, and [pack] produces exact-size slabs *)
    let exact a = Slab.of_int_array_sub a b.pos in
    {
      ops = exact b.ops;
      addrs = exact b.addrs;
      values = exact b.values;
      marks = exact b.marks;
      arrs = exact b.arrs;
      p_epochs = Array.init b.n_epochs epoch;
      symtab = b.symtab;
      rmark_table = Event.Code.rmark_table ~max_code:b.max_rcode;
      p_layout = layout;
      p_golden = golden;
      p_total_events = (match total_events with Some n -> n | None -> b.total);
      n_slots = b.pos;
      p_max_tickets = b.max_tickets;
    }

  (** Eval hooks appending straight into the slabs — the streaming trace
      generator. The mark conversions go AST-code directly, so the per-event
      path constructs no variant cells. *)
  let hooks b : Eval.hooks =
    {
      Eval.on_init = (fun layout -> init b layout);
      on_epoch_begin =
        (fun kind ->
          epoch_begin b
            (match kind with
            | Eval.Serial -> Serial
            | Eval.Parallel { lo; hi } -> Parallel { lo; hi }));
      on_epoch_end = (fun () -> epoch_end b);
      on_task_begin = (fun ~iter -> task_begin b ~iter);
      on_task_end = (fun () -> task_end b);
      on_read =
        (fun ~array ~addr ~value ~mark ->
          emit_read b ~array ~addr ~value ~rcode:(Event.Code.of_ast_rmark mark));
      on_write =
        (fun ~array ~addr ~value ~mark ->
          emit_write b ~array ~addr ~value ~wcode:(Event.Code.of_ast_wmark mark));
      on_work = (fun n -> emit_work b n);
      on_lock = (fun () -> emit_lock b);
      on_unlock = (fun () -> emit_unlock b);
    }
end

(** Generate the packed trace directly: run the instrumented interpreter
    with builder hooks, never materializing the boxed [t]. Replay results
    are bit-identical to [pack (of_program p)] (asserted by the tests). *)
let of_program_packed ?(check_races = true) ?(line_words = 4) (program : Ast.program) =
  (* a few thousand slots up front keeps the doubling copies (each one a
     major-heap copy of every slab) off small and medium traces without
     making tiny programs pay for megabytes of zeroed slab *)
  let b = Builder.create ~capacity:4096 () in
  let result = Eval.run ~hooks:(Builder.hooks b) ~check_races ~line_words program in
  Builder.finish b ~golden:result.Eval.final_memory

(** Stream an existing boxed trace through the builder — the packed result
    is slot-for-slot identical to {!pack} (compute slots are emitted raw,
    not re-coalesced), with exact initial capacity. *)
let pack_streaming (t : t) =
  let n_slots =
    Array.fold_left
      (fun acc e ->
        Array.fold_left (fun acc (task : task) -> acc + Array.length task.events) acc e.tasks)
      0 t.epochs
  in
  let b = Builder.create ~capacity:(max 1 n_slots) () in
  Builder.init b t.layout;
  Array.iter
    (fun (e : epoch) ->
      Builder.epoch_begin b e.kind;
      Array.iter
        (fun (task : task) ->
          Builder.task_begin b ~iter:task.iter;
          Array.iter
            (fun ev ->
              match ev with
              | Event.Compute n -> Builder.emit_compute b n
              | Event.Read { addr; mark; value; array } ->
                Builder.emit_read b ~array ~addr ~value ~rcode:(Event.Code.of_rmark mark)
              | Event.Write { addr; mark; value; array } ->
                Builder.emit_write b ~array ~addr ~value ~wcode:(Event.Code.of_wmark mark)
              | Event.Lock -> Builder.emit_lock b
              | Event.Unlock -> Builder.emit_unlock b)
            task.events;
          Builder.task_end b)
        e.tasks;
      Builder.epoch_end b)
    t.epochs;
  Builder.finish b ~total_events:t.total_events ~golden:t.golden_memory

(** Reconstruct the boxed form from a packed trace — exact inverse of
    {!pack}/{!pack_streaming}, for text serialization and differential
    tests against the legacy replay loop. *)
let unpack (p : packed) : t =
  let epochs =
    Array.map
      (fun (pe : pepoch) ->
        {
          kind = pe.p_kind;
          tasks =
            Array.map
              (fun (pt : ptask) ->
                let events =
                  Array.init pt.len (fun j ->
                      let i = pt.off + j in
                      let op = Slab.get p.ops i in
                      if op = Event.Code.compute then Event.Compute (Slab.get p.addrs i)
                      else if op = Event.Code.read then
                        Event.Read
                          {
                            addr = Slab.get p.addrs i;
                            mark = Event.Code.rmark_of (Slab.get p.marks i);
                            value = Slab.get p.values i;
                            array = Hscd_util.Symtab.name p.symtab (Slab.get p.arrs i);
                          }
                      else if op = Event.Code.write then
                        Event.Write
                          {
                            addr = Slab.get p.addrs i;
                            mark = Event.Code.wmark_of (Slab.get p.marks i);
                            value = Slab.get p.values i;
                            array = Hscd_util.Symtab.name p.symtab (Slab.get p.arrs i);
                          }
                      else if op = Event.Code.lock then Event.Lock
                      else Event.Unlock)
                in
                { iter = pt.p_iter; events })
              pe.p_tasks;
        })
      p.p_epochs
  in
  {
    epochs;
    layout = p.p_layout;
    golden_memory = p.p_golden;
    total_events = p.p_total_events;
  }

let packed_memory_words (p : packed) = max 1 p.p_layout.Shape.total_words

(** Live heap words of the packed slabs (five ints per slot plus task and
    epoch descriptors) — the footprint EXPERIMENTS.md reports against the
    boxed form's per-event blocks. Counts slab *capacity*, not just live
    slots: builder-grown slabs may hold up to 2x headroom and that memory
    is just as resident. *)
let packed_slab_words (p : packed) =
  let task_words = 8 (* 5 fields + header + ~2 amortized epoch overhead *) in
  (5 * max 1 (Slab.length p.ops))
  + Array.fold_left (fun acc e -> acc + (task_words * Array.length e.p_tasks)) 0 p.p_epochs

(* --- packed-native trace statistics (no boxed form required) --- *)

let packed_n_epochs (p : packed) = Array.length p.p_epochs

let packed_n_parallel_epochs (p : packed) =
  Array.fold_left
    (fun acc e -> match e.p_kind with Parallel _ -> acc + 1 | Serial -> acc)
    0 p.p_epochs

(** (reads, writes) over the live slots of a packed trace. *)
let packed_access_counts (p : packed) =
  let reads = ref 0 and writes = ref 0 in
  for i = 0 to p.n_slots - 1 do
    let op = Slab.get p.ops i in
    if op = Event.Code.read then incr reads
    else if op = Event.Code.write then incr writes
  done;
  (!reads, !writes)

(* ------------------------------------------------------------------ *)
(* Shard plan: address partition for multi-domain replay               *)
(* ------------------------------------------------------------------ *)

(** Partition of a packed trace's memory accesses across replay shards,
    plus everything the sharded engine needs to reconstruct the
    sequential engine's timing without replaying in clock order.

    The partition is by cache-set group: an address's shard is
    [set_index(line) mod shards], so every access to one memory line —
    and every line competing for the same cache set — lands in the same
    shard. Caches (LRU within a set), directory entries, and per-line
    memory state therefore decompose exactly: each shard replays its
    slots in trace order against its own scheme slice and no slice ever
    observes another's lines.

    Timing is reconstructed per epoch from *cost bins*: each processor's
    event stream in an epoch is cut into segments at its Lock/Unlock
    events (2·locks+1 segments). Static compute cost per bin is
    precomputed here; shards accumulate dynamic access latencies into
    per-bin counters during replay; at the epoch barrier a single pass
    over the tickets in global order reproduces the engine's
    critical-section serialization (lock waits, release times) exactly —
    valid because under static scheduling a processor's events execute
    in slot order and only lock grants couple processors inside an
    epoch. *)
module Shard = struct
  type epoch_plan = {
    sp_nbins : int;
    sp_bin_proc : int array;  (** bin -> executing processor *)
    sp_bin_static : int array;  (** bin -> compute cycles (work statements) *)
    sp_proc_bin0 : int array;  (** proc -> its first bin this epoch *)
    sp_ticket_proc : int array;  (** ticket -> processor holding it *)
    sp_compute_total : int;  (** sum of all compute cycles in the epoch *)
  }

  type plan = {
    sh_shards : int;
    sh_epochs : epoch_plan array;
    sh_slots : Slab.t array;  (** shard -> owned read/write slots, ascending *)
    sh_bins : Slab.t array;  (** shard -> epoch-local bin of each owned slot *)
    sh_off : int array array;  (** shard -> epoch -> first index in [sh_slots] *)
    sh_max_bins : int;  (** max [sp_nbins] over epochs (scratch sizing) *)
  }

  (** Owning shard of an address: the line's cache-set index modulo the
      shard count. Also the owner used when merging final memory images. *)
  let shard_of_addr (cfg : Hscd_arch.Config.t) ~shards addr =
    ((addr / cfg.line_words) land (Hscd_arch.Config.sets cfg - 1)) mod shards

  let build (cfg : Hscd_arch.Config.t) ~shards (p : packed) =
    if shards < 1 then invalid_arg "Trace.Shard.build: shards must be >= 1";
    let procs = cfg.processors in
    let n_eps = Array.length p.p_epochs in
    let shard_of = shard_of_addr cfg ~shards in
    (* pass 1: per-shard, per-epoch slot counts *)
    let counts = Array.init shards (fun _ -> Array.make n_eps 0) in
    Array.iteri
      (fun e (pe : pepoch) ->
        Array.iter
          (fun (t : ptask) ->
            for i = t.off to t.off + t.len - 1 do
              let op = Slab.get p.ops i in
              if op = Event.Code.read || op = Event.Code.write then
                let s = shard_of (Slab.get p.addrs i) in
                counts.(s).(e) <- counts.(s).(e) + 1
            done)
          pe.p_tasks)
      p.p_epochs;
    let sh_off =
      Array.init shards (fun s ->
          let off = Array.make (n_eps + 1) 0 in
          for e = 0 to n_eps - 1 do
            off.(e + 1) <- off.(e) + counts.(s).(e)
          done;
          off)
    in
    let sh_slots = Array.init shards (fun s -> Slab.create sh_off.(s).(n_eps)) in
    let sh_bins = Array.init shards (fun s -> Slab.create sh_off.(s).(n_eps)) in
    let cursor = Array.make shards 0 in
    let seg = Array.make procs 0 in
    let max_bins = ref 0 in
    (* pass 2: fill shard slots (trace order within each shard) and build
       every epoch's bin structure and ticket->proc map *)
    let sh_epochs =
      Array.map
        (fun (pe : pepoch) ->
          let ntasks = Array.length pe.p_tasks in
          let serial = match pe.p_kind with Serial -> true | Parallel _ -> false in
          let proc_of rank = if serial then 0 else Schedule.static_proc cfg ~ntasks rank in
          let nsegs = Array.make procs 1 in
          Array.iteri
            (fun rank (t : ptask) ->
              let pr = proc_of rank in
              nsegs.(pr) <- nsegs.(pr) + (2 * t.n_locks))
            pe.p_tasks;
          let sp_proc_bin0 = Array.make procs 0 in
          for pr = 1 to procs - 1 do
            sp_proc_bin0.(pr) <- sp_proc_bin0.(pr - 1) + nsegs.(pr - 1)
          done;
          let sp_nbins = sp_proc_bin0.(procs - 1) + nsegs.(procs - 1) in
          if sp_nbins > !max_bins then max_bins := sp_nbins;
          let sp_bin_proc = Array.make sp_nbins 0 in
          for pr = 0 to procs - 1 do
            for k = 0 to nsegs.(pr) - 1 do
              sp_bin_proc.(sp_proc_bin0.(pr) + k) <- pr
            done
          done;
          let sp_bin_static = Array.make sp_nbins 0 in
          let sp_ticket_proc = Array.make pe.p_n_tickets 0 in
          let total = ref 0 in
          Array.fill seg 0 procs 0;
          Array.iteri
            (fun rank (t : ptask) ->
              let pr = proc_of rank in
              for k = 0 to t.n_locks - 1 do
                sp_ticket_proc.(t.ticket0 + k) <- pr
              done;
              for i = t.off to t.off + t.len - 1 do
                let op = Slab.get p.ops i in
                if op = Event.Code.compute then begin
                  let n = Slab.get p.addrs i in
                  sp_bin_static.(sp_proc_bin0.(pr) + seg.(pr)) <-
                    sp_bin_static.(sp_proc_bin0.(pr) + seg.(pr)) + n;
                  total := !total + n
                end
                else if op = Event.Code.read || op = Event.Code.write then begin
                  let s = shard_of (Slab.get p.addrs i) in
                  let j = cursor.(s) in
                  Slab.set sh_slots.(s) j i;
                  Slab.set sh_bins.(s) j (sp_proc_bin0.(pr) + seg.(pr));
                  cursor.(s) <- j + 1
                end
                else
                  (* lock or unlock: a segment boundary in [pr]'s stream *)
                  seg.(pr) <- seg.(pr) + 1
              done)
            pe.p_tasks;
          { sp_nbins; sp_bin_proc; sp_bin_static; sp_proc_bin0; sp_ticket_proc;
            sp_compute_total = !total })
        p.p_epochs
    in
    { sh_shards = shards; sh_epochs; sh_slots; sh_bins; sh_off; sh_max_bins = max 1 !max_bins }
end

let n_epochs t = Array.length t.epochs

let n_parallel_epochs t =
  Array.fold_left
    (fun acc e -> match e.kind with Parallel _ -> acc + 1 | Serial -> acc)
    0 t.epochs

let memory_words t = max 1 t.layout.Shape.total_words

(** Count memory accesses (reads, writes) in the whole trace. *)
let access_counts t =
  let reads = ref 0 and writes = ref 0 in
  Array.iter
    (fun e ->
      Array.iter
        (fun task ->
          Array.iter
            (function
              | Event.Read _ -> incr reads
              | Event.Write _ -> incr writes
              | Event.Compute _ | Event.Lock | Event.Unlock -> ())
            task.events)
        e.tasks)
    t.epochs;
  (!reads, !writes)
